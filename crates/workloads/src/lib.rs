//! # trinity-workloads — kernel DAGs for every paper benchmark
//!
//! Builders that decompose the paper's benchmark suite (§V-B) into the
//! kernel taxonomy of [`trinity_core`], exactly the way the functional
//! crates execute them:
//!
//! * [`ckks_ops`] — Table II operations (HMult, HRotate, Rescale, ...)
//!   and the hybrid keyswitch of Algorithm 1.
//! * [`tfhe_ops`] — programmable bootstrapping (Algorithm 2), gates.
//! * [`conversion`] — LWE repacking (Algorithms 4 and 5).
//! * [`apps`] — Bootstrap / HELR / ResNet-20 / NN-x / HE3DB-x.
//! * [`reference`](mod@reference) — cited constants for rows the simulator does not
//!   regenerate, tagged by provenance.

#![warn(missing_docs)]

pub mod apps;
pub mod ckks_ops;
pub mod conversion;
pub mod reference;
pub mod tfhe_ops;

pub use apps::{bootstrap, helr, resnet20, He3dbRecipe, NnRecipe};
pub use ckks_ops::{CkksShape, KeySwitchOpts};
pub use conversion::{repack, repack_keyswitch_count};
pub use reference::Source;
pub use tfhe_ops::{pbs, pbs_batch, TfheShape};
