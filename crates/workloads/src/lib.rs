//! # trinity-workloads — kernel DAGs for every paper benchmark
//!
//! Builders that decompose the paper's benchmark suite (§V-B) into the
//! kernel taxonomy of [`trinity_core`], exactly the way the functional
//! crates execute them:
//!
//! * [`ckks_ops`] — Table II operations (HMult, HRotate, Rescale, ...)
//!   and the hybrid keyswitch of Algorithm 1.
//! * [`tfhe_ops`] — programmable bootstrapping (Algorithm 2), gates.
//! * [`conversion`] — LWE repacking (Algorithms 4 and 5).
//! * [`apps`] — Bootstrap / HELR / ResNet-20 / NN-x / HE3DB-x.
//! * [`linear`] — a *functional* encrypted linear layer run with
//!   `fhe-ckks` (not modeled): the hoisted-rotation matvec and its
//!   sequential bit-identity oracle.
//! * [`reference`](mod@reference) — cited constants for rows the simulator does not
//!   regenerate, tagged by provenance.
//! * [`traffic`] — deterministic multi-tenant request streams feeding
//!   the `trinity-service` QoS scheduler and its property tests.
//!
//! Every builder appends kernels to a
//! [`trinity_core::kernel::KernelGraph`] and returns the frontier
//! [`trinity_core::kernel::KernelId`]s so operations compose into
//! application DAGs; `trinity_core::sched::simulate` then places the
//! graph on any machine model. Graphs are deterministic per shape.
//!
//! The DAGs count kernels at the **lazy-chain granularity** the
//! functional crates execute (see `ARCHITECTURE.md` at the workspace
//! root): keyswitch digits are raised, transformed and
//! inner-product-accumulated with no per-kernel canonicalisation
//! kernels, because reduction is deferred to one fold per limb at the
//! chain boundary — the paper's redundant-form pipelines, and the
//! reason the modeled Fig. 2 NTT/MAC split matches the published one.
//!
//! # Examples
//!
//! ```
//! use trinity_core::kernel::KernelGraph;
//! use trinity_workloads::{ckks_ops, CkksShape, KeySwitchOpts};
//!
//! // One hybrid keyswitch (Alg. 1) at the paper's default shape,
//! // as a schedulable kernel DAG.
//! let shape = CkksShape::paper_default();
//! let mut g = KernelGraph::new();
//! let l = shape.levels - 1;
//! ckks_ops::keyswitch(&mut g, &shape, l, &[], KeySwitchOpts::default());
//! assert!(g.len() > 0);
//! // NTT work dominates the modular multiplies, as in Fig. 2.
//! assert!(g.modmul_breakdown().ntt_fraction() > 0.5);
//! ```
//!
//! Run `cargo bench -p trinity-bench --bench paper_tables` to see the
//! tables these DAGs regenerate, or
//! `cargo run --release --example accelerator_sim` for a scheduled
//! workload end to end.

#![warn(missing_docs)]

pub mod apps;
pub mod ckks_ops;
pub mod conversion;
pub mod linear;
pub mod reference;
pub mod tfhe_ops;
pub mod traffic;

pub use apps::{bootstrap, helr, resnet20, He3dbRecipe, NnRecipe};
pub use ckks_ops::{CkksShape, KeySwitchOpts};
pub use conversion::{repack, repack_keyswitch_count};
pub use linear::LinearLayer;
pub use reference::Source;
pub use tfhe_ops::{pbs, pbs_batch, TfheShape};
pub use traffic::{stream, RequestKind, TrafficEvent, TrafficMix};
