//! Kernel DAGs for TFHE operations — Algorithm 2 of the paper.
//!
//! As in [`crate::ckks_ops`], the graphs carry no standalone reduction
//! kernels: the blind-rotation accumulator is assumed to stay in
//! redundant `[0, 2p)` form across the `(k+1)*lb` NTT/MAC rows of each
//! CMUX and fold only at the iNTT writeback — the discipline
//! `fhe_tfhe::Ggsw::external_product` now implements on the host.

use trinity_core::kernel::{KernelGraph, KernelId, KernelKind};

/// Shape parameters of a TFHE instance (the paper's Table IV sets).
#[derive(Debug, Clone, Copy)]
pub struct TfheShape {
    /// GLWE ring degree.
    pub n: usize,
    /// LWE dimension.
    pub n_lwe: usize,
    /// GLWE dimension.
    pub k: usize,
    /// Bootstrapping decomposition levels.
    pub lb: usize,
    /// Keyswitch decomposition levels.
    pub lk: usize,
    /// Word bytes (32-bit torus words).
    pub word_bytes: f64,
}

impl TfheShape {
    /// Paper Set-I.
    pub fn set_i() -> Self {
        Self {
            n: 1024,
            n_lwe: 500,
            k: 1,
            lb: 2,
            lk: 8,
            word_bytes: 4.0,
        }
    }

    /// Paper Set-II.
    pub fn set_ii() -> Self {
        Self {
            n: 1024,
            n_lwe: 630,
            k: 1,
            lb: 3,
            lk: 8,
            word_bytes: 4.0,
        }
    }

    /// Paper Set-III.
    pub fn set_iii() -> Self {
        Self {
            n: 2048,
            n_lwe: 592,
            k: 1,
            lb: 3,
            lk: 8,
            word_bytes: 4.0,
        }
    }

    /// All three sets with their paper names.
    pub fn paper_sets() -> [(&'static str, Self); 3] {
        [
            ("Set-I", Self::set_i()),
            ("Set-II", Self::set_ii()),
            ("Set-III", Self::set_iii()),
        ]
    }

    /// Bootstrapping key bytes (`n_lwe` GGSW ciphertexts).
    pub fn bsk_bytes(&self) -> u64 {
        (self.n_lwe * (self.k + 1) * self.lb * (self.k + 1) * self.n) as u64
            * self.word_bytes as u64
    }
}

/// One programmable bootstrap (Algorithm 2). Returns the sink ids.
///
/// `load_bsk` streams the bootstrapping key from HBM; pass `false` when
/// the key is already scratchpad-resident (it is loaded once per batch
/// by [`pbs_batch`]).
pub fn pbs(
    g: &mut KernelGraph,
    shape: &TfheShape,
    deps: &[KernelId],
    load_bsk: bool,
) -> Vec<KernelId> {
    let n = shape.n;
    let k = shape.k;
    let rows = (k + 1) * shape.lb;
    let bsk_dep = if load_bsk {
        Some(g.add(
            KernelKind::HbmLoad {
                bytes: shape.bsk_bytes(),
            },
            &[],
        ))
    } else {
        None
    };
    // ModSwitch (line 1).
    let mut prev = g.add(KernelKind::ModSwitch { n: shape.n_lwe }, deps);
    // Blind rotation: n_lwe sequential CMUX iterations (lines 4-12).
    for _ in 0..shape.n_lwe {
        let rot = g.add(KernelKind::RotateVec { n: (k + 1) * n }, &[prev]);
        let dec = g.add(
            KernelKind::Decompose {
                limbs: k + 1,
                levels: shape.lb,
                n,
            },
            &[rot],
        );
        let ntts = g.add_many(KernelKind::Ntt { n }, rows, &[dec]);
        let mut mac_deps = ntts;
        if let Some(b) = bsk_dep {
            mac_deps.push(b);
        }
        let mac = g.add(
            KernelKind::ExtProductMac {
                rows,
                outputs: k + 1,
                n,
            },
            &mac_deps,
        );
        let intts = g.add_many(KernelKind::Intt { n }, k + 1, &[mac]);
        prev = *intts.last().expect("k+1 >= 1");
    }
    // SampleExtract (line 14) and TFHE KeySwitch (lines 16-17).
    let se = g.add(KernelKind::SampleExtract { n }, &[prev]);
    let ks = g.add(
        KernelKind::LweKeySwitch {
            n_in: k * n,
            n_out: shape.n_lwe,
            levels: shape.lk,
        },
        &[se],
    );
    vec![ks]
}

/// A batch of independent PBS operations (the Table VII throughput
/// benchmark). The bootstrapping key is streamed once.
pub fn pbs_batch(g: &mut KernelGraph, shape: &TfheShape, batch: usize) -> Vec<KernelId> {
    let bsk = g.add(
        KernelKind::HbmLoad {
            bytes: shape.bsk_bytes(),
        },
        &[],
    );
    let mut sinks = Vec::new();
    for _ in 0..batch {
        sinks.extend(pbs(g, shape, &[bsk], false));
    }
    sinks
}

/// A bootstrapped binary gate: linear offset (free) + one sign PBS.
pub fn gate(g: &mut KernelGraph, shape: &TfheShape, deps: &[KernelId]) -> Vec<KernelId> {
    pbs(g, shape, deps, false)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pbs_kernel_counts() {
        let s = TfheShape::set_i();
        let mut g = KernelGraph::new();
        pbs(&mut g, &s, &[], false);
        let ntts = g
            .kernels()
            .iter()
            .filter(|k| matches!(k.kind, KernelKind::Ntt { .. }))
            .count();
        // (k+1)*lb = 4 forward NTTs per blind-rotate iteration.
        assert_eq!(ntts, 500 * 4);
        let intts = g
            .kernels()
            .iter()
            .filter(|k| matches!(k.kind, KernelKind::Intt { .. }))
            .count();
        assert_eq!(intts, 500 * 2);
        let macs = g
            .kernels()
            .iter()
            .filter(|k| matches!(k.kind, KernelKind::ExtProductMac { .. }))
            .count();
        assert_eq!(macs, 500);
    }

    /// The paper's Fig. 2: PBS is roughly 3/4 NTT, 1/4 MAC.
    #[test]
    fn fig2_pbs_breakdown() {
        for (name, s) in TfheShape::paper_sets() {
            let mut g = KernelGraph::new();
            pbs(&mut g, &s, &[], false);
            let frac = g.modmul_breakdown().ntt_fraction();
            assert!(
                (0.68..=0.84).contains(&frac),
                "{name}: NTT fraction {frac:.3} vs paper ~0.755"
            );
        }
    }

    #[test]
    fn bsk_fits_trinity_scratchpad() {
        // Key residency assumption behind pbs_batch: every paper set's
        // bsk fits Trinity's 180 MB total scratchpad (Table III; 45 MB
        // per cluster, bsk broadcast or striped across clusters).
        for (name, s) in TfheShape::paper_sets() {
            let mib = s.bsk_bytes() as f64 / (1 << 20) as f64;
            assert!(mib < 180.0, "{name}: bsk {mib:.1} MiB");
        }
    }

    #[test]
    fn batch_loads_key_once() {
        let s = TfheShape::set_i();
        let mut g = KernelGraph::new();
        pbs_batch(&mut g, &s, 4);
        let loads = g
            .kernels()
            .iter()
            .filter(|k| matches!(k.kind, KernelKind::HbmLoad { .. }))
            .count();
        assert_eq!(loads, 1);
    }
}
