//! Deterministic multi-tenant request streams for the service layer.
//!
//! The other modules build kernel DAGs for *one* operation at a time;
//! a serving deployment sees an interleaved stream of them arriving
//! from many tenants. This module generates such streams
//! reproducibly — same seed, same mix, same schedule — so the
//! `trinity-service` scheduler tests and the multi-tenant example can
//! assert exact lane budgets, starvation behaviour and coalescing
//! opportunities without touching wall-clock time or OS randomness.
//!
//! The stream is scheme-neutral by design: a [`RequestKind`] says
//! *what class* of work arrives (an interactive boolean gate, a
//! deadline-tagged rotation, a bulk analytics scan), and the service
//! layer decides how to lower it onto `fhe-tfhe` / `fhe-ckks` jobs and
//! which QoS lane it rides. Keeping the generator here — below the
//! service crate — lets scheduler property tests randomise over
//! realistic mixes while the workload definition stays reviewable in
//! one place.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One class of tenant request, in arrival order within a
/// [`TrafficEvent`] stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RequestKind {
    /// An interactive TFHE boolean gate: `gate` indexes the service's
    /// gate table (the six binary gates), applied to fresh encryptions
    /// of `a` and `b`. Latency-sensitive — one linear combination plus
    /// one sign PBS.
    Gate {
        /// Index into the binary-gate table (`GateOp::ALL` order).
        gate: usize,
        /// Plaintext left input, encrypted by the tenant's client key.
        a: bool,
        /// Plaintext right input.
        b: bool,
    },
    /// A deadline-tagged CKKS rotation: must complete within
    /// `deadline` scheduler ticks of its arrival or the starvation
    /// detector should have something to say.
    TimedRotation {
        /// Rotation step (slot offset, sign = direction).
        step: i64,
        /// Completion deadline, in scheduler ticks after arrival.
        deadline: u64,
    },
    /// Bulk CKKS analytics: a scan applying several rotations to one
    /// ciphertext. Throughput-oriented; individual rotations in the
    /// batch are natural coalescing candidates with other tenants'
    /// work at the same geometry.
    BulkRotations {
        /// Rotation steps applied in order.
        steps: Vec<i64>,
    },
}

/// One arrival in a request stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrafficEvent {
    /// Arrival time in scheduler ticks, non-decreasing along the
    /// stream.
    pub arrival: u64,
    /// Tenant index, `0..tenants`.
    pub tenant: usize,
    /// What the tenant asked for.
    pub kind: RequestKind,
}

/// Mix knobs for [`stream`]: per-mille weights of each request class.
/// Weights must sum to 1000 so test assertions about expected lane
/// pressure stay exact.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrafficMix {
    /// Per-mille share of [`RequestKind::Gate`] arrivals.
    pub gate_permille: u32,
    /// Per-mille share of [`RequestKind::TimedRotation`] arrivals.
    pub timed_permille: u32,
    /// Per-mille share of [`RequestKind::BulkRotations`] arrivals.
    pub bulk_permille: u32,
}

impl TrafficMix {
    /// The serving mix the paper's service discussion assumes:
    /// interactive gates dominate arrivals (50%), timed work is steady
    /// (20%), bulk analytics fill the rest (30%).
    pub fn default_mix() -> Self {
        TrafficMix {
            gate_permille: 500,
            timed_permille: 200,
            bulk_permille: 300,
        }
    }
}

/// Generates a deterministic stream of `len` arrivals across
/// `tenants` tenants with the given `mix`. Arrivals advance by 0–3
/// ticks each (so several requests can share a tick, which is what
/// makes cross-tenant coalescing possible at all); rotation steps stay
/// in `±4` so CI-sized Galois key sets cover them; bulk scans carry
/// 2–4 rotations.
///
/// # Panics
///
/// Panics if `tenants == 0` or the mix weights do not sum to 1000.
pub fn stream(seed: u64, tenants: usize, len: usize, mix: TrafficMix) -> Vec<TrafficEvent> {
    stream_with_deadlines(seed, tenants, len, mix, 4..=16)
}

/// [`stream`] with an explicit timed-rotation deadline range. Wide,
/// skewed ranges (say `3..=60`) make admission order diverge hard from
/// deadline order, which is what the service's EDF Timed lane is
/// tested against; `stream` itself fixes `4..=16`, so existing seeded
/// streams are byte-for-byte unchanged.
///
/// # Panics
///
/// Panics if `tenants == 0`, the mix weights do not sum to 1000, or
/// `deadlines` is empty.
pub fn stream_with_deadlines(
    seed: u64,
    tenants: usize,
    len: usize,
    mix: TrafficMix,
    deadlines: std::ops::RangeInclusive<u64>,
) -> Vec<TrafficEvent> {
    assert!(tenants > 0, "need at least one tenant");
    assert!(!deadlines.is_empty(), "deadline range must be non-empty");
    assert_eq!(
        mix.gate_permille + mix.timed_permille + mix.bulk_permille,
        1000,
        "mix weights must sum to 1000 per mille"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut now = 0u64;
    let mut out = Vec::with_capacity(len);
    for _ in 0..len {
        now += rng.gen_range(0..=3u64);
        let tenant = rng.gen_range(0..tenants);
        let roll = rng.gen_range(0..1000u32);
        let kind = if roll < mix.gate_permille {
            RequestKind::Gate {
                gate: rng.gen_range(0..6),
                a: rng.gen_bool(0.5),
                b: rng.gen_bool(0.5),
            }
        } else if roll < mix.gate_permille + mix.timed_permille {
            RequestKind::TimedRotation {
                step: nonzero_step(&mut rng),
                deadline: rng.gen_range(deadlines.clone()),
            }
        } else {
            let n = rng.gen_range(2..=4);
            RequestKind::BulkRotations {
                steps: (0..n).map(|_| nonzero_step(&mut rng)).collect(),
            }
        };
        out.push(TrafficEvent {
            arrival: now,
            tenant,
            kind,
        });
    }
    out
}

/// A rotation step in `±1..=4` — never zero, small enough for the
/// CI-sized Galois key sets.
fn nonzero_step(rng: &mut StdRng) -> i64 {
    let mag = rng.gen_range(1..=4i64);
    if rng.gen_bool(0.5) {
        mag
    } else {
        -mag
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_is_deterministic_and_well_formed() {
        let a = stream(7, 3, 200, TrafficMix::default_mix());
        let b = stream(7, 3, 200, TrafficMix::default_mix());
        assert_eq!(a, b, "same seed, same stream");
        assert_eq!(a.len(), 200);
        let mut last = 0;
        for ev in &a {
            assert!(ev.arrival >= last, "arrivals are non-decreasing");
            last = ev.arrival;
            assert!(ev.tenant < 3);
            match &ev.kind {
                RequestKind::Gate { gate, .. } => assert!(*gate < 6),
                RequestKind::TimedRotation { step, deadline } => {
                    assert!((1..=4).contains(&step.unsigned_abs()) && *deadline >= 4);
                }
                RequestKind::BulkRotations { steps } => {
                    assert!((2..=4).contains(&steps.len()));
                    assert!(steps.iter().all(|s| (1..=4).contains(&s.unsigned_abs())));
                }
            }
        }
        // Different seed actually changes the stream.
        assert_ne!(a, stream(8, 3, 200, TrafficMix::default_mix()));
    }

    #[test]
    fn mix_weights_steer_the_class_shares() {
        let only_gates = TrafficMix {
            gate_permille: 1000,
            timed_permille: 0,
            bulk_permille: 0,
        };
        assert!(stream(1, 2, 100, only_gates)
            .iter()
            .all(|e| matches!(e.kind, RequestKind::Gate { .. })));

        let mixed = stream(2, 2, 1000, TrafficMix::default_mix());
        let gates = mixed
            .iter()
            .filter(|e| matches!(e.kind, RequestKind::Gate { .. }))
            .count();
        // 50% nominal; a 1000-draw sample stays well inside ±10 points.
        assert!((400..=600).contains(&gates), "gate share drifted: {gates}");
    }

    #[test]
    fn deadline_ranges_are_honored_and_default_stream_is_stable() {
        // `stream` is exactly `stream_with_deadlines(.., 4..=16)`:
        // seeded streams predating the knob must not shift by a byte.
        let mix = TrafficMix::default_mix();
        assert_eq!(
            stream(7, 3, 200, mix),
            stream_with_deadlines(7, 3, 200, mix, 4..=16)
        );
        // A skewed range really lands skewed deadlines: admission
        // order and deadline order decorrelate (the EDF test bed).
        let skewed = stream_with_deadlines(7, 3, 400, mix, 3..=60);
        let deadlines: Vec<u64> = skewed
            .iter()
            .filter_map(|e| match e.kind {
                RequestKind::TimedRotation { deadline, .. } => Some(deadline),
                _ => None,
            })
            .collect();
        assert!(deadlines.iter().all(|d| (3..=60).contains(d)));
        assert!(
            deadlines.iter().any(|&d| d < 4) && deadlines.iter().any(|&d| d > 16),
            "skewed range never left the default band: {deadlines:?}"
        );
        assert!(
            deadlines.windows(2).any(|w| w[0] > w[1]),
            "deadlines arrived already sorted; no EDF pressure"
        );
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_deadline_range_panics() {
        #[allow(clippy::reversed_empty_ranges)]
        stream_with_deadlines(0, 1, 1, TrafficMix::default_mix(), 9..=3);
    }

    #[test]
    #[should_panic(expected = "sum to 1000")]
    fn unbalanced_mix_panics() {
        stream(
            0,
            1,
            1,
            TrafficMix {
                gate_permille: 999,
                timed_permille: 0,
                bulk_permille: 0,
            },
        );
    }
}
