//! Kernel DAGs for the CKKS operations of the paper's Table II.
//!
//! Every builder appends to a [`KernelGraph`] at the hardware's natural
//! granularity — one kernel per RNS limb for NTTs (the accelerator's
//! limb-wise data layout, §IV-I), one kernel per digit for `BConv`
//! matrix products — so the scheduler sees the same parallelism the
//! real machine would.
//!
//! The kernel counts assume the hardware's deferred-reduction
//! discipline: operands flow between NTT and MAC stages in redundant
//! `[0, 2p)` form and are fully reduced only at memory writeback, so no
//! standalone "canonicalise" kernels appear in the DAGs. The functional
//! crates now implement the same discipline (`fhe_ckks::key_switch`,
//! the lazy tensor in `Evaluator::mul_no_relin`, the TFHE external
//! product), so the measured CPU rows and these modeled graphs agree on
//! where reduction work happens.

use trinity_core::kernel::{KernelGraph, KernelId, KernelKind};

/// Shape parameters of a CKKS instance (paper Table IV defaults).
#[derive(Debug, Clone, Copy)]
pub struct CkksShape {
    /// Ring degree.
    pub n: usize,
    /// Maximum level `L`.
    pub levels: usize,
    /// Decomposition number.
    pub dnum: usize,
    /// Word size in bytes.
    pub word_bytes: f64,
}

impl CkksShape {
    /// The paper's default: `N = 2^16, L = 35, dnum = 3`.
    pub fn paper_default() -> Self {
        Self {
            n: 1 << 16,
            levels: 35,
            dnum: 3,
            word_bytes: 4.5,
        }
    }

    /// The scheme-conversion benchmark shape: `N = 2^14, L = 8`
    /// (§V-B-3, following Chen et al.).
    pub fn conversion_benchmark() -> Self {
        Self {
            n: 1 << 14,
            levels: 8,
            dnum: 3,
            word_bytes: 4.5,
        }
    }

    /// RNS limbs per digit.
    pub fn alpha(&self) -> usize {
        (self.levels + 1).div_ceil(self.dnum)
    }

    /// Digits at level `l`.
    pub fn beta_at(&self, l: usize) -> usize {
        (l + 1).div_ceil(self.alpha())
    }

    /// Limbs of the extended basis at level `l` (`q` limbs + special).
    pub fn ext_limbs(&self, l: usize) -> usize {
        l + 1 + self.alpha()
    }

    /// Limbs of digit `j` at level `l`.
    pub fn digit_limbs_at(&self, j: usize, l: usize) -> usize {
        let a = self.alpha();
        let start = j * a;
        let end = ((j + 1) * a).min(l + 1);
        end.saturating_sub(start)
    }

    /// Size of one keyswitch key at level `l` in bytes.
    pub fn evk_bytes(&self, l: usize) -> u64 {
        (self.beta_at(l) * 2 * self.ext_limbs(l) * self.n) as u64 * self.word_bytes as u64
    }
}

/// Options controlling keyswitch DAG emission.
#[derive(Debug, Clone, Copy)]
pub struct KeySwitchOpts {
    /// Fraction of the evaluation key streamed from HBM (1.0 = cold,
    /// 0.25 = reused 4x within a BSGS stage — see EXPERIMENTS.md).
    pub hbm_key_fraction: f64,
    /// Emit the §IV-I inter-cluster layout switches (limb-wise for the
    /// NTTs, slot-wise for BConv/IP) as explicit NoC kernels. Off by
    /// default: at Trinity's all-to-all NoC bandwidth the switches hide
    /// under compute, and the calibrated tables assume that; the NoC
    /// ablation turns this on to probe the sensitivity.
    pub model_layout_switch: bool,
}

impl Default for KeySwitchOpts {
    fn default() -> Self {
        Self {
            hbm_key_fraction: 0.25,
            model_layout_switch: false,
        }
    }
}

/// Hybrid keyswitch (Algorithm 1) at level `l`. Returns the sink ids.
pub fn keyswitch(
    g: &mut KernelGraph,
    shape: &CkksShape,
    l: usize,
    deps: &[KernelId],
    opts: KeySwitchOpts,
) -> Vec<KernelId> {
    let beta = shape.beta_at(l);
    let ext = shape.ext_limbs(l);
    let n = shape.n;
    // Key streaming (overlapped with compute by the scheduler).
    let key_bytes = (shape.evk_bytes(l) as f64 * opts.hbm_key_fraction) as u64;
    let hbm = g.add(
        KernelKind::HbmLoad {
            bytes: key_bytes.max(1),
        },
        &[],
    );

    // Per digit: ModUp BConv then NTTs over the extended basis.
    // ntt_ids[digit][limb] for limb-granular downstream dependencies.
    let mut ntt_ids: Vec<Vec<KernelId>> = Vec::with_capacity(beta);
    for j in 0..beta {
        let rows_in = shape.digit_limbs_at(j, l).max(1);
        let bconv = g.add(
            KernelKind::BConv {
                rows_in,
                rows_out: ext - rows_in,
                n,
            },
            deps,
        );
        ntt_ids.push(g.add_many(KernelKind::Ntt { n }, ext, &[bconv]));
    }
    // Layout switch before the inner product: the raised digits move
    // from the limb-wise NTT layout to the slot-wise MAC layout over
    // the inter-cluster NoC (§IV-I).
    let to_slot_wise = if opts.model_layout_switch {
        let all_ntts: Vec<KernelId> = ntt_ids.iter().flatten().copied().collect();
        let bytes = (beta * ext * n) as u64 * shape.word_bytes as u64;
        Some(g.add(KernelKind::LayoutSwitch { bytes }, &all_ntts))
    } else {
        None
    };
    // Inner product with the key digits, limb by limb (the hardware
    // streams limbs through the MAC array as their NTTs retire).
    let mut intts = Vec::with_capacity(2 * ext);
    for limb in 0..ext {
        let mut ip_deps: Vec<KernelId> = ntt_ids.iter().map(|d| d[limb]).collect();
        ip_deps.push(hbm);
        if let Some(ls) = to_slot_wise {
            ip_deps.push(ls);
        }
        let ip = g.add(
            KernelKind::InnerProduct {
                digits: beta,
                limbs: 1,
                outputs: 2,
                n,
            },
            &ip_deps,
        );
        intts.extend(g.add_many(KernelKind::Intt { n }, 2, &[ip]));
    }
    // Layout switch back to limb-wise before the output NTTs.
    let back_deps: Vec<KernelId> = if opts.model_layout_switch {
        let bytes = (2 * ext * n) as u64 * shape.word_bytes as u64;
        vec![g.add(KernelKind::LayoutSwitch { bytes }, &intts)]
    } else {
        intts.clone()
    };
    // ModDown: BConv P -> C_l per accumulator, then scale-and-subtract
    // on the EWE and NTT back to evaluation form.
    let mut sinks = Vec::new();
    for _ in 0..2 {
        let bconv = g.add(
            KernelKind::BConv {
                rows_in: shape.alpha(),
                rows_out: l + 1,
                n,
            },
            &back_deps,
        );
        let ewe = g.add(KernelKind::ModAdd { limbs: l + 1, n }, &[bconv]);
        let scale = g.add(KernelKind::ModMul { limbs: l + 1, n }, &[ewe]);
        for _ in 0..(l + 1) {
            sinks.push(g.add(KernelKind::Ntt { n }, &[scale]));
        }
    }
    sinks
}

/// HMult (Table II): tensor product, relinearisation, output adds.
pub fn hmult(
    g: &mut KernelGraph,
    shape: &CkksShape,
    l: usize,
    deps: &[KernelId],
    opts: KeySwitchOpts,
) -> Vec<KernelId> {
    let n = shape.n;
    let limbs = l + 1;
    // Tensor: c0*c0', c0*c1' + c1*c0', c1*c1'.
    let tensor = g.add_many(KernelKind::ModMul { limbs, n }, 4, deps);
    let d1_add = g.add(KernelKind::ModAdd { limbs, n }, &tensor);
    let ks = keyswitch(g, shape, l, &[d1_add], opts);
    vec![
        g.add(KernelKind::ModAdd { limbs, n }, &ks),
        g.add(KernelKind::ModAdd { limbs, n }, &ks),
    ]
}

/// HRotate (Table II): automorphism on both components + keyswitch.
pub fn hrotate(
    g: &mut KernelGraph,
    shape: &CkksShape,
    l: usize,
    deps: &[KernelId],
    opts: KeySwitchOpts,
) -> Vec<KernelId> {
    let n = shape.n;
    let limbs = l + 1;
    let autos = g.add_many(KernelKind::Automorphism { limbs, n }, 2, deps);
    let ks = keyswitch(g, shape, l, &autos, opts);
    vec![g.add(KernelKind::ModAdd { limbs, n }, &ks)]
}

/// Rescale (Table II): iNTT, per-limb scale/subtract, NTT back, one
/// level lower.
pub fn rescale(
    g: &mut KernelGraph,
    shape: &CkksShape,
    l: usize,
    deps: &[KernelId],
) -> Vec<KernelId> {
    assert!(l > 0, "cannot rescale at level 0");
    let n = shape.n;
    let intts = g.add_many(KernelKind::Intt { n }, 2 * (l + 1), deps);
    let ewe = g.add_many(KernelKind::ModMul { limbs: l, n }, 2, &intts);
    let mut sinks = Vec::new();
    for _ in 0..(2 * l) {
        sinks.push(g.add(KernelKind::Ntt { n }, &ewe));
    }
    sinks
}

/// PMult (Table II): two element-wise products.
pub fn pmult(g: &mut KernelGraph, shape: &CkksShape, l: usize, deps: &[KernelId]) -> Vec<KernelId> {
    g.add_many(
        KernelKind::ModMul {
            limbs: l + 1,
            n: shape.n,
        },
        2,
        deps,
    )
}

/// HAdd / PAdd (Table II): element-wise addition.
pub fn hadd(g: &mut KernelGraph, shape: &CkksShape, l: usize, deps: &[KernelId]) -> Vec<KernelId> {
    vec![g.add(
        KernelKind::ModAdd {
            limbs: l + 1,
            n: shape.n,
        },
        deps,
    )]
}

#[cfg(test)]
mod tests {
    use super::*;
    use trinity_core::kernel::KernelClass;

    #[test]
    fn shape_arithmetic_matches_paper() {
        let s = CkksShape::paper_default();
        assert_eq!(s.alpha(), 12);
        assert_eq!(s.beta_at(35), 3);
        assert_eq!(s.beta_at(11), 1);
        assert_eq!(s.ext_limbs(35), 48);
        assert_eq!(s.digit_limbs_at(0, 35), 12);
        assert_eq!(s.digit_limbs_at(2, 35), 12);
        assert_eq!(s.digit_limbs_at(2, 25), 2);
    }

    /// The paper's Fig. 2: KeySwitch at L=23, dnum=3 splits ~59.2% NTT /
    /// ~40.8% MAC by modular-multiplication count.
    #[test]
    fn fig2_keyswitch_breakdown() {
        let mut shape = CkksShape::paper_default();
        shape.levels = 23; // Fig. 2 uses L = 23
        let mut g = KernelGraph::new();
        keyswitch(&mut g, &shape, 23, &[], KeySwitchOpts::default());
        let b = g.modmul_breakdown();
        let ntt_frac = b.ntt_fraction();
        assert!(
            (0.55..=0.64).contains(&ntt_frac),
            "NTT fraction {ntt_frac:.3} vs paper 0.592"
        );
    }

    #[test]
    fn keyswitch_kernel_inventory() {
        let s = CkksShape::paper_default();
        let mut g = KernelGraph::new();
        keyswitch(&mut g, &s, 35, &[], KeySwitchOpts::default());
        let ntts = g
            .kernels()
            .iter()
            .filter(|k| matches!(k.kind, KernelKind::Ntt { .. }))
            .count();
        let intts = g
            .kernels()
            .iter()
            .filter(|k| matches!(k.kind, KernelKind::Intt { .. }))
            .count();
        // beta * ext forward + 2(l+1) output + 2*ext inverse.
        assert_eq!(ntts, 3 * 48 + 2 * 36);
        assert_eq!(intts, 2 * 48);
        let hbm = g
            .kernels()
            .iter()
            .filter(|k| k.kind.class() == KernelClass::Hbm)
            .count();
        assert_eq!(hbm, 1);
    }

    #[test]
    fn hmult_includes_keyswitch() {
        let s = CkksShape::paper_default();
        let mut g = KernelGraph::new();
        hmult(&mut g, &s, 10, &[], KeySwitchOpts::default());
        let b = g.modmul_breakdown();
        assert!(b.ntt > 0 && b.mac > 0 && b.other > 0);
    }

    #[test]
    fn layout_switches_emitted_only_on_request() {
        let s = CkksShape::paper_default();
        let count_switches = |opts: KeySwitchOpts| {
            let mut g = KernelGraph::new();
            keyswitch(&mut g, &s, 35, &[], opts);
            g.kernels()
                .iter()
                .filter(|k| matches!(k.kind, KernelKind::LayoutSwitch { .. }))
                .count()
        };
        assert_eq!(count_switches(KeySwitchOpts::default()), 0);
        let on = KeySwitchOpts {
            model_layout_switch: true,
            ..KeySwitchOpts::default()
        };
        // One switch into slot-wise, one back to limb-wise.
        assert_eq!(count_switches(on), 2);
    }

    #[test]
    fn layout_switch_bytes_match_moved_data() {
        let s = CkksShape::paper_default();
        let mut g = KernelGraph::new();
        let opts = KeySwitchOpts {
            model_layout_switch: true,
            ..KeySwitchOpts::default()
        };
        keyswitch(&mut g, &s, 35, &[], opts);
        let switches: Vec<u64> = g
            .kernels()
            .iter()
            .filter_map(|k| match k.kind {
                KernelKind::LayoutSwitch { bytes } => Some(bytes),
                _ => None,
            })
            .collect();
        let beta = s.beta_at(35);
        let ext = s.ext_limbs(35);
        assert_eq!(switches[0], (beta * ext * s.n) as u64 * s.word_bytes as u64);
        assert_eq!(switches[1], (2 * ext * s.n) as u64 * s.word_bytes as u64);
    }

    #[test]
    fn rescale_level_guard() {
        let s = CkksShape::paper_default();
        let mut g = KernelGraph::new();
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            rescale(&mut g, &s, 0, &[]);
        }));
        assert!(r.is_err());
    }
}
