//! Application-level workloads of the paper's evaluation (§V-B).
//!
//! * **Packed Bootstrapping** — full CKKS bootstrap, 15 levels consumed.
//! * **HELR** — one logistic-regression training iteration, batch 1024.
//! * **ResNet-20** — CIFAR-10 inference with periodic bootstrapping.
//! * **NN-x** — depth-`x` MNIST inference as batched PBS (Table VIII).
//! * **HE3DB-x** — TPC-H Q6 hybrid query: TFHE filter, scheme
//!   conversion, CKKS aggregation (Table X).
//!
//! Large CKKS apps are emitted as full kernel DAGs. The PBS-throughput
//! apps (NN-x, HE3DB) are *recipes*: they extrapolate from a simulated
//! PBS batch, because emitting tens of millions of blind-rotate kernels
//! per run adds nothing but memory pressure. Operation counts follow
//! the cited benchmark definitions and are documented per function.

use trinity_core::kernel::{KernelGraph, KernelId, KernelKind};

use crate::ckks_ops::{hadd, hmult, hrotate, pmult, rescale, CkksShape, KeySwitchOpts};

/// One BSGS linear-transform stage: `rotations` keyswitched rotations,
/// `diagonals` plaintext multiplies, and the accumulation adds, followed
/// by a rescale. Returns (sinks, new level).
fn bsgs_stage(
    g: &mut KernelGraph,
    shape: &CkksShape,
    l: usize,
    rotations: usize,
    diagonals: usize,
    deps: &[KernelId],
    opts: KeySwitchOpts,
) -> (Vec<KernelId>, usize) {
    let mut rot_sinks: Vec<KernelId> = Vec::new();
    for _ in 0..rotations {
        rot_sinks.extend(hrotate(g, shape, l, deps, opts));
    }
    let mut terms = Vec::new();
    for d in 0..diagonals {
        let dep = [rot_sinks[d % rot_sinks.len()]];
        terms.extend(pmult(g, shape, l, &dep));
    }
    let acc = hadd(g, shape, l, &terms);
    let out = rescale(g, shape, l, &acc);
    (out, l - 1)
}

/// Packed CKKS bootstrapping (§V-B-1, following Lattigo/SHARP's
/// structure): ModRaise, 3-stage CoeffToSlot, EvalMod (degree-31 sine
/// approximation: 8 sequential multiplication stages + 2 conjugations),
/// 3-stage SlotToCoeff. Consumes 15 levels from L = 35.
pub fn bootstrap(shape: &CkksShape) -> KernelGraph {
    let mut g = KernelGraph::new();
    let opts = KeySwitchOpts::default();
    let mut l = shape.levels;

    // ModRaise: NTTs to re-extend the basis.
    let raise = g.add_many(KernelKind::Ntt { n: shape.n }, 2 * (l + 1), &[]);
    let mut cur = raise;

    // CoeffToSlot: 3 BSGS stages, 16 rotations / 32 diagonals each.
    for _ in 0..3 {
        let (next, nl) = bsgs_stage(&mut g, shape, l, 16, 32, &cur, opts);
        cur = next;
        l = nl;
    }
    // EvalMod: 8 sequential stages of two parallel HMults + rescale,
    // plus two conjugations (keyswitched automorphisms).
    for _ in 0..2 {
        cur = hrotate(&mut g, shape, l, &cur, opts); // conjugation
    }
    for _ in 0..8 {
        let mut stage = Vec::new();
        for _ in 0..2 {
            stage.extend(hmult(&mut g, shape, l, &cur, opts));
        }
        cur = rescale(&mut g, shape, l, &stage);
        l -= 1;
    }
    // SlotToCoeff: 3 BSGS stages.
    for _ in 0..3 {
        let (next, nl) = bsgs_stage(&mut g, shape, l, 16, 32, &cur, opts);
        cur = next;
        l = nl;
    }
    debug_assert_eq!(shape.levels - l, 14);
    g
}

/// One HELR training iteration (§V-B-1: batch 1024, 32 iterations are
/// timed as iterations x this graph): 4 BSGS mat-vecs for the gradient,
/// a degree-7 sigmoid approximation, and the weight update's
/// rotate-and-sum reduction. Rotation-heavy, which is what makes the
/// CU-based IP offload matter (Fig. 11).
pub fn helr(shape: &CkksShape) -> KernelGraph {
    let mut g = KernelGraph::new();
    let opts = KeySwitchOpts::default();
    let mut l = 12.min(shape.levels);
    let mut cur: Vec<KernelId> = Vec::new();

    // Gradient mat-vecs over the 256-feature batch.
    for _ in 0..4 {
        let (next, nl) = bsgs_stage(&mut g, shape, l, 16, 48, &cur.clone(), opts);
        cur = next;
        l = nl;
    }
    // Sigmoid: three sequential HMult + rescale.
    for _ in 0..3 {
        let m = hmult(&mut g, shape, l, &cur, opts);
        cur = rescale(&mut g, shape, l, &m);
        l -= 1;
    }
    // Update: rotate-and-sum over log2(1024) = 10 rotations + 2 HMult.
    let mut sum = cur.clone();
    for _ in 0..10 {
        let r = hrotate(&mut g, shape, l, &sum, opts);
        sum = hadd(&mut g, shape, l, &r);
    }
    for _ in 0..2 {
        let m = hmult(&mut g, shape, l, &sum, opts);
        sum = rescale(&mut g, shape, l, &m);
        l -= 1;
    }
    g
}

/// ResNet-20 CIFAR-10 inference (§V-B-1, after Lee et al.'s multiplexed
/// convolutions): 20 convolution layers — each dominated by
/// element-wise plaintext multiplies and additions with a handful of
/// rotations — plus a bootstrap every other layer. The conv layers are
/// EWE-bound, which is why the paper's Trinity/SHARP gap narrows to
/// 1.11x here.
pub fn resnet20(shape: &CkksShape) -> KernelGraph {
    let mut g = KernelGraph::new();
    let opts = KeySwitchOpts::default();
    let l_op = 8.min(shape.levels);
    let mut cur: Vec<KernelId> = Vec::new();

    for layer in 0..20 {
        // Multiplexed convolution: 9 kernel positions x rotations and a
        // large bank of per-channel plaintext multiplies + accumulations
        // (ci x co x 9 diagonal products — EWE-bound, which is why the
        // paper's Trinity/SHARP gap narrows to 1.11x on ResNet).
        let mut rots: Vec<KernelId> = Vec::new();
        for _ in 0..9 {
            rots.extend(hrotate(&mut g, shape, l_op, &cur.clone(), opts));
        }
        let mut terms = Vec::new();
        for d in 0..2304 {
            let dep = [rots[d % rots.len()]];
            terms.extend(pmult(&mut g, shape, l_op, &dep));
            if d % 2 == 1 {
                let last_two = terms[terms.len() - 2..].to_vec();
                terms.extend(hadd(&mut g, shape, l_op, &last_two));
            }
        }
        // Polynomial activation: 2 HMult.
        let mut act = terms;
        for _ in 0..2 {
            let m = hmult(&mut g, shape, l_op, &act, opts);
            act = rescale(&mut g, shape, l_op, &m);
        }
        cur = act;
        // Bootstrap every other layer.
        if layer % 2 == 1 {
            let b = bootstrap(shape);
            let off = g.append(&b, &cur);
            cur = vec![g.len() - 1];
            let _ = off;
        }
    }
    g
}

/// NN-x recipe (Table VIII): depth-`x` MNIST network evaluated neuron by
/// neuron with programmable bootstraps (Chillotti et al.). Each layer is
/// 1024 neurons; one PBS per neuron plus the LWE affine layer.
#[derive(Debug, Clone, Copy)]
pub struct NnRecipe {
    /// Network depth (NN-20/50/100).
    pub layers: usize,
    /// Neurons per layer.
    pub neurons: usize,
}

impl NnRecipe {
    /// The paper's NN-x benchmark.
    pub fn new(layers: usize) -> Self {
        Self {
            layers,
            neurons: 1024,
        }
    }

    /// Total PBS count.
    pub fn total_pbs(&self) -> usize {
        self.layers * self.neurons
    }

    /// End-to-end latency given a sustained PBS throughput (OPS) and the
    /// per-layer affine time.
    pub fn latency_ms(&self, pbs_ops_per_sec: f64, affine_ms_per_layer: f64) -> f64 {
        self.total_pbs() as f64 / pbs_ops_per_sec * 1e3 + self.layers as f64 * affine_ms_per_layer
    }
}

/// HE3DB-x recipe (Table X): TPC-H Query 6 over `entries` rows. The
/// filter evaluates three range predicates per row in TFHE (8-bit
/// comparisons, ~32 PBS/row including combination gates); filter bits
/// are repacked into CKKS in batches of 32 (Table IX's conversion); the
/// aggregation is a CKKS dot product over the packed columns.
#[derive(Debug, Clone, Copy)]
pub struct He3dbRecipe {
    /// Number of table rows.
    pub entries: usize,
    /// PBS per row for the filter.
    pub pbs_per_row: usize,
    /// LWE ciphertexts per repack batch.
    pub pack_batch: usize,
}

impl He3dbRecipe {
    /// The paper's HE3DB-x benchmark.
    pub fn new(entries: usize) -> Self {
        Self {
            entries,
            pbs_per_row: 32,
            pack_batch: 32,
        }
    }

    /// Total PBS count for the filter phase.
    pub fn total_pbs(&self) -> usize {
        self.entries * self.pbs_per_row
    }

    /// Number of repack invocations.
    pub fn repacks(&self) -> usize {
        self.entries / self.pack_batch
    }

    /// End-to-end latency on a single multi-modal accelerator.
    pub fn latency_ms(&self, pbs_ops_per_sec: f64, repack_ms: f64, ckks_aggregate_ms: f64) -> f64 {
        self.total_pbs() as f64 / pbs_ops_per_sec * 1e3
            + self.repacks() as f64 * repack_ms
            + ckks_aggregate_ms
    }

    /// End-to-end latency on a SHARP+Morphling two-chip system: adds the
    /// PCIe traffic for shipping ciphertexts between chips (the paper
    /// assumes a 128 GB/s PCIe 5 link).
    pub fn latency_two_chip_ms(
        &self,
        pbs_ops_per_sec: f64,
        repack_ms: f64,
        ckks_aggregate_ms: f64,
        rlwe_ct_bytes: f64,
        pcie_gbps: f64,
        pcie_latency_us: f64,
    ) -> f64 {
        let base = self.latency_ms(pbs_ops_per_sec, repack_ms, ckks_aggregate_ms);
        // Each repack batch round-trips: RLWE ciphertexts carrying the
        // extraction inputs ship to the TFHE chip's side and the packed
        // results return; plus per-batch link latency.
        let batches = self.repacks() as f64;
        let bytes = batches * 2.0 * rlwe_ct_bytes;
        let transfer_ms = bytes / (pcie_gbps * 1e9) * 1e3;
        let latency_ms = batches * 2.0 * pcie_latency_us / 1e3;
        base + transfer_ms + latency_ms
    }

    /// CKKS aggregation kernel graph: one plaintext multiply and a
    /// rotate-and-sum over the packed slots per packed ciphertext.
    pub fn aggregation_graph(&self, shape: &CkksShape) -> KernelGraph {
        let mut g = KernelGraph::new();
        let opts = KeySwitchOpts::default();
        let l = 2.min(shape.levels);
        for _ in 0..self.repacks() {
            let p = pmult(&mut g, shape, l, &[]);
            let mut cur = p;
            for _ in 0..5 {
                let r = hrotate(&mut g, shape, l, &cur, opts);
                cur = hadd(&mut g, shape, l, &r);
            }
        }
        g
    }
}

/// One NN-x layer as a full kernel DAG: `neurons` independent PBS
/// chains fed by the affine combination (VPU-class LWE arithmetic),
/// sharing one bootstrapping-key load. Table VIII extrapolates whole
/// networks from sustained PBS throughput ([`NnRecipe`]); this builder
/// validates the per-layer structure that extrapolation assumes.
pub fn nn_layer_graph(shape: &crate::tfhe_ops::TfheShape, neurons: usize) -> KernelGraph {
    let mut g = KernelGraph::new();
    let bsk = g.add(
        KernelKind::HbmLoad {
            bytes: shape.bsk_bytes(),
        },
        &[],
    );
    for _ in 0..neurons {
        // The affine fan-in: one accumulation pass over the previous
        // layer's LWE outputs (VPU work, the paper's MAC share).
        let affine = g.add(
            KernelKind::LweKeySwitch {
                n_in: shape.n_lwe,
                n_out: shape.n_lwe,
                levels: 1,
            },
            &[],
        );
        crate::tfhe_ops::pbs(&mut g, shape, &[affine, bsk], false);
    }
    g
}

/// The full HE3DB pipeline as *one* multi-modal kernel DAG — TFHE
/// filter PBS chains, TFHE->CKKS repacking, and the CKKS aggregation —
/// the single-accelerator flow that Table X compares against the
/// SHARP+Morphling two-chip system. Sizes are caller-chosen so tests
/// and benches can scale the row count; the filter emits
/// `pbs_per_row` bootstraps per row and rows are packed in batches of
/// `pack_batch`.
///
/// # Panics
///
/// Panics if `pack_batch` is not a power of two or `rows` is not a
/// multiple of `pack_batch`.
pub fn he3db_hybrid_graph(
    ckks: &CkksShape,
    tfhe: &crate::tfhe_ops::TfheShape,
    rows: usize,
    pbs_per_row: usize,
    pack_batch: usize,
) -> KernelGraph {
    assert!(pack_batch.is_power_of_two(), "pack batch must be 2^k");
    assert_eq!(rows % pack_batch, 0, "rows must fill whole batches");
    let mut g = KernelGraph::new();
    let opts = KeySwitchOpts::default();
    let bsk = g.add(
        KernelKind::HbmLoad {
            bytes: tfhe.bsk_bytes(),
        },
        &[],
    );
    let l = 2.min(ckks.levels);
    for _ in 0..rows / pack_batch {
        // Filter: each row's predicate bits through PBS chains.
        let mut batch_bits = Vec::with_capacity(pack_batch);
        for _ in 0..pack_batch {
            let mut last = vec![bsk];
            for _ in 0..pbs_per_row {
                last = crate::tfhe_ops::pbs(&mut g, tfhe, &last, false);
            }
            batch_bits.extend(last);
        }
        // Conversion: repack the batch of filter bits into one RLWE.
        let mut sub = KernelGraph::new();
        let repack_sinks = crate::conversion::repack(&mut sub, ckks, pack_batch);
        let offset = g.append(&sub, &batch_bits);
        let packed: Vec<KernelId> = repack_sinks.into_iter().map(|s| s + offset).collect();
        // Aggregation: weighted sum over the packed slots in CKKS.
        let prod = pmult(&mut g, ckks, l, &packed);
        let mut cur = prod;
        for _ in 0..pack_batch.trailing_zeros() {
            let r = hrotate(&mut g, ckks, l, &cur, opts);
            let mut deps = r;
            deps.extend_from_slice(&cur);
            cur = hadd(&mut g, ckks, l, &deps);
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use trinity_core::kernel::KernelKind as KK;

    /// Keyswitch invocations = HBM key loads (one per keyswitch).
    fn count_ip(g: &KernelGraph) -> usize {
        g.kernels()
            .iter()
            .filter(|k| matches!(k.kind, KK::HbmLoad { .. }))
            .count()
    }

    #[test]
    fn bootstrap_keyswitch_budget() {
        let g = bootstrap(&CkksShape::paper_default());
        let ks = count_ip(&g);
        // 6 BSGS stages x 16 rotations + 16 relins + 2 conjugations.
        assert_eq!(ks, 6 * 16 + 16 + 2);
        assert!(g.len() > 10_000, "bootstrap graph should be sizeable");
    }

    #[test]
    fn helr_is_rotation_heavy() {
        let g = helr(&CkksShape::paper_default());
        let rots = g
            .kernels()
            .iter()
            .filter(|k| matches!(k.kind, KK::Automorphism { .. }))
            .count();
        let muls = g
            .kernels()
            .iter()
            .filter(|k| matches!(k.kind, KK::ModMul { .. }))
            .count();
        assert!(rots > 40, "HELR rotations {rots}");
        assert!(muls > 0);
    }

    #[test]
    fn resnet_contains_bootstraps() {
        let g = resnet20(&CkksShape::paper_default());
        let ks = count_ip(&g);
        // 10 bootstraps x 114 + per-layer rotations/relins.
        assert!(ks > 10 * 114, "ResNet keyswitches {ks}");
    }

    #[test]
    fn nn_layer_graph_structure() {
        let shape = crate::tfhe_ops::TfheShape::set_i();
        let g = nn_layer_graph(&shape, 16);
        // One affine (VPU) kernel feeding each PBS, plus each PBS's own
        // final keyswitch: 2 per neuron.
        let vpu = g
            .kernels()
            .iter()
            .filter(|k| matches!(k.kind, KK::LweKeySwitch { .. }))
            .count();
        assert_eq!(vpu, 2 * 16);
        // One shared bsk load.
        assert_eq!(count_ip(&g), 1);
        // It schedules on the TFHE mapping.
        let m = trinity_core::mapping::build_machine(
            &trinity_core::arch::AcceleratorConfig::trinity(),
            trinity_core::mapping::MappingPolicy::TfheAdaptive,
        );
        let r = trinity_core::sched::simulate(&m, &g);
        assert!(r.total_cycles > 0);
    }

    #[test]
    fn he3db_hybrid_graph_is_multimodal_and_schedules() {
        let ckks = CkksShape::conversion_benchmark();
        let tfhe = crate::tfhe_ops::TfheShape::set_i();
        let g = he3db_hybrid_graph(&ckks, &tfhe, 16, 2, 8);
        use trinity_core::kernel::KernelClass;
        let classes: std::collections::HashSet<KernelClass> =
            g.kernels().iter().map(|k| k.kind.class()).collect();
        for want in [
            KernelClass::Ntt,
            KernelClass::Mac,
            KernelClass::Rotator,
            KernelClass::Vpu,
            KernelClass::Auto,
        ] {
            assert!(classes.contains(&want), "missing {want:?}");
        }
        let m = trinity_core::mapping::build_machine(
            &trinity_core::arch::AcceleratorConfig::trinity(),
            trinity_core::mapping::MappingPolicy::Hybrid,
        );
        let r = trinity_core::sched::simulate(&m, &g);
        assert!(r.total_cycles > 0);
        // The filter (TFHE) and aggregation (CKKS) both left their mark.
        assert!(r.mean_utilization("NTTU") > 0.0);
        assert!(r.mean_utilization("VPU") > 0.0);
    }

    #[test]
    #[should_panic(expected = "whole batches")]
    fn he3db_graph_rejects_ragged_batches() {
        let ckks = CkksShape::conversion_benchmark();
        let tfhe = crate::tfhe_ops::TfheShape::set_i();
        let _ = he3db_hybrid_graph(&ckks, &tfhe, 10, 2, 8);
    }

    #[test]
    fn nn_recipe_totals() {
        let nn20 = NnRecipe::new(20);
        assert_eq!(nn20.total_pbs(), 20 * 1024);
        // At 340k PBS/s (the paper's Trinity Set-II) NN-20 should land
        // near the paper's 69.86 ms.
        let t = nn20.latency_ms(340_136.0, 0.1);
        assert!((55.0..=80.0).contains(&t), "NN-20 latency {t} ms");
    }

    #[test]
    fn he3db_recipe_totals() {
        let h = He3dbRecipe::new(4096);
        assert_eq!(h.total_pbs(), 4096 * 32);
        assert_eq!(h.repacks(), 128);
        let one_chip = h.latency_ms(600_060.0, 0.142, 20.0);
        let two_chip = h.latency_two_chip_ms(147_615.0, 0.30, 40.0, 1.3e6, 128.0, 5.0);
        assert!(two_chip > 2.0 * one_chip, "{two_chip} vs {one_chip}");
    }
}
