//! Kernel DAG for the scheme-conversion benchmark (paper Table IX):
//! repacking `nslot` LWE ciphertexts into one RLWE ciphertext via ring
//! embedding, PackLWEs (Algorithm 4) and the field trace (Algorithm 5).

use trinity_core::kernel::{KernelGraph, KernelId, KernelKind};

use crate::ckks_ops::{hadd, keyswitch, CkksShape, KeySwitchOpts};

/// One keyswitched automorphism (`HRotate` in the conversion
/// algorithms): automorphism on both components + keyswitch + add.
fn eval_auto(
    g: &mut KernelGraph,
    shape: &CkksShape,
    l: usize,
    deps: &[KernelId],
    opts: KeySwitchOpts,
) -> Vec<KernelId> {
    let autos = g.add_many(
        KernelKind::Automorphism {
            limbs: l + 1,
            n: shape.n,
        },
        2,
        deps,
    );
    let ks = keyswitch(g, shape, l, &autos, opts);
    hadd(g, shape, l, &ks)
}

/// Repacks `nslot` LWE ciphertexts (Algorithms 4 + 5) at level
/// `shape.levels`. Returns sink ids.
///
/// # Panics
///
/// Panics if `nslot` is not a power of two.
pub fn repack(g: &mut KernelGraph, shape: &CkksShape, nslot: usize) -> Vec<KernelId> {
    assert!(nslot.is_power_of_two(), "nslot must be a power of two");
    let l = shape.levels;
    let n = shape.n;
    let opts = KeySwitchOpts::default();

    // Ring embedding: per LWE, scatter the mask (Rotator-style vector
    // op), lift to RNS on the EWE, and NTT the two components.
    let mut packed: Vec<Vec<KernelId>> = (0..nslot)
        .map(|_| {
            let embed = g.add(KernelKind::RotateVec { n }, &[]);
            let lift = g.add(KernelKind::ModMul { limbs: l + 1, n }, &[embed]);
            (0..2 * (l + 1))
                .map(|_| g.add(KernelKind::Ntt { n }, &[lift]))
                .collect()
        })
        .collect();

    // PackLWEs: log2(nslot) merge rounds.
    while packed.len() > 1 {
        let mut next = Vec::with_capacity(packed.len() / 2);
        for pair in packed.chunks(2) {
            let even = &pair[0];
            let odd = &pair[1];
            // X^{N/m} * odd: monomial rotation of both components.
            let rots = g.add_many(KernelKind::RotateVec { n }, 2, odd);
            let mut sum_deps = even.clone();
            sum_deps.extend_from_slice(&rots);
            let sum = g.add(KernelKind::ModAdd { limbs: l + 1, n }, &sum_deps);
            let diff = g.add(KernelKind::ModAdd { limbs: l + 1, n }, &sum_deps);
            let auto = eval_auto(g, shape, l, &[diff], opts);
            let mut merged_deps = auto;
            merged_deps.push(sum);
            let merged = g.add(KernelKind::ModAdd { limbs: l + 1, n }, &merged_deps);
            next.push(vec![merged]);
        }
        packed = next;
    }

    // Field trace: log2(N / nslot) keyswitched automorphisms.
    let steps = (n / nslot).trailing_zeros();
    let mut cur = packed.pop().expect("one ciphertext");
    for _ in 0..steps {
        let auto = eval_auto(g, shape, l, &cur, opts);
        let mut deps = auto;
        deps.extend_from_slice(&cur);
        cur = vec![g.add(KernelKind::ModAdd { limbs: l + 1, n }, &deps)];
    }
    cur
}

/// Number of keyswitched automorphisms the repack performs — the cost
/// driver of Table IX.
pub fn repack_keyswitch_count(n: usize, nslot: usize) -> usize {
    (nslot - 1) + (n / nslot).trailing_zeros() as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyswitch_counts() {
        // N = 2^14 (the Table IX setting).
        assert_eq!(repack_keyswitch_count(1 << 14, 2), 1 + 13);
        assert_eq!(repack_keyswitch_count(1 << 14, 8), 7 + 11);
        assert_eq!(repack_keyswitch_count(1 << 14, 32), 31 + 9);
    }

    #[test]
    fn repack_graph_has_expected_keyswitches() {
        let shape = CkksShape::conversion_benchmark();
        for nslot in [2usize, 8, 32] {
            let mut g = KernelGraph::new();
            repack(&mut g, &shape, nslot);
            // One HBM key-load kernel per keyswitch.
            let ks_count = g
                .kernels()
                .iter()
                .filter(|k| matches!(k.kind, KernelKind::HbmLoad { .. }))
                .count();
            assert_eq!(
                ks_count,
                repack_keyswitch_count(shape.n, nslot),
                "nslot={nslot}"
            );
        }
    }

    #[test]
    fn larger_nslot_means_more_work() {
        let shape = CkksShape::conversion_benchmark();
        let work = |nslot| {
            let mut g = KernelGraph::new();
            repack(&mut g, &shape, nslot);
            let b = g.modmul_breakdown();
            b.ntt + b.mac
        };
        assert!(work(32) > work(8));
        assert!(work(8) > work(2));
    }
}
