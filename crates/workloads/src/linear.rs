//! A functional encrypted linear layer — the diagonal matvec at the
//! heart of HELR and the ResNet-20 linear stages, executed with
//! `fhe-ckks` rather than modeled as a kernel DAG.
//!
//! The other modules in this crate *count* kernels; this one *runs*
//! them, so the hoisted-rotation optimisation can be benchmarked and
//! bit-checked end to end: a layer applying `k` rotations to one
//! ciphertext pays for Decompose + ModUp + the digit NTTs once
//! ([`fhe_ckks::hoist_rotations`]) instead of `k` times, and
//! [`LinearLayer::eval_hoisted`] must produce output bit-identical to
//! [`LinearLayer::eval_sequential`] — the same oracle discipline the
//! lazy-reduction chains are held to.

use std::sync::Arc;

use fhe_ckks::{
    Ciphertext, CkksContext, CkksParams, Encoder, Encryptor, Evaluator, KeyGenerator, KeySet,
    LinearTransform,
};
use fhe_math::Complex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A fully materialised encrypted linear layer: a plaintext diagonal
/// transform, key material covering its rotations, and an encrypted
/// input vector — everything needed to run the matvec either
/// sequentially (one full keyswitch per diagonal) or hoisted (shared
/// ModUp, per-rotation tail only).
pub struct LinearLayer {
    /// CKKS context the layer runs in.
    pub ctx: Arc<CkksContext>,
    /// Slot encoder for the diagonal plaintexts.
    pub encoder: Encoder,
    /// Evaluator; its op counters track the layer's rotations.
    pub evaluator: Evaluator,
    /// Secret + Galois keys covering the layer's rotations.
    pub keys: KeySet,
    /// The plaintext transform, `dim x dim` by generalised diagonals.
    pub transform: LinearTransform,
    /// Encrypted input vector, tiled across all slots.
    pub input: Ciphertext,
}

impl LinearLayer {
    /// Builds a deterministic dense `dim x dim` layer from `seed`:
    /// every generalised diagonal is nonzero, so the layer applies
    /// exactly `dim - 1` rotations (diagonal 0 needs none). Runs at
    /// [`CkksParams::tiny_params`] — the CI-sized shape every
    /// functional oracle suite uses.
    ///
    /// # Panics
    ///
    /// Panics if `dim` is 0 or exceeds the slot count.
    pub fn random(dim: usize, seed: u64) -> Self {
        let ctx = CkksContext::new(CkksParams::tiny_params());
        let mut rng = StdRng::seed_from_u64(seed);
        let encoder = Encoder::new(ctx.clone());
        assert!(dim > 0 && dim <= encoder.slots(), "dim out of range");

        // Dense entries bounded away from zero so no diagonal is
        // pruned and the rotation count is exactly `dim - 1`.
        let matrix: Vec<Complex> = (0..dim * dim)
            .map(|_| {
                let mag = rng.gen_range(0.1..1.0);
                let sign = if rng.gen_bool(0.5) { 1.0 } else { -1.0 };
                Complex::new(sign * mag, 0.0)
            })
            .collect();
        let transform = LinearTransform::from_matrix(&matrix, dim);

        // Input drawn *before* key material so tests can replay the
        // (matrix, input) pair from the seed alone.
        let v: Vec<f64> = (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect();

        let kg = KeyGenerator::new(ctx.clone());
        let keys = kg.key_set(&transform.required_rotations(), &mut rng);
        let encryptor = Encryptor::new(ctx.clone());
        let evaluator = Evaluator::new(ctx.clone());
        let tiled: Vec<f64> = (0..encoder.slots()).map(|j| v[j % dim]).collect();
        let input = encryptor.encrypt_sk(
            &encoder.encode_real(&tiled, ctx.params().max_level()),
            &keys.secret,
            &mut rng,
        );

        Self {
            ctx,
            encoder,
            evaluator,
            keys,
            transform,
            input,
        }
    }

    /// Number of HRotate operations one evaluation performs (the
    /// nonzero diagonals; diagonal 0 rotates by nothing).
    pub fn rotation_count(&self) -> usize {
        self.transform
            .required_rotations()
            .iter()
            .filter(|&&d| d != 0)
            .count()
    }

    /// Sequential evaluation: one complete hybrid keyswitch —
    /// Decompose, ModUp, digit NTTs, inner product, ModDown — per
    /// diagonal rotation ([`LinearTransform::apply`]).
    pub fn eval_sequential(&self) -> Ciphertext {
        self.transform.apply(
            &self.evaluator,
            &self.encoder,
            &self.input,
            &self.keys.galois,
        )
    }

    /// Hoisted evaluation: Decompose + ModUp + digit NTTs once, then
    /// only the automorphism → inner product → ModDown tail per
    /// rotation ([`LinearTransform::apply_hoisted`]). Bit-identical to
    /// [`Self::eval_sequential`].
    pub fn eval_hoisted(&self) -> Ciphertext {
        self.transform.apply_hoisted(
            &self.evaluator,
            &self.encoder,
            &self.input,
            &self.keys.galois,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fhe_ckks::Decryptor;

    /// The hoisted layer is the optimisation under test; the
    /// sequential layer is its oracle. Bit-identity, not closeness.
    #[test]
    fn hoisted_layer_bit_identical_to_sequential() {
        let layer = LinearLayer::random(9, 81);
        assert_eq!(layer.rotation_count(), 8, "9x9 dense layer: 8 rotations");

        let seq = layer.eval_sequential();
        let hoisted = layer.eval_hoisted();
        assert_eq!(hoisted.c0.flat(), seq.c0.flat());
        assert_eq!(hoisted.c1.flat(), seq.c1.flat());
        assert_eq!(hoisted.level, seq.level);
        assert_eq!(hoisted.scale, seq.scale);
    }

    /// Both paths bump the op counters identically — a hoisted
    /// rotation still counts as one galois op + one keyswitch.
    #[test]
    fn hoisted_layer_counts_like_sequential() {
        let layer = LinearLayer::random(8, 82);
        layer.evaluator.counters().reset();
        let _ = layer.eval_sequential();
        let seq_snapshot = layer.evaluator.counters().snapshot();
        layer.evaluator.counters().reset();
        let _ = layer.eval_hoisted();
        assert_eq!(layer.evaluator.counters().snapshot(), seq_snapshot);
    }

    /// The encrypted layer decrypts to the plain matvec.
    #[test]
    fn layer_matches_plain_matvec() {
        let dim = 8usize;
        let seed = 83u64;
        let layer = LinearLayer::random(dim, seed);
        let out = layer.eval_hoisted();
        let decryptor = Decryptor::new(layer.ctx.clone());
        let back = decryptor.decrypt(&out, &layer.keys.secret, &layer.encoder);

        // Recover the plain matrix and input the same way `random` drew
        // them (deterministic seed).
        let mut rng = StdRng::seed_from_u64(seed);
        let matrix: Vec<f64> = (0..dim * dim)
            .map(|_| {
                let mag = rng.gen_range(0.1..1.0);
                let sign = if rng.gen_bool(0.5) { 1.0 } else { -1.0 };
                sign * mag
            })
            .collect();
        let v: Vec<f64> = (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect();

        for r in 0..dim {
            let expect: f64 = (0..dim).map(|c| matrix[r * dim + c] * v[c]).sum();
            assert!(
                (back[r].re - expect).abs() < 1e-2,
                "row {r}: {} vs {expect}",
                back[r].re
            );
        }
    }
}
