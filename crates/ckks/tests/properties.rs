//! Property-based tests: CKKS homomorphism invariants over random data.

use std::sync::OnceLock;

use fhe_ckks::*;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// Shared fixture: key generation is the expensive part, so all cases
/// reuse one key set.
struct Fixture {
    ctx: Arc<CkksContext>,
    keys: KeySet,
    enc: Encoder,
    encryptor: Encryptor,
    eval: Evaluator,
    dec: Decryptor,
}

fn fixture() -> &'static Fixture {
    static FIX: OnceLock<Fixture> = OnceLock::new();
    FIX.get_or_init(|| {
        let ctx = CkksContext::new(CkksParams::tiny_params());
        let mut rng = StdRng::seed_from_u64(401);
        let keys = KeyGenerator::new(ctx.clone()).key_set(&[1, -1], &mut rng);
        Fixture {
            enc: Encoder::new(ctx.clone()),
            encryptor: Encryptor::new(ctx.clone()),
            eval: Evaluator::new(ctx.clone()),
            dec: Decryptor::new(ctx.clone()),
            keys,
            ctx,
        }
    })
}

fn small_vec() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-1.0f64..1.0, 4..12)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// dec(enc(x) + enc(y)) == x + y.
    #[test]
    fn addition_homomorphism(x in small_vec(), y in small_vec(), seed in any::<u64>()) {
        let f = fixture();
        let mut rng = StdRng::seed_from_u64(seed);
        let l = f.ctx.params().max_level();
        let n = x.len().min(y.len());
        let cx = f.encryptor.encrypt_sk(&f.enc.encode_real(&x, l), &f.keys.secret, &mut rng);
        let cy = f.encryptor.encrypt_sk(&f.enc.encode_real(&y, l), &f.keys.secret, &mut rng);
        let out = f.dec.decrypt(&f.eval.add(&cx, &cy), &f.keys.secret, &f.enc);
        for i in 0..n {
            prop_assert!((out[i].re - (x[i] + y[i])).abs() < 1e-3,
                "slot {i}: {} vs {}", out[i].re, x[i] + y[i]);
        }
    }

    /// dec(enc(x) * enc(y)) == x .* y after rescale.
    #[test]
    fn multiplication_homomorphism(x in small_vec(), y in small_vec(), seed in any::<u64>()) {
        let f = fixture();
        let mut rng = StdRng::seed_from_u64(seed);
        let l = f.ctx.params().max_level();
        let n = x.len().min(y.len());
        let cx = f.encryptor.encrypt_sk(&f.enc.encode_real(&x, l), &f.keys.secret, &mut rng);
        let cy = f.encryptor.encrypt_sk(&f.enc.encode_real(&y, l), &f.keys.secret, &mut rng);
        let prod = f.eval.rescale(&f.eval.mul(&cx, &cy, &f.keys.relin));
        let out = f.dec.decrypt(&prod, &f.keys.secret, &f.enc);
        for i in 0..n {
            prop_assert!((out[i].re - x[i] * y[i]).abs() < 1e-2,
                "slot {i}: {} vs {}", out[i].re, x[i] * y[i]);
        }
    }

    /// Rotating by +1 then -1 is the identity.
    #[test]
    fn rotation_inverse(x in small_vec(), seed in any::<u64>()) {
        let f = fixture();
        let mut rng = StdRng::seed_from_u64(seed);
        let l = f.ctx.params().max_level();
        let cx = f.encryptor.encrypt_sk(&f.enc.encode_real(&x, l), &f.keys.secret, &mut rng);
        let g_fwd = fhe_math::galois::rotation_galois_element(1, f.ctx.n());
        let g_bwd = fhe_math::galois::rotation_galois_element(-1, f.ctx.n());
        let there = f.eval.rotate(&cx, 1, &f.keys.galois[&g_fwd]);
        let back = f.eval.rotate(&there, -1, &f.keys.galois[&g_bwd]);
        let out = f.dec.decrypt(&back, &f.keys.secret, &f.enc);
        for (i, &v) in x.iter().enumerate() {
            prop_assert!((out[i].re - v).abs() < 1e-3, "slot {i}");
        }
    }

    /// Scalar distributes: enc(x) * c + enc(x) * d == enc(x) * (c + d).
    #[test]
    fn plaintext_mul_distributes(x in small_vec(), c in -2.0f64..2.0, d in -2.0f64..2.0, seed in any::<u64>()) {
        let f = fixture();
        let mut rng = StdRng::seed_from_u64(seed);
        let l = f.ctx.params().max_level();
        let cx = f.encryptor.encrypt_sk(&f.enc.encode_real(&x, l), &f.keys.secret, &mut rng);
        let pc = f.enc.encode_constant(c, l);
        let pd = f.enc.encode_constant(d, l);
        let lhs = f.eval.add(&f.eval.mul_plain(&cx, &pc), &f.eval.mul_plain(&cx, &pd));
        let sum = f.enc.encode_constant(c + d, l);
        let rhs = f.eval.mul_plain(&cx, &sum);
        let lo = f.dec.decrypt(&f.eval.rescale(&lhs), &f.keys.secret, &f.enc);
        let ro = f.dec.decrypt(&f.eval.rescale(&rhs), &f.keys.secret, &f.enc);
        for i in 0..x.len() {
            prop_assert!((lo[i].re - ro[i].re).abs() < 1e-2, "slot {i}");
        }
    }

    /// Level drop via mod_down preserves the plaintext.
    #[test]
    fn mod_down_preserves_message(x in small_vec(), target in 0usize..3, seed in any::<u64>()) {
        let f = fixture();
        let mut rng = StdRng::seed_from_u64(seed);
        let l = f.ctx.params().max_level();
        let cx = f.encryptor.encrypt_sk(&f.enc.encode_real(&x, l), &f.keys.secret, &mut rng);
        let low = f.eval.mod_down_to(&cx, target);
        let out = f.dec.decrypt(&low, &f.keys.secret, &f.enc);
        for (i, &v) in x.iter().enumerate() {
            prop_assert!((out[i].re - v).abs() < 1e-3, "slot {i} at level {target}");
        }
    }
}

mod chebyshev_props {
    use fhe_ckks::chebyshev::{chebyshev_depth, clenshaw, ChebyshevPoly};
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        /// Interpolating a polynomial of degree d with degree >= d nodes
        /// is exact.
        #[test]
        fn fit_interpolates_polynomials_exactly(
            coeffs in proptest::collection::vec(-2.0f64..2.0, 1..7),
            extra in 0usize..4,
        ) {
            let poly = move |x: f64| {
                coeffs.iter().rev().fold(0.0, |acc, c| acc * x + c)
            };
            let degree = 6 + extra;
            let p = ChebyshevPoly::fit(&poly, -1.0, 1.0, degree);
            for i in 0..32 {
                let x = -1.0 + 2.0 * i as f64 / 31.0;
                prop_assert!((p.eval(x) - poly(x)).abs() < 1e-9, "x={x}");
            }
        }

        /// Clenshaw matches the three-term recurrence evaluation.
        #[test]
        fn clenshaw_matches_recurrence(
            coeffs in proptest::collection::vec(-1.0f64..1.0, 1..24),
            u in -1.0f64..1.0,
        ) {
            // Direct: T_0 = 1, T_1 = u, T_{k+1} = 2u T_k - T_{k-1}.
            let mut t_prev = 1.0;
            let mut t_cur = u;
            let mut direct = coeffs[0];
            for (j, &c) in coeffs.iter().enumerate().skip(1) {
                if j == 1 {
                    direct += c * t_cur;
                } else {
                    let t_next = 2.0 * u * t_cur - t_prev;
                    t_prev = t_cur;
                    t_cur = t_next;
                    direct += c * t_cur;
                }
            }
            prop_assert!((clenshaw(&coeffs, u) - direct).abs() < 1e-9);
        }

        /// The homomorphic evaluator's depth stays logarithmic.
        #[test]
        fn depth_is_logarithmic(degree in 1usize..512) {
            let d = chebyshev_depth(degree);
            let log_bound = (degree.max(2) as f64).log2().ceil() as usize + 1;
            prop_assert!(d <= log_bound, "depth {d} > bound {log_bound} at degree {degree}");
            prop_assert!(d >= 1);
        }

        /// Fitting on a shifted interval agrees with fitting the shifted
        /// function on [-1, 1].
        #[test]
        fn interval_shift_equivariance(a in -4.0f64..0.0, width in 0.5f64..4.0) {
            let b = a + width;
            let f = |x: f64| (x * 0.7).sin();
            let direct = ChebyshevPoly::fit(f, a, b, 16);
            let remapped = ChebyshevPoly::fit(
                |u| f(0.5 * (u * (b - a) + a + b)),
                -1.0,
                1.0,
                16,
            );
            for i in 0..16 {
                let x = a + width * i as f64 / 15.0;
                let u = (2.0 * x - a - b) / (b - a);
                prop_assert!((direct.eval(x) - remapped.eval(u)).abs() < 1e-9);
            }
        }
    }
}
