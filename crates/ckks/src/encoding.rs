//! CKKS encoding: the canonical embedding between complex slot vectors
//! and plaintext polynomials.
//!
//! A plaintext polynomial `p` with real coefficients encodes the slot
//! vector `z_j = p(zeta^{5^j})`, `j = 0..N/2-1`, where `zeta = e^{i pi/N}`
//! is a primitive 2N-th root of unity — this is why CKKS rotations use
//! Galois elements `5^r` (the paper's `Auto` kernel). Encoding inverts
//! the embedding and scales by `Delta` before rounding.
//!
//! Both directions run through a single 2N-point FFT by placing the slot
//! values at the exponents `5^j mod 2N` of the spectrum (and conjugates
//! at `-5^j`), costing `O(N log N)`.

use std::sync::Arc;

use fhe_math::{Complex, Representation, RnsBasis, RnsPoly};

use crate::context::CkksContext;

/// A CKKS plaintext: an RNS polynomial plus the scale it was encoded at.
#[derive(Debug, Clone)]
pub struct Plaintext {
    /// The encoded polynomial (evaluation form, at some level).
    pub poly: RnsPoly,
    /// Scale Delta the slots were multiplied by.
    pub scale: f64,
    /// Level the plaintext lives at.
    pub level: usize,
}

/// Encoder/decoder for a CKKS context.
#[derive(Debug, Clone)]
pub struct Encoder {
    ctx: Arc<CkksContext>,
    /// 5^j mod 2N for j in 0..N/2.
    rot_group: Vec<usize>,
}

impl Encoder {
    /// Creates an encoder for a context.
    pub fn new(ctx: Arc<CkksContext>) -> Self {
        let n = ctx.n();
        let mut rot_group = Vec::with_capacity(n / 2);
        let mut e = 1usize;
        for _ in 0..n / 2 {
            rot_group.push(e);
            e = (e * 5) % (2 * n);
        }
        Self { ctx, rot_group }
    }

    /// Number of slots.
    pub fn slots(&self) -> usize {
        self.ctx.n() / 2
    }

    /// Encodes complex slots into a plaintext at `level` with the default
    /// scale. Unfilled slots are zero.
    ///
    /// # Panics
    ///
    /// Panics if more than `N/2` slots are supplied.
    pub fn encode(&self, slots: &[Complex], level: usize) -> Plaintext {
        self.encode_at_scale(slots, level, self.ctx.params().scale())
    }

    /// Encodes complex slots at an explicit scale.
    ///
    /// # Panics
    ///
    /// Panics if more than `N/2` slots are supplied or the scaled
    /// coefficients overflow the 62-bit signed range.
    pub fn encode_at_scale(&self, slots: &[Complex], level: usize, scale: f64) -> Plaintext {
        let n = self.ctx.n();
        assert!(slots.len() <= n / 2, "too many slots");
        // Spectrum S of length 2N: S[5^j] = z_j, S[2N - 5^j] = conj(z_j).
        let mut s = vec![Complex::default(); 2 * n];
        for (j, &z) in slots.iter().enumerate() {
            let e = self.rot_group[j];
            s[e] = z;
            s[2 * n - e] = z.conj();
        }
        // a_i = (1/N) * Re( DFT_2N(S)[i] ) for i < N  — forward FFT uses
        // the e^{-2 pi i jk / 2N} kernel, matching the derivation in the
        // module docs (the conjugate pair already doubles the real part).
        self.ctx.encode_fft().forward(&mut s);
        let basis = self.ctx.level_basis(level).clone();
        let inv_n = 1.0 / n as f64;
        let coeffs: Vec<i64> = (0..n)
            .map(|i| {
                let v = s[i].re * inv_n * scale;
                assert!(
                    v.abs() < 4.6e18,
                    "encoded coefficient overflows i64; reduce scale"
                );
                v.round() as i64
            })
            .collect();
        let mut poly = RnsPoly::from_signed_coeffs(basis, &coeffs);
        poly.to_eval();
        Plaintext { poly, scale, level }
    }

    /// Encodes a vector of reals (imaginary parts zero).
    pub fn encode_real(&self, values: &[f64], level: usize) -> Plaintext {
        let slots: Vec<Complex> = values.iter().map(|&v| Complex::new(v, 0.0)).collect();
        self.encode(&slots, level)
    }

    /// Encodes a single constant into all slots.
    pub fn encode_constant(&self, value: f64, level: usize) -> Plaintext {
        self.encode_real(&vec![value; self.slots()], level)
    }

    /// Decodes a plaintext back to complex slots.
    pub fn decode(&self, pt: &Plaintext) -> Vec<Complex> {
        let mut poly = pt.poly.clone();
        poly.to_coeff();
        self.decode_poly(&poly, pt.scale)
    }

    /// Decodes a coefficient-form polynomial at a known scale.
    ///
    /// # Panics
    ///
    /// Panics if the polynomial is in evaluation form.
    pub fn decode_poly(&self, poly: &RnsPoly, scale: f64) -> Vec<Complex> {
        assert_eq!(poly.representation(), Representation::Coeff);
        let n = self.ctx.n();
        let centered = poly.to_centered_f64();
        // z_j = sum_i a_i zeta^{i * 5^j}: positive-kernel 2N-point DFT,
        // i.e. the inverse FFT scaled by 2N.
        let mut s: Vec<Complex> = centered
            .iter()
            .map(|&c| Complex::new(c, 0.0))
            .chain(std::iter::repeat_n(Complex::default(), n))
            .collect();
        self.ctx.encode_fft().inverse(&mut s);
        let scale_up = 2.0 * n as f64 / scale;
        (0..n / 2)
            .map(|j| s[self.rot_group[j]] * scale_up)
            .collect()
    }

    /// Reference to the underlying basis for a level (test helper).
    pub fn level_basis(&self, level: usize) -> Arc<RnsBasis> {
        self.ctx.level_basis(level).clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::CkksParams;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn encoder() -> Encoder {
        Encoder::new(CkksContext::new(CkksParams::tiny_params()))
    }

    #[test]
    fn encode_decode_roundtrip() {
        let enc = encoder();
        let mut rng = StdRng::seed_from_u64(21);
        let slots: Vec<Complex> = (0..enc.slots())
            .map(|_| Complex::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
            .collect();
        let pt = enc.encode(&slots, 2);
        let back = enc.decode(&pt);
        for (a, b) in slots.iter().zip(&back) {
            assert!((a.re - b.re).abs() < 1e-6, "{} vs {}", a.re, b.re);
            assert!((a.im - b.im).abs() < 1e-6);
        }
    }

    #[test]
    fn constant_encoding_fills_all_slots() {
        let enc = encoder();
        let pt = enc.encode_constant(0.5, 1);
        let back = enc.decode(&pt);
        assert_eq!(back.len(), enc.slots());
        for z in back {
            assert!((z.re - 0.5).abs() < 1e-6);
            assert!(z.im.abs() < 1e-6);
        }
    }

    #[test]
    fn partial_slots_zero_filled() {
        let enc = encoder();
        let pt = enc.encode_real(&[1.0, 2.0, 3.0], 1);
        let back = enc.decode(&pt);
        assert!((back[0].re - 1.0).abs() < 1e-6);
        assert!((back[1].re - 2.0).abs() < 1e-6);
        assert!((back[2].re - 3.0).abs() < 1e-6);
        for z in &back[3..] {
            assert!(z.re.abs() < 1e-6 && z.im.abs() < 1e-6);
        }
    }

    #[test]
    fn encoding_is_additive() {
        // encode(x) + encode(y) decodes to x + y: the embedding is linear.
        let enc = encoder();
        let x = vec![0.25, -0.5, 0.125];
        let y = vec![0.5, 0.25, -0.75];
        let px = enc.encode_real(&x, 1);
        let py = enc.encode_real(&y, 1);
        let mut sum = px.poly.clone();
        sum.add_assign(&py.poly);
        let pt = Plaintext {
            poly: sum,
            scale: px.scale,
            level: 1,
        };
        let back = enc.decode(&pt);
        for i in 0..3 {
            assert!((back[i].re - (x[i] + y[i])).abs() < 1e-6);
        }
    }

    #[test]
    fn plaintext_product_is_slotwise_product() {
        // The whole point of the embedding: ring multiplication acts
        // slot-wise. encode(x)*encode(y) decodes (at scale^2) to x.*y.
        let enc = encoder();
        let x = vec![0.5, -0.25, 0.75, 1.0];
        let y = vec![0.25, 0.5, -0.5, -1.0];
        let px = enc.encode_real(&x, 1);
        let py = enc.encode_real(&y, 1);
        let mut prod = px.poly.clone();
        prod.mul_assign_pointwise(&py.poly);
        let pt = Plaintext {
            poly: prod,
            scale: px.scale * py.scale,
            level: 1,
        };
        let back = enc.decode(&pt);
        for i in 0..4 {
            assert!(
                (back[i].re - x[i] * y[i]).abs() < 1e-5,
                "slot {i}: {} vs {}",
                back[i].re,
                x[i] * y[i]
            );
        }
    }

    #[test]
    fn rotation_galois_permutes_slots() {
        // Applying sigma_{5} to the plaintext rotates the slot vector by
        // one position — the algebraic fact behind HRotate.
        let enc = encoder();
        let ctx = CkksContext::new(CkksParams::tiny_params());
        let vals: Vec<f64> = (0..8).map(|i| (i + 1) as f64 / 8.0).collect();
        let pt = enc.encode_real(&vals, 1);
        let mut poly = pt.poly.clone();
        poly.automorphism(
            fhe_math::galois::rotation_galois_element(1, ctx.n()),
            ctx.galois(),
        );
        let rotated = Plaintext {
            poly,
            scale: pt.scale,
            level: 1,
        };
        let back = enc.decode(&rotated);
        // Slot j of the rotated plaintext holds original slot j+1.
        for j in 0..7 {
            assert!(
                (back[j].re - vals[j + 1]).abs() < 1e-6,
                "slot {j}: {} vs {}",
                back[j].re,
                vals[j + 1]
            );
        }
    }
}
