//! Key material: secret, public, relinearisation, and Galois keys.
//!
//! Switching keys follow the hybrid-keyswitch construction the paper
//! accelerates (Algorithm 1, after Han–Ki): the chain `q_0..q_L` is
//! partitioned into `dnum` digits; for each digit `j` the key holds an
//! RLWE sample over the extended modulus `Q * P` whose message is
//! `P * G_j * s_from`, where the gadget `G_j = (Q/D_j) * [(Q/D_j)^{-1}]_{D_j}`
//! has residues `P mod q_i` on the digit's own limbs and `0` everywhere
//! else — so key generation never touches big integers.

use std::collections::HashMap;
use std::sync::Arc;

use fhe_math::{sampler, Representation, RnsPoly};
use rand::Rng;

use crate::context::CkksContext;

/// The ternary secret key.
#[derive(Debug, Clone)]
pub struct SecretKey {
    /// Signed coefficients in {-1, 0, 1}.
    coeffs: Vec<i64>,
    /// Cached evaluation-form secret over the full extended basis.
    full_eval: RnsPoly,
}

impl SecretKey {
    /// Samples a fresh ternary secret.
    pub fn generate<R: Rng + ?Sized>(ctx: &Arc<CkksContext>, rng: &mut R) -> Self {
        let coeffs = sampler::ternary(rng, ctx.n(), ctx.params().secret_hamming_weight);
        Self::from_coeffs(ctx, coeffs)
    }

    /// Builds a secret key from explicit ternary coefficients (used by
    /// the scheme-conversion layer, which must share secrets with TFHE).
    ///
    /// # Panics
    ///
    /// Panics if the length differs from the ring degree or any entry is
    /// outside {-1, 0, 1}.
    pub fn from_coeffs(ctx: &Arc<CkksContext>, coeffs: Vec<i64>) -> Self {
        assert_eq!(coeffs.len(), ctx.n());
        assert!(coeffs.iter().all(|&c| (-1..=1).contains(&c)));
        let mut full_eval = RnsPoly::from_signed_coeffs(ctx.full_basis().clone(), &coeffs);
        full_eval.to_eval();
        Self { coeffs, full_eval }
    }

    /// The signed coefficients.
    pub fn coeffs(&self) -> &[i64] {
        &self.coeffs
    }

    /// Evaluation-form secret over the level-`l` basis.
    pub fn poly_at_level(&self, ctx: &CkksContext, l: usize) -> RnsPoly {
        let n = self.full_eval.n();
        let data = self.full_eval.flat()[..(l + 1) * n].to_vec();
        RnsPoly::from_flat(ctx.level_basis(l).clone(), data, Representation::Eval)
    }

    /// Evaluation-form secret over the extended level-`l` basis
    /// (`q_0..q_l ++ P`).
    pub fn poly_extended(&self, ctx: &CkksContext, l: usize) -> RnsPoly {
        let n = self.full_eval.n();
        let max_l = ctx.params().max_level();
        let mut data = self.full_eval.flat()[..(l + 1) * n].to_vec();
        data.extend_from_slice(&self.full_eval.flat()[(max_l + 1) * n..]);
        RnsPoly::from_flat(ctx.extended_basis(l).clone(), data, Representation::Eval)
    }
}

/// A public encryption key: an RLWE sample `(b, a)` with `b = -a s + e`
/// over the full `q`-chain.
#[derive(Debug, Clone)]
pub struct PublicKey {
    /// `b = -a s + e` (evaluation form, level L).
    pub b: RnsPoly,
    /// Uniform `a` (evaluation form, level L).
    pub a: RnsPoly,
}

impl PublicKey {
    /// Measured heap bytes of this key's residue buffers (allocated
    /// `Vec` capacities) — the unit a byte-budgeted key cache accounts
    /// in.
    pub fn key_bytes(&self) -> usize {
        self.b.heap_bytes() + self.a.heap_bytes()
    }
}

/// A switching key: one RLWE sample per digit over `Q * P`.
#[derive(Debug, Clone)]
pub struct SwitchingKey {
    /// Per-digit pairs `(b_j, a_j)` in evaluation form over the full
    /// extended basis.
    pub rows: Vec<(RnsPoly, RnsPoly)>,
}

impl SwitchingKey {
    /// Generates a key switching `s_from -> s_to`.
    ///
    /// `s_from` and `s_to` are evaluation-form polynomials over the full
    /// extended basis.
    pub fn generate<R: Rng + ?Sized>(
        ctx: &Arc<CkksContext>,
        s_from: &RnsPoly,
        s_to: &RnsPoly,
        rng: &mut R,
    ) -> Self {
        let params = ctx.params();
        let full = ctx.full_basis().clone();
        let n = ctx.n();
        let max_l = params.max_level();
        let dnum_digits = params.beta_at_level(max_l);
        let mut rows = Vec::with_capacity(dnum_digits);
        for j in 0..dnum_digits {
            // Uniform a_j over the extended basis.
            let mut a_flat = Vec::with_capacity(full.len() * n);
            for m in full.moduli() {
                a_flat.extend(sampler::uniform_residues(rng, m, n));
            }
            let a = RnsPoly::from_flat(full.clone(), a_flat, Representation::Eval);
            // e_j small.
            let mut e =
                RnsPoly::from_signed_coeffs(full.clone(), &sampler::gaussian(rng, n, params.sigma));
            e.to_eval();
            // Gadget residues: P mod q_i on digit-j q-limbs, else 0.
            let digit: Vec<usize> = params.digit_limbs(j).collect();
            let gadget: Vec<u64> = full
                .moduli()
                .iter()
                .enumerate()
                .map(|(i, m)| {
                    if i <= max_l && digit.contains(&i) {
                        let mut p_mod = 1u64;
                        for &p in &params.p_special {
                            p_mod = m.mul(p_mod, m.reduce(p));
                        }
                        p_mod
                    } else {
                        0
                    }
                })
                .collect();
            // b_j = -a_j * s_to + e_j + gadget ⊙ s_from.
            let mut b = a.clone();
            b.mul_assign_pointwise(s_to);
            b.neg_assign();
            b.add_assign(&e);
            let mut gs = s_from.clone();
            gs.mul_scalar_residues(&gadget);
            b.add_assign(&gs);
            rows.push((b, a));
        }
        Self { rows }
    }

    /// Restricts digit `j`'s pair to the extended basis of level `l`
    /// (residues for `q_0..q_l ++ P`).
    pub fn row_at_level(&self, ctx: &CkksContext, j: usize, l: usize) -> (RnsPoly, RnsPoly) {
        let max_l = ctx.params().max_level();
        let target = ctx.extended_basis(l).clone();
        let select = |p: &RnsPoly| {
            let n = p.n();
            let mut data = p.flat()[..(l + 1) * n].to_vec();
            data.extend_from_slice(&p.flat()[(max_l + 1) * n..]);
            RnsPoly::from_flat(target.clone(), data, Representation::Eval)
        };
        let (b, a) = &self.rows[j];
        (select(b), select(a))
    }

    /// Measured heap bytes of this key: the allocated capacity of every
    /// per-digit residue buffer plus the row `Vec`'s own backing
    /// storage. Switching keys (relinearisation and one per Galois
    /// element) are the dominant per-tenant state a serving layer
    /// holds, so its key cache evicts by this number.
    pub fn key_bytes(&self) -> usize {
        let rows = self.rows.capacity() * std::mem::size_of::<(RnsPoly, RnsPoly)>();
        rows + self
            .rows
            .iter()
            .map(|(b, a)| b.heap_bytes() + a.heap_bytes())
            .sum::<usize>()
    }
}

/// The full key set most applications need.
#[derive(Debug)]
pub struct KeySet {
    /// The secret key.
    pub secret: SecretKey,
    /// Public encryption key.
    pub public: PublicKey,
    /// Relinearisation key (`s^2 -> s`).
    pub relin: SwitchingKey,
    /// Galois keys by Galois element.
    pub galois: HashMap<u64, SwitchingKey>,
}

/// Generates key material for a context.
#[derive(Debug)]
pub struct KeyGenerator {
    ctx: Arc<CkksContext>,
}

impl KeyGenerator {
    /// Creates a generator bound to a context.
    pub fn new(ctx: Arc<CkksContext>) -> Self {
        Self { ctx }
    }

    /// Samples a secret key.
    pub fn secret_key<R: Rng + ?Sized>(&self, rng: &mut R) -> SecretKey {
        SecretKey::generate(&self.ctx, rng)
    }

    /// Derives the public key for a secret.
    pub fn public_key<R: Rng + ?Sized>(&self, sk: &SecretKey, rng: &mut R) -> PublicKey {
        let l = self.ctx.params().max_level();
        let basis = self.ctx.level_basis(l).clone();
        let n = self.ctx.n();
        let mut a_flat = Vec::with_capacity(basis.len() * n);
        for m in basis.moduli() {
            a_flat.extend(sampler::uniform_residues(rng, m, n));
        }
        let a = RnsPoly::from_flat(basis.clone(), a_flat, Representation::Eval);
        let mut e =
            RnsPoly::from_signed_coeffs(basis, &sampler::gaussian(rng, n, self.ctx.params().sigma));
        e.to_eval();
        let s = sk.poly_at_level(&self.ctx, l);
        let mut b = a.clone();
        b.mul_assign_pointwise(&s);
        b.neg_assign();
        b.add_assign(&e);
        PublicKey { b, a }
    }

    /// Relinearisation key: switches `s^2` back to `s`.
    pub fn relin_key<R: Rng + ?Sized>(&self, sk: &SecretKey, rng: &mut R) -> SwitchingKey {
        let l = self.ctx.params().max_level();
        let s = sk.poly_extended(&self.ctx, l);
        let mut s2 = s.clone();
        s2.mul_assign_pointwise(&s);
        SwitchingKey::generate(&self.ctx, &s2, &s, rng)
    }

    /// Galois key for automorphism `X -> X^g`: switches `sigma_g(s) -> s`.
    pub fn galois_key<R: Rng + ?Sized>(&self, sk: &SecretKey, g: u64, rng: &mut R) -> SwitchingKey {
        let l = self.ctx.params().max_level();
        let s = sk.poly_extended(&self.ctx, l);
        let mut s_g = s.clone();
        s_g.automorphism(g, self.ctx.galois());
        SwitchingKey::generate(&self.ctx, &s_g, &s, rng)
    }

    /// Generates the complete key set with Galois keys for the listed
    /// rotations (by slot count; conjugation key is always included).
    pub fn key_set<R: Rng + ?Sized>(&self, rotations: &[i64], rng: &mut R) -> KeySet {
        let sk = self.secret_key(rng);
        let pk = self.public_key(&sk, rng);
        let rlk = self.relin_key(&sk, rng);
        let mut galois = HashMap::new();
        for &r in rotations {
            let g = fhe_math::galois::rotation_galois_element(r, self.ctx.n());
            galois
                .entry(g)
                .or_insert_with(|| self.galois_key(&sk, g, rng));
        }
        let conj = fhe_math::galois::conjugation_galois_element(self.ctx.n());
        galois
            .entry(conj)
            .or_insert_with(|| self.galois_key(&sk, conj, rng));
        KeySet {
            secret: sk,
            public: pk,
            relin: rlk,
            galois,
        }
    }

    /// The bound context.
    pub fn context(&self) -> &Arc<CkksContext> {
        &self.ctx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::CkksParams;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn secret_key_has_requested_weight() {
        let ctx = CkksContext::new(CkksParams::tiny_params());
        let mut rng = StdRng::seed_from_u64(31);
        let sk = SecretKey::generate(&ctx, &mut rng);
        let h = ctx.params().secret_hamming_weight.unwrap();
        assert_eq!(sk.coeffs().iter().filter(|&&c| c != 0).count(), h);
    }

    #[test]
    fn public_key_is_valid_rlwe_sample() {
        // b + a*s must be small (the error term).
        let ctx = CkksContext::new(CkksParams::tiny_params());
        let mut rng = StdRng::seed_from_u64(32);
        let kg = KeyGenerator::new(ctx.clone());
        let sk = kg.secret_key(&mut rng);
        let pk = kg.public_key(&sk, &mut rng);
        let l = ctx.params().max_level();
        let s = sk.poly_at_level(&ctx, l);
        let mut check = pk.a.clone();
        check.mul_assign_pointwise(&s);
        check.add_assign(&pk.b);
        check.to_coeff();
        let vals = check.to_centered_f64();
        let bound = 6.0 * ctx.params().sigma + 1.0;
        for v in vals {
            assert!(v.abs() <= bound, "error coefficient {v} too large");
        }
    }

    /// `key_bytes` must equal the manual sum of the underlying `Vec`
    /// capacities — the cache's eviction arithmetic is only as honest
    /// as this accounting.
    #[test]
    fn key_bytes_pins_to_manual_capacity_sums() {
        let ctx = CkksContext::new(CkksParams::tiny_params());
        let mut rng = StdRng::seed_from_u64(34);
        let kg = KeyGenerator::new(ctx.clone());
        let sk = kg.secret_key(&mut rng);

        let pk = kg.public_key(&sk, &mut rng);
        let word = std::mem::size_of::<u64>();
        let poly_bytes = |p: &fhe_math::RnsPoly| std::mem::size_of_val(p.flat());
        // These buffers are built exactly-sized (with_capacity +
        // extend), so capacity == len and the manual sum is exact.
        assert_eq!(pk.key_bytes(), poly_bytes(&pk.b) + poly_bytes(&pk.a));
        // Sanity: full q-chain, both halves, nonzero.
        let expect_rows = ctx.params().max_level() + 1;
        assert_eq!(pk.key_bytes(), 2 * expect_rows * ctx.n() * word);

        let rlk = kg.relin_key(&sk, &mut rng);
        let manual: usize = rlk.rows.capacity() * std::mem::size_of::<(RnsPoly, RnsPoly)>()
            + rlk
                .rows
                .iter()
                .map(|(b, a)| poly_bytes(b) + poly_bytes(a))
                .sum::<usize>();
        assert_eq!(rlk.key_bytes(), manual);
        // Each digit row spans the full extended basis.
        let full_rows = ctx.full_basis().len();
        assert!(rlk.key_bytes() >= rlk.rows.len() * 2 * full_rows * ctx.n() * word);

        // Galois keys share the construction, and distinct keys of one
        // context measure identically — what lets a cache predict the
        // cost of admitting a tenant before generating anything.
        let g = fhe_math::galois::rotation_galois_element(1, ctx.n());
        let gk = kg.galois_key(&sk, g, &mut rng);
        assert_eq!(gk.key_bytes(), rlk.key_bytes());
    }

    #[test]
    fn switching_key_satisfies_gadget_relation() {
        // For each digit j: b_j + a_j*s = e_j + gadget_j ⊙ s_from, so
        // (b_j + a_j*s - gadget⊙s_from) must be small on every limb.
        let ctx = CkksContext::new(CkksParams::tiny_params());
        let mut rng = StdRng::seed_from_u64(33);
        let kg = KeyGenerator::new(ctx.clone());
        let sk = kg.secret_key(&mut rng);
        let rlk = kg.relin_key(&sk, &mut rng);
        let l = ctx.params().max_level();
        let s = sk.poly_extended(&ctx, l);
        let mut s2 = s.clone();
        s2.mul_assign_pointwise(&s);
        let full = ctx.full_basis();
        for (j, (b, a)) in rlk.rows.iter().enumerate() {
            let mut check = a.clone();
            check.mul_assign_pointwise(&s);
            check.add_assign(b);
            // Subtract gadget ⊙ s^2.
            let digit: Vec<usize> = ctx.params().digit_limbs(j).collect();
            let gadget: Vec<u64> = full
                .moduli()
                .iter()
                .enumerate()
                .map(|(i, m)| {
                    if i <= l && digit.contains(&i) {
                        let mut p_mod = 1u64;
                        for &p in &ctx.params().p_special {
                            p_mod = m.mul(p_mod, m.reduce(p));
                        }
                        p_mod
                    } else {
                        0
                    }
                })
                .collect();
            let mut gs = s2.clone();
            gs.mul_scalar_residues(&gadget);
            check.sub_assign(&gs);
            check.to_coeff();
            // Every limb should hold the same small error polynomial.
            let bound = 6.0 * ctx.params().sigma + 1.0;
            for (row, m) in check.flat().chunks_exact(ctx.n()).zip(full.moduli()) {
                for &c in row {
                    let centered = m.to_centered(c);
                    assert!(
                        (centered as f64).abs() <= bound,
                        "digit {j}: residue {centered} too large"
                    );
                }
            }
        }
    }
}
