//! CKKS parameter sets.
//!
//! The paper's default CKKS configuration (Table IV) is `N = 2^16`,
//! `L = 35`, `dnum = 3` at 128-bit security with a 36-bit word. The
//! functional layer runs the same algorithms at reduced ring degrees so
//! tests finish quickly; [`CkksParams::paper_default`] records the paper
//! configuration for the performance model, and
//! [`CkksParams::test_params`] is the workhorse for functional tests.

use fhe_math::prime;

/// Parameters of an RNS-CKKS instance.
#[derive(Debug, Clone)]
pub struct CkksParams {
    /// Ring degree `N` (power of two). Slots = N/2.
    pub n: usize,
    /// Prime chain `q_0 .. q_L` (level `l` uses the first `l+1`).
    pub q_chain: Vec<u64>,
    /// Special primes `p_0 .. p_{alpha-1}` for hybrid keyswitching.
    pub p_special: Vec<u64>,
    /// log2 of the encoding scale Delta.
    pub scale_bits: u32,
    /// Decomposition number for hybrid keyswitch (digits).
    pub dnum: usize,
    /// Hamming weight of the ternary secret (None = dense i.i.d.).
    pub secret_hamming_weight: Option<usize>,
    /// Error standard deviation.
    pub sigma: f64,
}

/// Error produced when a parameter set is inconsistent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvalidParamsError(pub String);

impl std::fmt::Display for InvalidParamsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid CKKS parameters: {}", self.0)
    }
}

impl std::error::Error for InvalidParamsError {}

impl CkksParams {
    /// Builds a parameter set with a freshly generated prime chain.
    ///
    /// `levels` is the maximum multiplicative level `L`; the chain holds
    /// `L + 1` primes. The first prime and the special primes are
    /// `scale_bits + 10` bits for decryption headroom and keyswitch noise
    /// control; the rest sit within 2N of `2^scale_bits` so rescaling
    /// preserves the scale to high precision.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidParamsError`] if the geometry is unsatisfiable
    /// (non-power-of-two `n`, zero `dnum`, too many primes requested for
    /// the bit range, ...).
    pub fn new(
        n: usize,
        levels: usize,
        scale_bits: u32,
        dnum: usize,
    ) -> Result<Self, InvalidParamsError> {
        if !n.is_power_of_two() || n < 8 {
            return Err(InvalidParamsError(format!(
                "n={n} must be a power of two >= 8"
            )));
        }
        if dnum == 0 || dnum > levels + 1 {
            return Err(InvalidParamsError(format!(
                "dnum={dnum} must be in [1, L+1={}]",
                levels + 1
            )));
        }
        if !(20..=50).contains(&scale_bits) {
            return Err(InvalidParamsError(format!(
                "scale_bits={scale_bits} outside supported range [20, 50]"
            )));
        }
        let big_bits = scale_bits + 10;
        // q_0: one big prime; q_1..q_L: primes hugging 2^scale_bits.
        let q0 = prime::ntt_primes(big_bits, n, 1)[0];
        let mut q_chain = vec![q0];
        if levels > 0 {
            // Alternate above/below 2^scale_bits to keep the product of
            // ratios near 1 (standard scale-drift control).
            let mut found = Vec::new();
            let step = 2 * n as u64;
            let target = 1u64 << scale_bits;
            let mut k = 0u64;
            while found.len() < levels {
                for cand in [target + 1 + k * step, target + 1 - (k + 1) * step] {
                    if found.len() < levels
                        && prime::is_prime(cand)
                        && cand % step == 1
                        && cand != q0
                        && !found.contains(&cand)
                    {
                        found.push(cand);
                    }
                }
                k += 1;
                if k > 1 << 22 {
                    return Err(InvalidParamsError(format!(
                        "could not find {levels} scale primes near 2^{scale_bits}"
                    )));
                }
            }
            q_chain.extend(found);
        }
        // alpha special primes, alpha = ceil((L+1)/dnum) (Table I).
        let alpha = (levels + 1).div_ceil(dnum);
        let mut p_special = Vec::new();
        let mut bits = big_bits;
        while p_special.len() < alpha {
            for p in prime::ntt_primes(bits, n, alpha.min(8)) {
                if p_special.len() < alpha && !q_chain.contains(&p) && !p_special.contains(&p) {
                    p_special.push(p);
                }
            }
            bits += 1;
        }
        Ok(Self {
            n,
            q_chain,
            p_special,
            scale_bits,
            dnum,
            secret_hamming_weight: Some((n / 16).clamp(32, 192)),
            sigma: fhe_math::sampler::DEFAULT_SIGMA,
        })
    }

    /// Small but real parameter set used by the test suite:
    /// `N = 2^12`, `L = 4`, 36-bit scale, `dnum = 3`.
    pub fn test_params() -> Self {
        Self::new(1 << 12, 4, 36, 3).expect("test parameters are valid")
    }

    /// A tiny parameter set for fast unit tests (`N = 2^10`, `L = 3`).
    pub fn tiny_params() -> Self {
        Self::new(1 << 10, 3, 30, 2).expect("tiny parameters are valid")
    }

    /// The paper's default CKKS configuration (Table IV): `N = 2^16`,
    /// `L = 35`, `dnum = 3`, 128-bit security target.
    ///
    /// Intended for the performance model; running the functional layer
    /// at this size works but is slow.
    pub fn paper_default() -> Self {
        Self::new(1 << 16, 35, 36, 3).expect("paper parameters are valid")
    }

    /// Maximum level `L`.
    pub fn max_level(&self) -> usize {
        self.q_chain.len() - 1
    }

    /// Number of RNS moduli per digit, `alpha = ceil((L+1)/dnum)`.
    pub fn alpha(&self) -> usize {
        self.q_chain.len().div_ceil(self.dnum)
    }

    /// Number of digits at level `l`, `beta = ceil((l+1)/alpha)`.
    pub fn beta_at_level(&self, l: usize) -> usize {
        (l + 1).div_ceil(self.alpha())
    }

    /// Number of slots (N/2).
    pub fn slots(&self) -> usize {
        self.n / 2
    }

    /// The encoding scale Delta.
    pub fn scale(&self) -> f64 {
        2f64.powi(self.scale_bits as i32)
    }

    /// Limb indices (into `0..=L`) belonging to digit `j`.
    pub fn digit_limbs(&self, j: usize) -> std::ops::Range<usize> {
        let a = self.alpha();
        let start = j * a;
        let end = ((j + 1) * a).min(self.q_chain.len());
        start..end
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_geometry() {
        let p = CkksParams::test_params();
        assert_eq!(p.max_level(), 4);
        assert_eq!(p.q_chain.len(), 5);
        assert_eq!(p.alpha(), 2); // ceil(5/3)
        assert_eq!(p.p_special.len(), 2);
        assert_eq!(p.beta_at_level(4), 3);
        assert_eq!(p.beta_at_level(1), 1);
        assert_eq!(p.beta_at_level(2), 2);
    }

    #[test]
    fn scale_primes_hug_target() {
        let p = CkksParams::test_params();
        let target = 1u64 << p.scale_bits;
        for &q in &p.q_chain[1..] {
            let rel = (q as f64 - target as f64).abs() / target as f64;
            assert!(rel < 1e-3, "prime {q} too far from 2^{}", p.scale_bits);
        }
    }

    #[test]
    fn primes_are_distinct_and_ntt_friendly() {
        let p = CkksParams::test_params();
        let mut all: Vec<u64> = p.q_chain.clone();
        all.extend(&p.p_special);
        let set: std::collections::HashSet<u64> = all.iter().copied().collect();
        assert_eq!(set.len(), all.len(), "duplicate primes");
        for &q in &all {
            assert!(fhe_math::prime::is_prime(q));
            assert_eq!(q % (2 * p.n as u64), 1);
        }
    }

    #[test]
    fn digit_partition_covers_chain() {
        let p = CkksParams::test_params();
        let mut covered = vec![false; p.q_chain.len()];
        for j in 0..p.dnum {
            for i in p.digit_limbs(j) {
                assert!(!covered[i], "limb {i} in two digits");
                covered[i] = true;
            }
        }
        assert!(covered.into_iter().all(|c| c));
    }

    #[test]
    fn invalid_params_rejected() {
        assert!(CkksParams::new(100, 3, 36, 2).is_err()); // not a power of 2
        assert!(CkksParams::new(1024, 3, 36, 0).is_err()); // dnum 0
        assert!(CkksParams::new(1024, 3, 60, 2).is_err()); // scale too large
    }

    #[test]
    fn paper_default_shape() {
        // Only geometry checks; building the full chain is fast since it
        // is pure prime search.
        let p = CkksParams::paper_default();
        assert_eq!(p.n, 1 << 16);
        assert_eq!(p.max_level(), 35);
        assert_eq!(p.dnum, 3);
        assert_eq!(p.alpha(), 12);
    }
}
