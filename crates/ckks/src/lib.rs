//! # fhe-ckks — RNS-CKKS built from scratch
//!
//! The arithmetic-FHE substrate of the Trinity reproduction (paper
//! §II-A): approximate homomorphic arithmetic over packed complex slot
//! vectors, with the full hierarchical operation set of the paper's
//! Table II — `HAdd`, `PAdd`, `PMult`, `HMult` (tensor +
//! hybrid-keyswitch relinearisation, Algorithm 1), `HRotate` (Galois
//! automorphism + keyswitch), and `Rescale` — plus the BSGS linear
//! transforms CKKS applications are built from.
//!
//! # Lazy-domain invariants
//!
//! The chained hot paths keep residues in the redundant `[0, 2p)`
//! window *across* kernels ([`fhe_math::ReductionState::Lazy2p`]),
//! canonicalising once at ciphertext boundaries — the way hardware
//! pipelines keep operands in redundant form between butterfly/MAC
//! stages and only fully reduce at memory writeback:
//!
//! * [`Ciphertext`] components are **always canonical**; laziness lives
//!   inside op implementations and the short-lived [`Ciphertext3`]
//!   tensor (folded by [`Evaluator::relinearize`] or
//!   [`Ciphertext3::canonicalize`]).
//! * [`key_switch`] keeps digit NTTs, inner-product accumulators and
//!   the exit iNTT lazy, folding once per accumulator limb at the
//!   ModDown boundary.
//! * [`Evaluator::apply_galois`] hoists the automorphism into the
//!   keyswitch ([`key_switch_galois`]): in evaluation form it is a
//!   pure, reduction-agnostic slot permutation, so the whole HRotate
//!   chain (digit NTT → `Auto` → `IP` → iNTT) stays `[0, 2p)` and
//!   folds once at ModDown.
//! * Every lazy chain has a strict oracle ([`key_switch_strict`],
//!   [`Evaluator::mul_strict`], ...) built on the fully-reduced
//!   transforms; the workspace suite `tests/lazy_chains.rs` asserts
//!   bit-identity across all modulus shapes, and strict kernels
//!   debug-assert their inputs are canonical so a lazy residue can
//!   never leak in unnoticed.
//!
//! See `README.md` for the accelerator model this mirrors.
//!
//! # Examples
//!
//! ```
//! use fhe_ckks::{CkksContext, CkksParams, Decryptor, Encoder, Encryptor, Evaluator, KeyGenerator};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let ctx = CkksContext::new(CkksParams::tiny_params());
//! let keys = KeyGenerator::new(ctx.clone()).key_set(&[], &mut rng);
//! let enc = Encoder::new(ctx.clone());
//! let encryptor = Encryptor::new(ctx.clone());
//! let eval = Evaluator::new(ctx.clone());
//! let decryptor = Decryptor::new(ctx.clone());
//!
//! let l = ctx.params().max_level();
//! let ct_x = encryptor.encrypt_sk(&enc.encode_real(&[0.5, 0.25], l), &keys.secret, &mut rng);
//! let ct_y = encryptor.encrypt_sk(&enc.encode_real(&[0.5, 0.5], l), &keys.secret, &mut rng);
//! let prod = eval.rescale(&eval.mul(&ct_x, &ct_y, &keys.relin));
//! let slots = decryptor.decrypt(&prod, &keys.secret, &enc);
//! assert!((slots[0].re - 0.25).abs() < 1e-2);
//! assert!((slots[1].re - 0.125).abs() < 1e-2);
//! ```

#![warn(missing_docs)]

pub mod bootstrap;
pub mod chebyshev;
pub mod ciphertext;
pub mod context;
pub mod encoding;
pub mod encryption;
pub mod eval;
pub mod keys;
pub mod keyswitch;
pub mod linalg;
pub mod noise;
pub mod params;
pub mod poly_eval;

pub use bootstrap::{BootstrapParams, Bootstrapper};
pub use chebyshev::ChebyshevPoly;
pub use ciphertext::{Ciphertext, Ciphertext3};
pub use context::CkksContext;
pub use encoding::{Encoder, Plaintext};
pub use encryption::{Decryptor, Encryptor};
pub use eval::Evaluator;
pub use keys::{KeyGenerator, KeySet, PublicKey, SecretKey, SwitchingKey};
pub use keyswitch::{
    hoist_rotations, key_switch, key_switch_coalesced, key_switch_galois,
    key_switch_galois_coalesced, key_switch_galois_hoisted, key_switch_galois_per_kernel,
    key_switch_galois_strict, key_switch_per_kernel, key_switch_strict, HoistedRotations, KsJob,
};
pub use linalg::LinearTransform;
pub use noise::{measure_noise_bits, NoiseEstimate, NoiseModel};
pub use params::{CkksParams, InvalidParamsError};
