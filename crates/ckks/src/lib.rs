//! # fhe-ckks — RNS-CKKS built from scratch
//!
//! The arithmetic-FHE substrate of the Trinity reproduction (paper
//! §II-A): approximate homomorphic arithmetic over packed complex slot
//! vectors, with the full hierarchical operation set of the paper's
//! Table II — `HAdd`, `PAdd`, `PMult`, `HMult` (tensor +
//! hybrid-keyswitch relinearisation, Algorithm 1), `HRotate` (Galois
//! automorphism + keyswitch), and `Rescale` — plus the BSGS linear
//! transforms CKKS applications are built from.
//!
//! # Examples
//!
//! ```
//! use fhe_ckks::{CkksContext, CkksParams, Decryptor, Encoder, Encryptor, Evaluator, KeyGenerator};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let ctx = CkksContext::new(CkksParams::tiny_params());
//! let keys = KeyGenerator::new(ctx.clone()).key_set(&[], &mut rng);
//! let enc = Encoder::new(ctx.clone());
//! let encryptor = Encryptor::new(ctx.clone());
//! let eval = Evaluator::new(ctx.clone());
//! let decryptor = Decryptor::new(ctx.clone());
//!
//! let l = ctx.params().max_level();
//! let ct_x = encryptor.encrypt_sk(&enc.encode_real(&[0.5, 0.25], l), &keys.secret, &mut rng);
//! let ct_y = encryptor.encrypt_sk(&enc.encode_real(&[0.5, 0.5], l), &keys.secret, &mut rng);
//! let prod = eval.rescale(&eval.mul(&ct_x, &ct_y, &keys.relin));
//! let slots = decryptor.decrypt(&prod, &keys.secret, &enc);
//! assert!((slots[0].re - 0.25).abs() < 1e-2);
//! assert!((slots[1].re - 0.125).abs() < 1e-2);
//! ```

#![warn(missing_docs)]

pub mod bootstrap;
pub mod chebyshev;
pub mod ciphertext;
pub mod context;
pub mod encoding;
pub mod encryption;
pub mod eval;
pub mod keys;
pub mod keyswitch;
pub mod linalg;
pub mod noise;
pub mod params;
pub mod poly_eval;

pub use bootstrap::{BootstrapParams, Bootstrapper};
pub use chebyshev::ChebyshevPoly;
pub use ciphertext::{Ciphertext, Ciphertext3};
pub use context::CkksContext;
pub use encoding::{Encoder, Plaintext};
pub use encryption::{Decryptor, Encryptor};
pub use eval::Evaluator;
pub use keys::{KeyGenerator, KeySet, PublicKey, SecretKey, SwitchingKey};
pub use keyswitch::key_switch;
pub use linalg::LinearTransform;
pub use noise::{measure_noise_bits, NoiseEstimate, NoiseModel};
pub use params::{CkksParams, InvalidParamsError};
