//! Functional CKKS bootstrapping (the paper's Packed Bootstrapping
//! workload, Table VI).
//!
//! Bootstrapping refreshes an exhausted (level-0) ciphertext to a high
//! level so computation can continue. The pipeline is the standard one
//! the paper's kernel model also assumes:
//!
//! 1. **ModRaise** — reinterpret the level-0 residues as integers at the
//!    top level; decryption then yields `m + q0 * I` for a small integer
//!    polynomial `I`.
//! 2. **SubSum** — for sparsely packed ciphertexts (slot vector periodic
//!    with period `n`), a field trace over `log2(N/2n)` rotations
//!    projects `m + q0 * I` onto the degree-`2n` subring, making the
//!    remaining pipeline `n`-dimensional.
//! 3. **CoeffToSlot** — a homomorphic inverse canonical embedding moves
//!    the `2n` subring coefficients into the slots of two ciphertexts
//!    (via diagonal linear transforms on the ciphertext and its
//!    conjugate).
//! 4. **EvalMod** — removes `q0 * I` by evaluating
//!    `x mod q0 ~ (q0 / 2 pi) sin(2 pi x / q0)` with the Han–Ki scheme:
//!    a Chebyshev fit of a shrunken cosine followed by double-angle
//!    steps, all in `O(log degree)` levels.
//! 5. **SlotToCoeff** — the forward embedding maps the cleaned
//!    coefficients back, leaving a fresh encryption of the original
//!    slots at a usable level.
//!
//! The linear transforms here are evaluated as single dense
//! `n x n`-diagonal passes (one level each). The paper's performance
//! model instead decomposes them into FFT-like factors at `N = 2^16`;
//! that is a cost optimisation, not a functional difference, and the
//! kernel DAGs in `trinity-workloads` model the factored form.

use std::collections::HashMap;
use std::f64::consts::PI;

use fhe_math::{Complex, RnsPoly};
use rand::Rng;

use crate::chebyshev::{chebyshev_depth, ChebyshevPoly};
use crate::ciphertext::Ciphertext;
use crate::context::CkksContext;
use crate::encoding::Encoder;
use crate::eval::Evaluator;
use crate::keys::{KeyGenerator, KeySet, SwitchingKey};
use crate::params::CkksParams;
use std::sync::Arc;

/// Configuration of the bootstrapping pipeline.
#[derive(Debug, Clone)]
pub struct BootstrapParams {
    /// Number of sparse slots `n` (power of two, `<= N/4`). The input
    /// ciphertext must encode an `n`-periodic (tiled) slot vector.
    pub sparse_slots: usize,
    /// Bound `K` on the ModRaise integer polynomial's coefficients; the
    /// sine is approximated on `[-K - 1/2, K + 1/2]`. `K ~ O(sqrt(h))`
    /// for secret Hamming weight `h`.
    pub k_bound: usize,
    /// Number of Han–Ki double-angle steps `r`; the cosine is fitted on
    /// a domain shrunk by `2^r`.
    pub double_angle: usize,
    /// Degree of the Chebyshev fit of the shrunken cosine.
    pub cheb_degree: usize,
}

impl Default for BootstrapParams {
    fn default() -> Self {
        Self {
            sparse_slots: 8,
            k_bound: 16,
            double_angle: 3,
            cheb_degree: 31,
        }
    }
}

impl BootstrapParams {
    /// Multiplicative depth of the whole pipeline: CoeffToSlot (1) +
    /// Chebyshev + double-angle steps + SlotToCoeff (1).
    pub fn depth(&self) -> usize {
        1 + chebyshev_depth(self.cheb_degree) + self.double_angle + 1
    }
}

/// A CKKS parameter set sized for functional bootstrapping tests:
/// `N = 2^11`, `L = 16`, 50-bit scale (60-bit `q0`), sparse ternary
/// secret with Hamming weight 32 so the ModRaise overflow stays within
/// the default `K = 16`.
pub fn bootstrap_test_params() -> CkksParams {
    let mut p = CkksParams::new(1 << 11, 16, 50, 3).expect("bootstrap parameters are valid");
    p.secret_hamming_weight = Some(32);
    p
}

/// Precomputed bootstrapping state bound to a context.
#[derive(Debug)]
pub struct Bootstrapper {
    ctx: Arc<CkksContext>,
    params: BootstrapParams,
    /// CoeffToSlot diagonals: applied to the input for `t` halves 0/1.
    c2s_direct: [HashMap<i64, Vec<Complex>>; 2],
    /// CoeffToSlot diagonals applied to the conjugated input.
    c2s_conj: [HashMap<i64, Vec<Complex>>; 2],
    /// SlotToCoeff diagonals for the two `t` halves.
    s2c: [HashMap<i64, Vec<Complex>>; 2],
    /// Chebyshev fit of `cos(2 pi D u)` on `[-1, 1]`,
    /// `D = (K + 3/4) / 2^r` periods.
    cos_fit: ChebyshevPoly,
}

impl Bootstrapper {
    /// Builds the bootstrapping precomputation.
    ///
    /// # Panics
    ///
    /// Panics if `sparse_slots` is not a power of two in `[2, N/4]`, or
    /// if the context has fewer levels than [`BootstrapParams::depth`].
    pub fn new(ctx: Arc<CkksContext>, params: BootstrapParams) -> Self {
        let n_ring = ctx.n();
        let n = params.sparse_slots;
        assert!(
            n.is_power_of_two() && n >= 2 && n <= n_ring / 4,
            "sparse_slots {n} must be a power of two in [2, N/4]"
        );
        assert!(
            ctx.params().max_level() > params.depth(),
            "bootstrap depth {} needs more levels than L = {}",
            params.depth(),
            ctx.params().max_level()
        );

        // omega = primitive 4n-th root of unity; subring embedding
        // z_j = sum_i t_i omega^(i * 5^j), j in [0, n), i in [0, 2n).
        let omega = |e: i64| {
            let theta = PI * e as f64 / (2.0 * n as f64);
            Complex::new(theta.cos(), theta.sin())
        };
        let mut rot5 = Vec::with_capacity(n);
        let mut g = 1i64;
        for _ in 0..n {
            rot5.push(g);
            g = (g * 5) % (4 * n as i64);
        }

        // CoeffToSlot: t_i = (1/2n) sum_j [omega^(-i 5^j) z_j
        //                                 + omega^(i 5^j) conj(z_j)],
        // additionally normalised by the EvalMod domain half-width
        // `K + 3/4` so the slots land directly in [-1, 1].
        let dom = params.k_bound as f64 + 0.75;
        let c2s_norm = 1.0 / (2.0 * n as f64 * dom);
        let build_c2s = |half: usize, conj: bool| -> HashMap<i64, Vec<Complex>> {
            let mut diagonals: HashMap<i64, Vec<Complex>> = HashMap::new();
            for d in 0..n {
                let diag: Vec<Complex> = (0..n)
                    .map(|row| {
                        let i = (row + half * n) as i64;
                        let col = (row + d) % n;
                        let sign = if conj { 1 } else { -1 };
                        omega(sign * i * rot5[col]) * c2s_norm
                    })
                    .collect();
                diagonals.insert(d as i64, diag);
            }
            diagonals
        };
        let c2s_direct = [build_c2s(0, false), build_c2s(1, false)];
        let c2s_conj = [build_c2s(0, true), build_c2s(1, true)];

        // SlotToCoeff: z_j = sum_i t_i omega^(i 5^j), split over halves.
        let build_s2c = |half: usize| -> HashMap<i64, Vec<Complex>> {
            let mut diagonals: HashMap<i64, Vec<Complex>> = HashMap::new();
            for d in 0..n {
                let diag: Vec<Complex> = (0..n)
                    .map(|row| {
                        let i = ((row + d) % n + half * n) as i64;
                        omega(i * rot5[row])
                    })
                    .collect();
                diagonals.insert(d as i64, diag);
            }
            diagonals
        };
        let s2c = [build_s2c(0), build_s2c(1)];

        // With u = (y - 1/4)/dom, the angle after the 2^r shrink is
        // 2 pi (y - 1/4) / 2^r = 2 pi * (dom / 2^r) * u.
        let half_width = dom / (1u64 << params.double_angle) as f64;
        let cos_fit = ChebyshevPoly::fit(
            |u| (2.0 * PI * half_width * u).cos(),
            -1.0,
            1.0,
            params.cheb_degree,
        );

        Self {
            ctx,
            params,
            c2s_direct,
            c2s_conj,
            s2c,
            cos_fit,
        }
    }

    /// The bootstrap configuration.
    pub fn params(&self) -> &BootstrapParams {
        &self.params
    }

    /// Slot rotations whose Galois keys the pipeline needs (conjugation
    /// is covered by [`KeyGenerator::key_set`] automatically).
    pub fn required_rotations(&self) -> Vec<i64> {
        let mut rots: Vec<i64> = (1..self.params.sparse_slots as i64).collect();
        let slots = self.ctx.n() / 2;
        let mut step = self.params.sparse_slots;
        while step < slots {
            rots.push(step as i64);
            step *= 2;
        }
        rots.sort_unstable();
        rots.dedup();
        rots
    }

    /// Generates a key set covering the whole pipeline (rotations,
    /// conjugation, relinearisation).
    pub fn generate_keys<R: Rng + ?Sized>(&self, rng: &mut R) -> KeySet {
        KeyGenerator::new(self.ctx.clone()).key_set(&self.required_rotations(), rng)
    }

    /// ModRaise: reinterprets a level-0 ciphertext at the top level.
    ///
    /// The declared scale becomes `q0 * N/(2n)` so that, after
    /// [`Self::sub_sum`], slots read `(m + q0 I) / q0`.
    ///
    /// # Panics
    ///
    /// Panics if the ciphertext is not at level 0.
    pub fn mod_raise(&self, ct: &Ciphertext) -> Ciphertext {
        assert_eq!(ct.level, 0, "mod_raise expects an exhausted ciphertext");
        let top = self.ctx.params().max_level();
        let q0 = *self.ctx.level_basis(0).modulus(0);
        let raise = |p: &RnsPoly| {
            let mut p = p.clone();
            p.to_coeff();
            let centered: Vec<i64> = p.limb(0).iter().map(|&r| q0.to_centered(r)).collect();
            let mut out = RnsPoly::from_signed_coeffs(self.ctx.level_basis(top).clone(), &centered);
            out.to_eval();
            out
        };
        let trace_factor = (self.ctx.n() / (2 * self.params.sparse_slots)) as f64;
        Ciphertext {
            c0: raise(&ct.c0),
            c1: raise(&ct.c1),
            level: top,
            scale: q0.value() as f64 * trace_factor,
        }
    }

    /// SubSum: the field trace onto the degree-`2n` subring, as
    /// `log2(N/2n)` rotate-and-add steps (no levels consumed). Mirrors
    /// Algorithm 5's Field Trace.
    ///
    /// # Panics
    ///
    /// Panics if a required Galois key is missing.
    pub fn sub_sum(&self, ct: &Ciphertext, eval: &Evaluator, keys: &KeySet) -> Ciphertext {
        let slots = self.ctx.n() / 2;
        let mut acc = ct.clone();
        let mut step = self.params.sparse_slots as i64;
        while (step as usize) < slots {
            let rotated = eval.rotate(&acc, step, self.galois_key(keys, step));
            acc = eval.add(&acc, &rotated);
            step *= 2;
        }
        acc
    }

    /// CoeffToSlot: moves the `2n` subring coefficients into the slots
    /// of two ciphertexts (`t` halves `[0, n)` and `[n, 2n)`), already
    /// normalised onto the Chebyshev domain `[-1, 1]` minus the quarter
    /// shift. One level.
    ///
    /// # Panics
    ///
    /// Panics if a required Galois key is missing.
    pub fn coeff_to_slot(
        &self,
        ct: &Ciphertext,
        eval: &Evaluator,
        enc: &Encoder,
        keys: &KeySet,
    ) -> (Ciphertext, Ciphertext) {
        let conj_g = fhe_math::galois::conjugation_galois_element(self.ctx.n());
        let ct_conj = eval.conjugate(ct, &keys.galois[&conj_g]);
        let out_scale = self.ctx.params().scale();
        let dom = self.params.k_bound as f64 + 0.75;
        let shift = 0.25 / dom;
        let mut halves = Vec::with_capacity(2);
        for half in 0..2 {
            let t = self.apply_diagonal_pair(
                ct,
                &ct_conj,
                &self.c2s_direct[half],
                &self.c2s_conj[half],
                out_scale,
                eval,
                enc,
                keys,
            );
            // Subtract the Han–Ki quarter shift: u = (y - 1/4) / width.
            let c = enc.encode_constant_at(shift, t.level, t.scale);
            halves.push(eval.sub_plain(&t, &c));
        }
        let t1 = halves.pop().expect("two halves");
        let t0 = halves.pop().expect("two halves");
        (t0, t1)
    }

    /// EvalMod: evaluates the shrunken-cosine Chebyshev fit then applies
    /// the double-angle steps, turning slots `u = (y - 1/4)/width` into
    /// `sin(2 pi y)`; the output's declared scale is adjusted so slots
    /// read `m / Delta` directly.
    pub fn eval_mod(
        &self,
        ct: &Ciphertext,
        eval: &Evaluator,
        enc: &Encoder,
        keys: &KeySet,
    ) -> Ciphertext {
        let mut acc = eval.eval_chebyshev(ct, &self.cos_fit.coeffs, &keys.relin, enc);
        for _ in 0..self.params.double_angle {
            // cos(2 theta) = 2 cos^2(theta) - 1, one level per step.
            let sq = eval.mul(&acc, &acc, &keys.relin);
            let doubled = eval.add(&sq, &sq);
            let mut next = eval.rescale(&doubled);
            let one = enc.encode_constant_at(1.0, next.level, next.scale);
            next = eval.sub_plain(&next, &one);
            acc = next;
        }
        // Slots now hold sin(2 pi y) with y = (Delta t + q0 I)/q0, i.e.
        // ~ 2 pi Delta t / q0. Redeclare the scale so slots read t.
        let q0 = self.ctx.level_basis(0).modulus(0).value() as f64;
        acc.scale *= 2.0 * PI * self.ctx.params().scale() / q0;
        acc
    }

    /// SlotToCoeff: maps the two cleaned coefficient-halves back through
    /// the forward embedding, producing the refreshed ciphertext. One
    /// level.
    ///
    /// # Panics
    ///
    /// Panics if a required Galois key is missing.
    pub fn slot_to_coeff(
        &self,
        t0: &Ciphertext,
        t1: &Ciphertext,
        eval: &Evaluator,
        enc: &Encoder,
        keys: &KeySet,
    ) -> Ciphertext {
        let out_scale = self.ctx.params().scale();
        let a = self.apply_diagonals(t0, &self.s2c[0], out_scale, eval, enc, keys);
        let b = self.apply_diagonals(t1, &self.s2c[1], out_scale, eval, enc, keys);
        eval.add(&a, &b)
    }

    /// The full pipeline: ModRaise, SubSum, CoeffToSlot, EvalMod (on
    /// both halves), SlotToCoeff.
    ///
    /// The input must be at level 0 and encode an `n`-periodic slot
    /// vector; the output encodes the same slots at level
    /// `L - `[`BootstrapParams::depth`] with the default scale.
    pub fn bootstrap(
        &self,
        ct: &Ciphertext,
        eval: &Evaluator,
        enc: &Encoder,
        keys: &KeySet,
    ) -> Ciphertext {
        let raised = self.mod_raise(ct);
        let traced = self.sub_sum(&raised, eval, keys);
        let (t0, t1) = self.coeff_to_slot(&traced, eval, enc, keys);
        let m0 = self.eval_mod(&t0, eval, enc, keys);
        let m1 = self.eval_mod(&t1, eval, enc, keys);
        self.slot_to_coeff(&m0, &m1, eval, enc, keys)
    }

    /// Predicted operation counts for one full bootstrap — the
    /// analytic cost model the performance layer consumes, pinned to
    /// the implementation by `tests::op_counters_match_prediction`.
    ///
    /// Returns `(ct_mults, galois_ops, keyswitches)`.
    pub fn expected_ops(&self) -> (u64, u64, u64) {
        let n = self.params.sparse_slots as u64;
        let slots = (self.ctx.n() / 2) as u64;
        // SubSum: one rotation per doubling of the trace.
        let sub_sum = (slots / n).trailing_zeros() as u64;
        // CoeffToSlot: one conjugation, then per half a rotation per
        // nonzero off-diagonal of both the direct and conjugate parts.
        let c2s = 1 + 2 * 2 * (n - 1);
        // SlotToCoeff: per half, one rotation per off-diagonal.
        let s2c = 2 * (n - 1);
        let galois = sub_sum + c2s + s2c;
        // EvalMod on both halves: the Chebyshev recursion plus one
        // squaring per double-angle step.
        let cheb = crate::chebyshev::multiplication_count(&self.cos_fit.coeffs) as u64;
        let ct_mults = 2 * (cheb + self.params.double_angle as u64);
        // Every Galois op and every ct-mult relinearisation keyswitches.
        (ct_mults, galois, galois + ct_mults)
    }

    fn galois_key<'k>(&self, keys: &'k KeySet, rotation: i64) -> &'k SwitchingKey {
        let g = fhe_math::galois::rotation_galois_element(rotation, self.ctx.n());
        keys.galois
            .get(&g)
            .unwrap_or_else(|| panic!("missing galois key for rotation {rotation}"))
    }

    /// Applies one diagonal transform: `out[j] = sum_d diag_d[j] *
    /// in[(j + d) mod n]`, tiled across the full slot count, encoding
    /// every plaintext diagonal at the exact scale that lands the
    /// rescaled output on `out_scale`.
    fn apply_diagonals(
        &self,
        ct: &Ciphertext,
        diagonals: &HashMap<i64, Vec<Complex>>,
        out_scale: f64,
        eval: &Evaluator,
        enc: &Encoder,
        keys: &KeySet,
    ) -> Ciphertext {
        let q_last = self.ctx.level_basis(ct.level).modulus(ct.level).value() as f64;
        let pt_scale = out_scale * q_last / ct.scale;
        let slots = self.ctx.n() / 2;
        let mut acc: Option<Ciphertext> = None;
        for (&d, diag) in diagonals {
            let rotated = if d == 0 {
                ct.clone()
            } else {
                eval.rotate(ct, d, self.galois_key(keys, d))
            };
            let tiled: Vec<Complex> = (0..slots).map(|j| diag[j % diag.len()]).collect();
            let pt = enc.encode_at_scale(&tiled, ct.level, pt_scale);
            let term = eval.mul_plain(&rotated, &pt);
            acc = Some(match acc {
                None => term,
                Some(a) => eval.add(&a, &term),
            });
        }
        let mut out = eval.rescale(&acc.expect("transform has diagonals"));
        out.scale = out_scale; // snap f64 round-off; exact by construction
        out
    }

    /// Applies a pair of diagonal transforms to a ciphertext and its
    /// conjugate, summed before a single rescale (one level total).
    #[allow(clippy::too_many_arguments)]
    fn apply_diagonal_pair(
        &self,
        ct: &Ciphertext,
        ct_conj: &Ciphertext,
        direct: &HashMap<i64, Vec<Complex>>,
        conj: &HashMap<i64, Vec<Complex>>,
        out_scale: f64,
        eval: &Evaluator,
        enc: &Encoder,
        keys: &KeySet,
    ) -> Ciphertext {
        let q_last = self.ctx.level_basis(ct.level).modulus(ct.level).value() as f64;
        let pt_scale = out_scale * q_last / ct.scale;
        let slots = self.ctx.n() / 2;
        let mut acc: Option<Ciphertext> = None;
        for (source, diagonals) in [(ct, direct), (ct_conj, conj)] {
            for (&d, diag) in diagonals {
                let rotated = if d == 0 {
                    source.clone()
                } else {
                    eval.rotate(source, d, self.galois_key(keys, d))
                };
                let tiled: Vec<Complex> = (0..slots).map(|j| diag[j % diag.len()]).collect();
                let pt = enc.encode_at_scale(&tiled, source.level, pt_scale);
                let term = eval.mul_plain(&rotated, &pt);
                acc = Some(match acc {
                    None => term,
                    Some(a) => eval.add(&a, &term),
                });
            }
        }
        let mut out = eval.rescale(&acc.expect("transforms have diagonals"));
        out.scale = out_scale; // snap f64 round-off; exact by construction
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encryption::{Decryptor, Encryptor};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    struct Fixture {
        ctx: Arc<CkksContext>,
        boot: Bootstrapper,
        enc: Encoder,
        encryptor: Encryptor,
        decryptor: Decryptor,
        eval: Evaluator,
        keys: KeySet,
        rng: StdRng,
    }

    fn fixture(seed: u64) -> Fixture {
        let ctx = CkksContext::new(bootstrap_test_params());
        let boot = Bootstrapper::new(ctx.clone(), BootstrapParams::default());
        let mut rng = StdRng::seed_from_u64(seed);
        let keys = boot.generate_keys(&mut rng);
        Fixture {
            enc: Encoder::new(ctx.clone()),
            encryptor: Encryptor::new(ctx.clone()),
            decryptor: Decryptor::new(ctx.clone()),
            eval: Evaluator::new(ctx.clone()),
            boot,
            ctx,
            keys,
            rng,
        }
    }

    /// Encrypts an `n`-periodic tiling of `vals` at level 0.
    fn encrypt_sparse_at_level0(f: &mut Fixture, vals: &[f64]) -> Ciphertext {
        let n = f.boot.params().sparse_slots;
        assert_eq!(vals.len(), n);
        let slots = f.ctx.n() / 2;
        let tiled: Vec<f64> = (0..slots).map(|j| vals[j % n]).collect();
        let pt = f.enc.encode_real(&tiled, 0);
        f.encryptor.encrypt_sk(&pt, &f.keys.secret, &mut f.rng)
    }

    #[test]
    fn params_depth_fits_test_chain() {
        let p = BootstrapParams::default();
        // C2S (1) + Chebyshev deg 31 (5) + 3 double-angle + S2C (1).
        assert_eq!(p.depth(), 10);
        assert!(bootstrap_test_params().max_level() > p.depth());
    }

    #[test]
    fn required_rotations_cover_both_stages() {
        let ctx = CkksContext::new(bootstrap_test_params());
        let boot = Bootstrapper::new(ctx.clone(), BootstrapParams::default());
        let rots = boot.required_rotations();
        // C2S/S2C baby rotations 1..n.
        for r in 1..8 {
            assert!(rots.contains(&r), "missing C2S rotation {r}");
        }
        // SubSum doubling chain n, 2n, ..., N/4.
        let mut step = 8i64;
        while (step as usize) < ctx.n() / 2 {
            assert!(rots.contains(&step), "missing SubSum rotation {step}");
            step *= 2;
        }
    }

    #[test]
    fn mod_raise_preserves_residues_mod_q0() {
        let mut f = fixture(901);
        let vals = [0.5, -0.25, 0.75, -1.0, 0.1, 0.3, -0.6, 0.9];
        let ct = encrypt_sparse_at_level0(&mut f, &vals);
        let raised = f.boot.mod_raise(&ct);
        assert_eq!(raised.level, f.ctx.params().max_level());
        // The raised polynomials reduce back to the originals mod q0.
        let mut orig = ct.c0.clone();
        orig.to_coeff();
        let mut back = raised.c0.clone();
        back.to_coeff();
        let q0 = *f.ctx.level_basis(0).modulus(0);
        for (a, b) in orig.limb(0).iter().zip(back.limb(0)) {
            assert_eq!(*a, q0.reduce(*b));
        }
    }

    #[test]
    #[should_panic(expected = "exhausted")]
    fn mod_raise_rejects_non_exhausted_input() {
        let mut f = fixture(902);
        let pt = f.enc.encode_real(&[0.5], 2);
        let ct = f.encryptor.encrypt_sk(&pt, &f.keys.secret, &mut f.rng);
        let _ = f.boot.mod_raise(&ct);
    }

    #[test]
    fn sub_sum_projects_onto_subring() {
        // After the trace, decrypting must show (N/2n) * (m + q0 I) with
        // energy only at coefficient indices that are multiples of
        // N/(2n) — up to q0-multiples from I and rotation noise.
        let mut f = fixture(903);
        let vals = [0.9, -0.7, 0.5, -0.3, 0.1, 0.2, -0.4, 0.8];
        let ct = encrypt_sparse_at_level0(&mut f, &vals);
        let raised = f.boot.mod_raise(&ct);
        let traced = f.boot.sub_sum(&raised, &f.eval, &f.keys);
        let mut pt = f.decryptor.decrypt_poly(&traced, &f.keys.secret);
        pt.to_coeff();
        let n_ring = f.ctx.n();
        let stride = n_ring / (2 * f.boot.params().sparse_slots);
        let q0 = f.ctx.level_basis(0).modulus(0).value() as f64;
        let delta = f.ctx.params().scale();
        let trace_factor = stride as f64;
        let centered = pt.to_centered_f64();
        for (i, &c) in centered.iter().enumerate() {
            // Remove the q0-multiples contributed by I.
            let residual = (c / (trace_factor * q0)).rem_euclid(1.0);
            let frac = residual.min(1.0 - residual) * q0 / delta;
            if i % stride != 0 {
                assert!(
                    frac < 1e-3,
                    "coefficient {i} off-subring: fractional part {frac}"
                );
            }
        }
    }

    #[test]
    fn cos_fit_is_accurate_on_domain() {
        let ctx = CkksContext::new(bootstrap_test_params());
        let boot = Bootstrapper::new(ctx, BootstrapParams::default());
        let p = BootstrapParams::default();
        let width = (p.k_bound as f64 + 0.75) / (1u64 << p.double_angle) as f64;
        let err = boot
            .cos_fit
            .max_error(|u| (2.0 * PI * width * u).cos(), 400);
        assert!(err < 1e-7, "cosine fit error {err}");
    }

    #[test]
    fn bootstrap_refreshes_exhausted_ciphertext() {
        let mut f = fixture(904);
        let vals = [0.5, -0.25, 0.75, -0.9, 0.1, 0.35, -0.6, 0.05];
        let ct = encrypt_sparse_at_level0(&mut f, &vals);
        assert_eq!(ct.level, 0);

        let fresh = f.boot.bootstrap(&ct, &f.eval, &f.enc, &f.keys);
        let expected_level = f.ctx.params().max_level() - f.boot.params().depth();
        assert_eq!(fresh.level, expected_level);
        assert!(fresh.level >= 4, "refreshed ciphertext has usable levels");

        let back = f.decryptor.decrypt(&fresh, &f.keys.secret, &f.enc);
        for (i, &v) in vals.iter().enumerate() {
            assert!(
                (back[i].re - v).abs() < 2e-2,
                "slot {i}: {} vs {v}",
                back[i].re
            );
            assert!(back[i].im.abs() < 2e-2, "slot {i} imaginary leakage");
        }
        // Periodicity is preserved: slot n+i matches slot i.
        let n = f.boot.params().sparse_slots;
        for i in 0..n {
            assert!((back[i].re - back[n + i].re).abs() < 3e-2);
        }
    }

    #[test]
    fn op_counters_match_prediction() {
        // The analytic cost model must count exactly what the
        // implementation executes — this is the contract that lets the
        // performance layer trust `expected_ops`.
        let mut f = fixture(908);
        let vals = [0.2, -0.3, 0.5, -0.7, 0.1, 0.6, -0.4, 0.8];
        let ct = encrypt_sparse_at_level0(&mut f, &vals);
        f.eval.counters().reset();
        let _ = f.boot.bootstrap(&ct, &f.eval, &f.enc, &f.keys);
        let (ct_mults, _pt, _rs, keyswitches, galois, _adds) = f.eval.counters().snapshot();
        let (want_mults, want_galois, want_ks) = f.boot.expected_ops();
        assert_eq!(ct_mults, want_mults, "ct-mult count");
        assert_eq!(galois, want_galois, "galois count");
        assert_eq!(keyswitches, want_ks, "keyswitch count");
    }

    /// One full bootstrap at `n` sparse slots — the pipeline is generic
    /// in n: different slot counts use different subring degrees, trace
    /// lengths, and C2S/S2C matrix sizes. Each case is its own `#[test]`
    /// (below) so the two multi-second pipelines are separately
    /// schedulable and reportable instead of one monolithic test.
    fn check_bootstrap_with_sparse_slots(n: usize, seed: u64) {
        let ctx = CkksContext::new(bootstrap_test_params());
        let boot = Bootstrapper::new(
            ctx.clone(),
            BootstrapParams {
                sparse_slots: n,
                ..BootstrapParams::default()
            },
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let keys = boot.generate_keys(&mut rng);
        let enc = Encoder::new(ctx.clone());
        let encryptor = Encryptor::new(ctx.clone());
        let eval = Evaluator::new(ctx.clone());
        let dec = Decryptor::new(ctx.clone());

        let vals: Vec<f64> = (0..n).map(|i| (i as f64 / n as f64) - 0.4).collect();
        let slots = ctx.n() / 2;
        let tiled: Vec<f64> = (0..slots).map(|j| vals[j % n]).collect();
        let ct = encryptor.encrypt_sk(&enc.encode_real(&tiled, 0), &keys.secret, &mut rng);
        let fresh = boot.bootstrap(&ct, &eval, &enc, &keys);
        let back = dec.decrypt(&fresh, &keys.secret, &enc);
        for (i, &v) in vals.iter().enumerate() {
            assert!(
                (back[i].re - v).abs() < 2e-2,
                "n={n} slot {i}: {} vs {v}",
                back[i].re
            );
        }
    }

    #[test]
    fn bootstrap_generalises_to_4_sparse_slots() {
        check_bootstrap_with_sparse_slots(4, 906);
    }

    #[test]
    fn bootstrap_generalises_to_16_sparse_slots() {
        check_bootstrap_with_sparse_slots(16, 907);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bootstrap_rejects_bad_slot_count() {
        let ctx = CkksContext::new(bootstrap_test_params());
        let _ = Bootstrapper::new(
            ctx,
            BootstrapParams {
                sparse_slots: 6,
                ..BootstrapParams::default()
            },
        );
    }

    #[test]
    fn bootstrap_output_supports_further_multiplication() {
        let mut f = fixture(905);
        let vals = [0.4, -0.2, 0.6, 0.8, -0.5, 0.3, 0.7, -0.1];
        let ct = encrypt_sparse_at_level0(&mut f, &vals);
        let fresh = f.boot.bootstrap(&ct, &f.eval, &f.enc, &f.keys);
        // Square the refreshed ciphertext — impossible at level 0.
        let sq = f.eval.rescale(&f.eval.mul(&fresh, &fresh, &f.keys.relin));
        let back = f.decryptor.decrypt(&sq, &f.keys.secret, &f.enc);
        for (i, &v) in vals.iter().enumerate() {
            assert!(
                (back[i].re - v * v).abs() < 3e-2,
                "slot {i}: {} vs {}",
                back[i].re,
                v * v
            );
        }
    }
}
