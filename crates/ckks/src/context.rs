//! Shared precomputed state for a CKKS instance.
//!
//! The context owns one [`RnsBasis`] per level, the special-prime basis,
//! the extended (level + special) bases, Galois permutation tables, and
//! all the hybrid-keyswitch base-conversion tables (the paper's `BConv`
//! kernels, Algorithm 1) so that ciphertext operations never rebuild
//! tables.

use std::sync::Arc;

use fhe_math::{BasisConverter, FftPlan, GaloisPerms, RnsBasis};

use crate::params::CkksParams;

/// Precomputation for one keyswitch digit at one level.
#[derive(Debug)]
pub struct DigitPrecomp {
    /// Limb indices (within `0..=l`) forming this digit.
    pub digit_limbs: Vec<usize>,
    /// Limb indices (within `0..=l`) outside this digit.
    pub other_limbs: Vec<usize>,
    /// BConv from the digit basis to `others ∪ P` (ModUp).
    pub mod_up: BasisConverter,
}

/// Per-level keyswitch precomputation.
#[derive(Debug)]
pub struct KeySwitchPrecomp {
    /// One entry per digit (beta(l) of them).
    pub digits: Vec<DigitPrecomp>,
    /// BConv from the special basis P down to `C_l` (ModDown).
    pub mod_down: BasisConverter,
    /// `P^{-1} mod q_i` for each limb `i <= l`.
    pub p_inv_mod_q: Vec<u64>,
}

/// Shared, immutable CKKS precomputation. Cheap to clone via [`Arc`].
#[derive(Debug)]
pub struct CkksContext {
    params: CkksParams,
    /// `level_bases[l]` = basis over `q_0..q_l`.
    level_bases: Vec<Arc<RnsBasis>>,
    /// Basis over the special primes.
    special_basis: Arc<RnsBasis>,
    /// `extended_bases[l]` = `q_0..q_l ++ p_0..p_{alpha-1}`.
    extended_bases: Vec<Arc<RnsBasis>>,
    /// Galois slot permutations (shared across levels; ring-degree keyed).
    galois: Arc<GaloisPerms>,
    /// Keyswitch tables per level.
    keyswitch: Vec<KeySwitchPrecomp>,
    /// 2N-point FFT plan for encoding.
    encode_fft: Arc<FftPlan>,
}

impl CkksContext {
    /// Builds the full precomputation for a parameter set.
    pub fn new(params: CkksParams) -> Arc<Self> {
        let n = params.n;
        let max_level = params.max_level();
        let full = RnsBasis::new(&params.q_chain, n);
        let special = Arc::new(RnsBasis::new(&params.p_special, n));
        let mut level_bases = Vec::with_capacity(max_level + 1);
        let mut extended_bases = Vec::with_capacity(max_level + 1);
        for l in 0..=max_level {
            let lb = Arc::new(full.prefix(l + 1));
            extended_bases.push(Arc::new(lb.concat(&special)));
            level_bases.push(lb);
        }
        let galois = Arc::new(GaloisPerms::new(level_bases[0].table(0).clone()));

        let mut keyswitch = Vec::with_capacity(max_level + 1);
        for (l, level_basis) in level_bases.iter().enumerate() {
            let beta = params.beta_at_level(l);
            let mut digits = Vec::with_capacity(beta);
            for j in 0..beta {
                let digit_limbs: Vec<usize> = params.digit_limbs(j).filter(|&i| i <= l).collect();
                let other_limbs: Vec<usize> =
                    (0..=l).filter(|i| !digit_limbs.contains(i)).collect();
                let digit_basis = level_basis.select(&digit_limbs);
                // Target order is [others..., specials...].
                let target = if other_limbs.is_empty() {
                    (*special).clone()
                } else {
                    level_basis.select(&other_limbs).concat(&special)
                };
                let mod_up = BasisConverter::new(&digit_basis, &target);
                digits.push(DigitPrecomp {
                    digit_limbs,
                    other_limbs,
                    mod_up,
                });
            }
            let mod_down = BasisConverter::new(&special, level_basis);
            let p_inv_mod_q = level_basis
                .moduli()
                .iter()
                .map(|qi| {
                    let mut p_mod = 1u64;
                    for &p in &params.p_special {
                        p_mod = qi.mul(p_mod, qi.reduce(p));
                    }
                    qi.inv(p_mod).expect("P invertible mod q_i")
                })
                .collect();
            keyswitch.push(KeySwitchPrecomp {
                digits,
                mod_down,
                p_inv_mod_q,
            });
        }
        let encode_fft = Arc::new(FftPlan::new(2 * n));
        Arc::new(Self {
            params,
            level_bases,
            special_basis: special,
            extended_bases,
            galois,
            keyswitch,
            encode_fft,
        })
    }

    /// The parameter set.
    pub fn params(&self) -> &CkksParams {
        &self.params
    }

    /// Ring degree.
    pub fn n(&self) -> usize {
        self.params.n
    }

    /// Basis over `q_0..q_l`.
    ///
    /// # Panics
    ///
    /// Panics if `l` exceeds the maximum level.
    pub fn level_basis(&self, l: usize) -> &Arc<RnsBasis> {
        &self.level_bases[l]
    }

    /// The special-prime basis `P`.
    pub fn special_basis(&self) -> &Arc<RnsBasis> {
        &self.special_basis
    }

    /// Basis over `q_0..q_l ++ P`.
    pub fn extended_basis(&self, l: usize) -> &Arc<RnsBasis> {
        &self.extended_bases[l]
    }

    /// The full basis `q_0..q_L ++ P` (key material lives here).
    pub fn full_basis(&self) -> &Arc<RnsBasis> {
        self.extended_basis(self.params.max_level())
    }

    /// Galois slot-permutation tables.
    pub fn galois(&self) -> &Arc<GaloisPerms> {
        &self.galois
    }

    /// Keyswitch tables for level `l`.
    pub fn keyswitch_precomp(&self, l: usize) -> &KeySwitchPrecomp {
        &self.keyswitch[l]
    }

    /// The 2N-point FFT plan used by the encoder.
    pub fn encode_fft(&self) -> &Arc<FftPlan> {
        &self.encode_fft
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_builds_all_levels() {
        let ctx = CkksContext::new(CkksParams::tiny_params());
        let l_max = ctx.params().max_level();
        for l in 0..=l_max {
            assert_eq!(ctx.level_basis(l).len(), l + 1);
            assert_eq!(
                ctx.extended_basis(l).len(),
                l + 1 + ctx.params().p_special.len()
            );
            let ks = ctx.keyswitch_precomp(l);
            assert_eq!(ks.digits.len(), ctx.params().beta_at_level(l));
            assert_eq!(ks.p_inv_mod_q.len(), l + 1);
        }
    }

    #[test]
    fn digit_limbs_partition_each_level() {
        let ctx = CkksContext::new(CkksParams::tiny_params());
        for l in 0..=ctx.params().max_level() {
            let ks = ctx.keyswitch_precomp(l);
            let mut covered = vec![false; l + 1];
            for d in &ks.digits {
                for &i in &d.digit_limbs {
                    assert!(!covered[i]);
                    covered[i] = true;
                }
                for &i in &d.other_limbs {
                    assert!(i <= l);
                    assert!(!d.digit_limbs.contains(&i));
                }
            }
            assert!(covered.into_iter().all(|c| c), "level {l} not covered");
        }
    }

    #[test]
    fn p_inverse_is_correct() {
        let ctx = CkksContext::new(CkksParams::tiny_params());
        let l = ctx.params().max_level();
        let ks = ctx.keyswitch_precomp(l);
        for (i, qi) in ctx.level_basis(l).moduli().iter().enumerate() {
            let mut p_mod = 1u64;
            for &p in &ctx.params().p_special {
                p_mod = qi.mul(p_mod, qi.reduce(p));
            }
            assert_eq!(qi.mul(p_mod, ks.p_inv_mod_q[i]), 1);
        }
    }
}
