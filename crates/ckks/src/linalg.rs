//! Encrypted linear algebra: diagonal-encoded matrix-vector products.
//!
//! CKKS applications (the paper's HELR and ResNet-20 benchmarks, and the
//! CoeffToSlot/SlotToCoeff stages of bootstrapping) reduce to products of
//! an encrypted slot vector with plaintext matrices. The standard
//! technique encodes the matrix by generalised diagonals and evaluates
//!
//! ```text
//! M * v = sum_d  diag_d .* rot(v, d)
//! ```
//!
//! using baby-step/giant-step (BSGS) to cut the rotation count from
//! `#diagonals` to `O(sqrt(#diagonals))` — each rotation being one of
//! the paper's `HRotate` operations.

use std::collections::HashMap;

use fhe_math::Complex;

use crate::ciphertext::Ciphertext;
use crate::encoding::Encoder;
use crate::eval::Evaluator;
use crate::keys::SwitchingKey;

/// A plaintext linear transform stored by generalised diagonals.
#[derive(Debug, Clone)]
pub struct LinearTransform {
    /// Diagonal index -> diagonal entries (length = slot count).
    pub diagonals: HashMap<i64, Vec<Complex>>,
    /// Slot dimension the transform acts on.
    pub dim: usize,
}

impl LinearTransform {
    /// Builds a transform from a dense row-major `dim x dim` matrix.
    ///
    /// # Panics
    ///
    /// Panics if `matrix.len() != dim * dim`.
    pub fn from_matrix(matrix: &[Complex], dim: usize) -> Self {
        assert_eq!(matrix.len(), dim * dim);
        let mut diagonals: HashMap<i64, Vec<Complex>> = HashMap::new();
        for d in 0..dim {
            // Generalised diagonal d: entry j is M[j][(j + d) mod dim].
            let diag: Vec<Complex> = (0..dim)
                .map(|j| matrix[j * dim + ((j + d) % dim)])
                .collect();
            if diag.iter().any(|z| z.norm_sqr() > 1e-24) {
                diagonals.insert(d as i64, diag);
            }
        }
        Self { diagonals, dim }
    }

    /// Rotation amounts required to evaluate this transform naively.
    pub fn required_rotations(&self) -> Vec<i64> {
        let mut v: Vec<i64> = self.diagonals.keys().copied().collect();
        v.sort_unstable();
        v
    }

    /// Rotation amounts required by the BSGS evaluation with giant-step
    /// `g`: baby steps `1..g` and giant steps `g, 2g, ...`.
    pub fn bsgs_rotations(&self, g: usize) -> Vec<i64> {
        let mut set = std::collections::BTreeSet::new();
        for &d in self.diagonals.keys() {
            let d = d as usize;
            set.insert((d % g) as i64);
            set.insert((d - d % g) as i64);
        }
        set.remove(&0);
        set.into_iter().collect()
    }

    /// Evaluates the transform on a ciphertext, naive variant: one
    /// rotation per diagonal.
    ///
    /// `galois_keys` maps Galois elements to switching keys and must
    /// cover [`Self::required_rotations`]. Consumes one level (rescale
    /// included).
    ///
    /// # Panics
    ///
    /// Panics if a required Galois key is missing.
    pub fn apply(
        &self,
        eval: &Evaluator,
        enc: &Encoder,
        ct: &Ciphertext,
        galois_keys: &HashMap<u64, SwitchingKey>,
    ) -> Ciphertext {
        let ctx = eval.context().clone();
        let mut acc: Option<Ciphertext> = None;
        for (&d, diag) in &self.diagonals {
            let rotated = if d == 0 {
                ct.clone()
            } else {
                let g = fhe_math::galois::rotation_galois_element(d, ctx.n());
                let gk = galois_keys
                    .get(&g)
                    .unwrap_or_else(|| panic!("missing galois key for rotation {d}"));
                eval.rotate(ct, d, gk)
            };
            let diag_slots = self.tile_diagonal(diag, enc.slots());
            let pt = enc.encode(&diag_slots, ct.level);
            let term = eval.mul_plain(&rotated, &pt);
            acc = Some(match acc {
                None => term,
                Some(a) => eval.add(&a, &term),
            });
        }
        let acc = acc.expect("transform has at least one diagonal");
        eval.rescale(&acc)
    }

    /// Evaluates the transform with *hoisted* rotations: one
    /// [`Evaluator::hoist_rotations`] of the input shares Decompose +
    /// ModUp + the digit NTTs across every diagonal's rotation
    /// ([`Evaluator::rotate_hoisted`]), instead of paying the keyswitch
    /// front half once per diagonal as [`Self::apply`] does.
    ///
    /// Diagonals are processed in sorted order. Each rotated term is
    /// bit-identical to its sequential counterpart and the ciphertext
    /// accumulation is exact modular arithmetic (commutative), so the
    /// result is bit-identical to [`Self::apply`] — asserted by
    /// `tests::hoisted_apply_bit_identical_to_naive`.
    ///
    /// # Panics
    ///
    /// Panics if a required Galois key is missing.
    pub fn apply_hoisted(
        &self,
        eval: &Evaluator,
        enc: &Encoder,
        ct: &Ciphertext,
        galois_keys: &HashMap<u64, SwitchingKey>,
    ) -> Ciphertext {
        let ctx = eval.context().clone();
        let hoisted = eval.hoist_rotations(ct);
        let mut acc: Option<Ciphertext> = None;
        for d in self.required_rotations() {
            let diag = &self.diagonals[&d];
            let rotated = if d == 0 {
                ct.clone()
            } else {
                let g = fhe_math::galois::rotation_galois_element(d, ctx.n());
                let gk = galois_keys
                    .get(&g)
                    .unwrap_or_else(|| panic!("missing galois key for rotation {d}"));
                eval.rotate_hoisted(ct, &hoisted, d, gk)
            };
            let diag_slots = self.tile_diagonal(diag, enc.slots());
            let pt = enc.encode(&diag_slots, ct.level);
            let term = eval.mul_plain(&rotated, &pt);
            acc = Some(match acc {
                None => term,
                Some(a) => eval.add(&a, &term),
            });
        }
        let acc = acc.expect("transform has at least one diagonal");
        eval.rescale(&acc)
    }

    /// Evaluates with baby-step/giant-step: rotations grouped so that
    /// only `O(sqrt(D))` distinct rotations are applied.
    ///
    /// # Panics
    ///
    /// Panics if a required Galois key is missing.
    pub fn apply_bsgs(
        &self,
        eval: &Evaluator,
        enc: &Encoder,
        ct: &Ciphertext,
        galois_keys: &HashMap<u64, SwitchingKey>,
        giant_step: usize,
    ) -> Ciphertext {
        let ctx = eval.context().clone();
        let g = giant_step.max(1);
        // Baby rotations rot(v, b) for all needed b.
        let mut baby: HashMap<usize, Ciphertext> = HashMap::new();
        baby.insert(0, ct.clone());
        for &d in self.diagonals.keys() {
            let b = (d as usize) % g;
            if b != 0 && !baby.contains_key(&b) {
                let ge = fhe_math::galois::rotation_galois_element(b as i64, ctx.n());
                let gk = galois_keys
                    .get(&ge)
                    .unwrap_or_else(|| panic!("missing galois key for baby step {b}"));
                baby.insert(b, eval.rotate(ct, b as i64, gk));
            }
        }
        // Group diagonals by giant step i: d = i*g + b.
        let mut groups: HashMap<usize, Vec<(usize, &Vec<Complex>)>> = HashMap::new();
        for (&d, diag) in &self.diagonals {
            let d = d as usize;
            groups.entry(d / g).or_default().push((d % g, diag));
        }
        let mut acc: Option<Ciphertext> = None;
        for (&i, members) in &groups {
            let shift = i * g;
            // Inner sum: sum_b rot(diag_{i*g+b}, -i*g) .* baby_b.
            let mut inner: Option<Ciphertext> = None;
            for &(b, diag) in members {
                let tiled = self.tile_diagonal(diag, enc.slots());
                // Pre-rotate the plaintext diagonal by -shift.
                let pre: Vec<Complex> = (0..tiled.len())
                    .map(|j| tiled[(j + tiled.len() - shift % tiled.len()) % tiled.len()])
                    .collect();
                let pt = enc.encode(&pre, ct.level);
                let term = eval.mul_plain(&baby[&b], &pt);
                inner = Some(match inner {
                    None => term,
                    Some(a) => eval.add(&a, &term),
                });
            }
            let mut partial = inner.expect("non-empty group");
            if shift != 0 {
                let ge = fhe_math::galois::rotation_galois_element(shift as i64, ctx.n());
                let gk = galois_keys
                    .get(&ge)
                    .unwrap_or_else(|| panic!("missing galois key for giant step {shift}"));
                partial = eval.rotate(&partial, shift as i64, gk);
            }
            acc = Some(match acc {
                None => partial,
                Some(a) => eval.add(&a, &partial),
            });
        }
        eval.rescale(&acc.expect("transform has at least one diagonal"))
    }

    /// Tiles a `dim`-length diagonal across all slots so rotations of
    /// the full slot vector act like rotations of the `dim`-vector.
    fn tile_diagonal(&self, diag: &[Complex], slots: usize) -> Vec<Complex> {
        (0..slots).map(|j| diag[j % self.dim]).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::CkksContext;
    use crate::encryption::{Decryptor, Encryptor};
    use crate::keys::KeyGenerator;
    use crate::params::CkksParams;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn real_matrix(dim: usize, rng: &mut StdRng) -> Vec<Complex> {
        (0..dim * dim)
            .map(|_| Complex::new(rng.gen_range(-1.0..1.0), 0.0))
            .collect()
    }

    #[test]
    fn matvec_matches_plain_computation() {
        let ctx = CkksContext::new(CkksParams::tiny_params());
        let mut rng = StdRng::seed_from_u64(71);
        let dim = 8usize;
        let matrix = real_matrix(dim, &mut rng);
        let lt = LinearTransform::from_matrix(&matrix, dim);

        let kg = KeyGenerator::new(ctx.clone());
        let keys = kg.key_set(&lt.required_rotations(), &mut rng);
        let enc = Encoder::new(ctx.clone());
        let encryptor = Encryptor::new(ctx.clone());
        let decryptor = Decryptor::new(ctx.clone());
        let eval = Evaluator::new(ctx.clone());

        let v: Vec<f64> = (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
        // Tile v across slots so rotations behave cyclically mod dim.
        let tiled: Vec<f64> = (0..enc.slots()).map(|j| v[j % dim]).collect();
        let ct = encryptor.encrypt_sk(
            &enc.encode_real(&tiled, ctx.params().max_level()),
            &keys.secret,
            &mut rng,
        );
        let out = lt.apply(&eval, &enc, &ct, &keys.galois);
        let back = decryptor.decrypt(&out, &keys.secret, &enc);

        for r in 0..dim {
            let expect: f64 = (0..dim).map(|c| matrix[r * dim + c].re * v[c]).sum();
            assert!(
                (back[r].re - expect).abs() < 1e-2,
                "row {r}: {} vs {expect}",
                back[r].re
            );
        }
    }

    #[test]
    fn bsgs_matches_naive() {
        let ctx = CkksContext::new(CkksParams::tiny_params());
        let mut rng = StdRng::seed_from_u64(72);
        let dim = 8usize;
        let matrix = real_matrix(dim, &mut rng);
        let lt = LinearTransform::from_matrix(&matrix, dim);
        let g = 4usize;

        let mut rots = lt.required_rotations();
        rots.extend(lt.bsgs_rotations(g));
        let kg = KeyGenerator::new(ctx.clone());
        let keys = kg.key_set(&rots, &mut rng);
        let enc = Encoder::new(ctx.clone());
        let encryptor = Encryptor::new(ctx.clone());
        let decryptor = Decryptor::new(ctx.clone());
        let eval = Evaluator::new(ctx.clone());

        let v: Vec<f64> = (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let tiled: Vec<f64> = (0..enc.slots()).map(|j| v[j % dim]).collect();
        let ct = encryptor.encrypt_sk(
            &enc.encode_real(&tiled, ctx.params().max_level()),
            &keys.secret,
            &mut rng,
        );
        let naive = lt.apply(&eval, &enc, &ct, &keys.galois);
        let bsgs = lt.apply_bsgs(&eval, &enc, &ct, &keys.galois, g);
        let dn = decryptor.decrypt(&naive, &keys.secret, &enc);
        let db = decryptor.decrypt(&bsgs, &keys.secret, &enc);
        for r in 0..dim {
            assert!(
                (dn[r].re - db[r].re).abs() < 2e-2,
                "row {r}: naive {} vs bsgs {}",
                dn[r].re,
                db[r].re
            );
        }
    }

    /// The hoisted matvec must equal the naive one bit for bit: every
    /// rotated term is bitwise identical and ciphertext accumulation is
    /// exact modular arithmetic, so even the HashMap-vs-sorted
    /// iteration orders cannot diverge.
    #[test]
    fn hoisted_apply_bit_identical_to_naive() {
        let ctx = CkksContext::new(CkksParams::tiny_params());
        let mut rng = StdRng::seed_from_u64(73);
        let dim = 8usize;
        let matrix = real_matrix(dim, &mut rng);
        let lt = LinearTransform::from_matrix(&matrix, dim);

        let kg = KeyGenerator::new(ctx.clone());
        let keys = kg.key_set(&lt.required_rotations(), &mut rng);
        let enc = Encoder::new(ctx.clone());
        let encryptor = Encryptor::new(ctx.clone());
        let eval = Evaluator::new(ctx.clone());

        let v: Vec<f64> = (0..enc.slots()).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let ct = encryptor.encrypt_sk(
            &enc.encode_real(&v, ctx.params().max_level()),
            &keys.secret,
            &mut rng,
        );

        let naive = lt.apply(&eval, &enc, &ct, &keys.galois);
        let hoisted = lt.apply_hoisted(&eval, &enc, &ct, &keys.galois);
        assert_eq!(hoisted.c0.flat(), naive.c0.flat());
        assert_eq!(hoisted.c1.flat(), naive.c1.flat());
        assert_eq!(hoisted.level, naive.level);
        assert_eq!(hoisted.scale, naive.scale);
    }

    #[test]
    fn identity_matrix_is_identity() {
        let dim = 4usize;
        let mut matrix = vec![Complex::default(); dim * dim];
        for i in 0..dim {
            matrix[i * dim + i] = Complex::new(1.0, 0.0);
        }
        let lt = LinearTransform::from_matrix(&matrix, dim);
        assert_eq!(lt.diagonals.len(), 1, "identity has only the main diagonal");
        assert!(lt.diagonals.contains_key(&0));
    }
}
