//! Homomorphic operations — the paper's Table II reconstruction model.
//!
//! | Operation | Composing kernels (paper)             |
//! |-----------|----------------------------------------|
//! | HMult     | NTT, BConv, IP, ModMul, ModAdd        |
//! | PMult     | ModMul, ModAdd                        |
//! | HRotate   | NTT, BConv, IP, ModMul, ModAdd, Auto  |
//! | HAdd      | ModAdd                                |
//! | PAdd      | ModAdd                                |
//! | Rescale   | NTT, ModAdd                           |

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use fhe_math::{Representation, RnsPoly};

use crate::ciphertext::{Ciphertext, Ciphertext3};
use crate::context::CkksContext;
use crate::encoding::Plaintext;
use crate::keys::SwitchingKey;
use crate::keyswitch::{
    hoist_rotations, key_switch, key_switch_galois, key_switch_galois_coalesced,
    key_switch_galois_hoisted, key_switch_galois_strict, key_switch_strict, HoistedRotations,
    KsJob,
};

/// Relative scale mismatch tolerated by additive operations.
const SCALE_TOLERANCE: f64 = 1e-6;

/// Running totals of the homomorphic operations an [`Evaluator`] has
/// performed — the functional layer's own Table II accounting, used to
/// pin the performance model's operation counts to what the real
/// implementation executes.
#[derive(Debug, Default)]
pub struct OpCounters {
    /// Ciphertext-ciphertext multiplications (HMult tensor products).
    pub ct_mults: AtomicU64,
    /// Plaintext multiplications (PMult).
    pub pt_mults: AtomicU64,
    /// Rescales.
    pub rescales: AtomicU64,
    /// Keyswitches (relinearisations + Galois applications).
    pub keyswitches: AtomicU64,
    /// Galois applications (rotations and conjugations).
    pub galois_ops: AtomicU64,
    /// Ciphertext additions/subtractions.
    pub additions: AtomicU64,
}

impl OpCounters {
    /// Snapshot as plain integers `(ct_mults, pt_mults, rescales,
    /// keyswitches, galois_ops, additions)`.
    pub fn snapshot(&self) -> (u64, u64, u64, u64, u64, u64) {
        (
            self.ct_mults.load(Ordering::Relaxed),
            self.pt_mults.load(Ordering::Relaxed),
            self.rescales.load(Ordering::Relaxed),
            self.keyswitches.load(Ordering::Relaxed),
            self.galois_ops.load(Ordering::Relaxed),
            self.additions.load(Ordering::Relaxed),
        )
    }

    /// Resets all counters to zero.
    pub fn reset(&self) {
        self.ct_mults.store(0, Ordering::Relaxed);
        self.pt_mults.store(0, Ordering::Relaxed);
        self.rescales.store(0, Ordering::Relaxed);
        self.keyswitches.store(0, Ordering::Relaxed);
        self.galois_ops.store(0, Ordering::Relaxed);
        self.additions.store(0, Ordering::Relaxed);
    }

    fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }
}

/// Evaluator for homomorphic CKKS operations.
#[derive(Debug)]
pub struct Evaluator {
    ctx: Arc<CkksContext>,
    counters: OpCounters,
}

impl Evaluator {
    /// Creates an evaluator for a context.
    pub fn new(ctx: Arc<CkksContext>) -> Self {
        Self {
            ctx,
            counters: OpCounters::default(),
        }
    }

    /// The bound context.
    pub fn context(&self) -> &Arc<CkksContext> {
        &self.ctx
    }

    /// The running operation counters.
    pub fn counters(&self) -> &OpCounters {
        &self.counters
    }

    fn assert_compatible(&self, a: &Ciphertext, b: &Ciphertext) {
        assert_eq!(
            a.level, b.level,
            "level mismatch: {} vs {}",
            a.level, b.level
        );
        let rel = (a.scale - b.scale).abs() / a.scale;
        assert!(
            rel < SCALE_TOLERANCE,
            "scale mismatch: {} vs {}",
            a.scale,
            b.scale
        );
    }

    /// HAdd: ciphertext addition.
    ///
    /// # Panics
    ///
    /// Panics on level or scale mismatch.
    pub fn add(&self, a: &Ciphertext, b: &Ciphertext) -> Ciphertext {
        self.assert_compatible(a, b);
        OpCounters::bump(&self.counters.additions);
        let mut out = a.clone();
        out.c0.add_assign(&b.c0);
        out.c1.add_assign(&b.c1);
        out
    }

    /// Ciphertext subtraction.
    ///
    /// # Panics
    ///
    /// Panics on level or scale mismatch.
    pub fn sub(&self, a: &Ciphertext, b: &Ciphertext) -> Ciphertext {
        self.assert_compatible(a, b);
        OpCounters::bump(&self.counters.additions);
        let mut out = a.clone();
        out.c0.sub_assign(&b.c0);
        out.c1.sub_assign(&b.c1);
        out
    }

    /// Negation.
    pub fn negate(&self, a: &Ciphertext) -> Ciphertext {
        let mut out = a.clone();
        out.c0.neg_assign();
        out.c1.neg_assign();
        out
    }

    /// PAdd: add a plaintext.
    ///
    /// # Panics
    ///
    /// Panics on level or scale mismatch.
    pub fn add_plain(&self, a: &Ciphertext, pt: &Plaintext) -> Ciphertext {
        assert_eq!(a.level, pt.level, "plaintext level mismatch");
        let rel = (a.scale - pt.scale).abs() / a.scale;
        assert!(rel < SCALE_TOLERANCE, "plaintext scale mismatch");
        let mut out = a.clone();
        out.c0.add_assign(&pt.poly);
        out
    }

    /// Subtract a plaintext.
    ///
    /// # Panics
    ///
    /// Panics on level or scale mismatch.
    pub fn sub_plain(&self, a: &Ciphertext, pt: &Plaintext) -> Ciphertext {
        assert_eq!(a.level, pt.level, "plaintext level mismatch");
        let mut out = a.clone();
        out.c0.sub_assign(&pt.poly);
        out
    }

    /// PMult: multiply by a plaintext (scales multiply; rescale after).
    ///
    /// # Panics
    ///
    /// Panics on level mismatch.
    pub fn mul_plain(&self, a: &Ciphertext, pt: &Plaintext) -> Ciphertext {
        assert_eq!(a.level, pt.level, "plaintext level mismatch");
        OpCounters::bump(&self.counters.pt_mults);
        let mut out = a.clone();
        out.c0.mul_assign_pointwise(&pt.poly);
        out.c1.mul_assign_pointwise(&pt.poly);
        out.scale = a.scale * pt.scale;
        out
    }

    /// Tensor product without relinearisation: returns the degree-2
    /// ciphertext `(d0, d1, d2)`.
    ///
    /// The tensor runs as a lazy residue chain: all pointwise products
    /// and the `d1` cross-term addition stay in the `[0, 2p)` window, so
    /// the returned components are in [`fhe_math::ReductionState::Lazy2p`]. The
    /// deferred fold happens inside [`Self::relinearize`] (or call
    /// [`Ciphertext3::canonicalize`] when consuming the tensor
    /// directly). Bit-identical after canonicalisation to
    /// [`Self::mul_no_relin_strict`].
    ///
    /// # Panics
    ///
    /// Panics on level mismatch.
    pub fn mul_no_relin(&self, a: &Ciphertext, b: &Ciphertext) -> Ciphertext3 {
        assert_eq!(a.level, b.level, "level mismatch");
        OpCounters::bump(&self.counters.ct_mults);
        let mut d0 = a.c0.clone();
        d0.mul_assign_pointwise_lazy(&b.c0);
        let mut d1 = a.c0.clone();
        d1.mul_assign_pointwise_lazy(&b.c1);
        let mut d1b = a.c1.clone();
        d1b.mul_assign_pointwise_lazy(&b.c0);
        d1.add_assign_lazy(&d1b);
        let mut d2 = a.c1.clone();
        d2.mul_assign_pointwise_lazy(&b.c1);
        Ciphertext3 {
            d0,
            d1,
            d2,
            level: a.level,
            scale: a.scale * b.scale,
        }
    }

    /// Strict-oracle tensor product: every kernel canonicalises, all
    /// components return [`fhe_math::ReductionState::Canonical`]. The reference
    /// the lazy tensor is asserted against in `tests/lazy_chains.rs`.
    ///
    /// # Panics
    ///
    /// Panics on level mismatch.
    pub fn mul_no_relin_strict(&self, a: &Ciphertext, b: &Ciphertext) -> Ciphertext3 {
        assert_eq!(a.level, b.level, "level mismatch");
        OpCounters::bump(&self.counters.ct_mults);
        let mut d0 = a.c0.clone();
        d0.mul_assign_pointwise(&b.c0);
        let mut d1 = a.c0.clone();
        d1.mul_assign_pointwise(&b.c1);
        let mut d1b = a.c1.clone();
        d1b.mul_assign_pointwise(&b.c0);
        d1.add_assign(&d1b);
        let mut d2 = a.c1.clone();
        d2.mul_assign_pointwise(&b.c1);
        Ciphertext3 {
            d0,
            d1,
            d2,
            level: a.level,
            scale: a.scale * b.scale,
        }
    }

    /// Relinearises a degree-2 ciphertext with the relin key (the
    /// KeySwitch inside HMult).
    ///
    /// Accepts tensors in either reduction state ([`Self::mul_no_relin`]
    /// hands over lazy components): the keyswitch input iNTT
    /// canonicalises `d2` for the digit decompose, and `d0`/`d1` are
    /// folded exactly once when the keyswitch output is added — the
    /// ciphertext-boundary canonicalisation of the HMult chain. The
    /// returned ciphertext is always canonical.
    pub fn relinearize(&self, ct: &Ciphertext3, rlk: &SwitchingKey) -> Ciphertext {
        OpCounters::bump(&self.counters.keyswitches);
        let (ks0, ks1) = key_switch(&self.ctx, &ct.d2, rlk, ct.level);
        let mut c0 = ct.d0.clone();
        c0.add_assign_lazy(&ks0);
        c0.canonicalize();
        let mut c1 = ct.d1.clone();
        c1.add_assign_lazy(&ks1);
        c1.canonicalize();
        Ciphertext {
            c0,
            c1,
            level: ct.level,
            scale: ct.scale,
        }
    }

    /// Strict-oracle relinearisation over [`key_switch_strict`] and
    /// canonical additions; expects a canonical tensor (from
    /// [`Self::mul_no_relin_strict`]).
    pub fn relinearize_strict(&self, ct: &Ciphertext3, rlk: &SwitchingKey) -> Ciphertext {
        OpCounters::bump(&self.counters.keyswitches);
        let (ks0, ks1) = key_switch_strict(&self.ctx, &ct.d2, rlk, ct.level);
        let mut c0 = ct.d0.clone();
        c0.add_assign(&ks0);
        let mut c1 = ct.d1.clone();
        c1.add_assign(&ks1);
        Ciphertext {
            c0,
            c1,
            level: ct.level,
            scale: ct.scale,
        }
    }

    /// HMult: full homomorphic multiplication (tensor + relinearise).
    /// The result has scale `scale_a * scale_b`; rescale afterwards.
    pub fn mul(&self, a: &Ciphertext, b: &Ciphertext, rlk: &SwitchingKey) -> Ciphertext {
        self.relinearize(&self.mul_no_relin(a, b), rlk)
    }

    /// Strict-oracle HMult: the fully-canonical pipeline
    /// ([`Self::mul_no_relin_strict`] + [`Self::relinearize_strict`]),
    /// bit-identical to [`Self::mul`].
    pub fn mul_strict(&self, a: &Ciphertext, b: &Ciphertext, rlk: &SwitchingKey) -> Ciphertext {
        self.relinearize_strict(&self.mul_no_relin_strict(a, b), rlk)
    }

    /// Rescale: divides by the top prime `q_l`, dropping one level.
    ///
    /// # Panics
    ///
    /// Panics at level 0 (nothing left to drop).
    pub fn rescale(&self, a: &Ciphertext) -> Ciphertext {
        assert!(a.level > 0, "cannot rescale at level 0");
        OpCounters::bump(&self.counters.rescales);
        let new_level = a.level - 1;
        let q_last = self.ctx.level_basis(a.level).modulus(a.level).value();
        let c0 = self.rescale_poly(&a.c0, a.level);
        let c1 = self.rescale_poly(&a.c1, a.level);
        Ciphertext {
            c0,
            c1,
            level: new_level,
            scale: a.scale / q_last as f64,
        }
    }

    fn rescale_poly(&self, p: &RnsPoly, level: usize) -> RnsPoly {
        let mut p = p.clone();
        p.to_coeff();
        let n = p.n();
        let flat = p.into_flat();
        let basis = self.ctx.level_basis(level);
        let last_mod = *basis.modulus(level);
        let last_row = &flat[level * n..(level + 1) * n];
        let new_basis = self.ctx.level_basis(level - 1).clone();
        let mut out_flat = Vec::with_capacity(level * n);
        for i in 0..level {
            let qi = basis.modulus(i);
            let inv = qi
                .inv(qi.reduce(last_mod.value()))
                .expect("distinct primes");
            out_flat.extend(
                flat[i * n..(i + 1) * n]
                    .iter()
                    .zip(last_row)
                    .map(|(&c, &r)| {
                        // Centered lift of r into q_i for unbiased rounding.
                        let r_centered = last_mod.to_centered(r);
                        let r_in_qi = qi.from_i64(r_centered);
                        qi.mul(qi.sub(c, r_in_qi), inv)
                    }),
            );
        }
        let mut out = RnsPoly::from_flat(new_basis, out_flat, Representation::Coeff);
        out.to_eval();
        out
    }

    /// Drops limbs down to `target_level` without dividing (level
    /// alignment before ops between mismatched ciphertexts).
    ///
    /// # Panics
    ///
    /// Panics if `target_level > a.level`.
    pub fn mod_down_to(&self, a: &Ciphertext, target_level: usize) -> Ciphertext {
        assert!(target_level <= a.level, "cannot raise level");
        if target_level == a.level {
            return a.clone();
        }
        let basis = self.ctx.level_basis(target_level).clone();
        let take = |p: &RnsPoly| {
            RnsPoly::from_flat(
                basis.clone(),
                p.flat()[..(target_level + 1) * p.n()].to_vec(),
                Representation::Eval,
            )
        };
        Ciphertext {
            c0: take(&a.c0),
            c1: take(&a.c1),
            level: target_level,
            scale: a.scale,
        }
    }

    /// HRotate: homomorphic slot rotation by `r` — the slot permutation
    /// on `c0` plus the hoisted Galois keyswitch of `c1`, via
    /// [`Self::apply_galois`] (see there for the lazy-chain dataflow).
    ///
    /// # Panics
    ///
    /// Panics if `gk` was generated for a different Galois element.
    pub fn rotate(&self, a: &Ciphertext, r: i64, gk: &SwitchingKey) -> Ciphertext {
        let g = fhe_math::galois::rotation_galois_element(r, self.ctx.n());
        self.apply_galois(a, g, gk)
    }

    /// Complex conjugation of all slots.
    pub fn conjugate(&self, a: &Ciphertext, gk: &SwitchingKey) -> Ciphertext {
        let g = fhe_math::galois::conjugation_galois_element(self.ctx.n());
        self.apply_galois(a, g, gk)
    }

    /// Applies an arbitrary Galois automorphism with its switching key.
    ///
    /// Runs the *hoisted lazy rotation chain*: `c1` goes through the
    /// keyswitch pipeline un-rotated and the automorphism is applied to
    /// the raised digits in evaluation form — a pure slot permutation
    /// that preserves the `[0, 2p)` window — so the whole HRotate
    /// kernel chain (digit NTT → `Auto` → `IP` → iNTT) stays
    /// [`fhe_math::ReductionState::Lazy2p`] and folds exactly once per
    /// limb at the ModDown boundary ([`key_switch_galois`]). `c0` only
    /// needs the slot permutation itself. Bit-identical to
    /// [`Self::apply_galois_strict`] (asserted by
    /// `tests/lazy_chains.rs`).
    ///
    /// Counter contract (pinned by `tests::op_counter_contract`): one
    /// `galois_ops` bump and one `keyswitches` bump per application —
    /// the keyswitch layer itself never counts, so there is no double
    /// count with [`Self::relinearize`]'s bump, and
    /// [`crate::bootstrap::Bootstrapper::expected_ops`]'s
    /// "every Galois op keyswitches once" model matches exactly.
    pub fn apply_galois(&self, a: &Ciphertext, g: u64, gk: &SwitchingKey) -> Ciphertext {
        OpCounters::bump(&self.counters.galois_ops);
        OpCounters::bump(&self.counters.keyswitches);
        let mut c0 = a.c0.clone();
        c0.automorphism_lazy(g, self.ctx.galois());
        let (ks0, ks1) = key_switch_galois(&self.ctx, &a.c1, g, gk, a.level);
        c0.add_assign(&ks0);
        Ciphertext {
            c0,
            c1: ks1,
            level: a.level,
            scale: a.scale,
        }
    }

    /// Applies the *same* Galois automorphism to many independent
    /// ciphertexts — typically coalesced from different requests (even
    /// different tenants, hence per-job keys) that happen to share
    /// geometry — through **one** keyswitch pipeline whose kernel
    /// dispatches carry every job's limb rows at once
    /// ([`key_switch_galois_coalesced`]). Output `i` is bit-identical
    /// to `apply_galois(jobs[i].0, g, jobs[i].1)`; the win is batch
    /// width, which is what the threaded backend scales with.
    ///
    /// Counter contract: exactly as `k` sequential
    /// [`Self::apply_galois`] calls — one `galois_ops` and one
    /// `keyswitches` bump **per job** (coalescing is an execution
    /// detail, not an operation-count change).
    ///
    /// # Panics
    ///
    /// Panics if the jobs' levels disagree, or per job as
    /// [`Self::apply_galois`].
    pub fn apply_galois_coalesced(
        &self,
        jobs: &[(&Ciphertext, &SwitchingKey)],
        g: u64,
    ) -> Vec<Ciphertext> {
        let Some(level) = jobs.first().map(|(a, _)| a.level) else {
            return Vec::new();
        };
        for (a, _) in jobs {
            assert_eq!(a.level, level, "coalesced jobs must share a level");
            OpCounters::bump(&self.counters.galois_ops);
            OpCounters::bump(&self.counters.keyswitches);
        }
        let ks_jobs: Vec<KsJob<'_>> = jobs
            .iter()
            .map(|(a, key)| KsJob { d: &a.c1, key })
            .collect();
        let switched = key_switch_galois_coalesced(&self.ctx, &ks_jobs, g, level);
        jobs.iter()
            .zip(switched)
            .map(|((a, _), (ks0, ks1))| {
                let mut c0 = a.c0.clone();
                c0.automorphism_lazy(g, self.ctx.galois());
                c0.add_assign(&ks0);
                Ciphertext {
                    c0,
                    c1: ks1,
                    level,
                    scale: a.scale,
                }
            })
            .collect()
    }

    /// [`Self::apply_galois_coalesced`] for slot rotations: rotates
    /// every ciphertext by the same amount `r` under its own key, in
    /// one coalesced dispatch.
    pub fn rotate_coalesced(
        &self,
        jobs: &[(&Ciphertext, &SwitchingKey)],
        r: i64,
    ) -> Vec<Ciphertext> {
        let g = fhe_math::galois::rotation_galois_element(r, self.ctx.n());
        self.apply_galois_coalesced(jobs, g)
    }

    /// Computes the shared ModUp state of `a.c1` for a batch of
    /// rotations: Decompose + ModUp + the digit NTTs run once here,
    /// and every subsequent [`Self::apply_galois_hoisted`] /
    /// [`Self::rotate_hoisted`] on `a` replays only the per-rotation
    /// tail. Use when one ciphertext feeds many rotations (a
    /// [`crate::LinearTransform`] diagonal layer); each hoisted
    /// application is bit-identical to the sequential
    /// [`Self::apply_galois`].
    pub fn hoist_rotations(&self, a: &Ciphertext) -> HoistedRotations {
        hoist_rotations(&self.ctx, &a.c1, a.level)
    }

    /// [`Self::apply_galois`] over a pre-hoisted ModUp state: the slot
    /// permutation on `c0` plus the per-rotation keyswitch tail on the
    /// shared raised digits ([`key_switch_galois_hoisted`]).
    /// Bit-identical to `apply_galois(a, g, gk)` when `h` was hoisted
    /// from `a` (asserted by `tests::hoisted_galois_matches_sequential`
    /// and `tests/backend_identity.rs`).
    ///
    /// Counter contract: identical to [`Self::apply_galois`] — one
    /// `galois_ops` and one `keyswitches` bump per application (the
    /// hoist itself does not count; it performs no complete keyswitch).
    ///
    /// # Panics
    ///
    /// Panics if `h` was hoisted at a different level than `a`.
    pub fn apply_galois_hoisted(
        &self,
        a: &Ciphertext,
        h: &HoistedRotations,
        g: u64,
        gk: &SwitchingKey,
    ) -> Ciphertext {
        assert_eq!(h.level(), a.level, "hoisted state level mismatch");
        OpCounters::bump(&self.counters.galois_ops);
        OpCounters::bump(&self.counters.keyswitches);
        let mut c0 = a.c0.clone();
        c0.automorphism_lazy(g, self.ctx.galois());
        let (ks0, ks1) = key_switch_galois_hoisted(&self.ctx, h, g, gk);
        c0.add_assign(&ks0);
        Ciphertext {
            c0,
            c1: ks1,
            level: a.level,
            scale: a.scale,
        }
    }

    /// [`Self::rotate`] over a pre-hoisted ModUp state — slot rotation
    /// by `r` reusing the shared raised digits of `a.c1`.
    ///
    /// # Panics
    ///
    /// As [`Self::apply_galois_hoisted`]; additionally panics if `gk`
    /// was generated for a different Galois element.
    pub fn rotate_hoisted(
        &self,
        a: &Ciphertext,
        h: &HoistedRotations,
        r: i64,
        gk: &SwitchingKey,
    ) -> Ciphertext {
        let g = fhe_math::galois::rotation_galois_element(r, self.ctx.n());
        self.apply_galois_hoisted(a, h, g, gk)
    }

    /// Strict-oracle Galois application: the same hoisted dataflow as
    /// [`Self::apply_galois`] over [`key_switch_galois_strict`] —
    /// fully-reduced transforms, canonical automorphism and inner
    /// products. Counts identically to the lazy path.
    pub fn apply_galois_strict(&self, a: &Ciphertext, g: u64, gk: &SwitchingKey) -> Ciphertext {
        OpCounters::bump(&self.counters.galois_ops);
        OpCounters::bump(&self.counters.keyswitches);
        let mut c0 = a.c0.clone();
        c0.automorphism(g, self.ctx.galois());
        let (ks0, ks1) = key_switch_galois_strict(&self.ctx, &a.c1, g, gk, a.level);
        c0.add_assign(&ks0);
        Ciphertext {
            c0,
            c1: ks1,
            level: a.level,
            scale: a.scale,
        }
    }

    /// Multiplies by the monomial `X^k` — exact, key-free, used by the
    /// scheme-conversion packing algorithm (Alg. 4's `Rotate`).
    pub fn mul_monomial(&self, a: &Ciphertext, k: i64) -> Ciphertext {
        let mut c0 = a.c0.clone();
        let mut c1 = a.c1.clone();
        c0.to_coeff();
        c1.to_coeff();
        c0.mul_monomial(k);
        c1.mul_monomial(k);
        c0.to_eval();
        c1.to_eval();
        Ciphertext {
            c0,
            c1,
            level: a.level,
            scale: a.scale,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoding::Encoder;
    use crate::encryption::{Decryptor, Encryptor};
    use crate::keys::{KeyGenerator, KeySet};
    use crate::params::CkksParams;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    struct Fixture {
        ctx: Arc<CkksContext>,
        enc: Encoder,
        encryptor: Encryptor,
        decryptor: Decryptor,
        eval: Evaluator,
        keys: KeySet,
        rng: StdRng,
    }

    fn fixture() -> Fixture {
        let ctx = CkksContext::new(CkksParams::tiny_params());
        let mut rng = StdRng::seed_from_u64(61);
        let kg = KeyGenerator::new(ctx.clone());
        let keys = kg.key_set(&[1, 2, -1], &mut rng);
        Fixture {
            enc: Encoder::new(ctx.clone()),
            encryptor: Encryptor::new(ctx.clone()),
            decryptor: Decryptor::new(ctx.clone()),
            eval: Evaluator::new(ctx.clone()),
            ctx,
            keys,
            rng,
        }
    }

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() < tol
    }

    #[test]
    fn homomorphic_addition() {
        let mut f = fixture();
        let l = f.ctx.params().max_level();
        let x = vec![0.5, -0.25, 0.125, 1.0];
        let y = vec![0.25, 0.5, -0.5, -1.0];
        let ct_x = f
            .encryptor
            .encrypt_sk(&f.enc.encode_real(&x, l), &f.keys.secret, &mut f.rng);
        let ct_y = f
            .encryptor
            .encrypt_sk(&f.enc.encode_real(&y, l), &f.keys.secret, &mut f.rng);
        let sum = f.eval.add(&ct_x, &ct_y);
        let back = f.decryptor.decrypt(&sum, &f.keys.secret, &f.enc);
        for i in 0..4 {
            assert!(
                close(back[i].re, x[i] + y[i], 1e-3),
                "{} vs {}",
                back[i].re,
                x[i] + y[i]
            );
        }
    }

    #[test]
    fn homomorphic_multiplication_with_rescale() {
        let mut f = fixture();
        let l = f.ctx.params().max_level();
        let x = vec![0.5, -0.25, 0.75, 0.1];
        let y = vec![0.25, 0.5, -0.5, 0.9];
        let ct_x = f
            .encryptor
            .encrypt_sk(&f.enc.encode_real(&x, l), &f.keys.secret, &mut f.rng);
        let ct_y = f
            .encryptor
            .encrypt_sk(&f.enc.encode_real(&y, l), &f.keys.secret, &mut f.rng);
        let prod = f.eval.mul(&ct_x, &ct_y, &f.keys.relin);
        let prod = f.eval.rescale(&prod);
        assert_eq!(prod.level, l - 1);
        let back = f.decryptor.decrypt(&prod, &f.keys.secret, &f.enc);
        for i in 0..4 {
            assert!(
                close(back[i].re, x[i] * y[i], 1e-2),
                "slot {i}: {} vs {}",
                back[i].re,
                x[i] * y[i]
            );
        }
    }

    #[test]
    fn multiplication_chain_consumes_levels() {
        // x^4 via two squarings: exercises rescale bookkeeping.
        let mut f = fixture();
        let l = f.ctx.params().max_level();
        let x = vec![0.9, -0.8, 0.5];
        let ct = f
            .encryptor
            .encrypt_sk(&f.enc.encode_real(&x, l), &f.keys.secret, &mut f.rng);
        let sq = f.eval.rescale(&f.eval.mul(&ct, &ct, &f.keys.relin));
        let fourth = f.eval.rescale(&f.eval.mul(&sq, &sq, &f.keys.relin));
        assert_eq!(fourth.level, l - 2);
        let back = f.decryptor.decrypt(&fourth, &f.keys.secret, &f.enc);
        for i in 0..3 {
            let expect = x[i].powi(4);
            assert!(
                close(back[i].re, expect, 3e-2),
                "slot {i}: {} vs {expect}",
                back[i].re
            );
        }
    }

    #[test]
    fn plaintext_multiplication() {
        let mut f = fixture();
        let l = f.ctx.params().max_level();
        let x = vec![0.5, -0.5, 0.25];
        let w = vec![2.0, 3.0, -4.0];
        let ct = f
            .encryptor
            .encrypt_sk(&f.enc.encode_real(&x, l), &f.keys.secret, &mut f.rng);
        let pt_w = f.enc.encode_real(&w, l);
        let prod = f.eval.rescale(&f.eval.mul_plain(&ct, &pt_w));
        let back = f.decryptor.decrypt(&prod, &f.keys.secret, &f.enc);
        for i in 0..3 {
            assert!(close(back[i].re, x[i] * w[i], 1e-2));
        }
    }

    #[test]
    fn homomorphic_rotation() {
        let mut f = fixture();
        let l = f.ctx.params().max_level();
        let slots = f.enc.slots();
        let x: Vec<f64> = (0..slots).map(|i| (i % 17) as f64 / 17.0).collect();
        let ct = f
            .encryptor
            .encrypt_sk(&f.enc.encode_real(&x, l), &f.keys.secret, &mut f.rng);
        let g = fhe_math::galois::rotation_galois_element(1, f.ctx.n());
        let rot = f.eval.rotate(&ct, 1, &f.keys.galois[&g]);
        let back = f.decryptor.decrypt(&rot, &f.keys.secret, &f.enc);
        for j in 0..slots - 1 {
            assert!(
                close(back[j].re, x[j + 1], 1e-3),
                "slot {j}: {} vs {}",
                back[j].re,
                x[j + 1]
            );
        }
        // Cyclic wraparound.
        assert!(close(back[slots - 1].re, x[0], 1e-3));
    }

    #[test]
    fn rotation_by_negative_amount() {
        let mut f = fixture();
        let l = f.ctx.params().max_level();
        let slots = f.enc.slots();
        let x: Vec<f64> = (0..slots).map(|i| ((i * 3) % 11) as f64 / 11.0).collect();
        let ct = f
            .encryptor
            .encrypt_sk(&f.enc.encode_real(&x, l), &f.keys.secret, &mut f.rng);
        let g = fhe_math::galois::rotation_galois_element(-1, f.ctx.n());
        let rot = f.eval.rotate(&ct, -1, &f.keys.galois[&g]);
        let back = f.decryptor.decrypt(&rot, &f.keys.secret, &f.enc);
        for j in 1..slots {
            assert!(close(back[j].re, x[j - 1], 1e-3));
        }
        assert!(close(back[0].re, x[slots - 1], 1e-3));
    }

    #[test]
    fn conjugation_flips_imaginary() {
        let mut f = fixture();
        let l = f.ctx.params().max_level();
        let slots: Vec<fhe_math::Complex> = vec![
            fhe_math::Complex::new(0.5, 0.25),
            fhe_math::Complex::new(-0.25, 0.75),
        ];
        let pt = f.enc.encode(&slots, l);
        let ct = f.encryptor.encrypt_sk(&pt, &f.keys.secret, &mut f.rng);
        let g = fhe_math::galois::conjugation_galois_element(f.ctx.n());
        let conj = f.eval.conjugate(&ct, &f.keys.galois[&g]);
        let back = f.decryptor.decrypt(&conj, &f.keys.secret, &f.enc);
        for (i, z) in slots.iter().enumerate() {
            assert!(close(back[i].re, z.re, 1e-3));
            assert!(close(back[i].im, -z.im, 1e-3));
        }
    }

    #[test]
    fn monomial_multiplication_preserves_decryption_structure() {
        // X^k multiplication is exact and commutes with decryption.
        let mut f = fixture();
        let x = vec![0.5, -0.25];
        let ct = f
            .encryptor
            .encrypt_sk(&f.enc.encode_real(&x, 1), &f.keys.secret, &mut f.rng);
        let shifted = f.eval.mul_monomial(&ct, 5);
        let twice = f.eval.mul_monomial(&shifted, f.ctx.n() as i64 * 2 - 5);
        // X^5 * X^(2n-5) = X^(2n) = 1.
        let back = f.decryptor.decrypt(&twice, &f.keys.secret, &f.enc);
        assert!(close(back[0].re, 0.5, 1e-3));
        assert!(close(back[1].re, -0.25, 1e-3));
    }

    #[test]
    fn mod_down_alignment() {
        let mut f = fixture();
        let l = f.ctx.params().max_level();
        let x = vec![0.75, 0.1];
        let ct = f
            .encryptor
            .encrypt_sk(&f.enc.encode_real(&x, l), &f.keys.secret, &mut f.rng);
        let low = f.eval.mod_down_to(&ct, 1);
        assert_eq!(low.level, 1);
        let back = f.decryptor.decrypt(&low, &f.keys.secret, &f.enc);
        assert!(close(back[0].re, 0.75, 1e-3));
    }

    /// The OpCounters contract, reconciled with
    /// `bootstrap::expected_ops`: a Galois application (rotate or
    /// conjugate) bumps `galois_ops` and `keyswitches` exactly once —
    /// the keyswitch layer itself never counts, so there is no double
    /// count from `apply_galois` "bumping keyswitches itself and also
    /// calling key_switch" — and a relinearisation bumps `keyswitches`
    /// once while the tensor bumps `ct_mults` once. This is precisely
    /// the `keyswitches = galois + ct_mults` model `expected_ops`
    /// assumes (and `op_counters_match_prediction` pins end to end).
    #[test]
    fn op_counter_contract() {
        let mut f = fixture();
        let l = f.ctx.params().max_level();
        let ct = f.encryptor.encrypt_sk(
            &f.enc.encode_real(&[0.5, -0.25], l),
            &f.keys.secret,
            &mut f.rng,
        );
        let g_rot = fhe_math::galois::rotation_galois_element(1, f.ctx.n());
        let g_conj = fhe_math::galois::conjugation_galois_element(f.ctx.n());

        f.eval.counters().reset();
        let _ = f.eval.rotate(&ct, 1, &f.keys.galois[&g_rot]);
        assert_eq!(f.eval.counters().snapshot(), (0, 0, 0, 1, 1, 0), "rotate");

        let _ = f.eval.conjugate(&ct, &f.keys.galois[&g_conj]);
        assert_eq!(
            f.eval.counters().snapshot(),
            (0, 0, 0, 2, 2, 0),
            "conjugate"
        );

        // The strict oracle counts identically to the lazy chain.
        let _ = f
            .eval
            .apply_galois_strict(&ct, g_rot, &f.keys.galois[&g_rot]);
        assert_eq!(
            f.eval.counters().snapshot(),
            (0, 0, 0, 3, 3, 0),
            "apply_galois_strict"
        );

        // Tensor counts a ct-mult but NOT a keyswitch...
        let tensor = f.eval.mul_no_relin(&ct, &ct);
        assert_eq!(
            f.eval.counters().snapshot(),
            (1, 0, 0, 3, 3, 0),
            "mul_no_relin"
        );
        // ...the relinearisation owns that keyswitch bump.
        let _ = f.eval.relinearize(&tensor, &f.keys.relin);
        assert_eq!(
            f.eval.counters().snapshot(),
            (1, 0, 0, 4, 3, 0),
            "relinearize"
        );

        // Full HMult = tensor + relin: one ct-mult, one keyswitch.
        let _ = f.eval.mul(&ct, &ct, &f.keys.relin);
        assert_eq!(f.eval.counters().snapshot(), (2, 0, 0, 5, 3, 0), "mul");
    }

    /// Hoisted lazy rotation is bit-identical to the strict oracle and
    /// decrypts to the rotated slots (spot check at the eval layer; the
    /// cross-shape sweep lives in `tests/lazy_chains.rs`).
    #[test]
    fn apply_galois_lazy_matches_strict_and_rotates() {
        let mut f = fixture();
        let l = f.ctx.params().max_level();
        let slots = f.enc.slots();
        let x: Vec<f64> = (0..slots).map(|i| ((i * 7) % 13) as f64 / 13.0).collect();
        let ct = f
            .encryptor
            .encrypt_sk(&f.enc.encode_real(&x, l), &f.keys.secret, &mut f.rng);
        let g = fhe_math::galois::rotation_galois_element(2, f.ctx.n());
        let lazy = f.eval.apply_galois(&ct, g, &f.keys.galois[&g]);
        let strict = f.eval.apply_galois_strict(&ct, g, &f.keys.galois[&g]);
        assert_eq!(lazy.c0.flat(), strict.c0.flat());
        assert_eq!(lazy.c1.flat(), strict.c1.flat());
        let back = f.decryptor.decrypt(&lazy, &f.keys.secret, &f.enc);
        for j in 0..slots {
            assert!(
                close(back[j].re, x[(j + 2) % slots], 1e-3),
                "slot {j}: {} vs {}",
                back[j].re,
                x[(j + 2) % slots]
            );
        }
    }

    /// One `hoist_rotations` call serves a whole batch of rotations,
    /// each bitwise identical to its sequential `apply_galois` /
    /// `rotate` counterpart, and the hoisted path obeys the same
    /// counter contract (one `galois_ops` + one `keyswitches` bump per
    /// application; the hoist itself counts nothing).
    #[test]
    fn hoisted_galois_matches_sequential() {
        let mut f = fixture();
        let l = f.ctx.params().max_level();
        let slots = f.enc.slots();
        let x: Vec<f64> = (0..slots).map(|i| ((i * 5) % 19) as f64 / 19.0).collect();
        let ct = f
            .encryptor
            .encrypt_sk(&f.enc.encode_real(&x, l), &f.keys.secret, &mut f.rng);

        f.eval.counters().reset();
        let hoisted = f.eval.hoist_rotations(&ct);
        assert_eq!(
            f.eval.counters().snapshot(),
            (0, 0, 0, 0, 0, 0),
            "hoisting alone must not count"
        );

        for r in [1i64, 2, -1] {
            let g = fhe_math::galois::rotation_galois_element(r, f.ctx.n());
            let gk = &f.keys.galois[&g];
            let h = f.eval.rotate_hoisted(&ct, &hoisted, r, gk);
            let s = f.eval.rotate(&ct, r, gk);
            assert_eq!(h.c0.flat(), s.c0.flat(), "c0 r={r}");
            assert_eq!(h.c1.flat(), s.c1.flat(), "c1 r={r}");
            assert_eq!(h.scale, s.scale);
            assert_eq!(h.level, s.level);
        }
        // 3 hoisted + 3 sequential applications, one bump each.
        assert_eq!(f.eval.counters().snapshot(), (0, 0, 0, 6, 6, 0));
    }

    /// Coalescing k independent rotations into one dispatch must be
    /// bit-identical to k sequential `rotate` calls and count exactly
    /// like them — per job, not per dispatch.
    #[test]
    fn coalesced_galois_matches_sequential_and_counts_per_job() {
        let mut f = fixture();
        let l = f.ctx.params().max_level();
        let slots = f.enc.slots();
        let cts: Vec<Ciphertext> = (0..3)
            .map(|t| {
                let x: Vec<f64> = (0..slots)
                    .map(|i| ((i * 7 + t) % 23) as f64 / 23.0)
                    .collect();
                f.encryptor
                    .encrypt_sk(&f.enc.encode_real(&x, l), &f.keys.secret, &mut f.rng)
            })
            .collect();
        let r = 1i64;
        let g = fhe_math::galois::rotation_galois_element(r, f.ctx.n());
        let gk = &f.keys.galois[&g];

        f.eval.counters().reset();
        let jobs: Vec<(&Ciphertext, &SwitchingKey)> = cts.iter().map(|ct| (ct, gk)).collect();
        let coalesced = f.eval.rotate_coalesced(&jobs, r);
        assert_eq!(
            f.eval.counters().snapshot(),
            (0, 0, 0, 3, 3, 0),
            "one keyswitch + galois bump per job"
        );
        for (i, (ct, c)) in cts.iter().zip(&coalesced).enumerate() {
            let s = f.eval.rotate(ct, r, gk);
            assert_eq!(c.c0.flat(), s.c0.flat(), "c0 job {i}");
            assert_eq!(c.c1.flat(), s.c1.flat(), "c1 job {i}");
            assert_eq!(c.scale, s.scale);
            assert_eq!(c.level, s.level);
        }
        assert!(f.eval.apply_galois_coalesced(&[], g).is_empty());
    }

    /// Exhaustive plaintext-slot oracle for
    /// `fhe_math::galois::rotation_galois_element`: for every rotation
    /// amount spanning `r = 0`, negative `r`, and several `|r| >= n/2`
    /// wraparounds, applying the automorphism `sigma_{g(r)}` to an
    /// *unencrypted* plaintext polynomial must cyclically rotate the
    /// decoded slot vector by exactly `r` (no keys, no noise — a pure
    /// slot-permutation oracle).
    #[test]
    fn rotation_galois_element_matches_plaintext_slot_oracle() {
        let f = fixture();
        let slots = f.enc.slots() as i64;
        let x: Vec<f64> = (0..slots).map(|i| ((i * 5) % 17) as f64 / 17.0).collect();
        let l = f.ctx.params().max_level();
        let mut r_cases: Vec<i64> = vec![
            0,
            1,
            2,
            -1,
            -2,
            slots - 1,
            slots,
            slots + 1,
            -slots,
            -slots - 3,
            2 * slots + 5,
        ];
        r_cases.dedup();
        for r in r_cases {
            let g = fhe_math::galois::rotation_galois_element(r, f.ctx.n());
            let mut pt = f.enc.encode_real(&x, l);
            pt.poly.automorphism(g, f.ctx.galois());
            let back = f.enc.decode(&pt);
            for j in 0..slots {
                let want = x[(j + r).rem_euclid(slots) as usize];
                assert!(
                    close(back[j as usize].re, want, 1e-6),
                    "r={r} slot {j}: {} vs {want}",
                    back[j as usize].re
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "level mismatch")]
    fn adding_mismatched_levels_panics() {
        let mut f = fixture();
        let l = f.ctx.params().max_level();
        let ct1 = f
            .encryptor
            .encrypt_sk(&f.enc.encode_real(&[0.1], l), &f.keys.secret, &mut f.rng);
        let ct2 = f.encryptor.encrypt_sk(
            &f.enc.encode_real(&[0.1], l - 1),
            &f.keys.secret,
            &mut f.rng,
        );
        let _ = f.eval.add(&ct1, &ct2);
    }
}
