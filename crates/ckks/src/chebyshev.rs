//! Chebyshev approximation and low-depth homomorphic evaluation.
//!
//! Bootstrapping's EvalMod stage (and deep CKKS applications generally)
//! must evaluate a high-degree polynomial in `O(log d)` multiplicative
//! depth — Horner's rule would burn one level per degree. This module
//! provides
//!
//! * [`ChebyshevPoly`]: numeric Chebyshev interpolation of an arbitrary
//!   function on an interval, with plain Clenshaw evaluation, and
//! * [`Evaluator::eval_chebyshev`]: a Paterson–Stockmeyer-style
//!   divide-and-conquer evaluator over the Chebyshev basis, consuming
//!   `ceil(log2 d) + 1` levels instead of `d`.
//!
//! Scale management is exact: every ciphertext addition in the recursion
//! is between operands whose scales match by construction (plaintext
//! operands are encoded at the precise scale that lands each term on the
//! shared target), so no scale-drift error accumulates even over deep
//! chains of near-but-not-exactly-`2^scale_bits` primes.

use std::f64::consts::PI;

use crate::ciphertext::Ciphertext;
use crate::encoding::Encoder;
use crate::eval::Evaluator;
use crate::keys::SwitchingKey;

/// A polynomial in the Chebyshev basis on an interval `[a, b]`:
/// `p(x) = sum_j coeffs[j] * T_j(u)` with `u = (2x - a - b) / (b - a)`.
#[derive(Debug, Clone)]
pub struct ChebyshevPoly {
    /// Chebyshev-basis coefficients `c_0 .. c_d`.
    pub coeffs: Vec<f64>,
    /// Left endpoint of the approximation interval.
    pub a: f64,
    /// Right endpoint of the approximation interval.
    pub b: f64,
}

impl ChebyshevPoly {
    /// Interpolates `f` on `[a, b]` at the `degree + 1` Chebyshev nodes.
    ///
    /// For analytic `f` the error decays geometrically in the degree;
    /// for `cos`/`sin` over `k` periods a degree around `2 pi k + 10`
    /// already reaches double precision.
    ///
    /// # Panics
    ///
    /// Panics if `a >= b`.
    pub fn fit(f: impl Fn(f64) -> f64, a: f64, b: f64, degree: usize) -> Self {
        assert!(a < b, "invalid interval [{a}, {b}]");
        let m = degree + 1;
        // Sample at the Chebyshev nodes u_k = cos(pi (k + 1/2) / m).
        let samples: Vec<f64> = (0..m)
            .map(|k| {
                let u = (PI * (k as f64 + 0.5) / m as f64).cos();
                f(0.5 * (u * (b - a) + a + b))
            })
            .collect();
        // c_j = (2/m) sum_k f(x_k) cos(j pi (k + 1/2) / m), with c_0 halved.
        let coeffs: Vec<f64> = (0..m)
            .map(|j| {
                let s: f64 = samples
                    .iter()
                    .enumerate()
                    .map(|(k, &fx)| fx * (PI * j as f64 * (k as f64 + 0.5) / m as f64).cos())
                    .sum();
                let c = 2.0 * s / m as f64;
                if j == 0 {
                    c / 2.0
                } else {
                    c
                }
            })
            .collect();
        Self { coeffs, a, b }
    }

    /// Degree of the representation (`coeffs.len() - 1`).
    pub fn degree(&self) -> usize {
        self.coeffs.len().saturating_sub(1)
    }

    /// Evaluates the polynomial at `x` by the Clenshaw recurrence.
    pub fn eval(&self, x: f64) -> f64 {
        let u = (2.0 * x - self.a - self.b) / (self.b - self.a);
        clenshaw(&self.coeffs, u)
    }

    /// Maximum absolute error of the fit against `f`, probed on a grid.
    pub fn max_error(&self, f: impl Fn(f64) -> f64, probes: usize) -> f64 {
        (0..probes)
            .map(|i| {
                let x = self.a + (self.b - self.a) * i as f64 / (probes - 1).max(1) as f64;
                (self.eval(x) - f(x)).abs()
            })
            .fold(0.0, f64::max)
    }

    /// Drops trailing coefficients below `tol`, returning the trimmed
    /// polynomial (at least degree 1 is kept).
    pub fn trim(mut self, tol: f64) -> Self {
        while self.coeffs.len() > 2 && self.coeffs.last().is_some_and(|c| c.abs() < tol) {
            self.coeffs.pop();
        }
        self
    }
}

/// Clenshaw evaluation of `sum_j c_j T_j(u)` for `u` in `[-1, 1]`.
pub fn clenshaw(coeffs: &[f64], u: f64) -> f64 {
    let mut b1 = 0.0;
    let mut b2 = 0.0;
    for &c in coeffs.iter().skip(1).rev() {
        let t = 2.0 * u * b1 - b2 + c;
        b2 = b1;
        b1 = t;
    }
    coeffs.first().copied().unwrap_or(0.0) + u * b1 - b2
}

/// Multiplicative depth consumed by [`Evaluator::eval_chebyshev`] for a
/// polynomial of this degree: `ceil(log2 d) + 1` for `d >= 2`.
pub fn chebyshev_depth(degree: usize) -> usize {
    if degree < 2 {
        return 1;
    }
    let k = split_point(degree);
    // q (degree d-k) is evaluated one level above the output, r (degree
    // < k) at the output, and T_k must survive to output level + 1.
    (chebyshev_depth(degree - k) + 1)
        .max(chebyshev_depth(k - 1))
        .max(ctor_depth(k) + 1)
}

/// Levels below the input at which the power-of-two giant `T_k` is
/// constructed by repeated doubling (`T_{2j} = 2 T_j^2 - 1`).
fn ctor_depth(k: usize) -> usize {
    debug_assert!(k.is_power_of_two());
    k.trailing_zeros() as usize
}

/// Largest power of two `<= degree`: the split index `k` in
/// `p = q * T_k + r`.
fn split_point(degree: usize) -> usize {
    debug_assert!(degree >= 1);
    let mut k = 1usize;
    while 2 * k <= degree {
        k *= 2;
    }
    k
}

/// Number of ciphertext-ciphertext multiplications
/// [`Evaluator::eval_chebyshev`] performs for these coefficients:
/// the power-of-two doubling chain plus one multiply per recursion
/// split (mirrors the evaluator's control flow exactly, including the
/// trimming of zero tails).
pub fn multiplication_count(coeffs: &[f64]) -> usize {
    let degree = coeffs.len().saturating_sub(1);
    if degree < 2 {
        return 0;
    }
    let chain = split_point(degree).trailing_zeros() as usize;
    chain + recursion_mults(coeffs)
}

fn recursion_mults(coeffs: &[f64]) -> usize {
    let degree = coeffs.len() - 1;
    if degree < 2 {
        return 0;
    }
    let k = split_point(degree);
    let (q, r) = cheb_divide(coeffs, k);
    1 + recursion_mults(&q) + recursion_mults(&r)
}

/// Splits `p = q * T_k + r` in the Chebyshev basis.
///
/// Using `T_i T_k = (T_{k+i} + T_{k-i}) / 2` for `i <= k`:
/// `q_i = 2 c_{k+i}` for `i >= 1`, `q_0 = c_k`, and
/// `r_{k-i} = c_{k-i} - c_{k+i}`, other `r_j = c_j`.
fn cheb_divide(coeffs: &[f64], k: usize) -> (Vec<f64>, Vec<f64>) {
    let d = coeffs.len() - 1;
    debug_assert!(k <= d && d < 2 * k, "split {k} invalid for degree {d}");
    let mut q = vec![0.0; d - k + 1];
    q[0] = coeffs[k];
    for i in 1..=d - k {
        q[i] = 2.0 * coeffs[k + i];
    }
    let mut r: Vec<f64> = coeffs[..k].to_vec();
    for i in 1..=d - k {
        r[k - i] -= coeffs[k + i];
    }
    (trim_zeros(q), trim_zeros(r))
}

/// Drops trailing coefficients that are exactly representable as noise
/// floor (keeps at least the constant term).
fn trim_zeros(mut v: Vec<f64>) -> Vec<f64> {
    let cap = v.iter().fold(0.0f64, |m, c| m.max(c.abs()));
    let tol = cap * 1e-15;
    while v.len() > 1 && v.last().is_some_and(|c| c.abs() <= tol) {
        v.pop();
    }
    v
}

/// Precomputed Chebyshev power ciphertexts: `T_1` and the power-of-two
/// giants `T_2, T_4, ..., T_{split}`.
struct ChebPowers {
    /// `powers[k]` = ciphertext of `T_k(u)` where present.
    powers: Vec<Option<Ciphertext>>,
}

impl ChebPowers {
    fn get(&self, k: usize) -> &Ciphertext {
        self.powers[k]
            .as_ref()
            .unwrap_or_else(|| panic!("T_{k} was not precomputed"))
    }
}

impl Evaluator {
    /// Evaluates `p(u) = sum_j coeffs[j] * T_j(u)` on a ciphertext whose
    /// slots lie in `[-1, 1]`, by recursive splitting at power-of-two
    /// Chebyshev polynomials (Paterson–Stockmeyer style).
    ///
    /// Consumes [`chebyshev_depth`]`(d)` levels (`ceil(log2 d) + 1`); the
    /// result lands at scale exactly `Delta` (the context default).
    ///
    /// # Panics
    ///
    /// Panics if `coeffs` is empty or the ciphertext lacks the required
    /// levels.
    pub fn eval_chebyshev(
        &self,
        u: &Ciphertext,
        coeffs: &[f64],
        rlk: &SwitchingKey,
        enc: &Encoder,
    ) -> Ciphertext {
        assert!(!coeffs.is_empty(), "polynomial needs coefficients");
        let degree = coeffs.len() - 1;
        let depth = chebyshev_depth(degree);
        assert!(
            u.level >= depth,
            "chebyshev degree {degree} needs {depth} levels, ciphertext has {}",
            u.level
        );
        let powers = self.cheb_powers(u, degree, rlk, enc);
        let target_level = u.level - depth;
        let target_scale = self.context().params().scale();
        self.cheb_recurse(coeffs, target_level, target_scale, &powers, rlk, enc)
    }

    /// Builds `T_1` and the power-of-two giants up to the top split
    /// point, each with exact scale tracking.
    fn cheb_powers(
        &self,
        u: &Ciphertext,
        degree: usize,
        rlk: &SwitchingKey,
        enc: &Encoder,
    ) -> ChebPowers {
        let top = split_point(degree.max(1));
        let mut powers: Vec<Option<Ciphertext>> = vec![None; top + 1];
        powers[1] = Some(u.clone());
        let mut k = 2;
        while k <= top {
            let half = powers[k / 2].as_ref().expect("built in order");
            powers[k] = Some(self.cheb_double(half, enc, rlk));
            k *= 2;
        }
        ChebPowers { powers }
    }

    /// `T_{2k} = 2 T_k^2 - 1`: one level, exact scale bookkeeping.
    fn cheb_double(&self, t: &Ciphertext, enc: &Encoder, rlk: &SwitchingKey) -> Ciphertext {
        let sq = self.mul(t, t, rlk);
        let doubled = self.add(&sq, &sq);
        let out = self.rescale(&doubled);
        let one = enc.encode_constant_at(1.0, out.level, out.scale);
        self.sub_plain(&out, &one)
    }

    /// Recursive split evaluation: returns a ciphertext at exactly
    /// (`target_level`, `target_scale`).
    fn cheb_recurse(
        &self,
        coeffs: &[f64],
        target_level: usize,
        target_scale: f64,
        powers: &ChebPowers,
        rlk: &SwitchingKey,
        enc: &Encoder,
    ) -> Ciphertext {
        let degree = coeffs.len() - 1;
        if degree < 2 {
            return self.cheb_base_case(coeffs, target_level, target_scale, powers, enc);
        }
        let k = split_point(degree);
        let (q, r) = cheb_divide(coeffs, k);
        let tk = self.mod_down_to(powers.get(k), target_level + 1);
        let q_last = self
            .context()
            .level_basis(target_level + 1)
            .modulus(target_level + 1)
            .value() as f64;
        // q evaluated so that rescale(q_ct * T_k) lands at the target.
        let q_scale = target_scale * q_last / tk.scale;
        let q_ct = self.cheb_recurse(&q, target_level + 1, q_scale, powers, rlk, enc);
        let mut prod = self.rescale(&self.mul(&q_ct, &tk, rlk));
        prod.scale = target_scale; // snap f64 round-off; exact by construction
        let r_ct = self.cheb_recurse(&r, target_level, target_scale, powers, rlk, enc);
        self.add(&prod, &r_ct)
    }

    /// Base case: `c_0 + c_1 T_1` as a plaintext multiply at the exact
    /// pre-rescale scale (one level).
    fn cheb_base_case(
        &self,
        coeffs: &[f64],
        target_level: usize,
        target_scale: f64,
        powers: &ChebPowers,
        enc: &Encoder,
    ) -> Ciphertext {
        let q_last = self
            .context()
            .level_basis(target_level + 1)
            .modulus(target_level + 1)
            .value() as f64;
        let pre_scale = target_scale * q_last;
        let c1 = coeffs.get(1).copied().unwrap_or(0.0);
        let t1 = self.mod_down_to(powers.get(1), target_level + 1);
        let pt = enc.encode_constant_at(c1, target_level + 1, pre_scale / t1.scale);
        let mut out = self.rescale(&self.mul_plain(&t1, &pt));
        debug_assert!((out.scale - target_scale).abs() / target_scale < 1e-9);
        out.scale = target_scale; // snap f64 round-off; exact by construction
        let c0 = enc.encode_constant_at(coeffs[0], target_level, target_scale);
        self.add_plain(&out, &c0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::CkksContext;
    use crate::encryption::{Decryptor, Encryptor};
    use crate::keys::KeyGenerator;
    use crate::params::CkksParams;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn fit_reproduces_polynomial_exactly() {
        // Fitting a cubic with degree 3 is exact interpolation.
        let f = |x: f64| 1.0 - 2.0 * x + 0.5 * x.powi(3);
        let p = ChebyshevPoly::fit(f, -1.0, 1.0, 3);
        for i in 0..50 {
            let x = -1.0 + 2.0 * i as f64 / 49.0;
            assert!((p.eval(x) - f(x)).abs() < 1e-12, "x={x}");
        }
    }

    #[test]
    fn fit_sine_converges_geometrically() {
        let f = |x: f64| (2.0 * PI * x).sin();
        let lo = ChebyshevPoly::fit(f, -1.0, 1.0, 7).max_error(f, 200);
        let hi = ChebyshevPoly::fit(f, -1.0, 1.0, 23).max_error(f, 200);
        assert!(hi < 1e-10, "degree 23 error {hi}");
        assert!(lo > hi * 1e3, "no convergence: {lo} vs {hi}");
    }

    #[test]
    fn fit_on_shifted_interval() {
        let f = |x: f64| (x * 0.5).cos();
        let p = ChebyshevPoly::fit(f, 2.0, 10.0, 15);
        assert!(p.max_error(f, 100) < 1e-9);
    }

    #[test]
    fn trim_drops_negligible_tail() {
        let f = |x: f64| x * x;
        let p = ChebyshevPoly::fit(f, -1.0, 1.0, 20).trim(1e-9);
        assert!(p.degree() <= 4, "kept degree {}", p.degree());
        assert!(p.max_error(f, 100) < 1e-9);
    }

    #[test]
    fn clenshaw_matches_direct_chebyshev() {
        // T_0..T_4 evaluated directly vs Clenshaw.
        let coeffs = [0.3, -1.2, 0.7, 0.05, -0.4];
        for i in 0..21 {
            let u: f64 = -1.0 + 0.1 * i as f64;
            let t = [
                1.0,
                u,
                2.0 * u * u - 1.0,
                4.0 * u.powi(3) - 3.0 * u,
                8.0 * u.powi(4) - 8.0 * u * u + 1.0,
            ];
            let direct: f64 = coeffs.iter().zip(&t).map(|(c, tv)| c * tv).sum();
            assert!((clenshaw(&coeffs, u) - direct).abs() < 1e-12, "u={u}");
        }
    }

    #[test]
    fn divide_identity_holds() {
        // p(u) == q(u) * T_k(u) + r(u) numerically.
        let coeffs: Vec<f64> = (0..24)
            .map(|i| ((i * 7 + 3) % 11) as f64 / 11.0 - 0.4)
            .collect();
        let k = split_point(coeffs.len() - 1);
        assert_eq!(k, 16);
        let (q, r) = cheb_divide(&coeffs, k);
        for i in 0..41 {
            let u = -1.0 + 0.05 * i as f64;
            let tk = (k as f64 * u.acos()).cos();
            let got = clenshaw(&q, u) * tk + clenshaw(&r, u);
            let want = clenshaw(&coeffs, u);
            assert!((got - want).abs() < 1e-9, "u={u}: {got} vs {want}");
        }
    }

    #[test]
    fn depth_accounting() {
        assert_eq!(chebyshev_depth(1), 1);
        assert_eq!(chebyshev_depth(2), 2);
        assert_eq!(chebyshev_depth(3), 2);
        assert_eq!(chebyshev_depth(7), 3);
        assert_eq!(chebyshev_depth(15), 4);
        assert_eq!(chebyshev_depth(31), 5);
        assert_eq!(chebyshev_depth(63), 6);
    }

    #[allow(clippy::type_complexity)]
    fn cheb_fixture(
        levels: usize,
        seed: u64,
    ) -> (
        std::sync::Arc<CkksContext>,
        Encoder,
        Encryptor,
        Decryptor,
        Evaluator,
        crate::keys::KeySet,
        StdRng,
    ) {
        let params = CkksParams::new(1 << 10, levels, 40, 2).expect("valid");
        let ctx = CkksContext::new(params);
        let mut rng = StdRng::seed_from_u64(seed);
        let keys = KeyGenerator::new(ctx.clone()).key_set(&[], &mut rng);
        (
            ctx.clone(),
            Encoder::new(ctx.clone()),
            Encryptor::new(ctx.clone()),
            Decryptor::new(ctx.clone()),
            Evaluator::new(ctx),
            keys,
            rng,
        )
    }

    #[test]
    fn homomorphic_chebyshev_degree_seven() {
        let (ctx, enc, encryptor, dec, eval, keys, mut rng) = cheb_fixture(5, 411);
        let f = |x: f64| (1.5 * x).tanh();
        let p = ChebyshevPoly::fit(f, -1.0, 1.0, 7);
        let xs: Vec<f64> = (0..8).map(|_| rng.gen_range(-0.95..0.95)).collect();
        let l = ctx.params().max_level();
        let ct = encryptor.encrypt_sk(&enc.encode_real(&xs, l), &keys.secret, &mut rng);
        let out = eval.eval_chebyshev(&ct, &p.coeffs, &keys.relin, &enc);
        assert_eq!(out.level, l - chebyshev_depth(7));
        let back = dec.decrypt(&out, &keys.secret, &enc);
        for (i, &x) in xs.iter().enumerate() {
            let want = p.eval(x);
            assert!(
                (back[i].re - want).abs() < 1e-4,
                "slot {i} x={x}: {} vs {want}",
                back[i].re
            );
        }
    }

    #[test]
    fn homomorphic_chebyshev_degree_thirty_one() {
        let (ctx, enc, encryptor, dec, eval, keys, mut rng) = cheb_fixture(7, 412);
        // An oscillatory target needing genuinely high degree.
        let f = |x: f64| (3.0 * PI * x).cos();
        let p = ChebyshevPoly::fit(f, -1.0, 1.0, 31);
        assert!(p.max_error(f, 300) < 1e-8);
        let xs: Vec<f64> = (0..8).map(|_| rng.gen_range(-0.9..0.9)).collect();
        let l = ctx.params().max_level();
        let ct = encryptor.encrypt_sk(&enc.encode_real(&xs, l), &keys.secret, &mut rng);
        let out = eval.eval_chebyshev(&ct, &p.coeffs, &keys.relin, &enc);
        assert_eq!(out.level, l - chebyshev_depth(31));
        let back = dec.decrypt(&out, &keys.secret, &enc);
        for (i, &x) in xs.iter().enumerate() {
            assert!(
                (back[i].re - f(x)).abs() < 1e-3,
                "slot {i} x={x}: {} vs {}",
                back[i].re,
                f(x)
            );
        }
    }

    #[test]
    fn homomorphic_constant_and_linear() {
        let (ctx, enc, encryptor, dec, eval, keys, mut rng) = cheb_fixture(3, 413);
        let l = ctx.params().max_level();
        let xs = [0.25, -0.5, 0.75];
        let ct = encryptor.encrypt_sk(&enc.encode_real(&xs, l), &keys.secret, &mut rng);
        // p(u) = 0.3 - 0.6 u.
        let out = eval.eval_chebyshev(&ct, &[0.3, -0.6], &keys.relin, &enc);
        let back = dec.decrypt(&out, &keys.secret, &enc);
        for (i, &x) in xs.iter().enumerate() {
            let want = 0.3 - 0.6 * x;
            assert!((back[i].re - want).abs() < 1e-5, "slot {i}");
        }
    }

    #[test]
    fn homomorphic_output_scale_is_exact_default() {
        let (ctx, enc, encryptor, _dec, eval, keys, mut rng) = cheb_fixture(5, 414);
        let p = ChebyshevPoly::fit(|x| x * x, -1.0, 1.0, 7);
        let l = ctx.params().max_level();
        let ct = encryptor.encrypt_sk(&enc.encode_real(&[0.5], l), &keys.secret, &mut rng);
        let out = eval.eval_chebyshev(&ct, &p.coeffs, &keys.relin, &enc);
        let rel = (out.scale - ctx.params().scale()).abs() / ctx.params().scale();
        assert!(rel < 1e-9, "scale drifted: {}", out.scale);
    }

    #[test]
    #[should_panic(expected = "levels")]
    fn insufficient_levels_rejected() {
        let (_ctx, enc, encryptor, _dec, eval, keys, mut rng) = cheb_fixture(3, 415);
        let ct = encryptor.encrypt_sk(&enc.encode_real(&[0.5], 3), &keys.secret, &mut rng);
        let coeffs = vec![0.1; 32]; // degree 31 needs 5 levels
        let _ = eval.eval_chebyshev(&ct, &coeffs, &keys.relin, &enc);
    }
}
