//! Noise measurement and budget estimation.
//!
//! CKKS is approximate: every operation adds noise, and parameters are
//! chosen by budgeting that noise against the scale. This module gives
//! the two tools a parameter-selection workflow needs:
//!
//! * [`measure_noise_bits`] — the *ground truth*: decrypt a ciphertext
//!   whose plaintext is known and report `log2` of the worst
//!   coefficient error (requires the secret key; test/debug only);
//! * [`NoiseModel`] — an a-priori variance model of fresh encryption,
//!   addition, plaintext/ciphertext multiplication, rescaling and
//!   keyswitching, tracked in bits so a circuit's noise trajectory can
//!   be estimated before choosing a prime chain.
//!
//! The model follows the standard central-limit treatment (each noise
//! source an independent zero-mean variate; variances add; ring
//! multiplication by a polynomial with `h` nonzero ±1 coefficients
//! scales the variance by `h`). Tests cross-check the model against
//! measurement within a conservative band.

use crate::ciphertext::Ciphertext;
use crate::context::CkksContext;
use crate::encoding::Encoder;
use crate::encryption::Decryptor;
use crate::keys::SecretKey;

/// Measures the true noise of `ct` in bits, given the plaintext slots
/// it should encode: `log2(max_i |Delta * m_i - Dec(ct)_i|)` over the
/// slot domain, i.e. the error *relative to the plaintext integers*.
///
/// Returns `f64::NEG_INFINITY` for an exact ciphertext.
pub fn measure_noise_bits(
    ctx: &std::sync::Arc<CkksContext>,
    ct: &Ciphertext,
    expected_slots: &[fhe_math::Complex],
    sk: &SecretKey,
    enc: &Encoder,
) -> f64 {
    let dec = Decryptor::new(ctx.clone());
    let got = dec.decrypt(ct, sk, enc);
    let mut worst: f64 = 0.0;
    for (i, want) in expected_slots.iter().enumerate() {
        let err = ((got[i].re - want.re).powi(2) + (got[i].im - want.im).powi(2)).sqrt();
        worst = worst.max(err * ct.scale);
    }
    worst.log2()
}

/// An a-priori noise estimate: standard deviation in bits of the error
/// term carried by a ciphertext, relative to the plaintext integers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseEstimate {
    /// `log2` of the error standard deviation.
    pub bits: f64,
}

/// `+` combines two independent error terms (variances add).
impl std::ops::Add for NoiseEstimate {
    type Output = NoiseEstimate;

    fn add(self, other: NoiseEstimate) -> NoiseEstimate {
        let v = 4f64.powf(self.bits) + 4f64.powf(other.bits);
        NoiseEstimate {
            bits: v.log2() / 2.0,
        }
    }
}

impl NoiseEstimate {
    /// Scales the error by a constant factor `c` (in absolute value).
    pub fn scale(self, c: f64) -> NoiseEstimate {
        NoiseEstimate {
            bits: self.bits + c.abs().max(f64::MIN_POSITIVE).log2(),
        }
    }
}

/// Variance model for a CKKS instance.
#[derive(Debug, Clone)]
pub struct NoiseModel {
    /// Ring degree.
    pub n: usize,
    /// Error standard deviation of fresh Gaussian noise.
    pub sigma: f64,
    /// Secret Hamming weight (dense ternary ~ 2N/3 if unbounded).
    pub hamming_weight: usize,
    /// log2 of the scale.
    pub scale_bits: u32,
}

impl NoiseModel {
    /// Builds the model from a context.
    pub fn new(ctx: &CkksContext) -> Self {
        let p = ctx.params();
        Self {
            n: p.n,
            sigma: p.sigma,
            hamming_weight: p.secret_hamming_weight.unwrap_or(2 * p.n / 3),
            scale_bits: p.scale_bits,
        }
    }

    /// Noise of a fresh secret-key encryption: one Gaussian sample per
    /// coefficient, `sigma ~ 3.2`, plus the encoding rounding (1/2 per
    /// coefficient, amplified sqrt(N) into the slot domain).
    pub fn fresh(&self) -> NoiseEstimate {
        let enc_var = self.sigma * self.sigma;
        // Encoding rounding: uniform in [-1/2, 1/2] per coefficient,
        // variance 1/12, times N from the embedding.
        let round_var = self.n as f64 / 12.0;
        NoiseEstimate {
            bits: (enc_var + round_var).log2() / 2.0,
        }
    }

    /// Noise after adding two ciphertexts.
    pub fn hadd(&self, a: NoiseEstimate, b: NoiseEstimate) -> NoiseEstimate {
        a + b
    }

    /// Noise after multiplying by a plaintext with slot magnitude
    /// `|m| <= m_max` and rescaling: the input error is scaled by the
    /// plaintext (then divided back by the dropped prime, which the
    /// relative-bits view absorbs), plus the rescale rounding term.
    pub fn pmult_rescale(&self, a: NoiseEstimate, m_max: f64) -> NoiseEstimate {
        a.scale(m_max) + self.rescale_term()
    }

    /// Noise after ciphertext multiplication (scales with the other
    /// operand's message magnitude), relinearisation and rescale.
    pub fn hmult_rescale(
        &self,
        a: NoiseEstimate,
        b: NoiseEstimate,
        ma_max: f64,
        mb_max: f64,
    ) -> NoiseEstimate {
        a.scale(mb_max) + b.scale(ma_max) + self.keyswitch_term() + self.rescale_term()
    }

    /// The additive rescale rounding: each coefficient rounds by at
    /// most 1/2 times the secret mass (`1 + h` coefficients involved).
    pub fn rescale_term(&self) -> NoiseEstimate {
        NoiseEstimate {
            bits: ((1.0 + self.hamming_weight as f64) / 12.0).log2() / 2.0,
        }
    }

    /// The additive keyswitch noise after the special-modulus division:
    /// hybrid keyswitching with `P >= Q_digit` keeps this near the
    /// fresh-noise floor; we charge a fresh-noise-sized term scaled by
    /// sqrt(N) for the inner-product accumulation.
    pub fn keyswitch_term(&self) -> NoiseEstimate {
        NoiseEstimate {
            bits: (self.sigma * self.sigma * self.n as f64).log2() / 2.0,
        }
    }

    /// Noise after a homomorphic rotation (automorphism preserves the
    /// distribution; the keyswitch adds its term).
    pub fn hrotate(&self, a: NoiseEstimate) -> NoiseEstimate {
        a + self.keyswitch_term()
    }

    /// Bits of precision remaining for a message at unit scale: the
    /// scale minus the noise, minus a 3-sigma safety margin.
    pub fn precision_bits(&self, e: NoiseEstimate) -> f64 {
        self.scale_bits as f64 - e.bits - 1.6
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encryption::Encryptor;
    use crate::eval::Evaluator;
    use crate::keys::KeyGenerator;
    use crate::params::CkksParams;
    use fhe_math::Complex;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::sync::Arc;

    struct Fixture {
        ctx: Arc<CkksContext>,
        enc: Encoder,
        encryptor: Encryptor,
        eval: Evaluator,
        keys: crate::keys::KeySet,
        model: NoiseModel,
        rng: StdRng,
    }

    fn fixture(seed: u64) -> Fixture {
        let ctx = CkksContext::new(CkksParams::test_params());
        let mut rng = StdRng::seed_from_u64(seed);
        let keys = KeyGenerator::new(ctx.clone()).key_set(&[1], &mut rng);
        Fixture {
            enc: Encoder::new(ctx.clone()),
            encryptor: Encryptor::new(ctx.clone()),
            eval: Evaluator::new(ctx.clone()),
            model: NoiseModel::new(&ctx),
            ctx,
            keys,
            rng,
        }
    }

    fn random_slots(rng: &mut StdRng, n: usize) -> Vec<Complex> {
        (0..n)
            .map(|_| Complex::new(rng.gen_range(-1.0..1.0), 0.0))
            .collect()
    }

    /// Model within a +/- 6-bit band of measurement, and measurement
    /// far below the scale (the sanity every parameter set needs).
    #[test]
    fn fresh_noise_matches_model_band() {
        let mut f = fixture(1101);
        let slots = random_slots(&mut f.rng, f.enc.slots());
        let l = f.ctx.params().max_level();
        let ct = f
            .encryptor
            .encrypt_sk(&f.enc.encode(&slots, l), &f.keys.secret, &mut f.rng);
        let measured = measure_noise_bits(&f.ctx, &ct, &slots, &f.keys.secret, &f.enc);
        let predicted = f.model.fresh().bits;
        assert!(
            (measured - predicted).abs() < 6.0,
            "measured {measured:.1} vs predicted {predicted:.1}"
        );
        assert!(measured < f.ctx.params().scale_bits as f64 - 10.0);
    }

    #[test]
    fn addition_grows_noise_slowly() {
        let mut f = fixture(1102);
        let slots = random_slots(&mut f.rng, 16);
        let l = f.ctx.params().max_level();
        let ct = f
            .encryptor
            .encrypt_sk(&f.enc.encode(&slots, l), &f.keys.secret, &mut f.rng);
        // 8 additions ~ 1.5 bits of growth (sqrt(8)).
        let mut acc = ct.clone();
        let mut expect = slots.clone();
        for _ in 0..7 {
            acc = f.eval.add(&acc, &ct);
            for (e, s) in expect.iter_mut().zip(&slots) {
                *e = *e + *s;
            }
        }
        let single = measure_noise_bits(&f.ctx, &ct, &slots, &f.keys.secret, &f.enc);
        let summed = measure_noise_bits(&f.ctx, &acc, &expect, &f.keys.secret, &f.enc);
        assert!(
            summed - single < 3.5,
            "8-way sum grew noise by {:.1} bits",
            summed - single
        );
        // Model agrees on the shape.
        let m1 = f.model.fresh();
        let m8 = (0..7).fold(m1, |acc, _| f.model.hadd(acc, m1));
        assert!((m8.bits - m1.bits) < 2.0);
    }

    #[test]
    fn multiplication_noise_within_model_band() {
        let mut f = fixture(1103);
        let slots = random_slots(&mut f.rng, 16);
        let l = f.ctx.params().max_level();
        let ct = f
            .encryptor
            .encrypt_sk(&f.enc.encode(&slots, l), &f.keys.secret, &mut f.rng);
        let sq = f.eval.rescale(&f.eval.mul(&ct, &ct, &f.keys.relin));
        let expect: Vec<Complex> = slots.iter().map(|&z| z * z).collect();
        let measured = measure_noise_bits(&f.ctx, &sq, &expect, &f.keys.secret, &f.enc);
        let fresh = f.model.fresh();
        let predicted = f.model.hmult_rescale(fresh, fresh, 1.0, 1.0).bits;
        assert!(
            (measured - predicted).abs() < 8.0,
            "measured {measured:.1} vs predicted {predicted:.1}"
        );
        // Still comfortably below the scale: the result is usable.
        assert!(f.model.precision_bits(NoiseEstimate { bits: measured }) > 10.0);
    }

    #[test]
    fn rotation_noise_is_mild() {
        let mut f = fixture(1104);
        let slots = random_slots(&mut f.rng, f.enc.slots());
        let l = f.ctx.params().max_level();
        let ct = f
            .encryptor
            .encrypt_sk(&f.enc.encode(&slots, l), &f.keys.secret, &mut f.rng);
        let g = fhe_math::galois::rotation_galois_element(1, f.ctx.n());
        let rot = f.eval.rotate(&ct, 1, &f.keys.galois[&g]);
        let mut expect = slots.clone();
        expect.rotate_left(1);
        let base = measure_noise_bits(&f.ctx, &ct, &slots, &f.keys.secret, &f.enc);
        let rotated = measure_noise_bits(&f.ctx, &rot, &expect, &f.keys.secret, &f.enc);
        assert!(
            rotated - base < 8.0,
            "rotation added {:.1} bits",
            rotated - base
        );
    }

    #[test]
    fn estimate_combinators() {
        let a = NoiseEstimate { bits: 10.0 };
        let b = NoiseEstimate { bits: 10.0 };
        // Equal variances: +0.5 bits.
        assert!(((a + b).bits - 10.5).abs() < 1e-9);
        // Dominant term wins.
        let big = NoiseEstimate { bits: 30.0 };
        assert!(((a + big).bits - 30.0).abs() < 1e-3);
        // Scaling by 2 adds one bit.
        assert!((a.scale(2.0).bits - 11.0).abs() < 1e-9);
    }

    #[test]
    fn precision_budget_reflects_scale() {
        let f = fixture(1105);
        let fresh = f.model.fresh();
        let p = f.model.precision_bits(fresh);
        // 36-bit scale minus ~5-bit fresh noise: ~28+ bits usable.
        assert!(p > 20.0, "fresh precision {p:.1}");
    }
}
