//! CKKS ciphertexts.

use fhe_math::RnsPoly;

/// A degree-1 RLWE ciphertext `(c0, c1)` decrypting to `c0 + c1 * s`.
#[derive(Debug, Clone)]
pub struct Ciphertext {
    /// Constant component (evaluation form).
    pub c0: RnsPoly,
    /// Linear component (evaluation form).
    pub c1: RnsPoly,
    /// Current level `l` (the polynomials live over `q_0..q_l`).
    pub level: usize,
    /// Current scale Delta.
    pub scale: f64,
}

impl Ciphertext {
    /// Ring degree.
    pub fn n(&self) -> usize {
        self.c0.n()
    }

    /// Number of RNS limbs (`level + 1`).
    pub fn limbs(&self) -> usize {
        self.c0.limbs()
    }
}

/// A degree-2 ciphertext produced by tensoring, before relinearisation:
/// decrypts to `d0 + d1 s + d2 s^2`.
///
/// Unlike [`Ciphertext`] (whose components are always canonical), a
/// tensor from the lazy chain (`Evaluator::mul_no_relin`) carries its
/// components in the `[0, 2p)` window
/// ([`fhe_math::ReductionState::Lazy2p`]); `Evaluator::relinearize`
/// folds them at the ciphertext boundary, or call
/// [`Self::canonicalize`] when consuming the tensor directly.
#[derive(Debug, Clone)]
pub struct Ciphertext3 {
    /// Constant component.
    pub d0: RnsPoly,
    /// Degree-1 component.
    pub d1: RnsPoly,
    /// Degree-2 component.
    pub d2: RnsPoly,
    /// Level.
    pub level: usize,
    /// Scale (product of the operand scales).
    pub scale: f64,
}

impl Ciphertext3 {
    /// Folds all three components back to canonical residues (no-op if
    /// already canonical).
    pub fn canonicalize(&mut self) {
        self.d0.canonicalize();
        self.d1.canonicalize();
        self.d2.canonicalize();
    }
}
