//! Homomorphic polynomial evaluation.
//!
//! CKKS applications approximate non-linear functions by polynomials —
//! the paper's HELR benchmark evaluates a sigmoid approximation and
//! bootstrapping's EvalMod evaluates a sine approximation. This module
//! provides Horner evaluation with automatic level/scale alignment.

use crate::ciphertext::Ciphertext;
use crate::encoding::Encoder;
use crate::eval::Evaluator;
use crate::keys::SwitchingKey;

impl Evaluator {
    /// Evaluates `p(x) = coeffs[0] + coeffs[1] x + ... + coeffs[d] x^d`
    /// on a ciphertext by Horner's rule.
    ///
    /// Consumes `d` levels (one HMult + rescale per degree). The input
    /// must have at least `d` levels remaining.
    ///
    /// # Panics
    ///
    /// Panics if `coeffs` is empty or `x.level < coeffs.len() - 1`.
    pub fn eval_poly_horner(
        &self,
        x: &Ciphertext,
        coeffs: &[f64],
        rlk: &SwitchingKey,
        encoder: &Encoder,
    ) -> Ciphertext {
        assert!(!coeffs.is_empty(), "polynomial needs coefficients");
        let degree = coeffs.len() - 1;
        assert!(
            x.level >= degree,
            "need {} levels, ciphertext has {}",
            degree,
            x.level
        );
        // acc = a_d (as a plaintext-born ciphertext at x's level/scale):
        // start from a_d * x + a_{d-1} to avoid encrypting a constant.
        let mut acc = {
            let ad = encoder.encode_constant_at(coeffs[degree], x.level, x.scale);
            self.mul_plain(x, &ad)
        };
        let mut next_coeff = degree.wrapping_sub(1);
        loop {
            // acc currently has scale x.scale^2-ish; rescale then add the
            // next coefficient at the matching scale.
            acc = self.rescale(&acc);
            let c = encoder.encode_constant_at(coeffs[next_coeff], acc.level, acc.scale);
            acc = self.add_plain(&acc, &c);
            if next_coeff == 0 {
                break;
            }
            next_coeff -= 1;
            // acc = acc * x (x aligned down to acc's level).
            let x_low = self.mod_down_to(x, acc.level);
            acc = self.mul(&acc, &x_low, rlk);
        }
        acc
    }
}

impl Encoder {
    /// Encodes a constant into all slots at an explicit level and scale
    /// (plaintext operand alignment for [`Evaluator::eval_poly_horner`]).
    pub fn encode_constant_at(&self, value: f64, level: usize, scale: f64) -> crate::Plaintext {
        let slots: Vec<fhe_math::Complex> = (0..self.slots())
            .map(|_| fhe_math::Complex::new(value, 0.0))
            .collect();
        self.encode_at_scale(&slots, level, scale)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::CkksContext;
    use crate::encryption::{Decryptor, Encryptor};
    use crate::keys::KeyGenerator;
    use crate::params::CkksParams;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn eval_poly_plain(coeffs: &[f64], x: f64) -> f64 {
        coeffs.iter().rev().fold(0.0, |acc, &c| acc * x + c)
    }

    #[test]
    fn degree_two_polynomial() {
        let ctx = CkksContext::new(CkksParams::tiny_params());
        let mut rng = StdRng::seed_from_u64(301);
        let keys = KeyGenerator::new(ctx.clone()).key_set(&[], &mut rng);
        let enc = Encoder::new(ctx.clone());
        let encryptor = Encryptor::new(ctx.clone());
        let eval = Evaluator::new(ctx.clone());
        let dec = Decryptor::new(ctx.clone());

        // p(x) = 0.5 - 0.25 x + 0.125 x^2
        let coeffs = [0.5, -0.25, 0.125];
        let xs = [0.9, -0.5, 0.1, 0.7];
        let l = ctx.params().max_level();
        let ct = encryptor.encrypt_sk(&enc.encode_real(&xs, l), &keys.secret, &mut rng);
        let out_ct = eval.eval_poly_horner(&ct, &coeffs, &keys.relin, &enc);
        let out = dec.decrypt(&out_ct, &keys.secret, &enc);
        for (i, &x) in xs.iter().enumerate() {
            let expect = eval_poly_plain(&coeffs, x);
            assert!(
                (out[i].re - expect).abs() < 2e-2,
                "x={x}: {} vs {expect}",
                out[i].re
            );
        }
    }

    #[test]
    fn degree_three_sigmoid_approximation() {
        // The HELR sigmoid approximation: 0.5 + 0.197 x - 0.004 x^3.
        let ctx = CkksContext::new(CkksParams::tiny_params());
        let mut rng = StdRng::seed_from_u64(302);
        let keys = KeyGenerator::new(ctx.clone()).key_set(&[], &mut rng);
        let enc = Encoder::new(ctx.clone());
        let encryptor = Encryptor::new(ctx.clone());
        let eval = Evaluator::new(ctx.clone());
        let dec = Decryptor::new(ctx.clone());

        let coeffs = [0.5, 0.197, 0.0, -0.004];
        let xs = [-2.0, -0.5, 0.0, 0.5, 2.0];
        let l = ctx.params().max_level();
        let ct = encryptor.encrypt_sk(&enc.encode_real(&xs, l), &keys.secret, &mut rng);
        let out_ct = eval.eval_poly_horner(&ct, &coeffs, &keys.relin, &enc);
        assert_eq!(out_ct.level, l - 3);
        let out = dec.decrypt(&out_ct, &keys.secret, &enc);
        for (i, &x) in xs.iter().enumerate() {
            let expect = eval_poly_plain(&coeffs, x);
            // Also check against the true sigmoid within the fit's error.
            let sigmoid = 1.0 / (1.0 + (-x).exp());
            assert!(
                (out[i].re - expect).abs() < 5e-2,
                "x={x}: {} vs poly {expect}",
                out[i].re
            );
            assert!(
                (out[i].re - sigmoid).abs() < 0.12,
                "x={x}: {} vs sigmoid {sigmoid}",
                out[i].re
            );
        }
    }

    #[test]
    #[should_panic(expected = "levels")]
    fn too_deep_polynomial_rejected() {
        let ctx = CkksContext::new(CkksParams::tiny_params());
        let mut rng = StdRng::seed_from_u64(303);
        let keys = KeyGenerator::new(ctx.clone()).key_set(&[], &mut rng);
        let enc = Encoder::new(ctx.clone());
        let encryptor = Encryptor::new(ctx.clone());
        let eval = Evaluator::new(ctx.clone());
        let ct = encryptor.encrypt_sk(&enc.encode_real(&[0.1], 1), &keys.secret, &mut rng);
        // Degree 5 needs 5 levels; the ciphertext has 1.
        let _ = eval.eval_poly_horner(&ct, &[1.0; 6], &keys.relin, &enc);
    }
}
