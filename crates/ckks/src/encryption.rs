//! Encryption and decryption.

use std::sync::Arc;

use fhe_math::{sampler, Representation, RnsPoly};
use rand::Rng;

use crate::ciphertext::Ciphertext;
use crate::context::CkksContext;
use crate::encoding::{Encoder, Plaintext};
use crate::keys::{PublicKey, SecretKey};

/// Encrypts plaintexts under a public or secret key.
#[derive(Debug)]
pub struct Encryptor {
    ctx: Arc<CkksContext>,
}

impl Encryptor {
    /// Creates an encryptor for a context.
    pub fn new(ctx: Arc<CkksContext>) -> Self {
        Self { ctx }
    }

    /// Public-key encryption: `c0 = b u + e0 + m`, `c1 = a u + e1`.
    pub fn encrypt_pk<R: Rng + ?Sized>(
        &self,
        pt: &Plaintext,
        pk: &PublicKey,
        rng: &mut R,
    ) -> Ciphertext {
        let l = pt.level;
        let basis = self.ctx.level_basis(l).clone();
        let n = self.ctx.n();
        let sigma = self.ctx.params().sigma;

        let mut u = RnsPoly::from_signed_coeffs(basis.clone(), &sampler::ternary(rng, n, None));
        u.to_eval();
        let mut e0 = RnsPoly::from_signed_coeffs(basis.clone(), &sampler::gaussian(rng, n, sigma));
        e0.to_eval();
        let mut e1 = RnsPoly::from_signed_coeffs(basis.clone(), &sampler::gaussian(rng, n, sigma));
        e1.to_eval();

        // Restrict pk (level L) to level l: with limb-major flat storage
        // the first l+1 limbs are one contiguous prefix.
        let take = (l + 1) * n;
        let b = RnsPoly::from_flat(
            basis.clone(),
            pk.b.flat()[..take].to_vec(),
            Representation::Eval,
        );
        let a = RnsPoly::from_flat(basis, pk.a.flat()[..take].to_vec(), Representation::Eval);

        let mut c0 = b;
        c0.mul_assign_pointwise(&u);
        c0.add_assign(&e0);
        c0.add_assign(&pt.poly);
        let mut c1 = a;
        c1.mul_assign_pointwise(&u);
        c1.add_assign(&e1);
        Ciphertext {
            c0,
            c1,
            level: l,
            scale: pt.scale,
        }
    }

    /// Secret-key encryption: `c1` uniform, `c0 = -c1 s + e + m`.
    pub fn encrypt_sk<R: Rng + ?Sized>(
        &self,
        pt: &Plaintext,
        sk: &SecretKey,
        rng: &mut R,
    ) -> Ciphertext {
        let l = pt.level;
        let basis = self.ctx.level_basis(l).clone();
        let n = self.ctx.n();
        let mut c1_flat = Vec::with_capacity(basis.len() * n);
        for m in basis.moduli() {
            c1_flat.extend(sampler::uniform_residues(rng, m, n));
        }
        let c1 = RnsPoly::from_flat(basis.clone(), c1_flat, Representation::Eval);
        let mut e =
            RnsPoly::from_signed_coeffs(basis, &sampler::gaussian(rng, n, self.ctx.params().sigma));
        e.to_eval();
        let s = sk.poly_at_level(&self.ctx, l);
        let mut c0 = c1.clone();
        c0.mul_assign_pointwise(&s);
        c0.neg_assign();
        c0.add_assign(&e);
        c0.add_assign(&pt.poly);
        Ciphertext {
            c0,
            c1,
            level: l,
            scale: pt.scale,
        }
    }
}

/// Decrypts ciphertexts with the secret key.
#[derive(Debug)]
pub struct Decryptor {
    ctx: Arc<CkksContext>,
}

impl Decryptor {
    /// Creates a decryptor for a context.
    pub fn new(ctx: Arc<CkksContext>) -> Self {
        Self { ctx }
    }

    /// Raw decryption: returns the message polynomial `c0 + c1 s` in
    /// coefficient form (still scaled by the ciphertext scale).
    pub fn decrypt_poly(&self, ct: &Ciphertext, sk: &SecretKey) -> RnsPoly {
        let s = sk.poly_at_level(&self.ctx, ct.level);
        let mut m = ct.c1.clone();
        m.mul_assign_pointwise(&s);
        m.add_assign(&ct.c0);
        m.to_coeff();
        m
    }

    /// Decrypts and decodes to complex slots.
    pub fn decrypt(
        &self,
        ct: &Ciphertext,
        sk: &SecretKey,
        encoder: &Encoder,
    ) -> Vec<fhe_math::Complex> {
        let poly = self.decrypt_poly(ct, sk);
        encoder.decode_poly(&poly, ct.scale)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keys::KeyGenerator;
    use crate::params::CkksParams;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (
        Arc<CkksContext>,
        Encoder,
        Encryptor,
        Decryptor,
        crate::keys::KeySet,
        StdRng,
    ) {
        let ctx = CkksContext::new(CkksParams::tiny_params());
        let mut rng = StdRng::seed_from_u64(41);
        let kg = KeyGenerator::new(ctx.clone());
        let keys = kg.key_set(&[1], &mut rng);
        (
            ctx.clone(),
            Encoder::new(ctx.clone()),
            Encryptor::new(ctx.clone()),
            Decryptor::new(ctx),
            keys,
            rng,
        )
    }

    #[test]
    fn sk_encrypt_decrypt_roundtrip() {
        let (ctx, enc, encryptor, decryptor, keys, mut rng) = setup();
        let vals: Vec<f64> = (0..enc.slots()).map(|i| (i as f64 / 100.0).sin()).collect();
        let pt = enc.encode_real(&vals, ctx.params().max_level());
        let ct = encryptor.encrypt_sk(&pt, &keys.secret, &mut rng);
        let back = decryptor.decrypt(&ct, &keys.secret, &enc);
        for (v, z) in vals.iter().zip(&back) {
            assert!((v - z.re).abs() < 1e-4, "{} vs {}", v, z.re);
            assert!(z.im.abs() < 1e-4);
        }
    }

    #[test]
    fn pk_encrypt_decrypt_roundtrip() {
        let (ctx, enc, encryptor, decryptor, keys, mut rng) = setup();
        let vals: Vec<f64> = (0..enc.slots())
            .map(|i| ((i * 7 % 13) as f64) / 13.0)
            .collect();
        let pt = enc.encode_real(&vals, ctx.params().max_level());
        let ct = encryptor.encrypt_pk(&pt, &keys.public, &mut rng);
        let back = decryptor.decrypt(&ct, &keys.secret, &enc);
        for (v, z) in vals.iter().zip(&back) {
            assert!((v - z.re).abs() < 1e-3, "{} vs {}", v, z.re);
        }
    }

    #[test]
    fn encryption_at_lower_level_works() {
        let (_ctx, enc, encryptor, decryptor, keys, mut rng) = setup();
        let vals = vec![0.123, -0.456, 0.789];
        let pt = enc.encode_real(&vals, 1);
        let ct = encryptor.encrypt_sk(&pt, &keys.secret, &mut rng);
        assert_eq!(ct.level, 1);
        assert_eq!(ct.limbs(), 2);
        let back = decryptor.decrypt(&ct, &keys.secret, &enc);
        for (i, &v) in vals.iter().enumerate() {
            assert!((back[i].re - v).abs() < 1e-4);
        }
    }

    #[test]
    fn wrong_key_does_not_decrypt() {
        let (ctx, enc, encryptor, decryptor, keys, mut rng) = setup();
        let kg = KeyGenerator::new(ctx.clone());
        let other = kg.secret_key(&mut rng);
        let vals = vec![0.5; 8];
        let pt = enc.encode_real(&vals, ctx.params().max_level());
        let ct = encryptor.encrypt_sk(&pt, &keys.secret, &mut rng);
        let back = decryptor.decrypt(&ct, &other, &enc);
        // Decryption under the wrong key yields garbage much larger than
        // the message.
        let max = back.iter().map(|z| z.re.abs()).fold(0.0, f64::max);
        assert!(max > 1e3, "wrong-key decryption suspiciously small: {max}");
    }
}
