//! Hybrid keyswitching — the paper's Algorithm 1.
//!
//! This is the dominant cost in CKKS (§III-C: NTT is 59.2% and MAC 40.8%
//! of KeySwitch compute at L=23, dnum=3) and the operation Trinity's
//! CU-based mapping accelerates. The pipeline:
//!
//! 1. **Decompose** the input polynomial's limbs into `beta` digits.
//! 2. **ModUp (BConv)** each digit into the extended basis `C_l ∪ P` —
//!    systolic-array matrix multiplications in hardware.
//! 3. **NTT** the raised digits (the paper's phase-1/phase-2 NTTU + CU
//!    collaboration for long polynomials).
//! 4. **Inner product** with the switching key digits (`IP` kernel).
//! 5. **iNTT**, then **ModDown**: subtract the `P`-part's base conversion
//!    and multiply by `P^{-1}`.
//!
//! # Lazy residue chain
//!
//! [`key_switch`] keeps steps 3–5 in the redundant `[0, 2p)` window:
//! every raised digit is transformed with the lazy-exit NTT, the `IP`
//! accumulators stay lazy across all `beta` digits, the iNTT exits
//! lazily, and a *single* canonicalisation per accumulator limb happens
//! at the ModDown boundary (BConv needs true `[0, p)` representatives —
//! base conversion depends on the representative, not just the residue
//! class). That replaces `beta * ext_limbs` NTT exit passes plus
//! `2 * ext_limbs` MAC/iNTT exit passes with `2 * ext_limbs` folds —
//! mirroring how Trinity/FAB pipelines keep operands in redundant form
//! between butterfly and MAC stages and only fully reduce at memory
//! writeback. [`key_switch_strict`] preserves the fully-canonical
//! pipeline as the oracle; `tests/lazy_chains.rs` asserts the two are
//! bit-identical across every workspace modulus shape.
//!
//! The Galois variants ([`key_switch_galois`] and its per-kernel /
//! strict tiers) extend the same chain through HRotate: the automorphism
//! is *hoisted* into the pipeline — applied to the raised digits in
//! evaluation form, where it is a pure, reduction-agnostic slot
//! permutation — so a rotation stays `[0, 2p)` from the digit NTT
//! through the automorphism and inner product to the ModDown fold,
//! instead of canonicalising the input at the automorphism first.
//!
//! [`hoist_rotations`] + [`key_switch_galois_hoisted`] extend the same
//! commutation *across* rotations: a linear layer applying `k`
//! rotations to one ciphertext computes Decompose + ModUp + the digit
//! NTTs once and replays only the automorphism → inner product →
//! ModDown tail per rotation, bit-identical to `k` sequential
//! [`key_switch_galois`] calls.
//!
//! # Cross-request coalescing
//!
//! The lazy chain itself is **batch-first**: [`key_switch_coalesced`]
//! and [`key_switch_galois_coalesced`] run `k` independent keyswitch
//! jobs that share geometry (ring degree, level, Galois element — keys
//! may differ per job, e.g. per tenant) through *one* pipeline whose
//! kernel dispatches carry all `k` jobs' limb rows at once:
//! `k · (l+1)` rows per input iNTT, `k · ext_limbs` rows per digit NTT
//! / automorphism / inner product, `2k · ext_limbs` rows per
//! accumulator iNTT + fold. [`crate::keyswitch::key_switch`] is the
//! `k = 1` instance of the same engine, so a service layer coalescing
//! requests widens every `KernelBackend` batch entry point it already
//! goes through — [`fhe_math::ThreadedBackend`] sees `k`-fold wider
//! batches even at small `L` — without changing a single per-row
//! kernel, which is why coalesced results are bit-identical to
//! sequential per-request execution (asserted by the suite below and
//! `tests/backend_identity.rs`).

use fhe_math::kernel::{self, ExitFold};
use fhe_math::{Modulus, NttTable, ReductionState, Representation, RnsPoly};

use crate::context::CkksContext;
use crate::keys::SwitchingKey;

/// Applies hybrid keyswitching to a polynomial `d` (evaluation form, at
/// `level`), producing the pair `(ks0, ks1)` such that
/// `ks0 + ks1 * s_to ≈ d * s_from` — both in evaluation form at `level`.
///
/// This is the lazy-chain pipeline: digit NTTs, inner products and the
/// accumulator iNTTs all stay in the `[0, 2p)` window, with one
/// canonicalisation per accumulator at the ModDown boundary.
/// Bit-identical to [`key_switch_strict`] (asserted by
/// `tests/lazy_chains.rs`).
///
/// # Panics
///
/// Panics if `d` is not in evaluation form or its limb count does not
/// match `level + 1`.
pub fn key_switch(
    ctx: &CkksContext,
    d: &RnsPoly,
    key: &SwitchingKey,
    level: usize,
) -> (RnsPoly, RnsPoly) {
    let mut out = key_switch_coalesced_impl(ctx, &[KsJob { d, key }], level, None);
    out.pop().expect("one job in, one result out")
}

/// Hoisted Galois keyswitch: applies the automorphism `sigma_g` *inside*
/// the keyswitch pipeline, to the raised digits in evaluation form —
/// digit NTT → automorphism → inner product → iNTT, entirely in the
/// `[0, 2p)` window, with one fold per limb at ModDown.
///
/// In evaluation form `sigma_g` is a pure slot permutation
/// ([`RnsPoly::automorphism_lazy`]), so it rides the lazy chain for
/// free where the pre-rotation formulation (`sigma_g(d)` then
/// [`key_switch`]) had to canonicalise `d` at the automorphism. The two
/// orderings are interchangeable because `sigma_g` commutes exactly
/// with the limb-group digit decompose (it acts per limb) and commutes
/// with ModUp up to the usual approximate-BConv overshoot — a small
/// polynomial times the digit modulus `Q_j`, which the gadget residues
/// (`P` on digit-`j` limbs, `0` elsewhere, so `Q_j ≡ 0` wherever the
/// gadget is nonzero) annihilate except for a `Q_j e_j / P` noise term
/// attenuated at ModDown, exactly like the overshoot the non-hoisted
/// pipeline already absorbs.
///
/// Returns `(ks0, ks1)` with `ks0 + ks1 * s ≈ sigma_g(d) * s_from`
/// (for a Galois key, `s_from = sigma_g(s)`). Bit-identical to
/// [`key_switch_galois_strict`] (asserted by `tests/lazy_chains.rs`).
///
/// # Panics
///
/// As [`key_switch`]; additionally panics if `g` is even.
pub fn key_switch_galois(
    ctx: &CkksContext,
    d: &RnsPoly,
    g: u64,
    key: &SwitchingKey,
    level: usize,
) -> (RnsPoly, RnsPoly) {
    let mut out = key_switch_coalesced_impl(ctx, &[KsJob { d, key }], level, Some(g));
    out.pop().expect("one job in, one result out")
}

/// One request of a coalesced keyswitch batch: the evaluation-form
/// polynomial to switch and the switching key to apply. Keys may
/// differ per job (different tenants); the geometry — ring degree,
/// level, and for the Galois variant the Galois element — must be
/// shared across the batch, because that is what lets all `k` jobs ride
/// one kernel dispatch.
#[derive(Debug, Clone, Copy)]
pub struct KsJob<'a> {
    /// The polynomial to keyswitch (evaluation form, `level + 1` limbs).
    pub d: &'a RnsPoly,
    /// The switching key (relinearisation or Galois) for this job.
    pub key: &'a SwitchingKey,
}

/// Runs `k` independent [`key_switch`] jobs through one coalesced
/// pipeline: every kernel dispatch (input iNTT, digit NTTs, inner
/// products, accumulator iNTT, fold, output NTT) carries all `k` jobs'
/// limb rows at once. Output `i` is bit-identical to
/// `key_switch(ctx, jobs[i].d, jobs[i].key, level)` — the per-row
/// kernels are unchanged, only the batch width grows.
///
/// # Panics
///
/// As [`key_switch`], per job.
pub fn key_switch_coalesced(
    ctx: &CkksContext,
    jobs: &[KsJob<'_>],
    level: usize,
) -> Vec<(RnsPoly, RnsPoly)> {
    key_switch_coalesced_impl(ctx, jobs, level, None)
}

/// The Galois form of [`key_switch_coalesced`]: `k` independent
/// rotations by the *same* Galois element `g` (per-job keys, e.g. one
/// per tenant), coalesced into one pipeline. Output `i` is
/// bit-identical to `key_switch_galois(ctx, jobs[i].d, g, jobs[i].key,
/// level)`.
///
/// # Panics
///
/// As [`key_switch_galois`], per job.
pub fn key_switch_galois_coalesced(
    ctx: &CkksContext,
    jobs: &[KsJob<'_>],
    g: u64,
    level: usize,
) -> Vec<(RnsPoly, RnsPoly)> {
    key_switch_coalesced_impl(ctx, jobs, level, Some(g))
}

/// The per-kernel-canonicalising tier of [`key_switch_galois`]
/// (internally-lazy Harvey transforms, canonical automorphism and inner
/// products) — the `harvey` row of the `rotate_lazy_vs_canonical`
/// micro.
///
/// # Panics
///
/// As [`key_switch_galois`].
pub fn key_switch_galois_per_kernel(
    ctx: &CkksContext,
    d: &RnsPoly,
    g: u64,
    key: &SwitchingKey,
    level: usize,
) -> (RnsPoly, RnsPoly) {
    key_switch_impl(ctx, d, key, level, KsReduction::PerKernel, Some(g))
}

/// The fully-canonical strict oracle of [`key_switch_galois`]: same
/// hoisted dataflow, fully-reduced transforms and canonical kernels
/// throughout. The `canonical` row of the `rotate_lazy_vs_canonical`
/// micro and the bit-identity reference for the lazy rotation chain.
///
/// # Panics
///
/// As [`key_switch_galois`].
pub fn key_switch_galois_strict(
    ctx: &CkksContext,
    d: &RnsPoly,
    g: u64,
    key: &SwitchingKey,
    level: usize,
) -> (RnsPoly, RnsPoly) {
    key_switch_impl(ctx, d, key, level, KsReduction::Strict, Some(g))
}

/// The per-kernel-canonicalising keyswitch pipeline (the PR 2
/// baseline): internally-lazy Harvey transforms whose exit passes
/// canonicalise, canonical inner products — every kernel hands `[0, p)`
/// residues to the next. The middle tier between [`key_switch`] (no
/// per-kernel folds) and [`key_switch_strict`] (every butterfly folds);
/// the `harvey` row of the `keyswitch_lazy_vs_canonical` micro.
///
/// # Panics
///
/// As [`key_switch`].
pub fn key_switch_per_kernel(
    ctx: &CkksContext,
    d: &RnsPoly,
    key: &SwitchingKey,
    level: usize,
) -> (RnsPoly, RnsPoly) {
    key_switch_impl(ctx, d, key, level, KsReduction::PerKernel, None)
}

/// The fully-canonical keyswitch pipeline: fully-reduced transforms
/// (`forward_strict`/`inverse_strict`, every butterfly canonicalises)
/// and canonical inner products, `[0, p)` between all steps. Kept as
/// the strict oracle the lazy chain is asserted against, and as the
/// `canonical` side of the `keyswitch_lazy_vs_canonical` micro.
///
/// # Panics
///
/// As [`key_switch`].
pub fn key_switch_strict(
    ctx: &CkksContext,
    d: &RnsPoly,
    key: &SwitchingKey,
    level: usize,
) -> (RnsPoly, RnsPoly) {
    key_switch_impl(ctx, d, key, level, KsReduction::Strict, None)
}

/// The reduction discipline a keyswitch pipeline runs under — the
/// three tiers the `keyswitch_lazy_vs_canonical` micro splits apart.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum KsReduction {
    /// Cross-kernel `[0, 2p)` chain, one fold per limb at ModDown.
    LazyChain,
    /// Harvey transforms with canonicalising exits (PR 2 pipeline).
    PerKernel,
    /// Fully-reduced butterflies (`*_strict` transforms).
    Strict,
}

/// The digit-raising front half of the pipeline, shared by
/// [`key_switch_impl`] and [`hoist_rotations`]: gather digit `j`'s
/// limbs from the canonical coefficient-form input, ModUp (approximate
/// BConv) into the complement limbs and `P`, and reassemble the
/// extended-basis limb order `[q_0..q_l, p_0..]` — returning the raised
/// digit in coefficient form.
fn raise_digit(ctx: &CkksContext, d_coeff: &RnsPoly, level: usize, j: usize) -> RnsPoly {
    let n_ext = ctx.extended_basis(level).len();
    let mut flat = Vec::with_capacity(n_ext * ctx.n());
    raise_digit_into(ctx, d_coeff.flat(), level, j, &mut flat);
    RnsPoly::from_flat(
        ctx.extended_basis(level).clone(),
        flat,
        Representation::Coeff,
    )
}

/// Flat-buffer core of [`raise_digit`]: reads the canonical
/// coefficient-form limb rows of one input (`(level + 1) * n` words)
/// and appends the raised digit's `ext_limbs * n` words to `out` — the
/// append-only form the coalesced engine uses to build one combined
/// buffer for all jobs of a batch.
fn raise_digit_into(ctx: &CkksContext, d_flat: &[u64], level: usize, j: usize, out: &mut Vec<u64>) {
    let precomp = ctx.keyswitch_precomp(level);
    let digit = &precomp.digits[j];
    let n = ctx.n();
    debug_assert_eq!(d_flat.len(), (level + 1) * n);
    // Decompose: gather this digit's limbs into one flat buffer.
    let mut digit_flat = Vec::with_capacity(digit.digit_limbs.len() * n);
    for &i in &digit.digit_limbs {
        digit_flat.extend_from_slice(&d_flat[i * n..(i + 1) * n]);
    }
    // ModUp: BConv digit -> (others ∪ P), flat limb-major in and out.
    let converted = digit.mod_up.convert_approx(&digit_flat);
    // Reassemble limbs in extended order [q_0..q_l, p_0..].
    let n_q = level + 1;
    let n_p = ctx.params().p_special.len();
    let mut other_pos = 0usize;
    for i in 0..n_q {
        if let Some(idx) = digit.digit_limbs.iter().position(|&x| x == i) {
            out.extend_from_slice(&digit_flat[idx * n..(idx + 1) * n]);
        } else {
            out.extend_from_slice(&converted[other_pos * n..(other_pos + 1) * n]);
            other_pos += 1;
        }
    }
    let p_start = digit.other_limbs.len();
    out.extend_from_slice(&converted[p_start * n..(p_start + n_p) * n]);
}

fn key_switch_impl(
    ctx: &CkksContext,
    d: &RnsPoly,
    key: &SwitchingKey,
    level: usize,
    mode: KsReduction,
    galois: Option<u64>,
) -> (RnsPoly, RnsPoly) {
    assert_eq!(d.representation(), Representation::Eval);
    assert_eq!(d.limbs(), level + 1, "polynomial level mismatch");
    let precomp = ctx.keyswitch_precomp(level);
    let ext_basis = ctx.extended_basis(level).clone();

    // Decompose needs true [0, p) representatives, so the input iNTT
    // canonicalises (its exit pass does that for free).
    let mut d_coeff = d.clone();
    d_coeff.to_coeff();

    let mut acc0 = RnsPoly::zero(ext_basis.clone(), Representation::Eval);
    let mut acc1 = RnsPoly::zero(ext_basis.clone(), Representation::Eval);

    for j in 0..precomp.digits.len() {
        let mut d_tilde = raise_digit(ctx, &d_coeff, level, j);
        let (b_j, a_j) = key.row_at_level(ctx, j, level);
        match mode {
            // The lazy-chain tier runs through the coalesced engine
            // (`key_switch_coalesced_impl`) — this oracle pipeline only
            // serves the canonicalising tiers.
            KsReduction::LazyChain => {
                unreachable!("lazy-chain keyswitch runs through the coalesced engine")
            }
            KsReduction::PerKernel => {
                d_tilde.to_eval();
                if let Some(g) = galois {
                    d_tilde.automorphism(g, ctx.galois());
                }
                acc0.mul_acc_pointwise(&d_tilde, &b_j);
                acc1.mul_acc_pointwise(&d_tilde, &a_j);
            }
            KsReduction::Strict => {
                d_tilde.to_eval_strict();
                if let Some(g) = galois {
                    d_tilde.automorphism(g, ctx.galois());
                }
                acc0.mul_acc_pointwise(&d_tilde, &b_j);
                acc1.mul_acc_pointwise(&d_tilde, &a_j);
            }
        }
    }

    // iNTT + ModDown both accumulators.
    let ks0 = mod_down(ctx, acc0, level, mode);
    let ks1 = mod_down(ctx, acc1, level, mode);
    (ks0, ks1)
}

/// Repeats the per-limb slice `once` back to back `k` times — the
/// row-metadata side of widening a kernel dispatch from one job's limb
/// rows to a whole batch's.
fn repeat_rows<T: Copy>(once: &[T], k: usize) -> Vec<T> {
    let mut out = Vec::with_capacity(once.len() * k);
    for _ in 0..k {
        out.extend_from_slice(once);
    }
    out
}

/// The coalesced lazy-chain keyswitch engine (see the module docs):
/// runs all `jobs` — same `ctx`/`level`/`galois` geometry, per-job
/// inputs and keys — through one pipeline whose kernel dispatches
/// carry every job's limb rows at once.
///
/// Per row this is exactly the `k = 1` lazy chain: input iNTT with a
/// canonical exit, per digit a lazy-exit NTT + (optional) slot
/// permutation + lazy multiply-accumulate against the key rows, one
/// lazy-exit iNTT over both accumulators, a single `[0, 2p) → [0, p)`
/// fold per limb, ModDown's exact BConv + combine, and a canonical
/// output NTT. Batching concatenates rows; it never changes a per-row
/// kernel, which is the bit-identity argument (asserted against the
/// strict oracle by `tests/lazy_chains.rs` and per-backend by
/// `tests/backend_identity.rs`).
fn key_switch_coalesced_impl(
    ctx: &CkksContext,
    jobs: &[KsJob<'_>],
    level: usize,
    galois: Option<u64>,
) -> Vec<(RnsPoly, RnsPoly)> {
    if jobs.is_empty() {
        return Vec::new();
    }
    let k = jobs.len();
    let n = ctx.n();
    let n_q = level + 1;
    let precomp = ctx.keyswitch_precomp(level);
    let level_basis = ctx.level_basis(level).clone();
    let ext_basis = ctx.extended_basis(level).clone();
    let n_ext = ext_basis.len();

    let level_tables: Vec<&NttTable> = level_basis.tables().iter().map(|t| t.as_ref()).collect();
    let ext_tables: Vec<&NttTable> = ext_basis.tables().iter().map(|t| t.as_ref()).collect();
    let ext_tables_k = repeat_rows(&ext_tables, k);
    let ext_moduli_k: Vec<Modulus> = repeat_rows(ext_basis.moduli(), k);

    // Decompose needs true [0, p) representatives, so the batched input
    // iNTT exits canonically — one dispatch over all k * (l+1) rows.
    let mut d_coeff = Vec::with_capacity(k * n_q * n);
    for job in jobs {
        assert_eq!(job.d.representation(), Representation::Eval);
        assert_eq!(job.d.limbs(), n_q, "polynomial level mismatch");
        d_coeff.extend_from_slice(job.d.flat());
    }
    kernel::active().inverse_batch(
        &repeat_rows(&level_tables, k),
        &mut d_coeff,
        ExitFold::Canonical,
    );

    // Both accumulators live in one buffer (acc0 rows for all jobs,
    // then acc1 rows for all jobs) so the tail iNTT + fold are single
    // dispatches over 2k * ext_limbs rows.
    let mut acc_all = vec![0u64; 2 * k * n_ext * n];
    let perm = galois.map(|g| {
        assert_eq!(g % 2, 1, "galois element must be odd");
        ctx.galois().eval_permutation(g)
    });

    let mut digit_buf: Vec<u64> = Vec::with_capacity(k * n_ext * n);
    let mut perm_buf = vec![0u64; if perm.is_some() { k * n_ext * n } else { 0 }];
    let mut b_buf: Vec<u64> = Vec::with_capacity(k * n_ext * n);
    let mut a_buf: Vec<u64> = Vec::with_capacity(k * n_ext * n);
    for j in 0..precomp.digits.len() {
        // Raise digit j of every job into one combined buffer, then NTT
        // all k * ext_limbs rows with one lazy-exit dispatch.
        digit_buf.clear();
        for i in 0..k {
            raise_digit_into(
                ctx,
                &d_coeff[i * n_q * n..(i + 1) * n_q * n],
                level,
                j,
                &mut digit_buf,
            );
        }
        kernel::active().forward_batch(&ext_tables_k, &mut digit_buf, ExitFold::Lazy2p);
        // The hoisted automorphism is a pure slot permutation that
        // preserves the [0, 2p) window — one gather over the batch.
        if let Some(perm) = &perm {
            kernel::active().permute_batch(perm.as_slice(), &digit_buf, &mut perm_buf);
            std::mem::swap(&mut digit_buf, &mut perm_buf);
        }
        // Inner product: every job's key row for this digit, one lazy
        // MAC dispatch per accumulator over all k * ext_limbs rows.
        b_buf.clear();
        a_buf.clear();
        for job in jobs {
            let (b_j, a_j) = job.key.row_at_level(ctx, j, level);
            b_buf.extend_from_slice(b_j.flat());
            a_buf.extend_from_slice(a_j.flat());
        }
        let (acc0, acc1) = acc_all.split_at_mut(k * n_ext * n);
        kernel::active().mul_acc_lazy_batch(&ext_moduli_k, acc0, &digit_buf, &b_buf);
        kernel::active().mul_acc_lazy_batch(&ext_moduli_k, acc1, &digit_buf, &a_buf);
    }

    // Tail: lazy-exit iNTT over both accumulators of every job, then
    // the chain's single deferred fold per limb — each one dispatch.
    kernel::active().inverse_batch(
        &repeat_rows(&ext_tables, 2 * k),
        &mut acc_all,
        ExitFold::Lazy2p,
    );
    kernel::active()
        .fold_2p_to_canonical_batch(&repeat_rows(ext_basis.moduli(), 2 * k), &mut acc_all);

    // ModDown per accumulator (exact BConv of the P-part + combine),
    // collecting every output's coefficient rows for one final
    // canonical-exit NTT over all 2k * (l+1) rows.
    let mut out_all = Vec::with_capacity(2 * k * n_q * n);
    for acc in acc_all.chunks_exact(n_ext * n) {
        let (q_flat, p_flat) = acc.split_at(n_q * n);
        let p_in_q = precomp.mod_down.convert_exact(p_flat);
        for i in 0..n_q {
            let qi = level_basis.modulus(i);
            let inv = precomp.p_inv_mod_q[i];
            out_all.extend(
                q_flat[i * n..(i + 1) * n]
                    .iter()
                    .zip(&p_in_q[i * n..(i + 1) * n])
                    .map(|(&c, &p)| qi.mul(qi.sub(c, p), inv)),
            );
        }
    }
    kernel::active().forward_batch(
        &repeat_rows(&level_tables, 2 * k),
        &mut out_all,
        ExitFold::Canonical,
    );

    // Split back into per-job (ks0, ks1) pairs: job i's ks0 rows sit at
    // chunk i, its ks1 rows at chunk k + i.
    let stride = n_q * n;
    (0..k)
        .map(|i| {
            let ks0 = RnsPoly::from_flat(
                level_basis.clone(),
                out_all[i * stride..(i + 1) * stride].to_vec(),
                Representation::Eval,
            );
            let ks1 = RnsPoly::from_flat(
                level_basis.clone(),
                out_all[(k + i) * stride..(k + i + 1) * stride].to_vec(),
                Representation::Eval,
            );
            (ks0, ks1)
        })
        .collect()
}

/// The shared ModUp state of a rotation batch: the input's digit
/// decomposition raised to the extended basis and NTT'd once, held in
/// the lazy `[0, 2p)` evaluation window — exactly the state
/// `key_switch_impl` reaches after the digit NTT, *before* the
/// per-rotation automorphism.
///
/// A linear layer that applies `k` rotations to one ciphertext pays
/// for Decompose + ModUp + the `beta * ext_limbs` digit NTTs once via
/// [`hoist_rotations`], then runs only the per-rotation tail
/// (automorphism → inner product → iNTT → ModDown) `k` times via
/// [`key_switch_galois_hoisted`]. This works because the eval-form
/// automorphism is a pure slot permutation that commutes with the
/// shared raise — the same commutation [`key_switch_galois`] already
/// exploits per rotation.
#[derive(Debug, Clone)]
pub struct HoistedRotations {
    level: usize,
    digits: Vec<RnsPoly>,
}

impl HoistedRotations {
    /// The ciphertext level the digits were raised at.
    pub fn level(&self) -> usize {
        self.level
    }

    /// Number of raised digits (`beta`).
    pub fn digit_count(&self) -> usize {
        self.digits.len()
    }
}

/// Computes the hoisted ModUp state of `d` (evaluation form, at
/// `level`): decompose into digits, raise each to the extended basis,
/// and NTT each with a lazy exit. The result feeds any number of
/// [`key_switch_galois_hoisted`] calls.
///
/// # Panics
///
/// As [`key_switch`].
pub fn hoist_rotations(ctx: &CkksContext, d: &RnsPoly, level: usize) -> HoistedRotations {
    assert_eq!(d.representation(), Representation::Eval);
    assert_eq!(d.limbs(), level + 1, "polynomial level mismatch");
    // Decompose needs true [0, p) representatives, so the input iNTT
    // canonicalises (its exit pass does that for free).
    let mut d_coeff = d.clone();
    d_coeff.to_coeff();
    let beta = ctx.keyswitch_precomp(level).digits.len();
    let digits = (0..beta)
        .map(|j| {
            let mut raised = raise_digit(ctx, &d_coeff, level, j);
            raised.to_eval_lazy();
            raised
        })
        .collect();
    HoistedRotations { level, digits }
}

/// The per-rotation tail of the hoisted pipeline: applies the
/// eval-form automorphism `sigma_g` to each shared raised digit (a
/// pure slot permutation preserving the `[0, 2p)` window), runs the
/// inner product against the Galois key rows, and ModDowns with the
/// lazy-chain single fold per limb.
///
/// Bit-identical to [`key_switch_galois`] on the same `(d, g, key)`
/// because the per-digit kernel sequence — lazy NTT, lazy
/// automorphism, lazy MAC, lazy iNTT, one fold — is unchanged; the
/// digits are merely not recomputed per rotation. Asserted by the
/// suite below and `tests/backend_identity.rs`.
///
/// # Panics
///
/// Panics if `g` is even or `key` does not cover `hoisted.level()`.
pub fn key_switch_galois_hoisted(
    ctx: &CkksContext,
    hoisted: &HoistedRotations,
    g: u64,
    key: &SwitchingKey,
) -> (RnsPoly, RnsPoly) {
    let level = hoisted.level;
    let ext_basis = ctx.extended_basis(level).clone();
    let mut acc0 = RnsPoly::zero(ext_basis.clone(), Representation::Eval);
    let mut acc1 = RnsPoly::zero(ext_basis, Representation::Eval);
    for (j, raised) in hoisted.digits.iter().enumerate() {
        let mut d_tilde = raised.clone();
        d_tilde.automorphism_lazy(g, ctx.galois());
        let (b_j, a_j) = key.row_at_level(ctx, j, level);
        acc0.mul_acc_pointwise_lazy(&d_tilde, &b_j);
        acc1.mul_acc_pointwise_lazy(&d_tilde, &a_j);
    }
    let ks0 = mod_down(ctx, acc0, level, KsReduction::LazyChain);
    let ks1 = mod_down(ctx, acc1, level, KsReduction::LazyChain);
    (ks0, ks1)
}

/// ModDown: maps a polynomial over `C_l ∪ P` to `C_l`, dividing by `P`
/// with rounding (the tail step of Algorithm 1, line 12).
///
/// In the lazy pipeline the accumulator arrives in `[0, 2p)`; the iNTT
/// exits lazily and the deferred fold happens here, once per limb —
/// the ciphertext-boundary canonicalisation of the chain.
fn mod_down(ctx: &CkksContext, mut acc: RnsPoly, level: usize, mode: KsReduction) -> RnsPoly {
    let precomp = ctx.keyswitch_precomp(level);
    match mode {
        KsReduction::LazyChain => {
            acc.to_coeff_lazy();
            debug_assert_eq!(acc.reduction_state(), ReductionState::Lazy2p);
            acc.canonicalize();
        }
        KsReduction::PerKernel => acc.to_coeff(),
        KsReduction::Strict => acc.to_coeff_strict(),
    }
    debug_assert_eq!(acc.reduction_state(), ReductionState::Canonical);
    let n = acc.n();
    let flat = acc.into_flat();
    let n_q = level + 1;
    // Limb-major layout: the q-limbs and P-limbs are contiguous halves,
    // so the P-part feeds BConv without any gather.
    let (q_flat, p_flat) = flat.split_at(n_q * n);
    let p_in_q = precomp.mod_down.convert_exact(p_flat);
    let level_basis = ctx.level_basis(level).clone();
    let mut out_flat = Vec::with_capacity(n_q * n);
    for i in 0..n_q {
        let qi = level_basis.modulus(i);
        let inv = precomp.p_inv_mod_q[i];
        out_flat.extend(
            q_flat[i * n..(i + 1) * n]
                .iter()
                .zip(&p_in_q[i * n..(i + 1) * n])
                .map(|(&c, &p)| qi.mul(qi.sub(c, p), inv)),
        );
    }
    let mut out = RnsPoly::from_flat(level_basis, out_flat, Representation::Coeff);
    out.to_eval();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keys::KeyGenerator;
    use crate::params::CkksParams;
    use fhe_math::sampler;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::Arc;

    /// Keyswitching d with the relin key must produce (ks0, ks1) with
    /// ks0 + ks1*s ≈ d*s^2 — the defining property.
    #[test]
    fn keyswitch_defining_property() {
        let ctx = CkksContext::new(CkksParams::tiny_params());
        let mut rng = StdRng::seed_from_u64(51);
        let kg = KeyGenerator::new(ctx.clone());
        let sk = kg.secret_key(&mut rng);
        let rlk = kg.relin_key(&sk, &mut rng);

        for level in [ctx.params().max_level(), 1, 0] {
            let basis = ctx.level_basis(level).clone();
            // Random "ciphertext part" d, uniform over the basis.
            let mut flat = Vec::with_capacity(basis.len() * ctx.n());
            for m in basis.moduli() {
                flat.extend(sampler::uniform_residues(&mut rng, m, ctx.n()));
            }
            let d = RnsPoly::from_flat(basis.clone(), flat, Representation::Eval);

            let (ks0, ks1) = key_switch(&ctx, &d, &rlk, level);

            let s = sk.poly_at_level(&ctx, level);
            let mut s2 = s.clone();
            s2.mul_assign_pointwise(&s);

            // lhs = ks0 + ks1*s, rhs = d*s^2; difference must be small.
            let mut lhs = ks1.clone();
            lhs.mul_assign_pointwise(&s);
            lhs.add_assign(&ks0);
            let mut rhs = d.clone();
            rhs.mul_assign_pointwise(&s2);
            lhs.sub_assign(&rhs);
            lhs.to_coeff();
            let err = lhs.to_centered_f64();
            let max_err = err.iter().fold(0.0f64, |a, &b| a.max(b.abs()));
            // Noise bound: beta * N * sigma * D/P plus ModDown rounding.
            // Empirically tiny; assert a comfortable margin well below the
            // scale (2^30).
            assert!(
                max_err < 2f64.powi(20),
                "keyswitch noise too large at level {level}: {max_err}"
            );
            assert!(
                max_err > 0.0,
                "suspiciously exact keyswitch at level {level}"
            );
        }
    }

    /// Galois keyswitching: rotating c1 and switching must track the
    /// rotated secret.
    #[test]
    fn galois_keyswitch_property() {
        let ctx = CkksContext::new(CkksParams::tiny_params());
        let mut rng = StdRng::seed_from_u64(52);
        let kg = KeyGenerator::new(ctx.clone());
        let sk = kg.secret_key(&mut rng);
        let g = fhe_math::galois::rotation_galois_element(1, ctx.n());
        let gk = kg.galois_key(&sk, g, &mut rng);

        let level = 1;
        let basis = ctx.level_basis(level).clone();
        let mut flat = Vec::with_capacity(basis.len() * ctx.n());
        for m in basis.moduli() {
            flat.extend(sampler::uniform_residues(&mut rng, m, ctx.n()));
        }
        let d = RnsPoly::from_flat(basis, flat, Representation::Eval);
        let (ks0, ks1) = key_switch(&ctx, &d, &gk, level);

        let s = sk.poly_at_level(&ctx, level);
        let mut s_g = s.clone();
        s_g.automorphism(g, ctx.galois());

        let mut lhs = ks1.clone();
        lhs.mul_assign_pointwise(&s);
        lhs.add_assign(&ks0);
        let mut rhs = d.clone();
        rhs.mul_assign_pointwise(&s_g);
        lhs.sub_assign(&rhs);
        lhs.to_coeff();
        let max_err = lhs
            .to_centered_f64()
            .iter()
            .fold(0.0f64, |a, &b| a.max(b.abs()));
        assert!(max_err < 2f64.powi(20), "galois keyswitch noise: {max_err}");
    }

    /// The hoisted Galois keyswitch must satisfy the same defining
    /// property as rotating first: `ks0 + ks1*s ≈ sigma_g(d) * sigma_g(s)`
    /// — the automorphism hoisted past decompose/ModUp changes only the
    /// BConv-overshoot noise realisation, not the phase.
    #[test]
    fn hoisted_galois_keyswitch_property() {
        let ctx = CkksContext::new(CkksParams::tiny_params());
        let mut rng = StdRng::seed_from_u64(54);
        let kg = KeyGenerator::new(ctx.clone());
        let sk = kg.secret_key(&mut rng);
        for r in [1i64, -1, 3] {
            let g = fhe_math::galois::rotation_galois_element(r, ctx.n());
            let gk = kg.galois_key(&sk, g, &mut rng);

            let level = ctx.params().max_level();
            let basis = ctx.level_basis(level).clone();
            let mut flat = Vec::with_capacity(basis.len() * ctx.n());
            for m in basis.moduli() {
                flat.extend(sampler::uniform_residues(&mut rng, m, ctx.n()));
            }
            let d = RnsPoly::from_flat(basis, flat, Representation::Eval);
            let (ks0, ks1) = key_switch_galois(&ctx, &d, g, &gk, level);

            let s = sk.poly_at_level(&ctx, level);
            let mut s_g = s.clone();
            s_g.automorphism(g, ctx.galois());
            let mut d_g = d.clone();
            d_g.automorphism(g, ctx.galois());

            let mut lhs = ks1.clone();
            lhs.mul_assign_pointwise(&s);
            lhs.add_assign(&ks0);
            let mut rhs = d_g;
            rhs.mul_assign_pointwise(&s_g);
            lhs.sub_assign(&rhs);
            lhs.to_coeff();
            let max_err = lhs
                .to_centered_f64()
                .iter()
                .fold(0.0f64, |a, &b| a.max(b.abs()));
            assert!(
                max_err < 2f64.powi(20),
                "hoisted galois keyswitch noise for r={r}: {max_err}"
            );
        }
    }

    /// All three reduction tiers of the hoisted Galois pipeline are
    /// bit-identical — the rotation-chain counterpart of the plain
    /// keyswitch tier assertions in `tests/lazy_chains.rs`.
    #[test]
    fn galois_keyswitch_tiers_bit_identical() {
        let ctx = CkksContext::new(CkksParams::tiny_params());
        let mut rng = StdRng::seed_from_u64(55);
        let kg = KeyGenerator::new(ctx.clone());
        let sk = kg.secret_key(&mut rng);
        let g = fhe_math::galois::rotation_galois_element(1, ctx.n());
        let gk = kg.galois_key(&sk, g, &mut rng);
        for level in [ctx.params().max_level(), 0] {
            let basis = ctx.level_basis(level).clone();
            let mut flat = Vec::with_capacity(basis.len() * ctx.n());
            for m in basis.moduli() {
                flat.extend(sampler::uniform_residues(&mut rng, m, ctx.n()));
            }
            let d = RnsPoly::from_flat(basis, flat, Representation::Eval);
            let (l0, l1) = key_switch_galois(&ctx, &d, g, &gk, level);
            let (h0, h1) = key_switch_galois_per_kernel(&ctx, &d, g, &gk, level);
            let (s0, s1) = key_switch_galois_strict(&ctx, &d, g, &gk, level);
            assert_eq!(l0.flat(), s0.flat(), "lazy vs strict ks0, level {level}");
            assert_eq!(l1.flat(), s1.flat(), "lazy vs strict ks1, level {level}");
            assert_eq!(h0.flat(), s0.flat(), "harvey vs strict ks0, level {level}");
            assert_eq!(h1.flat(), s1.flat(), "harvey vs strict ks1, level {level}");
            assert_eq!(l0.reduction_state(), ReductionState::Canonical);
            assert_eq!(l1.reduction_state(), ReductionState::Canonical);
        }
    }

    /// One [`hoist_rotations`] call must serve every rotation in a
    /// batch, each output bitwise identical to the corresponding
    /// sequential [`key_switch_galois`] — the digits are shared, not
    /// recomputed, and sharing must not change a single bit.
    #[test]
    fn hoisted_rotations_bit_identical_to_sequential() {
        let ctx = CkksContext::new(CkksParams::tiny_params());
        let mut rng = StdRng::seed_from_u64(56);
        let kg = KeyGenerator::new(ctx.clone());
        let sk = kg.secret_key(&mut rng);
        for level in [ctx.params().max_level(), 0] {
            let basis = ctx.level_basis(level).clone();
            let mut flat = Vec::with_capacity(basis.len() * ctx.n());
            for m in basis.moduli() {
                flat.extend(sampler::uniform_residues(&mut rng, m, ctx.n()));
            }
            let d = RnsPoly::from_flat(basis, flat, Representation::Eval);

            let hoisted = hoist_rotations(&ctx, &d, level);
            assert_eq!(hoisted.level(), level);
            assert!(hoisted.digit_count() >= 1);

            for r in [1i64, -1, 2, 3] {
                let g = fhe_math::galois::rotation_galois_element(r, ctx.n());
                let gk = kg.galois_key(&sk, g, &mut rng);
                let (h0, h1) = key_switch_galois_hoisted(&ctx, &hoisted, g, &gk);
                let (s0, s1) = key_switch_galois(&ctx, &d, g, &gk, level);
                assert_eq!(h0.flat(), s0.flat(), "ks0 r={r} level={level}");
                assert_eq!(h1.flat(), s1.flat(), "ks1 r={r} level={level}");
            }
        }
    }

    /// Coalescing k independent keyswitch jobs (distinct inputs AND
    /// distinct keys, as cross-tenant coalescing produces) must leave
    /// every output bitwise identical to its own sequential call —
    /// batching widens kernel dispatches, it never changes a per-row
    /// kernel.
    #[test]
    fn coalesced_keyswitch_bit_identical_to_sequential() {
        let ctx = CkksContext::new(CkksParams::tiny_params());
        let mut rng = StdRng::seed_from_u64(57);
        let kg = KeyGenerator::new(ctx.clone());
        for level in [ctx.params().max_level(), 0] {
            let basis = ctx.level_basis(level).clone();
            let mut ds = Vec::new();
            let mut keys = Vec::new();
            for _ in 0..3 {
                let sk = kg.secret_key(&mut rng);
                keys.push(kg.relin_key(&sk, &mut rng));
                let mut flat = Vec::with_capacity(basis.len() * ctx.n());
                for m in basis.moduli() {
                    flat.extend(sampler::uniform_residues(&mut rng, m, ctx.n()));
                }
                ds.push(RnsPoly::from_flat(
                    basis.clone(),
                    flat,
                    Representation::Eval,
                ));
            }
            let jobs: Vec<KsJob<'_>> = ds
                .iter()
                .zip(&keys)
                .map(|(d, key)| KsJob { d, key })
                .collect();
            let coalesced = key_switch_coalesced(&ctx, &jobs, level);
            assert_eq!(coalesced.len(), jobs.len());
            for (i, (job, (c0, c1))) in jobs.iter().zip(&coalesced).enumerate() {
                let (s0, s1) = key_switch(&ctx, job.d, job.key, level);
                assert_eq!(c0.flat(), s0.flat(), "ks0 job {i} level {level}");
                assert_eq!(c1.flat(), s1.flat(), "ks1 job {i} level {level}");
                assert_eq!(c0.reduction_state(), ReductionState::Canonical);
                assert_eq!(c0.representation(), Representation::Eval);
            }
        }
    }

    /// The Galois form of the same guarantee: k rotations by one
    /// element under per-job keys, coalesced, each output bit-identical
    /// to its sequential `key_switch_galois` (and hence to the strict
    /// oracle, by `galois_keyswitch_tiers_bit_identical`).
    #[test]
    fn coalesced_galois_keyswitch_bit_identical_to_sequential() {
        let ctx = CkksContext::new(CkksParams::tiny_params());
        let mut rng = StdRng::seed_from_u64(58);
        let kg = KeyGenerator::new(ctx.clone());
        let g = fhe_math::galois::rotation_galois_element(1, ctx.n());
        let level = ctx.params().max_level();
        let basis = ctx.level_basis(level).clone();
        let mut ds = Vec::new();
        let mut keys = Vec::new();
        for _ in 0..4 {
            let sk = kg.secret_key(&mut rng);
            keys.push(kg.galois_key(&sk, g, &mut rng));
            let mut flat = Vec::with_capacity(basis.len() * ctx.n());
            for m in basis.moduli() {
                flat.extend(sampler::uniform_residues(&mut rng, m, ctx.n()));
            }
            ds.push(RnsPoly::from_flat(
                basis.clone(),
                flat,
                Representation::Eval,
            ));
        }
        let jobs: Vec<KsJob<'_>> = ds
            .iter()
            .zip(&keys)
            .map(|(d, key)| KsJob { d, key })
            .collect();
        let coalesced = key_switch_galois_coalesced(&ctx, &jobs, g, level);
        for (i, (job, (c0, c1))) in jobs.iter().zip(&coalesced).enumerate() {
            let (s0, s1) = key_switch_galois(&ctx, job.d, g, job.key, level);
            assert_eq!(c0.flat(), s0.flat(), "ks0 job {i}");
            assert_eq!(c1.flat(), s1.flat(), "ks1 job {i}");
        }
        // An empty batch is a no-op, not a panic.
        assert!(key_switch_galois_coalesced(&ctx, &[], g, level).is_empty());
    }

    #[test]
    #[should_panic(expected = "level mismatch")]
    fn wrong_level_rejected() {
        let ctx = CkksContext::new(CkksParams::tiny_params());
        let mut rng = StdRng::seed_from_u64(53);
        let kg = KeyGenerator::new(ctx.clone());
        let sk = kg.secret_key(&mut rng);
        let rlk = kg.relin_key(&sk, &mut rng);
        let d = RnsPoly::zero(ctx.level_basis(1).clone(), Representation::Eval);
        let _ = key_switch(&ctx, &d, &rlk, 2);
    }

    // Arc import used by helper signatures in sibling tests.
    #[allow(dead_code)]
    fn _keep(_: Arc<CkksContext>) {}
}
