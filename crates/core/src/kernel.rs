//! The arithmetic kernel taxonomy of the Trinity paper (§II).
//!
//! Both CKKS and TFHE "consist of a finite set of kernels" — the key
//! observation enabling a unified accelerator. Every workload in the
//! evaluation decomposes into instances of these kernels, arranged in a
//! dependency DAG that the scheduler maps onto hardware components.

/// One arithmetic kernel instance (paper §II-A / §II-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelKind {
    /// Forward NTT of an `n`-point polynomial.
    Ntt {
        /// Polynomial length.
        n: usize,
    },
    /// Inverse NTT of an `n`-point polynomial.
    Intt {
        /// Polynomial length.
        n: usize,
    },
    /// Base conversion: `(rows_in x n)` polynomial matrix times a
    /// `(rows_in x rows_out)` constant matrix (systolic-array MAC).
    BConv {
        /// Input RNS rows.
        rows_in: usize,
        /// Output RNS rows.
        rows_out: usize,
        /// Polynomial length.
        n: usize,
    },
    /// Inner product of `digits` raised polynomials with evaluation-key
    /// polynomials, accumulating `outputs` result polynomials over
    /// `limbs` RNS rows (KeySwitch line 9 of Algorithm 1).
    InnerProduct {
        /// Number of decomposition digits.
        digits: usize,
        /// RNS rows per polynomial.
        limbs: usize,
        /// Output polynomials (2 for keyswitch).
        outputs: usize,
        /// Polynomial length.
        n: usize,
    },
    /// Pointwise multiply-accumulate of the TFHE external product:
    /// `rows` digit polynomials against `outputs` GGSW columns.
    ExtProductMac {
        /// `(k+1) * lb` digit rows.
        rows: usize,
        /// `k+1` output polynomials.
        outputs: usize,
        /// Polynomial length.
        n: usize,
    },
    /// Element-wise modular multiplication over `limbs` rows.
    ModMul {
        /// RNS rows.
        limbs: usize,
        /// Polynomial length.
        n: usize,
    },
    /// Element-wise modular addition over `limbs` rows.
    ModAdd {
        /// RNS rows.
        limbs: usize,
        /// Polynomial length.
        n: usize,
    },
    /// Automorphism index permutation over `limbs` rows.
    Automorphism {
        /// RNS rows.
        limbs: usize,
        /// Polynomial length.
        n: usize,
    },
    /// Matrix transpose inside the four-step NTT.
    Transpose {
        /// Polynomial length.
        n: usize,
    },
    /// Negacyclic vector rotation (monomial multiplication) — Rotator.
    RotateVec {
        /// Polynomial length.
        n: usize,
    },
    /// SampleExtract of one coefficient — Rotator.
    SampleExtract {
        /// Polynomial length.
        n: usize,
    },
    /// Gadget decomposition of `limbs` rows into `levels` digits.
    Decompose {
        /// Rows to decompose.
        limbs: usize,
        /// Decomposition levels.
        levels: usize,
        /// Polynomial length.
        n: usize,
    },
    /// LWE modulus switch (VPU).
    ModSwitch {
        /// LWE dimension.
        n: usize,
    },
    /// LWE keyswitch (VPU): `n_in` mask entries times `levels` digits.
    LweKeySwitch {
        /// Input dimension.
        n_in: usize,
        /// Output dimension.
        n_out: usize,
        /// Decomposition levels.
        levels: usize,
    },
    /// Off-chip key/data transfer.
    HbmLoad {
        /// Bytes transferred.
        bytes: u64,
    },
    /// Inter-cluster data-layout switch (limb-wise <-> slot-wise,
    /// paper §IV-I) over the all-to-all NoC.
    LayoutSwitch {
        /// Bytes exchanged.
        bytes: u64,
    },
}

/// Coarse functional class, used for component compatibility and the
/// paper's Fig. 2 NTT/MAC breakdown.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelClass {
    /// Butterfly-network work (NTT/iNTT).
    Ntt,
    /// Systolic-array MAC work (BConv, IP, external product).
    Mac,
    /// Element-wise engine work.
    Ewe,
    /// Automorphism unit work.
    Auto,
    /// Transpose unit work.
    Transpose,
    /// Rotator work.
    Rotator,
    /// Vector processing unit work.
    Vpu,
    /// Off-chip transfer.
    Hbm,
    /// Inter-cluster NoC transfer.
    Noc,
}

impl KernelKind {
    /// The functional class this kernel belongs to.
    pub fn class(&self) -> KernelClass {
        match self {
            KernelKind::Ntt { .. } | KernelKind::Intt { .. } => KernelClass::Ntt,
            KernelKind::BConv { .. }
            | KernelKind::InnerProduct { .. }
            | KernelKind::ExtProductMac { .. } => KernelClass::Mac,
            KernelKind::ModMul { .. } | KernelKind::ModAdd { .. } => KernelClass::Ewe,
            KernelKind::Automorphism { .. } => KernelClass::Auto,
            KernelKind::Transpose { .. } => KernelClass::Transpose,
            KernelKind::RotateVec { .. } | KernelKind::SampleExtract { .. } => KernelClass::Rotator,
            // Gadget decomposition is element-wise shift/round logic and
            // runs on the element-wise engine in Trinity.
            KernelKind::Decompose { .. } => KernelClass::Ewe,
            KernelKind::ModSwitch { .. } | KernelKind::LweKeySwitch { .. } => KernelClass::Vpu,
            KernelKind::HbmLoad { .. } => KernelClass::Hbm,
            KernelKind::LayoutSwitch { .. } => KernelClass::Noc,
        }
    }

    /// Number of element-level operations (used as the unit of work for
    /// throughput modelling).
    pub fn element_ops(&self) -> u64 {
        match *self {
            KernelKind::Ntt { n } | KernelKind::Intt { n } => {
                // (n/2) * log2(n) butterflies; one butterfly = one
                // modular multiplication plus add/sub.
                (n as u64 / 2) * (n.trailing_zeros() as u64)
            }
            KernelKind::BConv {
                rows_in,
                rows_out,
                n,
            } => (rows_in * rows_out * n) as u64,
            KernelKind::InnerProduct {
                digits,
                limbs,
                outputs,
                n,
            } => (digits * limbs * outputs * n) as u64,
            KernelKind::ExtProductMac { rows, outputs, n } => (rows * outputs * n) as u64,
            KernelKind::ModMul { limbs, n } | KernelKind::ModAdd { limbs, n } => (limbs * n) as u64,
            KernelKind::Automorphism { limbs, n } => (limbs * n) as u64,
            KernelKind::Transpose { n } => n as u64,
            KernelKind::RotateVec { n } | KernelKind::SampleExtract { n } => n as u64,
            KernelKind::Decompose { limbs, levels, n } => (limbs * levels * n) as u64,
            KernelKind::ModSwitch { n } => n as u64,
            KernelKind::LweKeySwitch {
                n_in,
                n_out,
                levels,
            } => (n_in * levels * n_out) as u64,
            KernelKind::HbmLoad { bytes } => bytes,
            KernelKind::LayoutSwitch { bytes } => bytes,
        }
    }

    /// Number of modular multiplications (the paper's Fig. 2 metric —
    /// "computational amount breakdown of NTT and MAC").
    pub fn modmul_ops(&self) -> u64 {
        match *self {
            // Butterflies each perform one multiplication.
            KernelKind::Ntt { n } | KernelKind::Intt { n } => {
                (n as u64 / 2) * (n.trailing_zeros() as u64)
            }
            KernelKind::BConv { .. }
            | KernelKind::InnerProduct { .. }
            | KernelKind::ExtProductMac { .. }
            | KernelKind::ModMul { .. } => self.element_ops(),
            KernelKind::LweKeySwitch { .. } => self.element_ops(),
            _ => 0,
        }
    }
}

/// Identifier of a kernel within a graph.
pub type KernelId = usize;

/// A kernel instance with its dependencies.
#[derive(Debug, Clone)]
pub struct Kernel {
    /// Stable id within the owning graph.
    pub id: KernelId,
    /// What to compute.
    pub kind: KernelKind,
    /// Kernels that must complete first.
    pub deps: Vec<KernelId>,
}

/// A dependency DAG of kernels. Acyclic by construction (dependencies
/// must reference already-inserted kernels).
#[derive(Debug, Clone, Default)]
pub struct KernelGraph {
    kernels: Vec<Kernel>,
}

impl KernelGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a kernel, returning its id.
    ///
    /// # Panics
    ///
    /// Panics if any dependency id is not already in the graph (this
    /// guarantees acyclicity).
    pub fn add(&mut self, kind: KernelKind, deps: &[KernelId]) -> KernelId {
        let id = self.kernels.len();
        for &d in deps {
            assert!(d < id, "dependency {d} not yet inserted (kernel {id})");
        }
        self.kernels.push(Kernel {
            id,
            kind,
            deps: deps.to_vec(),
        });
        id
    }

    /// Adds `count` identical independent kernels sharing `deps`,
    /// returning all ids.
    pub fn add_many(&mut self, kind: KernelKind, count: usize, deps: &[KernelId]) -> Vec<KernelId> {
        (0..count).map(|_| self.add(kind, deps)).collect()
    }

    /// All kernels in insertion (topological) order.
    pub fn kernels(&self) -> &[Kernel] {
        &self.kernels
    }

    /// Number of kernels.
    pub fn len(&self) -> usize {
        self.kernels.len()
    }

    /// True when the graph has no kernels.
    pub fn is_empty(&self) -> bool {
        self.kernels.is_empty()
    }

    /// Appends another graph, offsetting ids, with the new sub-graph's
    /// roots depending on `deps`. Returns the id offset.
    pub fn append(&mut self, other: &KernelGraph, deps: &[KernelId]) -> usize {
        let offset = self.kernels.len();
        for k in &other.kernels {
            let mut new_deps: Vec<KernelId> = k.deps.iter().map(|&d| d + offset).collect();
            if k.deps.is_empty() {
                new_deps.extend_from_slice(deps);
            }
            self.kernels.push(Kernel {
                id: k.id + offset,
                kind: k.kind,
                deps: new_deps,
            });
        }
        offset
    }

    /// Total modular multiplications per class — the paper's Fig. 2
    /// breakdown.
    pub fn modmul_breakdown(&self) -> ClassBreakdown {
        let mut b = ClassBreakdown::default();
        for k in &self.kernels {
            let ops = k.kind.modmul_ops();
            match k.kind.class() {
                KernelClass::Ntt => b.ntt += ops,
                KernelClass::Mac => b.mac += ops,
                _ => b.other += ops,
            }
        }
        b
    }

    /// Ids of kernels with no dependents (the graph's outputs).
    pub fn sinks(&self) -> Vec<KernelId> {
        let mut has_dependent = vec![false; self.kernels.len()];
        for k in &self.kernels {
            for &d in &k.deps {
                has_dependent[d] = true;
            }
        }
        (0..self.kernels.len())
            .filter(|&i| !has_dependent[i])
            .collect()
    }
}

/// Modular-multiplication totals by class.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClassBreakdown {
    /// NTT-class multiplications.
    pub ntt: u64,
    /// MAC-class multiplications.
    pub mac: u64,
    /// Everything else.
    pub other: u64,
}

impl ClassBreakdown {
    /// NTT share of NTT + MAC (the paper's Fig. 2 percentages).
    pub fn ntt_fraction(&self) -> f64 {
        if self.ntt + self.mac == 0 {
            return 0.0;
        }
        self.ntt as f64 / (self.ntt + self.mac) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classes_are_stable() {
        assert_eq!(KernelKind::Ntt { n: 1024 }.class(), KernelClass::Ntt);
        assert_eq!(
            KernelKind::BConv {
                rows_in: 2,
                rows_out: 3,
                n: 8
            }
            .class(),
            KernelClass::Mac
        );
        assert_eq!(
            KernelKind::ModMul { limbs: 1, n: 8 }.class(),
            KernelClass::Ewe
        );
        assert_eq!(KernelKind::HbmLoad { bytes: 64 }.class(), KernelClass::Hbm);
    }

    #[test]
    fn ntt_op_count_formula() {
        // 1024-point NTT: 512 butterflies * 10 stages.
        assert_eq!(KernelKind::Ntt { n: 1024 }.element_ops(), 5120);
        assert_eq!(KernelKind::Intt { n: 65536 }.element_ops(), 32768 * 16);
    }

    #[test]
    fn graph_rejects_forward_deps() {
        let mut g = KernelGraph::new();
        let a = g.add(KernelKind::Ntt { n: 64 }, &[]);
        let _b = g.add(KernelKind::Intt { n: 64 }, &[a]);
        assert_eq!(g.len(), 2);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut g2 = g.clone();
            g2.add(KernelKind::Ntt { n: 64 }, &[99]);
        }));
        assert!(result.is_err());
    }

    #[test]
    fn append_offsets_dependencies() {
        let mut sub = KernelGraph::new();
        let a = sub.add(KernelKind::Ntt { n: 64 }, &[]);
        sub.add(KernelKind::Intt { n: 64 }, &[a]);

        let mut g = KernelGraph::new();
        let root = g.add(KernelKind::ModAdd { limbs: 1, n: 64 }, &[]);
        let off = g.append(&sub, &[root]);
        assert_eq!(off, 1);
        assert_eq!(g.kernels()[1].deps, vec![root]);
        assert_eq!(g.kernels()[2].deps, vec![1]);
    }

    #[test]
    fn sinks_found() {
        let mut g = KernelGraph::new();
        let a = g.add(KernelKind::Ntt { n: 64 }, &[]);
        let b = g.add(KernelKind::Intt { n: 64 }, &[a]);
        let c = g.add(KernelKind::Ntt { n: 64 }, &[]);
        assert_eq!(g.sinks(), vec![b, c]);
    }

    #[test]
    fn breakdown_fraction() {
        let mut g = KernelGraph::new();
        g.add(KernelKind::Ntt { n: 1024 }, &[]); // 5120 mults
        g.add(
            KernelKind::BConv {
                rows_in: 8,
                rows_out: 8,
                n: 80,
            },
            &[],
        ); // 5120 mults
        let b = g.modmul_breakdown();
        assert_eq!(b.ntt, 5120);
        assert_eq!(b.mac, 5120);
        assert!((b.ntt_fraction() - 0.5).abs() < 1e-12);
    }
}
