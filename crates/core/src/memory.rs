//! On-chip memory system model (paper §IV-J).
//!
//! Trinity's memory hierarchy: per-cluster scratchpad (shared across
//! groups, talks to HBM and the inter-cluster NoC) and per-group local
//! buffers (shared across a group's functional units). This module
//! reproduces the paper's published geometry —
//!
//! * local buffer: 256 lanes x 5 single-ported 36-bit banks, each bank
//!   holding two 65536-coefficient polynomials per lane; double-pumped,
//!   giving 2.8125 MiB and 11.25 TB/s at 1 GHz;
//! * scratchpad: 256 lanes x 4 single-ported 36-bit banks, 45 MiB per
//!   cluster and 9 TB/s at 1 GHz (Table III lists the 4-cluster total,
//!   180 MB);
//!
//! — and derives from it the *key-residency* question that drives HBM
//! traffic: does the working set (evk, bsk, ksk, ciphertexts) fit, and
//! if not, what fraction of key material must re-stream per use? That
//! fraction is the `hbm_key_fraction` the keyswitch DAG builders charge
//! to the HBM lane.

/// Bytes in one MiB.
const MIB: f64 = 1024.0 * 1024.0;

/// Geometry of one vectorised SRAM structure (local buffer or
/// scratchpad).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SramSpec {
    /// Vector lanes.
    pub lanes: usize,
    /// Single-ported banks per lane.
    pub banks: usize,
    /// Items (words) per bank per lane.
    pub items_per_bank: usize,
    /// Word width in bytes (36-bit => 4.5).
    pub word_bytes: f64,
    /// Accesses per cycle per bank (2 = double-pumped, §V-A).
    pub pump: f64,
}

impl SramSpec {
    /// The paper's local buffer: 5 banks, each storing two polynomials
    /// of length 65536 per 256-lane group.
    pub fn local_buffer() -> Self {
        Self {
            lanes: 256,
            banks: 5,
            // Two 65536-polynomials spread over 256 lanes: 512 items.
            items_per_bank: 2 * 65536 / 256,
            word_bytes: 4.5,
            pump: 2.0,
        }
    }

    /// The paper's per-cluster scratchpad: 4 banks, 45 MiB per cluster.
    pub fn scratchpad() -> Self {
        Self {
            lanes: 256,
            banks: 4,
            items_per_bank: 10240,
            word_bytes: 4.5,
            pump: 2.0,
        }
    }

    /// Total capacity in bytes.
    pub fn capacity_bytes(&self) -> f64 {
        self.lanes as f64 * self.banks as f64 * self.items_per_bank as f64 * self.word_bytes
    }

    /// Total capacity in MiB.
    pub fn capacity_mib(&self) -> f64 {
        self.capacity_bytes() / MIB
    }

    /// Peak bandwidth in bytes per cycle (all banks of all lanes).
    pub fn bytes_per_cycle(&self) -> f64 {
        self.lanes as f64 * self.banks as f64 * self.word_bytes * self.pump
    }

    /// Peak bandwidth in TB/s at a core frequency.
    pub fn tb_per_s(&self, freq_ghz: f64) -> f64 {
        self.bytes_per_cycle() * freq_ghz * 1e9 / 1e12
    }
}

/// Chip-level memory system: per-cluster scratchpads plus per-group
/// local buffers.
#[derive(Debug, Clone, Copy)]
pub struct MemorySystem {
    /// Clusters on the chip.
    pub clusters: usize,
    /// Local buffers per cluster (one per group).
    pub buffers_per_cluster: usize,
    /// Scratchpad geometry.
    pub scratchpad: SramSpec,
    /// Local-buffer geometry.
    pub local_buffer: SramSpec,
}

impl MemorySystem {
    /// Trinity's memory system (Table III: 4 clusters, 3 groups each).
    pub fn trinity() -> Self {
        Self {
            clusters: 4,
            buffers_per_cluster: 3,
            scratchpad: SramSpec::scratchpad(),
            local_buffer: SramSpec::local_buffer(),
        }
    }

    /// Total scratchpad capacity in bytes (the key-residency budget).
    pub fn scratchpad_bytes(&self) -> f64 {
        self.clusters as f64 * self.scratchpad.capacity_bytes()
    }

    /// Total on-chip capacity in MiB (scratchpads + local buffers).
    pub fn total_mib(&self) -> f64 {
        (self.scratchpad_bytes()
            + (self.clusters * self.buffers_per_cluster) as f64
                * self.local_buffer.capacity_bytes())
            / MIB
    }

    /// Aggregate scratchpad bandwidth in TB/s.
    pub fn scratchpad_tb_per_s(&self, freq_ghz: f64) -> f64 {
        self.clusters as f64 * self.scratchpad.tb_per_s(freq_ghz)
    }

    /// Aggregate local-buffer bandwidth in TB/s.
    pub fn local_buffer_tb_per_s(&self, freq_ghz: f64) -> f64 {
        (self.clusters * self.buffers_per_cluster) as f64 * self.local_buffer.tb_per_s(freq_ghz)
    }
}

/// Key material a workload keeps live on chip.
#[derive(Debug, Clone, Copy, Default)]
pub struct WorkingSet {
    /// CKKS evaluation/relinearisation key bytes.
    pub evk_bytes: f64,
    /// CKKS Galois key bytes (rotation set).
    pub galois_bytes: f64,
    /// TFHE bootstrapping key bytes.
    pub bsk_bytes: f64,
    /// TFHE keyswitching key bytes.
    pub ksk_bytes: f64,
    /// Live ciphertext bytes (double-buffered working tiles).
    pub ciphertext_bytes: f64,
}

impl WorkingSet {
    /// One CKKS switching key at level `l`: `beta * 2 * ext_limbs * N`
    /// words (hybrid keyswitch, Algorithm 1).
    pub fn ckks_evk_bytes(n: usize, levels: usize, dnum: usize, l: usize, word_bytes: f64) -> f64 {
        let alpha = (levels + 1).div_ceil(dnum);
        let beta = (l + 1).div_ceil(alpha);
        let ext = l + 1 + alpha;
        (beta * 2 * ext * n) as f64 * word_bytes
    }

    /// TFHE bootstrapping key: `n_lwe` GGSWs of `(k+1)^2 * lb`
    /// polynomials.
    pub fn tfhe_bsk_bytes(n: usize, n_lwe: usize, k: usize, lb: usize, word_bytes: f64) -> f64 {
        (n_lwe * (k + 1) * (k + 1) * lb * n) as f64 * word_bytes
    }

    /// TFHE keyswitching key: `k*N x lk` LWE rows of dimension
    /// `n_lwe + 1`.
    pub fn tfhe_ksk_bytes(n: usize, n_lwe: usize, k: usize, lk: usize, word_bytes: f64) -> f64 {
        (k * n * lk * (n_lwe + 1)) as f64 * word_bytes
    }

    /// The full CKKS bootstrapping working set: relinearisation key plus
    /// `galois_keys` rotation keys at the top level and a handful of
    /// live ciphertext tiles.
    pub fn ckks_bootstrap(
        n: usize,
        levels: usize,
        dnum: usize,
        galois_keys: usize,
        word_bytes: f64,
    ) -> Self {
        let evk = Self::ckks_evk_bytes(n, levels, dnum, levels, word_bytes);
        Self {
            evk_bytes: evk,
            galois_bytes: galois_keys as f64 * evk,
            ciphertext_bytes: 4.0 * 2.0 * (levels + 1) as f64 * n as f64 * word_bytes,
            ..Self::default()
        }
    }

    /// Total bytes.
    pub fn total_bytes(&self) -> f64 {
        self.evk_bytes + self.galois_bytes + self.bsk_bytes + self.ksk_bytes + self.ciphertext_bytes
    }

    /// Whether everything fits in `capacity_bytes`.
    pub fn fits(&self, capacity_bytes: f64) -> bool {
        self.total_bytes() <= capacity_bytes
    }

    /// Fraction of *key* material that must re-stream from HBM per use.
    ///
    /// Keys that fit stay resident and are charged once over `uses`
    /// reuses (`1/uses`); when the working set exceeds capacity, the
    /// overflowing fraction of every use streams cold. This is the
    /// principled version of the keyswitch builders'
    /// `hbm_key_fraction`.
    pub fn key_stream_fraction(&self, capacity_bytes: f64, uses: usize) -> f64 {
        let keys = self.evk_bytes + self.galois_bytes + self.bsk_bytes + self.ksk_bytes;
        if keys <= 0.0 {
            return 0.0;
        }
        let available = (capacity_bytes - self.ciphertext_bytes).max(0.0);
        let resident = keys.min(available);
        let cold = (keys - resident) / keys;
        let warm = resident / keys;
        cold + warm / uses.max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_buffer_matches_paper_geometry() {
        // §IV-J: "a total capacity of 2.81 MB and a total bandwidth of
        // 11.25 TB/s per local buffer".
        let lb = SramSpec::local_buffer();
        assert!(
            (lb.capacity_mib() - 2.8125).abs() < 1e-9,
            "{}",
            lb.capacity_mib()
        );
        assert!(
            (lb.tb_per_s(1.0) - 11.52).abs() < 0.3,
            "{}",
            lb.tb_per_s(1.0)
        );
    }

    #[test]
    fn scratchpad_matches_paper_geometry() {
        // §IV-J: "a total capacity of 45 MB and a bandwidth of 9 TB/s".
        let sp = SramSpec::scratchpad();
        assert!(
            (sp.capacity_mib() - 45.0).abs() < 1e-9,
            "{}",
            sp.capacity_mib()
        );
        assert!(
            (sp.tb_per_s(1.0) - 9.216).abs() < 0.3,
            "{}",
            sp.tb_per_s(1.0)
        );
    }

    #[test]
    fn chip_rollup_matches_table_iii() {
        // Table III: 180 MB scratchpad-class storage at 4 clusters;
        // Table XII: ~191 MB on-chip total.
        let m = MemorySystem::trinity();
        assert!((m.scratchpad_bytes() / MIB - 180.0).abs() < 1e-9);
        let total = m.total_mib();
        assert!((180.0..225.0).contains(&total), "total {total}");
        assert!(m.scratchpad_tb_per_s(1.0) > 35.0); // paper: 36 TB/s SPM
        assert!(m.local_buffer_tb_per_s(1.0) > 130.0); // paper: 135 TB/s
    }

    #[test]
    fn evk_formula_matches_workload_builder() {
        // Same arithmetic as trinity-workloads::ckks_ops::evk_bytes.
        let b = WorkingSet::ckks_evk_bytes(1 << 16, 35, 3, 35, 4.5);
        // beta=3, ext=48: 3 * 2 * 48 * 65536 * 4.5.
        assert!((b - (3.0 * 2.0 * 48.0 * 65536.0 * 4.5)).abs() < 1.0);
    }

    #[test]
    fn tfhe_keys_are_megabytes() {
        // Set-I: bsk = 500 GGSWs of 2*2*2=8 polys of 1024 32-bit words.
        let bsk = WorkingSet::tfhe_bsk_bytes(1024, 500, 1, 2, 4.0);
        assert!((bsk / MIB - 15.625).abs() < 0.1, "{}", bsk / MIB);
        let ksk = WorkingSet::tfhe_ksk_bytes(1024, 500, 1, 8, 4.0);
        assert!(ksk / MIB > 15.0 && ksk / MIB < 17.0, "{}", ksk / MIB);
    }

    #[test]
    fn bootstrap_key_set_must_stream() {
        // The full CKKS bootstrap key set (relin + ~48 rotation keys at
        // L = 35) is gigabytes — far beyond any scratchpad. This is the
        // pressure that motivated ARK's runtime key generation; the
        // model reports a nearly cold stream fraction.
        let trinity = MemorySystem::trinity().scratchpad_bytes();
        let ws = WorkingSet::ckks_bootstrap(1 << 16, 35, 3, 48, 4.5);
        assert!(!ws.fits(trinity), "49 switching keys exceed 180 MiB");
        assert!(ws.total_bytes() > 1e9);
        let f = ws.key_stream_fraction(trinity, 16);
        assert!(f > 0.9, "stream fraction {f}");
    }

    #[test]
    fn single_evk_residency_reproduces_default_key_fraction() {
        // One switching key *does* fit beside the live ciphertext
        // tiles; reused 4x within a BSGS stage it costs a quarter of a
        // cold stream per use — the workloads' default
        // `hbm_key_fraction = 0.25`.
        let trinity = MemorySystem::trinity().scratchpad_bytes();
        let ws = WorkingSet::ckks_bootstrap(1 << 16, 35, 3, 0, 4.5);
        assert!(ws.fits(trinity), "one evk + tiles fit 180 MiB");
        let f = ws.key_stream_fraction(trinity, 4);
        assert!((f - 0.25).abs() < 1e-12, "fraction {f}");
    }

    #[test]
    fn tfhe_keys_resident_on_trinity_stream_on_morphling() {
        let trinity = MemorySystem::trinity().scratchpad_bytes();
        let tfhe = WorkingSet {
            bsk_bytes: WorkingSet::tfhe_bsk_bytes(1024, 500, 1, 2, 4.0),
            ksk_bytes: WorkingSet::tfhe_ksk_bytes(1024, 500, 1, 8, 4.0),
            ..WorkingSet::default()
        };
        assert!(tfhe.fits(trinity));
        assert!(!tfhe.fits(11.0 * MIB), "Morphling must stream keys");
    }

    #[test]
    fn stream_fraction_limits() {
        let ws = WorkingSet {
            evk_bytes: 100.0 * MIB,
            ..WorkingSet::default()
        };
        // Infinite reuse, full residency: fraction -> 0.
        assert!(ws.key_stream_fraction(200.0 * MIB, 1_000_000) < 1e-3);
        // No capacity: every use streams cold.
        assert!((ws.key_stream_fraction(0.0, 8) - 1.0).abs() < 1e-12);
        // Single use: fraction 1 regardless of capacity.
        assert!((ws.key_stream_fraction(200.0 * MIB, 1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_working_set_streams_nothing() {
        let ws = WorkingSet::default();
        assert_eq!(ws.key_stream_fraction(MIB, 4), 0.0);
        assert!(ws.fits(0.0));
    }
}
