//! Accelerator configurations: Trinity (§IV, Table III) and the
//! baselines it is compared against (Table V).
//!
//! A configuration lists the functional components of one cluster plus
//! chip-level resources (cluster count, frequency, HBM bandwidth,
//! scratchpad capacity). Mapping policies (how CUs split between NTT
//! and MAC duty) live in [`crate::mapping`].

use crate::ntt_engine::NttEngineModel;

/// A functional component type inside a cluster.
#[derive(Debug, Clone, PartialEq)]
pub enum ComponentKind {
    /// Fixed 8-stage NTT unit, 256 elements/cycle (Trinity Group 0).
    Nttu,
    /// Transpose unit for four-step NTT.
    Tp,
    /// Configurable unit with `cols` columns of 128 PEs (Trinity Group 1).
    Cu {
        /// PE columns.
        cols: usize,
    },
    /// Automorphism unit.
    AutoU,
    /// Element-wise engine, 512 lanes.
    Ewe,
    /// Vector rotate / sample-extract unit.
    Rotator,
    /// Vector processing unit (ModSwitch, LWE keyswitch, decompose).
    Vpu,
    /// Base-conversion systolic unit (SHARP/ARK style), `lanes` MACs/cycle.
    BConvU {
        /// MAC lanes.
        lanes: usize,
    },
    /// FFT/IFFT unit of an FFT-based TFHE accelerator, `lanes`
    /// elements/cycle (Morphling/Strix style).
    Fftu {
        /// Elements per cycle.
        lanes: usize,
    },
    /// Vector MAC engine of a TFHE accelerator (Morphling VPE).
    VectorMac {
        /// MAC lanes.
        lanes: usize,
    },
    /// Fixed systolic array (the Trinity-TFHE-w/o-CU ablation), `depth`
    /// rows deep.
    SystolicArray {
        /// Array depth.
        depth: usize,
    },
}

impl ComponentKind {
    /// Short display name used in utilization reports.
    pub fn label(&self) -> String {
        match self {
            ComponentKind::Nttu => "NTTU".into(),
            ComponentKind::Tp => "TP".into(),
            ComponentKind::Cu { cols } => format!("CU-{cols}"),
            ComponentKind::AutoU => "AutoU".into(),
            ComponentKind::Ewe => "EWE".into(),
            ComponentKind::Rotator => "Rotator".into(),
            ComponentKind::Vpu => "VPU".into(),
            ComponentKind::BConvU { .. } => "BConvU".into(),
            ComponentKind::Fftu { .. } => "FFTU".into(),
            ComponentKind::VectorMac { .. } => "VMAC".into(),
            ComponentKind::SystolicArray { .. } => "SA".into(),
        }
    }
}

/// A component type with its per-cluster multiplicity.
#[derive(Debug, Clone)]
pub struct ComponentSpec {
    /// The component.
    pub kind: ComponentKind,
    /// Instances per cluster.
    pub count: usize,
}

/// A full accelerator configuration.
#[derive(Debug, Clone)]
pub struct AcceleratorConfig {
    /// Display name.
    pub name: String,
    /// Number of clusters.
    pub clusters: usize,
    /// Components per cluster.
    pub components: Vec<ComponentSpec>,
    /// Core frequency in GHz.
    pub freq_ghz: f64,
    /// Off-chip bandwidth in GB/s.
    pub hbm_gbps: f64,
    /// Inter-cluster NoC bandwidth in GB/s (all-to-all, §IV-I layout
    /// switches ride on it).
    pub noc_gbps: f64,
    /// On-chip scratchpad capacity in MiB (key residency check).
    pub scratchpad_mib: f64,
    /// Word size in bytes (36-bit => 4.5).
    pub word_bytes: f64,
    /// NTT engine model for this design's NTT pipelines.
    pub ntt_model: NttEngineModel,
}

impl AcceleratorConfig {
    /// Trinity's default configuration (Table III / Table V): 4 clusters,
    /// each with 2 NTTU + 2 TP, 1 CU-1 + 4 CU-2 + 1 CU-3, AutoU, EWE,
    /// Rotator, VPU; 1 TB/s HBM; 1 GHz; 180 MB scratchpad class storage.
    pub fn trinity() -> Self {
        Self::trinity_with_clusters(4)
    }

    /// Trinity with a different cluster count (the Fig. 15/16
    /// sensitivity study).
    pub fn trinity_with_clusters(clusters: usize) -> Self {
        Self {
            name: format!("Trinity-{clusters}c"),
            clusters,
            components: vec![
                ComponentSpec {
                    kind: ComponentKind::Nttu,
                    count: 2,
                },
                ComponentSpec {
                    kind: ComponentKind::Tp,
                    count: 2,
                },
                ComponentSpec {
                    kind: ComponentKind::Cu { cols: 1 },
                    count: 1,
                },
                ComponentSpec {
                    kind: ComponentKind::Cu { cols: 2 },
                    count: 4,
                },
                ComponentSpec {
                    kind: ComponentKind::Cu { cols: 3 },
                    count: 1,
                },
                ComponentSpec {
                    kind: ComponentKind::AutoU,
                    count: 1,
                },
                ComponentSpec {
                    kind: ComponentKind::Ewe,
                    count: 1,
                },
                ComponentSpec {
                    kind: ComponentKind::Rotator,
                    count: 1,
                },
                ComponentSpec {
                    kind: ComponentKind::Vpu,
                    count: 1,
                },
            ],
            freq_ghz: 1.0,
            // 2 x HBM2 stacks, 1 TB/s total (§IV-A).
            hbm_gbps: 1000.0,
            // All-to-all fully connected: each cluster injects a
            // 256-lane 36-bit flit per cycle (4 x 1152 GB/s).
            noc_gbps: 4608.0,
            scratchpad_mib: 45.0 * clusters as f64 / 4.0 * 4.0, // 45 MB total at 4 clusters
            word_bytes: 4.5,
            ntt_model: NttEngineModel::trinity(),
        }
    }

    /// SHARP (Table V): 4 clusters, each 1 NTTU + 1 BConvU + 1 AutoU +
    /// 1 EWE; 36-bit word; 1 TB/s HBM; 1 GHz.
    pub fn sharp() -> Self {
        Self {
            name: "SHARP".into(),
            clusters: 4,
            components: vec![
                ComponentSpec {
                    kind: ComponentKind::Nttu,
                    count: 1,
                },
                ComponentSpec {
                    kind: ComponentKind::Tp,
                    count: 1,
                },
                ComponentSpec {
                    kind: ComponentKind::BConvU { lanes: 2048 },
                    count: 1,
                },
                ComponentSpec {
                    kind: ComponentKind::AutoU,
                    count: 1,
                },
                ComponentSpec {
                    kind: ComponentKind::Ewe,
                    count: 1,
                },
            ],
            freq_ghz: 1.0,
            hbm_gbps: 1000.0,
            noc_gbps: 4608.0,
            scratchpad_mib: 198.0,
            word_bytes: 4.5,
            // SHARP's single NTTU per cluster is wider than Trinity's
            // (320 lanes, calibrated so the simulated Bootstrap gap
            // reproduces Table VI's SHARP 3.12 ms vs Trinity 1.92 ms
            // ratio; see EXPERIMENTS.md).
            ntt_model: {
                let mut m = NttEngineModel::f1_like();
                m.lanes = 320;
                m
            },
        }
    }

    /// Morphling (Table V): throughput-maximised TFHE accelerator —
    /// 8 FFT + 16 IFFT units, 64 VPEs, 1.2 GHz, 310 GB/s.
    pub fn morphling() -> Self {
        Self::morphling_at_freq(1.2)
    }

    /// Morphling clocked at a custom frequency (the paper's
    /// `Morphling-1GHz` comparison row).
    pub fn morphling_at_freq(freq_ghz: f64) -> Self {
        Self {
            name: if (freq_ghz - 1.2).abs() < 1e-9 {
                "Morphling".into()
            } else {
                format!("Morphling-{freq_ghz}GHz")
            },
            clusters: 1,
            components: vec![
                // 8 forward FFT + 16 inverse FFT pipelines, 16 elem/cycle.
                ComponentSpec {
                    kind: ComponentKind::Fftu { lanes: 16 },
                    count: 24,
                },
                ComponentSpec {
                    kind: ComponentKind::VectorMac { lanes: 64 },
                    count: 64,
                },
                ComponentSpec {
                    kind: ComponentKind::Rotator,
                    count: 8,
                },
                ComponentSpec {
                    kind: ComponentKind::Vpu,
                    count: 8,
                },
            ],
            freq_ghz,
            hbm_gbps: 310.0,
            // Single-cluster crossbar between the 8 HSC-style groups.
            noc_gbps: 512.0,
            scratchpad_mib: 11.0,
            word_bytes: 4.0,
            ntt_model: NttEngineModel::fab_like(),
        }
    }

    /// ARK (Table V): 4 clusters, each 1 NTTU + 1 BConvU + 1 AutoU +
    /// 2 MADU. ARK is a 64-bit-word design, so at comparable silicon
    /// its per-cycle element rates are roughly half of the 36-bit
    /// SHARP's — which is why the paper's Table VI places it
    /// consistently behind SHARP. The MADU pair is modelled as one
    /// EWE-equivalent of 36-bit-normalised throughput.
    pub fn ark() -> Self {
        Self {
            name: "ARK".into(),
            clusters: 4,
            components: vec![
                ComponentSpec {
                    kind: ComponentKind::Nttu,
                    count: 1,
                },
                ComponentSpec {
                    kind: ComponentKind::Tp,
                    count: 1,
                },
                ComponentSpec {
                    kind: ComponentKind::BConvU { lanes: 512 },
                    count: 1,
                },
                ComponentSpec {
                    kind: ComponentKind::AutoU,
                    count: 1,
                },
                ComponentSpec {
                    kind: ComponentKind::Ewe,
                    count: 1,
                },
            ],
            freq_ghz: 1.0,
            hbm_gbps: 1000.0,
            noc_gbps: 4608.0,
            scratchpad_mib: 512.0,
            word_bytes: 8.0,
            ntt_model: NttEngineModel::f1_like(),
        }
    }

    /// Strix (Table V): 8 HSC clusters, each with 1 FFT + 1 IFFT
    /// pipeline, 2 vector MACs, decompose/accumulate units and a
    /// rotator — a streaming TFHE design between Matcha and Morphling.
    pub fn strix() -> Self {
        Self {
            name: "Strix".into(),
            clusters: 8,
            components: vec![
                ComponentSpec {
                    kind: ComponentKind::Fftu { lanes: 8 },
                    count: 2,
                },
                ComponentSpec {
                    kind: ComponentKind::VectorMac { lanes: 64 },
                    count: 2,
                },
                ComponentSpec {
                    kind: ComponentKind::Rotator,
                    count: 1,
                },
                ComponentSpec {
                    kind: ComponentKind::Vpu,
                    count: 1,
                },
            ],
            freq_ghz: 1.0,
            hbm_gbps: 512.0,
            noc_gbps: 1024.0,
            scratchpad_mib: 16.0,
            word_bytes: 4.0,
            ntt_model: NttEngineModel::fab_like(),
        }
    }

    /// The Trinity-TFHE-w/o-CU ablation (§V-C): fixed NTT units plus a
    /// rigid depth-12 systolic array, no flexible mapping.
    pub fn trinity_tfhe_without_cu() -> Self {
        let mut cfg = Self::trinity();
        cfg.name = "Trinity-TFHE-w/o-CU".into();
        cfg.components = vec![
            ComponentSpec {
                kind: ComponentKind::Nttu,
                count: 2,
            },
            ComponentSpec {
                kind: ComponentKind::Tp,
                count: 2,
            },
            ComponentSpec {
                kind: ComponentKind::SystolicArray { depth: 12 },
                count: 1,
            },
            ComponentSpec {
                kind: ComponentKind::AutoU,
                count: 1,
            },
            ComponentSpec {
                kind: ComponentKind::Ewe,
                count: 1,
            },
            ComponentSpec {
                kind: ComponentKind::Rotator,
                count: 1,
            },
            ComponentSpec {
                kind: ComponentKind::Vpu,
                count: 1,
            },
        ];
        cfg
    }

    /// Cycles per second.
    pub fn cycles_per_second(&self) -> f64 {
        self.freq_ghz * 1e9
    }

    /// HBM bytes deliverable per core cycle.
    pub fn hbm_bytes_per_cycle(&self) -> f64 {
        self.hbm_gbps * 1e9 / (self.freq_ghz * 1e9)
    }

    /// Inter-cluster NoC bytes per core cycle.
    pub fn noc_bytes_per_cycle(&self) -> f64 {
        self.noc_gbps * 1e9 / (self.freq_ghz * 1e9)
    }

    /// Total instances of a component kind across the chip.
    pub fn total_count(&self, pred: impl Fn(&ComponentKind) -> bool) -> usize {
        self.clusters
            * self
                .components
                .iter()
                .filter(|s| pred(&s.kind))
                .map(|s| s.count)
                .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trinity_matches_table_iii() {
        let t = AcceleratorConfig::trinity();
        assert_eq!(t.clusters, 4);
        assert_eq!(t.total_count(|k| matches!(k, ComponentKind::Nttu)), 8);
        assert_eq!(t.total_count(|k| matches!(k, ComponentKind::Cu { .. })), 24);
        assert_eq!(t.total_count(|k| matches!(k, ComponentKind::Ewe)), 4);
        assert!((t.hbm_bytes_per_cycle() - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn cluster_scaling() {
        for c in [2usize, 4, 8] {
            let t = AcceleratorConfig::trinity_with_clusters(c);
            assert_eq!(t.clusters, c);
            assert_eq!(t.total_count(|k| matches!(k, ComponentKind::Nttu)), 2 * c);
        }
    }

    #[test]
    fn morphling_frequency_variants() {
        let m = AcceleratorConfig::morphling();
        assert!((m.freq_ghz - 1.2).abs() < 1e-12);
        let m1 = AcceleratorConfig::morphling_at_freq(1.0);
        assert!(m1.name.contains("1GHz") || m1.name.contains("1 GHz") || m1.name.contains("-1"));
        assert!(m1.cycles_per_second() < m.cycles_per_second());
    }

    #[test]
    fn labels() {
        assert_eq!(ComponentKind::Cu { cols: 2 }.label(), "CU-2");
        assert_eq!(ComponentKind::Nttu.label(), "NTTU");
    }
}
