//! Structural utilization models for NTT engine organisations —
//! the paper's Fig. 1 (motivation) and Fig. 9 (Trinity vs F1-like).
//!
//! Three organisations are modelled, matching the figure captions:
//!
//! * **F1-like** — "eight stages of butterfly units, processes 256
//!   elements in parallel per cycle". A deep fixed pipeline sized for
//!   long CKKS polynomials: every transform flows through a hardwired
//!   two-pass (phase-1/phase-2) four-step schedule, so short NTTs leave
//!   pipeline stages idle (utilization `log2(N) / 16` — ~0.5 at 2^8
//!   rising to 1.0 at 2^16).
//! * **FAB-like** — "a single butterfly stage capable of processing 2048
//!   elements in parallel per cycle". A wide single stage thrives on
//!   batches of short TFHE NTTs (near-full lanes) but long polynomials
//!   spill the stage-local buffers and become memory-bound between the
//!   `log2(N)` passes, degrading utilization.
//! * **Trinity** — NTTU (8 fixed stages) plus CU columns configured as
//!   extra butterfly stages (§IV-E): phase-2 lengths map onto exactly as
//!   many CU stages as needed, keeping utilization high across all
//!   lengths.
//!
//! The F1-like and Trinity curves are purely structural; the FAB-like
//! spill fraction is a calibrated constant documented in EXPERIMENTS.md
//! (buffer capacity 2^11 elements, memory-bound floor 0.30).

/// Which NTT engine organisation to model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NttEngineKind {
    /// Deep fixed pipeline (F1, SHARP, ARK style).
    F1Like,
    /// Wide single stage (FAB style).
    FabLike,
    /// Trinity's NTTU + configurable-unit collaboration.
    Trinity,
}

/// Utilization model parameters (defaults reproduce the paper's Fig. 1
/// setup: "comparable modular multipliers" between the two baselines).
#[derive(Debug, Clone)]
pub struct NttEngineModel {
    /// Engine organisation.
    pub kind: NttEngineKind,
    /// Butterfly stages in the pipeline (F1-like: 8, FAB-like: 1).
    pub stages: u32,
    /// Elements consumed per cycle (F1-like: 256, FAB-like: 2048).
    pub lanes: usize,
    /// Stage-local buffer capacity in elements (FAB-like spill point).
    pub stage_buffer: usize,
    /// Memory-bound utilization floor once the working set spills.
    pub spill_floor: f64,
    /// Peak achievable utilization (pipeline bubbles, twiddle feeds).
    pub peak: f64,
}

impl NttEngineModel {
    /// The Fig. 1 F1-like configuration.
    pub fn f1_like() -> Self {
        Self {
            kind: NttEngineKind::F1Like,
            stages: 8,
            lanes: 256,
            stage_buffer: usize::MAX,
            spill_floor: 1.0,
            peak: 0.95,
        }
    }

    /// The Fig. 1 FAB-like configuration.
    pub fn fab_like() -> Self {
        Self {
            kind: NttEngineKind::FabLike,
            stages: 1,
            lanes: 2048,
            stage_buffer: 1 << 11,
            spill_floor: 0.30,
            peak: 0.92,
        }
    }

    /// Trinity's NTTU + CU configuration (Fig. 9).
    pub fn trinity() -> Self {
        Self {
            kind: NttEngineKind::Trinity,
            stages: 8,
            lanes: 256,
            stage_buffer: usize::MAX,
            spill_floor: 1.0,
            peak: 0.95,
        }
    }

    /// Utilization when streaming `n`-point NTTs (0..=1).
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a power of two or below 4.
    pub fn utilization(&self, n: usize) -> f64 {
        assert!(n.is_power_of_two() && n >= 4);
        let log_n = n.trailing_zeros();
        match self.kind {
            NttEngineKind::F1Like => {
                // Hardwired two-pass four-step schedule: every transform
                // occupies 2 * stages stage-slots, of which log2(N) do
                // useful butterflies.
                let slots = 2 * self.stages;
                (log_n as f64 / slots as f64).min(1.0) * self.peak
            }
            NttEngineKind::FabLike => {
                // Small transforms batch into the wide stage at near-full
                // occupancy; once the working set exceeds the stage
                // buffer the inter-pass traffic is memory-bound.
                let resident = (self.stage_buffer as f64 / n as f64).min(1.0);
                let batch_occupancy = if n <= self.lanes {
                    1.0
                } else {
                    // One transform already fills the lanes.
                    1.0
                };
                let compute = self.peak * batch_occupancy;
                resident * compute + (1.0 - resident) * self.spill_floor * compute
            }
            NttEngineKind::Trinity => {
                // Phase-1 fills the NTTU's 8 stages; phase-2 maps onto
                // exactly log2(N) - 8 CU stages (none for N <= 256), so
                // only sub-256 transforms leave NTTU stages idle.
                if log_n <= self.stages {
                    (log_n as f64 / self.stages as f64) * self.peak
                } else {
                    self.peak
                }
            }
        }
    }

    /// Cycles to stream one `n`-point NTT through the engine, assuming
    /// back-to-back streaming (fully pipelined, §IV-B — no per-kernel
    /// fill charge).
    ///
    /// * F1-like: the hardwired two-pass four-step schedule always costs
    ///   two feed passes, whatever the length.
    /// * FAB-like: `log2(n)` single-stage passes, slowed by the spill
    ///   factor once the working set leaves the stage buffers.
    /// * Trinity: one feed pass while phase-2 fits the CU stages
    ///   (`n <= 2^15`, §IV-E), two NTTU passes at `n = 4M^2 = 2^16`.
    pub fn cycles(&self, n: usize) -> u64 {
        let feed = (n as f64 / self.lanes as f64).ceil();
        match self.kind {
            NttEngineKind::F1Like => (feed * 2.0).ceil() as u64,
            NttEngineKind::FabLike => {
                let passes = n.trailing_zeros() as f64;
                let resident = (self.stage_buffer as f64 / n as f64).min(1.0);
                let eff = resident + (1.0 - resident) * self.spill_floor;
                (passes * feed.max(1.0) / eff).ceil() as u64
            }
            NttEngineKind::Trinity => {
                let passes = if n <= (1 << 15) { 1.0 } else { 2.0 };
                (feed * passes).ceil() as u64
            }
        }
    }
}

/// Sweep utilization across polynomial lengths `2^8 ..= 2^16` — the
/// x-axis of Figs. 1 and 9.
pub fn utilization_sweep(model: &NttEngineModel) -> Vec<(usize, f64)> {
    (8..=16)
        .map(|log_n| {
            let n = 1usize << log_n;
            (n, model.utilization(n))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f1_like_matches_paper_endpoints() {
        let m = NttEngineModel::f1_like();
        // Fig. 1: ~0.5 at 2^8 rising towards ~0.9+ at 2^16.
        let lo = m.utilization(1 << 8);
        let hi = m.utilization(1 << 16);
        assert!((0.4..=0.55).contains(&lo), "2^8 utilization {lo}");
        assert!(hi > 0.9, "2^16 utilization {hi}");
        // Monotonic increase.
        let sweep = utilization_sweep(&m);
        for w in sweep.windows(2) {
            assert!(w[1].1 >= w[0].1);
        }
    }

    #[test]
    fn fab_like_matches_paper_endpoints() {
        let m = NttEngineModel::fab_like();
        // Fig. 1: ~0.9 at 2^8 falling towards ~0.3 at 2^16.
        let lo = m.utilization(1 << 8);
        let hi = m.utilization(1 << 16);
        assert!(lo > 0.85, "2^8 utilization {lo}");
        assert!((0.25..=0.40).contains(&hi), "2^16 utilization {hi}");
        let sweep = utilization_sweep(&m);
        for w in sweep.windows(2) {
            assert!(w[1].1 <= w[0].1, "FAB-like must be non-increasing");
        }
    }

    #[test]
    fn curves_cross_in_the_middle() {
        // The motivation of the paper's Fig. 1: neither fixed design
        // wins across the whole range.
        let f1 = NttEngineModel::f1_like();
        let fab = NttEngineModel::fab_like();
        assert!(fab.utilization(1 << 8) > f1.utilization(1 << 8));
        assert!(f1.utilization(1 << 16) > fab.utilization(1 << 16));
    }

    #[test]
    fn trinity_dominates_f1_on_average() {
        // Fig. 9: "average improvement in utilization by 1.2x".
        let f1 = NttEngineModel::f1_like();
        let tr = NttEngineModel::trinity();
        let avg = |m: &NttEngineModel| {
            let s = utilization_sweep(m);
            s.iter().map(|(_, u)| u).sum::<f64>() / s.len() as f64
        };
        let ratio = avg(&tr) / avg(&f1);
        assert!(
            (1.05..=1.4).contains(&ratio),
            "Trinity/F1 utilization ratio {ratio} outside Fig. 9 shape"
        );
        // Trinity never loses to F1-like at any length.
        for ((_, a), (_, b)) in utilization_sweep(&tr)
            .iter()
            .zip(utilization_sweep(&f1).iter())
        {
            assert!(a >= b);
        }
    }

    #[test]
    fn trinity_flat_above_256() {
        let tr = NttEngineModel::trinity();
        let u1 = tr.utilization(1 << 9);
        let u2 = tr.utilization(1 << 16);
        assert!((u1 - u2).abs() < 1e-9, "Trinity utilization must be flat");
    }

    #[test]
    fn cycles_scale_with_length() {
        let tr = NttEngineModel::trinity();
        assert!(tr.cycles(1 << 16) > tr.cycles(1 << 12));
        // 2^16 on 256 lanes, two passes: 512 cycles.
        assert_eq!(tr.cycles(1 << 16), 512);
        // TFHE-size transforms are single-pass thanks to CU phase-2.
        assert_eq!(tr.cycles(1 << 10), 4);
        // F1-like pays its hardwired second pass at every length.
        let f1 = NttEngineModel::f1_like();
        assert_eq!(f1.cycles(1 << 10), 8);
        assert_eq!(f1.cycles(1 << 16), 512);
    }
}
