//! Mapping policies: how components are grouped into execution lanes.
//!
//! This is the paper's §IV-F — "our strategy prioritizes fulfilling NTT
//! requirements first; subsequently, unutilized CUs are allocated for
//! the computations of BConv, Inner Product, and External Product"
//! (Fig. 7). Each policy turns an [`AcceleratorConfig`] into a
//! [`Machine`]: a set of lanes, each lane being one or more physical
//! components ganged behind a single kernel queue.

use crate::arch::{AcceleratorConfig, ComponentKind};
use crate::kernel::{KernelClass, KernelKind};
use crate::ntt_engine::NttEngineModel;

/// Restricts which kernels a MAC-class lane accepts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LaneFilter {
    /// Any kernel of the lane's class.
    Any,
    /// Base conversion only.
    BConvOnly,
    /// Inner product only.
    IpOnly,
    /// External-product MAC only.
    ExtProdOnly,
}

/// Cost model of one lane.
#[derive(Debug, Clone)]
pub enum LaneModel {
    /// An NTT pipeline with a structural utilization model.
    Ntt(NttEngineModel),
    /// A throughput resource: `elems` element-ops per cycle plus a
    /// pipeline-fill overhead per kernel.
    Throughput {
        /// Element-ops per cycle.
        elems: f64,
        /// Fixed pipeline-fill cycles per kernel.
        fill: u64,
    },
}

/// One execution lane.
#[derive(Debug, Clone)]
pub struct Lane {
    /// Display name (`c0.NTT1`, ...).
    pub name: String,
    /// Kernel class served.
    pub class: KernelClass,
    /// Additional kind filter.
    pub filter: LaneFilter,
    /// Cost model.
    pub model: LaneModel,
    /// Physical component labels busy while this lane works.
    pub members: Vec<String>,
}

impl Lane {
    /// Whether this lane can execute `kind`.
    pub fn accepts(&self, kind: &KernelKind) -> bool {
        if kind.class() != self.class {
            return false;
        }
        match self.filter {
            LaneFilter::Any => true,
            LaneFilter::BConvOnly => matches!(kind, KernelKind::BConv { .. }),
            LaneFilter::IpOnly => matches!(kind, KernelKind::InnerProduct { .. }),
            LaneFilter::ExtProdOnly => matches!(kind, KernelKind::ExtProductMac { .. }),
        }
    }

    /// Cycles to execute `kind` on this lane.
    pub fn cycles(&self, kind: &KernelKind) -> u64 {
        match (&self.model, kind) {
            (LaneModel::Ntt(m), KernelKind::Ntt { n } | KernelKind::Intt { n }) => m.cycles(*n),
            (LaneModel::Ntt(m), _) => {
                // NTT lanes also absorb their transposes.
                let _ = m;
                1
            }
            (LaneModel::Throughput { elems, fill }, k) => {
                (k.element_ops() as f64 / elems).ceil() as u64 + fill
            }
        }
    }
}

/// A machine: the scheduled view of an accelerator under one policy.
#[derive(Debug, Clone)]
pub struct Machine {
    /// Display name.
    pub name: String,
    /// All lanes.
    pub lanes: Vec<Lane>,
    /// Frequency in GHz.
    pub freq_ghz: f64,
    /// HBM bytes per cycle (a dedicated lane is created for it).
    pub hbm_bytes_per_cycle: f64,
}

/// CU allocation policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MappingPolicy {
    /// Trinity running CKKS (Fig. 7 a/b/d): NTTUs on NTT; CU-1 + CU-3 +
    /// 2 CU-2 on BConv; 2 CU-2 on Inner Product.
    CkksAdaptive,
    /// Ablation (§V-C): Inner Product on the EWE instead of CUs
    /// (`Trinity-CKKS-IP-use-EWE`).
    CkksIpUseEwe,
    /// Trinity running TFHE (Fig. 7 c/e): NTTU + CU-1/CU-3 + 2 CU-2 as
    /// two NTT pipelines; 2 CU-2 on the external product.
    TfheAdaptive,
    /// Ablation: fixed NTT units + rigid systolic array
    /// (`Trinity-TFHE-w/o-CU`).
    TfheFixed,
    /// Trinity running hybrid-scheme applications (Table X): the CU
    /// pool is split between the CKKS duties (BConv, Inner Product) and
    /// the TFHE external product, so kernels from both schemes schedule
    /// onto one machine "without distinguishing which FHE scheme the
    /// kernel comes from" (§IV-K).
    Hybrid,
    /// Generic mapping for non-Trinity baselines: every component forms
    /// its own lane, MAC-capable units take any MAC kernel, EWE also
    /// handles inner products (SHARP style).
    Baseline,
}

/// Builds the machine for a configuration and policy.
pub fn build_machine(cfg: &AcceleratorConfig, policy: MappingPolicy) -> Machine {
    let mut lanes = Vec::new();
    for c in 0..cfg.clusters {
        let p = |s: &str| format!("c{c}.{s}");
        match policy {
            MappingPolicy::CkksAdaptive | MappingPolicy::CkksIpUseEwe => {
                let ip_on_cu = policy == MappingPolicy::CkksAdaptive;
                // Two NTTU+TP pipelines.
                for i in 0..count(cfg, |k| matches!(k, ComponentKind::Nttu)) {
                    lanes.push(Lane {
                        name: p(&format!("NTT{i}")),
                        class: KernelClass::Ntt,
                        filter: LaneFilter::Any,
                        model: LaneModel::Ntt(cfg.ntt_model.clone()),
                        members: vec![p(&format!("NTTU{i}")), p(&format!("TP{i}"))],
                    });
                    lanes.push(Lane {
                        name: p(&format!("TPOSE{i}")),
                        class: KernelClass::Transpose,
                        filter: LaneFilter::Any,
                        model: LaneModel::Throughput {
                            elems: 256.0,
                            fill: 4,
                        },
                        members: vec![p(&format!("TP{i}"))],
                    });
                }
                // CU pools. Columns: CU-1 (1), CU-3 (3), CU-2s (2 each).
                // With IP on the CUs, two CU-2s are reserved for it; in
                // the IP-on-EWE ablation every column serves BConv.
                let cu2 = count(cfg, |k| matches!(k, ComponentKind::Cu { cols: 2 }));
                let bconv_cols = if ip_on_cu {
                    1 + 3 + 2 * (cu2.saturating_sub(2))
                } else {
                    1 + 3 + 2 * cu2
                };
                lanes.push(Lane {
                    name: p("BCONV"),
                    class: KernelClass::Mac,
                    filter: LaneFilter::BConvOnly,
                    model: LaneModel::Throughput {
                        // 256 MACs per 128-PE column: the paper's SRAMs
                        // are double-pumped (SS V-A), feeding each PE two
                        // operand pairs per core cycle.
                        elems: 256.0 * bconv_cols as f64,
                        fill: 4,
                    },
                    members: {
                        let mut m = vec![p("CU-1"), p("CU-3")];
                        for i in 2..cu2 {
                            m.push(p(&format!("CU-2{}", (b'a' + i as u8) as char)));
                        }
                        m
                    },
                });
                if ip_on_cu {
                    lanes.push(Lane {
                        name: p("IP"),
                        class: KernelClass::Mac,
                        filter: LaneFilter::IpOnly,
                        model: LaneModel::Throughput {
                            elems: 1024.0,
                            fill: 2,
                        },
                        members: vec![p("CU-2a"), p("CU-2b")],
                    });
                    // Dynamic scheduling (SS IV-F): the IP CU-2s absorb
                    // BConv work when idle. (The scheduler books lanes
                    // independently; the mild overcommit this allows is
                    // the price of modelling dynamic reallocation.)
                    lanes.push(Lane {
                        name: p("BCONV2"),
                        class: KernelClass::Mac,
                        filter: LaneFilter::BConvOnly,
                        model: LaneModel::Throughput {
                            elems: 1024.0,
                            fill: 4,
                        },
                        members: vec![p("CU-2a"), p("CU-2b")],
                    });
                }
                // EWE: element-wise ops, plus IP in the ablation.
                lanes.push(Lane {
                    name: p("EWE"),
                    class: KernelClass::Ewe,
                    filter: LaneFilter::Any,
                    model: LaneModel::Throughput {
                        elems: 512.0,
                        fill: 2,
                    },
                    members: vec![p("EWE")],
                });
                if !ip_on_cu {
                    lanes.push(Lane {
                        name: p("EWE-IP"),
                        class: KernelClass::Mac,
                        filter: LaneFilter::IpOnly,
                        // The EWE has no fused MAC: each accumulation is a
                        // ModMul pass plus a ModAdd pass, halving its
                        // effective inner-product rate (the cost the
                        // CU offload removes, Figs. 10-11).
                        model: LaneModel::Throughput {
                            elems: 256.0,
                            fill: 2,
                        },
                        members: vec![p("EWE")],
                    });
                }
                push_simple(
                    &mut lanes,
                    &p("AUTO"),
                    KernelClass::Auto,
                    256.0,
                    &[p("AutoU")],
                );
                push_simple(
                    &mut lanes,
                    &p("ROT"),
                    KernelClass::Rotator,
                    256.0,
                    &[p("Rotator")],
                );
                push_simple(&mut lanes, &p("VPU"), KernelClass::Vpu, 1024.0, &[p("VPU")]);
            }
            MappingPolicy::TfheAdaptive => {
                // Two NTT pipelines: NTTU + CU stages (CU-1 + one CU-2,
                // CU-3 + one CU-2). CU assistance keeps single-pass
                // transforms for N in (256, 2048].
                for (i, extra) in [("CU-1", "CU-2a"), ("CU-3", "CU-2b")].iter().enumerate() {
                    lanes.push(Lane {
                        name: p(&format!("NTT{i}")),
                        class: KernelClass::Ntt,
                        filter: LaneFilter::Any,
                        model: LaneModel::Ntt(NttEngineModel::trinity()),
                        members: vec![
                            p(&format!("NTTU{i}")),
                            p(extra.0.to_string().as_str()),
                            p(extra.1.to_string().as_str()),
                        ],
                    });
                }
                // External product on the remaining two CU-2s.
                lanes.push(Lane {
                    name: p("EXTP"),
                    class: KernelClass::Mac,
                    filter: LaneFilter::Any,
                    model: LaneModel::Throughput {
                        elems: 1024.0,
                        fill: 2,
                    },
                    members: vec![p("CU-2c"), p("CU-2d")],
                });
                push_simple(&mut lanes, &p("EWE"), KernelClass::Ewe, 512.0, &[p("EWE")]);
                push_simple(
                    &mut lanes,
                    &p("AUTO"),
                    KernelClass::Auto,
                    256.0,
                    &[p("AutoU")],
                );
                push_simple(
                    &mut lanes,
                    &p("ROT"),
                    KernelClass::Rotator,
                    256.0,
                    &[p("Rotator")],
                );
                push_simple(&mut lanes, &p("VPU"), KernelClass::Vpu, 1024.0, &[p("VPU")]);
            }
            MappingPolicy::Hybrid => {
                // Shared NTTU+TP pipelines, as in the CKKS mapping.
                for i in 0..count(cfg, |k| matches!(k, ComponentKind::Nttu)) {
                    lanes.push(Lane {
                        name: p(&format!("NTT{i}")),
                        class: KernelClass::Ntt,
                        filter: LaneFilter::Any,
                        model: LaneModel::Ntt(cfg.ntt_model.clone()),
                        members: vec![p(&format!("NTTU{i}")), p(&format!("TP{i}"))],
                    });
                    lanes.push(Lane {
                        name: p(&format!("TPOSE{i}")),
                        class: KernelClass::Transpose,
                        filter: LaneFilter::Any,
                        model: LaneModel::Throughput {
                            elems: 256.0,
                            fill: 4,
                        },
                        members: vec![p(&format!("TP{i}"))],
                    });
                }
                // CU split: CU-1 + CU-3 on BConv, two CU-2s on Inner
                // Product, the remaining two CU-2s on the external
                // product — each scheme keeps dedicated MAC columns so
                // phase changes need no drain (§IV-H).
                lanes.push(Lane {
                    name: p("BCONV"),
                    class: KernelClass::Mac,
                    filter: LaneFilter::BConvOnly,
                    model: LaneModel::Throughput {
                        elems: 256.0 * 4.0,
                        fill: 4,
                    },
                    members: vec![p("CU-1"), p("CU-3")],
                });
                lanes.push(Lane {
                    name: p("IP"),
                    class: KernelClass::Mac,
                    filter: LaneFilter::IpOnly,
                    model: LaneModel::Throughput {
                        elems: 1024.0,
                        fill: 2,
                    },
                    members: vec![p("CU-2a"), p("CU-2b")],
                });
                lanes.push(Lane {
                    name: p("EXTP"),
                    class: KernelClass::Mac,
                    filter: LaneFilter::ExtProdOnly,
                    model: LaneModel::Throughput {
                        elems: 1024.0,
                        fill: 2,
                    },
                    members: vec![p("CU-2c"), p("CU-2d")],
                });
                push_simple(&mut lanes, &p("EWE"), KernelClass::Ewe, 512.0, &[p("EWE")]);
                push_simple(
                    &mut lanes,
                    &p("AUTO"),
                    KernelClass::Auto,
                    256.0,
                    &[p("AutoU")],
                );
                push_simple(
                    &mut lanes,
                    &p("ROT"),
                    KernelClass::Rotator,
                    256.0,
                    &[p("Rotator")],
                );
                push_simple(&mut lanes, &p("VPU"), KernelClass::Vpu, 1024.0, &[p("VPU")]);
            }
            MappingPolicy::TfheFixed => {
                // Rigid design: NTTUs alone (two passes for N > 256 —
                // modelled by the F1-like fixed-pipeline curve) and a
                // fixed systolic array for MACs.
                for i in 0..count(cfg, |k| matches!(k, ComponentKind::Nttu)) {
                    lanes.push(Lane {
                        name: p(&format!("NTT{i}")),
                        class: KernelClass::Ntt,
                        filter: LaneFilter::Any,
                        model: LaneModel::Ntt(NttEngineModel::f1_like()),
                        members: vec![p(&format!("NTTU{i}"))],
                    });
                }
                let depth = cfg
                    .components
                    .iter()
                    .find_map(|s| match s.kind {
                        ComponentKind::SystolicArray { depth } => Some(depth),
                        _ => None,
                    })
                    .unwrap_or(12);
                lanes.push(Lane {
                    name: p("SA"),
                    class: KernelClass::Mac,
                    filter: LaneFilter::Any,
                    model: LaneModel::Throughput {
                        // Rigid array: matrix shapes rarely match depth 12,
                        // so a third of the slots stall (SS V-C ablation).
                        elems: 256.0 * depth as f64 / 3.0,
                        fill: 32,
                    },
                    members: vec![p("SA")],
                });
                push_simple(&mut lanes, &p("EWE"), KernelClass::Ewe, 512.0, &[p("EWE")]);
                push_simple(
                    &mut lanes,
                    &p("AUTO"),
                    KernelClass::Auto,
                    256.0,
                    &[p("AutoU")],
                );
                push_simple(
                    &mut lanes,
                    &p("ROT"),
                    KernelClass::Rotator,
                    256.0,
                    &[p("Rotator")],
                );
                push_simple(&mut lanes, &p("VPU"), KernelClass::Vpu, 1024.0, &[p("VPU")]);
            }
            MappingPolicy::Baseline => {
                let mut nttu_idx = 0usize;
                for spec in &cfg.components {
                    for i in 0..spec.count {
                        match &spec.kind {
                            ComponentKind::Nttu => {
                                lanes.push(Lane {
                                    name: p(&format!("NTT{nttu_idx}")),
                                    class: KernelClass::Ntt,
                                    filter: LaneFilter::Any,
                                    model: LaneModel::Ntt(cfg.ntt_model.clone()),
                                    members: vec![p(&format!("NTTU{nttu_idx}"))],
                                });
                                nttu_idx += 1;
                            }
                            ComponentKind::Tp => {
                                push_simple(
                                    &mut lanes,
                                    &p(&format!("TPOSE{i}")),
                                    KernelClass::Transpose,
                                    256.0,
                                    &[p(&format!("TP{i}"))],
                                );
                            }
                            ComponentKind::Fftu { lanes: l } => {
                                lanes.push(Lane {
                                    name: p(&format!("FFT{i}")),
                                    class: KernelClass::Ntt,
                                    filter: LaneFilter::Any,
                                    model: LaneModel::Throughput {
                                        // FFT feed: n elements at l/cycle,
                                        // element_ops = n/2*logn, so scale.
                                        elems: *l as f64 * 5.0,
                                        fill: 2,
                                    },
                                    members: vec![p(&format!("FFTU{i}"))],
                                });
                            }
                            ComponentKind::BConvU { lanes: l } => {
                                lanes.push(Lane {
                                    name: p(&format!("BCONV{i}")),
                                    class: KernelClass::Mac,
                                    filter: LaneFilter::BConvOnly,
                                    model: LaneModel::Throughput {
                                        elems: *l as f64,
                                        fill: 4,
                                    },
                                    members: vec![p(&format!("BConvU{i}"))],
                                });
                            }
                            ComponentKind::VectorMac { lanes: l } => {
                                lanes.push(Lane {
                                    name: p(&format!("VMAC{i}")),
                                    class: KernelClass::Mac,
                                    filter: LaneFilter::Any,
                                    model: LaneModel::Throughput {
                                        elems: *l as f64,
                                        fill: 2,
                                    },
                                    members: vec![p(&format!("VMAC{i}"))],
                                });
                            }
                            ComponentKind::Ewe => {
                                push_simple(
                                    &mut lanes,
                                    &p("EWE"),
                                    KernelClass::Ewe,
                                    512.0,
                                    &[p("EWE")],
                                );
                                // SHARP-style: inner products on the EWE,
                                // at mul+add (non-fused) rate.
                                lanes.push(Lane {
                                    name: p("EWE-IP"),
                                    class: KernelClass::Mac,
                                    filter: LaneFilter::IpOnly,
                                    model: LaneModel::Throughput {
                                        elems: 256.0,
                                        fill: 2,
                                    },
                                    members: vec![p("EWE")],
                                });
                            }
                            ComponentKind::AutoU => {
                                push_simple(
                                    &mut lanes,
                                    &p("AUTO"),
                                    KernelClass::Auto,
                                    256.0,
                                    &[p("AutoU")],
                                );
                                // Baselines without a dedicated Rotator
                                // run vector rotations / extractions on
                                // their shuffle (automorphism) network.
                                push_simple(
                                    &mut lanes,
                                    &p("AUTO-ROT"),
                                    KernelClass::Rotator,
                                    256.0,
                                    &[p("AutoU")],
                                );
                            }
                            ComponentKind::Rotator => {
                                push_simple(
                                    &mut lanes,
                                    &p(&format!("ROT{i}")),
                                    KernelClass::Rotator,
                                    256.0,
                                    &[p(&format!("Rotator{i}"))],
                                );
                            }
                            ComponentKind::Vpu => {
                                push_simple(
                                    &mut lanes,
                                    &p(&format!("VPU{i}")),
                                    KernelClass::Vpu,
                                    1024.0,
                                    &[p(&format!("VPU{i}"))],
                                );
                                // Baseline TFHE accelerators decompose on
                                // their vector units (Morphling Decomp).
                                push_simple(
                                    &mut lanes,
                                    &p(&format!("VPU-EWE{i}")),
                                    KernelClass::Ewe,
                                    512.0,
                                    &[p(&format!("VPU{i}"))],
                                );
                            }
                            ComponentKind::Cu { cols } => {
                                lanes.push(Lane {
                                    name: p(&format!("CU{i}")),
                                    class: KernelClass::Mac,
                                    filter: LaneFilter::Any,
                                    model: LaneModel::Throughput {
                                        elems: 256.0 * *cols as f64,
                                        fill: 4,
                                    },
                                    members: vec![p(&format!("CU{i}"))],
                                });
                            }
                            ComponentKind::SystolicArray { depth } => {
                                lanes.push(Lane {
                                    name: p(&format!("SA{i}")),
                                    class: KernelClass::Mac,
                                    filter: LaneFilter::Any,
                                    model: LaneModel::Throughput {
                                        elems: 128.0 * *depth as f64 / 3.0,
                                        fill: 32,
                                    },
                                    members: vec![p(&format!("SA{i}"))],
                                });
                            }
                        }
                    }
                }
            }
        }
    }
    // The shared HBM is one fluid lane.
    lanes.push(Lane {
        name: "HBM".into(),
        class: KernelClass::Hbm,
        filter: LaneFilter::Any,
        model: LaneModel::Throughput {
            elems: cfg.hbm_bytes_per_cycle(),
            fill: 64,
        },
        members: vec!["HBM".into()],
    });
    // The inter-cluster NoC carries the §IV-I layout switches.
    lanes.push(Lane {
        name: "NOC".into(),
        class: KernelClass::Noc,
        filter: LaneFilter::Any,
        model: LaneModel::Throughput {
            elems: cfg.noc_bytes_per_cycle(),
            fill: 8,
        },
        members: vec!["NoC".into()],
    });
    Machine {
        name: format!("{} [{policy:?}]", cfg.name),
        lanes,
        freq_ghz: cfg.freq_ghz,
        hbm_bytes_per_cycle: cfg.hbm_bytes_per_cycle(),
    }
}

fn count(cfg: &AcceleratorConfig, pred: impl Fn(&ComponentKind) -> bool) -> usize {
    cfg.components
        .iter()
        .filter(|s| pred(&s.kind))
        .map(|s| s.count)
        .sum()
}

fn push_simple(
    lanes: &mut Vec<Lane>,
    name: &str,
    class: KernelClass,
    elems: f64,
    members: &[String],
) {
    lanes.push(Lane {
        name: name.to_string(),
        class,
        filter: LaneFilter::Any,
        model: LaneModel::Throughput { elems, fill: 2 },
        members: members.to_vec(),
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::AcceleratorConfig;

    #[test]
    fn trinity_ckks_machine_shape() {
        let m = build_machine(&AcceleratorConfig::trinity(), MappingPolicy::CkksAdaptive);
        let ntt = m
            .lanes
            .iter()
            .filter(|l| l.class == KernelClass::Ntt)
            .count();
        assert_eq!(ntt, 8, "2 NTT lanes x 4 clusters");
        let ip = m
            .lanes
            .iter()
            .filter(|l| l.filter == LaneFilter::IpOnly)
            .count();
        assert_eq!(ip, 4, "one IP lane per cluster");
        assert!(m.lanes.iter().any(|l| l.class == KernelClass::Hbm));
    }

    #[test]
    fn ip_use_ewe_moves_ip_to_ewe() {
        let m = build_machine(&AcceleratorConfig::trinity(), MappingPolicy::CkksIpUseEwe);
        let ip_lane = m
            .lanes
            .iter()
            .find(|l| l.filter == LaneFilter::IpOnly)
            .unwrap();
        assert!(ip_lane.members.iter().all(|c| c.contains("EWE")));
    }

    #[test]
    fn lane_filters_work() {
        let m = build_machine(&AcceleratorConfig::trinity(), MappingPolicy::CkksAdaptive);
        let bconv = KernelKind::BConv {
            rows_in: 4,
            rows_out: 8,
            n: 1 << 16,
        };
        let ip = KernelKind::InnerProduct {
            digits: 3,
            limbs: 10,
            outputs: 2,
            n: 1 << 16,
        };
        let bconv_lanes: Vec<_> = m.lanes.iter().filter(|l| l.accepts(&bconv)).collect();
        let ip_lanes: Vec<_> = m.lanes.iter().filter(|l| l.accepts(&ip)).collect();
        assert!(!bconv_lanes.is_empty() && !ip_lanes.is_empty());
        assert!(bconv_lanes
            .iter()
            .all(|l| l.filter == LaneFilter::BConvOnly));
        assert!(ip_lanes.iter().all(|l| l.filter == LaneFilter::IpOnly));
    }

    #[test]
    fn ntt_lane_cycle_costs() {
        let m = build_machine(&AcceleratorConfig::trinity(), MappingPolicy::CkksAdaptive);
        let lane = m
            .lanes
            .iter()
            .find(|l| l.class == KernelClass::Ntt)
            .unwrap();
        let short = lane.cycles(&KernelKind::Ntt { n: 1 << 12 });
        let long = lane.cycles(&KernelKind::Ntt { n: 1 << 16 });
        assert!(long > short);
    }

    #[test]
    fn hybrid_machine_accepts_both_schemes() {
        let m = build_machine(&AcceleratorConfig::trinity(), MappingPolicy::Hybrid);
        let ip = KernelKind::InnerProduct {
            digits: 3,
            limbs: 1,
            outputs: 2,
            n: 1 << 16,
        };
        let bconv = KernelKind::BConv {
            rows_in: 4,
            rows_out: 8,
            n: 1 << 16,
        };
        let extp = KernelKind::ExtProductMac {
            rows: 4,
            outputs: 2,
            n: 1024,
        };
        for k in [ip, bconv, extp] {
            assert!(
                m.lanes.iter().any(|l| l.accepts(&k)),
                "hybrid machine rejects {k:?}"
            );
        }
        // Schemes keep disjoint MAC columns: no member overlap between
        // the IP and EXTP lanes.
        let members = |name: &str| {
            m.lanes
                .iter()
                .filter(|l| l.name.contains(name))
                .flat_map(|l| l.members.clone())
                .collect::<std::collections::HashSet<_>>()
        };
        assert!(members("IP").is_disjoint(&members("EXTP")));
    }

    #[test]
    fn tfhe_fixed_is_slower_per_ntt() {
        let flexible = build_machine(&AcceleratorConfig::trinity(), MappingPolicy::TfheAdaptive);
        let fixed = build_machine(
            &AcceleratorConfig::trinity_tfhe_without_cu(),
            MappingPolicy::TfheFixed,
        );
        let k = KernelKind::Ntt { n: 1024 };
        let fl = flexible
            .lanes
            .iter()
            .find(|l| l.class == KernelClass::Ntt)
            .unwrap()
            .cycles(&k);
        let fx = fixed
            .lanes
            .iter()
            .find(|l| l.class == KernelClass::Ntt)
            .unwrap()
            .cycles(&k);
        assert!(fx > fl, "fixed design must pay extra passes: {fx} vs {fl}");
    }
}
