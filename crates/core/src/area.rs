//! Area and power model — the paper's Table XI, Table XII and Fig. 16.
//!
//! Per-component circuit area (mm², TSMC 7 nm) and power (W) are
//! calibrated to the paper's published Table XI. The chip roll-up is
//! structural: clusters scale linearly, the all-to-all inter-cluster
//! NoC scales quadratically with cluster count, scratchpad and HBM PHY
//! are fixed — which reproduces the paper's Fig. 16 sensitivity and its
//! quoted 28%/36% area/power reduction at 2 clusters and ~2x area at 8.

use crate::arch::{AcceleratorConfig, ComponentKind};

/// Area (mm^2) and power (W) of one component instance, 7 nm.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AreaPower {
    /// Silicon area in mm².
    pub area_mm2: f64,
    /// Power in watts.
    pub power_w: f64,
}

impl AreaPower {
    /// Component-wise sum.
    pub fn plus(self, other: AreaPower) -> AreaPower {
        AreaPower {
            area_mm2: self.area_mm2 + other.area_mm2,
            power_w: self.power_w + other.power_w,
        }
    }

    /// Scalar multiple.
    pub fn times(self, k: f64) -> AreaPower {
        AreaPower {
            area_mm2: self.area_mm2 * k,
            power_w: self.power_w * k,
        }
    }
}

/// Per-instance constants calibrated to Table XI.
///
/// Table XI lists `2x NTTU = 3.20 mm² / 4.24 W`, `4x CU-2 = 1.44 / 2.48`,
/// etc.; values here are per instance. The transpose unit is folded into
/// the NTTU entry as in the paper. Units absent from Table XI (baseline
/// components) are derived from the CU per-column cost (0.18 mm² /
/// 0.31 W per 128-PE column) and the FFT literature, and marked below.
pub fn component_cost(kind: &ComponentKind) -> AreaPower {
    let per_column = AreaPower {
        area_mm2: 0.18,
        power_w: 0.31,
    };
    match kind {
        ComponentKind::Nttu => AreaPower {
            area_mm2: 1.60,
            power_w: 2.12,
        },
        ComponentKind::Tp => AreaPower {
            area_mm2: 0.0,
            power_w: 0.0,
        }, // folded into NTTU
        ComponentKind::Cu { cols } => {
            per_column.times(*cols as f64 * if *cols == 3 { 0.55 / 0.54 } else { 1.0 })
        }
        ComponentKind::AutoU => AreaPower {
            area_mm2: 0.04,
            power_w: 0.22,
        },
        ComponentKind::Ewe => AreaPower {
            area_mm2: 1.87,
            power_w: 4.47,
        },
        ComponentKind::Rotator => AreaPower {
            area_mm2: 2.40,
            power_w: 8.57,
        },
        ComponentKind::Vpu => AreaPower {
            area_mm2: 0.05,
            power_w: 0.07,
        },
        // Derived: one 128-lane MAC column per 128 lanes.
        ComponentKind::BConvU { lanes } => per_column.times(*lanes as f64 / 128.0),
        ComponentKind::VectorMac { lanes } => per_column.times(*lanes as f64 / 128.0),
        ComponentKind::SystolicArray { depth } => per_column.times(*depth as f64),
        // FFT pipelines burn roughly 1.7x an NTT butterfly column due to
        // complex arithmetic (paper §VII: FFT "adds to the hardware
        // complexity").
        ComponentKind::Fftu { lanes } => per_column.times(*lanes as f64 / 128.0 * 1.7),
    }
}

/// Full chip area/power breakdown.
#[derive(Debug, Clone)]
pub struct ChipBudget {
    /// Per-component rows: (label, count, per-instance cost).
    pub rows: Vec<(String, usize, AreaPower)>,
    /// One cluster's logic + local buffers + intra-cluster NoC.
    pub cluster: AreaPower,
    /// All clusters.
    pub clusters_total: AreaPower,
    /// Inter-cluster NoC.
    pub inter_noc: AreaPower,
    /// Scratchpad SRAM.
    pub scratchpad: AreaPower,
    /// HBM PHY.
    pub hbm_phy: AreaPower,
    /// Chip total.
    pub total: AreaPower,
}

/// Fixed chip-level constants calibrated to Table XI (4-cluster chip).
const LOCAL_BUFFER: AreaPower = AreaPower {
    area_mm2: 6.45,
    power_w: 1.41,
};
const INTRA_NOC: AreaPower = AreaPower {
    area_mm2: 0.10,
    power_w: 13.24,
};
const INTER_NOC_4C: AreaPower = AreaPower {
    area_mm2: 20.60,
    power_w: 27.00,
};
const SCRATCHPAD: AreaPower = AreaPower {
    area_mm2: 41.94,
    power_w: 26.80,
};
const HBM_PHY: AreaPower = AreaPower {
    area_mm2: 29.60,
    power_w: 31.80,
};

/// Computes the chip budget for a configuration.
pub fn chip_budget(cfg: &AcceleratorConfig) -> ChipBudget {
    let mut cluster = AreaPower {
        area_mm2: 0.0,
        power_w: 0.0,
    };
    let mut rows = Vec::new();
    for spec in &cfg.components {
        let unit = component_cost(&spec.kind);
        rows.push((spec.kind.label(), spec.count, unit));
        cluster = cluster.plus(unit.times(spec.count as f64));
    }
    cluster = cluster.plus(LOCAL_BUFFER).plus(INTRA_NOC);
    let clusters_total = cluster.times(cfg.clusters as f64);
    // All-to-all topology: cost grows with the square of cluster count.
    let inter_noc = INTER_NOC_4C.times((cfg.clusters as f64 / 4.0).powi(2));
    let total = clusters_total
        .plus(inter_noc)
        .plus(SCRATCHPAD)
        .plus(HBM_PHY);
    ChipBudget {
        rows,
        cluster,
        clusters_total,
        inter_noc,
        scratchpad: SCRATCHPAD,
        hbm_phy: HBM_PHY,
        total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::AcceleratorConfig;

    #[test]
    fn trinity_cluster_matches_table_xi() {
        let b = chip_budget(&AcceleratorConfig::trinity());
        // Table XI: cluster = 16.28 mm^2, 35.94 W.
        assert!(
            (b.cluster.area_mm2 - 16.28).abs() < 0.15,
            "cluster area {}",
            b.cluster.area_mm2
        );
        assert!(
            (b.cluster.power_w - 35.94).abs() < 0.3,
            "cluster power {}",
            b.cluster.power_w
        );
    }

    #[test]
    fn trinity_chip_matches_table_xi_total() {
        let b = chip_budget(&AcceleratorConfig::trinity());
        // Table XI: total = 157.26 mm^2, 229.36 W.
        assert!(
            (b.total.area_mm2 - 157.26).abs() < 0.6,
            "total area {}",
            b.total.area_mm2
        );
        assert!(
            (b.total.power_w - 229.36).abs() < 1.2,
            "total power {}",
            b.total.power_w
        );
    }

    #[test]
    fn cluster_sensitivity_matches_fig16() {
        // Paper §VI-E: 4 -> 2 clusters reduces area by ~28% and power by
        // ~36%; 4 -> 8 clusters roughly doubles area.
        let b2 = chip_budget(&AcceleratorConfig::trinity_with_clusters(2));
        let b4 = chip_budget(&AcceleratorConfig::trinity_with_clusters(4));
        let b8 = chip_budget(&AcceleratorConfig::trinity_with_clusters(8));
        let area_drop = 1.0 - b2.total.area_mm2 / b4.total.area_mm2;
        let power_drop = 1.0 - b2.total.power_w / b4.total.power_w;
        assert!(
            (0.2..=0.4).contains(&area_drop),
            "2-cluster area drop {area_drop}"
        );
        assert!(
            (0.25..=0.45).contains(&power_drop),
            "2-cluster power drop {power_drop}"
        );
        let area_x = b8.total.area_mm2 / b4.total.area_mm2;
        assert!((1.6..=2.3).contains(&area_x), "8-cluster area x{area_x}");
    }

    #[test]
    fn trinity_smaller_than_sharp_plus_morphling() {
        // The paper's headline: Trinity area is 85% of SHARP+Morphling.
        // SHARP is 178.8 mm^2 (7 nm) and Morphling 13 mm^2 scaled to
        // 12 nm — at 7 nm roughly 4.0 mm^2 (both from Table XII).
        let trinity = chip_budget(&AcceleratorConfig::trinity()).total.area_mm2;
        let sharp_plus_morphling = 178.8 + 4.0;
        let ratio = trinity / sharp_plus_morphling;
        assert!(
            (0.80..=0.90).contains(&ratio),
            "area ratio {ratio} (paper: 0.85)"
        );
    }

    #[test]
    fn component_rows_cover_all_kinds() {
        let b = chip_budget(&AcceleratorConfig::trinity());
        let labels: Vec<&str> = b.rows.iter().map(|(l, _, _)| l.as_str()).collect();
        for want in [
            "NTTU", "CU-1", "CU-2", "CU-3", "AutoU", "EWE", "Rotator", "VPU",
        ] {
            assert!(labels.contains(&want), "missing {want}");
        }
    }
}
