//! # trinity-core — the Trinity accelerator architecture model
//!
//! The paper's primary contribution as an executable model: a
//! kernel-level, event-driven cycle simulator of the Trinity multi-modal
//! FHE accelerator (MICRO 2024) and of the baselines it is evaluated
//! against.
//!
//! * [`kernel`] — the finite kernel taxonomy both CKKS and TFHE reduce
//!   to (§II), with dependency DAGs and the Fig. 2 NTT/MAC breakdown.
//! * [`ntt_engine`] — structural utilization models of F1-like,
//!   FAB-like and Trinity NTT organisations (Figs. 1 and 9).
//! * [`arch`] — component inventories: Trinity (Table III) plus SHARP,
//!   Morphling and ablation configurations (Table V).
//! * [`mapping`] — the adaptive CU allocation policies of §IV-F
//!   (Fig. 7) that turn a configuration into schedulable lanes.
//! * [`sched`] — the list scheduler producing latencies and
//!   per-component utilizations (Tables VI–X, Figs. 10–14).
//! * [`area`] — the Table XI area/power model and Fig. 16 scaling.
//!
//! # Reduction discipline
//!
//! The cycle model charges no standalone canonicalisation kernels:
//! operands are assumed to move between butterfly and MAC stages in
//! redundant `[0, 2p)` form and to be fully reduced only at memory
//! writeback (hence the Fig. 2 NTT/MAC split has no reduction slice).
//! The functional crates implement the same discipline — lazy residue
//! chains in `fhe_ckks::key_switch`, the HMult tensor, and the TFHE
//! external product, verified bit-identical against strict oracles by
//! `tests/lazy_chains.rs` — so `measured` and `modeled` rows account
//! reduction work identically. See `README.md`.
//!
//! # Examples
//!
//! ```
//! use trinity_core::arch::AcceleratorConfig;
//! use trinity_core::kernel::{KernelGraph, KernelKind};
//! use trinity_core::mapping::{build_machine, MappingPolicy};
//! use trinity_core::sched::simulate;
//!
//! let machine = build_machine(&AcceleratorConfig::trinity(), MappingPolicy::CkksAdaptive);
//! let mut g = KernelGraph::new();
//! let ntt = g.add(KernelKind::Ntt { n: 1 << 16 }, &[]);
//! g.add(KernelKind::Intt { n: 1 << 16 }, &[ntt]);
//! let result = simulate(&machine, &g);
//! assert!(result.total_cycles > 0);
//! ```

#![warn(missing_docs)]

pub mod arch;
pub mod area;
pub mod kernel;
pub mod mapping;
pub mod memory;
pub mod ntt_engine;
pub mod sched;

pub use arch::{AcceleratorConfig, ComponentKind, ComponentSpec};
pub use area::{chip_budget, AreaPower, ChipBudget};
pub use kernel::{ClassBreakdown, Kernel, KernelClass, KernelGraph, KernelId, KernelKind};
pub use mapping::{build_machine, Lane, LaneFilter, LaneModel, Machine, MappingPolicy};
pub use memory::{MemorySystem, SramSpec, WorkingSet};
pub use ntt_engine::{utilization_sweep, NttEngineKind, NttEngineModel};
pub use sched::{simulate, SimResult};
