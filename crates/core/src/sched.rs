//! Event-driven list scheduler: maps a kernel DAG onto a machine.
//!
//! Kernels are visited in topological (insertion) order; each is placed
//! on the compatible lane that lets it finish earliest. Per-component
//! busy time is tracked for the utilization figures (paper Figs. 9–14),
//! and the makespan yields the latency/throughput tables (VI–X).

use std::collections::BTreeMap;

use crate::kernel::{KernelClass, KernelGraph};
use crate::mapping::Machine;

/// One kernel's placement in the schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Placement {
    /// Kernel id in the graph.
    pub kernel: usize,
    /// Lane index in the machine.
    pub lane: usize,
    /// Start cycle.
    pub start: u64,
    /// End cycle (exclusive).
    pub end: u64,
}

/// Result of simulating one kernel graph on one machine.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Makespan in cycles.
    pub total_cycles: u64,
    /// Wall-clock milliseconds at the machine's frequency.
    pub time_ms: f64,
    /// Busy cycles per physical component label.
    pub component_busy: BTreeMap<String, u64>,
    /// Busy cycles per kernel class.
    pub class_busy: BTreeMap<String, u64>,
    /// Number of kernels executed.
    pub kernel_count: usize,
    /// Per-kernel placements in graph order (lane, start, end).
    pub placements: Vec<Placement>,
}

impl SimResult {
    /// Utilization of a component (busy / makespan).
    pub fn utilization(&self, component: &str) -> f64 {
        if self.total_cycles == 0 {
            return 0.0;
        }
        *self.component_busy.get(component).unwrap_or(&0) as f64 / self.total_cycles as f64
    }

    /// Mean utilization over components whose label contains `pat`
    /// (e.g. `"NTTU"` averages all NTTUs of all clusters).
    pub fn mean_utilization(&self, pat: &str) -> f64 {
        let matches: Vec<f64> = self
            .component_busy
            .iter()
            .filter(|(k, _)| k.contains(pat))
            .map(|(_, &v)| v as f64 / self.total_cycles.max(1) as f64)
            .collect();
        if matches.is_empty() {
            0.0
        } else {
            matches.iter().sum::<f64>() / matches.len() as f64
        }
    }

    /// Mean utilization across every compute component (excludes HBM).
    pub fn overall_utilization(&self) -> f64 {
        let vals: Vec<f64> = self
            .component_busy
            .iter()
            .filter(|(k, _)| *k != "HBM")
            .map(|(_, &v)| v as f64 / self.total_cycles.max(1) as f64)
            .collect();
        if vals.is_empty() {
            0.0
        } else {
            vals.iter().sum::<f64>() / vals.len() as f64
        }
    }

    /// Operations per second for a batch of `ops` independent
    /// operations simulated in one graph.
    pub fn ops_per_second(&self, ops: usize) -> f64 {
        ops as f64 / (self.time_ms / 1e3)
    }

    /// Renders a text timeline of the schedule: one row per lane that
    /// did work, `width` character columns across the makespan, `#`
    /// where the lane is busy. Debugging aid for mapping decisions.
    pub fn timeline(&self, machine: &crate::mapping::Machine, width: usize) -> String {
        let width = width.max(10);
        let span = self.total_cycles.max(1);
        let mut rows: Vec<(usize, Vec<bool>)> = Vec::new();
        for p in &self.placements {
            let row = match rows.iter().position(|(l, _)| *l == p.lane) {
                Some(i) => i,
                None => {
                    rows.push((p.lane, vec![false; width]));
                    rows.len() - 1
                }
            };
            let from = (p.start * width as u64 / span) as usize;
            let to = ((p.end * width as u64).div_ceil(span) as usize).min(width);
            for c in &mut rows[row].1[from..to.max(from + 1).min(width)] {
                *c = true;
            }
        }
        rows.sort_by_key(|(l, _)| *l);
        let mut out = String::new();
        for (lane, cells) in rows {
            let name = &machine.lanes[lane].name;
            out.push_str(&format!("{name:<14} |"));
            out.extend(cells.iter().map(|&b| if b { '#' } else { '.' }));
            out.push_str("|\n");
        }
        out
    }
}

/// Per-lane reservation state with backfilling: the lane tracks its
/// tail (end of the last reservation) plus a bounded list of free gaps
/// left behind by dependency stalls, so independent kernel chains
/// interleave the way a hardware scheduler would pipeline them.
#[derive(Debug, Clone, Default)]
struct LaneState {
    tail: u64,
    /// Disjoint free intervals before `tail`, sorted by start.
    gaps: Vec<(u64, u64)>,
}

/// Gaps smaller than this are discarded (they model pipeline slack a
/// real scheduler could not exploit either).
const MIN_GAP: u64 = 4;
/// Bound on tracked gaps per lane to keep scheduling near-linear. When
/// the list is full the oldest gap is dropped (least useful as the
/// schedule's frontier advances).
const MAX_GAPS: usize = 2048;

impl LaneState {
    /// Earliest start for a reservation of `dur` cycles not before
    /// `ready`, considering gaps; returns the candidate start.
    fn earliest_start(&self, ready: u64, dur: u64) -> u64 {
        for &(gs, ge) in &self.gaps {
            let s = gs.max(ready);
            if s + dur <= ge {
                return s;
            }
        }
        ready.max(self.tail)
    }

    /// Commits a reservation at `start` for `dur` cycles.
    fn reserve(&mut self, start: u64, dur: u64) {
        let end = start + dur;
        // Inside a gap?
        for i in 0..self.gaps.len() {
            let (gs, ge) = self.gaps[i];
            if start >= gs && end <= ge {
                self.gaps.remove(i);
                if start - gs >= MIN_GAP {
                    self.gaps.insert(i, (gs, start));
                }
                if ge - end >= MIN_GAP {
                    let at = if start - gs >= MIN_GAP { i + 1 } else { i };
                    self.gaps.insert(at, (end, ge));
                }
                return;
            }
        }
        // Appending after the tail: record the new gap if any.
        if start > self.tail && start - self.tail >= MIN_GAP {
            if self.gaps.len() >= MAX_GAPS {
                self.gaps.remove(0);
            }
            self.gaps.push((self.tail, start));
        }
        self.tail = self.tail.max(end);
    }
}

/// Simulates `graph` on `machine`.
///
/// # Panics
///
/// Panics if a kernel has no compatible lane in the machine.
pub fn simulate(machine: &Machine, graph: &KernelGraph) -> SimResult {
    let lanes = &machine.lanes;
    let mut states: Vec<LaneState> = vec![LaneState::default(); lanes.len()];
    let mut finish = vec![0u64; graph.len()];
    let mut component_busy: BTreeMap<String, u64> = BTreeMap::new();
    let mut class_busy: BTreeMap<String, u64> = BTreeMap::new();
    let mut placements: Vec<Placement> = Vec::with_capacity(graph.len());

    for k in graph.kernels() {
        let ready = k.deps.iter().map(|&d| finish[d]).max().unwrap_or(0);
        // Choose the compatible lane with the earliest finish time.
        let mut best: Option<(usize, u64, u64)> = None; // (lane, start, dur)
        for (li, lane) in lanes.iter().enumerate() {
            if !lane.accepts(&k.kind) {
                continue;
            }
            let dur = lane.cycles(&k.kind).max(1);
            let start = states[li].earliest_start(ready, dur);
            if best.is_none_or(|(_, bs, bd)| start + dur < bs + bd) {
                best = Some((li, start, dur));
            }
        }
        let (li, start, dur) = best.unwrap_or_else(|| {
            panic!(
                "no lane accepts kernel {:?} on machine {}",
                k.kind, machine.name
            )
        });
        states[li].reserve(start, dur);
        finish[k.id] = start + dur;
        placements.push(Placement {
            kernel: k.id,
            lane: li,
            start,
            end: start + dur,
        });
        for member in &lanes[li].members {
            *component_busy.entry(member.clone()).or_insert(0) += dur;
        }
        *class_busy
            .entry(format!("{:?}", k.kind.class()))
            .or_insert(0) += dur;
        let _ = KernelClass::Ntt;
    }

    let total_cycles = finish.iter().copied().max().unwrap_or(0);
    SimResult {
        total_cycles,
        time_ms: total_cycles as f64 / (machine.freq_ghz * 1e9) * 1e3,
        component_busy,
        class_busy,
        kernel_count: graph.len(),
        placements,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::AcceleratorConfig;
    use crate::kernel::{KernelGraph, KernelKind};
    use crate::mapping::{build_machine, MappingPolicy};

    fn trinity_ckks() -> Machine {
        build_machine(&AcceleratorConfig::trinity(), MappingPolicy::CkksAdaptive)
    }

    #[test]
    fn empty_graph_is_instant() {
        let r = simulate(&trinity_ckks(), &KernelGraph::new());
        assert_eq!(r.total_cycles, 0);
    }

    #[test]
    fn independent_kernels_run_in_parallel() {
        let m = trinity_ckks();
        let mut one = KernelGraph::new();
        one.add(KernelKind::Ntt { n: 1 << 16 }, &[]);
        let t1 = simulate(&m, &one).total_cycles;

        let mut eight = KernelGraph::new();
        for _ in 0..8 {
            eight.add(KernelKind::Ntt { n: 1 << 16 }, &[]);
        }
        let t8 = simulate(&m, &eight).total_cycles;
        // 8 NTT lanes exist, so 8 independent NTTs take the same time.
        assert_eq!(t1, t8);

        let mut sixteen = KernelGraph::new();
        for _ in 0..16 {
            sixteen.add(KernelKind::Ntt { n: 1 << 16 }, &[]);
        }
        let t16 = simulate(&m, &sixteen).total_cycles;
        assert_eq!(t16, 2 * t8, "9th..16th NTT queue behind the first 8");
    }

    #[test]
    fn dependencies_serialize() {
        let m = trinity_ckks();
        let mut g = KernelGraph::new();
        let a = g.add(KernelKind::Ntt { n: 1 << 16 }, &[]);
        g.add(KernelKind::Intt { n: 1 << 16 }, &[a]);
        let r = simulate(&m, &g);
        let single = {
            let mut g1 = KernelGraph::new();
            g1.add(KernelKind::Ntt { n: 1 << 16 }, &[]);
            simulate(&m, &g1).total_cycles
        };
        assert_eq!(r.total_cycles, 2 * single);
    }

    #[test]
    fn utilization_accounting() {
        let m = trinity_ckks();
        let mut g = KernelGraph::new();
        for _ in 0..32 {
            g.add(KernelKind::Ntt { n: 1 << 16 }, &[]);
        }
        let r = simulate(&m, &g);
        // All 8 NTTU pipelines saturated.
        let u = r.mean_utilization("NTTU");
        assert!(u > 0.95, "NTTU utilization {u}");
        // EWE untouched.
        assert_eq!(r.mean_utilization("EWE"), 0.0);
    }

    #[test]
    fn hbm_transfers_costed() {
        let m = trinity_ckks();
        let mut g = KernelGraph::new();
        // 1 MB at 1000 B/cycle = ~1000 cycles + fill.
        g.add(KernelKind::HbmLoad { bytes: 1_000_000 }, &[]);
        let r = simulate(&m, &g);
        assert!((1000..1200).contains(&r.total_cycles), "{}", r.total_cycles);
    }

    #[test]
    fn backfill_interleaves_independent_chains() {
        // Two dependency chains alternating between NTT and EWE work:
        // without backfilling each chain's idle gaps, the second chain
        // would queue entirely behind the first.
        let m = trinity_ckks();
        let chain = |g: &mut KernelGraph| {
            let mut prev: Option<usize> = None;
            for _ in 0..50 {
                let deps: Vec<usize> = prev.into_iter().collect();
                let a = g.add(KernelKind::Ntt { n: 1 << 16 }, &deps);
                let b = g.add(
                    KernelKind::ModMul {
                        limbs: 36,
                        n: 1 << 16,
                    },
                    &[a],
                );
                prev = Some(b);
            }
        };
        let mut one = KernelGraph::new();
        chain(&mut one);
        let t1 = simulate(&m, &one).total_cycles;
        let mut many = KernelGraph::new();
        for _ in 0..8 {
            chain(&mut many);
        }
        let t8 = simulate(&m, &many).total_cycles;
        // 8 chains across 8 NTT lanes + 4 EWE lanes: far better than 8x.
        assert!(
            (t8 as f64) < 3.0 * t1 as f64,
            "8 chains took {t8} vs single {t1} — backfilling broken"
        );
    }

    #[test]
    fn ops_per_second_consistent_with_time() {
        let m = trinity_ckks();
        let mut g = KernelGraph::new();
        for _ in 0..8 {
            g.add(KernelKind::Ntt { n: 1 << 16 }, &[]);
        }
        let r = simulate(&m, &g);
        let ops = r.ops_per_second(8);
        let expect = 8.0 / (r.time_ms / 1e3);
        assert!((ops - expect).abs() / expect < 1e-12);
    }

    #[test]
    fn mean_utilization_empty_pattern_is_zero() {
        let m = trinity_ckks();
        let mut g = KernelGraph::new();
        g.add(KernelKind::Ntt { n: 1 << 16 }, &[]);
        let r = simulate(&m, &g);
        assert_eq!(r.mean_utilization("NoSuchUnit"), 0.0);
        assert!(r.overall_utilization() > 0.0);
    }

    #[test]
    fn placements_are_consistent() {
        let m = trinity_ckks();
        let mut g = KernelGraph::new();
        let a = g.add(KernelKind::Ntt { n: 1 << 16 }, &[]);
        let b = g.add(KernelKind::Intt { n: 1 << 16 }, &[a]);
        let r = simulate(&m, &g);
        assert_eq!(r.placements.len(), 2);
        let pa = r.placements.iter().find(|p| p.kernel == a).unwrap();
        let pb = r.placements.iter().find(|p| p.kernel == b).unwrap();
        // Dependency order respected; end never exceeds the makespan.
        assert!(pb.start >= pa.end);
        assert!(r.placements.iter().all(|p| p.end <= r.total_cycles));
        assert!(r.placements.iter().all(|p| p.start < p.end));
    }

    #[test]
    fn timeline_renders_busy_lanes() {
        let m = trinity_ckks();
        let mut g = KernelGraph::new();
        let a = g.add(KernelKind::Ntt { n: 1 << 16 }, &[]);
        g.add(KernelKind::Intt { n: 1 << 16 }, &[a]);
        let r = simulate(&m, &g);
        let tl = r.timeline(&m, 40);
        // Exactly one lane did work (the chain shares one NTT lane).
        assert_eq!(tl.lines().count(), 1);
        let line = tl.lines().next().unwrap();
        assert!(line.contains('#'), "busy marks missing: {line}");
        // Fully busy across the makespan: no idle dots inside.
        let cells: String = line.chars().skip_while(|&c| c != '|').collect();
        assert!(!cells.trim_matches('|').contains('.'), "{line}");
    }

    #[test]
    #[should_panic(expected = "no lane accepts")]
    fn missing_lane_panics() {
        // Morphling has no AutoU: an Automorphism kernel must panic.
        let m = build_machine(&AcceleratorConfig::morphling(), MappingPolicy::Baseline);
        let mut g = KernelGraph::new();
        g.add(
            KernelKind::Automorphism {
                limbs: 1,
                n: 1 << 10,
            },
            &[],
        );
        let _ = simulate(&m, &g);
    }
}
