//! Structural invariants of the accelerator model.
//!
//! Two families:
//!
//! * **mapping** — every machine a policy builds must stay inside its
//!   configuration's physical inventory: lanes only reference clusters
//!   that exist, and no cluster's lanes name more distinct instances of
//!   a component than the cluster owns (capacity).
//! * **scheduling** — every simulated kernel flow must be
//!   cycle-consistent (per-lane reservations never overlap, durations
//!   match the lane cost model, the makespan closes the schedule) and
//!   dependency-ordered (no kernel starts before its inputs finish).

use std::collections::BTreeMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use trinity_core::arch::AcceleratorConfig;
use trinity_core::kernel::{KernelGraph, KernelKind};
use trinity_core::mapping::{build_machine, LaneModel, Machine, MappingPolicy};
use trinity_core::sched::simulate;

const POLICIES: [MappingPolicy; 6] = [
    MappingPolicy::CkksAdaptive,
    MappingPolicy::CkksIpUseEwe,
    MappingPolicy::TfheAdaptive,
    MappingPolicy::TfheFixed,
    MappingPolicy::Hybrid,
    MappingPolicy::Baseline,
];

/// Chip-level lanes (shared HBM and NoC) carry no cluster prefix.
fn is_chip_level(member: &str) -> bool {
    member == "HBM" || member == "NoC"
}

/// Splits `c3.NTTU1` into (cluster 3, "NTTU1").
fn split_member(member: &str) -> (usize, &str) {
    let dot = member.find('.').unwrap_or_else(|| {
        panic!("member {member} has no cluster prefix");
    });
    let cluster = member[1..dot]
        .parse::<usize>()
        .unwrap_or_else(|_| panic!("member {member} has a malformed cluster prefix"));
    (cluster, &member[dot + 1..])
}

/// Whether instance label `name` (e.g. `NTTU1`, `CU-2a`, `EWE`) is an
/// instance of the component display label `base` (e.g. `NTTU`,
/// `CU-2`, `EWE`): exact match, or base plus one alphanumeric
/// instance suffix.
fn is_instance_of(name: &str, base: &str) -> bool {
    if name == base {
        return true;
    }
    match name.strip_prefix(base) {
        Some(rest) => rest.len() == 1 && rest.chars().all(|c| c.is_ascii_alphanumeric()),
        None => false,
    }
}

#[test]
fn mapping_respects_cluster_capacity() {
    let configs = [
        AcceleratorConfig::trinity(),
        AcceleratorConfig::trinity_with_clusters(1),
        AcceleratorConfig::trinity_with_clusters(8),
    ];
    for cfg in &configs {
        for policy in POLICIES {
            let machine = build_machine(cfg, policy);
            // Collect the distinct physical instances each cluster uses.
            let mut per_cluster: BTreeMap<usize, Vec<&str>> = BTreeMap::new();
            for lane in &machine.lanes {
                assert!(
                    !lane.members.is_empty(),
                    "{}: lane {} has no physical members",
                    machine.name,
                    lane.name
                );
                for member in &lane.members {
                    if is_chip_level(member) {
                        continue;
                    }
                    let (cluster, name) = split_member(member);
                    assert!(
                        cluster < cfg.clusters,
                        "{}: lane {} references cluster {cluster} of {}",
                        machine.name,
                        lane.name,
                        cfg.clusters
                    );
                    let names = per_cluster.entry(cluster).or_default();
                    if !names.contains(&name) {
                        names.push(name);
                    }
                }
            }
            // Capacity: distinct instances of each component label must
            // not exceed the per-cluster inventory.
            for (cluster, names) in &per_cluster {
                for spec in &cfg.components {
                    let base = spec.kind.label();
                    let used = names.iter().filter(|n| is_instance_of(n, &base)).count();
                    assert!(
                        used <= spec.count,
                        "{}: cluster {cluster} uses {used} x {base}, owns {}",
                        machine.name,
                        spec.count
                    );
                }
            }
        }
    }
}

#[test]
fn lanes_never_gang_components_across_clusters() {
    for policy in POLICIES {
        let machine = build_machine(&AcceleratorConfig::trinity(), policy);
        for lane in &machine.lanes {
            let clusters: Vec<usize> = lane
                .members
                .iter()
                .filter(|m| !is_chip_level(m))
                .map(|m| split_member(m).0)
                .collect();
            assert!(
                clusters.windows(2).all(|w| w[0] == w[1]),
                "{}: lane {} gangs components from clusters {clusters:?}",
                machine.name,
                lane.name
            );
        }
    }
}

/// A workload exercising every lane class the Hybrid machine exposes:
/// a keyswitch-shaped CKKS stretch, a TFHE external product, element
/// ops, data movement, and conversion kernels.
fn mixed_graph(seed: u64, rounds: usize) -> KernelGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = KernelGraph::new();
    let n = 1usize << 14;
    let mut frontier: Vec<usize> = Vec::new();
    for _ in 0..rounds {
        let load = g.add(KernelKind::HbmLoad { bytes: 1 << 20 }, &frontier);
        let ntt = g.add(KernelKind::Ntt { n }, &[load]);
        let bconv = g.add(
            KernelKind::BConv {
                rows_in: rng.gen_range(1..8),
                rows_out: rng.gen_range(1..20),
                n,
            },
            &[ntt],
        );
        let ip = g.add(
            KernelKind::InnerProduct {
                digits: rng.gen_range(1..4),
                limbs: rng.gen_range(1..20),
                outputs: 2,
                n,
            },
            &[bconv],
        );
        let extp = g.add(
            KernelKind::ExtProductMac {
                rows: 4,
                outputs: 2,
                n: 1 << 11,
            },
            &[ip],
        );
        let auto = g.add(
            KernelKind::Automorphism {
                limbs: rng.gen_range(1..20),
                n,
            },
            &[extp],
        );
        let mul = g.add(
            KernelKind::ModMul {
                limbs: rng.gen_range(1..20),
                n,
            },
            &[auto],
        );
        let rot = g.add(KernelKind::RotateVec { n }, &[mul]);
        let sw = g.add(KernelKind::LayoutSwitch { bytes: 1 << 18 }, &[rot]);
        let intt = g.add(KernelKind::Intt { n }, &[sw]);
        frontier = vec![intt];
    }
    g
}

/// Checks every cycle-consistency invariant of one simulation result.
fn assert_cycle_consistent(machine: &Machine, graph: &KernelGraph) {
    let r = simulate(machine, graph);
    assert_eq!(r.kernel_count, graph.len());
    assert_eq!(r.placements.len(), graph.len());

    let mut lane_busy: BTreeMap<usize, u64> = BTreeMap::new();
    let mut per_lane: BTreeMap<usize, Vec<(u64, u64)>> = BTreeMap::new();
    let mut max_end = 0u64;
    for (i, (p, k)) in r.placements.iter().zip(graph.kernels()).enumerate() {
        assert_eq!(p.kernel, i, "placements must be in graph order");
        assert!(p.start < p.end, "kernel {i} has an empty reservation");
        max_end = max_end.max(p.end);

        // Duration matches the lane's cost model exactly.
        let lane = &machine.lanes[p.lane];
        assert!(
            lane.accepts(&k.kind),
            "{}: kernel {:?} placed on incompatible lane {}",
            machine.name,
            k.kind,
            lane.name
        );
        assert_eq!(
            p.end - p.start,
            lane.cycles(&k.kind).max(1),
            "kernel {i} duration disagrees with the lane cost model"
        );

        // Dependencies strictly precede.
        for &d in &k.deps {
            assert!(
                r.placements[d].end <= p.start,
                "kernel {i} starts at {} before dep {d} ends at {}",
                p.start,
                r.placements[d].end
            );
        }

        *lane_busy.entry(p.lane).or_insert(0) += p.end - p.start;
        per_lane.entry(p.lane).or_default().push((p.start, p.end));
    }

    // The makespan closes the schedule.
    assert_eq!(r.total_cycles, max_end);

    // Per-lane reservations never overlap, and never exceed the makespan.
    for (lane, mut ivs) in per_lane {
        ivs.sort_unstable();
        for w in ivs.windows(2) {
            assert!(
                w[0].1 <= w[1].0,
                "{}: lane {} double-books [{}, {}) and [{}, {})",
                machine.name,
                machine.lanes[lane].name,
                w[0].0,
                w[0].1,
                w[1].0,
                w[1].1
            );
        }
        assert!(lane_busy[&lane] <= r.total_cycles);
    }
}

#[test]
fn scheduler_is_cycle_consistent_and_dependency_ordered() {
    let machine = build_machine(&AcceleratorConfig::trinity(), MappingPolicy::Hybrid);
    for seed in 0..4u64 {
        let g = mixed_graph(seed, 12);
        assert_cycle_consistent(&machine, &g);
    }
}

#[test]
fn scheduler_invariants_hold_on_every_policy() {
    // A graph restricted to kernels every policy has lanes for.
    let mut g = KernelGraph::new();
    let n = 1usize << 13;
    let load = g.add(KernelKind::HbmLoad { bytes: 1 << 20 }, &[]);
    let ntt = g.add(KernelKind::Ntt { n }, &[load]);
    let bconv = g.add(
        KernelKind::BConv {
            rows_in: 4,
            rows_out: 8,
            n,
        },
        &[ntt],
    );
    let mul = g.add(KernelKind::ModMul { limbs: 8, n }, &[bconv]);
    let auto = g.add(KernelKind::Automorphism { limbs: 8, n }, &[mul]);
    g.add(KernelKind::Intt { n }, &[auto]);

    for policy in POLICIES {
        let machine = build_machine(&AcceleratorConfig::trinity(), policy);
        assert_cycle_consistent(&machine, &g);
    }
}

/// Serial chains must schedule strictly end-to-start: the makespan of a
/// dependency chain equals the sum of its kernels' durations.
#[test]
fn dependency_chain_makespan_is_sum_of_durations() {
    let machine = build_machine(&AcceleratorConfig::trinity(), MappingPolicy::CkksAdaptive);
    let n = 1usize << 14;
    let mut g = KernelGraph::new();
    let mut prev = None;
    for _ in 0..10 {
        let deps: Vec<usize> = prev.into_iter().collect();
        let a = g.add(KernelKind::Ntt { n }, &deps);
        let b = g.add(KernelKind::Intt { n }, &[a]);
        prev = Some(b);
    }
    let r = simulate(&machine, &g);
    let sum: u64 = r.placements.iter().map(|p| p.end - p.start).sum();
    assert_eq!(r.total_cycles, sum);
}

/// NTT lanes must cost NTT kernels through the structural engine model,
/// never the generic throughput fallback (a regression here silently
/// flattens Fig. 1).
#[test]
fn ntt_lanes_use_the_structural_model() {
    for policy in POLICIES {
        let machine = build_machine(&AcceleratorConfig::trinity(), policy);
        let ntt_lane_models: Vec<bool> = machine
            .lanes
            .iter()
            .filter(|l| l.accepts(&KernelKind::Ntt { n: 1 << 14 }))
            .map(|l| matches!(l.model, LaneModel::Ntt(_)))
            .collect();
        assert!(
            !ntt_lane_models.is_empty(),
            "{}: no lane accepts NTT kernels",
            machine.name
        );
        if policy != MappingPolicy::Baseline {
            assert!(
                ntt_lane_models.iter().all(|&b| b),
                "{}: an NTT lane fell back to the throughput model",
                machine.name
            );
        }
    }
}
