//! Property-based tests for the scheduler and machine models.
//!
//! Random kernel DAGs probe the invariants any correct list scheduler
//! must keep: results are deterministic, no component is busy longer
//! than the makespan, dependencies serialize, and adding work never
//! shortens the schedule.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use trinity_core::arch::AcceleratorConfig;
use trinity_core::kernel::{KernelGraph, KernelKind};
use trinity_core::mapping::{build_machine, Machine, MappingPolicy};
use trinity_core::sched::simulate;

fn hybrid_machine() -> Machine {
    build_machine(&AcceleratorConfig::trinity(), MappingPolicy::Hybrid)
}

/// Builds a random DAG of schedulable kernels; every kernel depends on
/// a random subset of its predecessors.
fn random_graph(seed: u64, size: usize) -> KernelGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = KernelGraph::new();
    for i in 0..size {
        let kind = match rng.gen_range(0..7) {
            0 => KernelKind::Ntt {
                n: 1usize << rng.gen_range(8..=16),
            },
            1 => KernelKind::Intt {
                n: 1usize << rng.gen_range(8..=16),
            },
            2 => KernelKind::BConv {
                rows_in: rng.gen_range(1..8),
                rows_out: rng.gen_range(1..40),
                n: 1 << 14,
            },
            3 => KernelKind::ModMul {
                limbs: rng.gen_range(1..36),
                n: 1 << 14,
            },
            4 => KernelKind::ModAdd {
                limbs: rng.gen_range(1..36),
                n: 1 << 14,
            },
            5 => KernelKind::Automorphism {
                limbs: rng.gen_range(1..36),
                n: 1 << 14,
            },
            _ => KernelKind::HbmLoad {
                bytes: rng.gen_range(1..4_000_000),
            },
        };
        let deps: Vec<usize> = (0..i)
            .filter(|_| rng.gen_bool((4.0 / i.max(1) as f64).min(1.0)))
            .collect();
        g.add(kind, &deps);
    }
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Scheduling is a pure function of the graph.
    #[test]
    fn schedule_is_deterministic(seed in any::<u64>()) {
        let m = hybrid_machine();
        let g = random_graph(seed, 40);
        let a = simulate(&m, &g);
        let b = simulate(&m, &g);
        prop_assert_eq!(a.total_cycles, b.total_cycles);
        prop_assert_eq!(a.component_busy, b.component_busy);
    }

    /// No component accumulates more busy cycles than the makespan.
    #[test]
    fn busy_time_bounded_by_makespan(seed in any::<u64>()) {
        let m = hybrid_machine();
        let g = random_graph(seed, 50);
        let r = simulate(&m, &g);
        for (name, &busy) in &r.component_busy {
            prop_assert!(
                busy <= r.total_cycles,
                "{name} busy {busy} > makespan {}",
                r.total_cycles
            );
        }
        prop_assert!(r.overall_utilization() <= 1.0 + 1e-9);
    }

    /// The makespan is at least the longest single kernel and at most
    /// the serial sum of all kernels.
    #[test]
    fn makespan_bounds(seed in any::<u64>()) {
        let m = hybrid_machine();
        let g = random_graph(seed, 30);
        let r = simulate(&m, &g);
        // Upper bound: strictly serial execution on the slowest
        // accepting lane.
        let serial: u64 = g
            .kernels()
            .iter()
            .map(|k| {
                m.lanes
                    .iter()
                    .filter(|l| l.accepts(&k.kind))
                    .map(|l| l.cycles(&k.kind).max(1))
                    .max()
                    .expect("some lane accepts")
            })
            .sum();
        prop_assert!(r.total_cycles <= serial);
        // Lower bound: the fastest execution of the slowest kernel.
        let widest: u64 = g
            .kernels()
            .iter()
            .map(|k| {
                m.lanes
                    .iter()
                    .filter(|l| l.accepts(&k.kind))
                    .map(|l| l.cycles(&k.kind).max(1))
                    .min()
                    .expect("some lane accepts")
            })
            .max()
            .unwrap_or(0);
        prop_assert!(r.total_cycles >= widest);
    }

    /// Appending extra kernels never shortens the schedule.
    #[test]
    fn monotone_under_added_work(seed in any::<u64>(), extra in 1usize..10) {
        let m = hybrid_machine();
        let g = random_graph(seed, 25);
        let base = simulate(&m, &g).total_cycles;
        let mut bigger = g.clone();
        for _ in 0..extra {
            bigger.add(KernelKind::Ntt { n: 1 << 16 }, &[]);
        }
        let grown = simulate(&m, &bigger).total_cycles;
        prop_assert!(grown >= base, "adding work shrank {base} -> {grown}");
    }

    /// A linear dependency chain costs the sum of its parts.
    #[test]
    fn chains_serialize_exactly(len in 1usize..20) {
        let m = hybrid_machine();
        let mut g = KernelGraph::new();
        let mut prev: Option<usize> = None;
        for _ in 0..len {
            let deps: Vec<usize> = prev.into_iter().collect();
            prev = Some(g.add(KernelKind::Ntt { n: 1 << 16 }, &deps));
        }
        let r = simulate(&m, &g);
        let single = {
            let mut g1 = KernelGraph::new();
            g1.add(KernelKind::Ntt { n: 1 << 16 }, &[]);
            simulate(&m, &g1).total_cycles
        };
        prop_assert_eq!(r.total_cycles, single * len as u64);
    }

    /// Every machine/policy pair schedules a mixed CKKS+TFHE-friendly
    /// workload without panicking, and utilization stays sane.
    #[test]
    fn all_trinity_policies_schedule_their_kernels(seed in any::<u64>()) {
        for policy in [
            MappingPolicy::CkksAdaptive,
            MappingPolicy::CkksIpUseEwe,
            MappingPolicy::Hybrid,
        ] {
            let m = build_machine(&AcceleratorConfig::trinity(), policy);
            let g = random_graph(seed, 25);
            let r = simulate(&m, &g);
            prop_assert!(r.total_cycles > 0);
            prop_assert!(r.overall_utilization() <= 1.0 + 1e-9);
        }
    }
}
