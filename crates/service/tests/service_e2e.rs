//! End-to-end service suite: mixed tenants through the queue.
//!
//! The acceptance contract for the serving layer, in four parts:
//!
//! 1. **Bit-identity.** A mixed TFHE + CKKS tenant stream scheduled,
//!    coalesced, batched and executed by [`ServiceCore`] produces
//!    ciphertexts bit-identical to evaluating each tenant's requests
//!    in isolation, sequentially — under `scalar`, `lanes` *and*
//!    `threaded` kernel backends (swapped in-process with
//!    `kernel::force`, which is test-only by lint rule). Coalescing
//!    and QoS must be invisible in the bits. The whole binary honors
//!    `TRINITY_SERVICE_IN_FLIGHT` (CI sweeps it), so the same
//!    contract is enforced under concurrent in-flight dispatch.
//! 2. **Coalescing.** The JSONL audit shows keyswitch dispatches that
//!    carried at least two independent requests each.
//! 3. **Budgets.** Over the audited prefix where every lane was
//!    backlogged, each lane's dispatch share holds its configured
//!    minimum (within the enforcement window's quantisation).
//! 4. **Starvation + admission.** A starved lane is force-served and
//!    audited within the threshold; saturated queues/caches and
//!    uncovered keys are rejected at the door with audited reasons.
//!
//! Cross-`max_in_flight` determinism has its own metamorphic suite
//! (`service_determinism.rs`); EDF ordering has `scheduler_props.rs`.

mod common;

use common::{
    ckks_tenant, configured_in_flight, mixed_cfg, parse_dispatches, run_mixed_scenario,
    under_each_backend,
};
use fhe_ckks::{CkksContext, CkksParams, SwitchingKey};
use fhe_tfhe::{ClientKey, GateOp, MulBackend, ServerKey, TfheContext, TfheParams};
use rand::rngs::StdRng;
use rand::SeedableRng;
use trinity_service::{
    AdmissionError, AuditEvent, Lane, LaneBudgets, PickCause, ServiceConfig, ServiceCore,
    StarvationPolicy, Workload,
};

#[test]
fn mixed_tenants_bit_identical_across_backends_and_coalesced() {
    let runs = under_each_backend(|| run_mixed_scenario(mixed_cfg(configured_in_flight())));

    // The audit must show real cross-request coalescing: at least one
    // keyswitch dispatch carrying >= 2 requests — and, since PR 10,
    // at least one *gate* dispatch batching >= 2 blind rotations.
    let (_, base) = &runs[0];
    let dispatches = parse_dispatches(&base.jsonl);
    let widest = dispatches
        .iter()
        .filter(|d| d.lane != "interactive")
        .map(|d| d.jobs)
        .max()
        .unwrap();
    assert!(
        widest >= 2,
        "no coalesced dispatch carried >= 2 requests: {dispatches:?}"
    );
    let widest_gates = dispatches
        .iter()
        .filter(|d| d.lane == "interactive")
        .map(|d| d.jobs)
        .max()
        .unwrap();
    assert!(
        widest_gates >= 2,
        "no batched gate dispatch carried >= 2 requests: {dispatches:?}"
    );
    // Every line is schema-versioned JSONL.
    assert!(base
        .jsonl
        .lines()
        .all(|l| l.starts_with("{\"schema_version\":2,") && l.ends_with('}')));

    // Backend choice must be unobservable: identical ciphertext bits
    // AND identical scheduling decisions.
    for (name, run) in &runs[1..] {
        assert_eq!(run.flats, base.flats, "{name} diverged from {}", runs[0].0);
        assert_eq!(run.jsonl, base.jsonl, "{name} scheduled differently");
    }
}

#[test]
fn lane_budgets_hold_over_the_backlogged_prefix() {
    // max_batch = 1 isolates the scheduler: every dispatch serves
    // exactly one request, so audited shares are pick shares.
    let cfg = ServiceConfig {
        max_batch: 1,
        max_in_flight: configured_in_flight(),
        ..ServiceConfig::default_config()
    };
    let mut svc = ServiceCore::new(cfg).unwrap();

    let mut trng = StdRng::seed_from_u64(902);
    let ck = ClientKey::generate(TfheContext::new(TfheParams::set_i()), &mut trng);
    let server = ServerKey::generate(&ck, MulBackend::Ntt, &mut trng);
    svc.register_tfhe_tenant(0, server).unwrap();
    let ctx = CkksContext::new(CkksParams::tiny_params());
    let tenant = ckks_tenant(&ctx, 920, &[1, 2]);
    svc.register_ckks_tenant(1, ctx.clone(), tenant.galois.clone())
        .unwrap();

    // Backlog: 8 interactive, 20 timed, 30 bulk — enough that all
    // three lanes stay non-empty for ~40 dispatches at 20/30/50.
    for i in 0..8 {
        let a = ck.encrypt_bit(i % 2 == 0, &mut trng);
        let b = ck.encrypt_bit(i % 3 == 0, &mut trng);
        svc.submit(
            0,
            Workload::Gate {
                op: GateOp::Xor,
                a,
                b,
            },
        )
        .unwrap();
    }
    for i in 0..20 {
        svc.submit(
            1,
            Workload::Rotation {
                ct: tenant.input.clone(),
                step: 1 + (i % 2),
                deadline: 100,
            },
        )
        .unwrap();
    }
    for i in 0..30 {
        svc.submit(
            1,
            Workload::Analytics {
                ct: tenant.input.clone(),
                steps: vec![1 + (i % 2)],
            },
        )
        .unwrap();
    }
    svc.run_until_idle();

    let jsonl = svc.audit().to_jsonl();
    // The on-disk rendering is byte-for-byte the in-memory one.
    let path = std::env::temp_dir().join("trinity_service_e2e_audit.jsonl");
    svc.audit().write_jsonl(&path).unwrap();
    assert_eq!(std::fs::read_to_string(&path).unwrap(), jsonl);
    let _ = std::fs::remove_file(&path);
    let dispatches = parse_dispatches(&jsonl);
    assert!(dispatches.iter().all(|d| d.jobs == 1));
    // The enforcement claim applies while every lane is backlogged.
    let prefix: Vec<_> = dispatches
        .iter()
        .take_while(|d| d.pending.iter().all(|&p| p > 0))
        .collect();
    assert!(
        prefix.len() >= 20,
        "backlogged prefix too short to measure: {}",
        prefix.len()
    );
    let budgets = LaneBudgets::default_split();
    for lane in Lane::ALL {
        let count = prefix.iter().filter(|d| d.lane == lane.name()).count();
        let share = count * 100 / prefix.len();
        let min = budgets.min_for(lane) as usize;
        // One window slot (100/20 = 5%) of quantisation slack, plus
        // the enforcement lag of the first window.
        assert!(
            share + 10 >= min,
            "{} got {share}% < {min}% over the backlogged prefix (audit:\n{jsonl})",
            lane.name()
        );
    }
}

#[test]
fn starved_lane_is_force_served_and_audited() {
    // All-slack budgets: priority alone would serve gates forever.
    let cfg = ServiceConfig {
        budgets: LaneBudgets {
            interactive_min: 0,
            timed_min: 0,
            bulk_min: 0,
        },
        starvation: StarvationPolicy { max_wait_ticks: 3 },
        max_batch: 1,
        max_in_flight: configured_in_flight(),
        ..ServiceConfig::default_config()
    };
    let mut svc = ServiceCore::new(cfg).unwrap();

    let mut trng = StdRng::seed_from_u64(903);
    let ck = ClientKey::generate(TfheContext::new(TfheParams::set_i()), &mut trng);
    let server = ServerKey::generate(&ck, MulBackend::Ntt, &mut trng);
    svc.register_tfhe_tenant(0, server).unwrap();
    let ctx = CkksContext::new(CkksParams::tiny_params());
    let tenant = ckks_tenant(&ctx, 930, &[1]);
    svc.register_ckks_tenant(1, ctx.clone(), tenant.galois.clone())
        .unwrap();

    for i in 0..6 {
        let a = ck.encrypt_bit(i % 2 == 0, &mut trng);
        let b = ck.encrypt_bit(true, &mut trng);
        svc.submit(
            0,
            Workload::Gate {
                op: GateOp::And,
                a,
                b,
            },
        )
        .unwrap();
    }
    let bulk = svc
        .submit(
            1,
            Workload::Analytics {
                ct: tenant.input.clone(),
                steps: vec![1],
            },
        )
        .unwrap();
    svc.run_until_idle();
    assert!(svc.take_result(bulk).is_some());

    // The starvation event fired for bulk within threshold + 1 ticks,
    // and the matching dispatch is cause-tagged.
    let starvations: Vec<_> = svc
        .audit()
        .events()
        .filter_map(|e| match e {
            AuditEvent::Starvation { lane, waited, tick } => Some((*lane, *waited, *tick)),
            _ => None,
        })
        .collect();
    assert_eq!(starvations.len(), 1, "{starvations:?}");
    let (lane, waited, tick) = starvations[0];
    assert_eq!(lane, Lane::Bulk);
    assert_eq!(waited, 4, "starved exactly one past the threshold");
    assert_eq!(tick, 4, "force-served at the first over-threshold tick");
    assert!(svc.audit().events().any(|e| matches!(
        e,
        AuditEvent::Dispatch {
            lane: Lane::Bulk,
            cause: PickCause::Starvation,
            ..
        }
    )));
}

#[test]
fn admission_control_rejects_and_audits_saturation() {
    let ctx = CkksContext::new(CkksParams::tiny_params());
    let tenant = ckks_tenant(&ctx, 940, &[1]);

    // Queue saturation.
    let cfg = ServiceConfig {
        queue_capacity: 2,
        ..ServiceConfig::default_config()
    };
    let mut svc = ServiceCore::new(cfg).unwrap();
    svc.register_ckks_tenant(1, ctx.clone(), tenant.galois.clone())
        .unwrap();
    let rot = |svc: &mut ServiceCore, step: i64| {
        svc.submit(
            1,
            Workload::Rotation {
                ct: tenant.input.clone(),
                step,
                deadline: 10,
            },
        )
    };
    rot(&mut svc, 1).unwrap();
    rot(&mut svc, 1).unwrap();
    assert_eq!(
        rot(&mut svc, 1).unwrap_err(),
        AdmissionError::QueueSaturated
    );
    // Uncovered step and unknown tenant are refused too.
    assert_eq!(
        rot(&mut svc, 1).map(|_| ()).unwrap_err(),
        AdmissionError::QueueSaturated
    );
    svc.run_until_idle();
    assert_eq!(
        rot(&mut svc, 3).unwrap_err(),
        AdmissionError::MissingGaloisKey { step: 3 }
    );
    assert_eq!(
        svc.submit(
            9,
            Workload::Analytics {
                ct: tenant.input.clone(),
                steps: vec![1],
            },
        )
        .unwrap_err(),
        AdmissionError::UnknownTenant
    );
    // A zero-step scan has nothing to dispatch: refused at the door
    // rather than crashing the dispatcher.
    assert_eq!(
        svc.submit(
            1,
            Workload::Analytics {
                ct: tenant.input.clone(),
                steps: vec![],
            },
        )
        .unwrap_err(),
        AdmissionError::EmptyWorkload
    );
    let jsonl = svc.audit().to_jsonl();
    assert!(jsonl.contains("\"reason\":\"queue_saturated\""));
    assert!(jsonl.contains("\"reason\":\"missing_galois_key\""));
    assert!(jsonl.contains("\"reason\":\"unknown_tenant\""));
    assert!(jsonl.contains("\"reason\":\"empty_workload\""));

    // Key-cache saturation: a budget fitting one tenant refuses a
    // second while the first is pinned by queued work.
    let one = tenant
        .galois
        .values()
        .map(SwitchingKey::key_bytes)
        .sum::<usize>();
    let cfg = ServiceConfig {
        key_cache_bytes: one,
        ..ServiceConfig::default_config()
    };
    let mut svc = ServiceCore::new(cfg).unwrap();
    svc.register_ckks_tenant(1, ctx.clone(), tenant.galois.clone())
        .unwrap();
    rot(&mut svc, 1).unwrap();
    // The queued job pins tenant 1's session: re-registering now would
    // swap the keys the admitted job was validated against.
    assert_eq!(
        svc.register_ckks_tenant(1, ctx.clone(), tenant.galois.clone())
            .unwrap_err(),
        AdmissionError::SessionBusy
    );
    let other = ckks_tenant(&ctx, 941, &[1]);
    assert_eq!(
        svc.register_ckks_tenant(2, ctx.clone(), other.galois.clone())
            .unwrap_err(),
        AdmissionError::KeyCacheSaturated
    );
    // Once the queue drains the idle session is evictable and the
    // second tenant fits.
    svc.run_until_idle();
    svc.register_ckks_tenant(2, ctx, other.galois.clone())
        .unwrap();
    assert_eq!(svc.key_cache().evictions(), 1);
}

#[test]
fn huge_deadlines_and_failed_registrations_are_harmless() {
    let ctx = CkksContext::new(CkksParams::tiny_params());
    let tenant = ckks_tenant(&ctx, 950, &[1]);

    // A deadline near u64::MAX on a job admitted at a non-zero tick
    // must read as "no deadline", not overflow the due-tick math.
    let mut svc = ServiceCore::new(ServiceConfig::default_config()).unwrap();
    svc.register_ckks_tenant(1, ctx.clone(), tenant.galois.clone())
        .unwrap();
    let rot = |svc: &mut ServiceCore, deadline: u64| {
        svc.submit(
            1,
            Workload::Rotation {
                ct: tenant.input.clone(),
                step: 1,
                deadline,
            },
        )
        .unwrap()
    };
    rot(&mut svc, 10);
    svc.run_until_idle(); // advance past tick 0
    let id = rot(&mut svc, u64::MAX);
    svc.run_until_idle();
    assert!(svc.take_result(id).is_some());

    // A registration the cache refuses must not leave the context
    // (and a fresh evaluator) resident in the service forever.
    let cfg = ServiceConfig {
        key_cache_bytes: 0,
        ..ServiceConfig::default_config()
    };
    let mut svc = ServiceCore::new(cfg).unwrap();
    let fresh = CkksContext::new(CkksParams::tiny_params());
    let t2 = ckks_tenant(&fresh, 951, &[1]);
    assert_eq!(
        svc.register_ckks_tenant(1, fresh.clone(), t2.galois.clone())
            .unwrap_err(),
        AdmissionError::KeyCacheSaturated
    );
    assert!(svc.evaluator_for(&fresh).is_none());
}
