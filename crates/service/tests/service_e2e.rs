//! End-to-end service suite: mixed tenants through the queue.
//!
//! The acceptance contract for the serving layer, in four parts:
//!
//! 1. **Bit-identity.** A mixed TFHE + CKKS tenant stream scheduled,
//!    coalesced and executed by [`ServiceCore`] produces ciphertexts
//!    bit-identical to evaluating each tenant's requests in isolation,
//!    sequentially — under `scalar`, `lanes` *and* `threaded` kernel
//!    backends (swapped in-process with `kernel::force`, which is
//!    test-only by lint rule). Coalescing and QoS must be invisible in
//!    the bits.
//! 2. **Coalescing.** The JSONL audit shows keyswitch dispatches that
//!    carried at least two independent requests each.
//! 3. **Budgets.** Over the audited prefix where every lane was
//!    backlogged, each lane's dispatch share holds its configured
//!    minimum (within the enforcement window's quantisation).
//! 4. **Starvation + admission.** A starved lane is force-served and
//!    audited within the threshold; saturated queues/caches and
//!    uncovered keys are rejected at the door with audited reasons.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, PoisonError};

use fhe_ckks::{
    Ciphertext, CkksContext, CkksParams, Encoder, Encryptor, Evaluator, KeyGenerator, SwitchingKey,
};
use fhe_math::kernel::{self, KernelBackend};
use fhe_math::Complex;
use fhe_tfhe::{ClientKey, GateOp, MulBackend, ServerKey, TfheContext, TfheParams};
use rand::rngs::StdRng;
use rand::SeedableRng;
use trinity_service::{
    AdmissionError, AuditEvent, Lane, LaneBudgets, PickCause, Response, ServiceConfig, ServiceCore,
    StarvationPolicy, Workload,
};

/// Serialises `kernel::force` swaps across the tests of this binary.
static FORCE_LOCK: Mutex<()> = Mutex::new(());

fn backends() -> [&'static dyn KernelBackend; 3] {
    [
        kernel::by_name("scalar").unwrap(),
        kernel::by_name("lanes").unwrap(),
        kernel::threaded(Some(3)),
    ]
}

fn under_each_backend<T>(mut work: impl FnMut() -> T) -> Vec<(&'static str, T)> {
    let _guard = FORCE_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
    let previous = kernel::active();
    let out = backends()
        .iter()
        .map(|b| {
            kernel::force(*b);
            (b.name(), work())
        })
        .collect();
    kernel::force(previous);
    out
}

/// A CKKS tenant's keys (as the service will hold them) plus an
/// encrypted input. The secret key is dropped: CKKS results are
/// checked by bit-identity against isolated evaluation, not by
/// decryption.
struct CkksTenant {
    galois: HashMap<i64, SwitchingKey>,
    input: Ciphertext,
}

fn ckks_tenant(ctx: &Arc<CkksContext>, seed: u64, steps: &[i64]) -> CkksTenant {
    let mut rng = StdRng::seed_from_u64(seed);
    let kg = KeyGenerator::new(ctx.clone());
    let sk = kg.secret_key(&mut rng);
    let galois = steps
        .iter()
        .map(|&r| {
            let g = fhe_math::galois::rotation_galois_element(r, ctx.n());
            (r, kg.galois_key(&sk, g, &mut rng))
        })
        .collect();
    let encoder = Encoder::new(ctx.clone());
    let values: Vec<Complex> = (0..encoder.slots())
        .map(|i| Complex::new(seed as f64 + i as f64, i as f64 / 3.0))
        .collect();
    let pt = encoder.encode(&values, ctx.params().max_level());
    let input = Encryptor::new(ctx.clone()).encrypt_sk(&pt, &sk, &mut rng);
    CkksTenant { galois, input }
}

fn ct_flat(ct: &Ciphertext) -> Vec<u64> {
    let mut v = ct.c0.flat().to_vec();
    v.extend_from_slice(ct.c1.flat());
    v
}

/// Runs the mixed-tenant scenario once under the active backend,
/// returning every result's flat words (submit order) and the audit
/// JSONL.
fn run_mixed_scenario() -> (Vec<Vec<u64>>, String) {
    // TFHE tenant 0.
    let mut trng = StdRng::seed_from_u64(901);
    let ck = ClientKey::generate(TfheContext::new(TfheParams::set_i()), &mut trng);
    let server = ServerKey::generate(&ck, MulBackend::Ntt, &mut trng);
    let gate_cases = [
        (GateOp::Nand, true, true),
        (GateOp::Xor, true, false),
        (GateOp::And, false, true),
        (GateOp::Or, false, false),
    ];
    let gate_inputs: Vec<_> = gate_cases
        .iter()
        .map(|&(op, a, b)| {
            (
                op,
                ck.encrypt_bit(a, &mut trng),
                ck.encrypt_bit(b, &mut trng),
                op.eval(a, b),
            )
        })
        .collect();
    // Isolated sequential oracle, before the server key moves in.
    let gate_expected: Vec<_> = gate_inputs
        .iter()
        .map(|(op, a, b, _)| server.apply_gate(*op, a, b))
        .collect();

    // CKKS tenants 1..=3 over ONE shared context: coalescing
    // candidates for one another.
    let ctx = CkksContext::new(CkksParams::tiny_params());
    let tenants: Vec<CkksTenant> = (1..=3)
        .map(|t| ckks_tenant(&ctx, 910 + t, &[1, 2]))
        .collect();
    // (tenant, steps, deadline) in submit order after the gates.
    let rotation_reqs: [(usize, &[i64], Option<u64>); 6] = [
        (1, &[1], Some(8)),
        (2, &[1], Some(8)),
        (3, &[2], Some(8)),
        (1, &[1, 2], None),
        (2, &[1, 1], None),
        (3, &[2, 1], None),
    ];
    // Isolated sequential oracle: each request evaluated alone.
    let oracle = Evaluator::new(ctx.clone());
    let rotation_expected: Vec<Ciphertext> = rotation_reqs
        .iter()
        .map(|&(t, steps, _)| {
            let tenant = &tenants[t - 1];
            let mut ct = tenant.input.clone();
            for &r in steps {
                ct = oracle.rotate(&ct, r, &tenant.galois[&r]);
            }
            ct
        })
        .collect();

    // The service run. The four tenants' real key material outgrows
    // the CI-sized default cache, so give this scenario room: cache
    // pressure has its own test below.
    let cfg = ServiceConfig {
        key_cache_bytes: 1 << 30,
        ..ServiceConfig::default_config()
    };
    let mut svc = ServiceCore::new(cfg).unwrap();
    svc.register_tfhe_tenant(0, server).unwrap();
    for (i, tenant) in tenants.iter().enumerate() {
        svc.register_ckks_tenant(i + 1, ctx.clone(), tenant.galois.clone())
            .unwrap();
    }
    let mut ids = Vec::new();
    for (op, a, b, _) in &gate_inputs {
        ids.push(
            svc.submit(
                0,
                Workload::Gate {
                    op: *op,
                    a: a.clone(),
                    b: b.clone(),
                },
            )
            .unwrap(),
        );
    }
    for &(t, steps, deadline) in &rotation_reqs {
        let ct = tenants[t - 1].input.clone();
        let work = match deadline {
            Some(d) => Workload::Rotation {
                ct,
                step: steps[0],
                deadline: d,
            },
            None => Workload::Analytics {
                ct,
                steps: steps.to_vec(),
            },
        };
        ids.push(svc.submit(t, work).unwrap());
    }
    svc.run_until_idle();

    // Collect + verify against the oracles.
    let mut flats = Vec::new();
    for (i, id) in ids.iter().enumerate() {
        match svc.take_result(*id).expect("request completed") {
            Response::Bit(out) => {
                let (_, _, _, plain) = gate_inputs[i];
                assert_eq!(ck.decrypt_bit(&out), plain, "gate {i} decrypts wrong");
                let exp = &gate_expected[i];
                assert!(
                    out.a == exp.a && out.b == exp.b,
                    "gate {i} not bit-identical to isolated evaluation"
                );
                let mut v = out.a.clone();
                v.push(out.b);
                flats.push(v);
            }
            Response::Vector(out) => {
                let r = i - gate_inputs.len();
                let exp = &rotation_expected[r];
                assert_eq!(
                    ct_flat(&out),
                    ct_flat(exp),
                    "rotation request {r} not bit-identical to isolated evaluation"
                );
                flats.push(ct_flat(&out));
            }
        }
    }
    (flats, svc.audit().to_jsonl())
}

/// Dispatch `(lane, cause, jobs, pending)` rows pulled from JSONL.
fn parse_dispatches(jsonl: &str) -> Vec<(String, String, usize, [usize; 3])> {
    jsonl
        .lines()
        .filter(|l| l.contains("\"event\":\"dispatch\""))
        .map(|l| {
            let field = |k: &str| {
                let at = l.find(k).unwrap() + k.len();
                l[at..]
                    .chars()
                    .take_while(|c| *c != ',' && *c != '}' && *c != ']')
                    .collect::<String>()
            };
            let lane = field("\"lane\":\"").trim_matches('"').to_string();
            let cause = field("\"cause\":\"").trim_matches('"').to_string();
            let jobs: usize = field("\"jobs\":").parse().unwrap();
            let at = l.find("\"pending\":[").unwrap() + "\"pending\":[".len();
            let nums: Vec<usize> = l[at..l.len() - 2]
                .split(',')
                .map(|n| n.parse().unwrap())
                .collect();
            (lane, cause, jobs, [nums[0], nums[1], nums[2]])
        })
        .collect()
}

#[test]
fn mixed_tenants_bit_identical_across_backends_and_coalesced() {
    let runs = under_each_backend(run_mixed_scenario);

    // The audit must show real cross-request coalescing: at least one
    // keyswitch dispatch carrying >= 2 requests.
    let (_, (base_flats, base_jsonl)) = &runs[0];
    let dispatches = parse_dispatches(base_jsonl);
    let widest = dispatches
        .iter()
        .filter(|(lane, ..)| lane != "interactive")
        .map(|&(_, _, jobs, _)| jobs)
        .max()
        .unwrap();
    assert!(
        widest >= 2,
        "no coalesced dispatch carried >= 2 requests: {dispatches:?}"
    );
    // Every line is schema-versioned JSONL.
    assert!(base_jsonl
        .lines()
        .all(|l| l.starts_with("{\"schema_version\":1,") && l.ends_with('}')));

    // Backend choice must be unobservable: identical ciphertext bits
    // AND identical scheduling decisions.
    for (name, (flats, jsonl)) in &runs[1..] {
        assert_eq!(flats, base_flats, "{name} diverged from {}", runs[0].0);
        assert_eq!(jsonl, base_jsonl, "{name} scheduled differently");
    }
}

#[test]
fn lane_budgets_hold_over_the_backlogged_prefix() {
    // max_batch = 1 isolates the scheduler: every dispatch serves
    // exactly one request, so audited shares are pick shares.
    let cfg = ServiceConfig {
        max_batch: 1,
        ..ServiceConfig::default_config()
    };
    let mut svc = ServiceCore::new(cfg).unwrap();

    let mut trng = StdRng::seed_from_u64(902);
    let ck = ClientKey::generate(TfheContext::new(TfheParams::set_i()), &mut trng);
    let server = ServerKey::generate(&ck, MulBackend::Ntt, &mut trng);
    svc.register_tfhe_tenant(0, server).unwrap();
    let ctx = CkksContext::new(CkksParams::tiny_params());
    let tenant = ckks_tenant(&ctx, 920, &[1, 2]);
    svc.register_ckks_tenant(1, ctx.clone(), tenant.galois.clone())
        .unwrap();

    // Backlog: 8 interactive, 20 timed, 30 bulk — enough that all
    // three lanes stay non-empty for ~40 dispatches at 20/30/50.
    for i in 0..8 {
        let a = ck.encrypt_bit(i % 2 == 0, &mut trng);
        let b = ck.encrypt_bit(i % 3 == 0, &mut trng);
        svc.submit(
            0,
            Workload::Gate {
                op: GateOp::Xor,
                a,
                b,
            },
        )
        .unwrap();
    }
    for i in 0..20 {
        svc.submit(
            1,
            Workload::Rotation {
                ct: tenant.input.clone(),
                step: 1 + (i % 2),
                deadline: 100,
            },
        )
        .unwrap();
    }
    for i in 0..30 {
        svc.submit(
            1,
            Workload::Analytics {
                ct: tenant.input.clone(),
                steps: vec![1 + (i % 2)],
            },
        )
        .unwrap();
    }
    svc.run_until_idle();

    let jsonl = svc.audit().to_jsonl();
    // The on-disk rendering is byte-for-byte the in-memory one.
    let path = std::env::temp_dir().join("trinity_service_e2e_audit.jsonl");
    svc.audit().write_jsonl(&path).unwrap();
    assert_eq!(std::fs::read_to_string(&path).unwrap(), jsonl);
    let _ = std::fs::remove_file(&path);
    let dispatches = parse_dispatches(&jsonl);
    assert!(dispatches.iter().all(|&(_, _, jobs, _)| jobs == 1));
    // The enforcement claim applies while every lane is backlogged.
    let prefix: Vec<_> = dispatches
        .iter()
        .take_while(|&&(_, _, _, pending)| pending.iter().all(|&p| p > 0))
        .collect();
    assert!(
        prefix.len() >= 20,
        "backlogged prefix too short to measure: {}",
        prefix.len()
    );
    let budgets = LaneBudgets::default_split();
    for lane in Lane::ALL {
        let count = prefix.iter().filter(|&&(l, ..)| l == lane.name()).count();
        let share = count * 100 / prefix.len();
        let min = budgets.min_for(lane) as usize;
        // One window slot (100/20 = 5%) of quantisation slack, plus
        // the enforcement lag of the first window.
        assert!(
            share + 10 >= min,
            "{} got {share}% < {min}% over the backlogged prefix (audit:\n{jsonl})",
            lane.name()
        );
    }
}

#[test]
fn starved_lane_is_force_served_and_audited() {
    // All-slack budgets: priority alone would serve gates forever.
    let cfg = ServiceConfig {
        budgets: LaneBudgets {
            interactive_min: 0,
            timed_min: 0,
            bulk_min: 0,
        },
        starvation: StarvationPolicy { max_wait_ticks: 3 },
        max_batch: 1,
        ..ServiceConfig::default_config()
    };
    let mut svc = ServiceCore::new(cfg).unwrap();

    let mut trng = StdRng::seed_from_u64(903);
    let ck = ClientKey::generate(TfheContext::new(TfheParams::set_i()), &mut trng);
    let server = ServerKey::generate(&ck, MulBackend::Ntt, &mut trng);
    svc.register_tfhe_tenant(0, server).unwrap();
    let ctx = CkksContext::new(CkksParams::tiny_params());
    let tenant = ckks_tenant(&ctx, 930, &[1]);
    svc.register_ckks_tenant(1, ctx.clone(), tenant.galois.clone())
        .unwrap();

    for i in 0..6 {
        let a = ck.encrypt_bit(i % 2 == 0, &mut trng);
        let b = ck.encrypt_bit(true, &mut trng);
        svc.submit(
            0,
            Workload::Gate {
                op: GateOp::And,
                a,
                b,
            },
        )
        .unwrap();
    }
    let bulk = svc
        .submit(
            1,
            Workload::Analytics {
                ct: tenant.input.clone(),
                steps: vec![1],
            },
        )
        .unwrap();
    svc.run_until_idle();
    assert!(svc.take_result(bulk).is_some());

    // The starvation event fired for bulk within threshold + 1 ticks,
    // and the matching dispatch is cause-tagged.
    let starvations: Vec<_> = svc
        .audit()
        .events()
        .filter_map(|e| match e {
            AuditEvent::Starvation { lane, waited, tick } => Some((*lane, *waited, *tick)),
            _ => None,
        })
        .collect();
    assert_eq!(starvations.len(), 1, "{starvations:?}");
    let (lane, waited, tick) = starvations[0];
    assert_eq!(lane, Lane::Bulk);
    assert_eq!(waited, 4, "starved exactly one past the threshold");
    assert_eq!(tick, 4, "force-served at the first over-threshold tick");
    assert!(svc.audit().events().any(|e| matches!(
        e,
        AuditEvent::Dispatch {
            lane: Lane::Bulk,
            cause: PickCause::Starvation,
            ..
        }
    )));
}

#[test]
fn admission_control_rejects_and_audits_saturation() {
    let ctx = CkksContext::new(CkksParams::tiny_params());
    let tenant = ckks_tenant(&ctx, 940, &[1]);

    // Queue saturation.
    let cfg = ServiceConfig {
        queue_capacity: 2,
        ..ServiceConfig::default_config()
    };
    let mut svc = ServiceCore::new(cfg).unwrap();
    svc.register_ckks_tenant(1, ctx.clone(), tenant.galois.clone())
        .unwrap();
    let rot = |svc: &mut ServiceCore, step: i64| {
        svc.submit(
            1,
            Workload::Rotation {
                ct: tenant.input.clone(),
                step,
                deadline: 10,
            },
        )
    };
    rot(&mut svc, 1).unwrap();
    rot(&mut svc, 1).unwrap();
    assert_eq!(
        rot(&mut svc, 1).unwrap_err(),
        AdmissionError::QueueSaturated
    );
    // Uncovered step and unknown tenant are refused too.
    assert_eq!(
        rot(&mut svc, 1).map(|_| ()).unwrap_err(),
        AdmissionError::QueueSaturated
    );
    svc.run_until_idle();
    assert_eq!(
        rot(&mut svc, 3).unwrap_err(),
        AdmissionError::MissingGaloisKey { step: 3 }
    );
    assert_eq!(
        svc.submit(
            9,
            Workload::Analytics {
                ct: tenant.input.clone(),
                steps: vec![1],
            },
        )
        .unwrap_err(),
        AdmissionError::UnknownTenant
    );
    // A zero-step scan has nothing to dispatch: refused at the door
    // rather than crashing the dispatcher.
    assert_eq!(
        svc.submit(
            1,
            Workload::Analytics {
                ct: tenant.input.clone(),
                steps: vec![],
            },
        )
        .unwrap_err(),
        AdmissionError::EmptyWorkload
    );
    let jsonl = svc.audit().to_jsonl();
    assert!(jsonl.contains("\"reason\":\"queue_saturated\""));
    assert!(jsonl.contains("\"reason\":\"missing_galois_key\""));
    assert!(jsonl.contains("\"reason\":\"unknown_tenant\""));
    assert!(jsonl.contains("\"reason\":\"empty_workload\""));

    // Key-cache saturation: a budget fitting one tenant refuses a
    // second while the first is pinned by queued work.
    let one = tenant
        .galois
        .values()
        .map(SwitchingKey::key_bytes)
        .sum::<usize>();
    let cfg = ServiceConfig {
        key_cache_bytes: one,
        ..ServiceConfig::default_config()
    };
    let mut svc = ServiceCore::new(cfg).unwrap();
    svc.register_ckks_tenant(1, ctx.clone(), tenant.galois.clone())
        .unwrap();
    rot(&mut svc, 1).unwrap();
    // The queued job pins tenant 1's session: re-registering now would
    // swap the keys the admitted job was validated against.
    assert_eq!(
        svc.register_ckks_tenant(1, ctx.clone(), tenant.galois.clone())
            .unwrap_err(),
        AdmissionError::SessionBusy
    );
    let other = ckks_tenant(&ctx, 941, &[1]);
    assert_eq!(
        svc.register_ckks_tenant(2, ctx.clone(), other.galois.clone())
            .unwrap_err(),
        AdmissionError::KeyCacheSaturated
    );
    // Once the queue drains the idle session is evictable and the
    // second tenant fits.
    svc.run_until_idle();
    svc.register_ckks_tenant(2, ctx, other.galois.clone())
        .unwrap();
    assert_eq!(svc.key_cache().evictions(), 1);
}

#[test]
fn huge_deadlines_and_failed_registrations_are_harmless() {
    let ctx = CkksContext::new(CkksParams::tiny_params());
    let tenant = ckks_tenant(&ctx, 950, &[1]);

    // A deadline near u64::MAX on a job admitted at a non-zero tick
    // must read as "no deadline", not overflow the due-tick math.
    let mut svc = ServiceCore::new(ServiceConfig::default_config()).unwrap();
    svc.register_ckks_tenant(1, ctx.clone(), tenant.galois.clone())
        .unwrap();
    let rot = |svc: &mut ServiceCore, deadline: u64| {
        svc.submit(
            1,
            Workload::Rotation {
                ct: tenant.input.clone(),
                step: 1,
                deadline,
            },
        )
        .unwrap()
    };
    rot(&mut svc, 10);
    svc.run_until_idle(); // advance past tick 0
    let id = rot(&mut svc, u64::MAX);
    svc.run_until_idle();
    assert!(svc.take_result(id).is_some());

    // A registration the cache refuses must not leave the context
    // (and a fresh evaluator) resident in the service forever.
    let cfg = ServiceConfig {
        key_cache_bytes: 0,
        ..ServiceConfig::default_config()
    };
    let mut svc = ServiceCore::new(cfg).unwrap();
    let fresh = CkksContext::new(CkksParams::tiny_params());
    let t2 = ckks_tenant(&fresh, 951, &[1]);
    assert_eq!(
        svc.register_ckks_tenant(1, fresh.clone(), t2.galois.clone())
            .unwrap_err(),
        AdmissionError::KeyCacheSaturated
    );
    assert!(svc.evaluator_for(&fresh).is_none());
}
