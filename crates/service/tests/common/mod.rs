//! Shared harness for the service integration suites (`service_e2e`,
//! `service_determinism`, `scheduler_props`).
//!
//! Everything here is deterministic from fixed seeds: the scenario
//! builders regenerate tenant key material per run (TFHE server keys
//! are deliberately not `Clone`), so two runs with the same seed —
//! under any kernel backend or `max_in_flight` — must produce
//! bit-identical ciphertexts and, modulo the schema-stamped meta line,
//! byte-identical audit logs. The determinism suite is built on exactly
//! that property.

#![allow(dead_code)] // each test binary uses its own slice of the harness

use std::collections::HashMap;
use std::sync::{Arc, Mutex, PoisonError};

use fhe_ckks::{
    Ciphertext, CkksContext, CkksParams, Encoder, Encryptor, Evaluator, KeyGenerator, SwitchingKey,
};
use fhe_math::kernel::{self, KernelBackend};
use fhe_math::Complex;
use fhe_tfhe::{ClientKey, GateOp, MulBackend, ServerKey, TfheContext, TfheParams};
use rand::rngs::StdRng;
use rand::SeedableRng;
use trinity_service::{Response, ServiceConfig, ServiceCore, Workload};

/// Serialises `kernel::force` swaps across the tests of one binary.
pub static FORCE_LOCK: Mutex<()> = Mutex::new(());

pub fn backends() -> [&'static dyn KernelBackend; 3] {
    [
        kernel::by_name("scalar").unwrap(),
        kernel::by_name("lanes").unwrap(),
        kernel::threaded(Some(3)),
    ]
}

pub fn under_each_backend<T>(mut work: impl FnMut() -> T) -> Vec<(&'static str, T)> {
    let _guard = FORCE_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
    let previous = kernel::active();
    let out = backends()
        .iter()
        .map(|b| {
            kernel::force(*b);
            (b.name(), work())
        })
        .collect();
    kernel::force(previous);
    out
}

/// The `max_in_flight` the suite should exercise: CI's backend-oracle
/// matrix sets `TRINITY_SERVICE_IN_FLIGHT` to sweep it; locally it
/// defaults to the sequential core.
pub fn configured_in_flight() -> usize {
    std::env::var("TRINITY_SERVICE_IN_FLIGHT")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
}

/// A CKKS tenant's keys (as the service will hold them) plus an
/// encrypted input. The secret key is dropped: CKKS results are
/// checked by bit-identity against isolated evaluation, not by
/// decryption.
pub struct CkksTenant {
    pub galois: HashMap<i64, SwitchingKey>,
    pub input: Ciphertext,
}

pub fn ckks_tenant(ctx: &Arc<CkksContext>, seed: u64, steps: &[i64]) -> CkksTenant {
    let mut rng = StdRng::seed_from_u64(seed);
    let kg = KeyGenerator::new(ctx.clone());
    let sk = kg.secret_key(&mut rng);
    let galois = steps
        .iter()
        .map(|&r| {
            let g = fhe_math::galois::rotation_galois_element(r, ctx.n());
            (r, kg.galois_key(&sk, g, &mut rng))
        })
        .collect();
    let encoder = Encoder::new(ctx.clone());
    let values: Vec<Complex> = (0..encoder.slots())
        .map(|i| Complex::new(seed as f64 + i as f64, i as f64 / 3.0))
        .collect();
    let pt = encoder.encode(&values, ctx.params().max_level());
    let input = Encryptor::new(ctx.clone()).encrypt_sk(&pt, &sk, &mut rng);
    CkksTenant { galois, input }
}

pub fn ct_flat(ct: &Ciphertext) -> Vec<u64> {
    let mut v = ct.c0.flat().to_vec();
    v.extend_from_slice(ct.c1.flat());
    v
}

/// Pulls `"key":<u64>` out of one rendered JSONL line.
pub fn json_u64(line: &str, key: &str) -> Option<u64> {
    let at = line.find(&format!("\"{key}\":"))? + key.len() + 3;
    let digits: String = line[at..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().ok()
}

/// The audit log minus its configuration-stamped `meta` line — the
/// part that must be byte-identical across `max_in_flight` settings.
pub fn strip_meta(jsonl: &str) -> String {
    jsonl
        .lines()
        .filter(|l| !l.contains("\"event\":\"meta\""))
        .fold(String::new(), |mut s, l| {
            s.push_str(l);
            s.push('\n');
            s
        })
}

/// One parsed `dispatch` audit row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DispatchRow {
    pub tick: u64,
    pub group: u64,
    pub lane: String,
    pub cause: String,
    pub jobs: usize,
    pub pending: [usize; 3],
}

pub fn parse_dispatches(jsonl: &str) -> Vec<DispatchRow> {
    jsonl
        .lines()
        .filter(|l| l.contains("\"event\":\"dispatch\""))
        .map(|l| {
            let text = |k: &str| {
                let at = l.find(k).unwrap() + k.len();
                l[at..]
                    .chars()
                    .take_while(|c| *c != '"')
                    .collect::<String>()
            };
            let at = l.find("\"pending\":[").unwrap() + "\"pending\":[".len();
            let nums: Vec<usize> = l[at..]
                .chars()
                .take_while(|c| *c != ']')
                .collect::<String>()
                .split(',')
                .map(|n| n.parse().unwrap())
                .collect();
            DispatchRow {
                tick: json_u64(l, "tick").unwrap(),
                group: json_u64(l, "group").unwrap(),
                lane: text("\"lane\":\""),
                cause: text("\"cause\":\""),
                jobs: json_u64(l, "jobs").unwrap() as usize,
                pending: [nums[0], nums[1], nums[2]],
            }
        })
        .collect()
}

/// Parsed `complete` rows as `(tick, group, request)`, in log order.
pub fn parse_completes(jsonl: &str) -> Vec<(u64, u64, u64)> {
    jsonl
        .lines()
        .filter(|l| l.contains("\"event\":\"complete\""))
        .map(|l| {
            (
                json_u64(l, "tick").unwrap(),
                json_u64(l, "group").unwrap(),
                json_u64(l, "request").unwrap(),
            )
        })
        .collect()
}

/// Everything one mixed-scenario run produces: each request's result
/// as flat words (submit order) and the audit JSONL.
pub struct ScenarioRun {
    pub flats: Vec<Vec<u64>>,
    pub jsonl: String,
}

/// Runs the canonical mixed TFHE + CKKS tenant scenario once under the
/// active kernel backend and the given service configuration,
/// asserting every result bit-identical to its isolated sequential
/// oracle (gates also decrypt-checked). Fully seeded: the TFHE tenant
/// regenerates its keys from seed 901 each call, CKKS tenants from
/// 911..=913, so repeated runs are bit-reproducible by construction.
///
/// Traffic shape: 4 gates (one tenant, so the Interactive lane can
/// batch them), then 3 timed rotations with deliberately *skewed*
/// deadlines (admission order != deadline order, exercising EDF) and
/// 3 bulk analytics chains sharing the timed jobs' geometry
/// (exercising cross-lane coalescing).
pub fn run_mixed_scenario(cfg: ServiceConfig) -> ScenarioRun {
    // TFHE tenant 0.
    let mut trng = StdRng::seed_from_u64(901);
    let ck = ClientKey::generate(TfheContext::new(TfheParams::set_i()), &mut trng);
    let server = ServerKey::generate(&ck, MulBackend::Ntt, &mut trng);
    let gate_cases = [
        (GateOp::Nand, true, true),
        (GateOp::Xor, true, false),
        (GateOp::And, false, true),
        (GateOp::Or, false, false),
    ];
    let gate_inputs: Vec<_> = gate_cases
        .iter()
        .map(|&(op, a, b)| {
            (
                op,
                ck.encrypt_bit(a, &mut trng),
                ck.encrypt_bit(b, &mut trng),
                op.eval(a, b),
            )
        })
        .collect();
    // Isolated sequential oracle, before the server key moves in.
    let gate_expected: Vec<_> = gate_inputs
        .iter()
        .map(|(op, a, b, _)| server.apply_gate(*op, a, b))
        .collect();

    // CKKS tenants 1..=3 over ONE shared context: coalescing
    // candidates for one another.
    let ctx = CkksContext::new(CkksParams::tiny_params());
    let tenants: Vec<CkksTenant> = (1..=3)
        .map(|t| ckks_tenant(&ctx, 910 + t, &[1, 2]))
        .collect();
    // (tenant, steps, deadline) in submit order after the gates. The
    // timed deadlines are skewed so EDF must serve against admission
    // order (all admits land on tick 0, so due = deadline).
    let rotation_reqs: [(usize, &[i64], Option<u64>); 6] = [
        (1, &[1], Some(20)),
        (2, &[1], Some(6)),
        (3, &[2], Some(12)),
        (1, &[1, 2], None),
        (2, &[1, 1], None),
        (3, &[2, 1], None),
    ];
    // Isolated sequential oracle: each request evaluated alone.
    let oracle = Evaluator::new(ctx.clone());
    let rotation_expected: Vec<Ciphertext> = rotation_reqs
        .iter()
        .map(|&(t, steps, _)| {
            let tenant = &tenants[t - 1];
            let mut ct = tenant.input.clone();
            for &r in steps {
                ct = oracle.rotate(&ct, r, &tenant.galois[&r]);
            }
            ct
        })
        .collect();

    let mut svc = ServiceCore::new(cfg).unwrap();
    svc.register_tfhe_tenant(0, server).unwrap();
    for (i, tenant) in tenants.iter().enumerate() {
        svc.register_ckks_tenant(i + 1, ctx.clone(), tenant.galois.clone())
            .unwrap();
    }
    let mut ids = Vec::new();
    for (op, a, b, _) in &gate_inputs {
        ids.push(
            svc.submit(
                0,
                Workload::Gate {
                    op: *op,
                    a: a.clone(),
                    b: b.clone(),
                },
            )
            .unwrap(),
        );
    }
    for &(t, steps, deadline) in &rotation_reqs {
        let ct = tenants[t - 1].input.clone();
        let work = match deadline {
            Some(d) => Workload::Rotation {
                ct,
                step: steps[0],
                deadline: d,
            },
            None => Workload::Analytics {
                ct,
                steps: steps.to_vec(),
            },
        };
        ids.push(svc.submit(t, work).unwrap());
    }
    svc.run_until_idle();

    // Collect + verify against the oracles.
    let mut flats = Vec::new();
    for (i, id) in ids.iter().enumerate() {
        match svc.take_result(*id).expect("request completed") {
            Response::Bit(out) => {
                let (_, _, _, plain) = gate_inputs[i];
                assert_eq!(ck.decrypt_bit(&out), plain, "gate {i} decrypts wrong");
                let exp = &gate_expected[i];
                assert!(
                    out.a == exp.a && out.b == exp.b,
                    "gate {i} not bit-identical to isolated evaluation"
                );
                let mut v = out.a.clone();
                v.push(out.b);
                flats.push(v);
            }
            Response::Vector(out) => {
                let r = i - gate_inputs.len();
                let exp = &rotation_expected[r];
                assert_eq!(
                    ct_flat(&out),
                    ct_flat(exp),
                    "rotation request {r} not bit-identical to isolated evaluation"
                );
                flats.push(ct_flat(&out));
            }
        }
    }
    ScenarioRun {
        flats,
        jsonl: svc.audit().to_jsonl(),
    }
}

/// The mixed scenario's configuration: the four tenants' real key
/// material outgrows the CI-sized default cache, so give it room, and
/// take `max_in_flight` from the caller (the determinism suite sweeps
/// it; the e2e suite honors the CI matrix env).
pub fn mixed_cfg(max_in_flight: usize) -> ServiceConfig {
    ServiceConfig {
        key_cache_bytes: 1 << 30,
        max_in_flight,
        ..ServiceConfig::default_config()
    }
}
