//! Property suites for the lane scheduler: budget enforcement and
//! starvation bounds over randomized traffic shapes.
//!
//! The scheduler is pure decision logic, so these suites drive it
//! directly with synthetic backlog observations — thousands of
//! randomized streams per second, no ciphertexts anywhere. The
//! end-to-end suite (`service_e2e.rs`) separately checks that the
//! real service loop feeds the scheduler the same observations these
//! models do.

mod common;

use std::collections::HashMap;

use common::{ckks_tenant, ct_flat, json_u64, parse_dispatches, strip_meta};
use fhe_ckks::{CkksContext, CkksParams};
use proptest::prelude::*;
use trinity_service::{
    edf_pick, AuditEvent, Lane, LaneBudgets, PickCause, Response, Scheduler, ServiceConfig,
    ServiceCore, StarvationPolicy, Workload,
};
use trinity_workloads::traffic::{self, RequestKind, TrafficMix};

/// Ceiling share of one window slot, percent.
fn quantum(window: usize) -> u32 {
    100u32.div_ceil(window as u32)
}

/// Drives `picks` scheduler rounds with every lane permanently
/// backlogged, modelling head-of-line wait as ticks-since-last-service.
fn run_full_backlog(s: &mut Scheduler, picks: usize, check_from: usize, slack: u32) {
    let mut wait = [0u64; 3];
    for round in 0..picks {
        let (lane, _) = s
            .pick([Some(wait[0]), Some(wait[1]), Some(wait[2])])
            .expect("backlogged lanes always yield a pick");
        for l in Lane::ALL {
            wait[l.index()] += 1;
        }
        wait[lane.index()] = 0;
        if round >= check_from {
            for l in Lane::ALL {
                let share = s.share_percent(l);
                let min = s.budgets().min_for(l);
                assert!(
                    share + slack >= min,
                    "{l:?} share {share}% below min {min}% (slack {slack}) at round {round}"
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Budget enforcement: under full backlog, every lane holds its
    /// minimum share (up to window quantisation) for *any*
    /// satisfiable budget split and window size.
    #[test]
    fn minimum_shares_hold_for_any_satisfiable_split(
        i in 0u32..=60,
        t in 0u32..=60,
        b in 0u32..=60,
        window in 10usize..=40,
    ) {
        prop_assume!(i + t + b <= 100);
        let mut s = Scheduler::new(
            LaneBudgets { interactive_min: i, timed_min: t, bulk_min: b },
            // Starvation disabled: this property isolates the budget
            // mechanism (the starvation property has its own suite).
            StarvationPolicy { max_wait_ticks: u64::MAX },
            window,
        ).unwrap();
        let warmup = 3 * window;
        run_full_backlog(&mut s, warmup + 100, warmup, 2 * quantum(window) + 1);
    }

    /// Budget enforcement under churn: the backlogged lanes keep
    /// their minimums even while another lane flaps between empty
    /// and flooding.
    #[test]
    fn backlogged_lanes_keep_minimums_while_interactive_flaps(
        flaps in proptest::collection::vec(any::<bool>(), 150..250),
    ) {
        let budgets = LaneBudgets { interactive_min: 20, timed_min: 30, bulk_min: 50 };
        let window = 20;
        let mut s = Scheduler::new(
            budgets,
            StarvationPolicy { max_wait_ticks: u64::MAX },
            window,
        ).unwrap();
        let mut wait = [0u64; 3];
        for (round, &interactive_up) in flaps.iter().enumerate() {
            let waits = [
                interactive_up.then_some(wait[0]),
                Some(wait[1]),
                Some(wait[2]),
            ];
            let (lane, _) = s.pick(waits).expect("timed and bulk stay backlogged");
            prop_assert!(interactive_up || lane != Lane::Interactive,
                "picked an empty lane at round {round}");
            for l in Lane::ALL {
                wait[l.index()] += 1;
            }
            wait[lane.index()] = 0;
            if !interactive_up {
                wait[Lane::Interactive.index()] = 0;
            }
            if round >= 3 * window {
                for l in [Lane::Timed, Lane::Bulk] {
                    let share = s.share_percent(l);
                    let min = budgets.min_for(l);
                    let slack = 3 * quantum(window);
                    prop_assert!(share + slack >= min,
                        "{l:?} share {share}% below min {min}% at round {round}");
                }
            }
        }
    }

    /// EDF selection: `edf_pick` always returns the queued job with
    /// the lexicographically smallest `(due, request)` — so dispatch
    /// order is non-decreasing in due tick, and no job is ever served
    /// while another queued job is due strictly earlier.
    #[test]
    fn edf_pick_is_the_min_due_over_any_queue(
        dues in proptest::collection::vec((0u64..100, 0u64..1000), 1..40),
    ) {
        let i = edf_pick(&dues).expect("non-empty queue yields a pick");
        let best = dues[i];
        for (j, &cand) in dues.iter().enumerate() {
            prop_assert!(
                j == i || cand >= best,
                "picked {best:?} but {cand:?} sorts earlier"
            );
        }
    }

    /// EDF under churn: serving a queue to exhaustion with arbitrary
    /// interleaved admissions yields a service order in which every
    /// pick was the earliest-due job *available at that moment* —
    /// i.e., a job is only ever served "out of deadline order" when
    /// the earlier-deadline job had not arrived yet.
    #[test]
    fn edf_drain_order_is_deadline_feasible(
        arrivals in proptest::collection::vec((0u64..60, 1u64..50), 1..60),
    ) {
        // Admit in rounds: each round admits one arrival, then serves
        // one job. (admit_round + deadline, request) is the due key.
        let mut queue: Vec<(u64, u64)> = Vec::new();
        let mut served: Vec<(u64, u64)> = Vec::new();
        for (round, &(jitter, deadline)) in arrivals.iter().enumerate() {
            let request = round as u64;
            queue.push((round as u64 + jitter + deadline, request));
            let i = edf_pick(&queue).expect("just pushed");
            let pick = queue.remove(i);
            for &waiting in &queue {
                prop_assert!(waiting >= pick,
                    "served {pick:?} while {waiting:?} was due earlier");
            }
            served.push(pick);
        }
        while let Some(i) = edf_pick(&queue) {
            let pick = queue.remove(i);
            prop_assert!(queue.iter().all(|&w| w >= pick));
            served.push(pick);
        }
        // Once admissions stop, the tail drains in due order.
        let tail = &served[arrivals.len()..];
        prop_assert!(tail.windows(2).all(|w| w[0] <= w[1]));
    }

    /// Starvation detection: no backlogged lane ever waits more than
    /// `threshold + 2` ticks past its last service (the +2 covers the
    /// other two lanes crossing the threshold in the same tick), and
    /// every starvation-caused pick really was over threshold.
    #[test]
    fn starvation_fires_within_threshold(
        threshold in 5u64..40,
        up in proptest::collection::vec((any::<bool>(), any::<bool>(), any::<bool>()), 200..400),
        i in 0u32..=50,
        t in 0u32..=50,
    ) {
        prop_assume!(i + t <= 100);
        let mut s = Scheduler::new(
            LaneBudgets { interactive_min: i, timed_min: t, bulk_min: 0 },
            StarvationPolicy { max_wait_ticks: threshold },
            20,
        ).unwrap();
        let mut wait = [0u64; 3];
        for (round, &(a, b, c)) in up.iter().enumerate() {
            let backlog = [a, b, c];
            let waits: Vec<Option<u64>> = Lane::ALL
                .iter()
                .map(|l| backlog[l.index()].then_some(wait[l.index()]))
                .collect();
            let picked = s.pick([waits[0], waits[1], waits[2]]);
            for l in Lane::ALL {
                let li = l.index();
                if backlog[li] {
                    prop_assert!(wait[li] <= threshold + 2,
                        "{l:?} starved for {} > {} ticks at round {round}",
                        wait[li], threshold + 2);
                    wait[li] += 1;
                } else {
                    // An empty lane has no head job; when one arrives
                    // its wait starts from zero.
                    wait[li] = 0;
                }
            }
            if let Some((lane, cause)) = picked {
                prop_assert!(backlog[lane.index()], "picked an empty lane");
                if cause == PickCause::Starvation {
                    prop_assert!(wait[lane.index()] - 1 > threshold,
                        "starvation pick below threshold at round {round}");
                }
                wait[lane.index()] = 0;
            } else {
                prop_assert!(backlog.iter().all(|&x| !x));
            }
        }
    }
}

/// Timed-only traffic for the real-core EDF tests: `len` deadline-
/// skewed rotations across 3 CKKS tenants sharing one context, paced
/// against the service's own tick (so admission ticks — and therefore
/// due ticks — vary with the schedule itself). Returns each result's
/// flat words (submit order) and the audit JSONL, after asserting the
/// EDF service-order property against a replay of the audit.
fn run_timed_edf(max_in_flight: usize, len: usize) -> (Vec<Vec<u64>>, String) {
    // max_batch = 1 isolates EDF: every Timed dispatch serves exactly
    // the job `edf_pick` chose, with no coalescing mates riding along.
    let cfg = ServiceConfig {
        max_batch: 1,
        max_in_flight,
        key_cache_bytes: 1 << 30,
        ..ServiceConfig::default_config()
    };
    let mut svc = ServiceCore::new(cfg).unwrap();
    let ctx = CkksContext::new(CkksParams::tiny_params());
    let steps: Vec<i64> = (1..=4).flat_map(|s| [s, -s]).collect();
    let tenants: Vec<_> = (0..3).map(|t| ckks_tenant(&ctx, 960 + t, &steps)).collect();
    for (t, tenant) in tenants.iter().enumerate() {
        svc.register_ckks_tenant(t, ctx.clone(), tenant.galois.clone())
            .unwrap();
    }

    let mix = TrafficMix {
        gate_permille: 0,
        timed_permille: 1000,
        bulk_permille: 0,
    };
    // 3..=60: wide enough that admission order and deadline order
    // decorrelate hard (the whole point of EDF).
    let events = traffic::stream_with_deadlines(97, 3, len, mix, 3..=60);
    let mut ids = Vec::new();
    let mut deadline_of: HashMap<u64, u64> = HashMap::new();
    for ev in &events {
        while svc.tick() < ev.arrival && svc.dispatch_next().is_some() {}
        let RequestKind::TimedRotation { step, deadline } = &ev.kind else {
            unreachable!("timed-only mix");
        };
        let id = svc
            .submit(
                ev.tenant,
                Workload::Rotation {
                    ct: tenants[ev.tenant].input.clone(),
                    step: *step,
                    deadline: *deadline,
                },
            )
            .unwrap();
        deadline_of.insert(id.raw(), *deadline);
        ids.push(id);
    }
    svc.run_until_idle();

    // Replay the audit against the EDF model: at every completion,
    // the served job must be the queue's `(due, request)` minimum —
    // equivalently, dispatch order is non-decreasing in due tick
    // among simultaneously queued jobs, and a job past its deadline
    // is only ever "missed" when everything still queued is due no
    // earlier (no feasible-deadline job waits while a later-deadline
    // job is served).
    let jsonl = svc.audit().to_jsonl();
    let mut queue: Vec<(u64, u64)> = Vec::new();
    let mut completions = 0;
    for line in jsonl.lines() {
        if line.contains("\"event\":\"admit\"") {
            let r = json_u64(line, "request").unwrap();
            let t = json_u64(line, "tick").unwrap();
            queue.push((t + deadline_of[&r], r));
        } else if line.contains("\"event\":\"dispatch\"") {
            assert_eq!(json_u64(line, "jobs"), Some(1), "max_batch = 1");
        } else if line.contains("\"event\":\"complete\"") {
            let r = json_u64(line, "request").unwrap();
            let min = *queue.iter().min().expect("completion implies a queued job");
            assert_eq!(
                min.1, r,
                "served request {r} while request {} was due at tick {}",
                min.1, min.0
            );
            queue.retain(|&(_, q)| q != r);
            completions += 1;
        }
    }
    assert_eq!(completions, len, "every timed job completed");

    let flats: Vec<Vec<u64>> = ids
        .iter()
        .map(
            |&id| match svc.take_result(id).expect("request completed") {
                Response::Vector(ct) => ct_flat(&ct),
                Response::Bit(_) => unreachable!("timed-only traffic"),
            },
        )
        .collect();
    (flats, jsonl)
}

/// The Timed lane is EDF — proven by audit replay — and the whole
/// schedule (audit bytes, ciphertext bits) is invariant across
/// `max_in_flight` ∈ {1, 2, 4}.
#[test]
fn timed_lane_is_edf_at_any_in_flight() {
    let (base_flats, base_jsonl) = run_timed_edf(1, 24);
    let base_audit = strip_meta(&base_jsonl);
    for n in [2usize, 4] {
        let (flats, jsonl) = run_timed_edf(n, 24);
        assert_eq!(flats, base_flats, "max_in_flight={n} ciphertexts diverged");
        assert_eq!(
            strip_meta(&jsonl),
            base_audit,
            "max_in_flight={n} audit diverged"
        );
    }
}

/// The PR 9 fairness invariants survive concurrent in-flight
/// dispatch: under a two-lane backlog, budget minimums hold over the
/// backlogged prefix, and a starved lane is still force-served within
/// its threshold — identically for `max_in_flight` ∈ {1, 2, 4}.
#[test]
fn budget_and_starvation_invariants_hold_at_any_in_flight() {
    let ctx = CkksContext::new(CkksParams::tiny_params());
    let t0 = ckks_tenant(&ctx, 970, &[1, 2]);
    let t1 = ckks_tenant(&ctx, 971, &[1, 2]);

    let mut budget_audits = Vec::new();
    let mut starve_audits = Vec::new();
    for n in [1usize, 2, 4] {
        // Budgets: timed 30 / bulk 50 over a 16 timed + 24 bulk
        // backlog (no interactive traffic; its floor is 0).
        let cfg = ServiceConfig {
            budgets: LaneBudgets {
                interactive_min: 0,
                timed_min: 30,
                bulk_min: 50,
            },
            max_batch: 1,
            max_in_flight: n,
            key_cache_bytes: 1 << 30,
            ..ServiceConfig::default_config()
        };
        let mut svc = ServiceCore::new(cfg).unwrap();
        svc.register_ckks_tenant(0, ctx.clone(), t0.galois.clone())
            .unwrap();
        svc.register_ckks_tenant(1, ctx.clone(), t1.galois.clone())
            .unwrap();
        for i in 0..16i64 {
            svc.submit(
                (i % 2) as usize,
                Workload::Rotation {
                    ct: [&t0, &t1][(i % 2) as usize].input.clone(),
                    step: 1 + (i % 2),
                    deadline: 100,
                },
            )
            .unwrap();
        }
        for i in 0..24i64 {
            svc.submit(
                (i % 2) as usize,
                Workload::Analytics {
                    ct: [&t0, &t1][(i % 2) as usize].input.clone(),
                    steps: vec![1 + (i % 2)],
                },
            )
            .unwrap();
        }
        svc.run_until_idle();
        let jsonl = svc.audit().to_jsonl();
        let prefix: Vec<_> = parse_dispatches(&jsonl)
            .into_iter()
            .take_while(|d| d.pending[1] > 0 && d.pending[2] > 0)
            .collect();
        assert!(prefix.len() >= 20, "short prefix: {}", prefix.len());
        for (lane, min) in [(Lane::Timed, 30usize), (Lane::Bulk, 50)] {
            let count = prefix.iter().filter(|d| d.lane == lane.name()).count();
            let share = count * 100 / prefix.len();
            assert!(
                share + 10 >= min,
                "max_in_flight={n}: {} got {share}% < {min}%",
                lane.name()
            );
        }
        budget_audits.push(strip_meta(&jsonl));

        // Starvation: all-slack budgets, threshold 3 — priority alone
        // would serve Timed forever, so Bulk must be force-served.
        let cfg = ServiceConfig {
            budgets: LaneBudgets {
                interactive_min: 0,
                timed_min: 0,
                bulk_min: 0,
            },
            starvation: StarvationPolicy { max_wait_ticks: 3 },
            max_batch: 1,
            max_in_flight: n,
            key_cache_bytes: 1 << 30,
            ..ServiceConfig::default_config()
        };
        let mut svc = ServiceCore::new(cfg).unwrap();
        svc.register_ckks_tenant(0, ctx.clone(), t0.galois.clone())
            .unwrap();
        svc.register_ckks_tenant(1, ctx.clone(), t1.galois.clone())
            .unwrap();
        for i in 0..6i64 {
            svc.submit(
                0,
                Workload::Rotation {
                    ct: t0.input.clone(),
                    step: 1 + (i % 2),
                    deadline: 100,
                },
            )
            .unwrap();
        }
        let bulk = svc
            .submit(
                1,
                Workload::Analytics {
                    ct: t1.input.clone(),
                    steps: vec![1],
                },
            )
            .unwrap();
        svc.run_until_idle();
        assert!(svc.take_result(bulk).is_some());
        let starved: Vec<_> = svc
            .audit()
            .events()
            .filter_map(|e| match e {
                AuditEvent::Starvation { lane, waited, .. } => Some((*lane, *waited)),
                _ => None,
            })
            .collect();
        assert_eq!(
            starved,
            vec![(Lane::Bulk, 4)],
            "max_in_flight={n}: bulk not force-served one past threshold"
        );
        starve_audits.push(strip_meta(&svc.audit().to_jsonl()));
    }
    assert!(
        budget_audits.windows(2).all(|w| w[0] == w[1]),
        "budget schedule varies with max_in_flight"
    );
    assert!(
        starve_audits.windows(2).all(|w| w[0] == w[1]),
        "starvation schedule varies with max_in_flight"
    );
}
