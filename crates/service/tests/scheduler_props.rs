//! Property suites for the lane scheduler: budget enforcement and
//! starvation bounds over randomized traffic shapes.
//!
//! The scheduler is pure decision logic, so these suites drive it
//! directly with synthetic backlog observations — thousands of
//! randomized streams per second, no ciphertexts anywhere. The
//! end-to-end suite (`service_e2e.rs`) separately checks that the
//! real service loop feeds the scheduler the same observations these
//! models do.

use proptest::prelude::*;
use trinity_service::{Lane, LaneBudgets, PickCause, Scheduler, StarvationPolicy};

/// Ceiling share of one window slot, percent.
fn quantum(window: usize) -> u32 {
    100u32.div_ceil(window as u32)
}

/// Drives `picks` scheduler rounds with every lane permanently
/// backlogged, modelling head-of-line wait as ticks-since-last-service.
fn run_full_backlog(s: &mut Scheduler, picks: usize, check_from: usize, slack: u32) {
    let mut wait = [0u64; 3];
    for round in 0..picks {
        let (lane, _) = s
            .pick([Some(wait[0]), Some(wait[1]), Some(wait[2])])
            .expect("backlogged lanes always yield a pick");
        for l in Lane::ALL {
            wait[l.index()] += 1;
        }
        wait[lane.index()] = 0;
        if round >= check_from {
            for l in Lane::ALL {
                let share = s.share_percent(l);
                let min = s.budgets().min_for(l);
                assert!(
                    share + slack >= min,
                    "{l:?} share {share}% below min {min}% (slack {slack}) at round {round}"
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Budget enforcement: under full backlog, every lane holds its
    /// minimum share (up to window quantisation) for *any*
    /// satisfiable budget split and window size.
    #[test]
    fn minimum_shares_hold_for_any_satisfiable_split(
        i in 0u32..=60,
        t in 0u32..=60,
        b in 0u32..=60,
        window in 10usize..=40,
    ) {
        prop_assume!(i + t + b <= 100);
        let mut s = Scheduler::new(
            LaneBudgets { interactive_min: i, timed_min: t, bulk_min: b },
            // Starvation disabled: this property isolates the budget
            // mechanism (the starvation property has its own suite).
            StarvationPolicy { max_wait_ticks: u64::MAX },
            window,
        ).unwrap();
        let warmup = 3 * window;
        run_full_backlog(&mut s, warmup + 100, warmup, 2 * quantum(window) + 1);
    }

    /// Budget enforcement under churn: the backlogged lanes keep
    /// their minimums even while another lane flaps between empty
    /// and flooding.
    #[test]
    fn backlogged_lanes_keep_minimums_while_interactive_flaps(
        flaps in proptest::collection::vec(any::<bool>(), 150..250),
    ) {
        let budgets = LaneBudgets { interactive_min: 20, timed_min: 30, bulk_min: 50 };
        let window = 20;
        let mut s = Scheduler::new(
            budgets,
            StarvationPolicy { max_wait_ticks: u64::MAX },
            window,
        ).unwrap();
        let mut wait = [0u64; 3];
        for (round, &interactive_up) in flaps.iter().enumerate() {
            let waits = [
                interactive_up.then_some(wait[0]),
                Some(wait[1]),
                Some(wait[2]),
            ];
            let (lane, _) = s.pick(waits).expect("timed and bulk stay backlogged");
            prop_assert!(interactive_up || lane != Lane::Interactive,
                "picked an empty lane at round {round}");
            for l in Lane::ALL {
                wait[l.index()] += 1;
            }
            wait[lane.index()] = 0;
            if !interactive_up {
                wait[Lane::Interactive.index()] = 0;
            }
            if round >= 3 * window {
                for l in [Lane::Timed, Lane::Bulk] {
                    let share = s.share_percent(l);
                    let min = budgets.min_for(l);
                    let slack = 3 * quantum(window);
                    prop_assert!(share + slack >= min,
                        "{l:?} share {share}% below min {min}% at round {round}");
                }
            }
        }
    }

    /// Starvation detection: no backlogged lane ever waits more than
    /// `threshold + 2` ticks past its last service (the +2 covers the
    /// other two lanes crossing the threshold in the same tick), and
    /// every starvation-caused pick really was over threshold.
    #[test]
    fn starvation_fires_within_threshold(
        threshold in 5u64..40,
        up in proptest::collection::vec((any::<bool>(), any::<bool>(), any::<bool>()), 200..400),
        i in 0u32..=50,
        t in 0u32..=50,
    ) {
        prop_assume!(i + t <= 100);
        let mut s = Scheduler::new(
            LaneBudgets { interactive_min: i, timed_min: t, bulk_min: 0 },
            StarvationPolicy { max_wait_ticks: threshold },
            20,
        ).unwrap();
        let mut wait = [0u64; 3];
        for (round, &(a, b, c)) in up.iter().enumerate() {
            let backlog = [a, b, c];
            let waits: Vec<Option<u64>> = Lane::ALL
                .iter()
                .map(|l| backlog[l.index()].then_some(wait[l.index()]))
                .collect();
            let picked = s.pick([waits[0], waits[1], waits[2]]);
            for l in Lane::ALL {
                let li = l.index();
                if backlog[li] {
                    prop_assert!(wait[li] <= threshold + 2,
                        "{l:?} starved for {} > {} ticks at round {round}",
                        wait[li], threshold + 2);
                    wait[li] += 1;
                } else {
                    // An empty lane has no head job; when one arrives
                    // its wait starts from zero.
                    wait[li] = 0;
                }
            }
            if let Some((lane, cause)) = picked {
                prop_assert!(backlog[lane.index()], "picked an empty lane");
                if cause == PickCause::Starvation {
                    prop_assert!(wait[lane.index()] - 1 > threshold,
                        "starvation pick below threshold at round {round}");
                }
                wait[lane.index()] = 0;
            } else {
                prop_assert!(backlog.iter().all(|&x| !x));
            }
        }
    }
}
