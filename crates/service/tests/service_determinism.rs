//! Metamorphic determinism suite: the replay harness that *proves*
//! concurrent in-flight dispatch is unobservable.
//!
//! One seeded mixed-tenant scenario (TFHE gates + CKKS timed/bulk
//! rotations, skewed deadlines) is replayed under every combination of
//! `max_in_flight` ∈ {1, 2, 4} and kernel backend ∈ {scalar, lanes,
//! threaded} — nine runs. The metamorphic relation: every run must
//! produce bit-identical result ciphertexts and a byte-identical audit
//! JSONL, ignoring only the schema-stamped `meta` line (which records
//! the configuration and therefore *must* differ). Each run separately
//! checks its results against isolated sequential oracles (inside
//! `run_mixed_scenario`), so agreement across runs is agreement with
//! ground truth, not nine-way groupthink.
//!
//! The suite also pins the traffic shape that makes the relation worth
//! testing: at least one Interactive dispatch batches >= 2 gates
//! through the shared blind rotation, and at least one rotation
//! dispatch coalesces >= 2 requests.

mod common;

use common::{
    json_u64, mixed_cfg, parse_completes, parse_dispatches, run_mixed_scenario, strip_meta,
    under_each_backend,
};

#[test]
fn nine_way_replay_is_bit_and_byte_identical() {
    let mut runs = Vec::new();
    for n in [1usize, 2, 4] {
        for (backend, run) in under_each_backend(|| run_mixed_scenario(mixed_cfg(n))) {
            runs.push((format!("{backend}/max_in_flight={n}"), n, run));
        }
    }
    assert_eq!(runs.len(), 9);

    let (base_name, _, base) = &runs[0];
    let base_audit = strip_meta(&base.jsonl);

    // The scenario really exercises the machinery under test: a
    // batched gate dispatch (>= 2 blind rotations in one group) and a
    // coalesced keyswitch dispatch (>= 2 requests in one group).
    let dispatches = parse_dispatches(&base.jsonl);
    assert!(
        dispatches
            .iter()
            .any(|d| d.lane == "interactive" && d.jobs >= 2),
        "no Interactive dispatch batched >= 2 gates: {dispatches:?}"
    );
    assert!(
        dispatches
            .iter()
            .any(|d| d.lane != "interactive" && d.jobs >= 2),
        "no rotation dispatch coalesced >= 2 requests: {dispatches:?}"
    );
    // Canonical completion order: within one dispatch group,
    // completions are audited in ascending request id.
    let completes = parse_completes(&base.jsonl);
    for pair in completes.windows(2) {
        let ((_, g0, r0), (_, g1, r1)) = (pair[0], pair[1]);
        assert!(
            g0 != g1 || r0 < r1,
            "group {g0} completions out of canonical order: {r0} before {r1}"
        );
    }
    // Every completion's group correlates to a dispatched group wide
    // enough to have produced it. Gate groups retire every job they
    // carry; rotation groups may retire fewer (a chained job's
    // intermediate steps complete nothing — the result feeds its next
    // dispatch).
    for d in &dispatches {
        let retired = completes.iter().filter(|&&(_, g, _)| g == d.group).count();
        assert!(
            retired <= d.jobs,
            "group {} dispatched {} jobs but retired {retired}",
            d.group,
            d.jobs
        );
        if d.lane == "interactive" {
            assert_eq!(retired, d.jobs, "gate group {} retired short", d.group);
        }
    }

    for (name, n, run) in &runs {
        // The meta line stamps this run's configuration...
        let meta = run.jsonl.lines().next().expect("audit opens with meta");
        assert!(meta.contains("\"event\":\"meta\""), "{name}: {meta}");
        assert_eq!(
            json_u64(meta, "max_in_flight"),
            Some(*n as u64),
            "{name} meta line"
        );
        // ...and is the ONLY divergence: ciphertext bits and audit
        // bytes match the base run exactly.
        assert_eq!(
            run.flats, base.flats,
            "{name}: ciphertexts diverged from {base_name}"
        );
        assert_eq!(
            strip_meta(&run.jsonl),
            base_audit,
            "{name}: audit diverged from {base_name}"
        );
    }
}
