//! JSONL audit log of scheduler decisions.
//!
//! Every admission, rejection, dispatch, completion and starvation
//! event is appended as one self-describing JSON object per line, so a
//! deployment (or a test) can replay exactly what the scheduler did
//! and why — which lane was served, under which cause, how many jobs
//! one kernel dispatch carried, and what the lane backlogs looked like
//! at the moment of decision. The encoder is hand-rolled: events are
//! flat maps of identifiers and small integers, which keeps the
//! serialisation trivially reviewable and the crate dependency-free.

use std::collections::VecDeque;

use crate::lane::Lane;

/// Audit schema version, bumped when event shapes change.
///
/// Version 2: dispatch and completion events carry a `group` id tying
/// each completion to the kernel dispatch that produced it (coalesced
/// and batched dispatches retire several requests per group, which v1
/// could not correlate post-hoc), and the log opens with a `meta` line
/// stamping the service configuration the run used.
pub const SCHEMA_VERSION: u32 = 2;

/// Why the scheduler served a lane.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PickCause {
    /// The lane exceeded the starvation threshold.
    Starvation,
    /// The lane was below its minimum budget share.
    BudgetDeficit,
    /// No lane was starved or in deficit; priority order decided.
    Priority,
}

impl PickCause {
    /// Audit-log spelling.
    pub fn name(self) -> &'static str {
        match self {
            PickCause::Starvation => "starvation",
            PickCause::BudgetDeficit => "budget_deficit",
            PickCause::Priority => "priority",
        }
    }
}

/// One structured audit event. Rendered to JSONL by [`AuditLog`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AuditEvent {
    /// The first line of every log: the service configuration this run
    /// executed under. The determinism suites compare audit logs across
    /// `max_in_flight` settings by ignoring exactly this line — every
    /// other byte must match.
    Meta {
        /// Configured concurrent in-flight dispatch bound.
        max_in_flight: usize,
        /// Configured coalescing/batching width.
        max_batch: usize,
        /// Scheduler fairness window (picks).
        window: usize,
    },
    /// A request passed admission control and was enqueued.
    Admit {
        /// Scheduler tick at admission.
        tick: u64,
        /// Tenant the request belongs to.
        tenant: usize,
        /// Request id.
        request: u64,
        /// Lane the request was routed to.
        lane: Lane,
    },
    /// A request was refused at admission.
    Reject {
        /// Scheduler tick at rejection.
        tick: u64,
        /// Tenant the request belonged to.
        tenant: usize,
        /// Machine-readable refusal reason.
        reason: &'static str,
    },
    /// One kernel dispatch was issued for a lane.
    Dispatch {
        /// Scheduler tick of the dispatch.
        tick: u64,
        /// Dispatch-group id (monotonic per dispatch); completion
        /// events carry the id of the group that retired them.
        group: u64,
        /// Lane served.
        lane: Lane,
        /// Why this lane was chosen.
        cause: PickCause,
        /// Number of requests coalesced into this dispatch.
        jobs: usize,
        /// Per-lane backlog (`[interactive, timed, bulk]`) *before*
        /// the dispatch — what the scheduler saw when deciding.
        pending: [usize; 3],
    },
    /// A request finished and its result became collectable.
    Complete {
        /// Scheduler tick of completion.
        tick: u64,
        /// The dispatch group that produced this result.
        group: u64,
        /// Request id.
        request: u64,
    },
    /// A lane crossed the starvation threshold and was force-served.
    Starvation {
        /// Scheduler tick of detection.
        tick: u64,
        /// The starved lane.
        lane: Lane,
        /// Ticks the lane's head job had waited.
        waited: u64,
    },
}

impl AuditEvent {
    /// Renders the event as one JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        match self {
            AuditEvent::Meta {
                max_in_flight,
                max_batch,
                window,
            } => format!(
                "{{\"schema_version\":{SCHEMA_VERSION},\"event\":\"meta\",\
                 \"max_in_flight\":{max_in_flight},\"max_batch\":{max_batch},\
                 \"window\":{window}}}"
            ),
            AuditEvent::Admit {
                tick,
                tenant,
                request,
                lane,
            } => format!(
                "{{\"schema_version\":{SCHEMA_VERSION},\"event\":\"admit\",\"tick\":{tick},\
                 \"tenant\":{tenant},\"request\":{request},\"lane\":\"{}\"}}",
                lane.name()
            ),
            AuditEvent::Reject {
                tick,
                tenant,
                reason,
            } => format!(
                "{{\"schema_version\":{SCHEMA_VERSION},\"event\":\"reject\",\"tick\":{tick},\
                 \"tenant\":{tenant},\"reason\":\"{reason}\"}}"
            ),
            AuditEvent::Dispatch {
                tick,
                group,
                lane,
                cause,
                jobs,
                pending,
            } => format!(
                "{{\"schema_version\":{SCHEMA_VERSION},\"event\":\"dispatch\",\"tick\":{tick},\
                 \"group\":{group},\"lane\":\"{}\",\"cause\":\"{}\",\"jobs\":{jobs},\
                 \"pending\":[{},{},{}]}}",
                lane.name(),
                cause.name(),
                pending[0],
                pending[1],
                pending[2]
            ),
            AuditEvent::Complete {
                tick,
                group,
                request,
            } => format!(
                "{{\"schema_version\":{SCHEMA_VERSION},\"event\":\"complete\",\"tick\":{tick},\
                 \"group\":{group},\"request\":{request}}}"
            ),
            AuditEvent::Starvation { tick, lane, waited } => format!(
                "{{\"schema_version\":{SCHEMA_VERSION},\"event\":\"starvation\",\"tick\":{tick},\
                 \"lane\":\"{}\",\"waited\":{waited}}}",
                lane.name()
            ),
        }
    }
}

/// An append-only audit log: structured events plus their JSONL
/// rendering, in admission order.
#[derive(Debug, Default)]
pub struct AuditLog {
    events: VecDeque<AuditEvent>,
}

impl AuditLog {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one event.
    pub fn push(&mut self, ev: AuditEvent) {
        self.events.push_back(ev);
    }

    /// All events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &AuditEvent> {
        self.events.iter()
    }

    /// Number of events logged.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The full log as JSONL (one JSON object per line, trailing
    /// newline included when non-empty).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for ev in &self.events {
            out.push_str(&ev.to_json());
            out.push('\n');
        }
        out
    }

    /// Writes the JSONL rendering to `path`.
    pub fn write_jsonl(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_jsonl())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jsonl_lines_are_one_object_each_and_versioned() {
        let mut log = AuditLog::new();
        log.push(AuditEvent::Meta {
            max_in_flight: 4,
            max_batch: 8,
            window: 20,
        });
        log.push(AuditEvent::Admit {
            tick: 0,
            tenant: 2,
            request: 7,
            lane: Lane::Bulk,
        });
        log.push(AuditEvent::Dispatch {
            tick: 1,
            group: 0,
            lane: Lane::Bulk,
            cause: PickCause::BudgetDeficit,
            jobs: 3,
            pending: [1, 0, 4],
        });
        log.push(AuditEvent::Starvation {
            tick: 2,
            lane: Lane::Timed,
            waited: 26,
        });
        let jsonl = log.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 4);
        for line in &lines {
            assert!(line.starts_with("{\"schema_version\":2,"), "{line}");
            assert!(line.ends_with('}'), "{line}");
            // Flat objects: every key and string value is quoted, no
            // nested braces beyond the object itself.
            assert_eq!(line.matches('{').count(), 1, "{line}");
        }
        assert!(
            lines[0].contains("\"event\":\"meta\"") && lines[0].contains("\"max_in_flight\":4")
        );
        assert!(lines[1].contains("\"event\":\"admit\"") && lines[1].contains("\"request\":7"));
        assert!(
            lines[2].contains("\"jobs\":3")
                && lines[2].contains("\"group\":0")
                && lines[2].contains("\"cause\":\"budget_deficit\"")
                && lines[2].contains("\"pending\":[1,0,4]")
        );
        assert!(lines[3].contains("\"waited\":26"));
    }

    /// Pulls `"key":<u64>` out of one rendered JSONL line.
    fn field(line: &str, key: &str) -> Option<u64> {
        let at = line.find(&format!("\"{key}\":"))? + key.len() + 3;
        let digits: String = line[at..]
            .chars()
            .take_while(char::is_ascii_digit)
            .collect();
        digits.parse().ok()
    }

    /// The schema-v2 additions must survive a round trip through the
    /// JSONL rendering: every dispatch's `group` is recoverable, and
    /// each completion names the dispatch group that produced it —
    /// the post-hoc correlation coalesced batches previously lost.
    #[test]
    fn group_ids_parse_back_and_correlate_dispatch_to_completion() {
        let mut log = AuditLog::new();
        // Group 0 coalesces requests 3 and 5; group 1 serves request 4.
        log.push(AuditEvent::Dispatch {
            tick: 2,
            group: 0,
            lane: Lane::Bulk,
            cause: PickCause::Priority,
            jobs: 2,
            pending: [0, 0, 2],
        });
        log.push(AuditEvent::Complete {
            tick: 2,
            group: 0,
            request: 3,
        });
        log.push(AuditEvent::Complete {
            tick: 2,
            group: 0,
            request: 5,
        });
        log.push(AuditEvent::Dispatch {
            tick: 3,
            group: 1,
            lane: Lane::Interactive,
            cause: PickCause::Priority,
            jobs: 1,
            pending: [1, 0, 0],
        });
        log.push(AuditEvent::Complete {
            tick: 3,
            group: 1,
            request: 4,
        });

        let jsonl = log.to_jsonl();
        let mut jobs_by_group = std::collections::HashMap::new();
        let mut completions_by_group = std::collections::HashMap::<u64, Vec<u64>>::new();
        for line in jsonl.lines() {
            assert_eq!(
                field(line, "schema_version"),
                Some(u64::from(SCHEMA_VERSION))
            );
            let group = field(line, "group").expect("v2 events carry a group id");
            if line.contains("\"event\":\"dispatch\"") {
                jobs_by_group.insert(group, field(line, "jobs").unwrap());
            } else {
                completions_by_group
                    .entry(group)
                    .or_default()
                    .push(field(line, "request").unwrap());
            }
        }
        // Every completion correlates to a dispatched group, and the
        // advertised job count matches the retired requests.
        assert_eq!(jobs_by_group.len(), 2);
        assert_eq!(completions_by_group[&0], vec![3, 5]);
        assert_eq!(completions_by_group[&1], vec![4]);
        for (group, jobs) in jobs_by_group {
            assert_eq!(completions_by_group[&group].len() as u64, jobs);
        }
    }
}
