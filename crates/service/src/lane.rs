//! QoS lanes and their budget configuration.
//!
//! A serving deployment multiplexes three very different traffic
//! classes over one kernel substrate: latency-bound boolean gates,
//! deadline-tagged rotations, and throughput-bound analytics scans.
//! Each class rides its own *lane* with a guaranteed minimum share of
//! dispatches, so a flood on one lane cannot starve the others — the
//! classic QoS guarantee, enforced here at the granularity the
//! scheduler actually controls (kernel dispatches).

/// One of the three service QoS lanes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Lane {
    /// Latency-sensitive TFHE gate jobs (one PBS each).
    Interactive,
    /// Deadline-tagged CKKS work.
    Timed,
    /// Throughput-oriented CKKS analytics.
    Bulk,
}

impl Lane {
    /// All lanes, in fixed priority order (highest first).
    pub const ALL: [Lane; 3] = [Lane::Interactive, Lane::Timed, Lane::Bulk];

    /// Dense index for per-lane arrays.
    pub fn index(self) -> usize {
        match self {
            Lane::Interactive => 0,
            Lane::Timed => 1,
            Lane::Bulk => 2,
        }
    }

    /// The `fhe_math::pool` dispatch tag this lane's kernel work is
    /// attributed to (tag 0 stays reserved for untagged work).
    pub fn dispatch_tag(self) -> usize {
        self.index() + 1
    }

    /// Lane name as it appears in the JSONL audit log.
    pub fn name(self) -> &'static str {
        match self {
            Lane::Interactive => "interactive",
            Lane::Timed => "timed",
            Lane::Bulk => "bulk",
        }
    }
}

/// Per-lane minimum dispatch shares, in percent. The scheduler
/// guarantees each backlogged lane at least its minimum share of
/// dispatches over the enforcement window; slack (anything left after
/// the minimums) drains in priority order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaneBudgets {
    /// Minimum dispatch share for [`Lane::Interactive`], percent.
    pub interactive_min: u32,
    /// Minimum dispatch share for [`Lane::Timed`], percent.
    pub timed_min: u32,
    /// Minimum dispatch share for [`Lane::Bulk`], percent.
    pub bulk_min: u32,
}

/// A [`LaneBudgets`] whose minimums exceed 100% — unsatisfiable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BudgetError {
    /// The offending sum of minimum shares.
    pub sum: u32,
}

impl std::fmt::Display for BudgetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "lane minimum shares sum to {}%, which exceeds 100%",
            self.sum
        )
    }
}

impl std::error::Error for BudgetError {}

impl LaneBudgets {
    /// The default serving split: interactive gates are guaranteed
    /// 20%, timed work 30%, bulk analytics 50% — the minimums sum to
    /// exactly 100%, so under full backlog every lane is pegged to its
    /// guarantee.
    pub fn default_split() -> Self {
        LaneBudgets {
            interactive_min: 20,
            timed_min: 30,
            bulk_min: 50,
        }
    }

    /// Checks the minimums are jointly satisfiable (sum at most 100%).
    pub fn validate(&self) -> Result<(), BudgetError> {
        let sum = self.interactive_min + self.timed_min + self.bulk_min;
        if sum > 100 {
            Err(BudgetError { sum })
        } else {
            Ok(())
        }
    }

    /// Minimum share for `lane`, percent.
    pub fn min_for(&self, lane: Lane) -> u32 {
        match lane {
            Lane::Interactive => self.interactive_min,
            Lane::Timed => self.timed_min,
            Lane::Bulk => self.bulk_min,
        }
    }
}

/// When the scheduler must declare a lane starved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StarvationPolicy {
    /// A backlogged lane left unserved this many scheduler ticks is
    /// starved: it is dispatched immediately (ahead of budget
    /// arithmetic) and a `starvation` event is written to the audit
    /// log.
    pub max_wait_ticks: u64,
}

impl StarvationPolicy {
    /// Default threshold: a lane may wait at most 25 dispatches.
    pub fn default_policy() -> Self {
        StarvationPolicy { max_wait_ticks: 25 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budgets_validate_against_the_100_percent_ceiling() {
        assert!(LaneBudgets::default_split().validate().is_ok());
        let over = LaneBudgets {
            interactive_min: 40,
            timed_min: 40,
            bulk_min: 30,
        };
        let err = over.validate().unwrap_err();
        assert_eq!(err.sum, 110);
        assert!(err.to_string().contains("110"));
    }

    #[test]
    fn lanes_map_to_distinct_nonzero_dispatch_tags() {
        let tags: Vec<usize> = Lane::ALL.iter().map(|l| l.dispatch_tag()).collect();
        assert_eq!(tags, vec![1, 2, 3]);
        assert!(tags
            .iter()
            .all(|&t| t != 0 && t < fhe_math::pool::DISPATCH_TAGS));
    }
}
