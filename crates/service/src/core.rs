//! The service core: admission, queueing, dispatch, results.
//!
//! [`ServiceCore`] separates *deciding* from *executing*. A
//! single-threaded decision loop admits requests, picks lanes, forms
//! dispatch groups (coalesced rotations, batched gates) and writes the
//! audit log — one group per tick, always, regardless of configuration.
//! Execution is deferred: formed groups park in a FIFO in-flight window
//! of at most [`ServiceConfig::max_in_flight`] groups, and whenever the
//! window fills, a *wave* of mutually independent groups (pairwise
//! disjoint tenants, no group consuming another in-flight group's
//! output) retires — executed concurrently on scoped threads when the
//! wave has more than one group, inline otherwise.
//!
//! Because every scheduling decision is made *before* its group
//! executes, and group outputs are folded back in formation order, the
//! audit log and every ciphertext are byte-for-byte identical for any
//! `max_in_flight` and any kernel backend. `max_in_flight = 1` (the
//! default) degenerates to the fully sequential core: each group
//! retires in the same tick it forms. Each group executes under its
//! lane's `fhe_math::pool` dispatch tag, so the pool's per-tag counters
//! attribute threaded fan-out to QoS lanes for free — including the
//! pool's in-flight gauge, which observes overlapping waves directly.
//!
//! Time is measured in *ticks* — one tick per dispatch opportunity —
//! which keeps budget enforcement and starvation detection exact and
//! reproducible under test (no wall clock anywhere).

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::Arc;

use fhe_ckks::{Ciphertext, CkksContext, Evaluator, SwitchingKey};
use fhe_math::galois::rotation_galois_element;
use fhe_math::pool::tag_dispatches;
use fhe_tfhe::{BatchedGateJob, GateOp, LweCiphertext, ServerKey};

use crate::audit::{AuditEvent, AuditLog, PickCause};
use crate::coalesce::{gates_compatible, mates, Geometry};
use crate::lane::{BudgetError, Lane, LaneBudgets, StarvationPolicy};
use crate::queue::{self, Scheduler};
use crate::session::{AdmissionError, KeyCache, TenantKeys};

/// Service-wide configuration.
#[derive(Debug, Clone, Copy)]
pub struct ServiceConfig {
    /// Per-lane minimum dispatch shares.
    pub budgets: LaneBudgets,
    /// Starvation threshold.
    pub starvation: StarvationPolicy,
    /// Budget-enforcement window (picks).
    pub window: usize,
    /// Maximum queued requests across all lanes; admission rejects
    /// beyond this.
    pub queue_capacity: usize,
    /// Key-cache byte budget.
    pub key_cache_bytes: usize,
    /// Maximum requests coalesced into one kernel dispatch.
    pub max_batch: usize,
    /// Maximum dispatch groups formed but not yet executed. `1` (the
    /// default) executes every group in the tick that forms it —
    /// today's sequential behavior; larger values let independent
    /// groups execute concurrently on scoped threads without changing
    /// a single audit byte or ciphertext bit. `0` is treated as `1`.
    pub max_in_flight: usize,
}

impl ServiceConfig {
    /// Defaults sized for the CI-scale contexts the test suites run:
    /// the 20/30/50 lane split over a 20-pick window, a 256-request
    /// queue, a 64 MiB key cache, up to 8 requests per dispatch, and
    /// strictly sequential execution (`max_in_flight = 1`).
    pub fn default_config() -> Self {
        ServiceConfig {
            budgets: LaneBudgets::default_split(),
            starvation: StarvationPolicy::default_policy(),
            window: 20,
            queue_capacity: 256,
            key_cache_bytes: 64 << 20,
            max_batch: 8,
            max_in_flight: 1,
        }
    }
}

/// Handle for a submitted request; redeem with
/// [`ServiceCore::take_result`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RequestId(u64);

impl RequestId {
    /// The id as it appears in the audit log.
    pub fn raw(self) -> u64 {
        self.0
    }
}

/// What a tenant asks the service to compute.
pub enum Workload {
    /// A TFHE boolean gate over two encrypted bits
    /// ([`Lane::Interactive`]).
    Gate {
        /// The gate.
        op: GateOp,
        /// Encrypted left input.
        a: LweCiphertext,
        /// Encrypted right input.
        b: LweCiphertext,
    },
    /// One CKKS rotation that must complete within `deadline` ticks of
    /// admission ([`Lane::Timed`]).
    Rotation {
        /// The ciphertext to rotate.
        ct: Ciphertext,
        /// Rotation step.
        step: i64,
        /// Completion deadline, in ticks after admission.
        deadline: u64,
    },
    /// A CKKS analytics scan applying `steps` in order
    /// ([`Lane::Bulk`]).
    Analytics {
        /// The ciphertext to scan.
        ct: Ciphertext,
        /// Rotation steps, applied sequentially.
        steps: Vec<i64>,
    },
}

/// A finished request's payload.
pub enum Response {
    /// Result of a [`Workload::Gate`].
    Bit(LweCiphertext),
    /// Result of a [`Workload::Rotation`] or [`Workload::Analytics`].
    Vector(Ciphertext),
}

/// A rotation job's working ciphertext. `Pending` is the deferred-
/// execution placeholder: the value is still being produced by an
/// in-flight group, but the decision loop already knows everything it
/// needs — the level (Galois keyswitching preserves it) for geometry
/// matching, and the producing group for the wave-independence rule.
enum CtSlot {
    Ready(Ciphertext),
    Pending { group: u64, level: usize },
}

impl CtSlot {
    fn level(&self) -> usize {
        match self {
            CtSlot::Ready(ct) => ct.level,
            CtSlot::Pending { level, .. } => *level,
        }
    }
}

enum JobWork {
    Gate {
        op: GateOp,
        a: LweCiphertext,
        b: LweCiphertext,
    },
    /// A rotation chain; `next` indexes the step the job still owes.
    /// [`Workload::Rotation`] is the one-step instance.
    Rotations {
        ct: CtSlot,
        steps: Vec<i64>,
        next: usize,
    },
}

struct Job {
    request: u64,
    tenant: usize,
    lane: Lane,
    admitted: u64,
    /// Tick the job was last served (or admitted); starvation wait is
    /// measured from here, so multi-step chains re-arm between steps.
    last_service: u64,
    deadline: Option<u64>,
    work: JobWork,
}

/// The tick a timed job must have completed by (`u64::MAX` = undated).
fn due_tick(job: &Job) -> u64 {
    job.deadline
        .and_then(|d| job.admitted.checked_add(d))
        .unwrap_or(u64::MAX)
}

struct GateJob {
    request: u64,
    tenant: usize,
    op: GateOp,
    a: LweCiphertext,
    b: LweCiphertext,
}

struct RotJob {
    request: u64,
    tenant: usize,
    step: i64,
    input: CtSlot,
    /// Whether this dispatch finishes the job's chain (result goes to
    /// the tenant) or feeds its next step (result goes to `chain_out`).
    last: bool,
}

enum GroupWork {
    Gates(Vec<GateJob>),
    Rotations {
        ctx: Arc<CkksContext>,
        galois: u64,
        jobs: Vec<RotJob>,
    },
}

/// A dispatch group that has been formed, audited and scheduled, but
/// not yet executed.
struct InFlightGroup {
    id: u64,
    lane: Lane,
    work: GroupWork,
}

impl InFlightGroup {
    fn tenants(&self) -> Vec<usize> {
        match &self.work {
            GroupWork::Gates(jobs) => jobs.iter().map(|j| j.tenant).collect(),
            GroupWork::Rotations { jobs, .. } => jobs.iter().map(|j| j.tenant).collect(),
        }
    }

    /// Whether any input is produced by a group in `wave`.
    fn depends_on(&self, wave: &HashSet<u64>) -> bool {
        match &self.work {
            GroupWork::Gates(_) => false,
            GroupWork::Rotations { jobs, .. } => jobs
                .iter()
                .any(|j| matches!(&j.input, CtSlot::Pending { group, .. } if wave.contains(group))),
        }
    }
}

/// Executes one fully resolved group under its lane's dispatch tag.
/// Free function so retiring waves can run it from scoped threads while
/// the core only lends out `&KeyCache` / `&contexts`.
fn exec_group(
    cache: &KeyCache,
    contexts: &[(Arc<CkksContext>, Evaluator)],
    group: &InFlightGroup,
) -> Vec<Response> {
    let _tag = tag_dispatches(group.lane.dispatch_tag());
    match &group.work {
        GroupWork::Gates(jobs) => {
            let batch: Vec<BatchedGateJob<'_>> = jobs
                .iter()
                .map(|j| {
                    let Some(TenantKeys::Tfhe { server }) = cache.get(j.tenant) else {
                        unreachable!("admission pinned the tenant's TFHE session");
                    };
                    (server, j.op, &j.a, &j.b)
                })
                .collect();
            fhe_tfhe::apply_gates_batched(&batch)
                .into_iter()
                .map(Response::Bit)
                .collect()
        }
        GroupWork::Rotations { ctx, galois, jobs } => {
            let eval = &contexts
                .iter()
                .find(|(c, _)| Arc::ptr_eq(c, ctx))
                .expect("registration recorded the context")
                .1;
            let kjobs: Vec<(&Ciphertext, &SwitchingKey)> = jobs
                .iter()
                .map(|j| {
                    let Some(TenantKeys::Ckks { galois: keys, .. }) = cache.get(j.tenant) else {
                        unreachable!("admission pinned the tenant's CKKS session");
                    };
                    let CtSlot::Ready(ct) = &j.input else {
                        unreachable!("wave inputs were resolved before execution");
                    };
                    let key = keys.get(&j.step).expect("admission validated every step");
                    (ct, key)
                })
                .collect();
            eval.apply_galois_coalesced(&kjobs, *galois)
                .into_iter()
                .map(Response::Vector)
                .collect()
        }
    }
}

/// The multi-tenant serving core. See the module docs for the design.
pub struct ServiceCore {
    cfg: ServiceConfig,
    sched: Scheduler,
    audit: AuditLog,
    cache: KeyCache,
    /// One evaluator per distinct shared context, so coalesced
    /// dispatches have a single op-counter home.
    contexts: Vec<(Arc<CkksContext>, Evaluator)>,
    lanes: [VecDeque<Job>; 3],
    /// Tick each lane last received a dispatch; lane wait (the
    /// scheduler's starvation observation) is measured from here.
    last_served: [u64; 3],
    results: HashMap<u64, Response>,
    /// Formed-but-unexecuted dispatch groups, oldest first.
    in_flight: VecDeque<InFlightGroup>,
    /// Intermediate chain outputs by request id, parked between a
    /// producing group's retirement and the consuming dispatch's.
    chain_out: HashMap<u64, Ciphertext>,
    tick: u64,
    next_request: u64,
    next_group: u64,
}

impl ServiceCore {
    /// Builds a service, validating the lane budgets. The audit log
    /// opens with a [`AuditEvent::Meta`] line stamping the
    /// configuration.
    pub fn new(cfg: ServiceConfig) -> Result<Self, BudgetError> {
        let sched = Scheduler::new(cfg.budgets, cfg.starvation, cfg.window)?;
        let mut audit = AuditLog::new();
        audit.push(AuditEvent::Meta {
            max_in_flight: cfg.max_in_flight,
            max_batch: cfg.max_batch,
            window: cfg.window,
        });
        Ok(ServiceCore {
            sched,
            audit,
            cache: KeyCache::new(cfg.key_cache_bytes),
            contexts: Vec::new(),
            lanes: [VecDeque::new(), VecDeque::new(), VecDeque::new()],
            last_served: [0; 3],
            results: HashMap::new(),
            in_flight: VecDeque::new(),
            chain_out: HashMap::new(),
            tick: 0,
            next_request: 0,
            next_group: 0,
            cfg,
        })
    }

    /// Registers a CKKS tenant: a (possibly shared) context plus
    /// Galois keys by rotation step. Tenants registered over the same
    /// `Arc`'d context become coalescing candidates for one another.
    /// Returns the key bytes charged to the cache.
    pub fn register_ckks_tenant(
        &mut self,
        tenant: usize,
        ctx: Arc<CkksContext>,
        galois: HashMap<i64, SwitchingKey>,
    ) -> Result<usize, AdmissionError> {
        // Insert first: a refused registration must not leave the
        // context (and a fresh Evaluator) resident forever.
        let bytes = self.cache.insert(
            tenant,
            TenantKeys::Ckks {
                ctx: ctx.clone(),
                galois,
            },
        )?;
        if !self.contexts.iter().any(|(c, _)| Arc::ptr_eq(c, &ctx)) {
            self.contexts
                .push((ctx.clone(), Evaluator::new(ctx.clone())));
        }
        Ok(bytes)
    }

    /// Registers a TFHE tenant with its server key. Returns the key
    /// bytes charged to the cache.
    pub fn register_tfhe_tenant(
        &mut self,
        tenant: usize,
        server: ServerKey,
    ) -> Result<usize, AdmissionError> {
        self.cache.insert(tenant, TenantKeys::Tfhe { server })
    }

    /// Admits a request or rejects it (queue saturated, keys not
    /// resident / wrong scheme, uncovered rotation step). Every
    /// outcome is audited.
    pub fn submit(&mut self, tenant: usize, work: Workload) -> Result<RequestId, AdmissionError> {
        if let Err(e) = self.admissible(tenant, &work) {
            self.audit.push(AuditEvent::Reject {
                tick: self.tick,
                tenant,
                reason: e.audit_reason(),
            });
            return Err(e);
        }
        let (lane, job_work, deadline) = match work {
            Workload::Gate { op, a, b } => (Lane::Interactive, JobWork::Gate { op, a, b }, None),
            Workload::Rotation { ct, step, deadline } => (
                Lane::Timed,
                JobWork::Rotations {
                    ct: CtSlot::Ready(ct),
                    steps: vec![step],
                    next: 0,
                },
                Some(deadline),
            ),
            Workload::Analytics { ct, steps } => (
                Lane::Bulk,
                JobWork::Rotations {
                    ct: CtSlot::Ready(ct),
                    steps,
                    next: 0,
                },
                None,
            ),
        };
        let request = self.next_request;
        self.next_request += 1;
        self.cache.touch(tenant);
        self.cache.pin(tenant);
        self.audit.push(AuditEvent::Admit {
            tick: self.tick,
            tenant,
            request,
            lane,
        });
        self.lanes[lane.index()].push_back(Job {
            request,
            tenant,
            lane,
            admitted: self.tick,
            last_service: self.tick,
            deadline,
            work: job_work,
        });
        Ok(RequestId(request))
    }

    fn admissible(&self, tenant: usize, work: &Workload) -> Result<(), AdmissionError> {
        if self.pending_total() >= self.cfg.queue_capacity {
            return Err(AdmissionError::QueueSaturated);
        }
        match (self.cache.get(tenant), work) {
            (Some(TenantKeys::Tfhe { .. }), Workload::Gate { .. }) => Ok(()),
            (Some(TenantKeys::Ckks { galois, .. }), Workload::Rotation { step, .. }) => {
                if galois.contains_key(step) {
                    Ok(())
                } else {
                    Err(AdmissionError::MissingGaloisKey { step: *step })
                }
            }
            (Some(TenantKeys::Ckks { galois, .. }), Workload::Analytics { steps, .. }) => {
                // An empty scan would pass the key check vacuously but
                // has no step for the dispatcher to serve.
                if steps.is_empty() {
                    return Err(AdmissionError::EmptyWorkload);
                }
                steps
                    .iter()
                    .find(|s| !galois.contains_key(s))
                    .map_or(Ok(()), |s| {
                        Err(AdmissionError::MissingGaloisKey { step: *s })
                    })
            }
            // No session, or a session for the other scheme.
            _ => Err(AdmissionError::UnknownTenant),
        }
    }

    /// Runs dispatches until every lane drains, then retires every
    /// in-flight group.
    pub fn run_until_idle(&mut self) {
        while self.dispatch_next().is_some() {}
        self.quiesce();
    }

    /// Performs one dispatch decision (forming one group for one
    /// lane), returning the lane served, or `None` when all lanes are
    /// empty. When the in-flight window is full, retires waves until
    /// it has room again — with `max_in_flight = 1` that executes the
    /// freshly formed group immediately.
    pub fn dispatch_next(&mut self) -> Option<Lane> {
        let waits = self.waits();
        let (lane, cause) = self.sched.pick(waits)?;
        if cause == PickCause::Starvation {
            self.audit.push(AuditEvent::Starvation {
                tick: self.tick,
                lane,
                waited: waits[lane.index()].unwrap_or(0),
            });
        }
        let pending = [
            self.lanes[0].len(),
            self.lanes[1].len(),
            self.lanes[2].len(),
        ];
        match lane {
            Lane::Interactive => self.dispatch_gate(cause, pending),
            Lane::Timed | Lane::Bulk => self.dispatch_rotations(lane, cause, pending),
        }
        self.last_served[lane.index()] = self.tick;
        self.tick += 1;
        while self.in_flight.len() >= self.cfg.max_in_flight.max(1) {
            self.retire_wave();
        }
        Some(lane)
    }

    /// Per-lane waits for the scheduler: ticks since the lane was last
    /// dispatched (or since its head job became runnable, whichever is
    /// later), matching the lane-wait model the scheduler's starvation
    /// property is verified against. Measuring from the *lane's* last
    /// service — not the head job's admission — keeps a deep old
    /// backlog from reading as permanently starved and overriding the
    /// budget mechanism. A timed job past its deadline reports a wait
    /// past the starvation threshold, so deadline misses surface
    /// through the same force-serve path; the scan covers the whole
    /// lane, not just its front, because EDF (not FIFO) decides which
    /// timed job a dispatch serves.
    fn waits(&self) -> [Option<u64>; 3] {
        let mut w = [None; 3];
        for lane in Lane::ALL {
            if let Some(job) = self.lanes[lane.index()].front() {
                let since = job.last_service.max(self.last_served[lane.index()]);
                let mut waited = self.tick - since;
                // checked_add: a deadline near u64::MAX means "never",
                // not an overflow panic.
                let min_due = self.lanes[lane.index()]
                    .iter()
                    .filter_map(|j| j.deadline.and_then(|d| j.admitted.checked_add(d)))
                    .min();
                if min_due.is_some_and(|due| self.tick > due) {
                    waited = waited.max(self.sched.policy().max_wait_ticks + 1);
                }
                w[lane.index()] = Some(waited);
            }
        }
        w
    }

    /// Forms one Interactive group: the head gate plus every queued
    /// gate whose server key can share its batched blind rotation
    /// ([`gates_compatible`]), FIFO, capped at
    /// [`ServiceConfig::max_batch`] (the head counts).
    fn dispatch_gate(&mut self, cause: PickCause, pending: [usize; 3]) {
        let head = self.lanes[Lane::Interactive.index()]
            .pop_front()
            .expect("scheduler picked a non-empty lane");
        let picked: Vec<usize> = {
            let Some(TenantKeys::Tfhe { server: head_key }) = self.cache.get(head.tenant) else {
                unreachable!("admission pinned the tenant's TFHE session");
            };
            self.lanes[Lane::Interactive.index()]
                .iter()
                .enumerate()
                .filter(|(_, job)| {
                    let Some(TenantKeys::Tfhe { server }) = self.cache.get(job.tenant) else {
                        unreachable!("interactive lane carries TFHE jobs only");
                    };
                    gates_compatible(head_key, server)
                })
                .map(|(qi, _)| qi)
                .take(self.cfg.max_batch.saturating_sub(1))
                .collect()
        };
        let mut batch = vec![head];
        // Remove back-to-front so queue indices stay valid.
        for &qi in picked.iter().rev() {
            let job = self.lanes[Lane::Interactive.index()]
                .remove(qi)
                .expect("mate index is live");
            batch.push(job);
        }
        // Canonical completion order: ascending request id.
        batch.sort_by_key(|j| j.request);
        let group = self.next_group;
        self.next_group += 1;
        self.audit.push(AuditEvent::Dispatch {
            tick: self.tick,
            group,
            lane: Lane::Interactive,
            cause,
            jobs: batch.len(),
            pending,
        });
        let mut jobs = Vec::with_capacity(batch.len());
        for job in batch {
            let JobWork::Gate { op, a, b } = job.work else {
                unreachable!("interactive lane carries gate jobs only");
            };
            self.audit.push(AuditEvent::Complete {
                tick: self.tick,
                group,
                request: job.request,
            });
            jobs.push(GateJob {
                request: job.request,
                tenant: job.tenant,
                op,
                a,
                b,
            });
        }
        self.in_flight.push_back(InFlightGroup {
            id: group,
            lane: Lane::Interactive,
            work: GroupWork::Gates(jobs),
        });
    }

    /// Forms one rotation group for `lane`, coalescing every queued
    /// Timed/Bulk job that shares the head's geometry (same shared
    /// context, level, Galois element) — each job under its own
    /// tenant's switching key. The Timed lane serves
    /// earliest-deadline-first ([`queue::edf_pick`]); Bulk stays FIFO.
    fn dispatch_rotations(&mut self, lane: Lane, cause: PickCause, pending: [usize; 3]) {
        let head_idx = if lane == Lane::Timed {
            let dues: Vec<(u64, u64)> = self.lanes[lane.index()]
                .iter()
                .map(|j| (due_tick(j), j.request))
                .collect();
            queue::edf_pick(&dues).expect("scheduler picked a non-empty lane")
        } else {
            0
        };
        let head = self.lanes[lane.index()]
            .remove(head_idx)
            .expect("scheduler picked a non-empty lane");
        let head_ctx = self.job_ctx(&head);
        let head_geom = self.job_geometry(&head, &head_ctx);
        let g = head_geom.galois();

        // Collect geometry-matching mates from both rotation lanes,
        // FIFO within each lane, Timed before Bulk.
        let mut batch = vec![head];
        let mut candidates = Vec::new();
        let mut locs = Vec::new();
        for l in [Lane::Timed, Lane::Bulk] {
            for (qi, job) in self.lanes[l.index()].iter().enumerate() {
                let ctx = self.job_ctx(job);
                candidates.push((locs.len(), self.job_geometry(job, &ctx)));
                locs.push((l, qi));
            }
        }
        let picked = mates(head_geom, &candidates, self.cfg.max_batch);
        // Remove back-to-front so queue indices stay valid.
        for &p in picked.iter().rev() {
            let (l, qi) = locs[p];
            let job = self.lanes[l.index()]
                .remove(qi)
                .expect("mate index is live");
            batch.push(job);
        }
        // Canonical completion order: ascending request id, whichever
        // job EDF or coalescing pulled first.
        batch.sort_by_key(|j| j.request);

        let group = self.next_group;
        self.next_group += 1;
        self.audit.push(AuditEvent::Dispatch {
            tick: self.tick,
            group,
            lane,
            cause,
            jobs: batch.len(),
            pending,
        });
        // Galois keyswitching preserves the level, so every output of
        // this group sits at the head geometry's level.
        let level = head_geom.level();
        let mut jobs = Vec::with_capacity(batch.len());
        for mut job in batch {
            let JobWork::Rotations { ct, steps, next } = &mut job.work else {
                unreachable!("rotation lanes carry rotation jobs only");
            };
            let step = steps[*next];
            let input = std::mem::replace(ct, CtSlot::Pending { group, level });
            *next += 1;
            let last = *next == steps.len();
            jobs.push(RotJob {
                request: job.request,
                tenant: job.tenant,
                step,
                input,
                last,
            });
            if last {
                self.audit.push(AuditEvent::Complete {
                    tick: self.tick,
                    group,
                    request: job.request,
                });
            } else {
                job.last_service = self.tick;
                self.lanes[job.lane.index()].push_back(job);
            }
        }
        self.in_flight.push_back(InFlightGroup {
            id: group,
            lane,
            work: GroupWork::Rotations {
                ctx: head_ctx,
                galois: g,
                jobs,
            },
        });
    }

    /// Retires the next *wave*: the maximal leading run of in-flight
    /// groups that are mutually independent — pairwise-disjoint tenant
    /// sets (so per-tenant key material and cache pins are never
    /// shared across concurrent dispatches) and no group consuming a
    /// ciphertext produced by an earlier group still in the wave. The
    /// first group is always eligible (everything before it has
    /// retired), so progress is guaranteed. A wave of one executes
    /// inline; larger waves fan out on scoped threads, one per group.
    /// Outputs fold back in formation order, keeping results and
    /// chain hand-offs deterministic.
    fn retire_wave(&mut self) {
        if self.in_flight.is_empty() {
            return;
        }
        let mut wave_tenants: HashSet<usize> = HashSet::new();
        let mut wave_ids: HashSet<u64> = HashSet::new();
        let mut len = 0;
        for group in &self.in_flight {
            let tenants = group.tenants();
            let conflicts =
                tenants.iter().any(|t| wave_tenants.contains(t)) || group.depends_on(&wave_ids);
            if len > 0 && conflicts {
                break;
            }
            wave_tenants.extend(tenants);
            wave_ids.insert(group.id);
            len += 1;
        }
        let mut wave: Vec<InFlightGroup> = self.in_flight.drain(..len).collect();
        // Resolve chained inputs: the producer retired in an earlier
        // wave (the independence rule guarantees it), so its output is
        // parked in `chain_out` under this job's request id.
        for group in &mut wave {
            if let GroupWork::Rotations { jobs, .. } = &mut group.work {
                for job in jobs {
                    if matches!(job.input, CtSlot::Pending { .. }) {
                        let ct = self
                            .chain_out
                            .remove(&job.request)
                            .expect("producer group retired first");
                        job.input = CtSlot::Ready(ct);
                    }
                }
            }
        }
        let outputs: Vec<Vec<Response>> = {
            let cache = &self.cache;
            let contexts = &self.contexts[..];
            if wave.len() == 1 {
                vec![exec_group(cache, contexts, &wave[0])]
            } else {
                std::thread::scope(|s| {
                    let handles: Vec<_> = wave
                        .iter()
                        .map(|g| s.spawn(move || exec_group(cache, contexts, g)))
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| h.join().expect("in-flight group execution panicked"))
                        .collect()
                })
            }
        };
        for (group, outs) in wave.into_iter().zip(outputs) {
            match group.work {
                GroupWork::Gates(jobs) => {
                    for (job, out) in jobs.into_iter().zip(outs) {
                        self.results.insert(job.request, out);
                        self.cache.unpin(job.tenant);
                    }
                }
                GroupWork::Rotations { jobs, .. } => {
                    for (job, out) in jobs.into_iter().zip(outs) {
                        if job.last {
                            self.results.insert(job.request, out);
                            self.cache.unpin(job.tenant);
                        } else {
                            let Response::Vector(ct) = out else {
                                unreachable!("rotation groups yield vectors");
                            };
                            self.chain_out.insert(job.request, ct);
                        }
                    }
                }
            }
        }
    }

    /// Retires every in-flight group.
    fn quiesce(&mut self) {
        while !self.in_flight.is_empty() {
            self.retire_wave();
        }
    }

    fn job_ctx(&self, job: &Job) -> Arc<CkksContext> {
        let Some(TenantKeys::Ckks { ctx, .. }) = self.cache.get(job.tenant) else {
            unreachable!("rotation jobs belong to CKKS tenants");
        };
        ctx.clone()
    }

    fn job_geometry(&self, job: &Job, ctx: &Arc<CkksContext>) -> Geometry {
        let JobWork::Rotations { ct, steps, next } = &job.work else {
            unreachable!("rotation lanes carry rotation jobs only");
        };
        let g = rotation_galois_element(steps[*next], ctx.n());
        Geometry::new(ctx, ct.level(), g)
    }

    /// Collects a finished request's result, retiring in-flight groups
    /// as needed to produce it.
    pub fn take_result(&mut self, id: RequestId) -> Option<Response> {
        while !self.results.contains_key(&id.0) && !self.in_flight.is_empty() {
            self.retire_wave();
        }
        self.results.remove(&id.0)
    }

    /// Requests queued across all lanes (excluding in-flight groups).
    pub fn pending_total(&self) -> usize {
        self.lanes.iter().map(VecDeque::len).sum()
    }

    /// Per-lane queue depths (`[interactive, timed, bulk]`).
    pub fn queue_depths(&self) -> [usize; 3] {
        [
            self.lanes[0].len(),
            self.lanes[1].len(),
            self.lanes[2].len(),
        ]
    }

    /// Dispatch groups formed but not yet executed.
    pub fn in_flight_groups(&self) -> usize {
        self.in_flight.len()
    }

    /// The audit log so far.
    pub fn audit(&self) -> &AuditLog {
        &self.audit
    }

    /// The key cache (capacity, usage, evictions).
    pub fn key_cache(&self) -> &KeyCache {
        &self.cache
    }

    /// The current scheduler tick.
    pub fn tick(&self) -> u64 {
        self.tick
    }

    /// The shared evaluator for `ctx`, if any tenant registered over
    /// it — its op counters aggregate the context's service traffic.
    pub fn evaluator_for(&self, ctx: &Arc<CkksContext>) -> Option<&Evaluator> {
        self.contexts
            .iter()
            .find(|(c, _)| Arc::ptr_eq(c, ctx))
            .map(|(_, e)| e)
    }
}
