//! The service core: admission, queueing, dispatch, results.
//!
//! [`ServiceCore`] is a deliberately *single-threaded* event loop: one
//! logical thread admits requests, picks lanes, and issues kernel
//! dispatches. Parallelism lives below, in the kernel backend's worker
//! pool (where the paper puts it — wide batch kernels, not concurrent
//! control flow), so the scheduler needs no locks at all and every
//! decision is deterministic and auditable. Each dispatch runs under
//! the lane's `fhe_math::pool` dispatch tag, so the pool's per-tag
//! counters attribute threaded fan-out to QoS lanes for free.
//!
//! Time is measured in *ticks* — one tick per dispatch opportunity —
//! which keeps budget enforcement and starvation detection exact and
//! reproducible under test (no wall clock anywhere).

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use fhe_ckks::{Ciphertext, CkksContext, Evaluator, SwitchingKey};
use fhe_math::galois::rotation_galois_element;
use fhe_math::pool::tag_dispatches;
use fhe_tfhe::{GateOp, LweCiphertext, ServerKey};

use crate::audit::{AuditEvent, AuditLog, PickCause};
use crate::coalesce::{mates, Geometry};
use crate::lane::{BudgetError, Lane, LaneBudgets, StarvationPolicy};
use crate::queue::Scheduler;
use crate::session::{AdmissionError, KeyCache, TenantKeys};

/// Service-wide configuration.
#[derive(Debug, Clone, Copy)]
pub struct ServiceConfig {
    /// Per-lane minimum dispatch shares.
    pub budgets: LaneBudgets,
    /// Starvation threshold.
    pub starvation: StarvationPolicy,
    /// Budget-enforcement window (picks).
    pub window: usize,
    /// Maximum queued requests across all lanes; admission rejects
    /// beyond this.
    pub queue_capacity: usize,
    /// Key-cache byte budget.
    pub key_cache_bytes: usize,
    /// Maximum requests coalesced into one kernel dispatch.
    pub max_batch: usize,
}

impl ServiceConfig {
    /// Defaults sized for the CI-scale contexts the test suites run:
    /// the 20/30/50 lane split over a 20-pick window, a 256-request
    /// queue, a 64 MiB key cache, and up to 8 requests per dispatch.
    pub fn default_config() -> Self {
        ServiceConfig {
            budgets: LaneBudgets::default_split(),
            starvation: StarvationPolicy::default_policy(),
            window: 20,
            queue_capacity: 256,
            key_cache_bytes: 64 << 20,
            max_batch: 8,
        }
    }
}

/// Handle for a submitted request; redeem with
/// [`ServiceCore::take_result`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RequestId(u64);

impl RequestId {
    /// The id as it appears in the audit log.
    pub fn raw(self) -> u64 {
        self.0
    }
}

/// What a tenant asks the service to compute.
pub enum Workload {
    /// A TFHE boolean gate over two encrypted bits
    /// ([`Lane::Interactive`]).
    Gate {
        /// The gate.
        op: GateOp,
        /// Encrypted left input.
        a: LweCiphertext,
        /// Encrypted right input.
        b: LweCiphertext,
    },
    /// One CKKS rotation that must complete within `deadline` ticks of
    /// admission ([`Lane::Timed`]).
    Rotation {
        /// The ciphertext to rotate.
        ct: Ciphertext,
        /// Rotation step.
        step: i64,
        /// Completion deadline, in ticks after admission.
        deadline: u64,
    },
    /// A CKKS analytics scan applying `steps` in order
    /// ([`Lane::Bulk`]).
    Analytics {
        /// The ciphertext to scan.
        ct: Ciphertext,
        /// Rotation steps, applied sequentially.
        steps: Vec<i64>,
    },
}

/// A finished request's payload.
pub enum Response {
    /// Result of a [`Workload::Gate`].
    Bit(LweCiphertext),
    /// Result of a [`Workload::Rotation`] or [`Workload::Analytics`].
    Vector(Ciphertext),
}

enum JobWork {
    Gate {
        op: GateOp,
        a: LweCiphertext,
        b: LweCiphertext,
    },
    /// A rotation chain; `next` indexes the step the job still owes.
    /// [`Workload::Rotation`] is the one-step instance.
    Rotations {
        ct: Ciphertext,
        steps: Vec<i64>,
        next: usize,
    },
}

struct Job {
    request: u64,
    tenant: usize,
    lane: Lane,
    admitted: u64,
    /// Tick the job was last served (or admitted); starvation wait is
    /// measured from here, so multi-step chains re-arm between steps.
    last_service: u64,
    deadline: Option<u64>,
    work: JobWork,
}

/// The multi-tenant serving core. See the module docs for the design.
pub struct ServiceCore {
    cfg: ServiceConfig,
    sched: Scheduler,
    audit: AuditLog,
    cache: KeyCache,
    /// One evaluator per distinct shared context, so coalesced
    /// dispatches have a single op-counter home.
    contexts: Vec<(Arc<CkksContext>, Evaluator)>,
    lanes: [VecDeque<Job>; 3],
    /// Tick each lane last received a dispatch; lane wait (the
    /// scheduler's starvation observation) is measured from here.
    last_served: [u64; 3],
    results: HashMap<u64, Response>,
    tick: u64,
    next_request: u64,
}

impl ServiceCore {
    /// Builds a service, validating the lane budgets.
    pub fn new(cfg: ServiceConfig) -> Result<Self, BudgetError> {
        let sched = Scheduler::new(cfg.budgets, cfg.starvation, cfg.window)?;
        Ok(ServiceCore {
            sched,
            audit: AuditLog::new(),
            cache: KeyCache::new(cfg.key_cache_bytes),
            contexts: Vec::new(),
            lanes: [VecDeque::new(), VecDeque::new(), VecDeque::new()],
            last_served: [0; 3],
            results: HashMap::new(),
            tick: 0,
            next_request: 0,
            cfg,
        })
    }

    /// Registers a CKKS tenant: a (possibly shared) context plus
    /// Galois keys by rotation step. Tenants registered over the same
    /// `Arc`'d context become coalescing candidates for one another.
    /// Returns the key bytes charged to the cache.
    pub fn register_ckks_tenant(
        &mut self,
        tenant: usize,
        ctx: Arc<CkksContext>,
        galois: HashMap<i64, SwitchingKey>,
    ) -> Result<usize, AdmissionError> {
        // Insert first: a refused registration must not leave the
        // context (and a fresh Evaluator) resident forever.
        let bytes = self.cache.insert(
            tenant,
            TenantKeys::Ckks {
                ctx: ctx.clone(),
                galois,
            },
        )?;
        if !self.contexts.iter().any(|(c, _)| Arc::ptr_eq(c, &ctx)) {
            self.contexts
                .push((ctx.clone(), Evaluator::new(ctx.clone())));
        }
        Ok(bytes)
    }

    /// Registers a TFHE tenant with its server key. Returns the key
    /// bytes charged to the cache.
    pub fn register_tfhe_tenant(
        &mut self,
        tenant: usize,
        server: ServerKey,
    ) -> Result<usize, AdmissionError> {
        self.cache.insert(tenant, TenantKeys::Tfhe { server })
    }

    /// Admits a request or rejects it (queue saturated, keys not
    /// resident / wrong scheme, uncovered rotation step). Every
    /// outcome is audited.
    pub fn submit(&mut self, tenant: usize, work: Workload) -> Result<RequestId, AdmissionError> {
        if let Err(e) = self.admissible(tenant, &work) {
            self.audit.push(AuditEvent::Reject {
                tick: self.tick,
                tenant,
                reason: e.audit_reason(),
            });
            return Err(e);
        }
        let (lane, job_work, deadline) = match work {
            Workload::Gate { op, a, b } => (Lane::Interactive, JobWork::Gate { op, a, b }, None),
            Workload::Rotation { ct, step, deadline } => (
                Lane::Timed,
                JobWork::Rotations {
                    ct,
                    steps: vec![step],
                    next: 0,
                },
                Some(deadline),
            ),
            Workload::Analytics { ct, steps } => {
                (Lane::Bulk, JobWork::Rotations { ct, steps, next: 0 }, None)
            }
        };
        let request = self.next_request;
        self.next_request += 1;
        self.cache.touch(tenant);
        self.cache.pin(tenant);
        self.audit.push(AuditEvent::Admit {
            tick: self.tick,
            tenant,
            request,
            lane,
        });
        self.lanes[lane.index()].push_back(Job {
            request,
            tenant,
            lane,
            admitted: self.tick,
            last_service: self.tick,
            deadline,
            work: job_work,
        });
        Ok(RequestId(request))
    }

    fn admissible(&self, tenant: usize, work: &Workload) -> Result<(), AdmissionError> {
        if self.pending_total() >= self.cfg.queue_capacity {
            return Err(AdmissionError::QueueSaturated);
        }
        match (self.cache.get(tenant), work) {
            (Some(TenantKeys::Tfhe { .. }), Workload::Gate { .. }) => Ok(()),
            (Some(TenantKeys::Ckks { galois, .. }), Workload::Rotation { step, .. }) => {
                if galois.contains_key(step) {
                    Ok(())
                } else {
                    Err(AdmissionError::MissingGaloisKey { step: *step })
                }
            }
            (Some(TenantKeys::Ckks { galois, .. }), Workload::Analytics { steps, .. }) => {
                // An empty scan would pass the key check vacuously but
                // has no step for the dispatcher to serve.
                if steps.is_empty() {
                    return Err(AdmissionError::EmptyWorkload);
                }
                steps
                    .iter()
                    .find(|s| !galois.contains_key(s))
                    .map_or(Ok(()), |s| {
                        Err(AdmissionError::MissingGaloisKey { step: *s })
                    })
            }
            // No session, or a session for the other scheme.
            _ => Err(AdmissionError::UnknownTenant),
        }
    }

    /// Runs dispatches until every lane drains.
    pub fn run_until_idle(&mut self) {
        while self.dispatch_next().is_some() {}
    }

    /// Performs one dispatch (serving one lane), returning the lane
    /// served, or `None` when all lanes are empty.
    pub fn dispatch_next(&mut self) -> Option<Lane> {
        let waits = self.waits();
        let (lane, cause) = self.sched.pick(waits)?;
        if cause == PickCause::Starvation {
            self.audit.push(AuditEvent::Starvation {
                tick: self.tick,
                lane,
                waited: waits[lane.index()].unwrap_or(0),
            });
        }
        let pending = [
            self.lanes[0].len(),
            self.lanes[1].len(),
            self.lanes[2].len(),
        ];
        match lane {
            Lane::Interactive => self.dispatch_gate(cause, pending),
            Lane::Timed | Lane::Bulk => self.dispatch_rotations(lane, cause, pending),
        }
        self.last_served[lane.index()] = self.tick;
        self.tick += 1;
        Some(lane)
    }

    /// Per-lane waits for the scheduler: ticks since the lane was last
    /// dispatched (or since its head job became runnable, whichever is
    /// later), matching the lane-wait model the scheduler's starvation
    /// property is verified against. Measuring from the *lane's* last
    /// service — not the head job's admission — keeps a deep old
    /// backlog from reading as permanently starved and overriding the
    /// budget mechanism. A timed job past its deadline reports a wait
    /// past the starvation threshold, so deadline misses surface
    /// through the same force-serve path.
    fn waits(&self) -> [Option<u64>; 3] {
        let mut w = [None; 3];
        for lane in Lane::ALL {
            if let Some(job) = self.lanes[lane.index()].front() {
                let since = job.last_service.max(self.last_served[lane.index()]);
                let mut waited = self.tick - since;
                // checked_add: a deadline near u64::MAX means "never",
                // not an overflow panic.
                if let Some(due) = job.deadline.and_then(|d| job.admitted.checked_add(d)) {
                    if self.tick > due {
                        waited = waited.max(self.sched.policy().max_wait_ticks + 1);
                    }
                }
                w[lane.index()] = Some(waited);
            }
        }
        w
    }

    fn dispatch_gate(&mut self, cause: PickCause, pending: [usize; 3]) {
        let job = self.lanes[Lane::Interactive.index()]
            .pop_front()
            .expect("scheduler picked a non-empty lane");
        let JobWork::Gate { op, a, b } = &job.work else {
            unreachable!("interactive lane carries gate jobs only");
        };
        let Some(TenantKeys::Tfhe { server }) = self.cache.get(job.tenant) else {
            unreachable!("admission pinned the tenant's TFHE session");
        };
        let out = {
            let _tag = tag_dispatches(Lane::Interactive.dispatch_tag());
            server.apply_gate(*op, a, b)
        };
        self.audit.push(AuditEvent::Dispatch {
            tick: self.tick,
            lane: Lane::Interactive,
            cause,
            jobs: 1,
            pending,
        });
        self.complete(job.request, job.tenant, Response::Bit(out));
    }

    /// Serves `lane`'s head rotation job, coalescing every queued
    /// Timed/Bulk job that shares its geometry (same shared context,
    /// level, Galois element) into the same kernel dispatch — each job
    /// under its own tenant's switching key.
    fn dispatch_rotations(&mut self, lane: Lane, cause: PickCause, pending: [usize; 3]) {
        let head = self.lanes[lane.index()]
            .pop_front()
            .expect("scheduler picked a non-empty lane");
        let head_ctx = self.job_ctx(&head);
        let head_geom = self.job_geometry(&head, &head_ctx);
        let g = head_geom.galois();

        // Collect geometry-matching mates from both rotation lanes,
        // FIFO within each lane, Timed before Bulk.
        let mut batch = vec![head];
        let mut candidates = Vec::new();
        let mut locs = Vec::new();
        for l in [Lane::Timed, Lane::Bulk] {
            for (qi, job) in self.lanes[l.index()].iter().enumerate() {
                let ctx = self.job_ctx(job);
                candidates.push((locs.len(), self.job_geometry(job, &ctx)));
                locs.push((l, qi));
            }
        }
        let picked = mates(head_geom, &candidates, self.cfg.max_batch);
        // Remove back-to-front so queue indices stay valid.
        for &p in picked.iter().rev() {
            let (l, qi) = locs[p];
            let job = self.lanes[l.index()]
                .remove(qi)
                .expect("mate index is live");
            batch.push(job);
        }
        // Queue order scanned Timed first; restore FIFO-by-admission
        // inside the batch for deterministic result ordering.
        batch[1..].sort_by_key(|j| j.request);

        // One coalesced keyswitch dispatch for the whole batch.
        let outs = {
            let eval = &self
                .contexts
                .iter()
                .find(|(c, _)| Arc::ptr_eq(c, &head_ctx))
                .expect("registration recorded the context")
                .1;
            let jobs: Vec<(&Ciphertext, &SwitchingKey)> = batch
                .iter()
                .map(|job| {
                    let JobWork::Rotations { ct, steps, next } = &job.work else {
                        unreachable!("rotation lanes carry rotation jobs only");
                    };
                    let Some(TenantKeys::Ckks { galois, .. }) = self.cache.get(job.tenant) else {
                        unreachable!("admission pinned the tenant's CKKS session");
                    };
                    let key = galois
                        .get(&steps[*next])
                        .expect("admission validated every step");
                    (ct, key)
                })
                .collect();
            let _tag = tag_dispatches(lane.dispatch_tag());
            eval.apply_galois_coalesced(&jobs, g)
        };

        self.audit.push(AuditEvent::Dispatch {
            tick: self.tick,
            lane,
            cause,
            jobs: batch.len(),
            pending,
        });
        for (mut job, out) in batch.into_iter().zip(outs) {
            let JobWork::Rotations { ct, steps, next } = &mut job.work else {
                unreachable!("rotation lanes carry rotation jobs only");
            };
            *next += 1;
            if *next == steps.len() {
                self.complete(job.request, job.tenant, Response::Vector(out));
            } else {
                *ct = out;
                job.last_service = self.tick;
                self.lanes[job.lane.index()].push_back(job);
            }
        }
    }

    fn job_ctx(&self, job: &Job) -> Arc<CkksContext> {
        let Some(TenantKeys::Ckks { ctx, .. }) = self.cache.get(job.tenant) else {
            unreachable!("rotation jobs belong to CKKS tenants");
        };
        ctx.clone()
    }

    fn job_geometry(&self, job: &Job, ctx: &Arc<CkksContext>) -> Geometry {
        let JobWork::Rotations { ct, steps, next } = &job.work else {
            unreachable!("rotation lanes carry rotation jobs only");
        };
        let g = rotation_galois_element(steps[*next], ctx.n());
        Geometry::new(ctx, ct.level, g)
    }

    fn complete(&mut self, request: u64, tenant: usize, response: Response) {
        self.results.insert(request, response);
        self.cache.unpin(tenant);
        self.audit.push(AuditEvent::Complete {
            tick: self.tick,
            request,
        });
    }

    /// Collects a finished request's result.
    pub fn take_result(&mut self, id: RequestId) -> Option<Response> {
        self.results.remove(&id.0)
    }

    /// Requests queued across all lanes.
    pub fn pending_total(&self) -> usize {
        self.lanes.iter().map(VecDeque::len).sum()
    }

    /// Per-lane queue depths (`[interactive, timed, bulk]`).
    pub fn queue_depths(&self) -> [usize; 3] {
        [
            self.lanes[0].len(),
            self.lanes[1].len(),
            self.lanes[2].len(),
        ]
    }

    /// The audit log so far.
    pub fn audit(&self) -> &AuditLog {
        &self.audit
    }

    /// The key cache (capacity, usage, evictions).
    pub fn key_cache(&self) -> &KeyCache {
        &self.cache
    }

    /// The current scheduler tick.
    pub fn tick(&self) -> u64 {
        self.tick
    }

    /// The shared evaluator for `ctx`, if any tenant registered over
    /// it — its op counters aggregate the context's service traffic.
    pub fn evaluator_for(&self, ctx: &Arc<CkksContext>) -> Option<&Evaluator> {
        self.contexts
            .iter()
            .find(|(c, _)| Arc::ptr_eq(c, ctx))
            .map(|(_, e)| e)
    }
}
