//! The lane scheduler: windowed budget enforcement plus starvation
//! detection.
//!
//! The scheduler is deliberately a *pure* decision procedure over lane
//! backlog observations — it never touches ciphertexts, clocks or
//! threads — so its fairness guarantees can be property-tested over
//! millions of randomized traffic shapes in milliseconds. The service
//! core feeds it one observation per dispatch opportunity (how long
//! each backlogged lane's head job has waited) and executes whatever
//! lane it picks.
//!
//! Enforcement is windowed: the last [`Scheduler::window`] picks form
//! a sliding histogram, and a backlogged lane whose share of that
//! histogram is below its [`LaneBudgets`] minimum is in *deficit* and
//! gets served before any non-deficit lane (most-deficient first).
//! When nobody is in deficit, remaining capacity drains in fixed
//! priority order — Interactive, then Timed, then Bulk. Starvation
//! pre-empts both: a lane that has waited past the
//! [`StarvationPolicy`] threshold is served immediately.

use std::collections::VecDeque;

use crate::audit::PickCause;
use crate::lane::{BudgetError, Lane, LaneBudgets, StarvationPolicy};

/// Windowed lane scheduler. See the module docs for the policy.
#[derive(Debug)]
pub struct Scheduler {
    budgets: LaneBudgets,
    policy: StarvationPolicy,
    window: usize,
    history: VecDeque<Lane>,
}

impl Scheduler {
    /// Builds a scheduler, validating the budgets. `window` is the
    /// number of most-recent picks the budget shares are measured
    /// over; it bounds both enforcement lag and the share
    /// quantisation (one pick is `100 / window` percent).
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(
        budgets: LaneBudgets,
        policy: StarvationPolicy,
        window: usize,
    ) -> Result<Self, BudgetError> {
        assert!(window > 0, "enforcement window must be non-empty");
        budgets.validate()?;
        Ok(Scheduler {
            budgets,
            policy,
            window,
            history: VecDeque::with_capacity(window),
        })
    }

    /// The configured budgets.
    pub fn budgets(&self) -> LaneBudgets {
        self.budgets
    }

    /// The enforcement window length.
    pub fn window(&self) -> usize {
        self.window
    }

    /// `lane`'s share of the current window, percent (0 when no picks
    /// have been recorded yet).
    pub fn share_percent(&self, lane: Lane) -> u32 {
        if self.history.is_empty() {
            return 0;
        }
        let n = self.history.iter().filter(|&&l| l == lane).count();
        (n * 100 / self.history.len()) as u32
    }

    /// Decides which backlogged lane to serve next and records the
    /// pick in the window. `waits[Lane::index()]` is `Some(ticks)` the
    /// lane's head job has waited when the lane is backlogged, `None`
    /// when it is empty. Returns `None` when everything is empty.
    pub fn pick(&mut self, waits: [Option<u64>; 3]) -> Option<(Lane, PickCause)> {
        let candidates: Vec<Lane> = Lane::ALL
            .into_iter()
            .filter(|l| waits[l.index()].is_some())
            .collect();
        if candidates.is_empty() {
            return None;
        }

        // Starvation pre-empts budget arithmetic: serve the longest
        // waiter past the threshold. `max_by_key` keeps the LAST
        // maximum, so iterate in reverse priority order to make wait
        // ties break toward the higher-priority lane.
        let starved = candidates
            .iter()
            .rev()
            .copied()
            .filter(|l| waits[l.index()].unwrap_or(0) > self.policy.max_wait_ticks)
            .max_by_key(|l| waits[l.index()].unwrap_or(0));
        if let Some(lane) = starved {
            self.record(lane);
            return Some((lane, PickCause::Starvation));
        }

        // Budget deficits: most-deficient backlogged lane first.
        // Reversed for the same reason as above: deficit ties break
        // toward the higher-priority lane.
        let deficit = candidates
            .iter()
            .rev()
            .copied()
            .filter_map(|l| {
                let min = self.budgets.min_for(l);
                let share = self.share_percent(l);
                (share < min).then(|| (l, min - share))
            })
            .max_by_key(|&(_, d)| d);
        if let Some((lane, _)) = deficit {
            self.record(lane);
            return Some((lane, PickCause::BudgetDeficit));
        }

        // Slack drains in priority order.
        let lane = candidates[0];
        self.record(lane);
        Some((lane, PickCause::Priority))
    }

    fn record(&mut self, lane: Lane) {
        if self.history.len() == self.window {
            self.history.pop_front();
        }
        self.history.push_back(lane);
    }

    /// The starvation policy in force.
    pub fn policy(&self) -> StarvationPolicy {
        self.policy
    }
}

/// Earliest-deadline-first selection over a lane's queued jobs: the
/// index of the job with the smallest due tick, ties broken toward the
/// smallest request id (admission order). `None` on an empty queue.
///
/// Like [`Scheduler::pick`] this is a pure decision procedure — the
/// core hands it `(due_tick, request_id)` pairs in queue order and
/// removes whatever index comes back — so EDF ordering can be
/// property-tested without ciphertexts (see `tests/scheduler_props.rs`).
/// Jobs without a finite deadline pass `u64::MAX` as their due tick and
/// thus sort behind every dated job, falling back to admission order
/// among themselves.
pub fn edf_pick(dues: &[(u64, u64)]) -> Option<usize> {
    dues.iter()
        .enumerate()
        .min_by_key(|&(_, &(due, request))| (due, request))
        .map(|(i, _)| i)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sched(i: u32, t: u32, b: u32, window: usize) -> Scheduler {
        Scheduler::new(
            LaneBudgets {
                interactive_min: i,
                timed_min: t,
                bulk_min: b,
            },
            StarvationPolicy::default_policy(),
            window,
        )
        .unwrap()
    }

    const ALL_WAITING: [Option<u64>; 3] = [Some(0), Some(0), Some(0)];

    #[test]
    fn full_backlog_converges_to_the_minimum_shares() {
        let mut s = sched(20, 30, 50, 20);
        for _ in 0..200 {
            s.pick(ALL_WAITING).unwrap();
        }
        // Minimums sum to 100%, so under full backlog every lane
        // holds its guarantee up to the window quantum (one pick =
        // 100/20 = 5%): priority slack can push Interactive one slot
        // above its floor, displacing one slot elsewhere.
        let quantum = 100 / s.window() as u32;
        for lane in Lane::ALL {
            let share = s.share_percent(lane);
            let min = s.budgets().min_for(lane);
            assert!(share + quantum >= min, "{lane:?}: {share}% < {min}%");
        }
    }

    #[test]
    fn slack_goes_to_the_priority_lane() {
        let mut s = sched(10, 10, 10, 20);
        let mut picks = [0u32; 3];
        for _ in 0..200 {
            let (lane, _) = s.pick(ALL_WAITING).unwrap();
            picks[lane.index()] += 1;
        }
        // 70% slack drains into Interactive on top of its 10% floor.
        assert!(picks[0] > picks[1] && picks[0] > picks[2], "{picks:?}");
        assert!(picks[1] >= 15 && picks[2] >= 15, "floors held: {picks:?}");
    }

    #[test]
    fn starvation_preempts_budgets_and_reports_cause() {
        let mut s = sched(20, 30, 50, 20);
        let mut waits = ALL_WAITING;
        waits[Lane::Bulk.index()] = Some(s.policy().max_wait_ticks + 1);
        let (lane, cause) = s.pick(waits).unwrap();
        assert_eq!(lane, Lane::Bulk);
        assert_eq!(cause, PickCause::Starvation);
    }

    #[test]
    fn deficit_ties_break_toward_the_higher_priority_lane() {
        // Fresh window: every lane's share is 0, so all three carry
        // the same 30% deficit. The tie must go to Interactive.
        let mut s = sched(30, 30, 30, 20);
        let (lane, cause) = s.pick(ALL_WAITING).unwrap();
        assert_eq!(lane, Lane::Interactive);
        assert_eq!(cause, PickCause::BudgetDeficit);
    }

    #[test]
    fn starvation_wait_ties_break_toward_the_higher_priority_lane() {
        let mut s = sched(20, 30, 50, 20);
        let over = s.policy().max_wait_ticks + 5;
        let (lane, cause) = s.pick([None, Some(over), Some(over)]).unwrap();
        assert_eq!(lane, Lane::Timed);
        assert_eq!(cause, PickCause::Starvation);
    }

    #[test]
    fn empty_lanes_are_never_picked() {
        let mut s = sched(20, 30, 50, 20);
        for _ in 0..50 {
            let (lane, _) = s.pick([None, Some(0), None]).unwrap();
            assert_eq!(lane, Lane::Timed);
        }
        assert_eq!(s.pick([None, None, None]), None);
    }

    #[test]
    fn edf_pick_prefers_earliest_due_then_admission_order() {
        assert_eq!(edf_pick(&[]), None);
        // Arrival order is not deadline order: the earliest due wins.
        assert_eq!(edf_pick(&[(9, 0), (4, 1), (7, 2)]), Some(1));
        // Due ties break toward the smaller request id.
        assert_eq!(edf_pick(&[(5, 8), (5, 3), (6, 1)]), Some(1));
        // Undated jobs (due = u64::MAX) lose to any dated job and fall
        // back to admission order among themselves.
        assert_eq!(edf_pick(&[(u64::MAX, 0), (10, 5)]), Some(1));
        assert_eq!(edf_pick(&[(u64::MAX, 7), (u64::MAX, 2)]), Some(1));
    }

    #[test]
    fn over_committed_budgets_are_rejected() {
        assert!(Scheduler::new(
            LaneBudgets {
                interactive_min: 50,
                timed_min: 50,
                bulk_min: 1,
            },
            StarvationPolicy::default_policy(),
            20,
        )
        .is_err());
    }
}
