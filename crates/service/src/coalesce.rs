//! Cross-request batch coalescing.
//!
//! The threaded kernel backend amortises its dispatch overhead over
//! the rows of one batch call — but a single small-`L` keyswitch only
//! brings `L + k` rows, far short of saturating even a modest worker
//! pool. A multi-tenant queue fixes that *statistically*: independent
//! rotation requests from different tenants frequently share geometry,
//! and [`fhe_ckks::key_switch_galois_coalesced`] can run any number of
//! same-geometry jobs (each under its own tenant key) as one wide
//! dispatch, bit-identically to running them apart.
//!
//! Two jobs may share a dispatch exactly when they agree on
//! [`Geometry`]: the same context instance (same ring degree, RNS
//! chain and NTT tables — enforced by pointer identity on the shared
//! `Arc`), the same ciphertext level (same row count per job), and the
//! same Galois element (same permutation). Tenancy is *not* part of
//! the key: per-job switching keys are what makes cross-tenant
//! batching safe.

use std::sync::Arc;

use fhe_ckks::CkksContext;
use fhe_tfhe::{MulBackend, ServerKey};

/// The dispatch-compatibility key for a rotation/keyswitch job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Geometry {
    /// Identity of the shared context (`Arc` pointer).
    ctx: *const CkksContext,
    /// Ciphertext level the keyswitch runs at.
    level: usize,
    /// Galois element (the rotation's automorphism).
    galois: u64,
}

// SAFETY-free: the raw pointer is used only as an identity token (never
// dereferenced), so Geometry is plain comparable data.

impl Geometry {
    /// The geometry of a job at `level` applying Galois element `g`
    /// under `ctx`.
    pub fn new(ctx: &Arc<CkksContext>, level: usize, galois: u64) -> Self {
        Geometry {
            ctx: Arc::as_ptr(ctx),
            level,
            galois,
        }
    }

    /// The job's level.
    pub fn level(&self) -> usize {
        self.level
    }

    /// The job's Galois element.
    pub fn galois(&self) -> u64 {
        self.galois
    }
}

/// Selects up to `max_batch` candidate indices whose geometry matches
/// `head`, preserving candidate order (FIFO fairness within a
/// geometry). The head job itself is not in `candidates`, so the
/// returned indices are *mates* joining its dispatch.
pub fn mates(head: Geometry, candidates: &[(usize, Geometry)], max_batch: usize) -> Vec<usize> {
    candidates
        .iter()
        .filter(|(_, g)| *g == head)
        .map(|&(i, _)| i)
        .take(max_batch.saturating_sub(1))
        .collect()
}

/// Whether two TFHE gate jobs may share one batched blind-rotate
/// dispatch ([`fhe_tfhe::apply_gates_batched`]): both server keys must
/// use the exact NTT backend and agree on the parameter set and ring
/// modulus. Equal `(modulus, degree)` implies identical deterministic
/// NTT tables, so — unlike CKKS [`Geometry`] — *pointer* identity of
/// the ring is not required: TFHE tenants never share key material, and
/// per-job bootstrap/keyswitch keys are what keep cross-tenant batching
/// safe.
pub fn gates_compatible(a: &ServerKey, b: &ServerKey) -> bool {
    a.backend == MulBackend::Ntt
        && b.backend == MulBackend::Ntt
        && a.ctx.params == b.ctx.params
        && a.ctx.ring.q() == b.ctx.ring.q()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fhe_ckks::CkksParams;

    #[test]
    fn geometry_requires_same_context_level_and_element() {
        let a = CkksContext::new(CkksParams::tiny_params());
        let b = CkksContext::new(CkksParams::tiny_params());
        let base = Geometry::new(&a, 1, 3);
        assert_eq!(
            base,
            Geometry::new(&a.clone(), 1, 3),
            "Arc clones share identity"
        );
        assert_ne!(
            base,
            Geometry::new(&b, 1, 3),
            "distinct contexts never coalesce"
        );
        assert_ne!(base, Geometry::new(&a, 0, 3));
        assert_ne!(base, Geometry::new(&a, 1, 5));
    }

    #[test]
    fn gate_compatibility_requires_ntt_and_matching_params() {
        use fhe_tfhe::{LweKeySwitchKey, TfheContext, TfheParams};

        // `gates_compatible` reads only backend/params/modulus, so the
        // fixtures can carry empty key material.
        let key = |params: TfheParams, backend: MulBackend| ServerKey {
            ctx: TfheContext::new(params),
            bsk: Vec::new(),
            ksk: LweKeySwitchKey {
                rows: Vec::new(),
                base_log: 2,
                levels: 8,
            },
            backend,
        };
        let a = key(TfheParams::set_i(), MulBackend::Ntt);
        let b = key(TfheParams::set_i(), MulBackend::Ntt);
        assert!(gates_compatible(&a, &b), "distinct rings, same tables");
        let fft = key(TfheParams::set_i(), MulBackend::Fft);
        assert!(!gates_compatible(&a, &fft) && !gates_compatible(&fft, &a));
        let other = key(TfheParams::set_ii(), MulBackend::Ntt);
        assert!(!gates_compatible(&a, &other));
    }

    #[test]
    fn mates_filter_by_geometry_and_respect_the_batch_cap() {
        let ctx = CkksContext::new(CkksParams::tiny_params());
        let g = Geometry::new(&ctx, 1, 3);
        let other = Geometry::new(&ctx, 0, 3);
        let candidates = vec![(10, g), (11, other), (12, g), (13, g)];
        assert_eq!(mates(g, &candidates, 8), vec![10, 12, 13]);
        assert_eq!(
            mates(g, &candidates, 3),
            vec![10, 12],
            "cap counts the head"
        );
        assert_eq!(mates(other, &candidates, 8), vec![11]);
        assert!(mates(g, &candidates, 1).is_empty(), "cap 1 = head only");
    }
}
