//! Per-tenant sessions and the eviction-managed key cache.
//!
//! Tenant evaluation keys are the dominant memory consumer of an FHE
//! service — a single CKKS Galois key set or TFHE bootstrapping key
//! runs to megabytes — so the service holds them in a byte-budgeted
//! cache rather than growing without bound. Sizes are *measured*, not
//! estimated: the cache charges exactly what [`SwitchingKey::key_bytes`]
//! / [`ServerKey::key_bytes`] report (the heap-allocation sums the
//! key-accounting unit tests pin), so the budget tracks real memory.
//!
//! Eviction is LRU over *idle* sessions only: a session with queued or
//! in-flight work is pinned, because evicting keys mid-request would
//! fail the request after admission — the one thing admission control
//! exists to prevent. When every resident byte is pinned and a new
//! tenant does not fit, registration is refused with
//! [`AdmissionError::KeyCacheSaturated`] and the caller sheds load
//! instead of the cache shedding correctness.

use std::collections::HashMap;
use std::sync::Arc;

use fhe_ckks::{CkksContext, SwitchingKey};
use fhe_tfhe::ServerKey;

/// Why the service refused work at the door.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionError {
    /// The key cache cannot fit the tenant's keys even after evicting
    /// every idle session.
    KeyCacheSaturated,
    /// The job queue is at capacity.
    QueueSaturated,
    /// The tenant has no resident session (never registered, or
    /// evicted while idle — re-register to restore it).
    UnknownTenant,
    /// Re-registration was refused because the tenant has queued or
    /// in-flight jobs; swapping keys under them would invalidate work
    /// admission already validated. Retry once the jobs drain.
    SessionBusy,
    /// The request carries no work (an analytics scan with zero
    /// steps).
    EmptyWorkload,
    /// A rotation request names a step the tenant holds no Galois key
    /// for.
    MissingGaloisKey {
        /// The uncovered rotation step.
        step: i64,
    },
}

impl std::fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdmissionError::KeyCacheSaturated => write!(f, "key cache saturated"),
            AdmissionError::QueueSaturated => write!(f, "job queue saturated"),
            AdmissionError::UnknownTenant => write!(f, "tenant has no resident session"),
            AdmissionError::SessionBusy => {
                write!(f, "tenant session has queued or in-flight jobs")
            }
            AdmissionError::EmptyWorkload => write!(f, "workload carries no steps"),
            AdmissionError::MissingGaloisKey { step } => {
                write!(f, "no galois key covers rotation step {step}")
            }
        }
    }
}

impl std::error::Error for AdmissionError {}

impl AdmissionError {
    /// The `reason` string written to the audit log on rejection.
    pub fn audit_reason(&self) -> &'static str {
        match self {
            AdmissionError::KeyCacheSaturated => "key_cache_saturated",
            AdmissionError::QueueSaturated => "queue_saturated",
            AdmissionError::UnknownTenant => "unknown_tenant",
            AdmissionError::SessionBusy => "session_busy",
            AdmissionError::EmptyWorkload => "empty_workload",
            AdmissionError::MissingGaloisKey { .. } => "missing_galois_key",
        }
    }
}

/// A tenant's server-side evaluation keys.
pub enum TenantKeys {
    /// A CKKS analytics tenant: a shared context plus per-step Galois
    /// keys. Tenants constructed over the *same* `Arc`'d context are
    /// coalescing candidates for one another.
    Ckks {
        /// The tenant's (possibly shared) CKKS context.
        ctx: Arc<CkksContext>,
        /// Galois keys by rotation step.
        galois: HashMap<i64, SwitchingKey>,
    },
    /// A TFHE boolean tenant: the server key (bootstrapping + LWE
    /// keyswitching key).
    Tfhe {
        /// The tenant's server key.
        server: ServerKey,
    },
}

impl TenantKeys {
    /// Measured heap bytes of the key material — what the cache
    /// charges against its budget.
    pub fn key_bytes(&self) -> usize {
        match self {
            TenantKeys::Ckks { galois, .. } => {
                galois.values().map(SwitchingKey::key_bytes).sum::<usize>()
            }
            TenantKeys::Tfhe { server } => server.key_bytes(),
        }
    }
}

struct Session {
    keys: TenantKeys,
    bytes: usize,
    /// Queued + in-flight jobs; non-zero pins the session.
    pinned: usize,
    last_touch: u64,
}

/// Byte-budgeted LRU cache of tenant sessions.
pub struct KeyCache {
    capacity: usize,
    used: usize,
    clock: u64,
    evictions: u64,
    sessions: HashMap<usize, Session>,
}

impl KeyCache {
    /// An empty cache with a `capacity`-byte budget.
    pub fn new(capacity: usize) -> Self {
        KeyCache {
            capacity,
            used: 0,
            clock: 0,
            evictions: 0,
            sessions: HashMap::new(),
        }
    }

    /// Registers (or replaces) `tenant`'s session, evicting idle LRU
    /// sessions as needed. Returns the measured key bytes charged.
    /// Replacement is refused with [`AdmissionError::SessionBusy`]
    /// while the tenant has queued or in-flight jobs — those jobs were
    /// admitted against the resident keys, and swapping the set under
    /// them (or making it evictable) would fail them after admission.
    pub fn insert(&mut self, tenant: usize, keys: TenantKeys) -> Result<usize, AdmissionError> {
        let bytes = keys.key_bytes();
        if self.sessions.get(&tenant).is_some_and(|s| s.pinned > 0) {
            return Err(AdmissionError::SessionBusy);
        }
        if let Some(old) = self.sessions.remove(&tenant) {
            self.used -= old.bytes;
        }
        while self.used + bytes > self.capacity {
            let victim = self
                .sessions
                .iter()
                .filter(|(_, s)| s.pinned == 0)
                .min_by_key(|(_, s)| s.last_touch)
                .map(|(&t, _)| t);
            match victim {
                Some(t) => {
                    let s = self.sessions.remove(&t).expect("victim is resident");
                    self.used -= s.bytes;
                    self.evictions += 1;
                }
                None => return Err(AdmissionError::KeyCacheSaturated),
            }
        }
        self.clock += 1;
        self.used += bytes;
        self.sessions.insert(
            tenant,
            Session {
                keys,
                bytes,
                pinned: 0,
                last_touch: self.clock,
            },
        );
        Ok(bytes)
    }

    /// The tenant's keys, if resident. Refreshes LRU recency.
    pub fn touch(&mut self, tenant: usize) -> Option<&TenantKeys> {
        self.clock += 1;
        let clock = self.clock;
        self.sessions.get_mut(&tenant).map(|s| {
            s.last_touch = clock;
            &s.keys
        })
    }

    /// The tenant's keys without refreshing recency.
    pub fn get(&self, tenant: usize) -> Option<&TenantKeys> {
        self.sessions.get(&tenant).map(|s| &s.keys)
    }

    /// Pins the tenant's session (one more queued/in-flight job).
    pub fn pin(&mut self, tenant: usize) {
        if let Some(s) = self.sessions.get_mut(&tenant) {
            s.pinned += 1;
        }
    }

    /// Releases one pin.
    pub fn unpin(&mut self, tenant: usize) {
        if let Some(s) = self.sessions.get_mut(&tenant) {
            s.pinned = s.pinned.saturating_sub(1);
        }
    }

    /// Bytes currently charged.
    pub fn used_bytes(&self) -> usize {
        self.used
    }

    /// The byte budget.
    pub fn capacity_bytes(&self) -> usize {
        self.capacity
    }

    /// Sessions evicted since construction.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Whether the tenant is resident.
    pub fn contains(&self, tenant: usize) -> bool {
        self.sessions.contains_key(&tenant)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fhe_ckks::{CkksParams, KeyGenerator};
    use fhe_math::galois::rotation_galois_element;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ckks_keys(ctx: &Arc<CkksContext>, seed: u64, steps: &[i64]) -> TenantKeys {
        let mut rng = StdRng::seed_from_u64(seed);
        let kg = KeyGenerator::new(ctx.clone());
        let sk = kg.secret_key(&mut rng);
        let galois = steps
            .iter()
            .map(|&r| {
                let g = rotation_galois_element(r, ctx.n());
                (r, kg.galois_key(&sk, g, &mut rng))
            })
            .collect();
        TenantKeys::Ckks {
            ctx: ctx.clone(),
            galois,
        }
    }

    #[test]
    fn lru_evicts_idle_sessions_but_never_pinned_ones() {
        let ctx = CkksContext::new(CkksParams::tiny_params());
        let one = ckks_keys(&ctx, 1, &[1]).key_bytes();
        // Room for exactly two single-step sessions.
        let mut cache = KeyCache::new(2 * one);
        cache.insert(0, ckks_keys(&ctx, 1, &[1])).unwrap();
        cache.insert(1, ckks_keys(&ctx, 2, &[1])).unwrap();
        assert_eq!(cache.used_bytes(), 2 * one);

        // Tenant 0 is older; inserting tenant 2 evicts it.
        cache.insert(2, ckks_keys(&ctx, 3, &[1])).unwrap();
        assert!(!cache.contains(0) && cache.contains(1) && cache.contains(2));
        assert_eq!(cache.evictions(), 1);

        // Pin both residents: a third insert has nothing to evict.
        cache.pin(1);
        cache.pin(2);
        assert_eq!(
            cache.insert(3, ckks_keys(&ctx, 4, &[1])).unwrap_err(),
            AdmissionError::KeyCacheSaturated
        );
        // Unpinning restores evictability.
        cache.unpin(1);
        cache.insert(3, ckks_keys(&ctx, 4, &[1])).unwrap();
        assert!(!cache.contains(1) && cache.contains(3));
    }

    #[test]
    fn pinned_session_is_not_replaceable() {
        let ctx = CkksContext::new(CkksParams::tiny_params());
        let mut cache = KeyCache::new(usize::MAX);
        let before = cache.insert(0, ckks_keys(&ctx, 1, &[1])).unwrap();
        cache.pin(0);
        assert_eq!(
            cache.insert(0, ckks_keys(&ctx, 2, &[1, 2])).unwrap_err(),
            AdmissionError::SessionBusy
        );
        // The resident session (and its charge) survived the refusal.
        assert!(cache.contains(0));
        assert_eq!(cache.used_bytes(), before);
        // Draining the jobs re-enables replacement.
        cache.unpin(0);
        cache.insert(0, ckks_keys(&ctx, 2, &[1, 2])).unwrap();
    }

    #[test]
    fn touch_refreshes_recency() {
        let ctx = CkksContext::new(CkksParams::tiny_params());
        let one = ckks_keys(&ctx, 1, &[1]).key_bytes();
        let mut cache = KeyCache::new(2 * one);
        cache.insert(0, ckks_keys(&ctx, 1, &[1])).unwrap();
        cache.insert(1, ckks_keys(&ctx, 2, &[1])).unwrap();
        // Touching 0 makes 1 the LRU victim.
        assert!(cache.touch(0).is_some());
        cache.insert(2, ckks_keys(&ctx, 3, &[1])).unwrap();
        assert!(cache.contains(0) && !cache.contains(1));
    }

    #[test]
    fn charged_bytes_match_measured_key_bytes() {
        let ctx = CkksContext::new(CkksParams::tiny_params());
        let keys = ckks_keys(&ctx, 9, &[1, 2]);
        let expect = keys.key_bytes();
        let mut cache = KeyCache::new(usize::MAX);
        assert_eq!(cache.insert(7, keys).unwrap(), expect);
        assert_eq!(cache.used_bytes(), expect);
    }
}
