//! # trinity-service — multi-tenant FHE serving core
//!
//! The functional crates (`fhe-ckks`, `fhe-tfhe`) evaluate one
//! operation for one key at a time; a deployment serves *streams* of
//! such operations from many tenants with very different latency
//! needs. This crate is the layer in between: a long-running service
//! core that queues encrypted jobs, schedules them over QoS lanes,
//! holds tenant evaluation keys behind an eviction-managed cache, and
//! — the throughput lever — coalesces independent same-geometry
//! keyswitch jobs from *different requests* into single wide kernel
//! dispatches, so the batch-oriented backends see the row counts they
//! were built for even when each individual request is small.
//!
//! The moving parts, bottom-up:
//!
//! * [`lane`] — the three QoS lanes (Interactive gates, Timed
//!   deadline work, Bulk analytics) and their minimum-share budgets.
//! * [`queue`] — the windowed lane scheduler: budget deficits first,
//!   priority slack second, starvation pre-empting both. Pure
//!   decision logic, property-tested over randomized traffic. The
//!   Timed lane orders its own queue earliest-deadline-first
//!   ([`edf_pick`], equally pure).
//! * [`session`] — per-tenant key material in a byte-budgeted LRU
//!   cache charging *measured* `key_bytes()`, with pinning and
//!   admission control.
//! * [`coalesce`] — the dispatch-compatibility keys: [`Geometry`]
//!   (shared context, level, Galois element) for CKKS keyswitches and
//!   [`gates_compatible`] for batched TFHE gates, plus mate selection.
//! * [`audit`] — a JSONL log of every admission, rejection, dispatch
//!   (with its coalesced job count and group id), completion and
//!   starvation event, opened by a configuration-stamping meta line.
//! * [`core`](mod@core) — [`ServiceCore`]: a single-threaded
//!   *decision* loop (admission, lane picks, group formation, audit)
//!   over a deferred-execution window of up to
//!   [`ServiceConfig::max_in_flight`] dispatch groups; independent
//!   groups execute concurrently on scoped threads without changing a
//!   decision, an audit byte or a ciphertext bit. Kernel parallelism
//!   stays below, in the worker pool, attributed per lane via
//!   dispatch tags.
//!
//! Scheduling is measured in dispatch *ticks*, not wall-clock time,
//! so every guarantee in this crate is exactly reproducible in tests:
//! lane shares, starvation bounds, batch sizes and results are all
//! deterministic functions of the submitted stream — for any
//! `max_in_flight` and any kernel backend, which
//! `tests/service_determinism.rs` enforces metamorphically.
//!
//! # Example
//!
//! See `examples/multi_tenant_service.rs` at the workspace root for
//! mixed TFHE + CKKS tenants running through the queue, and
//! `crates/service/tests/` for the end-to-end bit-identity and
//! fairness suites.

#![warn(missing_docs)]

pub mod audit;
pub mod coalesce;
pub mod core;
pub mod lane;
pub mod queue;
pub mod session;

pub use audit::{AuditEvent, AuditLog, PickCause, SCHEMA_VERSION};
pub use coalesce::{gates_compatible, Geometry};
pub use core::{RequestId, Response, ServiceConfig, ServiceCore, Workload};
pub use lane::{BudgetError, Lane, LaneBudgets, StarvationPolicy};
pub use queue::{edf_pick, Scheduler};
pub use session::{AdmissionError, KeyCache, TenantKeys};
