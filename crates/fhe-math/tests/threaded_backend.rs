//! The threaded limb-parallel backend under real concurrency.
//!
//! The kernel unit suite (`kernel::tests`) sweeps every batched entry
//! point against the scalar reference; this file covers what a unit
//! test can't:
//!
//! * whole [`RnsPoly`] lazy chains running through the **process-wide**
//!   threaded backend (the exact dispatch path production takes),
//!   asserted bit-identical to the strict oracles, which never
//!   dispatch;
//! * several evaluator threads sharing **one** pool concurrently,
//!   exercising the thread-local `scratch` lease pool and the shared
//!   `GaloisPerms` cache from worker-adjacent threads;
//! * a job that panics mid-batch: the payload must reach the caller,
//!   and the backend (and its workers) must keep serving jobs.
//!
//! This binary forces the global backend to `threaded` up front, so
//! every test in it runs the row-parallel dispatch — the CI matrix runs
//! the cross-crate oracle suites under `TRINITY_KERNEL_BACKEND=threaded`
//! the same way.

use std::panic::AssertUnwindSafe;
use std::sync::Arc;

use fhe_math::kernel::{self, ExitFold, KernelBackend};
use fhe_math::{
    prime, GaloisPerms, ReductionState, Representation, RnsBasis, RnsPoly, ThreadedBackend,
};

/// Forces the process-wide backend to a 3-lane threaded instance
/// (idempotent across the tests of this binary; tests may run
/// concurrently, so everyone forces the same instance).
fn force_threaded() -> &'static ThreadedBackend {
    let backend = kernel::threaded(Some(3));
    kernel::force(backend);
    backend
}

fn basis(n: usize, limbs: usize) -> Arc<RnsBasis> {
    Arc::new(RnsBasis::new(&prime::ntt_primes(45, n, limbs), n))
}

/// A big-enough shape that the default job threshold genuinely fans
/// out (8 rows x 2048 words splits into 3+ jobs on a 3-lane pool).
const N: usize = 2048;
const LIMBS: usize = 8;

/// The production lazy chain — batched NTT, IP accumulate, automorphism,
/// batched iNTT, one deferred fold — through the global threaded
/// backend must be bit-identical to the strict oracle chain, which
/// never dispatches through a backend.
#[test]
fn rns_poly_lazy_chain_matches_strict_oracle_under_threaded_backend() {
    force_threaded();
    let b = basis(N, LIMBS);
    let perms = GaloisPerms::new(b.table(0).clone());
    let xs: Vec<i64> = (0..N as i64).map(|i| (i * 7) % 1001 - 500).collect();
    let ys: Vec<i64> = (0..N as i64).map(|i| (i * 13) % 601 - 300).collect();

    let mut lazy_x = RnsPoly::from_signed_coeffs(b.clone(), &xs);
    let mut lazy_y = RnsPoly::from_signed_coeffs(b.clone(), &ys);
    lazy_x.to_eval_lazy();
    lazy_y.to_eval_lazy();
    assert_eq!(lazy_x.reduction_state(), ReductionState::Lazy2p);
    let mut lazy_acc = RnsPoly::zero(b.clone(), Representation::Eval);
    lazy_acc.mul_acc_pointwise_lazy(&lazy_x, &lazy_y);
    lazy_acc.mul_acc_pointwise_lazy(&lazy_y, &lazy_y);
    lazy_acc.add_assign_lazy(&lazy_x);
    lazy_acc.sub_assign_lazy(&lazy_y);
    lazy_acc.automorphism_lazy(5, &perms);
    lazy_acc.to_coeff_lazy();
    lazy_acc.canonicalize();

    let mut strict_x = RnsPoly::from_signed_coeffs(b.clone(), &xs);
    let mut strict_y = RnsPoly::from_signed_coeffs(b.clone(), &ys);
    strict_x.to_eval_strict();
    strict_y.to_eval_strict();
    let mut strict_acc = RnsPoly::zero(b, Representation::Eval);
    strict_acc.mul_acc_pointwise(&strict_x, &strict_y);
    strict_acc.mul_acc_pointwise(&strict_y, &strict_y);
    strict_acc.add_assign(&strict_x);
    strict_acc.sub_assign(&strict_y);
    strict_acc.automorphism(5, &perms);
    strict_acc.to_coeff_strict();

    assert_eq!(lazy_acc.flat(), strict_acc.flat());
}

/// Several evaluator threads hammer the same global threaded pool at
/// once — each runs its own lazy chain (leasing thread-local scratch
/// buffers via the automorphism and sharing one `GaloisPerms` cache)
/// and must reproduce the strict oracle bit for bit.
#[test]
fn concurrent_evaluators_share_one_pool() {
    force_threaded();
    let b = basis(N, LIMBS);
    let perms = Arc::new(GaloisPerms::new(b.table(0).clone()));

    std::thread::scope(|s| {
        for thread_id in 0..4usize {
            let b = b.clone();
            let perms = Arc::clone(&perms);
            s.spawn(move || {
                let g = [3u64, 5, 7, 9][thread_id];
                let coeffs: Vec<i64> = (0..N as i64)
                    .map(|i| (i * (thread_id as i64 + 3)) % 257 - 128)
                    .collect();
                for _ in 0..3 {
                    let mut lazy = RnsPoly::from_signed_coeffs(b.clone(), &coeffs);
                    lazy.to_eval_lazy();
                    lazy.automorphism_lazy(g, &perms);
                    let lazy_rhs = lazy.clone();
                    lazy.mul_assign_pointwise_lazy(&lazy_rhs);
                    lazy.to_coeff_lazy();
                    lazy.canonicalize();

                    let mut strict = RnsPoly::from_signed_coeffs(b.clone(), &coeffs);
                    strict.to_eval_strict();
                    strict.automorphism(g, &perms);
                    let rhs = strict.clone();
                    strict.mul_assign_pointwise(&rhs);
                    strict.to_coeff_strict();

                    assert_eq!(lazy.flat(), strict.flat(), "thread {thread_id} g={g}");
                }
            });
        }
    });
}

/// A panicking job must surface on the dispatching caller and leave the
/// backend fully operational (the worker catches the unwind; pool
/// mutexes recover from poisoning).
#[test]
fn worker_panic_propagates_and_backend_recovers() {
    // A dedicated instance so the deliberate panic cannot interleave
    // with the other tests' dispatches on the global pool.
    let backend = ThreadedBackend::with_config(3, 64);
    let b = basis(256, 6);
    let tables: Vec<&fhe_math::NttTable> = b.tables().iter().map(|t| t.as_ref()).collect();

    // Rows of the wrong length: the lane pass asserts `row.len() == n`
    // inside the dispatched job.
    let mut bad = vec![0u64; 6 * 128];
    let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
        backend.forward_batch(&tables, &mut bad, ExitFold::Lazy2p);
    }));
    assert!(caught.is_err(), "mis-sized batch must panic");

    // The pool survived: a well-formed batch still matches the scalar
    // reference afterwards.
    let mut flat: Vec<u64> = (0..(6 * 256) as u64).collect();
    let mut oracle = flat.clone();
    backend.forward_batch(&tables, &mut flat, ExitFold::Lazy2p);
    kernel::SCALAR.forward_batch(&tables, &mut oracle, ExitFold::Lazy2p);
    assert_eq!(flat, oracle);
}

/// `threaded:1` is the degenerate pool: no workers, every batch runs
/// the sequential fallback inline — and still matches the reference.
#[test]
fn single_lane_threaded_backend_is_sequential() {
    let backend = ThreadedBackend::with_threads(1);
    assert_eq!(backend.threads(), 1);
    let b = basis(256, 4);
    let tables: Vec<&fhe_math::NttTable> = b.tables().iter().map(|t| t.as_ref()).collect();
    let mut flat: Vec<u64> = (0..(4 * 256) as u64).collect();
    let mut oracle = flat.clone();
    backend.forward_batch(&tables, &mut flat, ExitFold::Canonical);
    kernel::SCALAR.forward_batch(&tables, &mut oracle, ExitFold::Canonical);
    assert_eq!(flat, oracle);
}
