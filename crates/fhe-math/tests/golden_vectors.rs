//! Golden-vector tests for the NTT variants and the FFT.
//!
//! Two kinds of oracle pin the transforms down:
//!
//! * **externally computed constants** — negacyclic products and DFT
//!   spectra computed with an independent implementation (exact integer
//!   schoolbook / `cmath`), hardcoded below. These are psi-independent,
//!   so they catch any regression in the whole transform pipeline.
//! * **direct evaluation** — the spectrum definition itself
//!   (slot `k` holds `f(psi^(2*bitrev(k)+1))`), evaluated in O(n^2)
//!   straight from [`fhe_math::prime::primitive_root_of_unity`]. All
//!   three hardware-shaped forward variants must match it slot by slot.

use fhe_math::fft::negacyclic_mul_fft;
use fhe_math::kernel::{self, KernelBackend};
use fhe_math::ntt::negacyclic_mul_schoolbook;
use fhe_math::prime::{ntt_primes, primitive_root_of_unity};
use fhe_math::{Complex, FftPlan, Modulus, NttTable};

fn reverse_bits(x: usize, bits: u32) -> usize {
    x.reverse_bits() >> (usize::BITS - bits)
}

/// `p = 257`, `n = 8`, `a = [1..8]`, `b = [8..1]`:
/// `a * b mod (X^8 + 1, 257)` computed with an independent
/// schoolbook implementation (Python, exact integers).
const GOLDEN_NEGACYCLIC_257: [u64; 8] = [97, 147, 201, 0, 56, 110, 160, 204];

/// Signed negacyclic product of the fixed vectors below, exact.
const GOLDEN_SIGNED_A: [i64; 8] = [3, -1, 4, 1, -5, 9, -2, 6];
const GOLDEN_SIGNED_B: [i64; 8] = [-2, 7, 1, -8, 2, 8, -1, 8];
const GOLDEN_SIGNED_PROD: [i64; 8] = [40, -8, -45, 54, -87, -40, 3, 82];

/// 8-point DFT of `[1..8]` under `X[k] = sum_j x[j] e^{-2 pi i jk/8}`
/// (computed independently with `cmath`).
const GOLDEN_DFT_8: [(f64, f64); 8] = [
    (36.0, 0.0),
    (-4.0, 9.656854249492),
    (-4.0, 4.0),
    (-4.0, 1.656854249492),
    (-4.0, 0.0),
    (-4.0, -1.656854249492),
    (-4.0, -4.0),
    (-4.0, -9.656854249492),
];

#[test]
fn negacyclic_product_matches_external_golden() {
    let m = Modulus::new(257).unwrap();
    let t = NttTable::new(m, 8);
    let a: Vec<u64> = (1..=8).collect();
    let b: Vec<u64> = (1..=8).rev().collect();
    assert_eq!(t.negacyclic_mul(&a, &b), GOLDEN_NEGACYCLIC_257);
    // The O(n^2) oracle must agree with the same constants.
    assert_eq!(
        negacyclic_mul_schoolbook(t.modulus(), &a, &b),
        GOLDEN_NEGACYCLIC_257
    );
}

/// Runs the product through each forward variant explicitly
/// (forward -> pointwise -> inverse), so a regression in any variant's
/// output ordering breaks against the external constants.
#[test]
fn every_forward_variant_reproduces_the_golden_product() {
    let m = Modulus::new(257).unwrap();
    let t = NttTable::new(m, 8);
    let a: Vec<u64> = (1..=8).collect();
    let b: Vec<u64> = (1..=8).rev().collect();

    type Fwd = fn(&NttTable, &mut [u64]);
    let variants: [(&str, Fwd); 3] = [
        ("reference", |t, x| t.forward(x)),
        ("constant-geometry", |t, x| {
            t.forward_constant_geometry(x);
        }),
        ("four-step", |t, x| {
            t.forward_four_step(x);
        }),
    ];
    for (name, fwd) in variants {
        let mut fa = a.clone();
        let mut fb = b.clone();
        fwd(&t, &mut fa);
        fwd(&t, &mut fb);
        let mut prod = vec![0u64; 8];
        t.pointwise_mul_acc(&mut prod, &fa, &fb);
        t.inverse(&mut prod);
        assert_eq!(prod, GOLDEN_NEGACYCLIC_257, "variant {name}");
    }
}

/// The spectrum definition, straight from the root of unity: slot `k`
/// of the forward transform holds `f(psi^(2*bitrev(k)+1))`.
fn direct_spectrum(t: &NttTable, a: &[u64]) -> Vec<u64> {
    let m = t.modulus();
    let n = t.n();
    let log_n = n.trailing_zeros();
    let psi = primitive_root_of_unity(m, 2 * n as u64);
    (0..n)
        .map(|k| {
            let e = 2 * reverse_bits(k, log_n) as u64 + 1;
            let x = m.pow(psi, e);
            let mut acc = 0u64;
            let mut xp = 1u64;
            for &c in a {
                acc = m.add(acc, m.mul(c, xp));
                xp = m.mul(xp, x);
            }
            acc
        })
        .collect()
}

#[test]
fn all_variants_match_direct_evaluation() {
    for (bits, n) in [(20u32, 8usize), (36, 32), (45, 64)] {
        let p = ntt_primes(bits, n, 1)[0];
        let t = NttTable::new(Modulus::new(p).unwrap(), n);
        // A fixed, structured input: 1, 2, 4, ... doubling mod p.
        let mut a = vec![0u64; n];
        let mut v = 1u64;
        for x in a.iter_mut() {
            *x = v;
            v = t.modulus().mul(v, 2);
        }
        let expect = direct_spectrum(&t, &a);

        let mut r = a.clone();
        t.forward(&mut r);
        assert_eq!(r, expect, "reference vs direct, n={n}");

        let mut c = a.clone();
        t.forward_constant_geometry(&mut c);
        assert_eq!(c, expect, "constant-geometry vs direct, n={n}");

        let mut f = a.clone();
        t.forward_four_step(&mut f);
        assert_eq!(f, expect, "four-step vs direct, n={n}");

        // And the inverse takes the direct spectrum back to the input.
        let mut inv = expect;
        t.inverse(&mut inv);
        assert_eq!(inv, a, "inverse of direct spectrum, n={n}");
    }
}

/// Every [`KernelBackend`] must reproduce the golden vectors: the full
/// transform pipeline (stages + exit folds + scaling) run through the
/// scalar reference and the lane backend explicitly, checked against
/// the externally computed product and the direct spectrum. This is the
/// acceptance gate for new backends — identical outputs on the golden
/// vectors, not just on random data.
#[test]
fn kernel_backends_reproduce_golden_vectors() {
    let backends: [&'static dyn KernelBackend; 2] = [&kernel::SCALAR, &kernel::LANES_BACKEND];
    for backend in backends {
        let name = backend.name();

        // Golden negacyclic product via explicit backend passes.
        let m = Modulus::new(257).unwrap();
        let t = NttTable::new(m, 8);
        let forward = |x: &mut [u64]| {
            backend.forward_stages(&t, x);
            backend.fold_4p_to_canonical(t.modulus(), x);
        };
        let mut fa: Vec<u64> = (1..=8).collect();
        let mut fb: Vec<u64> = (1..=8).rev().collect();
        forward(&mut fa);
        forward(&mut fb);
        let mut prod = vec![0u64; 8];
        backend.mul_acc_lazy(t.modulus(), &mut prod, &fa, &fb);
        backend.fold_2p_to_canonical(t.modulus(), &mut prod);
        backend.inverse_stages(&t, &mut prod);
        let (ni, nis) = t.n_inv();
        backend.scale_shoup(t.modulus(), ni, nis, &mut prod);
        assert_eq!(prod, GOLDEN_NEGACYCLIC_257, "backend {name}");

        // Direct-evaluation spectrum across sizes, lazy exits folded.
        for (bits, n) in [(20u32, 8usize), (36, 32), (45, 64)] {
            let p = ntt_primes(bits, n, 1)[0];
            let t = NttTable::new(Modulus::new(p).unwrap(), n);
            let mut a = vec![0u64; n];
            let mut v = 1u64;
            for x in a.iter_mut() {
                *x = v;
                v = t.modulus().mul(v, 2);
            }
            let expect = direct_spectrum(&t, &a);
            let mut lazy = a.clone();
            backend.forward_stages(&t, &mut lazy);
            backend.fold_4p_to_2p(t.modulus(), &mut lazy);
            backend.fold_2p_to_canonical(t.modulus(), &mut lazy);
            assert_eq!(lazy, expect, "backend {name} spectrum, n={n}");
        }
    }
}

#[test]
fn fft_forward_matches_external_golden() {
    let plan = FftPlan::new(8);
    let mut x: Vec<Complex> = (1..=8).map(|v| Complex::new(v as f64, 0.0)).collect();
    plan.forward(&mut x);
    for (k, (re, im)) in GOLDEN_DFT_8.iter().enumerate() {
        assert!(
            (x[k].re - re).abs() < 1e-9 && (x[k].im - im).abs() < 1e-9,
            "slot {k}: got ({}, {}), want ({re}, {im})",
            x[k].re,
            x[k].im
        );
    }
}

#[test]
fn fft_roundtrip_is_identity() {
    let plan = FftPlan::new(16);
    let orig: Vec<Complex> = (0..16)
        .map(|i| Complex::new((i as f64).sin(), (i as f64 * 0.7).cos()))
        .collect();
    let mut x = orig.clone();
    plan.forward(&mut x);
    plan.inverse(&mut x);
    for (a, b) in orig.iter().zip(&x) {
        assert!((a.re - b.re).abs() < 1e-10 && (a.im - b.im).abs() < 1e-10);
    }
}

#[test]
fn fft_negacyclic_mul_matches_external_golden() {
    let got = negacyclic_mul_fft(&GOLDEN_SIGNED_A, &GOLDEN_SIGNED_B);
    assert_eq!(got, GOLDEN_SIGNED_PROD);
}

/// The FFT path and the exact NTT path agree on small signed inputs
/// (the regime where double-precision rounding is exact) — the §II-B
/// comparison Trinity's NTT substitution is motivated by.
#[test]
fn fft_and_ntt_paths_agree_on_small_inputs() {
    let n = 8;
    let p = ntt_primes(36, n, 1)[0];
    let m = Modulus::new(p).unwrap();
    let t = NttTable::new(m, n);
    let au: Vec<u64> = GOLDEN_SIGNED_A.iter().map(|&v| m.from_i64(v)).collect();
    let bu: Vec<u64> = GOLDEN_SIGNED_B.iter().map(|&v| m.from_i64(v)).collect();
    let exact: Vec<i64> = t
        .negacyclic_mul(&au, &bu)
        .iter()
        .map(|&v| m.to_centered(v))
        .collect();
    assert_eq!(exact, GOLDEN_SIGNED_PROD);
}
