//! Cross-checks of the lazy-reduction NTT hot path against every other
//! transform variant, across the moduli shapes the workspace actually
//! uses: CKKS scale primes (30–50 bits), the big q0 primes (up to 60
//! bits), the near-2^62 ceiling, and TFHE's "closest prime to 2^32".
//!
//! The lazy forward/inverse keep butterfly operands in `[0, 4p)` /
//! `[0, 2p)`; these tests pin down that the canonicalised output is
//! *bit-identical* to the strict, constant-geometry, and four-step
//! reference paths, and that round-trips are exact.

use fhe_math::prime::{ntt_primes, prime_near};
use fhe_math::{Modulus, NttTable};
use proptest::prelude::*;

/// One NTT-friendly modulus per bit-width class used across the
/// workspace, for a given ring degree.
fn workspace_moduli(n: usize) -> Vec<Modulus> {
    let mut primes: Vec<u64> = Vec::new();
    for bits in [30u32, 36, 40, 45, 50, 59, 61] {
        primes.push(ntt_primes(bits, n, 1)[0]);
    }
    // TFHE's FFT->NTT substitution prime (closest prime to 2^32).
    primes.push(prime_near(1u64 << 32, n));
    primes.sort_unstable();
    primes.dedup();
    primes
        .into_iter()
        .map(|p| Modulus::new(p).unwrap())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn lazy_agrees_with_all_variants(seed in any::<u64>()) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        for n in [16usize, 256, 1024] {
            for m in workspace_moduli(n) {
                let t = NttTable::new(m, n);
                let a: Vec<u64> = (0..n).map(|_| rng.gen_range(0..m.value())).collect();

                let mut lazy = a.clone();
                t.forward(&mut lazy);
                prop_assert!(
                    lazy.iter().all(|&x| x < m.value()),
                    "lazy output not canonical for p={} n={n}", m.value()
                );

                let mut strict = a.clone();
                t.forward_strict(&mut strict);
                prop_assert_eq!(&lazy, &strict, "strict mismatch p={} n={}", m.value(), n);

                let mut cg = a.clone();
                t.forward_constant_geometry(&mut cg);
                prop_assert_eq!(&lazy, &cg, "constant-geometry mismatch p={} n={}", m.value(), n);

                let mut fs = a.clone();
                t.forward_four_step(&mut fs);
                prop_assert_eq!(&lazy, &fs, "four-step mismatch p={} n={}", m.value(), n);

                // Round-trip: lazy inverse on the lazy spectrum recovers
                // the input exactly, and matches the strict inverse.
                let mut back = lazy.clone();
                t.inverse(&mut back);
                prop_assert_eq!(&back, &a, "roundtrip mismatch p={} n={}", m.value(), n);
                let mut back_strict = lazy;
                t.inverse_strict(&mut back_strict);
                prop_assert_eq!(&back_strict, &a, "strict inverse mismatch p={} n={}", m.value(), n);
            }
        }
    }

    #[test]
    fn lazy_linearity(seed in any::<u64>()) {
        // forward(a + b) == forward(a) + forward(b) on the lazy path —
        // catches any stage where the [0, 4p) window could leak.
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let n = 512;
        for m in workspace_moduli(n) {
            let t = NttTable::new(m, n);
            let a: Vec<u64> = (0..n).map(|_| rng.gen_range(0..m.value())).collect();
            let b: Vec<u64> = (0..n).map(|_| rng.gen_range(0..m.value())).collect();
            let sum: Vec<u64> = a.iter().zip(&b).map(|(&x, &y)| m.add(x, y)).collect();
            let (mut fa, mut fb, mut fs) = (a, b, sum);
            t.forward(&mut fa);
            t.forward(&mut fb);
            t.forward(&mut fs);
            for i in 0..n {
                prop_assert_eq!(fs[i], m.add(fa[i], fb[i]), "slot {} p={}", i, m.value());
            }
        }
    }
}
