//! Property-based tests on the arithmetic substrate's invariants.

use std::sync::Arc;

use fhe_math::prime::ntt_primes;
use fhe_math::{GaloisPerms, Modulus, NttTable, Representation, RnsBasis, RnsPoly};
use proptest::prelude::*;

fn modulus_50() -> Modulus {
    Modulus::new(ntt_primes(50, 256, 1)[0]).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn mul_commutative_associative(a in any::<u64>(), b in any::<u64>(), c in any::<u64>()) {
        let m = modulus_50();
        let (a, b, c) = (m.reduce(a), m.reduce(b), m.reduce(c));
        prop_assert_eq!(m.mul(a, b), m.mul(b, a));
        prop_assert_eq!(m.mul(m.mul(a, b), c), m.mul(a, m.mul(b, c)));
    }

    #[test]
    fn distributive_law(a in any::<u64>(), b in any::<u64>(), c in any::<u64>()) {
        let m = modulus_50();
        let (a, b, c) = (m.reduce(a), m.reduce(b), m.reduce(c));
        prop_assert_eq!(m.mul(a, m.add(b, c)), m.add(m.mul(a, b), m.mul(a, c)));
    }

    #[test]
    fn inverse_is_two_sided(a in 1u64..u64::MAX) {
        let m = modulus_50();
        let a = m.reduce(a);
        prop_assume!(a != 0);
        let inv = m.inv(a).unwrap();
        prop_assert_eq!(m.mul(a, inv), 1);
        prop_assert_eq!(m.mul(inv, a), 1);
    }

    #[test]
    fn centered_lift_roundtrip(a in any::<i64>()) {
        let m = modulus_50();
        let a = a % (m.value() as i64 / 2);
        let r = m.from_i64(a);
        prop_assert_eq!(m.to_centered(r), a);
    }

    #[test]
    fn shoup_agrees_with_barrett(a in any::<u64>(), w in any::<u64>()) {
        let m = modulus_50();
        let (a, w) = (m.reduce(a), m.reduce(w));
        let ws = m.shoup(w);
        prop_assert_eq!(m.mul_shoup(a, w, ws), m.mul(a, w));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn ntt_roundtrip_any_poly(seed in any::<u64>()) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let n = 128;
        let p = ntt_primes(45, n, 1)[0];
        let t = NttTable::new(Modulus::new(p).unwrap(), n);
        let a: Vec<u64> = (0..n).map(|_| rng.gen_range(0..p)).collect();
        let mut b = a.clone();
        t.forward(&mut b);
        t.inverse(&mut b);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn convolution_theorem(seed in any::<u64>()) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let n = 64;
        let p = ntt_primes(36, n, 1)[0];
        let m = Modulus::new(p).unwrap();
        let t = NttTable::new(m, n);
        let a: Vec<u64> = (0..n).map(|_| rng.gen_range(0..p)).collect();
        let b: Vec<u64> = (0..n).map(|_| rng.gen_range(0..p)).collect();
        let fast = t.negacyclic_mul(&a, &b);
        let slow = fhe_math::ntt::negacyclic_mul_schoolbook(&m, &a, &b);
        prop_assert_eq!(fast, slow);
    }

    #[test]
    fn automorphism_preserves_products(seed in any::<u64>(), g_pow in 0u32..5) {
        // sigma_g(a * b) == sigma_g(a) * sigma_g(b): ring homomorphism.
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let n = 32;
        let basis = Arc::new(RnsBasis::new(&ntt_primes(40, n, 2), n));
        let perms = GaloisPerms::new(basis.table(0).clone());
        let g = fhe_math::galois::rotation_galois_element(g_pow as i64, n);

        let av: Vec<i64> = (0..n).map(|_| rng.gen_range(-100i64..100)).collect();
        let bv: Vec<i64> = (0..n).map(|_| rng.gen_range(-100i64..100)).collect();

        // sigma(a*b)
        let mut a = RnsPoly::from_signed_coeffs(basis.clone(), &av);
        let mut b = RnsPoly::from_signed_coeffs(basis.clone(), &bv);
        a.to_eval();
        b.to_eval();
        a.mul_assign_pointwise(&b);
        a.automorphism(g, &perms);
        a.to_coeff();

        // sigma(a)*sigma(b)
        let mut a2 = RnsPoly::from_signed_coeffs(basis.clone(), &av);
        let mut b2 = RnsPoly::from_signed_coeffs(basis.clone(), &bv);
        a2.automorphism(g, &perms);
        b2.automorphism(g, &perms);
        a2.to_eval();
        b2.to_eval();
        a2.mul_assign_pointwise(&b2);
        a2.to_coeff();

        prop_assert_eq!(a.flat(), a2.flat());
    }

    #[test]
    fn monomial_mul_order(k1 in 0i64..64, k2 in 0i64..64, seed in any::<u64>()) {
        // X^k1 * (X^k2 * a) == X^(k1+k2) * a
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let n = 32;
        let basis = Arc::new(RnsBasis::new(&ntt_primes(40, n, 1), n));
        let av: Vec<i64> = (0..n).map(|_| rng.gen_range(-100i64..100)).collect();
        let mut a = RnsPoly::from_signed_coeffs(basis.clone(), &av);
        a.mul_monomial(k2);
        a.mul_monomial(k1);
        let mut b = RnsPoly::from_signed_coeffs(basis, &av);
        b.mul_monomial(k1 + k2);
        prop_assert_eq!(a.flat(), b.flat());
    }

    #[test]
    fn rns_add_matches_integer_add(x in -(1i64<<40)..(1i64<<40), y in -(1i64<<40)..(1i64<<40)) {
        let n = 4;
        let basis = Arc::new(RnsBasis::new(&ntt_primes(45, n, 3), n));
        let a = RnsPoly::from_signed_coeffs(basis.clone(), &[x, 0, 0, 0]);
        let b = RnsPoly::from_signed_coeffs(basis, &[y, 0, 0, 0]);
        let mut c = a.clone();
        c.add_assign(&b);
        let got = c.to_centered_f64()[0];
        prop_assert!((got - (x + y) as f64).abs() < 1e-3);
    }

    #[test]
    fn representation_transitions_are_inverse(seed in any::<u64>()) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let n = 64;
        let basis = Arc::new(RnsBasis::new(&ntt_primes(40, n, 2), n));
        let av: Vec<i64> = (0..n).map(|_| rng.gen_range(-1000i64..1000)).collect();
        let mut a = RnsPoly::from_signed_coeffs(basis, &av);
        let orig = a.clone();
        prop_assert_eq!(a.representation(), Representation::Coeff);
        a.to_eval();
        a.to_coeff();
        prop_assert_eq!(a.flat(), orig.flat());
    }
}
