//! Galois automorphisms of the negacyclic ring.
//!
//! The automorphism `sigma_g : X -> X^g` (odd `g`) permutes the
//! evaluation slots of a polynomial; CKKS rotations use `g = 5^r mod 2N`
//! (the paper's `Auto` kernel: "maps the indices of each coefficient from
//! i to sigma_r(i) = i * 5^r mod N", §II-A) and conjugation uses
//! `g = 2N - 1`. Scheme conversion's field trace uses `g = N/2^k + 1`
//! elements.
//!
//! In coefficient form the map is a signed index permutation. In
//! evaluation form it is an unsigned slot permutation which depends on
//! which evaluation point each NTT output slot holds; [`GaloisPerms`]
//! recovers that mapping once per ring by transforming the monomial `X`
//! and taking discrete logs against a precomputed table of psi powers.

use std::collections::HashMap;
use std::sync::{Arc, RwLock, RwLockReadGuard, RwLockWriteGuard};

use crate::ntt::NttTable;

/// Per-ring cache of evaluation-domain automorphism permutations.
///
/// The permutation cache is a readers–writer lock: steady-state lookups
/// (every rotation of every ciphertext) take the shared read path and
/// proceed concurrently; only a cache miss takes the write lock, with a
/// double-checked re-probe so concurrent first uses of the same element
/// compute the permutation at most... once each but insert exactly one
/// (first writer wins; later computes are dropped, never duplicated in
/// the map). Lock poisoning is explicitly recovered — the cached values
/// are immutable `Arc`s that are never left half-written, so a panic in
/// an unrelated holder must not take every future rotation down with
/// `PoisonError`.
#[derive(Debug)]
pub struct GaloisPerms {
    table: Arc<NttTable>,
    /// Exponent `e_i` such that NTT output slot `i` holds `f(psi^{e_i})`.
    slot_exponent: Vec<u64>,
    /// Inverse map: exponent (odd, < 2n) -> slot index.
    slot_of_exponent: Vec<u32>,
    cache: RwLock<HashMap<u64, Arc<Vec<usize>>>>,
}

/// Recovers a read guard from a poisoned [`RwLock`]: the map only ever
/// holds fully-constructed immutable entries, so the poison flag carries
/// no integrity information here.
fn read_cache(
    lock: &RwLock<HashMap<u64, Arc<Vec<usize>>>>,
) -> RwLockReadGuard<'_, HashMap<u64, Arc<Vec<usize>>>> {
    lock.read().unwrap_or_else(|e| e.into_inner())
}

/// Write-guard counterpart of [`read_cache`].
fn write_cache(
    lock: &RwLock<HashMap<u64, Arc<Vec<usize>>>>,
) -> RwLockWriteGuard<'_, HashMap<u64, Arc<Vec<usize>>>> {
    lock.write().unwrap_or_else(|e| e.into_inner())
}

impl GaloisPerms {
    /// Builds the slot-exponent map for a ring.
    pub fn new(table: Arc<NttTable>) -> Self {
        let n = table.n();
        let m = *table.modulus();
        // Transform f(X) = X: slot i then holds psi^{e_i}.
        let mut x = vec![0u64; n];
        x[1] = 1;
        table.forward(&mut x);
        // psi powers lookup: psi^e for all odd e < 2n.
        // Recover psi as the element whose n-th power is -1 among slot
        // values: every slot value IS some psi^odd; find psi^1 by checking
        // which candidate generates all slot values consistently. Simpler:
        // brute-force match each slot value against psi^e computed from
        // any primitive 2n-th root — but we need the *same* psi the table
        // used. The slot values themselves are psi^{odd}; the set of odd
        // powers of any fixed primitive 2n-th root equals this set, but
        // exponents must be consistent with the table's psi. We recover
        // the table's psi by transforming f(X)=X with n=2 semantics:
        // slot exponents are determined up to the choice of psi; any
        // primitive 2n-th root whose odd powers match the slot values
        // bijectively gives a consistent labelling, and automorphism
        // permutations are identical under relabelling psi -> psi^u
        // (u odd): slots permute the same way.
        let mut value_to_exp: HashMap<u64, u64> = HashMap::with_capacity(n);
        // Choose psi := value in slot of the exponent labelled 1 — any
        // slot value works as the labelling root. Verify it is a
        // primitive 2n-th root.
        let cand = x[0];
        debug_assert_eq!(
            m.pow(cand, n as u64),
            m.value() - 1,
            "slot value not a negacyclic root"
        );
        let mut pw = 1u64;
        for e in 0..(2 * n as u64) {
            value_to_exp.insert(pw, e);
            pw = m.mul(pw, cand);
        }
        let mut slot_exponent = vec![0u64; n];
        let mut slot_of_exponent = vec![u32::MAX; 2 * n];
        for (i, &v) in x.iter().enumerate() {
            let e = *value_to_exp
                .get(&v)
                .expect("slot value must be a power of the labelling root");
            slot_exponent[i] = e;
            slot_of_exponent[e as usize] = i as u32;
        }
        Self {
            table,
            slot_exponent,
            slot_of_exponent,
            cache: RwLock::new(HashMap::new()),
        }
    }

    /// Ring degree.
    pub fn n(&self) -> usize {
        self.table.n()
    }

    /// Returns the evaluation-domain permutation for `sigma_g`:
    /// `out[i] = in[perm[i]]`.
    ///
    /// # Panics
    ///
    /// Panics if `g` is even.
    pub fn eval_permutation(&self, g: u64) -> Arc<Vec<usize>> {
        assert_eq!(g % 2, 1, "galois element must be odd");
        let two_n = 2 * self.n() as u64;
        let g = g % two_n;
        if let Some(p) = read_cache(&self.cache).get(&g) {
            return p.clone();
        }
        // Miss: compute outside any lock (the permutation build is the
        // expensive part), then double-check under the write lock so a
        // concurrent first use inserts exactly one entry.
        // (sigma_g f)(psi^e) = f(psi^{e*g}), so the slot holding exponent
        // e must read from the slot holding exponent e*g.
        let perm: Vec<usize> = (0..self.n())
            .map(|i| {
                let e = self.slot_exponent[i];
                let src_e = (e as u128 * g as u128 % two_n as u128) as u64;
                self.slot_of_exponent[src_e as usize] as usize
            })
            .collect();
        write_cache(&self.cache)
            .entry(g)
            .or_insert_with(|| Arc::new(perm))
            .clone()
    }
}

/// Galois element for a CKKS rotation by `r` slots: `5^r mod 2N`.
///
/// `5` has multiplicative order exactly `N/2` modulo `2N` (the slot
/// count), so any `r` — zero, negative, or `|r| >= N/2` — reduces to
/// the canonical exponent `r mod N/2` taken Euclidean-style. Negative
/// rotations thus come out as `5^{N/2 - |r| mod N/2}`, the same element
/// `inv(5)^{|r|}` denotes, without ever negating `r`: the previous
/// formulation computed `(-r)` first, which overflows (and panics under
/// the workspace's always-on overflow checks) for `r = i64::MIN`.
/// Pinned, together with the wraparound identities, by the exhaustive
/// small-`n` oracle tests below and the plaintext-slot oracle in
/// `fhe-ckks`.
pub fn rotation_galois_element(r: i64, n: usize) -> u64 {
    let two_n = 2 * n as u64;
    let m = crate::modulus::Modulus::new(two_n).expect("2n in range");
    let slots = (n as i64) / 2;
    m.pow(5, r.rem_euclid(slots.max(1)) as u64)
}

/// Galois element for complex conjugation: `2N - 1`.
pub fn conjugation_galois_element(n: usize) -> u64 {
    2 * n as u64 - 1
}

/// Galois elements used by the field trace (`N/nslot` doubling steps of
/// the conversion algorithm, Alg. 5 line 4): `2^step_log + 1`.
pub fn trace_galois_element(step_log: u32) -> u64 {
    (1u64 << step_log) + 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modulus::Modulus;
    use crate::prime::ntt_primes;

    #[test]
    fn rotation_elements_are_odd_powers_of_five() {
        let n = 1024;
        assert_eq!(rotation_galois_element(0, n), 1);
        assert_eq!(rotation_galois_element(1, n), 5);
        assert_eq!(rotation_galois_element(2, n), 25);
        let g = rotation_galois_element(-1, n);
        assert_eq!((g as u128 * 5) % (2 * n as u128), 1);
    }

    #[test]
    fn conjugation_element() {
        assert_eq!(conjugation_galois_element(8), 15);
    }

    #[test]
    fn eval_permutation_is_bijective() {
        let n = 64;
        let p = ntt_primes(40, n, 1)[0];
        let t = Arc::new(NttTable::new(Modulus::new(p).unwrap(), n));
        let perms = GaloisPerms::new(t);
        for g in [5u64, 25, 127, 2 * 64 - 1] {
            let perm = perms.eval_permutation(g);
            let mut seen = vec![false; n];
            for &s in perm.iter() {
                assert!(!seen[s], "duplicate source slot {s} for g={g}");
                seen[s] = true;
            }
        }
    }

    /// Exhaustive small-`n` audit of the rotation-element edge cases:
    /// `r = 0`, negative `r`, and `|r| >= n/2` wraparound, checked
    /// against the group-theoretic oracle (5 has order `n/2` mod `2n`,
    /// so `g(r)` must equal `5^{r mod n/2}` with Euclidean reduction,
    /// compose additively, and invert to the modular inverse).
    #[test]
    fn rotation_element_edge_cases_exhaustive() {
        for n in [4usize, 8, 16, 32, 64] {
            let slots = (n / 2) as i64;
            let two_n = 2 * n as u64;
            let m = Modulus::new(two_n).unwrap();
            // r = 0 is the identity automorphism.
            assert_eq!(rotation_galois_element(0, n), 1, "n={n}");
            // Exhaustive wraparound: every r in a window spanning
            // several orbits reduces to its canonical representative.
            for r in -(3 * slots)..=(3 * slots) {
                let g = rotation_galois_element(r, n);
                let canonical = rotation_galois_element(r.rem_euclid(slots), n);
                assert_eq!(g, canonical, "n={n} r={r}: wraparound mismatch");
                // Composition: g(r1) * g(r2) = g(r1 + r2) for all pairs
                // with r2 exhausting one full orbit.
                for r2 in 0..slots {
                    let lhs = m.mul(g, rotation_galois_element(r2, n));
                    assert_eq!(
                        lhs,
                        rotation_galois_element(r + r2, n),
                        "n={n}: composition {r} + {r2}"
                    );
                }
                // Inverse rotations cancel.
                assert_eq!(
                    m.mul(g, rotation_galois_element(-r, n)),
                    1,
                    "n={n} r={r}: inverse rotation does not cancel"
                );
            }
            // A full orbit (or its negative) is the identity rotation.
            assert_eq!(rotation_galois_element(slots, n), 1, "n={n}");
            assert_eq!(rotation_galois_element(-slots, n), 1, "n={n}");
        }
    }

    /// Regression: `r = i64::MIN` used to negate `r` before reducing,
    /// which overflows (a panic under the workspace's always-on
    /// overflow checks). The Euclidean reduction must handle the full
    /// `i64` domain.
    #[test]
    fn rotation_element_extreme_inputs() {
        for n in [8usize, 1024] {
            let slots = (n / 2) as i64;
            let g_min = rotation_galois_element(i64::MIN, n);
            assert_eq!(
                g_min,
                rotation_galois_element(i64::MIN.rem_euclid(slots), n)
            );
            let g_max = rotation_galois_element(i64::MAX, n);
            assert_eq!(
                g_max,
                rotation_galois_element(i64::MAX.rem_euclid(slots), n)
            );
        }
    }

    /// Concurrent first use of the permutation cache: all threads must
    /// observe the same permutation for the same element, with no
    /// poisoning and no torn entries (satellite regression for the
    /// `RwLock` + double-checked-insert cache).
    #[test]
    fn eval_permutation_cache_is_thread_safe_on_first_use() {
        let n = 256;
        let p = ntt_primes(40, n, 1)[0];
        let t = Arc::new(NttTable::new(Modulus::new(p).unwrap(), n));
        let perms = Arc::new(GaloisPerms::new(t));
        let elements: Vec<u64> = (0..8)
            .map(|r| rotation_galois_element(r, n))
            .chain([conjugation_galois_element(n)])
            .collect();
        let mut handles = Vec::new();
        for tid in 0..8 {
            let perms = perms.clone();
            let elements = elements.clone();
            handles.push(std::thread::spawn(move || {
                // Stagger the access order so different threads race on
                // different elements' first insert.
                let mut got = Vec::new();
                for k in 0..elements.len() {
                    let g = elements[(k + tid) % elements.len()];
                    got.push((g, perms.eval_permutation(g)));
                }
                got
            }));
        }
        let mut reference: HashMap<u64, Arc<Vec<usize>>> = HashMap::new();
        for h in handles {
            for (g, perm) in h.join().expect("no thread panics") {
                // Bijectivity of every returned permutation.
                let mut seen = vec![false; n];
                for &s in perm.iter() {
                    assert!(!seen[s], "torn permutation for g={g}");
                    seen[s] = true;
                }
                // All threads agree per element.
                let entry = reference.entry(g).or_insert_with(|| perm.clone());
                assert_eq!(entry.as_slice(), perm.as_slice(), "divergent perm g={g}");
            }
        }
    }

    #[test]
    fn identity_automorphism_is_identity_permutation() {
        let n = 32;
        let p = ntt_primes(40, n, 1)[0];
        let t = Arc::new(NttTable::new(Modulus::new(p).unwrap(), n));
        let perms = GaloisPerms::new(t);
        let perm = perms.eval_permutation(1);
        assert!(perm.iter().enumerate().all(|(i, &s)| i == s));
    }
}
