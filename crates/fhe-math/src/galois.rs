//! Galois automorphisms of the negacyclic ring.
//!
//! The automorphism `sigma_g : X -> X^g` (odd `g`) permutes the
//! evaluation slots of a polynomial; CKKS rotations use `g = 5^r mod 2N`
//! (the paper's `Auto` kernel: "maps the indices of each coefficient from
//! i to sigma_r(i) = i * 5^r mod N", §II-A) and conjugation uses
//! `g = 2N - 1`. Scheme conversion's field trace uses `g = N/2^k + 1`
//! elements.
//!
//! In coefficient form the map is a signed index permutation. In
//! evaluation form it is an unsigned slot permutation which depends on
//! which evaluation point each NTT output slot holds; [`GaloisPerms`]
//! recovers that mapping once per ring by transforming the monomial `X`
//! and taking discrete logs against a precomputed table of psi powers.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use crate::ntt::NttTable;

/// Per-ring cache of evaluation-domain automorphism permutations.
#[derive(Debug)]
pub struct GaloisPerms {
    table: Arc<NttTable>,
    /// Exponent `e_i` such that NTT output slot `i` holds `f(psi^{e_i})`.
    slot_exponent: Vec<u64>,
    /// Inverse map: exponent (odd, < 2n) -> slot index.
    slot_of_exponent: Vec<u32>,
    cache: Mutex<HashMap<u64, Arc<Vec<usize>>>>,
}

impl GaloisPerms {
    /// Builds the slot-exponent map for a ring.
    pub fn new(table: Arc<NttTable>) -> Self {
        let n = table.n();
        let m = *table.modulus();
        // Transform f(X) = X: slot i then holds psi^{e_i}.
        let mut x = vec![0u64; n];
        x[1] = 1;
        table.forward(&mut x);
        // psi powers lookup: psi^e for all odd e < 2n.
        // Recover psi as the element whose n-th power is -1 among slot
        // values: every slot value IS some psi^odd; find psi^1 by checking
        // which candidate generates all slot values consistently. Simpler:
        // brute-force match each slot value against psi^e computed from
        // any primitive 2n-th root — but we need the *same* psi the table
        // used. The slot values themselves are psi^{odd}; the set of odd
        // powers of any fixed primitive 2n-th root equals this set, but
        // exponents must be consistent with the table's psi. We recover
        // the table's psi by transforming f(X)=X with n=2 semantics:
        // slot exponents are determined up to the choice of psi; any
        // primitive 2n-th root whose odd powers match the slot values
        // bijectively gives a consistent labelling, and automorphism
        // permutations are identical under relabelling psi -> psi^u
        // (u odd): slots permute the same way.
        let mut value_to_exp: HashMap<u64, u64> = HashMap::with_capacity(n);
        // Choose psi := value in slot of the exponent labelled 1 — any
        // slot value works as the labelling root. Verify it is a
        // primitive 2n-th root.
        let cand = x[0];
        debug_assert_eq!(
            m.pow(cand, n as u64),
            m.value() - 1,
            "slot value not a negacyclic root"
        );
        let mut pw = 1u64;
        for e in 0..(2 * n as u64) {
            value_to_exp.insert(pw, e);
            pw = m.mul(pw, cand);
        }
        let mut slot_exponent = vec![0u64; n];
        let mut slot_of_exponent = vec![u32::MAX; 2 * n];
        for (i, &v) in x.iter().enumerate() {
            let e = *value_to_exp
                .get(&v)
                .expect("slot value must be a power of the labelling root");
            slot_exponent[i] = e;
            slot_of_exponent[e as usize] = i as u32;
        }
        Self {
            table,
            slot_exponent,
            slot_of_exponent,
            cache: Mutex::new(HashMap::new()),
        }
    }

    /// Ring degree.
    pub fn n(&self) -> usize {
        self.table.n()
    }

    /// Returns the evaluation-domain permutation for `sigma_g`:
    /// `out[i] = in[perm[i]]`.
    ///
    /// # Panics
    ///
    /// Panics if `g` is even.
    pub fn eval_permutation(&self, g: u64) -> Arc<Vec<usize>> {
        assert_eq!(g % 2, 1, "galois element must be odd");
        let two_n = 2 * self.n() as u64;
        let g = g % two_n;
        if let Some(p) = self.cache.lock().unwrap().get(&g) {
            return p.clone();
        }
        // (sigma_g f)(psi^e) = f(psi^{e*g}), so the slot holding exponent
        // e must read from the slot holding exponent e*g.
        let perm: Vec<usize> = (0..self.n())
            .map(|i| {
                let e = self.slot_exponent[i];
                let src_e = (e as u128 * g as u128 % two_n as u128) as u64;
                self.slot_of_exponent[src_e as usize] as usize
            })
            .collect();
        let arc = Arc::new(perm);
        self.cache.lock().unwrap().insert(g, arc.clone());
        arc
    }
}

/// Galois element for a CKKS rotation by `r` slots: `5^r mod 2N`
/// (negative `r` uses the inverse of 5).
pub fn rotation_galois_element(r: i64, n: usize) -> u64 {
    let two_n = 2 * n as u64;
    let m = crate::modulus::Modulus::new(two_n).expect("2n in range");
    if r >= 0 {
        m.pow(5, r as u64 % (n as u64 / 2))
    } else {
        let inv5 = m.inv(5).expect("5 invertible mod 2^k");
        m.pow(inv5, (-r) as u64 % (n as u64 / 2))
    }
}

/// Galois element for complex conjugation: `2N - 1`.
pub fn conjugation_galois_element(n: usize) -> u64 {
    2 * n as u64 - 1
}

/// Galois elements used by the field trace (`N/nslot` doubling steps of
/// the conversion algorithm, Alg. 5 line 4): `2^step_log + 1`.
pub fn trace_galois_element(step_log: u32) -> u64 {
    (1u64 << step_log) + 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modulus::Modulus;
    use crate::prime::ntt_primes;

    #[test]
    fn rotation_elements_are_odd_powers_of_five() {
        let n = 1024;
        assert_eq!(rotation_galois_element(0, n), 1);
        assert_eq!(rotation_galois_element(1, n), 5);
        assert_eq!(rotation_galois_element(2, n), 25);
        let g = rotation_galois_element(-1, n);
        assert_eq!((g as u128 * 5) % (2 * n as u128), 1);
    }

    #[test]
    fn conjugation_element() {
        assert_eq!(conjugation_galois_element(8), 15);
    }

    #[test]
    fn eval_permutation_is_bijective() {
        let n = 64;
        let p = ntt_primes(40, n, 1)[0];
        let t = Arc::new(NttTable::new(Modulus::new(p).unwrap(), n));
        let perms = GaloisPerms::new(t);
        for g in [5u64, 25, 127, 2 * 64 - 1] {
            let perm = perms.eval_permutation(g);
            let mut seen = vec![false; n];
            for &s in perm.iter() {
                assert!(!seen[s], "duplicate source slot {s} for g={g}");
                seen[s] = true;
            }
        }
    }

    #[test]
    fn identity_automorphism_is_identity_permutation() {
        let n = 32;
        let p = ntt_primes(40, n, 1)[0];
        let t = Arc::new(NttTable::new(Modulus::new(p).unwrap(), n));
        let perms = GaloisPerms::new(t);
        let perm = perms.eval_permutation(1);
        assert!(perm.iter().enumerate().all(|(i, &s)| i == s));
    }
}
