//! RNS polynomials over `Z_Q[X]/(X^N + 1)`.
//!
//! An [`RnsPoly`] stores its residues as one **flat, contiguous**
//! `Vec<u64>` of `limbs * n` words in limb-major order — limb `i`
//! occupies `data[i*n .. (i+1)*n]`, exposed through [`RnsPoly::limb`] /
//! [`RnsPoly::limb_mut`] slice views. This mirrors how accelerator
//! scratchpads bank RNS residues (one row per limb, §IV-B) and keeps the
//! hot loops allocation-free and cache-linear, instead of chasing one
//! heap allocation per limb.
//!
//! The poly tracks whether it is in coefficient or evaluation (NTT)
//! representation — mirroring the paper's kernel taxonomy, where
//! `NTT`/`iNTT` convert between the two and `ModMul`/`ModAdd` act
//! pointwise in evaluation form — and, orthogonally, which *reduction
//! state* its residues are in ([`ReductionState`]):
//!
//! * [`ReductionState::Canonical`] — every residue in `[0, p)` per
//!   limb. All strict kernels require and preserve this.
//! * [`ReductionState::Lazy2p`] — residues are `[0, 2p)`
//!   representatives. Produced by the `*_lazy` kernels, which skip the
//!   per-kernel canonicalisation pass; a single [`RnsPoly::canonicalize`]
//!   folds back at the ciphertext boundary, the way hardware pipelines
//!   keep operands in redundant form between butterfly/MAC stages and
//!   only fully reduce at memory writeback.
//!
//! The legal transitions (asserted by `tests/lazy_chains.rs`):
//!
//! ```text
//! Canonical --to_eval/to_coeff/strict ops----------------> Canonical
//! Canonical --to_eval_lazy/to_coeff_lazy/*_lazy ops------> Lazy2p
//! Lazy2p    --to_eval_lazy/to_coeff_lazy/*_lazy ops------> Lazy2p
//! any state --automorphism_lazy (eval-form slot perm)----> same state
//! Lazy2p    --canonicalize / to_eval / to_coeff----------> Canonical
//! Lazy2p    --strict kernels (add_assign, mul_*, ...)----> debug panic
//! ```
//!
//! The `[0, 4p)` inter-stage window of the Harvey butterflies never
//! escapes [`crate::NttTable`]; only the `[0, 2p)` window crosses
//! kernel boundaries, and only under the `Lazy2p` marker.

use std::sync::Arc;

use crate::galois::GaloisPerms;
use crate::kernel::{self, ExitFold};
use crate::ntt::NttTable;
use crate::rns::RnsBasis;
use crate::scratch::with_scratch;

/// The representation a polynomial's residues are currently in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Representation {
    /// Coefficient domain.
    Coeff,
    /// Evaluation (NTT) domain.
    Eval,
}

/// The reduction state a polynomial's residues are currently in.
///
/// Tracked alongside [`Representation`]: representation says which
/// *domain* (coefficient vs evaluation) the residues live in, reduction
/// state says which *window* (`[0, p)` vs `[0, 2p)`) they are reduced
/// into. See the module docs for the legal transitions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReductionState {
    /// Every residue is canonical: `[0, p)` for its limb.
    Canonical,
    /// Residues are lazy `[0, 2p)` representatives awaiting a deferred
    /// [`RnsPoly::canonicalize`] at the ciphertext boundary.
    Lazy2p,
}

/// Borrowed per-limb NTT tables in backend-SPI form (the batched kernel
/// entry points take plain references). A free function — not a method
/// — so the returned borrows pin only the basis, leaving the flat data
/// buffer free for the `&mut` side of the batched call.
#[inline]
fn table_refs(basis: &RnsBasis) -> Vec<&NttTable> {
    basis.tables().iter().map(|t| t.as_ref()).collect()
}

/// An RNS polynomial: `basis.len()` limbs of `n` residues in one flat
/// contiguous buffer.
#[derive(Debug, Clone)]
pub struct RnsPoly {
    basis: Arc<RnsBasis>,
    /// Limb-major flat residues: limb `i` at `data[i*n .. (i+1)*n]`.
    data: Vec<u64>,
    repr: Representation,
    red: ReductionState,
}

impl RnsPoly {
    /// The zero polynomial in the given representation.
    pub fn zero(basis: Arc<RnsBasis>, repr: Representation) -> Self {
        let data = vec![0u64; basis.len() * basis.n()];
        Self {
            basis,
            data,
            repr,
            red: ReductionState::Canonical,
        }
    }

    /// Lifts small signed coefficients into every limb (coefficient form).
    ///
    /// # Panics
    ///
    /// Panics if `coeffs.len() != basis.n()`.
    pub fn from_signed_coeffs(basis: Arc<RnsBasis>, coeffs: &[i64]) -> Self {
        assert_eq!(coeffs.len(), basis.n());
        let mut data = Vec::with_capacity(basis.len() * basis.n());
        for m in basis.moduli() {
            data.extend(coeffs.iter().map(|&c| m.from_i64(c)));
        }
        Self {
            basis,
            data,
            repr: Representation::Coeff,
            red: ReductionState::Canonical,
        }
    }

    /// Wraps a precomputed flat residue buffer (`limbs * n` words,
    /// limb-major).
    ///
    /// # Panics
    ///
    /// Panics if the length does not match the basis; debug-asserts that
    /// every residue is canonical for its limb.
    pub fn from_flat(basis: Arc<RnsBasis>, data: Vec<u64>, repr: Representation) -> Self {
        assert_eq!(data.len(), basis.len() * basis.n());
        debug_assert!(data
            .chunks_exact(basis.n())
            .zip(basis.moduli())
            .all(|(row, m)| row.iter().all(|&x| x < m.value())));
        Self {
            basis,
            data,
            repr,
            red: ReductionState::Canonical,
        }
    }

    /// The RNS basis.
    #[inline]
    pub fn basis(&self) -> &Arc<RnsBasis> {
        &self.basis
    }

    /// Ring degree.
    #[inline]
    pub fn n(&self) -> usize {
        self.basis.n()
    }

    /// Number of RNS limbs.
    #[inline]
    pub fn limbs(&self) -> usize {
        self.basis.len()
    }

    /// Current representation.
    #[inline]
    pub fn representation(&self) -> Representation {
        self.repr
    }

    /// Current reduction state.
    #[inline]
    #[must_use]
    pub fn reduction_state(&self) -> ReductionState {
        self.red
    }

    /// Debug-assert guard at strict-kernel entry: a lazy `[0, 2p)`
    /// polynomial must never reach a kernel that assumes canonical
    /// residues unnoticed. A thin wrapper over the workspace-wide
    /// [`crate::debug_assert_domain!`] form.
    #[inline]
    fn debug_assert_canonical(&self, kernel: &str) {
        crate::debug_assert_domain!(canonical: self, kernel);
    }

    /// Debug-assert guard at batched-kernel entry: every residue must
    /// be inside the `[0, 2p)` window its limb's kernels assume
    /// (backends are entitled to that contract; the caller owns the
    /// check). Wraps [`crate::debug_assert_domain!`].
    #[inline]
    fn debug_assert_rows_within_2p(&self, kernel: &str) {
        crate::debug_assert_domain!(within_2p: self, kernel);
    }

    /// Folds every residue back into the canonical `[0, p)` window.
    ///
    /// The single deferred reduction pass of a lazy kernel chain —
    /// higher layers call this once per ciphertext limb at ciphertext
    /// boundaries instead of letting every kernel canonicalise its
    /// output. No-op when already canonical.
    pub fn canonicalize(&mut self) {
        if self.red == ReductionState::Canonical {
            return;
        }
        self.debug_assert_rows_within_2p("canonicalize");
        kernel::active().fold_2p_to_canonical_batch(self.basis.moduli(), &mut self.data);
        self.red = ReductionState::Canonical;
    }

    /// Residues of limb `i` (a slice view into the flat buffer).
    #[inline]
    pub fn limb(&self, i: usize) -> &[u64] {
        let n = self.basis.n();
        &self.data[i * n..(i + 1) * n]
    }

    /// Mutable residues of limb `i`. Callers must preserve canonical
    /// range invariants.
    #[inline]
    pub fn limb_mut(&mut self, i: usize) -> &mut [u64] {
        let n = self.basis.n();
        &mut self.data[i * n..(i + 1) * n]
    }

    /// The whole flat residue buffer (`limbs * n` words, limb-major).
    #[inline]
    pub fn flat(&self) -> &[u64] {
        &self.data
    }

    /// Mutable flat residue buffer. Callers must preserve canonical
    /// range invariants.
    #[inline]
    pub fn flat_mut(&mut self) -> &mut [u64] {
        &mut self.data
    }

    /// Consumes the polynomial, returning its flat buffer.
    #[inline]
    #[must_use]
    pub fn into_flat(self) -> Vec<u64> {
        self.data
    }

    /// Heap bytes owned by this polynomial's residue buffer (allocated
    /// capacity, not just the live length). The unit of account for
    /// key-cache eviction in the service layer: evaluation/galois keys
    /// are stacks of `RnsPoly` rows, and their measured size is the sum
    /// of these.
    #[inline]
    pub fn heap_bytes(&self) -> usize {
        self.data.capacity() * std::mem::size_of::<u64>()
    }

    fn assert_same_basis(&self, other: &RnsPoly) {
        assert_eq!(self.basis.n(), other.basis.n(), "ring degree mismatch");
        assert_eq!(self.limbs(), other.limbs(), "limb count mismatch");
        debug_assert!(self
            .basis
            .moduli()
            .iter()
            .zip(other.basis.moduli())
            .all(|(a, b)| a.value() == b.value()));
    }

    /// Converts to evaluation form (no-op on the representation if
    /// already there, but always canonicalises).
    ///
    /// Accepts either reduction state — the transform's exit correction
    /// folds lazy input for free — and returns a canonical polynomial.
    pub fn to_eval(&mut self) {
        if self.repr == Representation::Eval {
            self.canonicalize();
            return;
        }
        self.debug_assert_rows_within_2p("to_eval");
        kernel::active().forward_batch(
            &table_refs(&self.basis),
            &mut self.data,
            ExitFold::Canonical,
        );
        self.repr = Representation::Eval;
        self.red = ReductionState::Canonical;
    }

    /// Converts to coefficient form (no-op on the representation if
    /// already there, but always canonicalises).
    ///
    /// Accepts either reduction state and returns a canonical
    /// polynomial, like [`Self::to_eval`].
    pub fn to_coeff(&mut self) {
        if self.repr == Representation::Coeff {
            self.canonicalize();
            return;
        }
        self.debug_assert_rows_within_2p("to_coeff");
        kernel::active().inverse_batch(
            &table_refs(&self.basis),
            &mut self.data,
            ExitFold::Canonical,
        );
        self.repr = Representation::Coeff;
        self.red = ReductionState::Canonical;
    }

    /// Converts to evaluation form with the fully-reduced
    /// [`crate::NttTable::forward_strict`] (every butterfly
    /// canonicalises) — the strict-oracle transform. Requires and
    /// produces canonical residues.
    ///
    /// # Panics
    ///
    /// Panics if already in evaluation form; debug-panics on lazy
    /// input.
    pub fn to_eval_strict(&mut self) {
        assert_eq!(self.repr, Representation::Coeff, "already in eval form");
        self.debug_assert_canonical("to_eval_strict");
        let n = self.basis.n();
        for (row, t) in self.data.chunks_exact_mut(n).zip(self.basis.tables()) {
            t.forward_strict(row);
        }
        self.repr = Representation::Eval;
    }

    /// Converts to coefficient form with the fully-reduced
    /// [`crate::NttTable::inverse_strict`] — the strict-oracle
    /// transform. Requires and produces canonical residues.
    ///
    /// # Panics
    ///
    /// Panics if already in coefficient form; debug-panics on lazy
    /// input.
    pub fn to_coeff_strict(&mut self) {
        assert_eq!(self.repr, Representation::Eval, "already in coeff form");
        self.debug_assert_canonical("to_coeff_strict");
        let n = self.basis.n();
        for (row, t) in self.data.chunks_exact_mut(n).zip(self.basis.tables()) {
            t.inverse_strict(row);
        }
        self.repr = Representation::Coeff;
    }

    /// Converts to evaluation form *lazily*: the batched forward
    /// transform exits into the `[0, 2p)` window (skipping the
    /// canonicalising half of the fold, as
    /// [`crate::NttTable::forward_lazy`] does per row), leaving the
    /// polynomial in [`ReductionState::Lazy2p`].
    ///
    /// This is the entry of every lazy kernel chain. A keyswitch digit,
    /// for instance, is raised, transformed here, multiply-accumulated
    /// with [`Self::mul_acc_pointwise_lazy`], and only folded once at
    /// the ModDown boundary:
    ///
    /// ```
    /// use fhe_math::{prime, ReductionState, Representation, RnsBasis, RnsPoly};
    /// use std::sync::Arc;
    ///
    /// let n = 64;
    /// let basis = Arc::new(RnsBasis::new(&prime::ntt_primes(45, n, 3), n));
    /// let coeffs: Vec<i64> = (0..n as i64).map(|i| i - 32).collect();
    ///
    /// // Lazy chain: NTT -> IP accumulate -> iNTT, one fold at the end.
    /// let mut digit = RnsPoly::from_signed_coeffs(basis.clone(), &coeffs);
    /// digit.to_eval_lazy();
    /// assert_eq!(digit.reduction_state(), ReductionState::Lazy2p);
    /// let mut acc = RnsPoly::zero(basis.clone(), Representation::Eval);
    /// acc.mul_acc_pointwise_lazy(&digit, &digit);
    /// acc.to_coeff_lazy();
    /// acc.canonicalize(); // the single deferred fold
    ///
    /// // Bit-identical to the strict chain on the same inputs.
    /// let mut strict = RnsPoly::from_signed_coeffs(basis.clone(), &coeffs);
    /// strict.to_eval();
    /// let mut strict_acc = RnsPoly::zero(basis, Representation::Eval);
    /// strict_acc.mul_acc_pointwise(&strict, &strict);
    /// strict_acc.to_coeff();
    /// assert_eq!(acc.flat(), strict_acc.flat());
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if already in evaluation form (a lazy chain always knows
    /// its dataflow; an accidental double transform is a bug).
    pub fn to_eval_lazy(&mut self) {
        assert_eq!(self.repr, Representation::Coeff, "already in eval form");
        crate::debug_assert_domain!(within_2p: self, "to_eval_lazy");
        kernel::active().forward_batch(&table_refs(&self.basis), &mut self.data, ExitFold::Lazy2p);
        self.repr = Representation::Eval;
        self.red = ReductionState::Lazy2p;
    }

    /// Converts to coefficient form *lazily* (the batched counterpart
    /// of per-row [`crate::NttTable::inverse_lazy`]), leaving the
    /// polynomial in [`ReductionState::Lazy2p`].
    ///
    /// # Panics
    ///
    /// Panics if already in coefficient form.
    pub fn to_coeff_lazy(&mut self) {
        assert_eq!(self.repr, Representation::Eval, "already in coeff form");
        crate::debug_assert_domain!(within_2p: self, "to_coeff_lazy");
        kernel::active().inverse_batch(&table_refs(&self.basis), &mut self.data, ExitFold::Lazy2p);
        self.repr = Representation::Coeff;
        self.red = ReductionState::Lazy2p;
    }

    /// `self += other` (element-wise per limb; representations must match).
    ///
    /// # Panics
    ///
    /// Panics on basis or representation mismatch.
    pub fn add_assign(&mut self, other: &RnsPoly) {
        self.assert_same_basis(other);
        assert_eq!(self.repr, other.repr, "representation mismatch");
        self.debug_assert_canonical("add_assign");
        other.debug_assert_canonical("add_assign (rhs)");
        let n = self.basis.n();
        for ((row, orow), m) in self
            .data
            .chunks_exact_mut(n)
            .zip(other.data.chunks_exact(n))
            .zip(self.basis.moduli())
        {
            for (x, &y) in row.iter_mut().zip(orow) {
                *x = m.add(*x, y);
            }
        }
    }

    /// `self -= other`.
    ///
    /// # Panics
    ///
    /// Panics on basis or representation mismatch.
    pub fn sub_assign(&mut self, other: &RnsPoly) {
        self.assert_same_basis(other);
        assert_eq!(self.repr, other.repr, "representation mismatch");
        self.debug_assert_canonical("sub_assign");
        other.debug_assert_canonical("sub_assign (rhs)");
        let n = self.basis.n();
        for ((row, orow), m) in self
            .data
            .chunks_exact_mut(n)
            .zip(other.data.chunks_exact(n))
            .zip(self.basis.moduli())
        {
            for (x, &y) in row.iter_mut().zip(orow) {
                *x = m.sub(*x, y);
            }
        }
    }

    /// Negates in place.
    pub fn neg_assign(&mut self) {
        self.debug_assert_canonical("neg_assign");
        let n = self.basis.n();
        for (row, m) in self.data.chunks_exact_mut(n).zip(self.basis.moduli()) {
            for x in row.iter_mut() {
                *x = m.neg(*x);
            }
        }
    }

    /// `self *= other` pointwise (both must be in evaluation form).
    ///
    /// # Panics
    ///
    /// Panics on basis mismatch or if either operand is in coefficient
    /// form.
    pub fn mul_assign_pointwise(&mut self, other: &RnsPoly) {
        self.assert_same_basis(other);
        assert_eq!(self.repr, Representation::Eval, "lhs must be in eval form");
        assert_eq!(other.repr, Representation::Eval, "rhs must be in eval form");
        self.debug_assert_canonical("mul_assign_pointwise");
        other.debug_assert_canonical("mul_assign_pointwise (rhs)");
        let n = self.basis.n();
        for ((row, orow), m) in self
            .data
            .chunks_exact_mut(n)
            .zip(other.data.chunks_exact(n))
            .zip(self.basis.moduli())
        {
            for (x, &y) in row.iter_mut().zip(orow) {
                *x = m.mul(*x, y);
            }
        }
    }

    /// `self += a * b` pointwise (all three in evaluation form).
    ///
    /// # Panics
    ///
    /// Panics on basis or representation mismatch.
    pub fn mul_acc_pointwise(&mut self, a: &RnsPoly, b: &RnsPoly) {
        self.assert_same_basis(a);
        self.assert_same_basis(b);
        assert_eq!(self.repr, Representation::Eval);
        assert_eq!(a.repr, Representation::Eval);
        assert_eq!(b.repr, Representation::Eval);
        self.debug_assert_canonical("mul_acc_pointwise");
        a.debug_assert_canonical("mul_acc_pointwise (a)");
        b.debug_assert_canonical("mul_acc_pointwise (b)");
        let n = self.basis.n();
        for (((row, arow), brow), m) in self
            .data
            .chunks_exact_mut(n)
            .zip(a.data.chunks_exact(n))
            .zip(b.data.chunks_exact(n))
            .zip(self.basis.moduli())
        {
            for ((x, &ya), &yb) in row.iter_mut().zip(arow).zip(brow) {
                *x = m.reduce_u128(ya as u128 * yb as u128 + *x as u128);
            }
        }
    }

    /// Lazy `self += other`: operands may be in either reduction state;
    /// the result is a [`ReductionState::Lazy2p`] polynomial (one
    /// conditional subtraction at `2p` per residue, no canonicalising
    /// pass).
    ///
    /// # Panics
    ///
    /// Panics on basis or representation mismatch.
    pub fn add_assign_lazy(&mut self, other: &RnsPoly) {
        self.assert_same_basis(other);
        assert_eq!(self.repr, other.repr, "representation mismatch");
        crate::debug_assert_domain!(within_2p: self, "add_assign_lazy");
        crate::debug_assert_domain!(within_2p: other, "add_assign_lazy (rhs)");
        kernel::active().add_lazy_batch(self.basis.moduli(), &mut self.data, &other.data);
        self.red = ReductionState::Lazy2p;
    }

    /// Lazy `self -= other` (see [`Self::add_assign_lazy`]).
    ///
    /// # Panics
    ///
    /// Panics on basis or representation mismatch.
    pub fn sub_assign_lazy(&mut self, other: &RnsPoly) {
        self.assert_same_basis(other);
        assert_eq!(self.repr, other.repr, "representation mismatch");
        crate::debug_assert_domain!(within_2p: self, "sub_assign_lazy");
        crate::debug_assert_domain!(within_2p: other, "sub_assign_lazy (rhs)");
        kernel::active().sub_lazy_batch(self.basis.moduli(), &mut self.data, &other.data);
        self.red = ReductionState::Lazy2p;
    }

    /// Lazy pointwise multiply: operands in either reduction state
    /// (their `[0, 2p)` windows multiply exactly under Barrett), result
    /// [`ReductionState::Lazy2p`]. Both must be in evaluation form.
    ///
    /// # Panics
    ///
    /// Panics on basis mismatch or if either operand is in coefficient
    /// form.
    pub fn mul_assign_pointwise_lazy(&mut self, other: &RnsPoly) {
        self.assert_same_basis(other);
        assert_eq!(self.repr, Representation::Eval, "lhs must be in eval form");
        assert_eq!(other.repr, Representation::Eval, "rhs must be in eval form");
        crate::debug_assert_domain!(within_2p: self, "mul_assign_pointwise_lazy");
        crate::debug_assert_domain!(within_2p: other, "mul_assign_pointwise_lazy (rhs)");
        kernel::active().mul_lazy_batch(self.basis.moduli(), &mut self.data, &other.data);
        self.red = ReductionState::Lazy2p;
    }

    /// Lazy `self += a * b` pointwise — the `IP` kernel of lazy
    /// keyswitch chains. All three in evaluation form, any reduction
    /// state; the accumulator stays in `[0, 2p)`.
    ///
    /// # Panics
    ///
    /// Panics on basis or representation mismatch.
    pub fn mul_acc_pointwise_lazy(&mut self, a: &RnsPoly, b: &RnsPoly) {
        self.assert_same_basis(a);
        self.assert_same_basis(b);
        assert_eq!(self.repr, Representation::Eval);
        assert_eq!(a.repr, Representation::Eval);
        assert_eq!(b.repr, Representation::Eval);
        crate::debug_assert_domain!(within_2p: self, "mul_acc_pointwise_lazy");
        crate::debug_assert_domain!(within_2p: a, "mul_acc_pointwise_lazy (a)");
        crate::debug_assert_domain!(within_2p: b, "mul_acc_pointwise_lazy (b)");
        kernel::active().mul_acc_lazy_batch(self.basis.moduli(), &mut self.data, &a.data, &b.data);
        self.red = ReductionState::Lazy2p;
    }

    /// Multiplies by a small signed scalar.
    pub fn mul_scalar_i64(&mut self, s: i64) {
        self.debug_assert_canonical("mul_scalar_i64");
        let n = self.basis.n();
        for (row, m) in self.data.chunks_exact_mut(n).zip(self.basis.moduli()) {
            let sv = m.from_i64(s);
            for x in row.iter_mut() {
                *x = m.mul(*x, sv);
            }
        }
    }

    /// Multiplies by per-limb scalar residues.
    ///
    /// # Panics
    ///
    /// Panics if `s.len() != self.limbs()`.
    pub fn mul_scalar_residues(&mut self, s: &[u64]) {
        assert_eq!(s.len(), self.limbs());
        self.debug_assert_canonical("mul_scalar_residues");
        let n = self.basis.n();
        for ((row, m), &sv) in self
            .data
            .chunks_exact_mut(n)
            .zip(self.basis.moduli())
            .zip(s)
        {
            let sv = m.reduce(sv);
            for x in row.iter_mut() {
                *x = m.mul(*x, sv);
            }
        }
    }

    /// Multiplies by the monomial `X^k` (negacyclic; `k` may be any
    /// integer, negative meaning `X^{-k} = -X^{2n-k}` handling included).
    ///
    /// Only valid in coefficient form — in hardware this is the Rotator's
    /// vector-rotate + negate datapath (§IV-D).
    ///
    /// # Panics
    ///
    /// Panics if in evaluation form.
    pub fn mul_monomial(&mut self, k: i64) {
        assert_eq!(
            self.repr,
            Representation::Coeff,
            "monomial multiplication requires coefficient form"
        );
        self.debug_assert_canonical("mul_monomial");
        let n = self.n();
        let k = k.rem_euclid(2 * n as i64) as usize;
        if k == 0 {
            return;
        }
        with_scratch(n, |out| {
            for (row, m) in self.data.chunks_exact_mut(n).zip(self.basis.moduli()) {
                for (j, &c) in row.iter().enumerate() {
                    let idx = j + k;
                    let (pos, negate) = if idx < n {
                        (idx, false)
                    } else if idx < 2 * n {
                        (idx - n, true)
                    } else {
                        (idx - 2 * n, false)
                    };
                    out[pos] = if negate { m.neg(c) } else { c };
                }
                row.copy_from_slice(out);
            }
        });
    }

    /// Applies the automorphism `X -> X^g` (`g` odd).
    ///
    /// Works in either representation: index mapping in coefficient form
    /// (the paper's `Auto` kernel), slot permutation in evaluation form.
    ///
    /// # Panics
    ///
    /// Panics if `g` is even.
    pub fn automorphism(&mut self, g: u64, perms: &GaloisPerms) {
        assert_eq!(g % 2, 1, "galois element must be odd");
        self.debug_assert_canonical("automorphism");
        let n = self.n();
        match self.repr {
            Representation::Coeff => {
                with_scratch(n, |out| {
                    for (row, m) in self.data.chunks_exact_mut(n).zip(self.basis.moduli()) {
                        for (j, &c) in row.iter().enumerate() {
                            let e = (j as u64 * g) % (2 * n as u64);
                            if e < n as u64 {
                                out[e as usize] = c;
                            } else {
                                out[(e - n as u64) as usize] = m.neg(c);
                            }
                        }
                        row.copy_from_slice(out);
                    }
                });
            }
            Representation::Eval => self.permute_slots(g, perms),
        }
    }

    /// The evaluation-domain slot permutation shared by
    /// [`Self::automorphism`] and [`Self::automorphism_lazy`]: a pure
    /// per-limb gather through the active kernel backend, touching no
    /// arithmetic (and therefore no reduction window).
    fn permute_slots(&mut self, g: u64, perms: &GaloisPerms) {
        let perm = perms.eval_permutation(g);
        crate::scratch::with_scratch_copy(&mut self.data, |src, dst| {
            kernel::active().permute_batch(&perm, src, dst);
        });
    }

    /// Applies the automorphism `X -> X^g` to an **evaluation-form**
    /// polynomial in whatever reduction state it is in.
    ///
    /// In evaluation form `sigma_g` is a pure slot permutation — slot
    /// `psi^e` reads slot `psi^{e*g}`, no arithmetic at all — so it is
    /// *reduction-agnostic*: `[0, 2p)` representatives permute exactly
    /// like canonical ones and the [`ReductionState`] is preserved.
    /// This is what lets a rotation chain stay [`ReductionState::Lazy2p`]
    /// from the digit NTT through the automorphism to the keyswitch
    /// inner product, folding once at ModDown (the paper's `Auto`
    /// kernel riding the same redundant-form pipeline as `NTT`/`IP`).
    ///
    /// Bit-identical, after canonicalisation, to
    /// [`Self::automorphism`] on the folded input (asserted by
    /// `tests/lazy_chains.rs`).
    ///
    /// # Panics
    ///
    /// Panics if `g` is even or the polynomial is in coefficient form
    /// (the coefficient-domain automorphism negates wrapped indices,
    /// which is not reduction-agnostic — canonicalise and use
    /// [`Self::automorphism`] there).
    // trinity-lint: allow(missing-domain-assert): pure slot permutation —
    // no arithmetic touches the residues, so the kernel is
    // reduction-agnostic and legitimately accepts either window.
    pub fn automorphism_lazy(&mut self, g: u64, perms: &GaloisPerms) {
        assert_eq!(g % 2, 1, "galois element must be odd");
        assert_eq!(
            self.repr,
            Representation::Eval,
            "automorphism_lazy requires evaluation form"
        );
        self.permute_slots(g, perms);
    }

    /// Keeps only the first `k` limbs (dropping the rest), switching to
    /// the prefix basis. With limb-major flat storage this is a single
    /// truncation — no per-limb moves.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero or exceeds the current limb count.
    pub fn keep_limbs(&mut self, k: usize, prefix_basis: Arc<RnsBasis>) {
        assert!(k > 0 && k <= self.limbs());
        assert_eq!(prefix_basis.len(), k);
        debug_assert!(prefix_basis
            .moduli()
            .iter()
            .zip(self.basis.moduli())
            .all(|(a, b)| a.value() == b.value()));
        self.data.truncate(k * self.basis.n());
        self.basis = prefix_basis;
    }

    /// Reconstructs centered coefficient values as `f64` (exact for small
    /// magnitudes). Test/diagnostic helper.
    ///
    /// # Panics
    ///
    /// Panics if in evaluation form.
    #[must_use]
    pub fn to_centered_f64(&self) -> Vec<f64> {
        assert_eq!(self.repr, Representation::Coeff);
        self.debug_assert_canonical("to_centered_f64");
        let n = self.n();
        let mut out = Vec::with_capacity(n);
        if self.limbs() == 1 {
            let m = self.basis.modulus(0);
            for &c in self.limb(0) {
                out.push(m.to_centered(c) as f64);
            }
            return out;
        }
        let mut residues = vec![0u64; self.limbs()];
        for c in 0..n {
            for (i, r) in residues.iter_mut().enumerate() {
                *r = self.data[i * n + c];
            }
            out.push(self.basis.crt_to_centered_f64(&residues));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::galois::GaloisPerms;
    use crate::prime::ntt_primes;

    fn basis(n: usize, limbs: usize) -> Arc<RnsBasis> {
        Arc::new(RnsBasis::new(&ntt_primes(45, n, limbs), n))
    }

    #[test]
    fn add_sub_roundtrip() {
        let b = basis(16, 3);
        let a = RnsPoly::from_signed_coeffs(b.clone(), &[1i64; 16]);
        let mut c = RnsPoly::from_signed_coeffs(b, &(0..16).map(|i| i as i64).collect::<Vec<_>>());
        let orig = c.clone();
        c.add_assign(&a);
        c.sub_assign(&a);
        assert_eq!(c.flat(), orig.flat());
    }

    #[test]
    fn limb_views_partition_flat_buffer() {
        let b = basis(16, 3);
        let n = b.n();
        let mut p =
            RnsPoly::from_signed_coeffs(b, &(0..16).map(|i| i as i64 - 8).collect::<Vec<_>>());
        assert_eq!(p.flat().len(), 3 * n);
        for i in 0..3 {
            assert_eq!(p.limb(i), &p.flat()[i * n..(i + 1) * n]);
        }
        // limb_mut writes land in the flat buffer.
        p.limb_mut(1)[0] = 42;
        assert_eq!(p.flat()[n], 42);
    }

    #[test]
    // Schoolbook oracle: indexed so the negacyclic wrap k = i + j stays
    // visible.
    #[allow(clippy::needless_range_loop)]
    fn pointwise_mul_is_negacyclic_convolution() {
        let b = basis(32, 2);
        let x: Vec<i64> = (0..32).map(|i| (i as i64) - 16).collect();
        let y: Vec<i64> = (0..32).map(|i| 3 - (i as i64 % 7)).collect();
        let mut px = RnsPoly::from_signed_coeffs(b.clone(), &x);
        let mut py = RnsPoly::from_signed_coeffs(b.clone(), &y);
        px.to_eval();
        py.to_eval();
        px.mul_assign_pointwise(&py);
        px.to_coeff();
        // Oracle via schoolbook over i128.
        let n = 32usize;
        let mut exact = vec![0i128; n];
        for i in 0..n {
            for j in 0..n {
                let k = i + j;
                let p = x[i] as i128 * y[j] as i128;
                if k < n {
                    exact[k] += p;
                } else {
                    exact[k - n] -= p;
                }
            }
        }
        let got = px.to_centered_f64();
        for i in 0..n {
            assert_eq!(got[i] as i128, exact[i], "coeff {i}");
        }
    }

    #[test]
    fn monomial_multiplication_wraps_with_sign() {
        let b = basis(8, 1);
        let mut p = RnsPoly::from_signed_coeffs(b.clone(), &[1, 2, 3, 4, 5, 6, 7, 8]);
        p.mul_monomial(3);
        let got = p.to_centered_f64();
        // X^3 * (1 + 2X + ... + 8X^7) = -6 -7X -8X^2 + 1X^3 + ... + 5X^7
        assert_eq!(got, vec![-6.0, -7.0, -8.0, 1.0, 2.0, 3.0, 4.0, 5.0]);
        // Multiplying by X^{2n} is identity; X^n is negation.
        let mut q = RnsPoly::from_signed_coeffs(b.clone(), &[1, 2, 3, 4, 5, 6, 7, 8]);
        q.mul_monomial(16);
        assert_eq!(
            q.to_centered_f64(),
            vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]
        );
        let mut r = RnsPoly::from_signed_coeffs(b, &[1, 2, 3, 4, 5, 6, 7, 8]);
        r.mul_monomial(8);
        assert_eq!(
            r.to_centered_f64(),
            vec![-1.0, -2.0, -3.0, -4.0, -5.0, -6.0, -7.0, -8.0]
        );
    }

    #[test]
    fn automorphism_coeff_matches_eval() {
        let b = basis(64, 2);
        let perms = GaloisPerms::new(b.table(0).clone());
        let coeffs: Vec<i64> = (0..64).map(|i| (i * i % 23) as i64 - 11).collect();
        for g in [5u64, 25, 127, 3] {
            let mut via_coeff = RnsPoly::from_signed_coeffs(b.clone(), &coeffs);
            via_coeff.automorphism(g, &perms);

            let mut via_eval = RnsPoly::from_signed_coeffs(b.clone(), &coeffs);
            via_eval.to_eval();
            via_eval.automorphism(g, &perms);
            via_eval.to_coeff();

            assert_eq!(via_coeff.flat(), via_eval.flat(), "g={g}");
        }
    }

    #[test]
    fn automorphism_composition() {
        let b = basis(32, 1);
        let perms = GaloisPerms::new(b.table(0).clone());
        let coeffs: Vec<i64> = (0..32).map(|i| i as i64 + 1).collect();
        let mut p = RnsPoly::from_signed_coeffs(b.clone(), &coeffs);
        p.automorphism(5, &perms);
        p.automorphism(5, &perms);
        let mut q = RnsPoly::from_signed_coeffs(b, &coeffs);
        q.automorphism(25, &perms);
        assert_eq!(p.flat(), q.flat());
    }

    #[test]
    fn reduction_state_transitions() {
        let b = basis(16, 2);
        let coeffs: Vec<i64> = (0..16).map(|i| i as i64 - 8).collect();
        let mut p = RnsPoly::from_signed_coeffs(b.clone(), &coeffs);
        assert_eq!(p.reduction_state(), ReductionState::Canonical);

        // Canonical --to_eval_lazy--> Lazy2p.
        p.to_eval_lazy();
        assert_eq!(p.reduction_state(), ReductionState::Lazy2p);

        // Lazy2p --lazy op--> Lazy2p.
        let mut q = RnsPoly::from_signed_coeffs(b.clone(), &coeffs);
        q.to_eval();
        assert_eq!(q.reduction_state(), ReductionState::Canonical);
        p.mul_assign_pointwise_lazy(&q);
        assert_eq!(p.reduction_state(), ReductionState::Lazy2p);

        // Lazy2p --to_coeff_lazy--> Lazy2p, then canonicalize.
        p.to_coeff_lazy();
        assert_eq!(p.reduction_state(), ReductionState::Lazy2p);
        p.canonicalize();
        assert_eq!(p.reduction_state(), ReductionState::Canonical);

        // Canonical ops keep the canonical state.
        let r = RnsPoly::from_signed_coeffs(b, &coeffs);
        p.add_assign(&r);
        assert_eq!(p.reduction_state(), ReductionState::Canonical);
    }

    #[test]
    fn lazy_poly_chain_matches_strict_after_canonicalize() {
        // to_eval_lazy -> lazy mul -> lazy acc -> lazy add/sub ->
        // to_coeff_lazy -> canonicalize must be bit-identical to the
        // strict chain.
        let b = basis(64, 3);
        let xs: Vec<i64> = (0..64).map(|i| (i * 7 % 37) as i64 - 18).collect();
        let ys: Vec<i64> = (0..64).map(|i| (i * 11 % 29) as i64 - 14).collect();

        let mut strict_x = RnsPoly::from_signed_coeffs(b.clone(), &xs);
        let mut strict_y = RnsPoly::from_signed_coeffs(b.clone(), &ys);
        strict_x.to_eval();
        strict_y.to_eval();
        let mut strict_acc = RnsPoly::zero(b.clone(), Representation::Eval);
        strict_acc.mul_acc_pointwise(&strict_x, &strict_y);
        strict_acc.mul_acc_pointwise(&strict_y, &strict_y);
        strict_acc.add_assign(&strict_x);
        strict_acc.sub_assign(&strict_y);
        strict_acc.to_coeff();

        let mut lazy_x = RnsPoly::from_signed_coeffs(b.clone(), &xs);
        let mut lazy_y = RnsPoly::from_signed_coeffs(b.clone(), &ys);
        lazy_x.to_eval_lazy();
        lazy_y.to_eval_lazy();
        let mut lazy_acc = RnsPoly::zero(b, Representation::Eval);
        lazy_acc.mul_acc_pointwise_lazy(&lazy_x, &lazy_y);
        lazy_acc.mul_acc_pointwise_lazy(&lazy_y, &lazy_y);
        lazy_acc.add_assign_lazy(&lazy_x);
        lazy_acc.sub_assign_lazy(&lazy_y);
        lazy_acc.to_coeff_lazy();
        lazy_acc.canonicalize();

        assert_eq!(lazy_acc.flat(), strict_acc.flat());
    }

    #[test]
    fn lazy_add_sub_stay_in_window_and_agree_with_strict() {
        // sub_assign_lazy / add_assign_lazy with both operands already
        // lifted to [0, 2p) — including the 2p-1 extremes — must agree
        // with the canonical ops after folding.
        let b = basis(16, 2);
        let xs: Vec<i64> = (0..16).map(|i| i as i64 - 8).collect();
        let ys: Vec<i64> = (0..16).map(|i| 7 - (i as i64 % 5)).collect();
        let mut lx = RnsPoly::from_signed_coeffs(b.clone(), &xs);
        let mut ly = RnsPoly::from_signed_coeffs(b.clone(), &ys);
        // Lift every residue to its high [p, 2p) representative where
        // possible (x + p), stressing the fold boundary.
        for i in 0..lx.limbs() {
            let p = b.modulus(i).value();
            for x in lx.limb_mut(i) {
                *x += p;
            }
            for y in ly.limb_mut(i) {
                *y += p;
            }
        }
        let mut sum = lx.clone();
        sum.add_assign_lazy(&ly);
        let mut diff = lx.clone();
        diff.sub_assign_lazy(&ly);
        for i in 0..sum.limbs() {
            let p = b.modulus(i).value();
            assert!(sum.limb(i).iter().all(|&v| v < 2 * p), "sum escaped 2p");
            assert!(diff.limb(i).iter().all(|&v| v < 2 * p), "diff escaped 2p");
        }
        sum.canonicalize();
        diff.canonicalize();

        let sx = RnsPoly::from_signed_coeffs(b.clone(), &xs);
        let sy = RnsPoly::from_signed_coeffs(b, &ys);
        let mut ssum = sx.clone();
        ssum.add_assign(&sy);
        let mut sdiff = sx.clone();
        sdiff.sub_assign(&sy);
        assert_eq!(sum.flat(), ssum.flat());
        assert_eq!(diff.flat(), sdiff.flat());
    }

    #[test]
    #[should_panic(expected = "Lazy2p polynomial leaked")]
    #[cfg(debug_assertions)]
    fn strict_kernel_rejects_lazy_poly() {
        let b = basis(16, 1);
        let mut p = RnsPoly::from_signed_coeffs(b.clone(), &[3i64; 16]);
        p.to_eval_lazy();
        let mut q = RnsPoly::from_signed_coeffs(b, &[1i64; 16]);
        q.to_eval();
        q.add_assign(&p); // rhs is Lazy2p -> debug assert fires
    }

    #[test]
    fn keep_limbs_truncates_flat_buffer() {
        let b = basis(16, 3);
        let prefix = Arc::new(b.prefix(2));
        let mut p = RnsPoly::from_signed_coeffs(b, &[7i64; 16]);
        p.keep_limbs(2, prefix);
        assert_eq!(p.limbs(), 2);
        assert_eq!(p.flat().len(), 2 * 16);
        assert_eq!(p.to_centered_f64(), vec![7.0; 16]);
    }
}
