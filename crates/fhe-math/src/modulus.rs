//! Modular arithmetic over word-sized prime moduli.
//!
//! All FHE arithmetic in this workspace runs over primes `p < 2^62`, which
//! leaves two bits of slack for lazy accumulation in hot loops. Reduction
//! uses 128-bit Barrett reduction with a precomputed `floor(2^128 / p)`
//! ratio (the same approach as SEAL), plus Shoup multiplication for
//! hot-path multiplications by precomputed constants such as NTT twiddles.
//!
//! Alongside the canonical operations (`add`/`sub`/`mul`/... over
//! `[0, p)`) there is a `*_lazy` family working on the redundant window
//! `[0, 2p)`: `add_lazy`, `sub_lazy`, `mul_lazy`, `mul_add_lazy`,
//! `reduce_u128_lazy` and the folding pass `reduce_2p`. These are the
//! scalar primitives of cross-kernel lazy residue chains, where
//! canonicalisation is deferred to ciphertext boundaries the way
//! hardware pipelines keep operands in redundant form until memory
//! writeback.

/// A word-sized modulus with Barrett reduction precomputation.
///
/// # Examples
///
/// ```
/// use fhe_math::Modulus;
/// let m = Modulus::new(65537).unwrap();
/// assert_eq!(m.mul(65536, 65536), 1); // (-1)^2 = 1 mod 65537
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Modulus {
    p: u64,
    /// floor(2^128 / p), high word.
    ratio_hi: u64,
    /// floor(2^128 / p), low word.
    ratio_lo: u64,
}

/// Error returned when constructing a [`Modulus`] from an unsupported value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvalidModulusError(pub u64);

impl std::fmt::Display for InvalidModulusError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "modulus {} is not in range [2, 2^62)", self.0)
    }
}

impl std::error::Error for InvalidModulusError {}

impl Modulus {
    /// Maximum supported modulus value (exclusive): `2^62`.
    pub const MAX: u64 = 1 << 62;

    /// Creates a new modulus.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidModulusError`] if `p < 2` or `p >= 2^62`.
    pub fn new(p: u64) -> Result<Self, InvalidModulusError> {
        if !(2..Self::MAX).contains(&p) {
            return Err(InvalidModulusError(p));
        }
        // Compute floor(2^128 / p) via long division of 2^128 by p.
        let high = u128::MAX / p as u128; // floor((2^128 - 1)/p)
                                          // 2^128 = (2^128 - 1) + 1; floor(2^128/p) differs from high only
                                          // when p divides 2^128 exactly, impossible for p > 1 odd; for even
                                          // p a power of two it matters, handle generically:
        let rem = u128::MAX % p as u128;
        let ratio = if rem == p as u128 - 1 { high + 1 } else { high };
        Ok(Self {
            p,
            ratio_hi: (ratio >> 64) as u64,
            ratio_lo: ratio as u64,
        })
    }

    /// The modulus value.
    #[inline]
    pub const fn value(&self) -> u64 {
        self.p
    }

    /// Number of significant bits in the modulus.
    #[inline]
    pub const fn bits(&self) -> u32 {
        64 - self.p.leading_zeros()
    }

    /// Reduces an arbitrary u64 into `[0, p)`.
    #[inline]
    #[must_use]
    pub fn reduce(&self, a: u64) -> u64 {
        if a < self.p {
            a
        } else {
            a % self.p
        }
    }

    /// Reduces a u128 into `[0, p)` using Barrett reduction.
    ///
    /// Delegates to [`Self::reduce_u128_lazy`] plus the canonicalising
    /// subtraction, the same split as [`Self::mul_shoup`] /
    /// [`Self::mul_shoup_lazy`].
    #[inline]
    #[must_use]
    pub fn reduce_u128(&self, a: u128) -> u64 {
        let r = self.reduce_u128_lazy(a);
        if r >= self.p {
            r - self.p
        } else {
            r
        }
    }

    /// Reduces a u128 into the lazy window `[0, 2p)`: Barrett reduction
    /// with the final conditional subtraction skipped.
    ///
    /// This is the accumulator primitive of lazy kernel chains — inner
    /// products and pointwise multiplies that keep their running values
    /// in `[0, 2p)` and canonicalise once at a ciphertext boundary.
    #[inline]
    #[must_use]
    pub fn reduce_u128_lazy(&self, a: u128) -> u64 {
        // Barrett: q = floor(a * ratio / 2^128), r = a - q*p.
        // q = floor((a_hi*2^64 + a_lo) * (r_hi*2^64 + r_lo) / 2^128)
        //   = a_hi*r_hi + floor((a_hi*r_lo + a_lo*r_hi + carry_stuff)/2^64)
        let a_lo = a as u64;
        let a_hi = (a >> 64) as u64;
        let lo_hi = ((a_lo as u128 * self.ratio_lo as u128) >> 64) as u64;
        let mid1 = a_lo as u128 * self.ratio_hi as u128;
        let mid2 = a_hi as u128 * self.ratio_lo as u128;
        let mid = mid1.wrapping_add(mid2).wrapping_add(lo_hi as u128);
        let q = (a_hi as u128 * self.ratio_hi as u128).wrapping_add(mid >> 64);
        let mut r = (a as u64).wrapping_sub((q as u64).wrapping_mul(self.p));
        // Raw r < 3p (quotient estimate short by at most 2): one
        // correction lands in the lazy window.
        if r >= self.p {
            r = r.wrapping_sub(self.p);
        }
        crate::debug_assert_domain!(scalar_within_2p: self, "reduce_u128_lazy (result)", r);
        r
    }

    /// Folds a lazy representative in `[0, 2p)` back to canonical
    /// `[0, p)` — the deferred canonicalisation pass of lazy chains.
    #[inline]
    #[must_use]
    pub fn reduce_2p(&self, a: u64) -> u64 {
        crate::debug_assert_domain!(scalar_within_2p: self, "reduce_2p", a);
        if a >= self.p {
            a - self.p
        } else {
            a
        }
    }

    /// Modular addition. Inputs must already be in `[0, p)`.
    #[inline]
    #[must_use]
    pub fn add(&self, a: u64, b: u64) -> u64 {
        crate::debug_assert_domain!(scalar_canonical: self, "add", a, b);
        let s = a + b;
        if s >= self.p {
            s - self.p
        } else {
            s
        }
    }

    /// Modular subtraction. Inputs must already be in `[0, p)`.
    #[inline]
    #[must_use]
    pub fn sub(&self, a: u64, b: u64) -> u64 {
        crate::debug_assert_domain!(scalar_canonical: self, "sub", a, b);
        if a >= b {
            a - b
        } else {
            a + self.p - b
        }
    }

    /// Modular negation. Input must be in `[0, p)`.
    #[inline]
    #[must_use]
    pub fn neg(&self, a: u64) -> u64 {
        crate::debug_assert_domain!(scalar_canonical: self, "neg", a);
        if a == 0 {
            0
        } else {
            self.p - a
        }
    }

    /// Lazy addition: operands and result are `[0, 2p)` representatives.
    ///
    /// One conditional subtraction at `2p` instead of a full reduction;
    /// canonical inputs are accepted (the canonical range is a subset of
    /// the lazy window).
    #[inline]
    #[must_use]
    pub fn add_lazy(&self, a: u64, b: u64) -> u64 {
        crate::debug_assert_domain!(scalar_within_2p: self, "add_lazy", a, b);
        let s = a + b;
        let two_p = 2 * self.p;
        if s >= two_p {
            s - two_p
        } else {
            s
        }
    }

    /// Lazy subtraction: operands and result are `[0, 2p)`
    /// representatives (`a - b ≡ a + 2p - b`).
    #[inline]
    #[must_use]
    pub fn sub_lazy(&self, a: u64, b: u64) -> u64 {
        crate::debug_assert_domain!(scalar_within_2p: self, "sub_lazy", a, b);
        let two_p = 2 * self.p;
        let s = a + two_p - b;
        if s >= two_p {
            s - two_p
        } else {
            s
        }
    }

    /// Lazy negation of a `[0, 2p)` representative.
    #[inline]
    #[must_use]
    pub fn neg_lazy(&self, a: u64) -> u64 {
        crate::debug_assert_domain!(scalar_within_2p: self, "neg_lazy", a);
        if a == 0 {
            0
        } else {
            2 * self.p - a
        }
    }

    /// Modular multiplication via Barrett reduction.
    #[inline]
    #[must_use]
    pub fn mul(&self, a: u64, b: u64) -> u64 {
        crate::debug_assert_domain!(scalar_canonical: self, "mul", a, b);
        self.reduce_u128(a as u128 * b as u128)
    }

    /// Lazy multiplication: operands in `[0, 2p)`, result in `[0, 2p)`.
    ///
    /// The product of two lazy representatives is below `4p^2 < 2^126`,
    /// so the Barrett reduction is exact; only the final canonicalising
    /// subtraction is skipped.
    #[inline]
    #[must_use]
    pub fn mul_lazy(&self, a: u64, b: u64) -> u64 {
        crate::debug_assert_domain!(scalar_within_2p: self, "mul_lazy", a, b);
        self.reduce_u128_lazy(a as u128 * b as u128)
    }

    /// Lazy fused multiply-add: `a*b + c` with all operands in
    /// `[0, 2p)`, result in `[0, 2p)` (`4p^2 + 2p` still fits u128).
    #[inline]
    #[must_use]
    pub fn mul_add_lazy(&self, a: u64, b: u64, c: u64) -> u64 {
        crate::debug_assert_domain!(scalar_within_2p: self, "mul_add_lazy", a, b, c);
        self.reduce_u128_lazy(a as u128 * b as u128 + c as u128)
    }

    /// Fused multiply-add: `a*b + c mod p`.
    #[inline]
    #[must_use]
    pub fn mul_add(&self, a: u64, b: u64, c: u64) -> u64 {
        self.reduce_u128(a as u128 * b as u128 + c as u128)
    }

    /// Precomputes the Shoup representation of a constant multiplier `w`:
    /// `floor(w * 2^64 / p)`.
    #[inline]
    #[must_use]
    pub fn shoup(&self, w: u64) -> u64 {
        crate::debug_assert_domain!(scalar_canonical: self, "shoup", w);
        (((w as u128) << 64) / self.p as u128) as u64
    }

    /// Shoup multiplication by a precomputed constant: `a * w mod p` where
    /// `w_shoup = self.shoup(w)`. Roughly twice as fast as Barrett since it
    /// needs a single high multiply.
    #[inline]
    #[must_use]
    pub fn mul_shoup(&self, a: u64, w: u64, w_shoup: u64) -> u64 {
        crate::debug_assert_domain!(scalar_canonical: self, "mul_shoup", a);
        let r = self.mul_shoup_lazy(a, w, w_shoup);
        if r >= self.p {
            r - self.p
        } else {
            r
        }
    }

    /// Lazy Shoup multiplication: returns `a * w mod p` as a representative
    /// in `[0, 2p)`, skipping the final conditional subtraction.
    ///
    /// Correct for **any** `a: u64` (not just canonical residues): with
    /// `w_shoup = floor(w * 2^64 / p)` and `q = floor(a * w_shoup / 2^64)`,
    /// the remainder `a*w - q*p` equals `(c*p + a*b) / 2^64` for some
    /// `c < 2^64` and `b < p`, hence is `< 2p`. This is the butterfly
    /// multiplier of the Harvey lazy-reduction NTT, where operands stay in
    /// `[0, 4p)` between stages.
    // trinity-lint: allow(missing-domain-assert): correct for ANY u64 input
    // (see the doc proof) — the [0, 4p) NTT butterflies feed it operands
    // outside the [0, 2p) window on purpose.
    #[inline]
    #[must_use]
    pub fn mul_shoup_lazy(&self, a: u64, w: u64, w_shoup: u64) -> u64 {
        let q = ((a as u128 * w_shoup as u128) >> 64) as u64;
        a.wrapping_mul(w).wrapping_sub(q.wrapping_mul(self.p))
    }

    /// Modular exponentiation by squaring.
    pub fn pow(&self, mut base: u64, mut exp: u64) -> u64 {
        base = self.reduce(base);
        let mut acc = 1u64 % self.p;
        while exp > 0 {
            if exp & 1 == 1 {
                acc = self.mul(acc, base);
            }
            base = self.mul(base, base);
            exp >>= 1;
        }
        acc
    }

    /// Modular inverse, if it exists.
    ///
    /// Uses the extended Euclidean algorithm so it is correct for
    /// non-prime moduli as well (returns `None` when `gcd(a, p) != 1`).
    pub fn inv(&self, a: u64) -> Option<u64> {
        let a = self.reduce(a);
        if a == 0 {
            return None;
        }
        let (mut t, mut new_t): (i128, i128) = (0, 1);
        let (mut r, mut new_r): (i128, i128) = (self.p as i128, a as i128);
        while new_r != 0 {
            let quotient = r / new_r;
            (t, new_t) = (new_t, t - quotient * new_t);
            (r, new_r) = (new_r, r - quotient * new_r);
        }
        if r > 1 {
            return None;
        }
        let t = if t < 0 { t + self.p as i128 } else { t };
        Some(t as u64)
    }

    /// Maps a signed integer to its representative in `[0, p)`.
    #[inline]
    pub fn from_i64(&self, a: i64) -> u64 {
        if a >= 0 {
            self.reduce(a as u64)
        } else {
            let m = self.reduce((-(a as i128)) as u64);
            self.neg(m)
        }
    }

    /// Maps a representative in `[0, p)` to the centered range
    /// `[-p/2, p/2)`.
    #[inline]
    pub fn to_centered(&self, a: u64) -> i64 {
        debug_assert!(a < self.p);
        if a > self.p / 2 {
            -((self.p - a) as i64)
        } else {
            a as i64
        }
    }
}

impl std::fmt::Display for Modulus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_rejects_out_of_range() {
        assert!(Modulus::new(0).is_err());
        assert!(Modulus::new(1).is_err());
        assert!(Modulus::new(1 << 62).is_err());
        assert!(Modulus::new((1 << 62) - 1).is_ok());
        assert!(Modulus::new(2).is_ok());
    }

    #[test]
    fn add_sub_neg_roundtrip() {
        let m = Modulus::new(97).unwrap();
        for a in 0..97u64 {
            for b in 0..97u64 {
                let s = m.add(a, b);
                assert_eq!(s, (a + b) % 97);
                assert_eq!(m.sub(s, b), a);
            }
            assert_eq!(m.add(a, m.neg(a)), 0);
        }
    }

    #[test]
    fn mul_matches_naive_small() {
        let m = Modulus::new(97).unwrap();
        for a in 0..97u64 {
            for b in 0..97u64 {
                assert_eq!(m.mul(a, b), a * b % 97);
            }
        }
    }

    #[test]
    fn mul_matches_naive_large() {
        let p = (1u64 << 61) - 1; // Mersenne prime 2^61 - 1
        let m = Modulus::new(p).unwrap();
        let pairs = [
            (p - 1, p - 1),
            (p - 1, 2),
            (123456789012345678 % p, 987654321098765432 % p),
            (0, p - 1),
            (1, p - 1),
        ];
        for (a, b) in pairs {
            let expect = ((a as u128 * b as u128) % p as u128) as u64;
            assert_eq!(m.mul(a, b), expect);
        }
    }

    #[test]
    fn reduce_u128_extremes() {
        let p = 4611686018427387847u64; // prime close to 2^62
        let m = Modulus::new(p).unwrap();
        assert_eq!(m.reduce_u128(u128::MAX), (u128::MAX % p as u128) as u64);
        assert_eq!(m.reduce_u128(0), 0);
        assert_eq!(m.reduce_u128(p as u128), 0);
    }

    #[test]
    fn shoup_matches_barrett() {
        let p = 1152921504606846883u64; // prime near 2^60
        let m = Modulus::new(p).unwrap();
        let w = 0x123456789abcdefu64 % p;
        let ws = m.shoup(w);
        let mut a = 1u64;
        for _ in 0..1000 {
            a = a
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407)
                % p;
            assert_eq!(m.mul_shoup(a, w, ws), m.mul(a, w));
        }
    }

    #[test]
    fn mul_shoup_lazy_stays_below_2p() {
        // The lazy product must be a [0, 2p) representative of a*w mod p
        // for ANY u64 input a — including the [0, 4p) operands the lazy
        // NTT butterflies feed it.
        let p = (1u64 << 61) - 1;
        let m = Modulus::new(p).unwrap();
        let w = 0x0123_4567_89ab_cdefu64 % p;
        let ws = m.shoup(w);
        let samples = [
            0u64,
            1,
            p - 1,
            p,
            2 * p - 1,
            2 * p,
            4 * p - 1,
            u64::MAX,
            0xdead_beef_dead_beef,
        ];
        for a in samples {
            let r = m.mul_shoup_lazy(a, w, ws);
            assert!(r < 2 * p, "lazy result {r} not below 2p for a={a}");
            let expect = ((a as u128 % p as u128) * w as u128 % p as u128) as u64;
            assert_eq!(r % p, expect, "wrong residue for a={a}");
        }
    }

    #[test]
    fn pow_and_inv() {
        let m = Modulus::new(65537).unwrap();
        assert_eq!(m.pow(3, 65536), 1); // Fermat
        let inv3 = m.inv(3).unwrap();
        assert_eq!(m.mul(3, inv3), 1);
        assert_eq!(m.inv(0), None);
        // Non-prime modulus: inverse exists iff coprime.
        let m = Modulus::new(100).unwrap();
        assert_eq!(m.inv(2), None);
        let i = m.inv(3).unwrap();
        assert_eq!(m.mul(3, i), 1);
    }

    #[test]
    fn centered_representatives() {
        let m = Modulus::new(17).unwrap();
        assert_eq!(m.to_centered(0), 0);
        assert_eq!(m.to_centered(8), 8);
        assert_eq!(m.to_centered(9), -8);
        assert_eq!(m.to_centered(16), -1);
        assert_eq!(m.from_i64(-1), 16);
        assert_eq!(m.from_i64(-17), 0);
        assert_eq!(m.from_i64(-35), 16);
        for a in -40i64..40 {
            let r = m.from_i64(a);
            assert_eq!((a.rem_euclid(17)) as u64, r);
        }
    }

    #[test]
    fn lazy_helpers_stay_in_window_and_agree_mod_p() {
        // Every lazy primitive must return a [0, 2p) representative of
        // the canonical result, for all [0, 2p) operand combinations.
        let p = (1u64 << 61) - 1;
        let m = Modulus::new(p).unwrap();
        let samples = [0u64, 1, p / 2, p - 1, p, p + 1, 2 * p - 1];
        for &a in &samples {
            for &b in &samples {
                let (ca, cb) = (a % p, b % p);
                let s = m.add_lazy(a, b);
                assert!(s < 2 * p);
                assert_eq!(s % p, m.add(ca, cb));
                let d = m.sub_lazy(a, b);
                assert!(d < 2 * p);
                assert_eq!(d % p, m.sub(ca, cb));
                let prod = m.mul_lazy(a, b);
                assert!(prod < 2 * p);
                assert_eq!(prod % p, m.mul(ca, cb));
                let fma = m.mul_add_lazy(a, b, a);
                assert!(fma < 2 * p);
                assert_eq!(fma % p, m.mul_add(ca, cb, ca));
            }
            let n = m.neg_lazy(a);
            assert!(n < 2 * p);
            assert_eq!(n % p, m.neg(a % p));
            assert_eq!(m.reduce_2p(a), a % p);
        }
    }

    #[test]
    fn reduce_u128_lazy_extremes() {
        for p in [4611686018427387847u64, (1 << 61) - 1, 65537, 2] {
            let m = Modulus::new(p).unwrap();
            for a in [0u128, 1, p as u128, u128::MAX, (p as u128) << 64] {
                let r = m.reduce_u128_lazy(a);
                assert!(r < 2 * p, "p={p} a={a}: {r} not below 2p");
                assert_eq!(r % p, m.reduce_u128(a), "p={p} a={a}");
            }
        }
    }

    #[test]
    fn mul_add_consistent() {
        let p = (1u64 << 50) - 27;
        let m = Modulus::new(p).unwrap();
        let (a, b, c) = (p - 1, p - 2, p - 3);
        assert_eq!(m.mul_add(a, b, c), m.add(m.mul(a, b), c));
    }
}
