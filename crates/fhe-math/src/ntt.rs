//! Negacyclic Number Theoretic Transforms over `Z_p[X]/(X^N + 1)`.
//!
//! Four interchangeable implementations are provided, mirroring the
//! hardware structures discussed in the Trinity paper:
//!
//! * [`NttTable::forward`] / [`NttTable::inverse`] — the production hot
//!   path: in-place Cooley–Tukey / Gentleman–Sande with merged ψ-twisting
//!   **and Harvey lazy reduction**. Butterfly operands stay in `[0, 4p)`
//!   through the stages (forward) / `[0, 2p)` (inverse) and a single
//!   correction pass canonicalises the output, so each butterfly spends
//!   one conditional subtraction instead of three. Inputs and outputs
//!   are canonical residues in `[0, p)`.
//! * [`NttTable::forward_strict`] / [`NttTable::inverse_strict`] — the
//!   fully-reduced reference transform (every butterfly reduces to
//!   `[0, p)`), kept as the oracle the lazy path is asserted against.
//! * [`NttTable::forward_constant_geometry`] — the Pease constant-geometry
//!   dataflow used by Trinity's NTTU and CU butterfly networks (§IV-B:
//!   "constant-geometry NTT ... maintains a consistent access pattern for
//!   the computation of BUs in each stage"). Fully reduced.
//! * [`NttTable::forward_four_step`] — Bailey's four-step decomposition
//!   (§IV-E), splitting an N-point NTT into phase-1 column NTTs, an
//!   on-the-fly twisting step (OF-Twist, Fig. 4), and phase-2 row NTTs
//!   with a final transpose. This is exactly how Trinity computes NTTs
//!   longer than its 256-point pipeline. Fully reduced.
//!
//! All variants produce bit-identical results (asserted by the test
//! suite), so higher layers can use the fast lazy transform while the
//! simulator reasons about the hardware-shaped variants.
//!
//! The production entry points (`forward`, `forward_lazy`, `inverse`,
//! `inverse_lazy`, `pointwise_mul_acc_lazy`, `canonicalize_2p`)
//! dispatch their batched stage/fold passes through the process-wide
//! [`crate::kernel::KernelBackend`]; the `*_strict` oracles and the
//! hardware-dataflow variants never do, so the reference the backends
//! are asserted against stays fixed.

use crate::kernel;
use crate::modulus::Modulus;
use crate::prime::primitive_root_of_unity;
use crate::scratch::with_scratch2;
use crate::util::{four_step_split, log2_exact, reverse_bits};

/// Precomputed tables for the negacyclic NTT of a fixed size and modulus.
#[derive(Debug, Clone)]
pub struct NttTable {
    modulus: Modulus,
    n: usize,
    log_n: u32,
    /// psi^bitrev(i) for the forward transform, Shoup pairs.
    psi_rev: Vec<(u64, u64)>,
    /// psi^{-bitrev(i)} for the inverse transform, Shoup pairs.
    psi_inv_rev: Vec<(u64, u64)>,
    /// n^{-1} mod p as a Shoup pair.
    n_inv: (u64, u64),
    /// psi^i in natural order (for constant-geometry / four-step twists).
    psi_pow: Vec<(u64, u64)>,
    /// omega^i = psi^{2i} powers in natural order for cyclic sub-NTTs.
    omega_pow: Vec<(u64, u64)>,
}

impl NttTable {
    /// Builds NTT tables for ring degree `n` (a power of two) over `m`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a power of two or if the modulus does not
    /// satisfy `p ≡ 1 (mod 2n)` (no 2n-th root of unity exists).
    pub fn new(m: Modulus, n: usize) -> Self {
        let p = m.value();
        assert!(
            n.is_power_of_two() && n >= 2,
            "n must be a power of two >= 2"
        );
        assert_eq!(
            (p - 1) % (2 * n as u64),
            0,
            "modulus {p} is not NTT-friendly for n={n}"
        );
        let log_n = log2_exact(n);
        let psi = primitive_root_of_unity(&m, 2 * n as u64);
        let psi_inv = m.inv(psi).expect("psi invertible");

        let shoup = |w: u64| (w, m.shoup(w));
        let mut psi_rev = vec![(0, 0); n];
        let mut psi_inv_rev = vec![(0, 0); n];
        let mut pow_f = 1u64;
        let mut pow_i = 1u64;
        let mut psi_pow = Vec::with_capacity(n);
        let mut omega_pow = Vec::with_capacity(n);
        let omega = m.mul(psi, psi);
        let mut wp = 1u64;
        for i in 0..n {
            psi_rev[reverse_bits(i, log_n)] = shoup(pow_f);
            psi_inv_rev[reverse_bits(i, log_n)] = shoup(pow_i);
            psi_pow.push(shoup(pow_f));
            omega_pow.push(shoup(wp));
            pow_f = m.mul(pow_f, psi);
            pow_i = m.mul(pow_i, psi_inv);
            wp = m.mul(wp, omega);
        }
        let n_inv = m.inv(n as u64).expect("n invertible mod prime");
        Self {
            modulus: m,
            n,
            log_n,
            psi_rev,
            psi_inv_rev,
            n_inv: shoup(n_inv),
            psi_pow,
            omega_pow,
        }
    }

    /// Ring degree.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// The modulus these tables were built for.
    #[inline]
    pub fn modulus(&self) -> &Modulus {
        &self.modulus
    }

    /// Backend SPI: Shoup pairs `psi^bitrev(i)` for the forward
    /// butterfly stages (see [`crate::kernel::KernelBackend`]).
    #[inline]
    pub fn psi_rev(&self) -> &[(u64, u64)] {
        &self.psi_rev
    }

    /// Backend SPI: Shoup pairs `psi^{-bitrev(i)}` for the inverse
    /// butterfly stages.
    #[inline]
    pub fn psi_inv_rev(&self) -> &[(u64, u64)] {
        &self.psi_inv_rev
    }

    /// Backend SPI: `n^{-1} mod p` as a Shoup pair (the inverse
    /// transform's exit scaling constant).
    #[inline]
    pub fn n_inv(&self) -> (u64, u64) {
        self.n_inv
    }

    /// In-place forward negacyclic NTT (coefficient → evaluation form),
    /// using Harvey lazy reduction.
    ///
    /// Input and output are in natural order; the output is canonical
    /// (`[0, p)`) and the input may be canonical or a lazy `[0, 2p)`
    /// representative (see [`Self::forward_lazy`] for the lazy-out
    /// variant). *Between* butterfly stages values roam in `[0, 4p)` —
    /// each butterfly does one conditional subtraction (on its upper
    /// operand) instead of three, and a single correction pass at the
    /// end maps everything back to `[0, p)`. Sound because `p < 2^62`,
    /// so `4p` fits a `u64` with headroom.
    ///
    /// Bit-identical to [`Self::forward_strict`] (asserted by tests).
    ///
    /// # Panics
    ///
    /// Panics if `a.len() != self.n()`.
    pub fn forward(&self, a: &mut [u64]) {
        crate::debug_assert_domain!(slice_within_2p: self.modulus, a, "forward");
        let k = kernel::active();
        k.forward_stages(self, a);
        k.fold_4p_to_canonical(&self.modulus, a);
    }

    /// Lazy-in/lazy-out forward NTT: accepts `[0, 2p)` residues and
    /// returns `[0, 2p)` residues, skipping the canonicalising half of
    /// the exit correction pass.
    ///
    /// This is the kernel-chain entry point: a keyswitch digit raised by
    /// BConv is transformed here, multiply-accumulated lazily against
    /// the key, and only canonicalised once at the ciphertext boundary —
    /// the paper's pipelines keep operands in redundant form between
    /// butterfly and MAC stages the same way. Congruent mod `p` to
    /// [`Self::forward_strict`] (bit-identical after folding with
    /// [`crate::Modulus::reduce_2p`]; asserted by tests).
    ///
    /// # Panics
    ///
    /// Panics if `a.len() != self.n()`; debug-asserts every input is in
    /// `[0, 2p)`.
    pub fn forward_lazy(&self, a: &mut [u64]) {
        crate::debug_assert_domain!(slice_within_2p: self.modulus, a, "forward_lazy");
        let k = kernel::active();
        k.forward_stages(self, a);
        k.fold_4p_to_2p(&self.modulus, a);
    }

    /// In-place inverse negacyclic NTT (evaluation → coefficient form),
    /// using Harvey lazy reduction (values stay in `[0, 2p)` through the
    /// Gentleman–Sande stages; the final `n^{-1}` scaling pass
    /// canonicalises). Accepts canonical or lazy `[0, 2p)` input and
    /// returns canonical output. Bit-identical to
    /// [`Self::inverse_strict`] on canonical input.
    ///
    /// # Panics
    ///
    /// Panics if `a.len() != self.n()`.
    pub fn inverse(&self, a: &mut [u64]) {
        crate::debug_assert_domain!(slice_within_2p: self.modulus, a, "inverse");
        let k = kernel::active();
        k.inverse_stages(self, a);
        let (ni, nis) = self.n_inv;
        k.scale_shoup(&self.modulus, ni, nis, a);
    }

    /// Lazy-in/lazy-out inverse NTT: accepts `[0, 2p)` residues and
    /// returns `[0, 2p)` residues, skipping the canonicalising
    /// subtraction in the final `n^{-1}` scaling pass.
    ///
    /// Congruent mod `p` to [`Self::inverse_strict`] (bit-identical
    /// after folding with [`crate::Modulus::reduce_2p`]); the chain
    /// tail of lazy keyswitch and external-product accumulators.
    ///
    /// # Panics
    ///
    /// Panics if `a.len() != self.n()`; debug-asserts every input is in
    /// `[0, 2p)`.
    pub fn inverse_lazy(&self, a: &mut [u64]) {
        crate::debug_assert_domain!(slice_within_2p: self.modulus, a, "inverse_lazy");
        let k = kernel::active();
        k.inverse_stages(self, a);
        let (ni, nis) = self.n_inv;
        k.scale_shoup_lazy(&self.modulus, ni, nis, a);
    }

    /// Fully-reduced forward transform: every butterfly reduces to
    /// `[0, p)`. Kept as the reference oracle for the lazy hot path (and
    /// as the strict comparator in the `ntt_lazy_vs_strict` bench).
    ///
    /// # Panics
    ///
    /// Panics if `a.len() != self.n()`.
    pub fn forward_strict(&self, a: &mut [u64]) {
        assert_eq!(a.len(), self.n);
        crate::debug_assert_domain!(slice_canonical: self.modulus, a, "forward_strict");
        let m = &self.modulus;
        let mut t = self.n;
        let mut groups = 1usize;
        while groups < self.n {
            t >>= 1;
            for i in 0..groups {
                let (w, ws) = self.psi_rev[groups + i];
                let j1 = 2 * i * t;
                for j in j1..j1 + t {
                    let u = a[j];
                    let v = m.mul_shoup(a[j + t], w, ws);
                    a[j] = m.add(u, v);
                    a[j + t] = m.sub(u, v);
                }
            }
            groups <<= 1;
        }
    }

    /// Fully-reduced inverse transform — the strict counterpart of
    /// [`Self::inverse`].
    ///
    /// # Panics
    ///
    /// Panics if `a.len() != self.n()`.
    pub fn inverse_strict(&self, a: &mut [u64]) {
        assert_eq!(a.len(), self.n);
        crate::debug_assert_domain!(slice_canonical: self.modulus, a, "inverse_strict");
        let m = &self.modulus;
        let mut t = 1usize;
        let mut groups = self.n;
        while groups > 1 {
            let h = groups >> 1;
            let mut j1 = 0usize;
            for i in 0..h {
                let (w, ws) = self.psi_inv_rev[h + i];
                for j in j1..j1 + t {
                    let u = a[j];
                    let v = a[j + t];
                    a[j] = m.add(u, v);
                    a[j + t] = m.mul_shoup(m.sub(u, v), w, ws);
                }
                j1 += 2 * t;
            }
            t <<= 1;
            groups = h;
        }
        let (ni, nis) = self.n_inv;
        for x in a.iter_mut() {
            *x = m.mul_shoup(*x, ni, nis);
        }
    }

    /// Forward negacyclic NTT using the Pease constant-geometry dataflow.
    ///
    /// Every stage reads pairs `(src[2j], src[2j+1])` and writes
    /// `(dst[j], dst[j + n/2])` — the identical access pattern in all
    /// stages that lets Trinity's NTTU wire a fixed butterfly network
    /// (§IV-B). Produces the same output as [`Self::forward`].
    ///
    /// Returns the number of butterfly stages executed (= log2 n), which
    /// the simulator uses as a structural cross-check.
    ///
    /// # Panics
    ///
    /// Panics if `a.len() != self.n()`.
    pub fn forward_constant_geometry(&self, a: &mut [u64]) -> u32 {
        assert_eq!(a.len(), self.n);
        let m = &self.modulus;
        let n = self.n;
        // Pre-twist by psi^i, then a cyclic constant-geometry NTT with
        // omega = psi^2, consuming input in bit-reversed order.
        for (i, x) in a.iter_mut().enumerate() {
            let (w, ws) = self.psi_pow[i];
            *x = m.mul_shoup(*x, w, ws);
        }
        with_scratch2(n, |src, dst| {
            let mut src: &mut [u64] = src;
            let mut dst: &mut [u64] = dst;
            for (i, s) in src.iter_mut().enumerate() {
                *s = a[reverse_bits(i, self.log_n)];
            }
            for s in 0..self.log_n {
                let shift = self.log_n - 1 - s;
                for j in 0..n / 2 {
                    // Twiddle exponent: top bits of j, aligned — identical
                    // schedule every stage, only the mask widens.
                    let e = (j >> shift) << shift;
                    let (w, ws) = self.omega_pow[e];
                    let u = src[2 * j];
                    let v = m.mul_shoup(src[2 * j + 1], w, ws);
                    dst[j] = m.add(u, v);
                    dst[j + n / 2] = m.sub(u, v);
                }
                std::mem::swap(&mut src, &mut dst);
            }
            // The constant-geometry pipeline produces the spectrum in
            // natural exponent order (slot k holds f(psi^{2k+1})); the
            // reference transform stores slot k = f(psi^{2 bitrev(k) + 1}).
            // Reconcile so all implementations are drop-in interchangeable.
            for k in 0..n {
                a[k] = src[reverse_bits(k, self.log_n)];
            }
        });
        self.log_n
    }

    /// Forward negacyclic NTT via Bailey's four-step method (§IV-E).
    ///
    /// Splits `n = n1 * n2` (balanced powers of two), runs phase-1 column
    /// NTTs of length `n1`, applies the on-the-fly twisting factors
    /// (OF-Twist: each row's factors form a geometric sequence, so the
    /// hardware streams them from a first item and common ratio, Fig. 4),
    /// runs phase-2 row NTTs of length `n2`, and transposes. Produces the
    /// same output as [`Self::forward`].
    ///
    /// Returns `(n1, n2)` as used, for the simulator's structural checks.
    ///
    /// # Panics
    ///
    /// Panics if `a.len() != self.n()` or `n < 4`.
    pub fn forward_four_step(&self, a: &mut [u64]) -> (usize, usize) {
        assert_eq!(a.len(), self.n);
        assert!(self.n >= 4, "four-step needs n >= 4");
        let m = &self.modulus;
        let (n1, n2) = four_step_split(self.n);

        // Negacyclic pre-twist by psi^i, then cyclic four-step with
        // omega = psi^2. Finally outputs land in natural order but the
        // cyclic DFT uses a different output indexing than the merged
        // reference; we reconcile by writing through the DFT index map
        // and then applying the reference's output permutation (which is
        // the identity: both produce X[k] = sum a[j] omega^{jk} psi^j
        // evaluated at k — see module tests for the equality assertion).
        for (i, x) in a.iter_mut().enumerate() {
            let (w, ws) = self.psi_pow[i];
            *x = m.mul_shoup(*x, w, ws);
        }

        // Column NTTs: for each j2, transform over j1 with root omega^{n2}.
        // We materialise small cyclic NTTs directly from omega powers.
        let omega_at = |e: usize| self.omega_pow[e % self.n].0;
        with_scratch2(self.n, |c, r| {
            for j2 in 0..n2 {
                for k1 in 0..n1 {
                    let mut acc = 0u64;
                    for j1 in 0..n1 {
                        let w = omega_at(n2 * ((j1 * k1) % n1));
                        acc = m.add(acc, m.mul(a[j1 * n2 + j2], w));
                    }
                    c[k1 * n2 + j2] = acc;
                }
            }
            // Twist: row k1, column j2 multiplied by omega^{j2*k1} — a
            // geometric sequence along each row with ratio omega^{k1}.
            for k1 in 0..n1 {
                let ratio = omega_at(k1);
                let mut tw = 1u64;
                for j2 in 0..n2 {
                    c[k1 * n2 + j2] = m.mul(c[k1 * n2 + j2], tw);
                    tw = m.mul(tw, ratio);
                }
            }
            // Row NTTs over j2 with root omega^{n1}; output index k2.
            for k1 in 0..n1 {
                for k2 in 0..n2 {
                    let mut acc = 0u64;
                    for j2 in 0..n2 {
                        let w = omega_at(n1 * ((j2 * k2) % n2));
                        acc = m.add(acc, m.mul(c[k1 * n2 + j2], w));
                    }
                    r[k1 * n2 + k2] = acc;
                }
            }
            // Transpose: X[k2 * n1 + k1] = r[k1][k2] gives the spectrum in
            // natural exponent order (slot k holds f(psi^{2k+1})). The
            // reference transform stores slot k = f(psi^{2 bitrev(k) + 1}),
            // so fold the bit-reversal into the final write-out, reusing
            // the column buffer for the transposed spectrum.
            for k1 in 0..n1 {
                for k2 in 0..n2 {
                    c[k2 * n1 + k1] = r[k1 * n2 + k2];
                }
            }
            for k in 0..self.n {
                a[k] = c[reverse_bits(k, self.log_n)];
            }
        });
        (n1, n2)
    }

    /// Pointwise multiply-accumulate in evaluation form:
    /// `acc[i] += a[i] * b[i] mod p`.
    ///
    /// # Panics
    ///
    /// Panics if slice lengths differ from `self.n()`.
    pub fn pointwise_mul_acc(&self, acc: &mut [u64], a: &[u64], b: &[u64]) {
        assert_eq!(acc.len(), self.n);
        assert_eq!(a.len(), self.n);
        assert_eq!(b.len(), self.n);
        let m = &self.modulus;
        crate::debug_assert_domain!(slice_canonical: m, acc, "pointwise_mul_acc (acc)");
        crate::debug_assert_domain!(slice_canonical: m, a, "pointwise_mul_acc (a)");
        crate::debug_assert_domain!(slice_canonical: m, b, "pointwise_mul_acc (b)");
        for i in 0..self.n {
            acc[i] = m.reduce_u128(a[i] as u128 * b[i] as u128 + acc[i] as u128);
        }
    }

    /// Lazy pointwise multiply-accumulate: `acc[i] += a[i] * b[i]` with
    /// all operands in `[0, 2p)` and the accumulator kept in `[0, 2p)`.
    ///
    /// `4p^2 + 2p < 2^127` for `p < 2^62`, so the u128 term never
    /// overflows. This is the `IP` kernel of lazy keyswitch chains: the
    /// accumulator is folded to canonical once per ciphertext limb
    /// instead of once per product.
    ///
    /// # Panics
    ///
    /// Panics if slice lengths differ from `self.n()`; debug-asserts all
    /// operands are in `[0, 2p)`.
    pub fn pointwise_mul_acc_lazy(&self, acc: &mut [u64], a: &[u64], b: &[u64]) {
        assert_eq!(acc.len(), self.n);
        assert_eq!(a.len(), self.n);
        assert_eq!(b.len(), self.n);
        let m = &self.modulus;
        crate::debug_assert_domain!(slice_within_2p: m, acc, "pointwise_mul_acc_lazy (acc)");
        crate::debug_assert_domain!(slice_within_2p: m, a, "pointwise_mul_acc_lazy (a)");
        crate::debug_assert_domain!(slice_within_2p: m, b, "pointwise_mul_acc_lazy (b)");
        kernel::active().mul_acc_lazy(m, acc, a, b);
    }

    /// Folds a slice of lazy `[0, 2p)` residues to canonical `[0, p)` —
    /// the single deferred canonicalisation pass at a ciphertext
    /// boundary.
    pub fn canonicalize_2p(&self, a: &mut [u64]) {
        kernel::active().fold_2p_to_canonical(&self.modulus, a);
    }

    /// Negacyclic polynomial multiplication through the NTT.
    ///
    /// Convenience used pervasively by tests: `c = a * b mod (X^n+1, p)`.
    ///
    /// # Panics
    ///
    /// Panics if slice lengths differ from `self.n()`.
    #[must_use]
    pub fn negacyclic_mul(&self, a: &[u64], b: &[u64]) -> Vec<u64> {
        assert_eq!(a.len(), self.n);
        assert_eq!(b.len(), self.n);
        let mut fa = a.to_vec();
        let mut fb = b.to_vec();
        self.forward(&mut fa);
        self.forward(&mut fb);
        let m = &self.modulus;
        for i in 0..self.n {
            fa[i] = m.mul(fa[i], fb[i]);
        }
        self.inverse(&mut fa);
        fa
    }
}

/// Schoolbook negacyclic multiplication, used as a test oracle.
///
/// Computes `a * b mod (X^n + 1)` in O(n^2).
///
/// # Panics
///
/// Panics if `a.len() != b.len()`.
pub fn negacyclic_mul_schoolbook(m: &Modulus, a: &[u64], b: &[u64]) -> Vec<u64> {
    assert_eq!(a.len(), b.len());
    let n = a.len();
    let mut out = vec![0u64; n];
    for (i, &ai) in a.iter().enumerate() {
        if ai == 0 {
            continue;
        }
        for (j, &bj) in b.iter().enumerate() {
            let k = i + j;
            let prod = m.mul(ai, bj);
            if k < n {
                out[k] = m.add(out[k], prod);
            } else {
                out[k - n] = m.sub(out[k - n], prod);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prime::ntt_primes;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn table(bits: u32, n: usize) -> NttTable {
        let p = ntt_primes(bits, n, 1)[0];
        NttTable::new(Modulus::new(p).unwrap(), n)
    }

    fn rand_poly(rng: &mut StdRng, m: &Modulus, n: usize) -> Vec<u64> {
        (0..n).map(|_| rng.gen_range(0..m.value())).collect()
    }

    #[test]
    fn forward_inverse_roundtrip() {
        let mut rng = StdRng::seed_from_u64(7);
        for n in [4usize, 16, 64, 256, 1024] {
            let t = table(50, n);
            let a = rand_poly(&mut rng, t.modulus(), n);
            let mut b = a.clone();
            t.forward(&mut b);
            assert_ne!(a, b, "transform should change data");
            t.inverse(&mut b);
            assert_eq!(a, b, "roundtrip failed for n={n}");
        }
    }

    #[test]
    fn lazy_forward_inverse_equal_strict() {
        let mut rng = StdRng::seed_from_u64(21);
        for n in [4usize, 16, 256, 2048] {
            for bits in [30u32, 45, 61] {
                let t = table(bits, n);
                let a = rand_poly(&mut rng, t.modulus(), n);
                let mut lazy = a.clone();
                let mut strict = a.clone();
                t.forward(&mut lazy);
                t.forward_strict(&mut strict);
                assert_eq!(lazy, strict, "forward mismatch n={n} bits={bits}");
                t.inverse(&mut lazy);
                t.inverse_strict(&mut strict);
                assert_eq!(lazy, strict, "inverse mismatch n={n} bits={bits}");
                assert_eq!(lazy, a, "roundtrip mismatch n={n} bits={bits}");
            }
        }
    }

    #[test]
    fn lazy_in_lazy_out_matches_strict_after_fold() {
        // forward_lazy/inverse_lazy chains on [0, 2p) inputs must be
        // congruent to the strict oracle, and bit-identical once folded.
        let mut rng = StdRng::seed_from_u64(23);
        for n in [4usize, 64, 1024] {
            for bits in [30u32, 45, 61] {
                let t = table(bits, n);
                let m = t.modulus();
                let p = m.value();
                let a = rand_poly(&mut rng, m, n);
                // Lift to random [0, 2p) representatives of the same values.
                let lifted: Vec<u64> = a
                    .iter()
                    .map(|&x| if rng.gen::<bool>() { x + p } else { x })
                    .collect();

                let mut strict = a.clone();
                t.forward_strict(&mut strict);

                let mut lazy = lifted.clone();
                t.forward_lazy(&mut lazy);
                assert!(lazy.iter().all(|&x| x < 2 * p), "n={n} bits={bits}");
                let mut folded = lazy.clone();
                t.canonicalize_2p(&mut folded);
                assert_eq!(folded, strict, "forward n={n} bits={bits}");

                // Chain: inverse_lazy directly on the lazy spectrum.
                t.inverse_lazy(&mut lazy);
                assert!(lazy.iter().all(|&x| x < 2 * p));
                t.canonicalize_2p(&mut lazy);
                t.inverse_strict(&mut strict);
                assert_eq!(lazy, strict, "roundtrip n={n} bits={bits}");
                assert_eq!(lazy, a, "roundtrip value n={n} bits={bits}");
            }
        }
    }

    #[test]
    fn lazy_mul_acc_matches_strict_after_fold() {
        let mut rng = StdRng::seed_from_u64(24);
        let t = table(50, 256);
        let m = t.modulus();
        let p = m.value();
        let a = rand_poly(&mut rng, m, 256);
        let b = rand_poly(&mut rng, m, 256);
        let mut acc_strict = rand_poly(&mut rng, m, 256);
        // Lazy accumulator starts from [0, 2p) representatives.
        let mut acc_lazy: Vec<u64> = acc_strict
            .iter()
            .map(|&x| if rng.gen::<bool>() { x + p } else { x })
            .collect();
        let a_lazy: Vec<u64> = a
            .iter()
            .map(|&x| if rng.gen::<bool>() { x + p } else { x })
            .collect();
        for _ in 0..3 {
            t.pointwise_mul_acc(&mut acc_strict, &a, &b);
            t.pointwise_mul_acc_lazy(&mut acc_lazy, &a_lazy, &b);
        }
        assert!(acc_lazy.iter().all(|&x| x < 2 * p));
        t.canonicalize_2p(&mut acc_lazy);
        assert_eq!(acc_lazy, acc_strict);
    }

    #[test]
    #[should_panic(expected = "leaked")]
    #[cfg(debug_assertions)]
    fn strict_kernel_rejects_lazy_residue() {
        let t = table(36, 16);
        let p = t.modulus().value();
        let mut a = vec![0u64; 16];
        a[3] = p + 1; // a [0, 2p) representative, not canonical
        t.forward_strict(&mut a);
    }

    #[test]
    fn ntt_mul_matches_schoolbook() {
        let mut rng = StdRng::seed_from_u64(8);
        for n in [8usize, 32, 128] {
            let t = table(36, n);
            let a = rand_poly(&mut rng, t.modulus(), n);
            let b = rand_poly(&mut rng, t.modulus(), n);
            let via_ntt = t.negacyclic_mul(&a, &b);
            let oracle = negacyclic_mul_schoolbook(t.modulus(), &a, &b);
            assert_eq!(via_ntt, oracle, "n={n}");
        }
    }

    #[test]
    fn multiplication_by_x_shifts_negacyclically() {
        let t = table(36, 16);
        // a = X, b arbitrary: X*b rotates coefficients with sign flip.
        let mut a = vec![0u64; 16];
        a[1] = 1;
        let b: Vec<u64> = (1..=16u64).collect();
        let c = t.negacyclic_mul(&a, &b);
        let p = t.modulus().value();
        assert_eq!(c[0], p - 16); // -b[15]
        for i in 1..16 {
            assert_eq!(c[i], b[i - 1]);
        }
    }

    #[test]
    fn constant_geometry_equals_reference() {
        let mut rng = StdRng::seed_from_u64(9);
        for n in [4usize, 8, 64, 256, 2048] {
            let t = table(45, n);
            let a = rand_poly(&mut rng, t.modulus(), n);
            let mut r = a.clone();
            t.forward(&mut r);
            let mut c = a.clone();
            let stages = t.forward_constant_geometry(&mut c);
            assert_eq!(stages, log2_exact(n));
            assert_eq!(r, c, "constant-geometry mismatch for n={n}");
        }
    }

    #[test]
    fn four_step_equals_reference() {
        let mut rng = StdRng::seed_from_u64(10);
        for n in [16usize, 64, 256, 1024] {
            let t = table(45, n);
            let a = rand_poly(&mut rng, t.modulus(), n);
            let mut r = a.clone();
            t.forward(&mut r);
            let mut f = a.clone();
            let (n1, n2) = t.forward_four_step(&mut f);
            assert_eq!(n1 * n2, n);
            assert_eq!(r, f, "four-step mismatch for n={n}");
        }
    }

    #[test]
    fn pointwise_mul_acc_accumulates() {
        let t = table(36, 8);
        let m = *t.modulus();
        let a = vec![2u64; 8];
        let b = vec![3u64; 8];
        let mut acc = vec![1u64; 8];
        t.pointwise_mul_acc(&mut acc, &a, &b);
        assert_eq!(acc, vec![7u64; 8]);
        t.pointwise_mul_acc(&mut acc, &a, &b);
        assert_eq!(acc, vec![13u64; 8]);
        let _ = m;
    }

    #[test]
    fn linearity_of_transform() {
        let mut rng = StdRng::seed_from_u64(11);
        let t = table(40, 128);
        let m = *t.modulus();
        let a = rand_poly(&mut rng, &m, 128);
        let b = rand_poly(&mut rng, &m, 128);
        let sum: Vec<u64> = a.iter().zip(&b).map(|(&x, &y)| m.add(x, y)).collect();
        let mut fa = a.clone();
        let mut fb = b.clone();
        let mut fs = sum.clone();
        t.forward(&mut fa);
        t.forward(&mut fb);
        t.forward(&mut fs);
        for i in 0..128 {
            assert_eq!(fs[i], m.add(fa[i], fb[i]));
        }
    }

    #[test]
    #[should_panic(expected = "not NTT-friendly")]
    fn rejects_unfriendly_modulus() {
        // 97 ≡ 1 mod 32 but not mod 64.
        let _ = NttTable::new(Modulus::new(97).unwrap(), 32);
    }
}
