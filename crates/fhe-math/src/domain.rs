//! The shared residue-domain assertion: `debug_assert_domain!`.
//!
//! Every kernel entry point in this workspace sits on one side of the
//! lazy-reduction contract: strict kernels require canonical `[0, p)`
//! residues, lazy kernels require (and produce) `[0, 2p)`
//! representatives. Those contracts used to be policed by hand-written
//! per-entry `debug_assert!`s with drifting messages; this macro is the
//! single shared form, so the checks are uniform and `trinity-lint`
//! (rule `missing-domain-assert`) has one anchor to verify — every
//! public `*_lazy` kernel entry must invoke it (or carry an explicit
//! `trinity-lint: allow(...)` with a reason).
//!
//! Variants, selected by the leading keyword:
//!
//! | form | checks |
//! |------|--------|
//! | `canonical: poly, kernel` | an [`RnsPoly`](crate::RnsPoly) is in [`ReductionState::Canonical`](crate::ReductionState) |
//! | `within_2p: poly, kernel` | every residue of an `RnsPoly` is `< 2p` for its limb |
//! | `slice_canonical: m, row, kernel` | every element of a `&[u64]` row is `< p` |
//! | `slice_within_2p: m, row, kernel` | every element of a `&[u64]` row is `< 2p` |
//! | `scalar_canonical: m, kernel, x...` | each scalar operand is `< p` |
//! | `scalar_within_2p: m, kernel, x...` | each scalar operand is `< 2p` |
//!
//! All variants compile to a `debug_assert!` — zero cost in release
//! builds, a panic naming the offending kernel under
//! `debug_assertions` (tier-1 tests run with `debug-assertions = true`
//! even at `opt-level = 2`).

/// Debug-asserts a kernel entry's residue-domain contract.
///
/// See the [module docs](crate::domain) for the variant table. The
/// `kernel` argument is the entry-point name used in the panic message.
///
/// # Examples
///
/// ```
/// use fhe_math::{debug_assert_domain, Modulus};
/// let m = Modulus::new(65537).unwrap();
/// let (a, b) = (3u64, 70000u64); // 70000 < 2p: a valid lazy operand
/// debug_assert_domain!(scalar_within_2p: m, "add_lazy", a, b);
/// let row = [1u64, 2, 65536];
/// debug_assert_domain!(slice_canonical: m, &row, "forward_strict");
/// ```
#[macro_export]
macro_rules! debug_assert_domain {
    (canonical: $poly:expr, $kernel:expr) => {
        debug_assert!(
            $poly.reduction_state() == $crate::ReductionState::Canonical,
            "{} requires canonical residues — a Lazy2p polynomial leaked in; \
             call canonicalize() at the ciphertext boundary first",
            $kernel
        )
    };
    (within_2p: $poly:expr, $kernel:expr) => {
        debug_assert!(
            {
                let p = &$poly;
                p.flat()
                    .chunks_exact(p.n())
                    .zip(p.basis().moduli())
                    .all(|(row, m)| row.iter().all(|&x| x < 2 * m.value()))
            },
            "{}: input outside the [0, 2p) window",
            $kernel
        )
    };
    (slice_canonical: $m:expr, $row:expr, $kernel:expr) => {
        debug_assert!(
            $row.iter().all(|&x| x < $m.value()),
            "{} requires canonical input — a lazy [0, 2p) residue leaked in",
            $kernel
        )
    };
    (slice_within_2p: $m:expr, $row:expr, $kernel:expr) => {
        debug_assert!(
            $row.iter().all(|&x| x < 2 * $m.value()),
            "{}: input outside the [0, 2p) window",
            $kernel
        )
    };
    (scalar_canonical: $m:expr, $kernel:expr, $($x:expr),+ $(,)?) => {
        debug_assert!(
            true $(&& ($x) < $m.value())+,
            "{}: operand outside the canonical [0, p) range",
            $kernel
        )
    };
    (scalar_within_2p: $m:expr, $kernel:expr, $($x:expr),+ $(,)?) => {
        debug_assert!(
            true $(&& ($x) < 2 * $m.value())+,
            "{}: operand outside the [0, 2p) window",
            $kernel
        )
    };
}

#[cfg(test)]
mod tests {
    use crate::Modulus;

    #[test]
    fn scalar_variants_accept_in_window_operands() {
        let m = Modulus::new(97).unwrap();
        debug_assert_domain!(scalar_canonical: m, "add", 0u64, 96u64);
        debug_assert_domain!(scalar_within_2p: m, "add_lazy", 0u64, 193u64);
    }

    #[test]
    fn slice_variants_accept_in_window_rows() {
        let m = Modulus::new(97).unwrap();
        let canon = [0u64, 1, 96];
        let lazy = [0u64, 97, 193];
        debug_assert_domain!(slice_canonical: m, &canon, "forward_strict");
        debug_assert_domain!(slice_within_2p: m, &lazy, "forward_lazy");
    }

    #[test]
    #[should_panic(expected = "outside the [0, 2p) window")]
    #[cfg(debug_assertions)]
    fn scalar_within_2p_rejects_escaped_operand() {
        let m = Modulus::new(97).unwrap();
        debug_assert_domain!(scalar_within_2p: m, "add_lazy", 194u64);
    }

    #[test]
    #[should_panic(expected = "a lazy [0, 2p) residue leaked in")]
    #[cfg(debug_assertions)]
    fn slice_canonical_rejects_lazy_residue() {
        let m = Modulus::new(97).unwrap();
        let row = [0u64, 97];
        debug_assert_domain!(slice_canonical: m, &row, "forward_strict");
    }
}
