//! Pluggable batched kernel backends for the flat-limb hot paths.
//!
//! The paper's pipelines win by running butterflies, MACs and slot
//! permutations as *wide, batched* passes over scratchpad rows, keeping
//! operands in redundant form between stages (the `[0, 4p)` butterfly
//! window and the `[0, 2p)` cross-kernel window) and folding only at
//! memory writeback. [`KernelBackend`] captures exactly that contract in
//! software: every method is a whole-row pass over a flat limb-major
//! buffer with a documented input/output window, so an implementation is
//! free to batch, unroll, or vectorise however it likes as long as the
//! per-element results are **bit-identical** to the scalar reference.
//!
//! Two implementations ship:
//!
//! * [`ScalarBackend`] — the straightforward one-element-at-a-time
//!   loops (the PR 2/3 code paths, kept as the readable reference).
//! * [`LaneBackend`] — chunked and unrolled into fixed-width lanes with
//!   branchless window folds (`min`-select conditional subtractions),
//!   the shape autovectorisers and SIMD ports want. Same results, bit
//!   for bit (asserted against the NTT golden vectors).
//!
//! The active backend is process-wide: [`active`] resolves it once from
//! `TRINITY_KERNEL_BACKEND` (`scalar` or `lanes`; default `lanes`), or
//! [`select`] pins it programmatically before first use. Tests and
//! benches can also bypass the global and call a backend directly.
//!
//! # Window contracts
//!
//! | method                   | input window | output window |
//! |--------------------------|--------------|---------------|
//! | [`KernelBackend::forward_stages`]  | `[0, 2p)` | `[0, 4p)` |
//! | [`KernelBackend::inverse_stages`]  | `[0, 2p)` | `[0, 2p)` (pre-scaling) |
//! | [`KernelBackend::fold_4p_to_2p`]   | `[0, 4p)` | `[0, 2p)` |
//! | [`KernelBackend::fold_4p_to_canonical`] | `[0, 4p)` | `[0, p)` |
//! | [`KernelBackend::fold_2p_to_canonical`] | `[0, 2p)` | `[0, p)` |
//! | [`KernelBackend::scale_shoup`]      | any `u64`   | `[0, p)`  |
//! | [`KernelBackend::scale_shoup_lazy`] | any `u64`   | `[0, 2p)` |
//! | [`KernelBackend::mul_acc_lazy`]     | `[0, 2p)`   | `[0, 2p)` |
//! | [`KernelBackend::mul_lazy`]         | `[0, 2p)`   | `[0, 2p)` |
//! | [`KernelBackend::add_lazy`] / [`KernelBackend::sub_lazy`] | `[0, 2p)` | `[0, 2p)` |
//! | [`KernelBackend::permute`]          | any         | unchanged |
//!
//! Callers (the [`crate::NttTable`] and [`crate::RnsPoly`] entry points)
//! own the debug-assert window checks; backends may assume their
//! contracts hold.

use std::sync::OnceLock;

use crate::modulus::Modulus;
use crate::ntt::NttTable;

/// Unroll width of the [`LaneBackend`] passes. Eight `u64` words span
/// one cache line, and the branchless bodies below compile to straight
/// select chains LLVM can keep in flight (or vectorise where the ISA
/// allows).
const LANES: usize = 8;

/// A batched kernel implementation over flat limb-major rows.
///
/// See the module docs for the window contract of every method. All
/// implementations must be element-wise **bit-identical** to
/// [`ScalarBackend`]; the NTT golden-vector suite asserts this.
pub trait KernelBackend: Send + Sync + std::fmt::Debug {
    /// Human-readable backend name (`"scalar"`, `"lanes"`, ...).
    fn name(&self) -> &'static str;

    /// The shared Cooley–Tukey butterfly stages of the forward
    /// negacyclic NTT: inputs in `[0, 2p)`, outputs in `[0, 4p)`.
    /// Callers fold into their target window afterwards.
    fn forward_stages(&self, t: &NttTable, a: &mut [u64]);

    /// The shared Gentleman–Sande stages of the inverse negacyclic NTT:
    /// inputs and outputs in `[0, 2p)` (before the `n^{-1}` scaling
    /// pass).
    fn inverse_stages(&self, t: &NttTable, a: &mut [u64]);

    /// One conditional subtraction at `2p`: folds `[0, 4p)` residues
    /// into the `[0, 2p)` lazy window.
    fn fold_4p_to_2p(&self, m: &Modulus, a: &mut [u64]);

    /// Two conditional subtractions in a single pass: folds `[0, 4p)`
    /// residues all the way to canonical `[0, p)`.
    fn fold_4p_to_canonical(&self, m: &Modulus, a: &mut [u64]);

    /// The deferred canonicalisation pass of a lazy chain: folds
    /// `[0, 2p)` residues to canonical `[0, p)`.
    fn fold_2p_to_canonical(&self, m: &Modulus, a: &mut [u64]);

    /// Multiplies every residue by the Shoup pair `(w, w_shoup)`,
    /// canonicalising (`[0, p)` out) — the strict exit of the inverse
    /// transform's `n^{-1}` pass. Accepts any `u64` input (the Shoup
    /// lazy product is correct for the full butterfly window).
    fn scale_shoup(&self, m: &Modulus, w: u64, w_shoup: u64, a: &mut [u64]);

    /// As [`Self::scale_shoup`] but skipping the canonicalising
    /// subtraction (`[0, 2p)` out) — the lazy chain-tail exit.
    fn scale_shoup_lazy(&self, m: &Modulus, w: u64, w_shoup: u64, a: &mut [u64]);

    /// Batched lazy `IP` kernel: `acc[i] += a[i] * b[i]` with all
    /// operands in `[0, 2p)` and the accumulator kept in `[0, 2p)`.
    fn mul_acc_lazy(&self, m: &Modulus, acc: &mut [u64], a: &[u64], b: &[u64]);

    /// Batched lazy pointwise multiply: `a[i] *= b[i]`, operands and
    /// result in `[0, 2p)`.
    fn mul_lazy(&self, m: &Modulus, a: &mut [u64], b: &[u64]);

    /// Batched lazy addition: `a[i] += b[i]` with one conditional
    /// subtraction at `2p`.
    fn add_lazy(&self, m: &Modulus, a: &mut [u64], b: &[u64]);

    /// Batched lazy subtraction: `a[i] = a[i] - b[i] (+ 2p)`.
    fn sub_lazy(&self, m: &Modulus, a: &mut [u64], b: &[u64]);

    /// Slot permutation (the eval-form `Auto` kernel): `dst[i] =
    /// src[perm[i]]`. A pure gather — reduction-agnostic, values pass
    /// through whatever window they are in.
    ///
    /// # Panics
    ///
    /// Implementations may assume `perm.len() == src.len() ==
    /// dst.len()` and every index is in range (callers assert).
    fn permute(&self, perm: &[usize], src: &[u64], dst: &mut [u64]);
}

/// Branchless conditional subtraction: `x - bound` if `x >= bound`,
/// else `x`. Requires `bound <= 2^63` (all our windows satisfy this:
/// `4p < 2^64`, `2p <= 2^63`, `p < 2^62`), so the wrapped difference of
/// a not-yet-reducible value always exceeds `x` and `min` selects
/// correctly.
#[inline(always)]
fn csub(x: u64, bound: u64) -> u64 {
    x.min(x.wrapping_sub(bound))
}

// ---------------------------------------------------------------------
// Scalar reference backend.
// ---------------------------------------------------------------------

/// The one-element-at-a-time reference implementation — the exact loops
/// the flat-limb engine ran before the backend split, kept as the
/// readable baseline every other backend is asserted against.
#[derive(Debug, Clone, Copy, Default)]
pub struct ScalarBackend;

impl KernelBackend for ScalarBackend {
    fn name(&self) -> &'static str {
        "scalar"
    }

    fn forward_stages(&self, t: &NttTable, a: &mut [u64]) {
        assert_eq!(a.len(), t.n());
        let m = t.modulus();
        let two_p = 2 * m.value();
        let psi_rev = t.psi_rev();
        let n = t.n();
        let mut len = n;
        let mut groups = 1usize;
        while groups < n {
            len >>= 1;
            for i in 0..groups {
                let (w, ws) = psi_rev[groups + i];
                let j1 = 2 * i * len;
                for j in j1..j1 + len {
                    // u in [0, 4p) -> [0, 2p); v in [0, 2p) from the
                    // lazy multiply; outputs in [0, 4p).
                    let mut u = a[j];
                    if u >= two_p {
                        u -= two_p;
                    }
                    let v = m.mul_shoup_lazy(a[j + len], w, ws);
                    a[j] = u + v;
                    a[j + len] = u + two_p - v;
                }
            }
            groups <<= 1;
        }
    }

    fn inverse_stages(&self, t: &NttTable, a: &mut [u64]) {
        assert_eq!(a.len(), t.n());
        let m = t.modulus();
        let two_p = 2 * m.value();
        let psi_inv_rev = t.psi_inv_rev();
        let mut len = 1usize;
        let mut groups = t.n();
        while groups > 1 {
            let h = groups >> 1;
            let mut j1 = 0usize;
            for i in 0..h {
                let (w, ws) = psi_inv_rev[h + i];
                for j in j1..j1 + len {
                    // u, v in [0, 2p); sum folded back below 2p; the
                    // lazy multiply accepts the [0, 4p) difference.
                    let u = a[j];
                    let v = a[j + len];
                    let mut s = u + v;
                    if s >= two_p {
                        s -= two_p;
                    }
                    a[j] = s;
                    a[j + len] = m.mul_shoup_lazy(u + two_p - v, w, ws);
                }
                j1 += 2 * len;
            }
            len <<= 1;
            groups = h;
        }
    }

    fn fold_4p_to_2p(&self, m: &Modulus, a: &mut [u64]) {
        let two_p = 2 * m.value();
        for x in a.iter_mut() {
            if *x >= two_p {
                *x -= two_p;
            }
        }
    }

    fn fold_4p_to_canonical(&self, m: &Modulus, a: &mut [u64]) {
        let p = m.value();
        let two_p = 2 * p;
        for x in a.iter_mut() {
            let mut v = *x;
            if v >= two_p {
                v -= two_p;
            }
            if v >= p {
                v -= p;
            }
            *x = v;
        }
    }

    fn fold_2p_to_canonical(&self, m: &Modulus, a: &mut [u64]) {
        for x in a.iter_mut() {
            *x = m.reduce_2p(*x);
        }
    }

    fn scale_shoup(&self, m: &Modulus, w: u64, w_shoup: u64, a: &mut [u64]) {
        let p = m.value();
        for x in a.iter_mut() {
            let mut v = m.mul_shoup_lazy(*x, w, w_shoup);
            if v >= p {
                v -= p;
            }
            *x = v;
        }
    }

    fn scale_shoup_lazy(&self, m: &Modulus, w: u64, w_shoup: u64, a: &mut [u64]) {
        for x in a.iter_mut() {
            *x = m.mul_shoup_lazy(*x, w, w_shoup);
        }
    }

    fn mul_acc_lazy(&self, m: &Modulus, acc: &mut [u64], a: &[u64], b: &[u64]) {
        for ((x, &ya), &yb) in acc.iter_mut().zip(a).zip(b) {
            *x = m.reduce_u128_lazy(ya as u128 * yb as u128 + *x as u128);
        }
    }

    fn mul_lazy(&self, m: &Modulus, a: &mut [u64], b: &[u64]) {
        for (x, &y) in a.iter_mut().zip(b) {
            *x = m.mul_lazy(*x, y);
        }
    }

    fn add_lazy(&self, m: &Modulus, a: &mut [u64], b: &[u64]) {
        for (x, &y) in a.iter_mut().zip(b) {
            *x = m.add_lazy(*x, y);
        }
    }

    fn sub_lazy(&self, m: &Modulus, a: &mut [u64], b: &[u64]) {
        for (x, &y) in a.iter_mut().zip(b) {
            *x = m.sub_lazy(*x, y);
        }
    }

    fn permute(&self, perm: &[usize], src: &[u64], dst: &mut [u64]) {
        for (x, &s) in dst.iter_mut().zip(perm) {
            *x = src[s];
        }
    }
}

// ---------------------------------------------------------------------
// Chunked/unrolled lane backend.
// ---------------------------------------------------------------------

/// Fixed-width-lane implementation: every pass is split into
/// [`LANES`]-wide chunks with branchless window folds, the layout that
/// lets the compiler batch independent butterflies/MACs the way a
/// hardware BU/MAC array consumes a scratchpad row. Bit-identical to
/// [`ScalarBackend`].
#[derive(Debug, Clone, Copy, Default)]
pub struct LaneBackend;

impl LaneBackend {
    /// One forward-butterfly row: `lo/hi` are the two half-rows sharing
    /// the twiddle `(w, ws)`.
    #[inline]
    fn forward_row(m: &Modulus, two_p: u64, w: u64, ws: u64, lo: &mut [u64], hi: &mut [u64]) {
        let mut lc = lo.chunks_exact_mut(LANES);
        let mut hc = hi.chunks_exact_mut(LANES);
        for (lch, hch) in lc.by_ref().zip(hc.by_ref()) {
            for k in 0..LANES {
                let u = csub(lch[k], two_p);
                let v = m.mul_shoup_lazy(hch[k], w, ws);
                lch[k] = u + v;
                hch[k] = u + two_p - v;
            }
        }
        for (x, y) in lc
            .into_remainder()
            .iter_mut()
            .zip(hc.into_remainder().iter_mut())
        {
            let u = csub(*x, two_p);
            let v = m.mul_shoup_lazy(*y, w, ws);
            *x = u + v;
            *y = u + two_p - v;
        }
    }

    /// One inverse-butterfly row (Gentleman–Sande).
    #[inline]
    fn inverse_row(m: &Modulus, two_p: u64, w: u64, ws: u64, lo: &mut [u64], hi: &mut [u64]) {
        let mut lc = lo.chunks_exact_mut(LANES);
        let mut hc = hi.chunks_exact_mut(LANES);
        for (lch, hch) in lc.by_ref().zip(hc.by_ref()) {
            for k in 0..LANES {
                let u = lch[k];
                let v = hch[k];
                lch[k] = csub(u + v, two_p);
                hch[k] = m.mul_shoup_lazy(u + two_p - v, w, ws);
            }
        }
        for (x, y) in lc
            .into_remainder()
            .iter_mut()
            .zip(hc.into_remainder().iter_mut())
        {
            let u = *x;
            let v = *y;
            *x = csub(u + v, two_p);
            *y = m.mul_shoup_lazy(u + two_p - v, w, ws);
        }
    }
}

impl KernelBackend for LaneBackend {
    fn name(&self) -> &'static str {
        "lanes"
    }

    fn forward_stages(&self, t: &NttTable, a: &mut [u64]) {
        assert_eq!(a.len(), t.n());
        let m = t.modulus();
        let two_p = 2 * m.value();
        let psi_rev = t.psi_rev();
        let n = t.n();
        let mut len = n;
        let mut groups = 1usize;
        while groups < n {
            len >>= 1;
            for i in 0..groups {
                let (w, ws) = psi_rev[groups + i];
                let base = 2 * i * len;
                let (lo, hi) = a[base..base + 2 * len].split_at_mut(len);
                Self::forward_row(m, two_p, w, ws, lo, hi);
            }
            groups <<= 1;
        }
    }

    fn inverse_stages(&self, t: &NttTable, a: &mut [u64]) {
        assert_eq!(a.len(), t.n());
        let m = t.modulus();
        let two_p = 2 * m.value();
        let psi_inv_rev = t.psi_inv_rev();
        let mut len = 1usize;
        let mut groups = t.n();
        while groups > 1 {
            let h = groups >> 1;
            let mut j1 = 0usize;
            for i in 0..h {
                let (w, ws) = psi_inv_rev[h + i];
                let (lo, hi) = a[j1..j1 + 2 * len].split_at_mut(len);
                Self::inverse_row(m, two_p, w, ws, lo, hi);
                j1 += 2 * len;
            }
            len <<= 1;
            groups = h;
        }
    }

    fn fold_4p_to_2p(&self, m: &Modulus, a: &mut [u64]) {
        let two_p = 2 * m.value();
        let mut chunks = a.chunks_exact_mut(LANES);
        for ch in chunks.by_ref() {
            for x in ch.iter_mut() {
                *x = csub(*x, two_p);
            }
        }
        for x in chunks.into_remainder() {
            *x = csub(*x, two_p);
        }
    }

    fn fold_4p_to_canonical(&self, m: &Modulus, a: &mut [u64]) {
        let p = m.value();
        let two_p = 2 * p;
        let mut chunks = a.chunks_exact_mut(LANES);
        for ch in chunks.by_ref() {
            for x in ch.iter_mut() {
                *x = csub(csub(*x, two_p), p);
            }
        }
        for x in chunks.into_remainder() {
            *x = csub(csub(*x, two_p), p);
        }
    }

    fn fold_2p_to_canonical(&self, m: &Modulus, a: &mut [u64]) {
        let p = m.value();
        let mut chunks = a.chunks_exact_mut(LANES);
        for ch in chunks.by_ref() {
            for x in ch.iter_mut() {
                *x = csub(*x, p);
            }
        }
        for x in chunks.into_remainder() {
            *x = csub(*x, p);
        }
    }

    fn scale_shoup(&self, m: &Modulus, w: u64, w_shoup: u64, a: &mut [u64]) {
        let p = m.value();
        let mut chunks = a.chunks_exact_mut(LANES);
        for ch in chunks.by_ref() {
            for x in ch.iter_mut() {
                *x = csub(m.mul_shoup_lazy(*x, w, w_shoup), p);
            }
        }
        for x in chunks.into_remainder() {
            *x = csub(m.mul_shoup_lazy(*x, w, w_shoup), p);
        }
    }

    fn scale_shoup_lazy(&self, m: &Modulus, w: u64, w_shoup: u64, a: &mut [u64]) {
        let mut chunks = a.chunks_exact_mut(LANES);
        for ch in chunks.by_ref() {
            for x in ch.iter_mut() {
                *x = m.mul_shoup_lazy(*x, w, w_shoup);
            }
        }
        for x in chunks.into_remainder() {
            *x = m.mul_shoup_lazy(*x, w, w_shoup);
        }
    }

    fn mul_acc_lazy(&self, m: &Modulus, acc: &mut [u64], a: &[u64], b: &[u64]) {
        assert_eq!(acc.len(), a.len());
        assert_eq!(acc.len(), b.len());
        let mut xc = acc.chunks_exact_mut(LANES);
        let mut ac = a.chunks_exact(LANES);
        let mut bc = b.chunks_exact(LANES);
        for ((xch, ach), bch) in xc.by_ref().zip(ac.by_ref()).zip(bc.by_ref()) {
            for k in 0..LANES {
                xch[k] = m.reduce_u128_lazy(ach[k] as u128 * bch[k] as u128 + xch[k] as u128);
            }
        }
        for ((x, &ya), &yb) in xc
            .into_remainder()
            .iter_mut()
            .zip(ac.remainder())
            .zip(bc.remainder())
        {
            *x = m.reduce_u128_lazy(ya as u128 * yb as u128 + *x as u128);
        }
    }

    fn mul_lazy(&self, m: &Modulus, a: &mut [u64], b: &[u64]) {
        assert_eq!(a.len(), b.len());
        let mut ac = a.chunks_exact_mut(LANES);
        let mut bc = b.chunks_exact(LANES);
        for (ach, bch) in ac.by_ref().zip(bc.by_ref()) {
            for k in 0..LANES {
                ach[k] = m.reduce_u128_lazy(ach[k] as u128 * bch[k] as u128);
            }
        }
        for (x, &y) in ac.into_remainder().iter_mut().zip(bc.remainder()) {
            *x = m.reduce_u128_lazy(*x as u128 * y as u128);
        }
    }

    fn add_lazy(&self, m: &Modulus, a: &mut [u64], b: &[u64]) {
        assert_eq!(a.len(), b.len());
        let two_p = 2 * m.value();
        let mut ac = a.chunks_exact_mut(LANES);
        let mut bc = b.chunks_exact(LANES);
        for (ach, bch) in ac.by_ref().zip(bc.by_ref()) {
            for k in 0..LANES {
                ach[k] = csub(ach[k] + bch[k], two_p);
            }
        }
        for (x, &y) in ac.into_remainder().iter_mut().zip(bc.remainder()) {
            *x = csub(*x + y, two_p);
        }
    }

    fn sub_lazy(&self, m: &Modulus, a: &mut [u64], b: &[u64]) {
        assert_eq!(a.len(), b.len());
        let two_p = 2 * m.value();
        let mut ac = a.chunks_exact_mut(LANES);
        let mut bc = b.chunks_exact(LANES);
        for (ach, bch) in ac.by_ref().zip(bc.by_ref()) {
            for k in 0..LANES {
                ach[k] = csub(ach[k] + two_p - bch[k], two_p);
            }
        }
        for (x, &y) in ac.into_remainder().iter_mut().zip(bc.remainder()) {
            *x = csub(*x + two_p - y, two_p);
        }
    }

    fn permute(&self, perm: &[usize], src: &[u64], dst: &mut [u64]) {
        assert_eq!(perm.len(), dst.len());
        let mut dc = dst.chunks_exact_mut(LANES);
        let mut pc = perm.chunks_exact(LANES);
        for (dch, pch) in dc.by_ref().zip(pc.by_ref()) {
            for k in 0..LANES {
                dch[k] = src[pch[k]];
            }
        }
        for (x, &s) in dc.into_remainder().iter_mut().zip(pc.remainder()) {
            *x = src[s];
        }
    }
}

// ---------------------------------------------------------------------
// Runtime selection.
// ---------------------------------------------------------------------

/// The scalar reference backend instance.
pub static SCALAR: ScalarBackend = ScalarBackend;
/// The chunked/unrolled lane backend instance.
pub static LANES_BACKEND: LaneBackend = LaneBackend;

static ACTIVE: OnceLock<&'static dyn KernelBackend> = OnceLock::new();

/// Looks a shipped backend up by name (`"scalar"` or `"lanes"`).
pub fn by_name(name: &str) -> Option<&'static dyn KernelBackend> {
    match name {
        "scalar" => Some(&SCALAR),
        "lanes" => Some(&LANES_BACKEND),
        _ => None,
    }
}

/// The process-wide active backend, resolved once on first use: the
/// `TRINITY_KERNEL_BACKEND` environment variable if set to a known name
/// (`scalar` / `lanes`), otherwise [`LaneBackend`]. All
/// [`crate::NttTable`] and [`crate::RnsPoly`] production entry points
/// dispatch through this (the strict `*_strict` oracles never do — the
/// reference stays fixed while backends evolve).
pub fn active() -> &'static dyn KernelBackend {
    *ACTIVE.get_or_init(|| {
        std::env::var("TRINITY_KERNEL_BACKEND")
            .ok()
            .as_deref()
            .and_then(by_name)
            .unwrap_or(&LANES_BACKEND)
    })
}

/// Pins the process-wide backend before first use.
///
/// # Errors
///
/// Returns the rejected backend's name if a backend was already
/// resolved (by a previous [`select`] or any dispatched kernel call).
pub fn select(backend: &'static dyn KernelBackend) -> Result<(), &'static str> {
    ACTIVE.set(backend).map_err(|b| b.name())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prime::ntt_primes;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn table(bits: u32, n: usize) -> NttTable {
        let p = ntt_primes(bits, n, 1)[0];
        NttTable::new(Modulus::new(p).unwrap(), n)
    }

    #[test]
    fn csub_matches_branchy_reference() {
        let p = (1u64 << 61) - 1;
        for bound in [p, 2 * p] {
            for x in [0u64, 1, p - 1, p, p + 1, 2 * p - 1, 2 * p, 4 * p - 1] {
                let want = if x >= bound { x - bound } else { x };
                assert_eq!(csub(x, bound), want, "x={x} bound={bound}");
            }
        }
    }

    /// Every trait method must agree bit-for-bit between the scalar and
    /// lane backends on random data across sizes exercising both the
    /// chunked body and the remainders.
    #[test]
    fn lane_backend_is_bit_identical_to_scalar() {
        let mut rng = StdRng::seed_from_u64(0x1A7E5);
        for n in [4usize, 64, 256, 1024] {
            for bits in [30u32, 50, 61] {
                let t = table(bits, n);
                let m = *t.modulus();
                let p = m.value();
                let lift = |rng: &mut StdRng, x: u64| if rng.gen() { x + p } else { x };
                let poly: Vec<u64> = (0..n).map(|_| rng.gen_range(0..p)).collect();
                let lifted: Vec<u64> = poly.iter().map(|&x| lift(&mut rng, x)).collect();
                let other: Vec<u64> = (0..n)
                    .map(|_| {
                        let x = rng.gen_range(0..p);
                        lift(&mut rng, x)
                    })
                    .collect();

                // Stage loops.
                let (mut s, mut l) = (lifted.clone(), lifted.clone());
                SCALAR.forward_stages(&t, &mut s);
                LANES_BACKEND.forward_stages(&t, &mut l);
                assert_eq!(s, l, "forward_stages n={n} bits={bits}");
                SCALAR.fold_4p_to_2p(&m, &mut s);
                LANES_BACKEND.fold_4p_to_2p(&m, &mut l);
                assert_eq!(s, l, "fold_4p_to_2p n={n} bits={bits}");
                SCALAR.inverse_stages(&t, &mut s);
                LANES_BACKEND.inverse_stages(&t, &mut l);
                assert_eq!(s, l, "inverse_stages n={n} bits={bits}");

                // Folds and scales from a fresh [0, 4p) buffer.
                let wide: Vec<u64> = poly
                    .iter()
                    .map(|&x| x + rng.gen_range(0..4u64) * p)
                    .collect();
                let (mut s, mut l) = (wide.clone(), wide.clone());
                SCALAR.fold_4p_to_canonical(&m, &mut s);
                LANES_BACKEND.fold_4p_to_canonical(&m, &mut l);
                assert_eq!(s, l, "fold_4p_to_canonical");
                let (mut s, mut l) = (lifted.clone(), lifted.clone());
                SCALAR.fold_2p_to_canonical(&m, &mut s);
                LANES_BACKEND.fold_2p_to_canonical(&m, &mut l);
                assert_eq!(s, l, "fold_2p_to_canonical");
                let w = rng.gen_range(1..p);
                let ws = m.shoup(w);
                let (mut s, mut l) = (lifted.clone(), lifted.clone());
                SCALAR.scale_shoup(&m, w, ws, &mut s);
                LANES_BACKEND.scale_shoup(&m, w, ws, &mut l);
                assert_eq!(s, l, "scale_shoup");
                let (mut s, mut l) = (lifted.clone(), lifted.clone());
                SCALAR.scale_shoup_lazy(&m, w, ws, &mut s);
                LANES_BACKEND.scale_shoup_lazy(&m, w, ws, &mut l);
                assert_eq!(s, l, "scale_shoup_lazy");

                // Pointwise families.
                let (mut s, mut l) = (lifted.clone(), lifted.clone());
                SCALAR.mul_acc_lazy(&m, &mut s, &other, &lifted);
                LANES_BACKEND.mul_acc_lazy(&m, &mut l, &other, &lifted);
                assert_eq!(s, l, "mul_acc_lazy");
                let (mut s, mut l) = (lifted.clone(), lifted.clone());
                SCALAR.mul_lazy(&m, &mut s, &other);
                LANES_BACKEND.mul_lazy(&m, &mut l, &other);
                assert_eq!(s, l, "mul_lazy");
                let (mut s, mut l) = (lifted.clone(), lifted.clone());
                SCALAR.add_lazy(&m, &mut s, &other);
                LANES_BACKEND.add_lazy(&m, &mut l, &other);
                assert_eq!(s, l, "add_lazy");
                let (mut s, mut l) = (lifted.clone(), lifted.clone());
                SCALAR.sub_lazy(&m, &mut s, &other);
                LANES_BACKEND.sub_lazy(&m, &mut l, &other);
                assert_eq!(s, l, "sub_lazy");

                // Permute (random bijection).
                let mut perm: Vec<usize> = (0..n).collect();
                for i in (1..n).rev() {
                    perm.swap(i, rng.gen_range(0..=i));
                }
                let (mut s, mut l) = (vec![0u64; n], vec![0u64; n]);
                SCALAR.permute(&perm, &lifted, &mut s);
                LANES_BACKEND.permute(&perm, &lifted, &mut l);
                assert_eq!(s, l, "permute");
            }
        }
    }

    #[test]
    fn backend_lookup_by_name() {
        assert_eq!(by_name("scalar").unwrap().name(), "scalar");
        assert_eq!(by_name("lanes").unwrap().name(), "lanes");
        assert!(by_name("gpu").is_none());
    }
}
