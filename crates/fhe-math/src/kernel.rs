//! Pluggable batched kernel backends for the flat-limb hot paths.
//!
//! The paper's pipelines win by running butterflies, MACs and slot
//! permutations as *wide, batched* passes over scratchpad rows, keeping
//! operands in redundant form between stages (the `[0, 4p)` butterfly
//! window and the `[0, 2p)` cross-kernel window) and folding only at
//! memory writeback. [`KernelBackend`] captures exactly that contract in
//! software: every method is a whole-row pass over a flat limb-major
//! buffer with a documented input/output window, so an implementation is
//! free to batch, unroll, or vectorise however it likes as long as the
//! per-element results are **bit-identical** to the scalar reference.
//!
//! Three implementations ship:
//!
//! * [`ScalarBackend`] — the straightforward one-element-at-a-time
//!   loops (the PR 2/3 code paths, kept as the readable reference).
//! * [`LaneBackend`] — chunked and unrolled into fixed-width lanes with
//!   branchless window folds (`min`-select conditional subtractions),
//!   the shape autovectorisers and SIMD ports want. Same results, bit
//!   for bit (asserted against the NTT golden vectors).
//! * [`ThreadedBackend`] — the limb-parallel backend: batched passes
//!   slice their whole-limb rows across a persistent
//!   [`crate::pool::WorkerPool`] (each job runs the [`LaneBackend`]
//!   loops on its rows), with a sequential fallback below a row-size
//!   threshold. This is the software shape of the one parallelism axis
//!   every FHE accelerator exploits — independent residue rows (FAB's
//!   parallel NTT lanes, TREBUCHET's per-tower RNS parallelism).
//!
//! Besides the per-row passes, the trait has **batched entry points**
//! (`*_batch`) taking the whole flat limb-major buffer of an
//! [`crate::RnsPoly`] at once — including the `BConv` base-conversion
//! matmul ([`KernelBackend::convert_approx_batch`] /
//! [`KernelBackend::convert_exact_batch`], which slice over *output*
//! limb rows) and the TFHE gadget decomposition
//! ([`KernelBackend::decompose_batch`], which slices over input
//! component rows; the per-coefficient digit carry chain forbids
//! slicing across levels). Their default implementations loop rows
//! sequentially — per-element identical to the per-row methods — and
//! [`ThreadedBackend`] overrides them with row-parallel dispatch.
//! Because each row is still computed by the sequential row pass (and
//! the BConv `u128` row accumulation is order-independent), results are
//! bit-identical to [`ScalarBackend`] no matter how rows are scheduled.
//!
//! The active backend is process-wide: [`active`] resolves it once from
//! `TRINITY_KERNEL_BACKEND` (`scalar`, `lanes`, or `threaded[:N]`;
//! default `lanes`; unknown values warn once on stderr and fall back),
//! or [`select`] pins it programmatically before first use. Tests and
//! benches can also bypass the global and call a backend directly, or
//! swap it explicitly with [`force`].
//!
//! # Window contracts
//!
//! | method                   | input window | output window |
//! |--------------------------|--------------|---------------|
//! | [`KernelBackend::forward_stages`]  | `[0, 2p)` | `[0, 4p)` |
//! | [`KernelBackend::inverse_stages`]  | `[0, 2p)` | `[0, 2p)` (pre-scaling) |
//! | [`KernelBackend::fold_4p_to_2p`]   | `[0, 4p)` | `[0, 2p)` |
//! | [`KernelBackend::fold_4p_to_canonical`] | `[0, 4p)` | `[0, p)` |
//! | [`KernelBackend::fold_2p_to_canonical`] | `[0, 2p)` | `[0, p)` |
//! | [`KernelBackend::scale_shoup`]      | any `u64`   | `[0, p)`  |
//! | [`KernelBackend::scale_shoup_lazy`] | any `u64`   | `[0, 2p)` |
//! | [`KernelBackend::mul_acc_lazy`]     | `[0, 2p)`   | `[0, 2p)` |
//! | [`KernelBackend::mul_lazy`]         | `[0, 2p)`   | `[0, 2p)` |
//! | [`KernelBackend::add_lazy`] / [`KernelBackend::sub_lazy`] | `[0, 2p)` | `[0, 2p)` |
//! | [`KernelBackend::permute`]          | any         | unchanged |
//! | [`KernelBackend::convert_approx_batch`] | canonical `[0, a_i)` digits | canonical `[0, b_j)` |
//! | [`KernelBackend::convert_exact_batch`]  | canonical `[0, a_i)` digits | canonical `[0, b_j)` |
//! | [`KernelBackend::decompose_batch`]  | `[0, q)`    | digits in `[-B/2, B/2)` |
//!
//! Callers (the [`crate::NttTable`] and [`crate::RnsPoly`] entry points)
//! own the debug-assert window checks; backends may assume their
//! contracts hold.

use std::sync::{Mutex, Once, PoisonError, RwLock};

use crate::modulus::Modulus;
use crate::ntt::NttTable;
use crate::pool::{Task, WorkerPool};

/// Unroll width of the [`LaneBackend`] passes. Eight `u64` words span
/// one cache line, and the branchless bodies below compile to straight
/// select chains LLVM can keep in flight (or vectorise where the ISA
/// allows).
const LANES: usize = 8;

/// Which window a batched transform leaves its rows in.
///
/// The forward stages exit in `[0, 4p)` and the inverse stages need an
/// `n^{-1}` scaling pass; the exit fold picks whether that last pass
/// canonicalises (`[0, p)` out — the chain boundary) or stays in the
/// lazy `[0, 2p)` cross-kernel window (the chain interior).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExitFold {
    /// Fold all the way to canonical `[0, p)` residues.
    Canonical,
    /// Stay in the `[0, 2p)` lazy window (one fewer conditional
    /// subtraction per residue; fold later at the ciphertext boundary).
    Lazy2p,
}

/// A batched kernel implementation over flat limb-major rows.
///
/// See the module docs for the window contract of every method. All
/// implementations must be element-wise **bit-identical** to
/// [`ScalarBackend`]; the NTT golden-vector suite asserts this.
///
/// # Examples
///
/// Backends are plain objects — tests and benches can drive one
/// directly instead of going through the process-wide [`active`]
/// dispatch. A full lazy round-trip over one limb row:
///
/// ```
/// use fhe_math::kernel::{ExitFold, KernelBackend, SCALAR};
/// use fhe_math::{prime, Modulus, NttTable};
///
/// let n = 64;
/// let p = prime::ntt_primes(40, n, 1)[0];
/// let table = NttTable::new(Modulus::new(p)?, n);
/// let modulus = *table.modulus();
///
/// let mut row: Vec<u64> = (0..n as u64).collect();
/// let expect = row.clone();
///
/// // Forward stages leave [0, 4p); fold into the lazy [0, 2p) window.
/// SCALAR.forward_stages(&table, &mut row);
/// SCALAR.fold_4p_to_2p(&modulus, &mut row);
/// assert!(row.iter().all(|&x| x < 2 * modulus.value()));
///
/// // Inverse stages + the n^{-1} Shoup scaling pass canonicalise.
/// SCALAR.inverse_stages(&table, &mut row);
/// let (ni, nis) = table.n_inv();
/// SCALAR.scale_shoup(&modulus, ni, nis, &mut row);
/// assert_eq!(row, expect);
///
/// // The batched entry point runs the same chain over a whole flat
/// // buffer (here: one row, canonical exit).
/// let mut flat = expect.clone();
/// SCALAR.forward_batch(&[&table], &mut flat, ExitFold::Canonical);
/// SCALAR.inverse_batch(&[&table], &mut flat, ExitFold::Canonical);
/// assert_eq!(flat, expect);
/// # Ok::<(), fhe_math::InvalidModulusError>(())
/// ```
pub trait KernelBackend: Send + Sync + std::fmt::Debug {
    /// Human-readable backend name (`"scalar"`, `"lanes"`, ...).
    fn name(&self) -> &'static str;

    /// The shared Cooley–Tukey butterfly stages of the forward
    /// negacyclic NTT: inputs in `[0, 2p)`, outputs in `[0, 4p)`.
    /// Callers fold into their target window afterwards.
    fn forward_stages(&self, t: &NttTable, a: &mut [u64]);

    /// The shared Gentleman–Sande stages of the inverse negacyclic NTT:
    /// inputs and outputs in `[0, 2p)` (before the `n^{-1}` scaling
    /// pass).
    fn inverse_stages(&self, t: &NttTable, a: &mut [u64]);

    /// One conditional subtraction at `2p`: folds `[0, 4p)` residues
    /// into the `[0, 2p)` lazy window.
    fn fold_4p_to_2p(&self, m: &Modulus, a: &mut [u64]);

    /// Two conditional subtractions in a single pass: folds `[0, 4p)`
    /// residues all the way to canonical `[0, p)`.
    fn fold_4p_to_canonical(&self, m: &Modulus, a: &mut [u64]);

    /// The deferred canonicalisation pass of a lazy chain: folds
    /// `[0, 2p)` residues to canonical `[0, p)`.
    fn fold_2p_to_canonical(&self, m: &Modulus, a: &mut [u64]);

    /// Multiplies every residue by the Shoup pair `(w, w_shoup)`,
    /// canonicalising (`[0, p)` out) — the strict exit of the inverse
    /// transform's `n^{-1}` pass. Accepts any `u64` input (the Shoup
    /// lazy product is correct for the full butterfly window).
    fn scale_shoup(&self, m: &Modulus, w: u64, w_shoup: u64, a: &mut [u64]);

    /// As [`Self::scale_shoup`] but skipping the canonicalising
    /// subtraction (`[0, 2p)` out) — the lazy chain-tail exit.
    fn scale_shoup_lazy(&self, m: &Modulus, w: u64, w_shoup: u64, a: &mut [u64]);

    /// Batched lazy `IP` kernel: `acc[i] += a[i] * b[i]` with all
    /// operands in `[0, 2p)` and the accumulator kept in `[0, 2p)`.
    fn mul_acc_lazy(&self, m: &Modulus, acc: &mut [u64], a: &[u64], b: &[u64]);

    /// Batched lazy pointwise multiply: `a[i] *= b[i]`, operands and
    /// result in `[0, 2p)`.
    fn mul_lazy(&self, m: &Modulus, a: &mut [u64], b: &[u64]);

    /// Batched lazy addition: `a[i] += b[i]` with one conditional
    /// subtraction at `2p`.
    fn add_lazy(&self, m: &Modulus, a: &mut [u64], b: &[u64]);

    /// Batched lazy subtraction: `a[i] = a[i] - b[i] (+ 2p)`.
    fn sub_lazy(&self, m: &Modulus, a: &mut [u64], b: &[u64]);

    /// Slot permutation (the eval-form `Auto` kernel): `dst[i] =
    /// src[perm[i]]`. A pure gather — reduction-agnostic, values pass
    /// through whatever window they are in.
    ///
    /// # Panics
    ///
    /// Implementations may assume `perm.len() == src.len() ==
    /// dst.len()` and every index is in range (callers assert).
    fn permute(&self, perm: &[usize], src: &[u64], dst: &mut [u64]);

    // -----------------------------------------------------------------
    // Batched (whole-poly) entry points. One limb row per table/modulus;
    // `flat` is the limb-major buffer of an `RnsPoly` (`rows * n`
    // words). Defaults loop rows sequentially through the per-row
    // passes; `ThreadedBackend` overrides them with limb-parallel
    // dispatch. Window contracts are per row, identical to the per-row
    // methods.
    // -----------------------------------------------------------------

    /// Batched forward negacyclic NTT over all limb rows of `flat`
    /// (row `i` under `tables[i]`): butterfly stages plus the chosen
    /// exit fold (`[0, p)` or `[0, 2p)` out; `[0, 2p)` in).
    ///
    /// # Panics
    ///
    /// Implementations may assume `flat.len() == tables.len() * n` with
    /// every table sharing the ring degree `n` (callers assert).
    fn forward_batch(&self, tables: &[&NttTable], flat: &mut [u64], exit: ExitFold) {
        let Some(n) = batch_rows(tables.len(), flat.len()) else {
            return;
        };
        for (row, t) in flat.chunks_exact_mut(n).zip(tables) {
            self.forward_stages(t, row);
            match exit {
                ExitFold::Canonical => self.fold_4p_to_canonical(t.modulus(), row),
                ExitFold::Lazy2p => self.fold_4p_to_2p(t.modulus(), row),
            }
        }
    }

    /// Batched inverse negacyclic NTT over all limb rows of `flat`:
    /// Gentleman–Sande stages plus the `n^{-1}` Shoup scaling pass,
    /// canonicalising ([`ExitFold::Canonical`]) or staying lazy
    /// ([`ExitFold::Lazy2p`]).
    ///
    /// # Panics
    ///
    /// As [`Self::forward_batch`].
    fn inverse_batch(&self, tables: &[&NttTable], flat: &mut [u64], exit: ExitFold) {
        let Some(n) = batch_rows(tables.len(), flat.len()) else {
            return;
        };
        for (row, t) in flat.chunks_exact_mut(n).zip(tables) {
            self.inverse_stages(t, row);
            let (ni, nis) = t.n_inv();
            match exit {
                ExitFold::Canonical => self.scale_shoup(t.modulus(), ni, nis, row),
                ExitFold::Lazy2p => self.scale_shoup_lazy(t.modulus(), ni, nis, row),
            }
        }
    }

    /// Batched deferred canonicalisation: folds every `[0, 2p_i)` row
    /// of `flat` to canonical `[0, p_i)`.
    fn fold_2p_to_canonical_batch(&self, moduli: &[Modulus], flat: &mut [u64]) {
        let Some(n) = batch_rows(moduli.len(), flat.len()) else {
            return;
        };
        for (row, m) in flat.chunks_exact_mut(n).zip(moduli) {
            self.fold_2p_to_canonical(m, row);
        }
    }

    /// Batched lazy addition over all limb rows: `a[i] += b[i]` per row
    /// under its modulus, staying in `[0, 2p)`.
    fn add_lazy_batch(&self, moduli: &[Modulus], a: &mut [u64], b: &[u64]) {
        let Some(n) = batch_rows(moduli.len(), a.len()) else {
            return;
        };
        for ((row, orow), m) in a.chunks_exact_mut(n).zip(b.chunks_exact(n)).zip(moduli) {
            self.add_lazy(m, row, orow);
        }
    }

    /// Batched lazy subtraction over all limb rows (see
    /// [`Self::add_lazy_batch`]).
    fn sub_lazy_batch(&self, moduli: &[Modulus], a: &mut [u64], b: &[u64]) {
        let Some(n) = batch_rows(moduli.len(), a.len()) else {
            return;
        };
        for ((row, orow), m) in a.chunks_exact_mut(n).zip(b.chunks_exact(n)).zip(moduli) {
            self.sub_lazy(m, row, orow);
        }
    }

    /// Batched lazy pointwise multiply over all limb rows (see
    /// [`Self::mul_lazy`]).
    fn mul_lazy_batch(&self, moduli: &[Modulus], a: &mut [u64], b: &[u64]) {
        let Some(n) = batch_rows(moduli.len(), a.len()) else {
            return;
        };
        for ((row, orow), m) in a.chunks_exact_mut(n).zip(b.chunks_exact(n)).zip(moduli) {
            self.mul_lazy(m, row, orow);
        }
    }

    /// Batched lazy `IP` accumulation over all limb rows:
    /// `acc[i] += a[i] * b[i]` per row, accumulator kept in `[0, 2p)`.
    fn mul_acc_lazy_batch(&self, moduli: &[Modulus], acc: &mut [u64], a: &[u64], b: &[u64]) {
        let Some(n) = batch_rows(moduli.len(), acc.len()) else {
            return;
        };
        for (((row, arow), brow), m) in acc
            .chunks_exact_mut(n)
            .zip(a.chunks_exact(n))
            .zip(b.chunks_exact(n))
            .zip(moduli)
        {
            self.mul_acc_lazy(m, row, arow, brow);
        }
    }

    /// Batched slot permutation: applies the same `perm` (length `n`)
    /// to every `n`-word row of `src` into `dst`. Reduction-agnostic,
    /// like [`Self::permute`].
    ///
    /// # Panics
    ///
    /// Implementations may assume `src.len() == dst.len()` is an exact
    /// multiple of `perm.len()` (callers assert; debug-asserted here).
    fn permute_batch(&self, perm: &[usize], src: &[u64], dst: &mut [u64]) {
        if perm.is_empty() || src.is_empty() {
            return;
        }
        debug_assert_eq!(src.len(), dst.len(), "src/dst length mismatch");
        debug_assert_eq!(
            src.len() % perm.len(),
            0,
            "flat buffer not a multiple of the permutation length"
        );
        for (srow, drow) in src
            .chunks_exact(perm.len())
            .zip(dst.chunks_exact_mut(perm.len()))
        {
            self.permute(perm, srow, drow);
        }
    }

    /// Batched approximate fast base conversion (the HPS `BConv`
    /// matmul): for each output limb `j`,
    /// `out_j[c] = sum_i y_i[c] * weights[j*alpha + i] mod b_j`, where
    /// `y` is the premultiplied source digit buffer (`alpha` rows of
    /// `n` canonical residues) and `weights` is the row-major
    /// `to_moduli.len() x alpha` matrix of `|A/a_i| mod b_j` constants
    /// (`alpha` inferred as `weights.len() / to_moduli.len()`). Output
    /// rows are canonical. The `u128` row accumulation is
    /// order-independent and overflow-free for `alpha <= 16`
    /// (`BasisConverter::new` enforces the bound), so any row
    /// scheduling is bit-identical.
    fn convert_approx_batch(
        &self,
        to_moduli: &[Modulus],
        weights: &[u64],
        y: &[u64],
        out: &mut [u64],
    ) {
        let Some(n) = batch_rows(to_moduli.len(), out.len()) else {
            return;
        };
        let Some(alpha) = batch_rows(to_moduli.len(), weights.len()) else {
            return;
        };
        debug_assert_eq!(y.len(), alpha * n, "digit buffer size mismatch");
        for ((orow, wrow), bj) in out
            .chunks_exact_mut(n)
            .zip(weights.chunks_exact(alpha))
            .zip(to_moduli)
        {
            bconv_row(bj, wrow, y, n, orow);
        }
    }

    /// Batched exact fast base conversion: the [`Self::convert_approx_batch`]
    /// matmul followed by the per-coefficient overshoot correction
    /// `out_j[c] -= v[c] * a_mod_b[j] mod b_j`. The overshoot multiples
    /// `v` (one per coefficient, `round(sum_i y_i/a_i)`) are computed
    /// **once by the caller** (`BasisConverter::convert_exact`) so every
    /// backend subtracts the identical correction regardless of how
    /// output rows are scheduled.
    fn convert_exact_batch(
        &self,
        to_moduli: &[Modulus],
        weights: &[u64],
        a_mod_b: &[u64],
        v: &[u64],
        y: &[u64],
        out: &mut [u64],
    ) {
        let Some(n) = batch_rows(to_moduli.len(), out.len()) else {
            return;
        };
        let Some(alpha) = batch_rows(to_moduli.len(), weights.len()) else {
            return;
        };
        debug_assert_eq!(y.len(), alpha * n, "digit buffer size mismatch");
        debug_assert_eq!(v.len(), n, "one overshoot multiple per coefficient");
        debug_assert_eq!(a_mod_b.len(), to_moduli.len(), "one A mod b_j per limb");
        for (((orow, wrow), bj), &am) in out
            .chunks_exact_mut(n)
            .zip(weights.chunks_exact(alpha))
            .zip(to_moduli)
            .zip(a_mod_b)
        {
            bconv_row(bj, wrow, y, n, orow);
            for (o, &vc) in orow.iter_mut().zip(v) {
                *o = bj.sub(*o, bj.mul(bj.reduce(vc), am));
            }
        }
    }

    /// Batched balanced gadget decomposition (the TFHE `Decomp`
    /// kernel): every coefficient of each `n`-word row of `src` is
    /// decomposed into `levels` balanced base-`2^base_log` digits,
    /// digit `j` of row `r` landing in `out[(r*levels + j)*n ..][..n]`
    /// — the exact row layout GGSW external products consume. See
    /// [`gadget_decompose_rows`] for the digit convention. The
    /// per-coefficient carry chain runs across levels, so parallel
    /// implementations slice across input rows, never across levels;
    /// results are bit-identical to the sequential reference either
    /// way.
    fn decompose_batch(
        &self,
        q: u64,
        base_log: u32,
        levels: usize,
        n: usize,
        src: &[u64],
        out: &mut [i64],
    ) {
        gadget_decompose_rows(q, base_log, levels, n, src, out);
    }
}

/// Row geometry of a batched call: `Some(n)` when there is work,
/// `None` for the empty batch.
#[inline]
fn batch_rows(rows: usize, flat_len: usize) -> Option<usize> {
    if rows == 0 || flat_len == 0 {
        None
    } else {
        debug_assert_eq!(flat_len % rows, 0, "flat buffer not a multiple of rows");
        Some(flat_len / rows)
    }
}

/// Branchless conditional subtraction: `x - bound` if `x >= bound`,
/// else `x`. Requires `bound <= 2^63` (all our windows satisfy this:
/// `4p < 2^64`, `2p <= 2^63`, `p < 2^62`), so the wrapped difference of
/// a not-yet-reducible value always exceeds `x` and `min` selects
/// correctly.
#[inline(always)]
fn csub(x: u64, bound: u64) -> u64 {
    x.min(x.wrapping_sub(bound))
}

/// One output-limb row of the HPS fast-base-conversion matmul:
/// `orow[c] = sum_i reduce_bj(y[i*n + c]) * wrow[i] mod b_j`. Each term
/// is below `2^124` and the source width is capped at 16 limbs
/// (`BasisConverter::new` asserts), so the `u128` sum cannot overflow;
/// integer accumulation is order-independent, so every backend computes
/// identical bits however the rows are scheduled.
#[inline]
fn bconv_row(bj: &Modulus, wrow: &[u64], y: &[u64], n: usize, orow: &mut [u64]) {
    for (c, o) in orow.iter_mut().enumerate() {
        let mut acc: u128 = 0;
        for (i, &w) in wrow.iter().enumerate() {
            acc += bj.reduce(y[i * n + c]) as u128 * w as u128;
        }
        *o = bj.reduce_u128(acc);
    }
}

/// Balanced base-`2^base_log` gadget decomposition of every coefficient
/// of `src`, viewed as rows of `n` words: `y = round(x * B^levels / q)`
/// is re-expressed as `y = sum_j d_j * B^(levels-1-j)` with every digit
/// `d_j` in `[-B/2, B/2)` (a final carry, if any, wraps mod `q` — the
/// approximate decomposition of the TFHE line of work, valid for any
/// `q`). Digit `j` of row `r` lands in `out[(r*levels + j)*n ..][..n]`.
///
/// This is the single scalar reference for the `Decomp` kernel:
/// `fhe-tfhe`'s `gadget_decompose` delegates here, and every
/// [`KernelBackend::decompose_batch`] implementation must match it
/// bit-for-bit. The digit carry propagates from the least-significant
/// level upward, so the only safe parallel axis is across rows.
///
/// # Panics
///
/// Panics when `src.len()` is not a multiple of `n`, or `out.len()`
/// differs from `src.len() * levels` (zero-work geometries return
/// early instead).
pub fn gadget_decompose_rows(
    q: u64,
    base_log: u32,
    levels: usize,
    n: usize,
    src: &[u64],
    out: &mut [i64],
) {
    if n == 0 || levels == 0 || src.is_empty() {
        return;
    }
    assert_eq!(src.len() % n, 0, "src not a multiple of the row length");
    assert_eq!(out.len(), src.len() * levels, "digit buffer size mismatch");
    let b = 1u64 << base_log;
    let half_b = (b / 2) as i64;
    // y = round(x * B^levels / q), an integer in [0, B^levels].
    let bl = 1u128 << (base_log as usize * levels);
    for (srow, orows) in src.chunks_exact(n).zip(out.chunks_exact_mut(levels * n)) {
        for (c, &x) in srow.iter().enumerate() {
            let mut rest = ((x as u128 * bl + q as u128 / 2) / q as u128) as u64;
            // Balanced base-B digits, most significant first:
            // peel least-significant digits, folding each into
            // [-B/2, B/2) with a carry into the next level.
            for j in (0..levels).rev() {
                let mut d = (rest % b) as i64;
                rest /= b;
                if d >= half_b {
                    d -= b as i64;
                    rest += 1;
                }
                orows[j * n + c] = d;
            }
        }
    }
}

// ---------------------------------------------------------------------
// Scalar reference backend.
// ---------------------------------------------------------------------

/// The one-element-at-a-time reference implementation — the exact loops
/// the flat-limb engine ran before the backend split, kept as the
/// readable baseline every other backend is asserted against.
#[derive(Debug, Clone, Copy, Default)]
pub struct ScalarBackend;

impl KernelBackend for ScalarBackend {
    fn name(&self) -> &'static str {
        "scalar"
    }

    fn forward_stages(&self, t: &NttTable, a: &mut [u64]) {
        assert_eq!(a.len(), t.n());
        let m = t.modulus();
        let two_p = 2 * m.value();
        let psi_rev = t.psi_rev();
        let n = t.n();
        let mut len = n;
        let mut groups = 1usize;
        while groups < n {
            len >>= 1;
            for i in 0..groups {
                let (w, ws) = psi_rev[groups + i];
                let j1 = 2 * i * len;
                for j in j1..j1 + len {
                    // u in [0, 4p) -> [0, 2p); v in [0, 2p) from the
                    // lazy multiply; outputs in [0, 4p).
                    let mut u = a[j];
                    if u >= two_p {
                        u -= two_p;
                    }
                    let v = m.mul_shoup_lazy(a[j + len], w, ws);
                    a[j] = u + v;
                    a[j + len] = u + two_p - v;
                }
            }
            groups <<= 1;
        }
    }

    fn inverse_stages(&self, t: &NttTable, a: &mut [u64]) {
        assert_eq!(a.len(), t.n());
        let m = t.modulus();
        let two_p = 2 * m.value();
        let psi_inv_rev = t.psi_inv_rev();
        let mut len = 1usize;
        let mut groups = t.n();
        while groups > 1 {
            let h = groups >> 1;
            let mut j1 = 0usize;
            for i in 0..h {
                let (w, ws) = psi_inv_rev[h + i];
                for j in j1..j1 + len {
                    // u, v in [0, 2p); sum folded back below 2p; the
                    // lazy multiply accepts the [0, 4p) difference.
                    let u = a[j];
                    let v = a[j + len];
                    let mut s = u + v;
                    if s >= two_p {
                        s -= two_p;
                    }
                    a[j] = s;
                    a[j + len] = m.mul_shoup_lazy(u + two_p - v, w, ws);
                }
                j1 += 2 * len;
            }
            len <<= 1;
            groups = h;
        }
    }

    fn fold_4p_to_2p(&self, m: &Modulus, a: &mut [u64]) {
        let two_p = 2 * m.value();
        for x in a.iter_mut() {
            if *x >= two_p {
                *x -= two_p;
            }
        }
    }

    fn fold_4p_to_canonical(&self, m: &Modulus, a: &mut [u64]) {
        let p = m.value();
        let two_p = 2 * p;
        for x in a.iter_mut() {
            let mut v = *x;
            if v >= two_p {
                v -= two_p;
            }
            if v >= p {
                v -= p;
            }
            *x = v;
        }
    }

    fn fold_2p_to_canonical(&self, m: &Modulus, a: &mut [u64]) {
        for x in a.iter_mut() {
            *x = m.reduce_2p(*x);
        }
    }

    fn scale_shoup(&self, m: &Modulus, w: u64, w_shoup: u64, a: &mut [u64]) {
        let p = m.value();
        for x in a.iter_mut() {
            let mut v = m.mul_shoup_lazy(*x, w, w_shoup);
            if v >= p {
                v -= p;
            }
            *x = v;
        }
    }

    fn scale_shoup_lazy(&self, m: &Modulus, w: u64, w_shoup: u64, a: &mut [u64]) {
        for x in a.iter_mut() {
            *x = m.mul_shoup_lazy(*x, w, w_shoup);
        }
    }

    fn mul_acc_lazy(&self, m: &Modulus, acc: &mut [u64], a: &[u64], b: &[u64]) {
        for ((x, &ya), &yb) in acc.iter_mut().zip(a).zip(b) {
            *x = m.reduce_u128_lazy(ya as u128 * yb as u128 + *x as u128);
        }
    }

    fn mul_lazy(&self, m: &Modulus, a: &mut [u64], b: &[u64]) {
        for (x, &y) in a.iter_mut().zip(b) {
            *x = m.mul_lazy(*x, y);
        }
    }

    fn add_lazy(&self, m: &Modulus, a: &mut [u64], b: &[u64]) {
        for (x, &y) in a.iter_mut().zip(b) {
            *x = m.add_lazy(*x, y);
        }
    }

    fn sub_lazy(&self, m: &Modulus, a: &mut [u64], b: &[u64]) {
        for (x, &y) in a.iter_mut().zip(b) {
            *x = m.sub_lazy(*x, y);
        }
    }

    fn permute(&self, perm: &[usize], src: &[u64], dst: &mut [u64]) {
        for (x, &s) in dst.iter_mut().zip(perm) {
            *x = src[s];
        }
    }
}

// ---------------------------------------------------------------------
// Chunked/unrolled lane backend.
// ---------------------------------------------------------------------

/// Fixed-width-lane implementation: every pass is split into
/// `LANES`-wide (8-word) chunks with branchless window folds, the layout that
/// lets the compiler batch independent butterflies/MACs the way a
/// hardware BU/MAC array consumes a scratchpad row. Bit-identical to
/// [`ScalarBackend`].
#[derive(Debug, Clone, Copy, Default)]
pub struct LaneBackend;

impl LaneBackend {
    /// One forward-butterfly row: `lo/hi` are the two half-rows sharing
    /// the twiddle `(w, ws)`.
    #[inline]
    fn forward_row(m: &Modulus, two_p: u64, w: u64, ws: u64, lo: &mut [u64], hi: &mut [u64]) {
        let mut lc = lo.chunks_exact_mut(LANES);
        let mut hc = hi.chunks_exact_mut(LANES);
        for (lch, hch) in lc.by_ref().zip(hc.by_ref()) {
            for k in 0..LANES {
                let u = csub(lch[k], two_p);
                let v = m.mul_shoup_lazy(hch[k], w, ws);
                lch[k] = u + v;
                hch[k] = u + two_p - v;
            }
        }
        for (x, y) in lc
            .into_remainder()
            .iter_mut()
            .zip(hc.into_remainder().iter_mut())
        {
            let u = csub(*x, two_p);
            let v = m.mul_shoup_lazy(*y, w, ws);
            *x = u + v;
            *y = u + two_p - v;
        }
    }

    /// One inverse-butterfly row (Gentleman–Sande).
    #[inline]
    fn inverse_row(m: &Modulus, two_p: u64, w: u64, ws: u64, lo: &mut [u64], hi: &mut [u64]) {
        let mut lc = lo.chunks_exact_mut(LANES);
        let mut hc = hi.chunks_exact_mut(LANES);
        for (lch, hch) in lc.by_ref().zip(hc.by_ref()) {
            for k in 0..LANES {
                let u = lch[k];
                let v = hch[k];
                lch[k] = csub(u + v, two_p);
                hch[k] = m.mul_shoup_lazy(u + two_p - v, w, ws);
            }
        }
        for (x, y) in lc
            .into_remainder()
            .iter_mut()
            .zip(hc.into_remainder().iter_mut())
        {
            let u = *x;
            let v = *y;
            *x = csub(u + v, two_p);
            *y = m.mul_shoup_lazy(u + two_p - v, w, ws);
        }
    }
}

impl KernelBackend for LaneBackend {
    fn name(&self) -> &'static str {
        "lanes"
    }

    fn forward_stages(&self, t: &NttTable, a: &mut [u64]) {
        assert_eq!(a.len(), t.n());
        let m = t.modulus();
        let two_p = 2 * m.value();
        let psi_rev = t.psi_rev();
        let n = t.n();
        let mut len = n;
        let mut groups = 1usize;
        while groups < n {
            len >>= 1;
            for i in 0..groups {
                let (w, ws) = psi_rev[groups + i];
                let base = 2 * i * len;
                let (lo, hi) = a[base..base + 2 * len].split_at_mut(len);
                Self::forward_row(m, two_p, w, ws, lo, hi);
            }
            groups <<= 1;
        }
    }

    fn inverse_stages(&self, t: &NttTable, a: &mut [u64]) {
        assert_eq!(a.len(), t.n());
        let m = t.modulus();
        let two_p = 2 * m.value();
        let psi_inv_rev = t.psi_inv_rev();
        let mut len = 1usize;
        let mut groups = t.n();
        while groups > 1 {
            let h = groups >> 1;
            let mut j1 = 0usize;
            for i in 0..h {
                let (w, ws) = psi_inv_rev[h + i];
                let (lo, hi) = a[j1..j1 + 2 * len].split_at_mut(len);
                Self::inverse_row(m, two_p, w, ws, lo, hi);
                j1 += 2 * len;
            }
            len <<= 1;
            groups = h;
        }
    }

    fn fold_4p_to_2p(&self, m: &Modulus, a: &mut [u64]) {
        let two_p = 2 * m.value();
        let mut chunks = a.chunks_exact_mut(LANES);
        for ch in chunks.by_ref() {
            for x in ch.iter_mut() {
                *x = csub(*x, two_p);
            }
        }
        for x in chunks.into_remainder() {
            *x = csub(*x, two_p);
        }
    }

    fn fold_4p_to_canonical(&self, m: &Modulus, a: &mut [u64]) {
        let p = m.value();
        let two_p = 2 * p;
        let mut chunks = a.chunks_exact_mut(LANES);
        for ch in chunks.by_ref() {
            for x in ch.iter_mut() {
                *x = csub(csub(*x, two_p), p);
            }
        }
        for x in chunks.into_remainder() {
            *x = csub(csub(*x, two_p), p);
        }
    }

    fn fold_2p_to_canonical(&self, m: &Modulus, a: &mut [u64]) {
        let p = m.value();
        let mut chunks = a.chunks_exact_mut(LANES);
        for ch in chunks.by_ref() {
            for x in ch.iter_mut() {
                *x = csub(*x, p);
            }
        }
        for x in chunks.into_remainder() {
            *x = csub(*x, p);
        }
    }

    fn scale_shoup(&self, m: &Modulus, w: u64, w_shoup: u64, a: &mut [u64]) {
        let p = m.value();
        let mut chunks = a.chunks_exact_mut(LANES);
        for ch in chunks.by_ref() {
            for x in ch.iter_mut() {
                *x = csub(m.mul_shoup_lazy(*x, w, w_shoup), p);
            }
        }
        for x in chunks.into_remainder() {
            *x = csub(m.mul_shoup_lazy(*x, w, w_shoup), p);
        }
    }

    fn scale_shoup_lazy(&self, m: &Modulus, w: u64, w_shoup: u64, a: &mut [u64]) {
        let mut chunks = a.chunks_exact_mut(LANES);
        for ch in chunks.by_ref() {
            for x in ch.iter_mut() {
                *x = m.mul_shoup_lazy(*x, w, w_shoup);
            }
        }
        for x in chunks.into_remainder() {
            *x = m.mul_shoup_lazy(*x, w, w_shoup);
        }
    }

    fn mul_acc_lazy(&self, m: &Modulus, acc: &mut [u64], a: &[u64], b: &[u64]) {
        assert_eq!(acc.len(), a.len());
        assert_eq!(acc.len(), b.len());
        let mut xc = acc.chunks_exact_mut(LANES);
        let mut ac = a.chunks_exact(LANES);
        let mut bc = b.chunks_exact(LANES);
        for ((xch, ach), bch) in xc.by_ref().zip(ac.by_ref()).zip(bc.by_ref()) {
            for k in 0..LANES {
                xch[k] = m.reduce_u128_lazy(ach[k] as u128 * bch[k] as u128 + xch[k] as u128);
            }
        }
        for ((x, &ya), &yb) in xc
            .into_remainder()
            .iter_mut()
            .zip(ac.remainder())
            .zip(bc.remainder())
        {
            *x = m.reduce_u128_lazy(ya as u128 * yb as u128 + *x as u128);
        }
    }

    fn mul_lazy(&self, m: &Modulus, a: &mut [u64], b: &[u64]) {
        assert_eq!(a.len(), b.len());
        let mut ac = a.chunks_exact_mut(LANES);
        let mut bc = b.chunks_exact(LANES);
        for (ach, bch) in ac.by_ref().zip(bc.by_ref()) {
            for k in 0..LANES {
                ach[k] = m.reduce_u128_lazy(ach[k] as u128 * bch[k] as u128);
            }
        }
        for (x, &y) in ac.into_remainder().iter_mut().zip(bc.remainder()) {
            *x = m.reduce_u128_lazy(*x as u128 * y as u128);
        }
    }

    fn add_lazy(&self, m: &Modulus, a: &mut [u64], b: &[u64]) {
        assert_eq!(a.len(), b.len());
        let two_p = 2 * m.value();
        let mut ac = a.chunks_exact_mut(LANES);
        let mut bc = b.chunks_exact(LANES);
        for (ach, bch) in ac.by_ref().zip(bc.by_ref()) {
            for k in 0..LANES {
                ach[k] = csub(ach[k] + bch[k], two_p);
            }
        }
        for (x, &y) in ac.into_remainder().iter_mut().zip(bc.remainder()) {
            *x = csub(*x + y, two_p);
        }
    }

    fn sub_lazy(&self, m: &Modulus, a: &mut [u64], b: &[u64]) {
        assert_eq!(a.len(), b.len());
        let two_p = 2 * m.value();
        let mut ac = a.chunks_exact_mut(LANES);
        let mut bc = b.chunks_exact(LANES);
        for (ach, bch) in ac.by_ref().zip(bc.by_ref()) {
            for k in 0..LANES {
                ach[k] = csub(ach[k] + two_p - bch[k], two_p);
            }
        }
        for (x, &y) in ac.into_remainder().iter_mut().zip(bc.remainder()) {
            *x = csub(*x + two_p - y, two_p);
        }
    }

    fn permute(&self, perm: &[usize], src: &[u64], dst: &mut [u64]) {
        assert_eq!(perm.len(), dst.len());
        let mut dc = dst.chunks_exact_mut(LANES);
        let mut pc = perm.chunks_exact(LANES);
        for (dch, pch) in dc.by_ref().zip(pc.by_ref()) {
            for k in 0..LANES {
                dch[k] = src[pch[k]];
            }
        }
        for (x, &s) in dc.into_remainder().iter_mut().zip(pc.remainder()) {
            *x = src[s];
        }
    }
}

// ---------------------------------------------------------------------
// Threaded limb-parallel backend.
// ---------------------------------------------------------------------

/// Default minimum number of elements a dispatched job must cover
/// before a batched pass fans out. Below this the channel round-trip
/// costs more than the row work, so the pass runs sequentially — the
/// row-size threshold of the sequential fallback.
const DEFAULT_MIN_JOB_ELEMS: usize = 4096;

/// Hard ceiling on configurable worker counts (a typo like
/// `threaded:100000` must not fork-bomb the process).
const MAX_THREADS: usize = 256;

/// The limb-parallel backend: batched passes slice their whole-limb
/// rows across a persistent [`WorkerPool`], each job running the
/// [`LaneBackend`] row loops on a contiguous row group.
///
/// * **Per-row methods** (`forward_stages`, `mul_acc_lazy`, ...) run
///   the lane loops inline: a lone row is below the batch threshold by
///   construction, and intra-row butterfly slicing would need a
///   barrier per NTT stage, which channel dispatch cannot amortise at
///   FHE ring degrees. The profitable axis is *across* limb rows —
///   exactly what the `*_batch` overrides exploit (the paper's
///   per-tower RNS parallelism in software).
/// * **Batch methods** partition the rows into at most `threads`
///   contiguous groups of at least `min_job` elements and run each
///   group as one pool job. Every row is still computed by the
///   sequential lane pass, so results are **bit-identical** to
///   [`ScalarBackend`] regardless of scheduling.
///
/// Determinism: per-limb results do not depend on which worker ran the
/// row, and rows never share output words, so the whole lazy-chain
/// oracle suite passes unchanged under this backend.
///
/// # Examples
///
/// ```
/// use fhe_math::kernel::{ExitFold, KernelBackend, ThreadedBackend, SCALAR};
/// use fhe_math::{prime, Modulus, NttTable, RnsBasis};
///
/// let n = 256;
/// let basis = RnsBasis::new(&prime::ntt_primes(40, n, 3), n);
/// let tables: Vec<&NttTable> = basis.tables().iter().map(|t| t.as_ref()).collect();
/// let mut flat: Vec<u64> = (0..(3 * n) as u64).collect();
/// let mut oracle = flat.clone();
///
/// // Two compute lanes, and a tiny job threshold so this small batch
/// // actually fans out; results are bit-identical to the scalar
/// // reference either way.
/// let threaded = ThreadedBackend::with_config(2, 64);
/// threaded.forward_batch(&tables, &mut flat, ExitFold::Lazy2p);
/// SCALAR.forward_batch(&tables, &mut oracle, ExitFold::Lazy2p);
/// assert_eq!(flat, oracle);
/// ```
#[derive(Debug)]
pub struct ThreadedBackend {
    pool: WorkerPool,
    min_job: usize,
}

impl ThreadedBackend {
    /// A backend with `threads` total compute lanes (the dispatching
    /// thread counts as one; see [`WorkerPool::new`]) and the default
    /// job-size threshold.
    pub fn with_threads(threads: usize) -> Self {
        Self::with_config(threads, DEFAULT_MIN_JOB_ELEMS)
    }

    /// As [`Self::with_threads`] with an explicit minimum number of
    /// elements per dispatched job (tuning/test knob; batches whose
    /// rows cannot fill two such jobs run sequentially).
    pub fn with_config(threads: usize, min_job: usize) -> Self {
        Self {
            pool: WorkerPool::new(threads.min(MAX_THREADS)),
            min_job: min_job.max(1),
        }
    }

    /// Total compute lanes of the underlying pool.
    pub fn threads(&self) -> usize {
        self.pool.threads()
    }

    /// Cumulative count of jobs this backend's pool ran through its
    /// parallel path (see [`WorkerPool::parallel_jobs_dispatched`]).
    /// Lets tests assert that a batched dispatch genuinely fanned out
    /// into the expected number of jobs — observable parallelism even
    /// on a single-CPU host.
    pub fn parallel_jobs_dispatched(&self) -> u64 {
        self.pool.parallel_jobs_dispatched()
    }

    /// [`Self::parallel_jobs_dispatched`] restricted to fan-outs whose
    /// dispatching thread carried `tag` (see
    /// [`crate::pool::tag_dispatches`]) — the per-lane attribution a
    /// service scheduler's audit log reads.
    pub fn parallel_jobs_dispatched_by_tag(&self, tag: usize) -> u64 {
        self.pool.parallel_jobs_dispatched_by_tag(tag)
    }

    /// Pool dispatches currently inside the parallel path under `tag`
    /// (see [`WorkerPool::parallel_in_flight_by_tag`]) — the
    /// instantaneous overlap gauge.
    pub fn parallel_in_flight_by_tag(&self, tag: usize) -> u64 {
        self.pool.parallel_in_flight_by_tag(tag)
    }

    /// Lifetime high-water mark of concurrently in-flight `tag`-tagged
    /// pool dispatches (see
    /// [`WorkerPool::parallel_in_flight_peak_by_tag`]) — reads ≥ 2 when
    /// a multi-dispatch service genuinely overlapped dispatches on this
    /// backend.
    pub fn parallel_in_flight_peak_by_tag(&self, tag: usize) -> u64 {
        self.pool.parallel_in_flight_peak_by_tag(tag)
    }

    /// Jobs currently queued in the underlying pool's injector (see
    /// [`WorkerPool::queue_depth`]) — the saturation gauge admission
    /// control reads.
    pub fn queue_depth(&self) -> u64 {
        self.pool.queue_depth()
    }

    /// Partitions `rows` rows of `n` words into contiguous job groups,
    /// or `None` when the batch is below the parallel threshold (the
    /// sequential fallback).
    fn row_groups(&self, rows: usize, n: usize) -> Option<Vec<std::ops::Range<usize>>> {
        let threads = self.pool.threads();
        if threads < 2 || rows < 2 || n == 0 {
            return None;
        }
        let k = (rows * n / self.min_job).clamp(1, threads.min(rows));
        if k < 2 {
            return None;
        }
        let (base, extra) = (rows / k, rows % k);
        let mut groups = Vec::with_capacity(k);
        let mut start = 0usize;
        for i in 0..k {
            let len = base + usize::from(i < extra);
            groups.push(start..start + len);
            start += len;
        }
        Some(groups)
    }
}

impl KernelBackend for ThreadedBackend {
    fn name(&self) -> &'static str {
        "threaded"
    }

    fn forward_stages(&self, t: &NttTable, a: &mut [u64]) {
        LANES_BACKEND.forward_stages(t, a);
    }

    fn inverse_stages(&self, t: &NttTable, a: &mut [u64]) {
        LANES_BACKEND.inverse_stages(t, a);
    }

    fn fold_4p_to_2p(&self, m: &Modulus, a: &mut [u64]) {
        LANES_BACKEND.fold_4p_to_2p(m, a);
    }

    fn fold_4p_to_canonical(&self, m: &Modulus, a: &mut [u64]) {
        LANES_BACKEND.fold_4p_to_canonical(m, a);
    }

    fn fold_2p_to_canonical(&self, m: &Modulus, a: &mut [u64]) {
        LANES_BACKEND.fold_2p_to_canonical(m, a);
    }

    fn scale_shoup(&self, m: &Modulus, w: u64, w_shoup: u64, a: &mut [u64]) {
        LANES_BACKEND.scale_shoup(m, w, w_shoup, a);
    }

    fn scale_shoup_lazy(&self, m: &Modulus, w: u64, w_shoup: u64, a: &mut [u64]) {
        LANES_BACKEND.scale_shoup_lazy(m, w, w_shoup, a);
    }

    fn mul_acc_lazy(&self, m: &Modulus, acc: &mut [u64], a: &[u64], b: &[u64]) {
        LANES_BACKEND.mul_acc_lazy(m, acc, a, b);
    }

    fn mul_lazy(&self, m: &Modulus, a: &mut [u64], b: &[u64]) {
        LANES_BACKEND.mul_lazy(m, a, b);
    }

    fn add_lazy(&self, m: &Modulus, a: &mut [u64], b: &[u64]) {
        LANES_BACKEND.add_lazy(m, a, b);
    }

    fn sub_lazy(&self, m: &Modulus, a: &mut [u64], b: &[u64]) {
        LANES_BACKEND.sub_lazy(m, a, b);
    }

    fn permute(&self, perm: &[usize], src: &[u64], dst: &mut [u64]) {
        LANES_BACKEND.permute(perm, src, dst);
    }

    fn forward_batch(&self, tables: &[&NttTable], flat: &mut [u64], exit: ExitFold) {
        let Some(n) = batch_rows(tables.len(), flat.len()) else {
            return;
        };
        let Some(groups) = self.row_groups(tables.len(), n) else {
            return LANES_BACKEND.forward_batch(tables, flat, exit);
        };
        let mut rest: &mut [u64] = flat;
        let mut tasks: Vec<Task<'_>> = Vec::with_capacity(groups.len());
        for g in groups {
            let (chunk, tail) = rest.split_at_mut(g.len() * n);
            rest = tail;
            let tbl = &tables[g];
            tasks.push(Box::new(move || {
                LANES_BACKEND.forward_batch(tbl, chunk, exit)
            }));
        }
        self.pool.run(tasks);
    }

    fn inverse_batch(&self, tables: &[&NttTable], flat: &mut [u64], exit: ExitFold) {
        let Some(n) = batch_rows(tables.len(), flat.len()) else {
            return;
        };
        let Some(groups) = self.row_groups(tables.len(), n) else {
            return LANES_BACKEND.inverse_batch(tables, flat, exit);
        };
        let mut rest: &mut [u64] = flat;
        let mut tasks: Vec<Task<'_>> = Vec::with_capacity(groups.len());
        for g in groups {
            let (chunk, tail) = rest.split_at_mut(g.len() * n);
            rest = tail;
            let tbl = &tables[g];
            tasks.push(Box::new(move || {
                LANES_BACKEND.inverse_batch(tbl, chunk, exit)
            }));
        }
        self.pool.run(tasks);
    }

    fn fold_2p_to_canonical_batch(&self, moduli: &[Modulus], flat: &mut [u64]) {
        let Some(n) = batch_rows(moduli.len(), flat.len()) else {
            return;
        };
        let Some(groups) = self.row_groups(moduli.len(), n) else {
            return LANES_BACKEND.fold_2p_to_canonical_batch(moduli, flat);
        };
        let mut rest: &mut [u64] = flat;
        let mut tasks: Vec<Task<'_>> = Vec::with_capacity(groups.len());
        for g in groups {
            let (chunk, tail) = rest.split_at_mut(g.len() * n);
            rest = tail;
            let ms = &moduli[g];
            tasks.push(Box::new(move || {
                LANES_BACKEND.fold_2p_to_canonical_batch(ms, chunk)
            }));
        }
        self.pool.run(tasks);
    }

    fn add_lazy_batch(&self, moduli: &[Modulus], a: &mut [u64], b: &[u64]) {
        self.binary_batch(moduli, a, b, BinaryLazyOp::Add);
    }

    fn sub_lazy_batch(&self, moduli: &[Modulus], a: &mut [u64], b: &[u64]) {
        self.binary_batch(moduli, a, b, BinaryLazyOp::Sub);
    }

    fn mul_lazy_batch(&self, moduli: &[Modulus], a: &mut [u64], b: &[u64]) {
        self.binary_batch(moduli, a, b, BinaryLazyOp::Mul);
    }

    fn mul_acc_lazy_batch(&self, moduli: &[Modulus], acc: &mut [u64], a: &[u64], b: &[u64]) {
        let Some(n) = batch_rows(moduli.len(), acc.len()) else {
            return;
        };
        let Some(groups) = self.row_groups(moduli.len(), n) else {
            return LANES_BACKEND.mul_acc_lazy_batch(moduli, acc, a, b);
        };
        let (mut racc, mut ra, mut rb): (&mut [u64], &[u64], &[u64]) = (acc, a, b);
        let mut tasks: Vec<Task<'_>> = Vec::with_capacity(groups.len());
        for g in groups {
            let words = g.len() * n;
            let (cacc, tacc) = racc.split_at_mut(words);
            racc = tacc;
            let (ca, ta) = ra.split_at(words);
            ra = ta;
            let (cb, tb) = rb.split_at(words);
            rb = tb;
            let ms = &moduli[g];
            tasks.push(Box::new(move || {
                LANES_BACKEND.mul_acc_lazy_batch(ms, cacc, ca, cb)
            }));
        }
        self.pool.run(tasks);
    }

    fn permute_batch(&self, perm: &[usize], src: &[u64], dst: &mut [u64]) {
        let n = perm.len();
        if n == 0 || src.is_empty() {
            return;
        }
        debug_assert_eq!(src.len(), dst.len(), "src/dst length mismatch");
        debug_assert_eq!(
            src.len() % n,
            0,
            "flat buffer not a multiple of the permutation length"
        );
        let rows = src.len() / n;
        let Some(groups) = self.row_groups(rows, n) else {
            return LANES_BACKEND.permute_batch(perm, src, dst);
        };
        let (mut rsrc, mut rdst): (&[u64], &mut [u64]) = (src, dst);
        let mut tasks: Vec<Task<'_>> = Vec::with_capacity(groups.len());
        for g in groups {
            let words = g.len() * n;
            let (csrc, tsrc) = rsrc.split_at(words);
            rsrc = tsrc;
            let (cdst, tdst) = rdst.split_at_mut(words);
            rdst = tdst;
            tasks.push(Box::new(move || {
                LANES_BACKEND.permute_batch(perm, csrc, cdst)
            }));
        }
        self.pool.run(tasks);
    }

    fn convert_approx_batch(
        &self,
        to_moduli: &[Modulus],
        weights: &[u64],
        y: &[u64],
        out: &mut [u64],
    ) {
        let Some(n) = batch_rows(to_moduli.len(), out.len()) else {
            return;
        };
        let Some(alpha) = batch_rows(to_moduli.len(), weights.len()) else {
            return;
        };
        let Some(groups) = self.row_groups(to_moduli.len(), n) else {
            return LANES_BACKEND.convert_approx_batch(to_moduli, weights, y, out);
        };
        let mut rest: &mut [u64] = out;
        let mut tasks: Vec<Task<'_>> = Vec::with_capacity(groups.len());
        for g in groups {
            let (chunk, tail) = rest.split_at_mut(g.len() * n);
            rest = tail;
            let ms = &to_moduli[g.clone()];
            let ws = &weights[g.start * alpha..g.end * alpha];
            tasks.push(Box::new(move || {
                LANES_BACKEND.convert_approx_batch(ms, ws, y, chunk)
            }));
        }
        self.pool.run(tasks);
    }

    fn convert_exact_batch(
        &self,
        to_moduli: &[Modulus],
        weights: &[u64],
        a_mod_b: &[u64],
        v: &[u64],
        y: &[u64],
        out: &mut [u64],
    ) {
        let Some(n) = batch_rows(to_moduli.len(), out.len()) else {
            return;
        };
        let Some(alpha) = batch_rows(to_moduli.len(), weights.len()) else {
            return;
        };
        let Some(groups) = self.row_groups(to_moduli.len(), n) else {
            return LANES_BACKEND.convert_exact_batch(to_moduli, weights, a_mod_b, v, y, out);
        };
        let mut rest: &mut [u64] = out;
        let mut tasks: Vec<Task<'_>> = Vec::with_capacity(groups.len());
        for g in groups {
            let (chunk, tail) = rest.split_at_mut(g.len() * n);
            rest = tail;
            let ms = &to_moduli[g.clone()];
            let am = &a_mod_b[g.clone()];
            let ws = &weights[g.start * alpha..g.end * alpha];
            tasks.push(Box::new(move || {
                LANES_BACKEND.convert_exact_batch(ms, ws, am, v, y, chunk)
            }));
        }
        self.pool.run(tasks);
    }

    fn decompose_batch(
        &self,
        q: u64,
        base_log: u32,
        levels: usize,
        n: usize,
        src: &[u64],
        out: &mut [i64],
    ) {
        if n == 0 || levels == 0 || src.is_empty() {
            return;
        }
        debug_assert_eq!(src.len() % n, 0, "src not a multiple of the row length");
        let rows = src.len() / n;
        // Each input row expands into `levels * n` digit words — that
        // is the job size the threshold must weigh, not `n`.
        let Some(groups) = self.row_groups(rows, levels * n) else {
            return LANES_BACKEND.decompose_batch(q, base_log, levels, n, src, out);
        };
        let (mut rsrc, mut rout): (&[u64], &mut [i64]) = (src, out);
        let mut tasks: Vec<Task<'_>> = Vec::with_capacity(groups.len());
        for g in groups {
            let (cs, ts) = rsrc.split_at(g.len() * n);
            rsrc = ts;
            let (co, to) = rout.split_at_mut(g.len() * levels * n);
            rout = to;
            tasks.push(Box::new(move || {
                LANES_BACKEND.decompose_batch(q, base_log, levels, n, cs, co)
            }));
        }
        self.pool.run(tasks);
    }
}

/// Which lazy two-operand row pass a shared batch dispatcher runs.
#[derive(Debug, Clone, Copy)]
enum BinaryLazyOp {
    Add,
    Sub,
    Mul,
}

impl ThreadedBackend {
    /// Shared row-parallel dispatcher for the three lazy `a op= b`
    /// batches (identical slicing, different row pass).
    fn binary_batch(&self, moduli: &[Modulus], a: &mut [u64], b: &[u64], op: BinaryLazyOp) {
        let Some(n) = batch_rows(moduli.len(), a.len()) else {
            return;
        };
        let Some(groups) = self.row_groups(moduli.len(), n) else {
            return match op {
                BinaryLazyOp::Add => LANES_BACKEND.add_lazy_batch(moduli, a, b),
                BinaryLazyOp::Sub => LANES_BACKEND.sub_lazy_batch(moduli, a, b),
                BinaryLazyOp::Mul => LANES_BACKEND.mul_lazy_batch(moduli, a, b),
            };
        };
        let (mut ra, mut rb): (&mut [u64], &[u64]) = (a, b);
        let mut tasks: Vec<Task<'_>> = Vec::with_capacity(groups.len());
        for g in groups {
            let words = g.len() * n;
            let (ca, ta) = ra.split_at_mut(words);
            ra = ta;
            let (cb, tb) = rb.split_at(words);
            rb = tb;
            let ms = &moduli[g];
            tasks.push(Box::new(move || match op {
                BinaryLazyOp::Add => LANES_BACKEND.add_lazy_batch(ms, ca, cb),
                BinaryLazyOp::Sub => LANES_BACKEND.sub_lazy_batch(ms, ca, cb),
                BinaryLazyOp::Mul => LANES_BACKEND.mul_lazy_batch(ms, ca, cb),
            }));
        }
        self.pool.run(tasks);
    }
}

// ---------------------------------------------------------------------
// Runtime selection.
// ---------------------------------------------------------------------

/// The scalar reference backend instance.
pub static SCALAR: ScalarBackend = ScalarBackend;
/// The chunked/unrolled lane backend instance.
pub static LANES_BACKEND: LaneBackend = LaneBackend;

/// The process-wide active backend; `None` until first resolution.
/// A `RwLock` (not a `OnceLock`) so benches and tests can swap it with
/// [`force`] — the uncontended read on the kernel dispatch path costs
/// nanoseconds against row passes of microseconds.
static ACTIVE: RwLock<Option<&'static dyn KernelBackend>> = RwLock::new(None);

/// Leaked-for-the-process [`ThreadedBackend`]s, memoised per thread
/// count so repeated lookups (env resolution, benches sweeping worker
/// counts) share one persistent worker pool each.
static THREADED: Mutex<Vec<(usize, &'static ThreadedBackend)>> = Mutex::new(Vec::new());

/// The process-lived threaded backend with the given thread count
/// (`None` = one lane per [`std::thread::available_parallelism`]).
/// Workers live for the process; calling this twice with the same
/// count returns the same instance and pool.
pub fn threaded(threads: Option<usize>) -> &'static ThreadedBackend {
    let n = threads
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(usize::from)
                .unwrap_or(1)
        })
        .clamp(1, MAX_THREADS);
    let mut registry = THREADED.lock().unwrap_or_else(PoisonError::into_inner);
    if let Some(&(_, backend)) = registry.iter().find(|(count, _)| *count == n) {
        return backend;
    }
    let backend: &'static ThreadedBackend = Box::leak(Box::new(ThreadedBackend::with_threads(n)));
    registry.push((n, backend));
    backend
}

/// Why a `TRINITY_KERNEL_BACKEND` value failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BackendSpecError(String);

impl std::fmt::Display for BackendSpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for BackendSpecError {}

/// Parses a backend spec: `scalar`, `lanes`, `threaded` (one lane per
/// available CPU), or `threaded:N` (`1 <= N <= 256`).
///
/// # Errors
///
/// Returns a [`BackendSpecError`] describing the problem for anything
/// else — including `threaded:0`, which would have no compute thread.
pub fn parse_spec(spec: &str) -> Result<&'static dyn KernelBackend, BackendSpecError> {
    match spec {
        "scalar" => Ok(&SCALAR),
        "lanes" => Ok(&LANES_BACKEND),
        "threaded" => Ok(threaded(None)),
        _ => {
            if let Some(count) = spec.strip_prefix("threaded:") {
                let n: usize = count.parse().map_err(|_| {
                    BackendSpecError(format!("thread count {count:?} is not an integer"))
                })?;
                if n == 0 {
                    return Err(BackendSpecError(
                        "thread count must be >= 1 (the dispatching thread is a lane; \
                         threaded:0 would have no compute thread)"
                            .into(),
                    ));
                }
                if n > MAX_THREADS {
                    return Err(BackendSpecError(format!(
                        "thread count {n} exceeds the {MAX_THREADS}-thread ceiling"
                    )));
                }
                Ok(threaded(Some(n)))
            } else {
                Err(BackendSpecError(format!(
                    "unknown backend {spec:?} (expected scalar, lanes, or threaded[:N])"
                )))
            }
        }
    }
}

/// Resolves an environment spec to a backend, warning **once** on
/// stderr and falling back to the default [`LaneBackend`] when the
/// value does not parse (a silent fallback hid typos like
/// `TRINITY_KERNEL_BACKEND=lane` for a whole bench run).
fn resolve(spec: Option<&str>) -> &'static dyn KernelBackend {
    match spec {
        None => &LANES_BACKEND,
        Some(s) => parse_spec(s).unwrap_or_else(|err| {
            static WARNED: Once = Once::new();
            WARNED.call_once(|| {
                eprintln!(
                    "warning: ignoring TRINITY_KERNEL_BACKEND={s:?}: {err}; \
                     using the default `lanes` backend"
                );
            });
            &LANES_BACKEND
        }),
    }
}

/// Looks a shipped backend up by spec — same grammar as [`parse_spec`]
/// (`"scalar"`, `"lanes"`, `"threaded"`, `"threaded:N"`), `None` on
/// anything else.
pub fn by_name(name: &str) -> Option<&'static dyn KernelBackend> {
    parse_spec(name).ok()
}

/// The process-wide active backend, resolved on first use: the
/// `TRINITY_KERNEL_BACKEND` environment variable if it parses
/// ([`parse_spec`]; invalid values warn once and fall back), otherwise
/// [`LaneBackend`]. All [`crate::NttTable`] and [`crate::RnsPoly`]
/// production entry points dispatch through this (the strict
/// `*_strict` oracles never do — the reference stays fixed while
/// backends evolve).
pub fn active() -> &'static dyn KernelBackend {
    if let Some(backend) = *ACTIVE.read().unwrap_or_else(PoisonError::into_inner) {
        return backend;
    }
    let resolved = resolve(std::env::var("TRINITY_KERNEL_BACKEND").ok().as_deref());
    let mut slot = ACTIVE.write().unwrap_or_else(PoisonError::into_inner);
    *slot.get_or_insert(resolved)
}

/// Pins the process-wide backend before first use.
///
/// # Errors
///
/// Returns the rejected backend's name if a backend was already
/// resolved (by a previous [`select`], a [`force`], or any dispatched
/// kernel call).
pub fn select(backend: &'static dyn KernelBackend) -> Result<(), &'static str> {
    let mut slot = ACTIVE.write().unwrap_or_else(PoisonError::into_inner);
    match *slot {
        Some(current) => Err(current.name()),
        None => {
            *slot = Some(backend);
            Ok(())
        }
    }
}

/// Swaps the process-wide backend unconditionally, returning the
/// previous one (if any was resolved). For benches and tests that
/// measure several backends in one process — production code should
/// rely on [`active`]'s one-time resolution instead, and callers here
/// must serialise against concurrent kernel work themselves.
pub fn force(backend: &'static dyn KernelBackend) -> Option<&'static dyn KernelBackend> {
    ACTIVE
        .write()
        .unwrap_or_else(PoisonError::into_inner)
        .replace(backend)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prime::ntt_primes;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn table(bits: u32, n: usize) -> NttTable {
        let p = ntt_primes(bits, n, 1)[0];
        NttTable::new(Modulus::new(p).unwrap(), n)
    }

    #[test]
    fn csub_matches_branchy_reference() {
        let p = (1u64 << 61) - 1;
        for bound in [p, 2 * p] {
            for x in [0u64, 1, p - 1, p, p + 1, 2 * p - 1, 2 * p, 4 * p - 1] {
                let want = if x >= bound { x - bound } else { x };
                assert_eq!(csub(x, bound), want, "x={x} bound={bound}");
            }
        }
    }

    /// Every trait method must agree bit-for-bit between the scalar and
    /// lane backends on random data across sizes exercising both the
    /// chunked body and the remainders.
    #[test]
    fn lane_backend_is_bit_identical_to_scalar() {
        let mut rng = StdRng::seed_from_u64(0x1A7E5);
        for n in [4usize, 64, 256, 1024] {
            for bits in [30u32, 50, 61] {
                let t = table(bits, n);
                let m = *t.modulus();
                let p = m.value();
                let lift = |rng: &mut StdRng, x: u64| if rng.gen() { x + p } else { x };
                let poly: Vec<u64> = (0..n).map(|_| rng.gen_range(0..p)).collect();
                let lifted: Vec<u64> = poly.iter().map(|&x| lift(&mut rng, x)).collect();
                let other: Vec<u64> = (0..n)
                    .map(|_| {
                        let x = rng.gen_range(0..p);
                        lift(&mut rng, x)
                    })
                    .collect();

                // Stage loops.
                let (mut s, mut l) = (lifted.clone(), lifted.clone());
                SCALAR.forward_stages(&t, &mut s);
                LANES_BACKEND.forward_stages(&t, &mut l);
                assert_eq!(s, l, "forward_stages n={n} bits={bits}");
                SCALAR.fold_4p_to_2p(&m, &mut s);
                LANES_BACKEND.fold_4p_to_2p(&m, &mut l);
                assert_eq!(s, l, "fold_4p_to_2p n={n} bits={bits}");
                SCALAR.inverse_stages(&t, &mut s);
                LANES_BACKEND.inverse_stages(&t, &mut l);
                assert_eq!(s, l, "inverse_stages n={n} bits={bits}");

                // Folds and scales from a fresh [0, 4p) buffer.
                let wide: Vec<u64> = poly
                    .iter()
                    .map(|&x| x + rng.gen_range(0..4u64) * p)
                    .collect();
                let (mut s, mut l) = (wide.clone(), wide.clone());
                SCALAR.fold_4p_to_canonical(&m, &mut s);
                LANES_BACKEND.fold_4p_to_canonical(&m, &mut l);
                assert_eq!(s, l, "fold_4p_to_canonical");
                let (mut s, mut l) = (lifted.clone(), lifted.clone());
                SCALAR.fold_2p_to_canonical(&m, &mut s);
                LANES_BACKEND.fold_2p_to_canonical(&m, &mut l);
                assert_eq!(s, l, "fold_2p_to_canonical");
                let w = rng.gen_range(1..p);
                let ws = m.shoup(w);
                let (mut s, mut l) = (lifted.clone(), lifted.clone());
                SCALAR.scale_shoup(&m, w, ws, &mut s);
                LANES_BACKEND.scale_shoup(&m, w, ws, &mut l);
                assert_eq!(s, l, "scale_shoup");
                let (mut s, mut l) = (lifted.clone(), lifted.clone());
                SCALAR.scale_shoup_lazy(&m, w, ws, &mut s);
                LANES_BACKEND.scale_shoup_lazy(&m, w, ws, &mut l);
                assert_eq!(s, l, "scale_shoup_lazy");

                // Pointwise families.
                let (mut s, mut l) = (lifted.clone(), lifted.clone());
                SCALAR.mul_acc_lazy(&m, &mut s, &other, &lifted);
                LANES_BACKEND.mul_acc_lazy(&m, &mut l, &other, &lifted);
                assert_eq!(s, l, "mul_acc_lazy");
                let (mut s, mut l) = (lifted.clone(), lifted.clone());
                SCALAR.mul_lazy(&m, &mut s, &other);
                LANES_BACKEND.mul_lazy(&m, &mut l, &other);
                assert_eq!(s, l, "mul_lazy");
                let (mut s, mut l) = (lifted.clone(), lifted.clone());
                SCALAR.add_lazy(&m, &mut s, &other);
                LANES_BACKEND.add_lazy(&m, &mut l, &other);
                assert_eq!(s, l, "add_lazy");
                let (mut s, mut l) = (lifted.clone(), lifted.clone());
                SCALAR.sub_lazy(&m, &mut s, &other);
                LANES_BACKEND.sub_lazy(&m, &mut l, &other);
                assert_eq!(s, l, "sub_lazy");

                // Permute (random bijection).
                let mut perm: Vec<usize> = (0..n).collect();
                for i in (1..n).rev() {
                    perm.swap(i, rng.gen_range(0..=i));
                }
                let (mut s, mut l) = (vec![0u64; n], vec![0u64; n]);
                SCALAR.permute(&perm, &lifted, &mut s);
                LANES_BACKEND.permute(&perm, &lifted, &mut l);
                assert_eq!(s, l, "permute");
            }
        }
    }

    #[test]
    fn backend_lookup_by_name() {
        assert_eq!(by_name("scalar").unwrap().name(), "scalar");
        assert_eq!(by_name("lanes").unwrap().name(), "lanes");
        assert_eq!(by_name("threaded:2").unwrap().name(), "threaded");
        assert!(by_name("gpu").is_none());
    }

    #[test]
    fn parse_spec_accepts_threaded_with_and_without_count() {
        assert_eq!(parse_spec("threaded").unwrap().name(), "threaded");
        let b = parse_spec("threaded:3").unwrap();
        assert_eq!(b.name(), "threaded");
        // Memoised per count: same instance, same pool.
        assert!(std::ptr::eq(
            parse_spec("threaded:3").unwrap(),
            parse_spec("threaded:3").unwrap()
        ));
        assert_eq!(threaded(Some(3)).threads(), 3);
    }

    #[test]
    fn parse_spec_rejects_garbage_empty_and_zero_threads() {
        for bad in ["", "gpu", "lane", "threaded:", "threaded:x", "threaded:-1"] {
            let err = parse_spec(bad).expect_err(bad);
            assert!(!err.to_string().is_empty(), "{bad}: empty message");
        }
        let zero = parse_spec("threaded:0").expect_err("threaded:0");
        assert!(zero.to_string().contains(">= 1"), "{zero}");
        let huge = parse_spec("threaded:100000").expect_err("threaded:100000");
        assert!(huge.to_string().contains("ceiling"), "{huge}");
    }

    #[test]
    fn resolve_falls_back_to_lanes_on_invalid_spec() {
        // The warn-once fallback path: invalid values resolve to the
        // default backend instead of silently picking something else.
        assert_eq!(resolve(None).name(), "lanes");
        assert_eq!(resolve(Some("garbage")).name(), "lanes");
        assert_eq!(resolve(Some("threaded:0")).name(), "lanes");
        assert_eq!(resolve(Some("scalar")).name(), "scalar");
        assert_eq!(resolve(Some("threaded:2")).name(), "threaded");
    }

    /// All batched entry points must be bit-identical between the
    /// sequential default (scalar), the lane override, and the
    /// threaded row-parallel dispatch — across geometries that
    /// exercise both the fan-out and the sequential-fallback paths.
    #[test]
    fn batch_entry_points_are_bit_identical_across_backends() {
        let mut rng = StdRng::seed_from_u64(0xBA7C4);
        // Tiny min_job so small batches genuinely fan out.
        let threaded2 = ThreadedBackend::with_config(2, 64);
        let threaded4 = ThreadedBackend::with_config(4, 64);
        for (n, limbs) in [(64usize, 1usize), (64, 3), (256, 5), (128, 8)] {
            let primes = crate::prime::ntt_primes(45, n, limbs);
            let basis = crate::rns::RnsBasis::new(&primes, n);
            let tables: Vec<&NttTable> = basis.tables().iter().map(|t| t.as_ref()).collect();
            let moduli = basis.moduli().to_vec();
            let flat: Vec<u64> = moduli
                .iter()
                .flat_map(|m| {
                    let p = m.value();
                    (0..n)
                        .map(|_| {
                            let x = rng.gen_range(0..p);
                            if rng.gen() {
                                x + p
                            } else {
                                x
                            }
                        })
                        .collect::<Vec<_>>()
                })
                .collect();
            let other: Vec<u64> = moduli
                .iter()
                .flat_map(|m| {
                    let p = m.value();
                    (0..n).map(|_| rng.gen_range(0..2 * p)).collect::<Vec<_>>()
                })
                .collect();
            let backends: [&dyn KernelBackend; 4] =
                [&SCALAR, &LANES_BACKEND, &threaded2, &threaded4];

            let apply = |f: &dyn Fn(&dyn KernelBackend, &mut Vec<u64>)| -> Vec<Vec<u64>> {
                backends
                    .iter()
                    .map(|b| {
                        let mut buf = flat.clone();
                        f(*b, &mut buf);
                        buf
                    })
                    .collect()
            };
            let assert_all_eq = |got: Vec<Vec<u64>>, what: &str| {
                for (b, g) in backends.iter().zip(&got) {
                    assert_eq!(g, &got[0], "{what} n={n} limbs={limbs} ({})", b.name());
                }
            };

            for exit in [ExitFold::Canonical, ExitFold::Lazy2p] {
                assert_all_eq(
                    apply(&|b, buf| b.forward_batch(&tables, buf, exit)),
                    "forward_batch",
                );
                assert_all_eq(
                    apply(&|b, buf| b.inverse_batch(&tables, buf, exit)),
                    "inverse_batch",
                );
            }
            assert_all_eq(
                apply(&|b, buf| b.fold_2p_to_canonical_batch(&moduli, buf)),
                "fold_2p_to_canonical_batch",
            );
            assert_all_eq(
                apply(&|b, buf| b.add_lazy_batch(&moduli, buf, &other)),
                "add_lazy_batch",
            );
            assert_all_eq(
                apply(&|b, buf| b.sub_lazy_batch(&moduli, buf, &other)),
                "sub_lazy_batch",
            );
            assert_all_eq(
                apply(&|b, buf| b.mul_lazy_batch(&moduli, buf, &other)),
                "mul_lazy_batch",
            );
            assert_all_eq(
                apply(&|b, buf| b.mul_acc_lazy_batch(&moduli, buf, &other, &flat)),
                "mul_acc_lazy_batch",
            );

            let mut perm: Vec<usize> = (0..n).collect();
            for i in (1..n).rev() {
                perm.swap(i, rng.gen_range(0..=i));
            }
            assert_all_eq(
                apply(&|b, buf| {
                    let src = buf.clone();
                    b.permute_batch(&perm, &src, buf);
                }),
                "permute_batch",
            );

            // BConv batches: random weight/digit buffers with the basis
            // moduli as output limbs — the HPS semantics live in
            // rns.rs; here only batch-vs-sequential bit-identity of
            // convert_approx_batch / convert_exact_batch matters.
            let alpha = 4usize;
            let weights: Vec<u64> = moduli
                .iter()
                .flat_map(|m| {
                    let p = m.value();
                    (0..alpha).map(|_| rng.gen_range(0..p)).collect::<Vec<_>>()
                })
                .collect();
            let digits: Vec<u64> = (0..alpha * n).map(|_| rng.gen()).collect();
            let a_mod: Vec<u64> = moduli.iter().map(|m| rng.gen_range(0..m.value())).collect();
            let v: Vec<u64> = (0..n).map(|_| rng.gen_range(0..=alpha as u64)).collect();
            assert_all_eq(
                apply(&|b, buf| b.convert_approx_batch(&moduli, &weights, &digits, buf)),
                "convert_approx_batch",
            );
            assert_all_eq(
                apply(&|b, buf| b.convert_exact_batch(&moduli, &weights, &a_mod, &v, &digits, buf)),
                "convert_exact_batch",
            );

            // Gadget decomposition: signed digit rows, own buffers.
            let q = moduli[0].value();
            let src: Vec<u64> = (0..limbs * n).map(|_| rng.gen_range(0..q)).collect();
            let levels = 3usize;
            let digit_rows: Vec<Vec<i64>> = backends
                .iter()
                .map(|b| {
                    let mut o = vec![0i64; limbs * levels * n];
                    b.decompose_batch(q, 7, levels, n, &src, &mut o);
                    o
                })
                .collect();
            for (b, g) in backends.iter().zip(&digit_rows) {
                assert_eq!(
                    g,
                    &digit_rows[0],
                    "decompose_batch n={n} limbs={limbs} ({})",
                    b.name()
                );
            }
        }
    }

    /// The pool's parallel-jobs counter makes fan-out observable even
    /// on a single-CPU host: each batched BConv / gadget-decomposition
    /// dispatch must split into the expected number of jobs, and
    /// below-threshold batches must not fan out at all.
    #[test]
    fn bconv_and_decompose_dispatch_expected_job_counts() {
        let mut rng = StdRng::seed_from_u64(0xD15C);
        let threaded = ThreadedBackend::with_config(4, 64);
        let (n, limbs, alpha, levels) = (256usize, 8usize, 4usize, 3usize);
        let moduli: Vec<Modulus> = ntt_primes(45, n, limbs)
            .iter()
            .map(|&p| Modulus::new(p).unwrap())
            .collect();
        let weights: Vec<u64> = moduli
            .iter()
            .flat_map(|m| {
                let p = m.value();
                (0..alpha).map(|_| rng.gen_range(0..p)).collect::<Vec<_>>()
            })
            .collect();
        let digits: Vec<u64> = (0..alpha * n).map(|_| rng.gen()).collect();
        let a_mod: Vec<u64> = moduli.iter().map(|m| rng.gen_range(0..m.value())).collect();
        let v: Vec<u64> = (0..n).map(|_| rng.gen_range(0..=alpha as u64)).collect();
        let mut out = vec![0u64; limbs * n];

        // row_groups(8 rows, 256 words, min_job 64) on 4 lanes:
        // k = (8*256/64).clamp(1, min(4, 8)) = 4 jobs per dispatch.
        let before = threaded.parallel_jobs_dispatched();
        threaded.convert_approx_batch(&moduli, &weights, &digits, &mut out);
        assert_eq!(threaded.parallel_jobs_dispatched() - before, 4);

        let before = threaded.parallel_jobs_dispatched();
        threaded.convert_exact_batch(&moduli, &weights, &a_mod, &v, &digits, &mut out);
        assert_eq!(threaded.parallel_jobs_dispatched() - before, 4);

        let src: Vec<u64> = (0..limbs * n)
            .map(|_| rng.gen_range(0..moduli[0].value()))
            .collect();
        let mut dig = vec![0i64; limbs * levels * n];
        let before = threaded.parallel_jobs_dispatched();
        threaded.decompose_batch(moduli[0].value(), 7, levels, n, &src, &mut dig);
        assert_eq!(threaded.parallel_jobs_dispatched() - before, 4);

        // Below the job-size threshold the passes fall back to the
        // sequential lane loops: no parallel jobs recorded.
        let seq = ThreadedBackend::with_config(4, 1 << 20);
        seq.convert_approx_batch(&moduli, &weights, &digits, &mut out);
        seq.convert_exact_batch(&moduli, &weights, &a_mod, &v, &digits, &mut out);
        seq.decompose_batch(moduli[0].value(), 7, levels, n, &src, &mut dig);
        assert_eq!(seq.parallel_jobs_dispatched(), 0);
    }

    /// The threaded per-row methods delegate to the lane loops, so a
    /// single-row call is bit-identical too (the sequential fallback).
    #[test]
    fn threaded_per_row_methods_match_scalar() {
        let mut rng = StdRng::seed_from_u64(0x7412);
        let threaded = ThreadedBackend::with_config(3, 64);
        let t = table(50, 128);
        let m = *t.modulus();
        let p = m.value();
        let row: Vec<u64> = (0..128).map(|_| rng.gen_range(0..2 * p)).collect();
        let (mut s, mut l) = (row.clone(), row.clone());
        SCALAR.forward_stages(&t, &mut s);
        threaded.forward_stages(&t, &mut l);
        assert_eq!(s, l);
        SCALAR.fold_4p_to_2p(&m, &mut s);
        threaded.fold_4p_to_2p(&m, &mut l);
        assert_eq!(s, l);
        SCALAR.inverse_stages(&t, &mut s);
        threaded.inverse_stages(&t, &mut l);
        assert_eq!(s, l);
    }
}
