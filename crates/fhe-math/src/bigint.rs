//! Minimal unsigned big integer, just large enough for CRT reconstruction
//! and modulus-product bookkeeping in RNS-CKKS.
//!
//! Only the operations the workspace needs are implemented: addition,
//! subtraction, comparison, multiplication by a word, halving, reduction
//! by repeated conditional subtraction, and conversion to `f64`. No
//! general division is required anywhere in the codebase.

/// An arbitrary-precision unsigned integer (little-endian 64-bit limbs).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct UBig {
    limbs: Vec<u64>, // little-endian, no trailing zeros
}

impl UBig {
    /// Zero.
    pub fn zero() -> Self {
        Self { limbs: Vec::new() }
    }

    /// Constructs from a single word.
    pub fn from_u64(x: u64) -> Self {
        if x == 0 {
            Self::zero()
        } else {
            Self { limbs: vec![x] }
        }
    }

    /// True if the value is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    fn trim(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }

    /// `self += other`.
    pub fn add_assign(&mut self, other: &UBig) {
        let n = self.limbs.len().max(other.limbs.len());
        self.limbs.resize(n, 0);
        let mut carry = 0u64;
        for i in 0..n {
            let b = other.limbs.get(i).copied().unwrap_or(0);
            let (s1, c1) = self.limbs[i].overflowing_add(b);
            let (s2, c2) = s1.overflowing_add(carry);
            self.limbs[i] = s2;
            carry = (c1 as u64) + (c2 as u64);
        }
        if carry > 0 {
            self.limbs.push(carry);
        }
    }

    /// `self -= other`.
    ///
    /// # Panics
    ///
    /// Panics if `other > self`.
    pub fn sub_assign(&mut self, other: &UBig) {
        assert!(*self >= *other, "UBig subtraction underflow");
        let mut borrow = 0u64;
        for i in 0..self.limbs.len() {
            let b = other.limbs.get(i).copied().unwrap_or(0);
            let (d1, c1) = self.limbs[i].overflowing_sub(b);
            let (d2, c2) = d1.overflowing_sub(borrow);
            self.limbs[i] = d2;
            borrow = (c1 as u64) + (c2 as u64);
        }
        debug_assert_eq!(borrow, 0);
        self.trim();
    }

    /// Returns `self * k`.
    pub fn mul_u64(&self, k: u64) -> UBig {
        if k == 0 || self.is_zero() {
            return UBig::zero();
        }
        let mut out = Vec::with_capacity(self.limbs.len() + 1);
        let mut carry = 0u128;
        for &l in &self.limbs {
            let prod = l as u128 * k as u128 + carry;
            out.push(prod as u64);
            carry = prod >> 64;
        }
        if carry > 0 {
            out.push(carry as u64);
        }
        UBig { limbs: out }
    }

    /// Returns `self / 2`, flooring.
    pub fn half(&self) -> UBig {
        let mut out = self.limbs.clone();
        let mut carry = 0u64;
        for l in out.iter_mut().rev() {
            let new_carry = *l & 1;
            *l = (*l >> 1) | (carry << 63);
            carry = new_carry;
        }
        let mut r = UBig { limbs: out };
        r.trim();
        r
    }

    /// `self mod m` where the quotient is known to be small, by repeated
    /// conditional subtraction. Used for CRT sums (at most `count` excess
    /// multiples).
    pub fn reduce_by(&mut self, m: &UBig) {
        while *self >= *m {
            self.sub_assign(m);
        }
    }

    /// Floor division by a word, returning the quotient.
    ///
    /// # Panics
    ///
    /// Panics if `d == 0`.
    pub fn div_u64(&self, d: u64) -> UBig {
        assert!(d != 0, "division by zero");
        let mut out = vec![0u64; self.limbs.len()];
        let mut rem = 0u128;
        for (i, &l) in self.limbs.iter().enumerate().rev() {
            let cur = (rem << 64) | l as u128;
            out[i] = (cur / d as u128) as u64;
            rem = cur % d as u128;
        }
        let mut r = UBig { limbs: out };
        r.trim();
        r
    }

    /// Remainder modulo a word-size modulus.
    pub fn rem_u64(&self, m: u64) -> u64 {
        let mut r = 0u128;
        for &l in self.limbs.iter().rev() {
            r = ((r << 64) | l as u128) % m as u128;
        }
        r as u64
    }

    /// Approximate conversion to `f64` (correct to f64 precision).
    pub fn to_f64(&self) -> f64 {
        let mut acc = 0.0f64;
        for &l in self.limbs.iter().rev() {
            acc = acc * 18446744073709551616.0 + l as f64;
        }
        acc
    }

    /// Number of significant bits.
    pub fn bits(&self) -> u32 {
        match self.limbs.last() {
            None => 0,
            Some(&top) => (self.limbs.len() as u32 - 1) * 64 + (64 - top.leading_zeros()),
        }
    }
}

impl PartialOrd for UBig {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for UBig {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        if self.limbs.len() != other.limbs.len() {
            return self.limbs.len().cmp(&other.limbs.len());
        }
        for (a, b) in self.limbs.iter().rev().zip(other.limbs.iter().rev()) {
            match a.cmp(b) {
                std::cmp::Ordering::Equal => continue,
                ord => return ord,
            }
        }
        std::cmp::Ordering::Equal
    }
}

impl std::fmt::Display for UBig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "UBig({} bits)", self.bits())
    }
}

/// Product of a list of word-size moduli.
pub fn product(moduli: impl IntoIterator<Item = u64>) -> UBig {
    let mut acc = UBig::from_u64(1);
    for m in moduli {
        acc = acc.mul_u64(m);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_sub_roundtrip() {
        let a = product([u64::MAX, u64::MAX - 1, 12345]);
        let b = product([987654321, 1 << 40]);
        let mut s = a.clone();
        s.add_assign(&b);
        assert!(s > a);
        s.sub_assign(&b);
        assert_eq!(s, a);
    }

    #[test]
    fn mul_and_rem() {
        let a = UBig::from_u64(1_000_000_007);
        let b = a.mul_u64(1_000_000_009);
        // (1e9+7)(1e9+9) mod 97
        let expect = ((1_000_000_007u128 * 1_000_000_009u128) % 97) as u64;
        assert_eq!(b.rem_u64(97), expect);
    }

    #[test]
    fn product_and_bits() {
        let p = product([1u64 << 35, 1 << 35, 1 << 35]);
        assert_eq!(p.bits(), 106);
        assert_eq!(p.rem_u64(7), {
            // 2^105 mod 7: 2^3=1 mod 7, 105 % 3 == 0 -> 1
            1
        });
    }

    #[test]
    fn half_matches_shift() {
        let p = product([0xdeadbeefcafebabe, 0x123456789abcdef]);
        let h = p.half();
        let mut twice = h.clone();
        twice.add_assign(&h);
        // p is even or odd; twice = p or p-1.
        let mut diff = p.clone();
        diff.sub_assign(&twice);
        assert!(diff.is_zero() || diff == UBig::from_u64(1));
    }

    #[test]
    fn reduce_by_small_quotient() {
        let m = product([(1 << 40) + 15, (1 << 41) + 21]);
        let mut x = m.mul_u64(5);
        x.add_assign(&UBig::from_u64(42));
        x.reduce_by(&m);
        assert_eq!(x, UBig::from_u64(42));
    }

    #[test]
    fn div_u64_inverts_mul() {
        let a = product([0xfeedface12345, 0x1b2c3d4e5f6a7, 99991]);
        let d = 1_000_003u64;
        let q = a.mul_u64(d).div_u64(d);
        assert_eq!(q, a);
        // Floor behaviour: (a*d + r)/d == a for r < d.
        let mut x = a.mul_u64(d);
        x.add_assign(&UBig::from_u64(d - 1));
        assert_eq!(x.div_u64(d), a);
    }

    #[test]
    fn to_f64_accuracy() {
        let x = UBig::from_u64(1 << 52);
        assert_eq!(x.to_f64(), (1u64 << 52) as f64);
        let big = product([1 << 50, 1 << 50]);
        let rel = (big.to_f64() - 2f64.powi(100)).abs() / 2f64.powi(100);
        assert!(rel < 1e-12);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_underflow_panics() {
        let mut a = UBig::from_u64(1);
        a.sub_assign(&UBig::from_u64(2));
    }
}
