//! Double-precision complex FFT.
//!
//! Two consumers in this workspace:
//!
//! * the CKKS canonical-embedding encoder/decoder (special FFT over the
//!   odd powers of the 2N-th root of unity), and
//! * the FFT-based TFHE external product that Morphling/Strix-style
//!   accelerators use — the baseline Trinity replaces with NTT (§II-B).
//!   Keeping a real FFT path lets the test suite quantify the
//!   approximation error the paper's NTT substitution eliminates.

/// A complex number in double precision.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Creates a complex number from parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// e^{i theta}.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        Self::new(theta.cos(), theta.sin())
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Self::new(self.re, -self.im)
    }

    /// Squared magnitude.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }
}

impl std::ops::Add for Complex {
    type Output = Complex;
    #[inline]
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl std::ops::Sub for Complex {
    type Output = Complex;
    #[inline]
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl std::ops::Mul for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl std::ops::Mul<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: f64) -> Complex {
        Complex::new(self.re * rhs, self.im * rhs)
    }
}

impl std::ops::Neg for Complex {
    type Output = Complex;
    #[inline]
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

/// Precomputed twiddle tables for power-of-two complex FFTs.
#[derive(Debug, Clone)]
pub struct FftPlan {
    n: usize,
    /// w^k = e^{-2 pi i k / n} for k in 0..n/2 (forward twiddles).
    twiddles: Vec<Complex>,
}

impl FftPlan {
    /// Creates a plan for an `n`-point FFT.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a power of two.
    pub fn new(n: usize) -> Self {
        assert!(
            n.is_power_of_two() && n >= 2,
            "n must be a power of two >= 2"
        );
        let twiddles = (0..n / 2)
            .map(|k| Complex::cis(-2.0 * std::f64::consts::PI * k as f64 / n as f64))
            .collect();
        Self { n, twiddles }
    }

    /// Transform size.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// In-place forward FFT: `X[k] = sum_j a[j] e^{-2 pi i jk / n}`.
    ///
    /// # Panics
    ///
    /// Panics if `a.len() != self.n()`.
    pub fn forward(&self, a: &mut [Complex]) {
        assert_eq!(a.len(), self.n);
        crate::util::bit_reverse_permute(a);
        let n = self.n;
        let mut len = 2usize;
        while len <= n {
            let half = len / 2;
            let step = n / len;
            for start in (0..n).step_by(len) {
                for k in 0..half {
                    let w = self.twiddles[k * step];
                    let u = a[start + k];
                    let v = a[start + k + half] * w;
                    a[start + k] = u + v;
                    a[start + k + half] = u - v;
                }
            }
            len <<= 1;
        }
    }

    /// In-place inverse FFT (scaled by 1/n).
    ///
    /// # Panics
    ///
    /// Panics if `a.len() != self.n()`.
    pub fn inverse(&self, a: &mut [Complex]) {
        assert_eq!(a.len(), self.n);
        for x in a.iter_mut() {
            *x = x.conj();
        }
        self.forward(a);
        let scale = 1.0 / self.n as f64;
        for x in a.iter_mut() {
            *x = x.conj() * scale;
        }
    }
}

/// Negacyclic multiplication of integer polynomials via the complex FFT,
/// with rounding back to integers — the approximate path TFHE
/// accelerators like Morphling use, which Trinity's NTT substitution
/// avoids (§II-B, §VII "Related Work").
///
/// Coefficients are interpreted as signed integers (centered), multiplied
/// in `C[X]/(X^n - i...)` via the folded-twist technique, and rounded.
/// Returns the rounded signed result; callers reduce into their modulus.
///
/// # Panics
///
/// Panics if `a.len() != b.len()` or the length is not a power of two.
pub fn negacyclic_mul_fft(a: &[i64], b: &[i64]) -> Vec<i64> {
    assert_eq!(a.len(), b.len());
    let n = a.len();
    assert!(n.is_power_of_two());
    // Twist by e^{i pi j / n} turns negacyclic into cyclic of length n.
    let plan = FftPlan::new(n);
    let twist = |v: &[i64]| -> Vec<Complex> {
        v.iter()
            .enumerate()
            .map(|(j, &x)| Complex::cis(std::f64::consts::PI * j as f64 / n as f64) * x as f64)
            .collect()
    };
    let mut fa = twist(a);
    let mut fb = twist(b);
    plan.forward(&mut fa);
    plan.forward(&mut fb);
    for i in 0..n {
        fa[i] = fa[i] * fb[i];
    }
    plan.inverse(&mut fa);
    fa.iter()
        .enumerate()
        .map(|(j, &c)| {
            let untwist = Complex::cis(-std::f64::consts::PI * j as f64 / n as f64);
            (c * untwist).re.round() as i64
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn fft_roundtrip() {
        let plan = FftPlan::new(64);
        let mut rng = StdRng::seed_from_u64(3);
        let orig: Vec<Complex> = (0..64)
            .map(|_| Complex::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
            .collect();
        let mut a = orig.clone();
        plan.forward(&mut a);
        plan.inverse(&mut a);
        for (x, y) in a.iter().zip(&orig) {
            assert!((x.re - y.re).abs() < 1e-10);
            assert!((x.im - y.im).abs() < 1e-10);
        }
    }

    #[test]
    fn fft_of_impulse_is_flat() {
        let plan = FftPlan::new(16);
        let mut a = vec![Complex::default(); 16];
        a[0] = Complex::new(1.0, 0.0);
        plan.forward(&mut a);
        for x in &a {
            assert!((x.re - 1.0).abs() < 1e-12 && x.im.abs() < 1e-12);
        }
    }

    #[test]
    // Schoolbook oracles index with i/j so the negacyclic wrap k = i + j
    // stays visible; iterator rewrites would obscure the index math.
    #[allow(clippy::needless_range_loop)]
    fn fft_matches_naive_dft() {
        let n = 32;
        let plan = FftPlan::new(n);
        let mut rng = StdRng::seed_from_u64(4);
        let a: Vec<Complex> = (0..n)
            .map(|_| Complex::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
            .collect();
        let mut fast = a.clone();
        plan.forward(&mut fast);
        for k in 0..n {
            let mut acc = Complex::default();
            for (j, &x) in a.iter().enumerate() {
                acc =
                    acc + x * Complex::cis(-2.0 * std::f64::consts::PI * (j * k) as f64 / n as f64);
            }
            assert!((fast[k].re - acc.re).abs() < 1e-9, "k={k}");
            assert!((fast[k].im - acc.im).abs() < 1e-9, "k={k}");
        }
    }

    #[test]
    // Schoolbook oracles index with i/j so the negacyclic wrap k = i + j
    // stays visible; iterator rewrites would obscure the index math.
    #[allow(clippy::needless_range_loop)]
    fn negacyclic_fft_matches_exact_small_coeffs() {
        let mut rng = StdRng::seed_from_u64(5);
        let n = 256;
        let a: Vec<i64> = (0..n).map(|_| rng.gen_range(-8..8)).collect();
        let b: Vec<i64> = (0..n).map(|_| rng.gen_range(-1024..1024)).collect();
        let fast = negacyclic_mul_fft(&a, &b);
        // Exact oracle in i128.
        let mut exact = vec![0i128; n];
        for i in 0..n {
            for j in 0..n {
                let k = i + j;
                let prod = a[i] as i128 * b[j] as i128;
                if k < n {
                    exact[k] += prod;
                } else {
                    exact[k - n] -= prod;
                }
            }
        }
        for i in 0..n {
            assert_eq!(fast[i] as i128, exact[i], "i={i}");
        }
    }

    #[test]
    // Schoolbook oracles index with i/j so the negacyclic wrap k = i + j
    // stays visible; iterator rewrites would obscure the index math.
    #[allow(clippy::needless_range_loop)]
    fn negacyclic_fft_error_grows_with_magnitude() {
        // Demonstrates the approximation error the paper's NTT substitution
        // eliminates: with ~40-bit operands the f64 FFT starts to round
        // incorrectly, while NTT stays exact at any magnitude.
        let mut rng = StdRng::seed_from_u64(6);
        let n = 1024;
        let a: Vec<i64> = (0..n)
            .map(|_| rng.gen_range(-(1 << 26)..(1 << 26)))
            .collect();
        let b: Vec<i64> = (0..n)
            .map(|_| rng.gen_range(-(1 << 26)..(1 << 26)))
            .collect();
        let fast = negacyclic_mul_fft(&a, &b);
        let mut exact = vec![0i128; n];
        for i in 0..n {
            for j in 0..n {
                let k = i + j;
                let prod = a[i] as i128 * b[j] as i128;
                if k < n {
                    exact[k] += prod;
                } else {
                    exact[k - n] -= prod;
                }
            }
        }
        let max_err = fast
            .iter()
            .zip(&exact)
            .map(|(&f, &e)| (f as i128 - e).unsigned_abs())
            .max()
            .unwrap();
        // f64 has 53 bits of mantissa; intermediate magnitudes here reach
        // ~2^57, so rounding error must be nonzero but stay small.
        assert!(max_err > 0, "expected visible FFT rounding error");
        assert!(max_err < 1 << 20, "error unexpectedly large: {max_err}");
    }
}
