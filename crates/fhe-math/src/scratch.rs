//! Reusable thread-local scratch buffers for transform hot paths.
//!
//! The constant-geometry and four-step NTTs, monomial multiplication,
//! automorphisms, and base conversion all need short-lived `Vec<u64>`
//! temporaries. Allocating them per call dominates the runtime of small
//! transforms, so this module leases buffers from a thread-local pool:
//! a lease pops a buffer (or creates one the first time), resizes it,
//! and returns it to the pool when the closure finishes. Nested leases
//! are fine — each pops its own buffer.

use std::cell::RefCell;

/// Upper bound on pooled buffers per thread; leases beyond this are
/// simply dropped (the pool never grows without bound).
const MAX_POOLED: usize = 16;

/// Upper bound on the **total capacity** (in words) the pool may retain
/// per thread — 16 MiB. The buffer count cap alone is not enough: one
/// era of huge leases (say, BConv digit buffers of `alpha * n` words on
/// every worker thread) would otherwise pin `MAX_POOLED` buffers of the
/// largest-ever size forever. A returned buffer that would push the
/// retained capacity past this cap is dropped instead, so oversized
/// buffers shed gradually as they come back.
const MAX_POOLED_WORDS: usize = 1 << 21;

thread_local! {
    static POOL: RefCell<Vec<Vec<u64>>> = const { RefCell::new(Vec::new()) };
}

/// Returns `buf` to this thread's pool unless doing so would exceed the
/// buffer-count or retained-capacity caps (the shrink policy: excess
/// capacity is released to the allocator rather than pinned).
fn give_back(buf: Vec<u64>) {
    POOL.with(|p| {
        let mut pool = p.borrow_mut();
        let retained: usize = pool.iter().map(|b| b.capacity()).sum();
        if pool.len() < MAX_POOLED && retained + buf.capacity() <= MAX_POOLED_WORDS {
            pool.push(buf);
        }
    });
}

/// Total capacity, in words, currently retained by this thread's pool.
/// Never exceeds `MAX_POOLED` buffers totalling 2^21 words —
/// introspection for the retention-cap tests.
pub fn retained_words() -> usize {
    POOL.with(|p| p.borrow().iter().map(|b| b.capacity()).sum())
}

/// Runs `f` with a zero-filled scratch buffer of length `len` leased
/// from the thread-local pool. After warm-up no allocation occurs as
/// long as `len` does not grow past the pooled capacity.
pub fn with_scratch<T>(len: usize, f: impl FnOnce(&mut [u64]) -> T) -> T {
    let mut buf = POOL.with(|p| p.borrow_mut().pop()).unwrap_or_default();
    buf.clear();
    buf.resize(len, 0);
    let out = f(&mut buf);
    give_back(buf);
    out
}

/// Like [`with_scratch`] but leases two independent buffers at once
/// (e.g. the ping-pong pair of the constant-geometry NTT).
pub fn with_scratch2<T>(len: usize, f: impl FnOnce(&mut [u64], &mut [u64]) -> T) -> T {
    with_scratch(len, |a| with_scratch(len, |b| f(a, b)))
}

/// Leases a buffer initialised to a **copy of `data`** (skipping the
/// zero-fill of [`with_scratch`], which a copy would overwrite anyway)
/// and runs `f(copy, data)` — the gather pattern of in-place
/// permutations: read the snapshot, write the original.
pub fn with_scratch_copy<T>(data: &mut [u64], f: impl FnOnce(&[u64], &mut [u64]) -> T) -> T {
    let mut buf = POOL.with(|p| p.borrow_mut().pop()).unwrap_or_default();
    buf.clear();
    buf.extend_from_slice(data);
    let out = f(&buf, data);
    give_back(buf);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffers_are_zeroed_and_reused() {
        with_scratch(64, |a| {
            assert_eq!(a.len(), 64);
            assert!(a.iter().all(|&x| x == 0));
            a[0] = 7;
        });
        // The next lease must see zeros again despite reuse.
        with_scratch(64, |a| {
            assert!(a.iter().all(|&x| x == 0));
        });
    }

    #[test]
    fn scratch_copy_snapshots_and_allows_inplace_writes() {
        let mut data = [1u64, 2, 3, 4];
        with_scratch_copy(&mut data, |snapshot, out| {
            assert_eq!(snapshot, &[1, 2, 3, 4]);
            // Reverse through the snapshot — the gather pattern.
            for (i, x) in out.iter_mut().enumerate() {
                *x = snapshot[3 - i];
            }
        });
        assert_eq!(data, [4, 3, 2, 1]);
        // The pooled buffer must not leak the copy into a zero-fill
        // lease.
        with_scratch(4, |a| assert!(a.iter().all(|&x| x == 0)));
    }

    #[test]
    fn retained_capacity_is_capped() {
        // A fresh thread gets a fresh thread-local pool, so the
        // assertions below see exactly what this test retained.
        std::thread::spawn(|| {
            // A lease beyond the capacity cap must not stay pinned:
            // returning it would blow the retention budget, so it is
            // dropped on return.
            with_scratch(MAX_POOLED_WORDS + 1, |a| a[0] = 1);
            assert_eq!(retained_words(), 0);
            // Ordinary leases still pool and reuse.
            with_scratch(1024, |a| a[0] = 1);
            let r = retained_words();
            assert!((1024..=MAX_POOLED_WORDS).contains(&r), "retained {r}");
            // A burst of leases respects both the count and the
            // capacity cap.
            for _ in 0..MAX_POOLED + 4 {
                with_scratch2(1024, |_, _| {});
            }
            assert!(retained_words() <= MAX_POOLED_WORDS);
        })
        .join()
        .unwrap();
    }

    #[test]
    fn nested_leases_are_independent() {
        with_scratch2(8, |a, b| {
            a[0] = 1;
            b[0] = 2;
            assert_ne!(a[0], b[0]);
        });
        with_scratch(16, |a| {
            with_scratch(4, |b| {
                a[15] = 3;
                b[3] = 4;
                assert_eq!(a.len(), 16);
                assert_eq!(b.len(), 4);
            });
        });
    }
}
