//! Reusable thread-local scratch buffers for transform hot paths.
//!
//! The constant-geometry and four-step NTTs, monomial multiplication,
//! automorphisms, and base conversion all need short-lived `Vec<u64>`
//! temporaries. Allocating them per call dominates the runtime of small
//! transforms, so this module leases buffers from a thread-local pool:
//! a lease pops a buffer (or creates one the first time), resizes it,
//! and returns it to the pool when the closure finishes. Nested leases
//! are fine — each pops its own buffer.

use std::cell::RefCell;

/// Upper bound on pooled buffers per thread; leases beyond this are
/// simply dropped (the pool never grows without bound).
const MAX_POOLED: usize = 16;

thread_local! {
    static POOL: RefCell<Vec<Vec<u64>>> = const { RefCell::new(Vec::new()) };
}

/// Runs `f` with a zero-filled scratch buffer of length `len` leased
/// from the thread-local pool. After warm-up no allocation occurs as
/// long as `len` does not grow past the pooled capacity.
pub fn with_scratch<T>(len: usize, f: impl FnOnce(&mut [u64]) -> T) -> T {
    let mut buf = POOL.with(|p| p.borrow_mut().pop()).unwrap_or_default();
    buf.clear();
    buf.resize(len, 0);
    let out = f(&mut buf);
    POOL.with(|p| {
        let mut pool = p.borrow_mut();
        if pool.len() < MAX_POOLED {
            pool.push(buf);
        }
    });
    out
}

/// Like [`with_scratch`] but leases two independent buffers at once
/// (e.g. the ping-pong pair of the constant-geometry NTT).
pub fn with_scratch2<T>(len: usize, f: impl FnOnce(&mut [u64], &mut [u64]) -> T) -> T {
    with_scratch(len, |a| with_scratch(len, |b| f(a, b)))
}

/// Leases a buffer initialised to a **copy of `data`** (skipping the
/// zero-fill of [`with_scratch`], which a copy would overwrite anyway)
/// and runs `f(copy, data)` — the gather pattern of in-place
/// permutations: read the snapshot, write the original.
pub fn with_scratch_copy<T>(data: &mut [u64], f: impl FnOnce(&[u64], &mut [u64]) -> T) -> T {
    let mut buf = POOL.with(|p| p.borrow_mut().pop()).unwrap_or_default();
    buf.clear();
    buf.extend_from_slice(data);
    let out = f(&buf, data);
    POOL.with(|p| {
        let mut pool = p.borrow_mut();
        if pool.len() < MAX_POOLED {
            pool.push(buf);
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffers_are_zeroed_and_reused() {
        with_scratch(64, |a| {
            assert_eq!(a.len(), 64);
            assert!(a.iter().all(|&x| x == 0));
            a[0] = 7;
        });
        // The next lease must see zeros again despite reuse.
        with_scratch(64, |a| {
            assert!(a.iter().all(|&x| x == 0));
        });
    }

    #[test]
    fn scratch_copy_snapshots_and_allows_inplace_writes() {
        let mut data = [1u64, 2, 3, 4];
        with_scratch_copy(&mut data, |snapshot, out| {
            assert_eq!(snapshot, &[1, 2, 3, 4]);
            // Reverse through the snapshot — the gather pattern.
            for (i, x) in out.iter_mut().enumerate() {
                *x = snapshot[3 - i];
            }
        });
        assert_eq!(data, [4, 3, 2, 1]);
        // The pooled buffer must not leak the copy into a zero-fill
        // lease.
        with_scratch(4, |a| assert!(a.iter().all(|&x| x == 0)));
    }

    #[test]
    fn nested_leases_are_independent() {
        with_scratch2(8, |a, b| {
            a[0] = 1;
            b[0] = 2;
            assert_ne!(a[0], b[0]);
        });
        with_scratch(16, |a| {
            with_scratch(4, |b| {
                a[15] = 3;
                b[3] = 4;
                assert_eq!(a.len(), 16);
                assert_eq!(b.len(), 4);
            });
        });
    }
}
