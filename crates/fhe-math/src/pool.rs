//! A small persistent worker pool for limb-parallel kernel passes.
//!
//! Trinity's hardware throughput comes from running many independent
//! limb/row passes at once (FAB's parallel NTT lanes, TREBUCHET's
//! per-tower RNS parallelism). The software counterpart is a handful of
//! long-lived worker threads that whole-limb-row jobs are sliced
//! across; [`crate::kernel::ThreadedBackend`] builds its batched passes
//! on this pool.
//!
//! The build environment is offline (no `rayon`), so the pool is
//! home-grown from `std::thread` + `std::sync::mpsc`:
//!
//! * **Persistent workers.** [`WorkerPool::new`] spawns `threads - 1`
//!   workers that live as long as the pool (for the process, for the
//!   pool behind the selected process-wide backend). Jobs are pulled
//!   from one shared injector channel, so several caller threads can
//!   dispatch into the same pool concurrently.
//! * **The caller is a worker too.** [`WorkerPool::run`] executes the
//!   first task inline on the calling thread, and while waiting for
//!   completions it *steals* queued jobs — a pool of `N` threads always
//!   has `N` lanes of compute, and a 1-thread pool is simply the
//!   sequential fallback.
//! * **Scoped borrows without `std::thread::scope`.** Tasks may borrow
//!   the caller's stack (the limb rows being transformed). `run` does
//!   not return until every dispatched job has either completed or
//!   been dropped unrun, which is what makes the internal lifetime
//!   erasure sound — see the safety comment in [`WorkerPool::run`].
//! * **Panic recovery.** A panicking job is caught on the worker, the
//!   worker survives, and the payload is re-raised on the caller after
//!   all sibling jobs of the dispatch have finished. All pool mutexes
//!   recover from poisoning, so one panicked kernel row cannot wedge
//!   the process-wide backend.
//!
//! Determinism: the pool imposes no ordering on job *execution*, but
//! every job owns a disjoint slice of the output, so results are
//! bit-identical to the sequential schedule regardless of interleaving.

use std::cell::Cell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, SendError, Sender, TryRecvError};
use std::sync::{mpsc, Arc, Mutex, PoisonError};
use std::thread;

/// Number of dispatch-attribution tags (see [`tag_dispatches`]). Tag
/// `0` is the untagged default; callers that want per-lane accounting
/// (e.g. a service scheduler's QoS lanes) claim tags `1..DISPATCH_TAGS`
/// by convention.
pub const DISPATCH_TAGS: usize = 8;

thread_local! {
    /// The dispatch tag of the *calling* thread: every fan-out this
    /// thread performs while the tag is set is attributed to that tag's
    /// per-pool counter.
    static DISPATCH_TAG: Cell<usize> = const { Cell::new(0) };
}

/// RAII guard restoring the previous dispatch tag of this thread when
/// dropped. Returned by [`tag_dispatches`].
#[derive(Debug)]
pub struct DispatchTagGuard {
    prev: usize,
}

impl Drop for DispatchTagGuard {
    fn drop(&mut self) {
        DISPATCH_TAG.with(|t| t.set(self.prev));
    }
}

/// Tags every pool fan-out performed by the current thread until the
/// returned guard drops. Fan-outs are attributed to the per-tag
/// counters readable via [`WorkerPool::parallel_jobs_dispatched_by_tag`],
/// so an audit log or starvation detector can see which lane's work
/// actually reached the parallel path.
///
/// # Panics
///
/// If `tag >= DISPATCH_TAGS`.
pub fn tag_dispatches(tag: usize) -> DispatchTagGuard {
    assert!(tag < DISPATCH_TAGS, "dispatch tag {tag} out of range");
    let prev = DISPATCH_TAG.with(|t| t.replace(tag));
    DispatchTagGuard { prev }
}

/// The dispatch tag currently set on this thread (0 when untagged).
#[inline]
pub fn current_dispatch_tag() -> usize {
    DISPATCH_TAG.with(|t| t.get())
}

/// A borrowed unit of work: one whole-limb row (or a row group) of a
/// batched kernel pass.
pub type Task<'a> = Box<dyn FnOnce() + Send + 'a>;

/// A task whose borrows have been erased to `'static` for the trip
/// through the injector channel. Only constructed inside
/// [`WorkerPool::run`], which guarantees the real lifetime.
type ErasedTask = Box<dyn FnOnce() + Send + 'static>;

/// One queued job: the erased task plus the completion channel of the
/// dispatch it belongs to.
struct Job {
    run: ErasedTask,
    done: Sender<thread::Result<()>>,
}

/// A persistent pool of kernel worker threads (see the module docs).
pub struct WorkerPool {
    /// Injector half of the shared job queue, serialised so concurrent
    /// dispatchers do not interleave their sends mid-batch.
    inject: Mutex<Sender<Job>>,
    /// Consumer half, shared by workers (blocking `recv`) and stealing
    /// callers (`try_recv`).
    queue: Arc<Mutex<Receiver<Job>>>,
    /// Total compute lanes: spawned workers + the calling thread.
    threads: usize,
    /// Cumulative count of jobs that went through the *parallel* path
    /// of [`Self::run`] (the inline first task plus every queued
    /// sibling). Sequential fallbacks do not count, so tests can assert
    /// a dispatch genuinely fanned out — observable parallelism even on
    /// a single-CPU host.
    parallel_jobs: AtomicU64,
    /// `parallel_jobs` split by the dispatching thread's tag (see
    /// [`tag_dispatches`]); index 0 collects untagged dispatches.
    parallel_jobs_by_tag: [AtomicU64; DISPATCH_TAGS],
    /// Dispatches (not jobs) currently inside the parallel path of
    /// [`Self::run`], per dispatching tag — the instantaneous
    /// in-flight gauge a multi-dispatch service reads to see which
    /// lanes genuinely overlap on the pool.
    in_flight_by_tag: [AtomicU64; DISPATCH_TAGS],
    /// High-water mark of `in_flight_by_tag` over the pool's lifetime.
    in_flight_peak_by_tag: [AtomicU64; DISPATCH_TAGS],
    /// Jobs currently sitting in the injector queue (sent but not yet
    /// received by a worker or stolen by a caller). A saturation
    /// signal for admission control; inline shares never queue and are
    /// not counted.
    depth: Arc<AtomicU64>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("threads", &self.threads)
            .finish()
    }
}

fn worker_loop(queue: Arc<Mutex<Receiver<Job>>>, depth: Arc<AtomicU64>) {
    loop {
        // Hold the queue lock only for the blocking recv; an idle
        // worker parked here hands the lock back the moment a job
        // arrives.
        let job = {
            let guard = queue.lock().unwrap_or_else(PoisonError::into_inner);
            guard.recv()
        };
        match job {
            Ok(Job { run, done }) => {
                depth.fetch_sub(1, Ordering::Relaxed);
                // A panicking kernel row must not kill the worker: catch
                // it and ship the payload back to the dispatching caller.
                let result = catch_unwind(AssertUnwindSafe(run));
                let _ = done.send(result);
            }
            // Injector dropped: the pool is being torn down.
            Err(_) => break,
        }
    }
}

impl WorkerPool {
    /// Creates a pool with `threads` total compute lanes (the calling
    /// thread counts as one, so `threads - 1` workers are spawned;
    /// `threads <= 1` spawns none and [`Self::run`] degenerates to the
    /// sequential loop).
    ///
    /// Workers are named `trinity-kernel-N` and live until the pool is
    /// dropped.
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let (tx, rx) = mpsc::channel::<Job>();
        let queue = Arc::new(Mutex::new(rx));
        let depth = Arc::new(AtomicU64::new(0));
        let mut spawned = 0usize;
        for i in 0..threads - 1 {
            let q = Arc::clone(&queue);
            let d = Arc::clone(&depth);
            match thread::Builder::new()
                .name(format!("trinity-kernel-{i}"))
                .spawn(move || worker_loop(q, d))
            {
                Ok(_) => spawned += 1,
                // Thread-starved environment: degrade to fewer lanes
                // rather than failing construction.
                Err(_) => break,
            }
        }
        Self {
            inject: Mutex::new(tx),
            queue,
            threads: spawned + 1,
            parallel_jobs: AtomicU64::new(0),
            parallel_jobs_by_tag: std::array::from_fn(|_| AtomicU64::new(0)),
            in_flight_by_tag: std::array::from_fn(|_| AtomicU64::new(0)),
            in_flight_peak_by_tag: std::array::from_fn(|_| AtomicU64::new(0)),
            depth,
        }
    }

    /// Total compute lanes (spawned workers + the calling thread).
    #[inline]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Cumulative number of jobs dispatched through the parallel path
    /// of [`Self::run`] over this pool's lifetime (inline share
    /// included; sequential fallbacks excluded). Diff before/after a
    /// call to assert that a batched pass actually fanned out.
    #[inline]
    pub fn parallel_jobs_dispatched(&self) -> u64 {
        self.parallel_jobs.load(Ordering::Relaxed)
    }

    /// [`Self::parallel_jobs_dispatched`] restricted to fan-outs whose
    /// dispatching thread carried `tag` (see [`tag_dispatches`]); tag 0
    /// is the untagged remainder. The per-tag counters always sum to
    /// the total.
    ///
    /// # Panics
    ///
    /// If `tag >= DISPATCH_TAGS`.
    #[inline]
    pub fn parallel_jobs_dispatched_by_tag(&self, tag: usize) -> u64 {
        self.parallel_jobs_by_tag[tag].load(Ordering::Relaxed)
    }

    /// Dispatches currently inside the parallel path of [`Self::run`]
    /// whose dispatching thread carried `tag` — an instantaneous gauge
    /// (0 whenever the pool is idle). Sequential fallbacks are not
    /// counted, matching [`Self::parallel_jobs_dispatched`].
    ///
    /// # Panics
    ///
    /// If `tag >= DISPATCH_TAGS`.
    #[inline]
    pub fn parallel_in_flight_by_tag(&self, tag: usize) -> u64 {
        self.in_flight_by_tag[tag].load(Ordering::Relaxed)
    }

    /// High-water mark of [`Self::parallel_in_flight_by_tag`] over the
    /// pool's lifetime: how many `tag`-tagged dispatches were ever
    /// inside the parallel path at once. A service with several
    /// in-flight groups on one lane reads ≥ 2 here when its dispatches
    /// genuinely overlapped on the pool.
    ///
    /// # Panics
    ///
    /// If `tag >= DISPATCH_TAGS`.
    #[inline]
    pub fn parallel_in_flight_peak_by_tag(&self, tag: usize) -> u64 {
        self.in_flight_peak_by_tag[tag].load(Ordering::Relaxed)
    }

    /// Jobs currently queued in the injector (sent to workers but not
    /// yet picked up or stolen). A point-in-time saturation gauge —
    /// inline shares never queue, so an idle pool reads 0.
    #[inline]
    pub fn queue_depth(&self) -> u64 {
        self.depth.load(Ordering::Relaxed)
    }

    /// Runs all `tasks` to completion, distributing them over the pool.
    ///
    /// The first task runs inline on the calling thread; the rest are
    /// queued for workers, and the caller steals queued jobs while it
    /// waits so no lane idles. Tasks must write to **disjoint** data —
    /// the pool guarantees completion, not ordering.
    ///
    /// # Panics
    ///
    /// If any task panics, the first payload is re-raised on the caller
    /// — after every other task of this dispatch has finished, so
    /// borrowed captures never outlive the call. The pool itself
    /// survives (worker threads catch job panics).
    pub fn run(&self, tasks: Vec<Task<'_>>) {
        let mut tasks = tasks.into_iter();
        let Some(first) = tasks.next() else { return };
        if self.threads == 1 || tasks.len() == 0 {
            first();
            for t in tasks {
                t();
            }
            return;
        }

        let tag = current_dispatch_tag();
        let now = self.in_flight_by_tag[tag].fetch_add(1, Ordering::Relaxed) + 1;
        self.in_flight_peak_by_tag[tag].fetch_max(now, Ordering::Relaxed);

        let (done_tx, done_rx) = mpsc::channel::<thread::Result<()>>();
        let mut outstanding = 0usize;
        {
            // trinity-lint: allow(guard-across-dispatch): the injector lock
            // IS the dispatch serialisation point — workers only receive
            // from the queue and never take this lock, so holding it
            // across the sends cannot deadlock; dropping it per-send
            // would interleave concurrent dispatches instead.
            let inject = self.inject.lock().unwrap_or_else(PoisonError::into_inner);
            for t in tasks {
                // SAFETY: the borrows captured by `t` outlive this call
                // frame, and this function does not return before every
                // dispatched job is finished: `finish_dispatch` blocks
                // until each job has either (a) sent its completion —
                // which happens strictly after the closure ran and was
                // consumed — or (b) been dropped unrun, observed as the
                // completion channel disconnecting once every `done`
                // clone (owned by the in-flight `Job`s) is gone. Hence
                // no erased borrow is ever dereferenced after `run`
                // returns, and the `'static` lie is never observable.
                let run = unsafe { std::mem::transmute::<Task<'_>, ErasedTask>(t) };
                match inject.send(Job {
                    run,
                    done: done_tx.clone(),
                }) {
                    Ok(()) => {
                        outstanding += 1;
                        self.depth.fetch_add(1, Ordering::Relaxed);
                    }
                    // No live worker (cannot happen while the pool owns
                    // the injector, but be safe): run inline instead.
                    Err(SendError(job)) => (job.run)(),
                }
            }
        }
        drop(done_tx);
        // The inline first task plus every queued sibling went through
        // the parallel path; attribute the fan-out to the dispatching
        // thread's tag as well.
        self.parallel_jobs
            .fetch_add(outstanding as u64 + 1, Ordering::Relaxed);
        self.parallel_jobs_by_tag[tag].fetch_add(outstanding as u64 + 1, Ordering::Relaxed);

        // Run our own share, deferring any panic until the dispatch has
        // fully drained (the borrows above must stay alive until then).
        let mine = catch_unwind(AssertUnwindSafe(first));
        let worker_panic = self.finish_dispatch(&done_rx, outstanding);
        self.in_flight_by_tag[tag].fetch_sub(1, Ordering::Relaxed);
        if let Err(payload) = mine {
            resume_unwind(payload);
        }
        if let Some(payload) = worker_panic {
            resume_unwind(payload);
        }
    }

    /// Waits for `outstanding` completions, stealing queued jobs while
    /// workers are busy. Returns the first panic payload observed.
    fn finish_dispatch(
        &self,
        done_rx: &Receiver<thread::Result<()>>,
        mut outstanding: usize,
    ) -> Option<Box<dyn std::any::Any + Send>> {
        let mut first_panic = None;
        let record = |r: thread::Result<()>, slot: &mut Option<_>| {
            if let Err(p) = r {
                slot.get_or_insert(p);
            }
        };
        while outstanding > 0 {
            // Drain completions that are already in.
            match done_rx.try_recv() {
                Ok(r) => {
                    outstanding -= 1;
                    record(r, &mut first_panic);
                    continue;
                }
                Err(TryRecvError::Disconnected) => break,
                Err(TryRecvError::Empty) => {}
            }
            // All workers busy? Steal a queued job (possibly from a
            // concurrent dispatch — its completion goes to *its* `done`
            // channel, so accounting stays correct) instead of idling.
            let stolen = self
                .queue
                .try_lock()
                .ok()
                .and_then(|guard| guard.try_recv().ok());
            if let Some(Job { run, done }) = stolen {
                self.depth.fetch_sub(1, Ordering::Relaxed);
                let result = catch_unwind(AssertUnwindSafe(run));
                let _ = done.send(result);
                continue;
            }
            // Nothing to steal: block until one of ours completes.
            match done_rx.recv() {
                Ok(r) => {
                    outstanding -= 1;
                    record(r, &mut first_panic);
                }
                // Disconnected: every `done` clone is gone, so every job
                // of this dispatch has completed or been dropped unrun.
                Err(_) => break,
            }
        }
        first_panic
    }

    /// Partitions `0..len` into at most [`Self::threads`] contiguous,
    /// balanced, non-empty ranges of at least `min_chunk` items and
    /// runs `f` on each in parallel; below the threshold (or on a
    /// 1-thread pool) it simply calls `f(0..len)` inline — the
    /// sequential fallback. The single-buffer (intra-row) counterpart
    /// of the row-group slicing in
    /// [`crate::kernel::ThreadedBackend`]'s batch passes.
    pub fn run_partition<F>(&self, len: usize, min_chunk: usize, f: F)
    where
        F: Fn(std::ops::Range<usize>) + Sync,
    {
        if len == 0 {
            return;
        }
        // Never more chunks than items: every range stays non-empty
        // and in bounds even when `threads` exceeds `len`.
        let chunks = (len / min_chunk.max(1)).clamp(1, self.threads.min(len));
        if chunks <= 1 || self.threads == 1 {
            f(0..len);
            return;
        }
        let (base, extra) = (len / chunks, len % chunks);
        let f = &f;
        let mut start = 0usize;
        let tasks: Vec<Task<'_>> = (0..chunks)
            .map(|i| {
                let size = base + usize::from(i < extra);
                let range = start..start + size;
                start += size;
                Box::new(move || f(range)) as Task<'_>
            })
            .collect();
        debug_assert_eq!(start, len);
        self.run(tasks);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn runs_every_task_exactly_once() {
        let pool = WorkerPool::new(4);
        let hits = AtomicUsize::new(0);
        let mut out = vec![0u64; 64];
        let tasks: Vec<Task<'_>> = out
            .chunks_mut(8)
            .enumerate()
            .map(|(i, chunk)| {
                let hits = &hits;
                Box::new(move || {
                    for (j, x) in chunk.iter_mut().enumerate() {
                        *x = (i * 8 + j) as u64;
                    }
                    hits.fetch_add(1, Ordering::SeqCst);
                }) as Task<'_>
            })
            .collect();
        pool.run(tasks);
        assert_eq!(hits.load(Ordering::SeqCst), 8);
        assert!(out.iter().enumerate().all(|(i, &x)| x == i as u64));
    }

    #[test]
    fn single_thread_pool_is_sequential_fallback() {
        let pool = WorkerPool::new(1);
        assert_eq!(pool.threads(), 1);
        let mut out = [0u32; 10];
        let tasks: Vec<Task<'_>> = out
            .chunks_mut(2)
            .map(|c| Box::new(move || c.iter_mut().for_each(|x| *x += 1)) as Task<'_>)
            .collect();
        pool.run(tasks);
        assert!(out.iter().all(|&x| x == 1));
    }

    #[test]
    fn run_partition_covers_range_without_overlap() {
        // Pools wider than the item count must still produce valid,
        // non-empty ranges (regression: chunk count above
        // ceil(len/per) used to yield ranges with start > len).
        for threads in [3usize, 8] {
            let pool = WorkerPool::new(threads);
            for (len, min_chunk) in [(0usize, 8), (5, 8), (10, 1), (64, 8), (65, 8), (1000, 1)] {
                let seen: Vec<AtomicUsize> = (0..len).map(|_| AtomicUsize::new(0)).collect();
                pool.run_partition(len, min_chunk, |range| {
                    // Slice to prove the range is in bounds, not just
                    // iterable.
                    for c in &seen[range] {
                        c.fetch_add(1, Ordering::SeqCst);
                    }
                });
                assert!(
                    seen.iter().all(|c| c.load(Ordering::SeqCst) == 1),
                    "threads={threads} len={len} min_chunk={min_chunk}"
                );
            }
        }
    }

    #[test]
    fn panicking_task_propagates_and_pool_survives() {
        let pool = WorkerPool::new(3);
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
            let tasks: Vec<Task<'_>> = (0..6)
                .map(|i| {
                    Box::new(move || {
                        if i == 4 {
                            panic!("injected kernel-row panic");
                        }
                    }) as Task<'_>
                })
                .collect();
            pool.run(tasks);
        }));
        let payload = caught.expect_err("panic must propagate to the caller");
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .unwrap_or("<non-str payload>");
        assert!(msg.contains("injected"), "unexpected payload {msg:?}");

        // The workers caught the panic and are still serving jobs.
        let hits = AtomicUsize::new(0);
        let tasks: Vec<Task<'_>> = (0..6)
            .map(|_| {
                let hits = &hits;
                Box::new(move || {
                    hits.fetch_add(1, Ordering::SeqCst);
                }) as Task<'_>
            })
            .collect();
        pool.run(tasks);
        assert_eq!(hits.load(Ordering::SeqCst), 6);
    }

    #[test]
    fn parallel_jobs_counter_tracks_fanout_only() {
        let pool = WorkerPool::new(3);
        assert_eq!(pool.parallel_jobs_dispatched(), 0);
        // A lone task runs sequentially: not counted.
        pool.run(vec![Box::new(|| {}) as Task<'_>]);
        assert_eq!(pool.parallel_jobs_dispatched(), 0);
        // A 5-task dispatch fans out: all 5 jobs counted (inline share
        // included).
        let tasks: Vec<Task<'_>> = (0..5).map(|_| Box::new(|| {}) as Task<'_>).collect();
        pool.run(tasks);
        assert_eq!(pool.parallel_jobs_dispatched(), 5);
        // A 1-thread pool never fans out.
        let seq = WorkerPool::new(1);
        let tasks: Vec<Task<'_>> = (0..4).map(|_| Box::new(|| {}) as Task<'_>).collect();
        seq.run(tasks);
        assert_eq!(seq.parallel_jobs_dispatched(), 0);
    }

    #[test]
    fn dispatch_tags_attribute_fanout_per_lane() {
        let pool = WorkerPool::new(3);
        let fan = |n: usize| {
            let tasks: Vec<Task<'_>> = (0..n).map(|_| Box::new(|| {}) as Task<'_>).collect();
            pool.run(tasks);
        };
        // Untagged dispatch lands on tag 0.
        fan(5);
        assert_eq!(pool.parallel_jobs_dispatched_by_tag(0), 5);
        // Tagged dispatches land on their tag; the guard restores the
        // previous tag on drop (including across nesting).
        {
            let _lane = tag_dispatches(2);
            fan(4);
            {
                let _inner = tag_dispatches(3);
                fan(3);
            }
            fan(2);
        }
        fan(6);
        assert_eq!(pool.parallel_jobs_dispatched_by_tag(2), 4 + 2);
        assert_eq!(pool.parallel_jobs_dispatched_by_tag(3), 3);
        assert_eq!(pool.parallel_jobs_dispatched_by_tag(0), 5 + 6);
        // Per-tag counters sum to the total.
        let by_tag: u64 = (0..DISPATCH_TAGS)
            .map(|t| pool.parallel_jobs_dispatched_by_tag(t))
            .sum();
        assert_eq!(by_tag, pool.parallel_jobs_dispatched());
        // Sequential fallbacks are not attributed anywhere.
        let _lane = tag_dispatches(1);
        fan(1);
        assert_eq!(pool.parallel_jobs_dispatched_by_tag(1), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn dispatch_tag_out_of_range_panics() {
        let _ = tag_dispatches(DISPATCH_TAGS);
    }

    #[test]
    fn in_flight_gauge_tracks_overlapping_dispatches() {
        let pool = WorkerPool::new(3);
        assert_eq!(pool.parallel_in_flight_by_tag(0), 0);
        assert_eq!(pool.parallel_in_flight_peak_by_tag(2), 0);
        // A dispatch observes itself in flight from inside its own
        // tasks, and the gauge returns to zero once it drains.
        let seen = AtomicUsize::new(0);
        {
            let _lane = tag_dispatches(2);
            let tasks: Vec<Task<'_>> = (0..4)
                .map(|_| {
                    let seen = &seen;
                    let pool = &pool;
                    Box::new(move || {
                        seen.fetch_max(
                            pool.parallel_in_flight_by_tag(2) as usize,
                            Ordering::SeqCst,
                        );
                    }) as Task<'_>
                })
                .collect();
            pool.run(tasks);
        }
        assert_eq!(seen.load(Ordering::SeqCst), 1);
        assert_eq!(pool.parallel_in_flight_by_tag(2), 0);
        assert_eq!(pool.parallel_in_flight_peak_by_tag(2), 1);
        // Two dispatchers racing on different tags: each peak records
        // at least its own dispatch, and both gauges return to zero.
        thread::scope(|s| {
            for tag in [3usize, 4] {
                let pool = &pool;
                s.spawn(move || {
                    let _lane = tag_dispatches(tag);
                    for _ in 0..8 {
                        let tasks: Vec<Task<'_>> =
                            (0..4).map(|_| Box::new(|| {}) as Task<'_>).collect();
                        pool.run(tasks);
                    }
                });
            }
        });
        for tag in [3usize, 4] {
            assert_eq!(pool.parallel_in_flight_by_tag(tag), 0, "tag {tag}");
            assert_eq!(pool.parallel_in_flight_peak_by_tag(tag), 1, "tag {tag}");
        }
        // Sequential fallbacks never touch the gauge.
        let seq = WorkerPool::new(1);
        seq.run((0..4).map(|_| Box::new(|| {}) as Task<'_>).collect());
        assert_eq!(seq.parallel_in_flight_peak_by_tag(0), 0);
    }

    #[test]
    fn queue_depth_returns_to_zero_after_dispatch() {
        let pool = WorkerPool::new(4);
        assert_eq!(pool.queue_depth(), 0);
        // While a dispatch is in flight the gauge is transiently
        // positive; after `run` returns every queued job was consumed
        // (by a worker or stolen by the caller), so it must read 0.
        let observed_positive = AtomicUsize::new(0);
        for _ in 0..8 {
            let tasks: Vec<Task<'_>> = (0..6)
                .map(|_| {
                    let observed = &observed_positive;
                    let pool = &pool;
                    Box::new(move || {
                        if pool.queue_depth() > 0 {
                            observed.fetch_add(1, Ordering::SeqCst);
                        }
                    }) as Task<'_>
                })
                .collect();
            pool.run(tasks);
            assert_eq!(pool.queue_depth(), 0);
        }
        // Not asserted > 0: on a loaded host the workers may drain the
        // queue before any job samples the gauge.
    }

    #[test]
    fn concurrent_dispatchers_share_one_pool() {
        let pool = WorkerPool::new(3);
        let total = AtomicUsize::new(0);
        thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..8 {
                        let total = &total;
                        let tasks: Vec<Task<'_>> = (0..5)
                            .map(|_| {
                                Box::new(move || {
                                    total.fetch_add(1, Ordering::SeqCst);
                                }) as Task<'_>
                            })
                            .collect();
                        pool.run(tasks);
                    }
                });
            }
        });
        assert_eq!(total.load(Ordering::SeqCst), 4 * 8 * 5);
    }
}
