//! Residue Number System (RNS) bases and fast base conversion.
//!
//! RNS-CKKS (§II-A of the Trinity paper) decomposes a wide coefficient
//! modulus `Q = prod q_i` into word-size limbs. The `BConv` kernel —
//! one of the paper's core arithmetic kernels, executed on Trinity's CU
//! systolic arrays — is the fast base conversion of Halevi–Polyakov–Shoup:
//!
//! ```text
//! BConv_{A -> B}(x)_j = sum_i [ x_i * (A/a_i)^{-1} ]_{a_i} * |A/a_i|_{b_j}  (mod b_j)
//! ```
//!
//! which is exactly an `(alpha x N) x (alpha x l)` matrix product — the
//! reason it maps onto a MAC array (§III-C). The approximate variant may
//! overshoot by a small multiple of `A`; [`BasisConverter::convert_exact`]
//! removes the overshoot with a floating-point correction.

use std::sync::Arc;

use crate::bigint::{product, UBig};
use crate::modulus::Modulus;
use crate::ntt::NttTable;

/// An ordered RNS basis: distinct NTT-friendly primes with shared ring
/// degree, with one NTT table per prime.
#[derive(Debug, Clone)]
pub struct RnsBasis {
    moduli: Vec<Modulus>,
    tables: Vec<Arc<NttTable>>,
    n: usize,
}

impl RnsBasis {
    /// Builds a basis over `primes` for ring degree `n`.
    ///
    /// # Panics
    ///
    /// Panics if primes are not distinct, or any prime is not
    /// NTT-friendly for `n`.
    pub fn new(primes: &[u64], n: usize) -> Self {
        let mut seen = std::collections::HashSet::new();
        for &p in primes {
            assert!(seen.insert(p), "duplicate prime {p} in RNS basis");
        }
        let moduli: Vec<Modulus> = primes
            .iter()
            .map(|&p| Modulus::new(p).expect("prime in range"))
            .collect();
        let tables = moduli
            .iter()
            .map(|&m| Arc::new(NttTable::new(m, n)))
            .collect();
        Self { moduli, tables, n }
    }

    /// Ring degree.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of limbs.
    #[inline]
    pub fn len(&self) -> usize {
        self.moduli.len()
    }

    /// True when the basis has no limbs.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.moduli.is_empty()
    }

    /// The moduli, in order.
    #[inline]
    pub fn moduli(&self) -> &[Modulus] {
        &self.moduli
    }

    /// The NTT tables, in order (aligned with [`Self::moduli`]).
    #[inline]
    pub fn tables(&self) -> &[Arc<NttTable>] {
        &self.tables
    }

    /// Modulus of limb `i`.
    #[inline]
    pub fn modulus(&self, i: usize) -> &Modulus {
        &self.moduli[i]
    }

    /// NTT table of limb `i`.
    #[inline]
    pub fn table(&self, i: usize) -> &Arc<NttTable> {
        &self.tables[i]
    }

    /// Product of all moduli as a big integer.
    pub fn modulus_product(&self) -> UBig {
        product(self.moduli.iter().map(|m| m.value()))
    }

    /// Returns the sub-basis consisting of the first `k` limbs.
    ///
    /// # Panics
    ///
    /// Panics if `k > self.len()` or `k == 0`.
    pub fn prefix(&self, k: usize) -> RnsBasis {
        assert!(k > 0 && k <= self.len());
        Self {
            moduli: self.moduli[..k].to_vec(),
            tables: self.tables[..k].to_vec(),
            n: self.n,
        }
    }

    /// Returns a sub-basis over the given limb indices.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn select(&self, idx: &[usize]) -> RnsBasis {
        Self {
            moduli: idx.iter().map(|&i| self.moduli[i]).collect(),
            tables: idx.iter().map(|&i| self.tables[i].clone()).collect(),
            n: self.n,
        }
    }

    /// Concatenates two bases (over the same ring degree).
    ///
    /// # Panics
    ///
    /// Panics if ring degrees differ or primes collide.
    pub fn concat(&self, other: &RnsBasis) -> RnsBasis {
        assert_eq!(self.n, other.n);
        let primes: Vec<u64> = self
            .moduli
            .iter()
            .chain(other.moduli.iter())
            .map(|m| m.value())
            .collect();
        let mut b = RnsBasis::new(&primes, self.n);
        // Reuse existing tables rather than rebuilding.
        b.tables = self
            .tables
            .iter()
            .chain(other.tables.iter())
            .cloned()
            .collect();
        b
    }

    /// CRT-reconstructs the centered value of the residue vector `x`
    /// (one residue per limb) as an `f64`.
    ///
    /// The result is exact to f64 precision for values up to ~2^52 and
    /// approximate beyond; CKKS decoding divides by the scale right after,
    /// so the relative error is what matters.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.len()`.
    pub fn crt_to_centered_f64(&self, x: &[u64]) -> f64 {
        assert_eq!(x.len(), self.len());
        let q = self.modulus_product();
        // v = sum_i c_i * (Q/q_i) mod Q with c_i = [x_i * (Q/q_i)^{-1}]_{q_i}
        let mut v = UBig::zero();
        for (i, m) in self.moduli.iter().enumerate() {
            let qi = m.value();
            // Q/q_i mod q_i:
            let mut q_hat_mod = 1u64;
            for (j, mj) in self.moduli.iter().enumerate() {
                if j != i {
                    q_hat_mod = m.mul(q_hat_mod, m.reduce(mj.value()));
                }
            }
            let q_hat_inv = m.inv(q_hat_mod).expect("coprime moduli");
            let c = m.mul(m.reduce(x[i]), q_hat_inv);
            // Q/q_i as UBig:
            let mut q_over = UBig::from_u64(1);
            for (j, mj) in self.moduli.iter().enumerate() {
                if j != i {
                    q_over = q_over.mul_u64(mj.value());
                }
            }
            v.add_assign(&q_over.mul_u64(c));
            let _ = qi;
        }
        v.reduce_by(&q);
        let half = q.half();
        if v > half {
            let mut neg = q;
            neg.sub_assign(&v);
            -neg.to_f64()
        } else {
            v.to_f64()
        }
    }
}

/// Precomputed fast base conversion from basis `A` to basis `B`.
#[derive(Debug, Clone)]
pub struct BasisConverter {
    from: RnsBasis,
    to: RnsBasis,
    /// `(A/a_i)^{-1} mod a_i`, Shoup pairs per source limb.
    a_hat_inv: Vec<(u64, u64)>,
    /// `|A/a_i| mod b_j`, flat row-major per **output** limb
    /// (`[j*alpha + i]`) — the weight layout
    /// [`crate::kernel::KernelBackend::convert_approx_batch`] consumes,
    /// so the threaded backend can slice contiguous output-limb rows.
    a_hat_mod_b: Vec<u64>,
    /// `A mod b_j` for the exact correction.
    a_mod_b: Vec<u64>,
    /// `1/a_i` as f64, for the overshoot estimate.
    a_inv_f64: Vec<f64>,
}

impl BasisConverter {
    /// Precomputes conversion tables from `from` to `to`.
    ///
    /// # Panics
    ///
    /// Panics if the two bases share a prime (conversion would be
    /// ill-defined) or differ in ring degree.
    pub fn new(from: &RnsBasis, to: &RnsBasis) -> Self {
        assert_eq!(from.n(), to.n(), "ring degree mismatch");
        // The conversion kernels accumulate `alpha` products of two
        // sub-2^62 residues in a u128: each term is < 2^124, so the sum
        // stays below 2^128 only for alpha <= 16. Real digit bases are
        // far smaller; enforce the bound at construction.
        assert!(
            from.len() <= 16,
            "source basis too wide ({} limbs) for u128 BConv accumulation",
            from.len()
        );
        for a in from.moduli() {
            for b in to.moduli() {
                assert_ne!(a.value(), b.value(), "bases must be disjoint");
            }
        }
        let alpha = from.len();
        let mut a_hat_inv = Vec::with_capacity(alpha);
        let mut a_hat_mod_b = vec![0u64; to.len() * alpha];
        for i in 0..alpha {
            let ai = from.modulus(i);
            let mut hat_mod_ai = 1u64;
            for (j, aj) in from.moduli().iter().enumerate() {
                if j != i {
                    hat_mod_ai = ai.mul(hat_mod_ai, ai.reduce(aj.value()));
                }
            }
            let inv = ai.inv(hat_mod_ai).expect("coprime moduli");
            a_hat_inv.push((inv, ai.shoup(inv)));

            for (j, bj) in to.moduli().iter().enumerate() {
                let mut hat_mod_bj = 1u64;
                for (j2, aj) in from.moduli().iter().enumerate() {
                    if j2 != i {
                        hat_mod_bj = bj.mul(hat_mod_bj, bj.reduce(aj.value()));
                    }
                }
                a_hat_mod_b[j * alpha + i] = hat_mod_bj;
            }
        }
        let a_mod_b = to
            .moduli()
            .iter()
            .map(|bj| {
                let mut acc = 1u64;
                for ai in from.moduli() {
                    acc = bj.mul(acc, bj.reduce(ai.value()));
                }
                acc
            })
            .collect();
        let a_inv_f64 = from
            .moduli()
            .iter()
            .map(|m| 1.0 / m.value() as f64)
            .collect();
        Self {
            from: from.clone(),
            to: to.clone(),
            a_hat_inv,
            a_hat_mod_b,
            a_mod_b,
            a_inv_f64,
        }
    }

    /// Source basis.
    pub fn from_basis(&self) -> &RnsBasis {
        &self.from
    }

    /// Destination basis.
    pub fn to_basis(&self) -> &RnsBasis {
        &self.to
    }

    /// Approximate fast base conversion of a coefficient vector.
    ///
    /// `src` is a **flat, limb-major** buffer of `alpha * n` residues
    /// (limb `i` at `src[i*n .. (i+1)*n]`, matching
    /// [`crate::RnsPoly::flat`]); returns a flat `to.len() * n` buffer in
    /// the same layout. The result may exceed the true value by a small
    /// multiple of `A` (bounded by `alpha`), which RNS-CKKS tolerates as
    /// extra noise — this is the hardware `BConv` kernel of the paper.
    ///
    /// # Panics
    ///
    /// Panics if `src.len()` is not `from.len() * n`.
    pub fn convert_approx(&self, src: &[u64]) -> Vec<u64> {
        let n = self.from.n();
        let alpha = self.from.len();
        assert_eq!(src.len(), alpha * n, "wrong flat source length");
        let mut out = vec![0u64; self.to.len() * n];
        crate::scratch::with_scratch(alpha * n, |y| {
            self.premultiply(src, y);
            // out_j = sum_i y_i * |A/a_i|_{b_j} — the systolic-array
            // matmul, dispatched through the active kernel backend,
            // which may slice the output-limb rows across worker
            // threads (bit-identical by the backend contract).
            crate::kernel::active().convert_approx_batch(
                self.to.moduli(),
                &self.a_hat_mod_b,
                y,
                &mut out,
            );
        });
        out
    }

    /// Exact base conversion using the floating-point overshoot estimate
    /// (Halevi–Polyakov–Shoup): computes `round(sum y_i / a_i)` and
    /// subtracts that multiple of `A mod b_j`.
    ///
    /// Exact when the underlying value is not pathologically close to a
    /// multiple of `A` (always true for FHE noise distributions). Flat,
    /// limb-major layout as in [`Self::convert_approx`].
    ///
    /// # Panics
    ///
    /// Panics if `src.len()` is not `from.len() * n`.
    pub fn convert_exact(&self, src: &[u64]) -> Vec<u64> {
        let n = self.from.n();
        let alpha = self.from.len();
        assert_eq!(src.len(), alpha * n, "wrong flat source length");
        let mut out = vec![0u64; self.to.len() * n];
        crate::scratch::with_scratch(alpha * n, |y| {
            self.premultiply(src, y);
            crate::scratch::with_scratch(n, |v| {
                // The overshoot multiples are computed once, here, so
                // every backend applies the identical correction no
                // matter how it schedules the output-limb rows.
                self.overshoot_estimates(y, v);
                crate::kernel::active().convert_exact_batch(
                    self.to.moduli(),
                    &self.a_hat_mod_b,
                    &self.a_mod_b,
                    v,
                    y,
                    &mut out,
                );
            });
        });
        out
    }

    /// `v[c] = round(sum_i y_i[c] / a_i)` — the HPS overshoot multiple
    /// per coefficient, via Neumaier-compensated summation so the
    /// estimate stays correctly rounded even at `alpha = 16` with
    /// 59-bit limbs, where naive accumulation can drift across a `.5`
    /// rounding boundary.
    fn overshoot_estimates(&self, y: &[u64], v: &mut [u64]) {
        let n = self.from.n();
        let alpha = self.from.len();
        for (c, vc) in v.iter_mut().enumerate() {
            let mut sum = 0.0f64;
            let mut comp = 0.0f64;
            for (i, &a_inv) in self.a_inv_f64.iter().enumerate() {
                let term = y[i * n + c] as f64 * a_inv;
                let t = sum + term;
                // Neumaier: recover the low-order bits the add dropped.
                comp += if sum.abs() >= term.abs() {
                    (sum - t) + term
                } else {
                    (term - t) + sum
                };
                sum = t;
            }
            let est = (sum + comp).round();
            // Every term is in [0, 1), so the true sum lies in
            // [0, alpha]. An estimate outside that range means the
            // summation itself broke — fail loudly instead of letting
            // `as u64` saturate to 0 or clamp silently.
            debug_assert!(
                (0.0..=alpha as f64).contains(&est),
                "BConv overshoot estimate {est} outside [0, {alpha}] at coefficient {c}"
            );
            *vc = est as u64;
        }
    }

    /// `y_i = [x_i * (A/a_i)^{-1}]_{a_i}` for every source limb (flat
    /// layout), the shared first step of both conversions. Inputs must
    /// be canonical residues (`mul_shoup` debug-asserts this), matching
    /// the crate-wide invariant.
    fn premultiply(&self, src: &[u64], y: &mut [u64]) {
        let n = self.from.n();
        for (i, (yrow, xrow)) in y.chunks_exact_mut(n).zip(src.chunks_exact(n)).enumerate() {
            let ai = self.from.modulus(i);
            let (w, ws) = self.a_hat_inv[i];
            for (yc, &xc) in yrow.iter_mut().zip(xrow) {
                *yc = ai.mul_shoup(xc, w, ws);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prime::ntt_primes;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn two_bases(n: usize) -> (RnsBasis, RnsBasis) {
        let primes = ntt_primes(40, n, 6);
        (
            RnsBasis::new(&primes[..3], n),
            RnsBasis::new(&primes[3..], n),
        )
    }

    #[test]
    fn basis_product_and_prefix() {
        let (a, _) = two_bases(64);
        let q = a.modulus_product();
        assert_eq!(q.bits() as usize, 120); // three 40-bit primes
        let p = a.prefix(2);
        assert_eq!(p.len(), 2);
        assert_eq!(p.modulus(0).value(), a.modulus(0).value());
    }

    #[test]
    fn crt_reconstruction_small_values() {
        let (a, _) = two_bases(16);
        for val in [-1234567i64, 0, 1, 98765432100] {
            let residues: Vec<u64> = a.moduli().iter().map(|m| m.from_i64(val)).collect();
            let rec = a.crt_to_centered_f64(&residues);
            assert!((rec - val as f64).abs() < 1e-3, "val={val} rec={rec}");
        }
    }

    #[test]
    fn exact_conversion_matches_true_value() {
        let (a, b) = two_bases(32);
        let conv = BasisConverter::new(&a, &b);
        let mut rng = StdRng::seed_from_u64(12);
        // Random centered values well below A/2.
        let vals: Vec<i64> = (0..32)
            .map(|_| rng.gen_range(-(1i64 << 58)..(1 << 58)))
            .collect();
        let n = 32usize;
        let src: Vec<u64> = a
            .moduli()
            .iter()
            .flat_map(|m| vals.iter().map(|&v| m.from_i64(v)).collect::<Vec<_>>())
            .collect();
        let out = conv.convert_exact(&src);
        for (j, bj) in b.moduli().iter().enumerate() {
            for (c, &v) in vals.iter().enumerate() {
                assert_eq!(out[j * n + c], bj.from_i64(v), "limb {j} coeff {c}");
            }
        }
    }

    #[test]
    fn approx_conversion_off_by_multiple_of_a() {
        let (a, b) = two_bases(8);
        let conv = BasisConverter::new(&a, &b);
        let mut rng = StdRng::seed_from_u64(13);
        let n = 8usize;
        let vals: Vec<u64> = (0..n).map(|_| rng.gen::<u64>() >> 5).collect();
        let src: Vec<u64> = a
            .moduli()
            .iter()
            .flat_map(|m| vals.iter().map(|&v| m.reduce(v)).collect::<Vec<_>>())
            .collect();
        let out = conv.convert_approx(&src);
        let a_prod = a.modulus_product();
        for (j, bj) in b.moduli().iter().enumerate() {
            for (c, &v) in vals.iter().enumerate() {
                // out = v + k*A (mod b_j) for k in 0..=alpha
                let mut found = false;
                let mut shift = UBig::zero();
                for _k in 0..=a.len() {
                    let mut t = shift.clone();
                    t.add_assign(&UBig::from_u64(v));
                    if out[j * n + c] == bj.reduce(t.rem_u64(bj.value())) {
                        found = true;
                        break;
                    }
                    shift.add_assign(&a_prod);
                }
                assert!(found, "limb {j} coeff {c}: overshoot not in range");
            }
        }
    }

    /// CRT-reconstructs the full value of one residue vector as a wide
    /// integer in `[0, A)` — the oracle the exact conversion is checked
    /// against.
    fn crt_value(basis: &RnsBasis, x: &[u64]) -> UBig {
        let q = basis.modulus_product();
        let mut v = UBig::zero();
        for (i, m) in basis.moduli().iter().enumerate() {
            let mut q_hat_mod = 1u64;
            for (j, mj) in basis.moduli().iter().enumerate() {
                if j != i {
                    q_hat_mod = m.mul(q_hat_mod, m.reduce(mj.value()));
                }
            }
            let q_hat_inv = m.inv(q_hat_mod).expect("coprime moduli");
            let c = m.mul(m.reduce(x[i]), q_hat_inv);
            let mut q_over = UBig::from_u64(1);
            for (j, mj) in basis.moduli().iter().enumerate() {
                if j != i {
                    q_over = q_over.mul_u64(mj.value());
                }
            }
            v.add_assign(&q_over.mul_u64(c));
        }
        v.reduce_by(&q);
        v
    }

    /// The widest supported conversion geometry: 16 source limbs of 59
    /// bits feeding 2 destination limbs.
    fn widest_bases(n: usize) -> (RnsBasis, RnsBasis) {
        let primes = ntt_primes(59, n, 18);
        (
            RnsBasis::new(&primes[..16], n),
            RnsBasis::new(&primes[16..], n),
        )
    }

    /// Regression net for the overshoot mis-rounding bug-class at the
    /// alpha = 16 / 59-bit boundary: values within `~A * 2^-30` of the
    /// `A/2` rounding boundary must still convert to their exact
    /// centered representative on both sides. The compensated summation
    /// keeps the f64 estimate correctly rounded here; the old naive
    /// accumulation had no such guarantee.
    #[test]
    fn exact_conversion_boundary_alpha16_59bit() {
        let n = 8usize;
        let (a, b) = widest_bases(n);
        let conv = BasisConverter::new(&a, &b);
        let big_a = a.modulus_product();
        let delta = big_a.div_u64(1 << 30);

        // x_lo = (A-1)/2 - delta, just below the boundary: the centered
        // representative is x_lo itself.
        let mut x_lo = big_a.half();
        x_lo.sub_assign(&delta);
        // x_hi = (A-1)/2 + delta + 1, just above: the centered
        // representative is x_hi - A = -x_lo (A - x_hi == x_lo).
        let mut x_hi = big_a.half();
        x_hi.add_assign(&delta);
        x_hi.add_assign(&UBig::from_u64(1));

        for (x, below) in [(&x_lo, true), (&x_hi, false)] {
            let src: Vec<u64> = a
                .moduli()
                .iter()
                .flat_map(|m| vec![x.rem_u64(m.value()); n])
                .collect();
            let out = conv.convert_exact(&src);
            for (j, bj) in b.moduli().iter().enumerate() {
                let expect = if below {
                    bj.reduce(x.rem_u64(bj.value()))
                } else {
                    bj.neg(bj.reduce(x_lo.rem_u64(bj.value())))
                };
                for c in 0..n {
                    assert_eq!(out[j * n + c], expect, "below={below} limb {j} coeff {c}");
                }
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// `convert_exact` must agree with the wide-integer CRT oracle
        /// on uniformly random residue vectors at the widest geometry:
        /// every output limb carries the centered representative of the
        /// source value.
        #[test]
        fn exact_conversion_matches_wide_integer_oracle(seed in proptest::prelude::any::<u64>()) {
            let n = 4usize;
            let (a, b) = widest_bases(n);
            let conv = BasisConverter::new(&a, &b);
            let big_a = a.modulus_product();
            let half = big_a.half();
            let mut rng = StdRng::seed_from_u64(seed);
            let src: Vec<u64> = a
                .moduli()
                .iter()
                .flat_map(|m| (0..n).map(|_| rng.gen_range(0..m.value())).collect::<Vec<_>>())
                .collect();
            let out = conv.convert_exact(&src);
            for c in 0..n {
                let residues: Vec<u64> = (0..a.len()).map(|i| src[i * n + c]).collect();
                let x = crt_value(&a, &residues);
                // Exactness is only contracted away from the A/2
                // rounding boundary; uniform values land in that
                // sliver with probability ~2^-19 per coefficient.
                prop_assume!((x.to_f64() / big_a.to_f64() - 0.5).abs() > 1e-6);
                for (j, bj) in b.moduli().iter().enumerate() {
                    let expect = if x > half {
                        let mut neg = big_a.clone();
                        neg.sub_assign(&x);
                        bj.neg(bj.reduce(neg.rem_u64(bj.value())))
                    } else {
                        bj.reduce(x.rem_u64(bj.value()))
                    };
                    prop_assert_eq!(out[j * n + c], expect, "coeff {} limb {}", c, j);
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "disjoint")]
    fn overlapping_bases_rejected() {
        let primes = ntt_primes(40, 16, 3);
        let a = RnsBasis::new(&primes[..2], 16);
        let b = RnsBasis::new(&primes[1..], 16);
        let _ = BasisConverter::new(&a, &b);
    }

    #[test]
    fn concat_and_select() {
        let (a, b) = two_bases(16);
        let c = a.concat(&b);
        assert_eq!(c.len(), 6);
        let s = c.select(&[0, 3, 5]);
        assert_eq!(s.modulus(0).value(), a.modulus(0).value());
        assert_eq!(s.modulus(1).value(), b.modulus(0).value());
        assert_eq!(s.modulus(2).value(), b.modulus(2).value());
    }
}
