//! Prime testing and NTT-friendly prime generation.
//!
//! FHE moduli must be primes `p ≡ 1 (mod 2N)` so that the negacyclic ring
//! `Z_p[X]/(X^N + 1)` admits a 2N-th primitive root of unity and therefore
//! an NTT. The Trinity paper additionally relies on choosing a prime
//! *close to* TFHE's power-of-two modulus `q` (§II-B, "Substituting FFT
//! with NTT"), which [`prime_near`] provides.

use crate::modulus::Modulus;

/// Deterministic Miller–Rabin primality test, valid for all `u64`.
///
/// Uses the standard witness set {2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31,
/// 37} which is known to be deterministic below 3.3 * 10^24.
pub fn is_prime(n: u64) -> bool {
    if n < 2 {
        return false;
    }
    for p in [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        if n == p {
            return true;
        }
        if n.is_multiple_of(p) {
            return false;
        }
    }
    let mut d = n - 1;
    let mut r = 0u32;
    while d.is_multiple_of(2) {
        d /= 2;
        r += 1;
    }
    let m = match Modulus::new(n) {
        Ok(m) => m,
        // n >= 2^62: fall back to u128 arithmetic.
        Err(_) => return is_prime_u128(n, d, r),
    };
    'witness: for a in [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        let mut x = m.pow(a, d);
        if x == 1 || x == n - 1 {
            continue;
        }
        for _ in 0..r - 1 {
            x = m.mul(x, x);
            if x == n - 1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

fn is_prime_u128(n: u64, d: u64, r: u32) -> bool {
    let mul = |a: u64, b: u64| ((a as u128 * b as u128) % n as u128) as u64;
    let pow = |mut base: u64, mut exp: u64| {
        let mut acc = 1u64;
        base %= n;
        while exp > 0 {
            if exp & 1 == 1 {
                acc = mul(acc, base);
            }
            base = mul(base, base);
            exp >>= 1;
        }
        acc
    };
    'witness: for a in [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        let mut x = pow(a, d);
        if x == 1 || x == n - 1 {
            continue;
        }
        for _ in 0..r - 1 {
            x = mul(x, x);
            if x == n - 1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

/// Generates `count` distinct primes of exactly `bits` bits satisfying
/// `p ≡ 1 (mod 2n)`, scanning downward from `2^bits - 1`.
///
/// # Panics
///
/// Panics if `n` is not a power of two, if `bits` is not in `[4, 62)`, or
/// if fewer than `count` such primes exist in the requested range.
pub fn ntt_primes(bits: u32, n: usize, count: usize) -> Vec<u64> {
    assert!(n.is_power_of_two(), "ring degree must be a power of two");
    assert!((4..62).contains(&bits), "bits must be in [4, 62)");
    let step = 2 * n as u64;
    let hi = (1u64 << bits) - 1;
    let lo = 1u64 << (bits - 1);
    // Largest candidate <= hi congruent to 1 mod 2n.
    let mut cand = hi - ((hi - 1) % step);
    let mut out = Vec::with_capacity(count);
    while out.len() < count && cand >= lo {
        if is_prime(cand) {
            out.push(cand);
        }
        if cand < step {
            break;
        }
        cand -= step;
    }
    assert!(
        out.len() == count,
        "not enough {bits}-bit primes ≡ 1 mod {step} (found {})",
        out.len()
    );
    out
}

/// Finds the prime `p ≡ 1 (mod 2n)` closest to `target`.
///
/// This is the paper's FFT→NTT substitution for TFHE: pick the NTT-friendly
/// prime closest to the power-of-two torus modulus `q` (§II-B, citing
/// Joye–Walter and Ye et al.).
///
/// # Panics
///
/// Panics if `n` is not a power of two or no such prime exists below
/// `2^63`.
pub fn prime_near(target: u64, n: usize) -> u64 {
    assert!(n.is_power_of_two(), "ring degree must be a power of two");
    let step = 2 * n as u64;
    // Candidates ≡ 1 mod 2n on both sides of target, nearest first.
    let base = target - ((target.wrapping_sub(1)) % step);
    for k in 0..(1u64 << 40) / step {
        let below = base.checked_sub(k * step);
        let above = base.checked_add((k + 1) * step);
        // Order by distance from target.
        let mut cands = [below, above];
        if let (Some(b), Some(a)) = (below, above) {
            if target.abs_diff(a) < target.abs_diff(b) {
                cands = [above, below];
            }
        }
        for c in cands.into_iter().flatten() {
            if c > 2 && is_prime(c) {
                return c;
            }
        }
    }
    panic!("no prime ≡ 1 mod {step} near {target}");
}

/// Returns a generator-derived primitive `order`-th root of unity mod `p`.
///
/// # Panics
///
/// Panics if `order` does not divide `p - 1` or no root is found (which
/// cannot happen for prime `p`).
pub fn primitive_root_of_unity(m: &Modulus, order: u64) -> u64 {
    let p = m.value();
    assert_eq!((p - 1) % order, 0, "order must divide p-1");
    let exp = (p - 1) / order;
    // Try small candidates until one has full multiplicative order.
    for g in 2..1000u64 {
        let r = m.pow(g, exp);
        // r has order dividing `order`; check it is exactly `order` by
        // verifying r^(order/q) != 1 for each prime factor q of order.
        if r == 1 {
            continue;
        }
        let mut ok = true;
        let mut o = order;
        let mut f = 2u64;
        let mut factors = Vec::new();
        while f * f <= o {
            if o.is_multiple_of(f) {
                factors.push(f);
                while o.is_multiple_of(f) {
                    o /= f;
                }
            }
            f += 1;
        }
        if o > 1 {
            factors.push(o);
        }
        for q in factors {
            if m.pow(r, order / q) == 1 {
                ok = false;
                break;
            }
        }
        if ok {
            return r;
        }
    }
    panic!("no primitive root found for order {order} mod {p}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_primes() {
        let primes: Vec<u64> = (0..100).filter(|&n| is_prime(n)).collect();
        assert_eq!(
            primes,
            vec![
                2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67, 71, 73, 79,
                83, 89, 97
            ]
        );
    }

    #[test]
    fn known_large_primes() {
        assert!(is_prime((1 << 61) - 1)); // Mersenne
        assert!(is_prime(0xFFFFFFFF00000001)); // Goldilocks (2^64-2^32+1)
        assert!(!is_prime(u64::MAX)); // 2^64-1 = 3*5*17*257*641*65537*6700417
        assert!(!is_prime((1u64 << 62) - 1));
    }

    #[test]
    fn generated_primes_are_ntt_friendly() {
        for (bits, n) in [(36, 1024usize), (50, 4096), (30, 2048)] {
            let ps = ntt_primes(bits, n, 4);
            assert_eq!(ps.len(), 4);
            for &p in &ps {
                assert!(is_prime(p));
                assert_eq!(p % (2 * n as u64), 1);
                assert_eq!(64 - p.leading_zeros(), bits);
            }
            // Distinct and descending.
            for w in ps.windows(2) {
                assert!(w[0] > w[1]);
            }
        }
    }

    #[test]
    fn prime_near_power_of_two() {
        // The TFHE substitution: prime near q = 2^32 for N = 1024 and 2048.
        for logn in [10usize, 11] {
            let n = 1 << logn;
            let p = prime_near(1u64 << 32, n);
            assert!(is_prime(p));
            assert_eq!(p % (2 * n as u64), 1);
            // Must be within 0.1% of 2^32 for the approximation to be benign.
            let dist = p.abs_diff(1u64 << 32) as f64;
            assert!(
                dist / ((1u64 << 32) as f64) < 1e-3,
                "p={p} too far from 2^32"
            );
        }
    }

    #[test]
    fn roots_of_unity_have_exact_order() {
        let p = ntt_primes(36, 1024, 1)[0];
        let m = Modulus::new(p).unwrap();
        let w = primitive_root_of_unity(&m, 2048);
        assert_eq!(m.pow(w, 2048), 1);
        assert_ne!(m.pow(w, 1024), 1);
        // psi^N = -1 for the negacyclic root.
        assert_eq!(m.pow(w, 1024), p - 1);
    }
}
