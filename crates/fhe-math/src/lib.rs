//! # fhe-math — arithmetic substrate for the Trinity reproduction
//!
//! Everything the CKKS, TFHE and scheme-conversion layers need, built
//! from scratch:
//!
//! * [`Modulus`] — Barrett/Shoup modular arithmetic on word-size primes.
//! * [`prime`] — Miller–Rabin, NTT-friendly prime generation, and the
//!   paper's "closest prime to `q`" selection for the FFT→NTT
//!   substitution in TFHE (§II-B).
//! * [`NttTable`] — negacyclic NTTs in hardware-relevant flavours: the
//!   lazy-reduction hot path (Harvey), a fully-reduced strict reference,
//!   constant-geometry (Pease — Trinity's NTTU/CU dataflow), and
//!   four-step (Bailey — Trinity's long-NTT strategy).
//! * [`FftPlan`] — the double-precision FFT that FFT-based TFHE
//!   accelerators use, kept as a comparison baseline.
//! * [`RnsBasis`] / [`BasisConverter`] — RNS bases and the `BConv`
//!   kernel (fast base conversion), operating on flat limb-major
//!   buffers.
//! * [`RnsPoly`] — RNS polynomials with NTT, automorphism, and monomial
//!   operations over a flat contiguous limb buffer.
//! * [`kernel`] — pluggable batched kernel backends ([`KernelBackend`]):
//!   the scalar reference, a chunked/unrolled lane implementation, and
//!   the limb-parallel [`ThreadedBackend`], runtime-selected, executing
//!   the butterfly / MAC / permutation passes over flat limb rows in
//!   their documented lazy windows — with batched (whole-poly) entry
//!   points that slice independent limb rows across worker threads.
//! * [`pool`] — the persistent home-grown worker pool behind the
//!   threaded backend (`std::thread` + channels; the build is offline,
//!   so no `rayon`).
//! * [`sampler`] — uniform / ternary / binary / Gaussian samplers.
//! * [`scratch`] — thread-local scratch buffers for the transform hot
//!   paths.
//! * [`UBig`] — minimal big integers for CRT reconstruction.
//!
//! # Data layout and reduction discipline
//!
//! **Flat limb-major storage.** An [`RnsPoly`] over `L` limbs and ring
//! degree `N` is a single `Vec<u64>` of `L * N` words; limb `i` is the
//! slice `data[i*N .. (i+1)*N]`, reachable via [`RnsPoly::limb`] /
//! [`RnsPoly::limb_mut`] and wholesale via [`RnsPoly::flat`]. The
//! [`BasisConverter`] kernels consume and produce the same layout, so
//! keyswitching moves residues between bases without re-boxing rows.
//!
//! **Lazy-reduction windows.** Inside [`NttTable::forward`] /
//! [`NttTable::inverse`] butterfly operands roam in `[0, 4p)` (forward)
//! and `[0, 2p)` (inverse) — Harvey's trick, sound because every modulus
//! is below `2^62`. That `[0, 4p)` window never escapes a transform.
//! The narrower `[0, 2p)` window, however, *may* cross kernel
//! boundaries: the `*_lazy` kernel family ([`NttTable::forward_lazy`],
//! [`NttTable::inverse_lazy`], [`NttTable::pointwise_mul_acc_lazy`],
//! the `RnsPoly::*_lazy` ops and the scalar `Modulus::*_lazy`
//! primitives) consumes and produces `[0, 2p)` representatives so whole
//! kernel chains — keyswitch digit NTTs feeding inner products, tensor
//! products, external-product accumulators — skip per-kernel
//! canonicalisation and fold exactly once at the ciphertext boundary
//! ([`RnsPoly::canonicalize`] / [`NttTable::canonicalize_2p`]).
//!
//! **Explicit reduction state.** An [`RnsPoly`] tracks which window it
//! is in via [`ReductionState`] (`Canonical` vs `Lazy2p`), orthogonal
//! to [`Representation`]. Strict kernels debug-assert `Canonical` on
//! entry, so a lazy residue can never leak into a strict-only kernel
//! unnoticed; the lazy chains are asserted bit-identical (after
//! canonicalisation) to the strict oracle by `tests/lazy_chains.rs` at
//! the workspace root.
//!
//! **Canonical residues at rest.** Ciphertexts and keys store canonical
//! residues in `[0, p)` per limb; `BasisConverter::convert_*` requires
//! canonical input (base conversion depends on the actual
//! representative, not just its residue class — a `[0, 2p)` lift would
//! change the overshoot estimate). The scalar lazy primitives say so in
//! their names: `Modulus::mul_shoup_lazy`, `add_lazy`, `mul_lazy`,
//! `reduce_u128_lazy` return `[0, 2p)`; `Modulus::reduce_2p` folds
//! back.
//!
//! # Examples
//!
//! ```
//! use fhe_math::{Modulus, NttTable, prime};
//!
//! // An NTT-friendly 36-bit prime for ring degree 1024 (the paper's word
//! // size), and an exact negacyclic product.
//! let p = prime::ntt_primes(36, 1024, 1)[0];
//! let table = NttTable::new(Modulus::new(p)?, 1024);
//! let mut x = vec![0u64; 1024];
//! x[1] = 1; // X
//! let y = table.negacyclic_mul(&x, &x); // X^2
//! assert_eq!(y[2], 1);
//! # Ok::<(), fhe_math::InvalidModulusError>(())
//! ```

#![warn(missing_docs)]

pub mod bigint;
pub mod domain;
pub mod fft;
pub mod galois;
pub mod kernel;
pub mod modulus;
pub mod ntt;
pub mod poly;
pub mod pool;
pub mod prime;
pub mod rns;
pub mod sampler;
pub mod scratch;
pub mod util;

pub use bigint::UBig;
pub use fft::{Complex, FftPlan};
pub use galois::GaloisPerms;
pub use kernel::{KernelBackend, LaneBackend, ScalarBackend, ThreadedBackend};
pub use modulus::{InvalidModulusError, Modulus};
pub use ntt::NttTable;
pub use poly::{ReductionState, Representation, RnsPoly};
pub use rns::{BasisConverter, RnsBasis};
