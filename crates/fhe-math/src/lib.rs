//! # fhe-math — arithmetic substrate for the Trinity reproduction
//!
//! Everything the CKKS, TFHE and scheme-conversion layers need, built
//! from scratch:
//!
//! * [`Modulus`] — Barrett/Shoup modular arithmetic on word-size primes.
//! * [`prime`] — Miller–Rabin, NTT-friendly prime generation, and the
//!   paper's "closest prime to `q`" selection for the FFT→NTT
//!   substitution in TFHE (§II-B).
//! * [`NttTable`] — negacyclic NTTs in three hardware-relevant flavours:
//!   reference (Harvey), constant-geometry (Pease — Trinity's NTTU/CU
//!   dataflow), and four-step (Bailey — Trinity's long-NTT strategy).
//! * [`FftPlan`] — the double-precision FFT that FFT-based TFHE
//!   accelerators use, kept as a comparison baseline.
//! * [`RnsBasis`] / [`BasisConverter`] — RNS bases and the `BConv`
//!   kernel (fast base conversion).
//! * [`RnsPoly`] — RNS polynomials with NTT, automorphism, and monomial
//!   operations.
//! * [`sampler`] — uniform / ternary / binary / Gaussian samplers.
//! * [`UBig`] — minimal big integers for CRT reconstruction.
//!
//! # Examples
//!
//! ```
//! use fhe_math::{Modulus, NttTable, prime};
//!
//! // An NTT-friendly 36-bit prime for ring degree 1024 (the paper's word
//! // size), and an exact negacyclic product.
//! let p = prime::ntt_primes(36, 1024, 1)[0];
//! let table = NttTable::new(Modulus::new(p)?, 1024);
//! let mut x = vec![0u64; 1024];
//! x[1] = 1; // X
//! let y = table.negacyclic_mul(&x, &x); // X^2
//! assert_eq!(y[2], 1);
//! # Ok::<(), fhe_math::InvalidModulusError>(())
//! ```

#![warn(missing_docs)]

pub mod bigint;
pub mod fft;
pub mod galois;
pub mod modulus;
pub mod ntt;
pub mod poly;
pub mod prime;
pub mod rns;
pub mod sampler;
pub mod util;

pub use bigint::UBig;
pub use fft::{Complex, FftPlan};
pub use galois::GaloisPerms;
pub use modulus::{InvalidModulusError, Modulus};
pub use ntt::NttTable;
pub use poly::{Representation, RnsPoly};
pub use rns::{BasisConverter, RnsBasis};
