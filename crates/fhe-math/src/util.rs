//! Small shared helpers: bit manipulation and index permutations.

/// Reverses the lowest `bits` bits of `x`.
#[inline]
pub fn reverse_bits(x: usize, bits: u32) -> usize {
    if bits == 0 {
        return 0;
    }
    x.reverse_bits() >> (usize::BITS - bits)
}

/// Permutes a slice into bit-reversed order in place.
///
/// # Panics
///
/// Panics if the slice length is not a power of two.
pub fn bit_reverse_permute<T>(a: &mut [T]) {
    let n = a.len();
    assert!(n.is_power_of_two(), "length must be a power of two");
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = reverse_bits(i, bits);
        if i < j {
            a.swap(i, j);
        }
    }
}

/// Integer log2 of a power of two.
///
/// # Panics
///
/// Panics if `n` is not a power of two.
#[inline]
pub fn log2_exact(n: usize) -> u32 {
    assert!(n.is_power_of_two(), "{n} is not a power of two");
    n.trailing_zeros()
}

/// Splits `n = n1 * n2` for the four-step NTT with `n1 <= n2`, both powers
/// of two ("balanced" split: n1 = 2^(log n / 2) rounded down).
pub fn four_step_split(n: usize) -> (usize, usize) {
    let logn = log2_exact(n);
    let log1 = logn / 2;
    (1usize << log1, 1usize << (logn - log1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reverse_bits_basic() {
        assert_eq!(reverse_bits(0b001, 3), 0b100);
        assert_eq!(reverse_bits(0b110, 3), 0b011);
        assert_eq!(reverse_bits(1, 10), 512);
        assert_eq!(reverse_bits(0, 0), 0);
    }

    #[test]
    fn bit_reverse_permute_is_involution() {
        let mut v: Vec<usize> = (0..64).collect();
        let orig = v.clone();
        bit_reverse_permute(&mut v);
        assert_ne!(v, orig);
        bit_reverse_permute(&mut v);
        assert_eq!(v, orig);
    }

    #[test]
    fn four_step_splits() {
        assert_eq!(four_step_split(256), (16, 16));
        assert_eq!(four_step_split(512), (16, 32));
        assert_eq!(four_step_split(65536), (256, 256));
        assert_eq!(four_step_split(2048), (32, 64));
    }
}
