//! Randomness for FHE: uniform, ternary, and discrete-Gaussian samplers.
//!
//! Secrets and noise are sampled as small signed vectors which callers
//! lift into each RNS limb; uniform masks are sampled per-modulus.

use rand::Rng;

use crate::modulus::Modulus;

/// Standard deviation used for RLWE/LWE error throughout the workspace
/// (the conventional 3.2 from the FHE standardisation effort).
pub const DEFAULT_SIGMA: f64 = 3.2;

/// Samples `n` residues uniformly in `[0, p)`.
pub fn uniform_residues<R: Rng + ?Sized>(rng: &mut R, m: &Modulus, n: usize) -> Vec<u64> {
    (0..n).map(|_| rng.gen_range(0..m.value())).collect()
}

/// Samples a ternary vector with entries in `{-1, 0, 1}`.
///
/// With `hamming_weight = Some(h)`, exactly `h` entries are nonzero,
/// split evenly between +1 and -1 (the sparse-secret convention CKKS
/// bootstrapping relies on); when `h` is odd, a fair coin decides which
/// sign receives the extra entry, so the expected coefficient sum is
/// zero. Otherwise each entry is i.i.d. uniform over the three values.
///
/// # Panics
///
/// Panics if `h > n`.
pub fn ternary<R: Rng + ?Sized>(rng: &mut R, n: usize, hamming_weight: Option<usize>) -> Vec<i64> {
    match hamming_weight {
        None => (0..n).map(|_| rng.gen_range(-1i64..=1)).collect(),
        Some(h) => {
            assert!(h <= n, "hamming weight exceeds dimension");
            // For odd h the former `placed % 2` alternation always handed
            // the extra entry to +1, a deterministic DC bias of +1 per
            // secret; randomise the tie-break instead.
            let plus = h / 2
                + if h % 2 == 1 && rng.gen_range(0..2) == 1 {
                    1
                } else {
                    0
                };
            let mut v = vec![0i64; n];
            let mut placed = 0usize;
            while placed < h {
                let idx = rng.gen_range(0..n);
                if v[idx] == 0 {
                    v[idx] = if placed < plus { 1 } else { -1 };
                    placed += 1;
                }
            }
            v
        }
    }
}

/// Samples a binary vector with entries in `{0, 1}` (TFHE LWE secrets).
pub fn binary<R: Rng + ?Sized>(rng: &mut R, n: usize) -> Vec<i64> {
    (0..n).map(|_| rng.gen_range(0i64..=1)).collect()
}

/// Samples `n` discrete-Gaussian values with standard deviation `sigma`,
/// truncated at six sigma (rounding of a Box–Muller normal).
///
/// Rejection operates on whole Box–Muller pairs: if either member of a
/// pair exceeds the 6σ bound, both are discarded and the pair is
/// redrawn. The two halves of a pair are independent normals, so this
/// matches the half-dropping it replaces distributionally; resampling
/// wholesale keeps the output stream composed of aligned pairs (a fixed
/// two-outputs-per-accepted-draw structure), and at 6σ the rejection
/// probability (~2e-9) makes the discarded-partner cost nil.
pub fn gaussian<R: Rng + ?Sized>(rng: &mut R, n: usize, sigma: f64) -> Vec<i64> {
    let bound = (6.0 * sigma).ceil() as i64;
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        // Box–Muller: two normals per pair of uniforms.
        let (x0, x1) = loop {
            let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
            let u2: f64 = rng.gen_range(0.0..1.0);
            let r = (-2.0 * u1.ln()).sqrt() * sigma;
            let theta = 2.0 * std::f64::consts::PI * u2;
            let x0 = (r * theta.cos()).round() as i64;
            let x1 = (r * theta.sin()).round() as i64;
            if x0.abs() <= bound && x1.abs() <= bound {
                break (x0, x1);
            }
        };
        out.push(x0);
        if out.len() < n {
            out.push(x1);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = Modulus::new(97).unwrap();
        let v = uniform_residues(&mut rng, &m, 10_000);
        assert!(v.iter().all(|&x| x < 97));
        // All residues should appear for this many samples.
        let distinct: std::collections::HashSet<u64> = v.into_iter().collect();
        assert_eq!(distinct.len(), 97);
    }

    #[test]
    fn ternary_iid_distribution() {
        let mut rng = StdRng::seed_from_u64(2);
        let v = ternary(&mut rng, 30_000, None);
        let pos = v.iter().filter(|&&x| x == 1).count();
        let neg = v.iter().filter(|&&x| x == -1).count();
        let zero = v.iter().filter(|&&x| x == 0).count();
        assert_eq!(pos + neg + zero, 30_000);
        for c in [pos, neg, zero] {
            assert!((c as f64 - 10_000.0).abs() < 600.0, "count {c} too skewed");
        }
    }

    #[test]
    fn ternary_fixed_hamming_weight() {
        let mut rng = StdRng::seed_from_u64(3);
        let v = ternary(&mut rng, 1024, Some(64));
        assert_eq!(v.iter().filter(|&&x| x != 0).count(), 64);
        assert_eq!(v.iter().filter(|&&x| x == 1).count(), 32);
        assert_eq!(v.iter().filter(|&&x| x == -1).count(), 32);
    }

    #[test]
    fn ternary_odd_hamming_weight_is_sign_balanced() {
        // Regression: odd h used to deterministically place ceil(h/2) +1s
        // and floor(h/2) -1s, a DC bias of +1 in every sampled secret.
        // The extra entry must now land on a coin flip, so over many
        // draws the per-draw sum (always ±1 for odd h) averages to ~0.
        let mut rng = StdRng::seed_from_u64(77);
        let h = 33usize;
        let trials = 400usize;
        let mut plus_heavy = 0usize;
        let mut minus_heavy = 0usize;
        for _ in 0..trials {
            let v = ternary(&mut rng, 256, Some(h));
            let pos = v.iter().filter(|&&x| x == 1).count();
            let neg = v.iter().filter(|&&x| x == -1).count();
            assert_eq!(pos + neg, h, "hamming weight must be exact");
            assert_eq!(pos.abs_diff(neg), 1, "odd h must split h/2 against h/2+1");
            if pos > neg {
                plus_heavy += 1;
            } else {
                minus_heavy += 1;
            }
        }
        // Binomial(400, 1/2): both tails beyond ~125/275 are < 1e-13.
        assert!(
            plus_heavy > trials / 4 && minus_heavy > trials / 4,
            "sign of the extra entry is biased: +{plus_heavy} / -{minus_heavy}"
        );
    }

    #[test]
    fn gaussian_pair_rejection_moments() {
        // Whole-pair resampling (vs the former half-dropping) must keep
        // the first two moments on target across independent seeds.
        for seed in [1001u64, 1002, 1003] {
            let mut rng = StdRng::seed_from_u64(seed);
            let v = gaussian(&mut rng, 60_000, DEFAULT_SIGMA);
            let mean: f64 = v.iter().map(|&x| x as f64).sum::<f64>() / v.len() as f64;
            let var: f64 =
                v.iter().map(|&x| (x as f64 - mean).powi(2)).sum::<f64>() / v.len() as f64;
            assert!(mean.abs() < 0.05, "seed {seed}: mean {mean} too far from 0");
            assert!(
                (var - DEFAULT_SIGMA * DEFAULT_SIGMA).abs() < 0.5,
                "seed {seed}: variance {var} too far from {}",
                DEFAULT_SIGMA * DEFAULT_SIGMA
            );
        }
    }

    #[test]
    fn gaussian_moments() {
        let mut rng = StdRng::seed_from_u64(4);
        let v = gaussian(&mut rng, 100_000, DEFAULT_SIGMA);
        let mean: f64 = v.iter().map(|&x| x as f64).sum::<f64>() / v.len() as f64;
        let var: f64 = v.iter().map(|&x| (x as f64 - mean).powi(2)).sum::<f64>() / v.len() as f64;
        assert!(mean.abs() < 0.1, "mean {mean} too far from 0");
        assert!(
            (var.sqrt() - DEFAULT_SIGMA).abs() < 0.2,
            "stddev {} too far from {DEFAULT_SIGMA}",
            var.sqrt()
        );
        let bound = (6.0 * DEFAULT_SIGMA).ceil() as i64;
        assert!(v.iter().all(|&x| x.abs() <= bound));
    }

    #[test]
    fn binary_entries() {
        let mut rng = StdRng::seed_from_u64(5);
        let v = binary(&mut rng, 1000);
        assert!(v.iter().all(|&x| x == 0 || x == 1));
        let ones = v.iter().sum::<i64>();
        assert!((300..700).contains(&ones));
    }
}
