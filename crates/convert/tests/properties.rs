//! Property-based tests: scheme-conversion invariants.

use std::sync::{Arc, OnceLock};

use fhe_ckks::{CkksContext, CkksParams, Decryptor, Encryptor, KeyGenerator, SecretKey};
use fhe_convert::{extract_lwes, extracted_key, RlwePacker};
use fhe_math::{Representation, RnsPoly};
use fhe_tfhe::{LweCiphertext, LweSecretKey};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

struct Fixture {
    ctx: Arc<CkksContext>,
    sk: SecretKey,
    lwe_key: LweSecretKey,
    packer: RlwePacker,
}

fn fixture() -> &'static Fixture {
    static FIX: OnceLock<Fixture> = OnceLock::new();
    FIX.get_or_init(|| {
        let ctx = CkksContext::new(CkksParams::tiny_params());
        let mut rng = StdRng::seed_from_u64(601);
        let sk = KeyGenerator::new(ctx.clone()).secret_key(&mut rng);
        let lwe_key = extracted_key(&sk);
        let packer = RlwePacker::new(ctx.clone(), &sk, 1, &mut rng);
        Fixture {
            ctx,
            sk,
            lwe_key,
            packer,
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Extraction is exact for every requested coefficient index set.
    #[test]
    fn extraction_matches_coefficients(
        msgs in proptest::collection::vec(-7i64..8, 1..8),
        seed in any::<u64>(),
    ) {
        let f = fixture();
        let mut rng = StdRng::seed_from_u64(seed);
        let n = f.ctx.n();
        let q0 = f.ctx.level_basis(0).modulus(0);
        let delta = (q0.value() / (64 * n as u64)) as i64;
        let mut coeffs = vec![0i64; n];
        for (j, &m) in msgs.iter().enumerate() {
            coeffs[j] = m * delta;
        }
        let mut poly = RnsPoly::from_signed_coeffs(f.ctx.level_basis(0).clone(), &coeffs);
        poly.to_eval();
        let pt = fhe_ckks::Plaintext { poly, scale: delta as f64, level: 0 };
        let encryptor = Encryptor::new(f.ctx.clone());
        let ct = encryptor.encrypt_sk(&pt, &f.sk, &mut rng);
        let lwes = extract_lwes(&f.ctx, &ct, msgs.len());
        for (j, lwe) in lwes.iter().enumerate() {
            let got = (q0.to_centered(lwe.phase(q0, &f.lwe_key)) as f64 / delta as f64).round() as i64;
            prop_assert_eq!(got, msgs[j], "coefficient {}", j);
        }
    }

    /// Pack-then-decrypt recovers every message at its strided position
    /// for random message vectors and batch sizes.
    #[test]
    fn packing_recovers_messages(
        log_nslot in 0u32..4,
        seed in any::<u64>(),
    ) {
        let f = fixture();
        let mut rng = StdRng::seed_from_u64(seed);
        let nslot = 1usize << log_nslot;
        let n = f.ctx.n();
        let q0 = f.ctx.level_basis(0).modulus(0);
        let delta = q0.value() / (64 * n as u64);
        use rand::Rng;
        let msgs: Vec<i64> = (0..nslot).map(|_| rng.gen_range(-8i64..8)).collect();
        let lwes: Vec<LweCiphertext> = msgs
            .iter()
            .map(|&m| {
                let enc = if m >= 0 {
                    q0.mul(q0.reduce(m as u64), q0.reduce(delta))
                } else {
                    q0.neg(q0.mul(q0.reduce((-m) as u64), q0.reduce(delta)))
                };
                LweCiphertext::encrypt(q0, &f.lwe_key, enc, 1e-8, &mut rng)
            })
            .collect();
        let packed = f.packer.convert(&lwes, delta as f64);
        let dec = Decryptor::new(f.ctx.clone());
        let vals = dec.decrypt_poly(&packed, &f.sk).to_centered_f64();
        let stride = n / nslot;
        for (j, &m) in msgs.iter().enumerate() {
            let got = vals[j * stride] / packed.scale;
            prop_assert!((got - m as f64).abs() < 0.02, "msg {}: {} vs {}", j, got, m);
        }
        // All other coefficients annihilated.
        for (i, &v) in vals.iter().enumerate() {
            if i % stride != 0 {
                prop_assert!((v / packed.scale).abs() < 0.02, "junk at {}", i);
            }
        }
        let _ = Representation::Coeff;
    }
}
