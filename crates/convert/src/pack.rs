//! TFHE → CKKS direction: ring embedding, PackLWEs and the field trace
//! (paper Algorithms 4 and 5, after Chen–Dai–Kim–Song).
//!
//! `nslot` LWE ciphertexts under the CKKS secret's coefficient key are
//! merged into one RLWE ciphertext whose plaintext carries message `j`
//! at coefficient `j * N/nslot`:
//!
//! 1. **Ring embedding** — each LWE `(a, b)` becomes a degree-1 RLWE
//!    ciphertext with the message in coefficient 0 (a negacyclic
//!    reversal of the mask), mod-raised from `q_0` to the packing level's
//!    full modulus `Q_l`.
//! 2. **PackLWEs** — `log2(nslot)` merge rounds; a merge to size `m`
//!    computes `(even + X^{N/m} odd) + sigma_{m+1}(even - X^{N/m} odd)`,
//!    where `sigma` is a keyswitched automorphism (`HRotate`) and the
//!    monomial multiplication is the key-free `Rotate`.
//! 3. **Field trace** — `log2(N/nslot)` rounds `ct += sigma_{2^t+1}(ct)`
//!    kill every non-aligned coefficient exactly and double the aligned
//!    ones.
//!
//! The aggregate multiplication by `N` is absorbed into the CKKS scale
//! field rather than corrected with an `N^{-1}` multiplication, keeping
//! the LWE noise untouched.
//!
//! **Headroom requirement**: because pack + trace multiply the packed
//! values by `N`, inputs must satisfy `|message| * N < q_0 / 2` or the
//! result wraps around `Q`. Callers encode LWE messages at a scale of
//! at most `q_0 / (2 N t)` for a `t`-valued message space.

use std::collections::HashMap;
use std::sync::Arc;

use fhe_ckks::{Ciphertext, CkksContext, Evaluator, KeyGenerator, SecretKey, SwitchingKey};
use fhe_math::{Representation, RnsPoly, UBig};
use fhe_tfhe::LweCiphertext;
use rand::Rng;

/// Packs LWE ciphertexts into CKKS RLWE ciphertexts.
#[derive(Debug)]
pub struct RlwePacker {
    ctx: Arc<CkksContext>,
    eval: Evaluator,
    level: usize,
    /// Galois keys for the elements `2^t + 1`, `t = 1..=log2(N)`.
    keys: HashMap<u64, SwitchingKey>,
    /// `Q_level` as a big integer (for the modulus raise).
    q_full: UBig,
    /// `Q_level / q_0` as `f64` (scale bookkeeping).
    ratio: f64,
}

impl RlwePacker {
    /// Creates a packer at `level`, generating the `log2(N)` Galois keys
    /// the merge and trace steps need.
    pub fn new<R: Rng + ?Sized>(
        ctx: Arc<CkksContext>,
        sk: &SecretKey,
        level: usize,
        rng: &mut R,
    ) -> Self {
        let kg = KeyGenerator::new(ctx.clone());
        let log_n = fhe_math::util::log2_exact(ctx.n());
        let mut keys = HashMap::new();
        for t in 1..=log_n {
            let g = (1u64 << t) + 1;
            keys.insert(g, kg.galois_key(sk, g, rng));
        }
        let q_full = ctx.level_basis(level).modulus_product();
        let q0 = ctx.level_basis(0).modulus(0).value();
        let ratio = q_full.to_f64() / q0 as f64;
        Self {
            eval: Evaluator::new(ctx.clone()),
            ctx,
            level,
            keys,
            q_full,
            ratio,
        }
    }

    /// The packing level.
    pub fn level(&self) -> usize {
        self.level
    }

    /// Mod-raises a centered residue mod `q_0` to RNS residues mod
    /// `Q_level`: `v = round(x * Q / q_0)`.
    fn raise(&self, x: u64) -> Vec<u64> {
        let basis = self.ctx.level_basis(self.level);
        let q0 = self.ctx.level_basis(0).modulus(0);
        let centered = q0.to_centered(x);
        let mag = centered.unsigned_abs();
        let mut v = self.q_full.mul_u64(mag);
        v.add_assign(&UBig::from_u64(q0.value() / 2));
        let v = v.div_u64(q0.value());
        basis
            .moduli()
            .iter()
            .map(|m| {
                let r = v.rem_u64(m.value());
                if centered < 0 {
                    m.neg(r)
                } else {
                    r
                }
            })
            .collect()
    }

    /// Ring embedding: turns an LWE ciphertext `(a, b)` mod `q_0` (under
    /// the CKKS secret's coefficient key) into an RLWE ciphertext at the
    /// packing level whose plaintext coefficient 0 holds the (mod-raised)
    /// LWE phase.
    ///
    /// `scale` is the scale of the LWE message relative to `q_0`; the
    /// output ciphertext's scale is `scale * Q_level / q_0`.
    ///
    /// # Panics
    ///
    /// Panics if the LWE dimension differs from the ring degree.
    pub fn ring_embed(&self, lwe: &LweCiphertext, scale: f64) -> Ciphertext {
        let n = self.ctx.n();
        assert_eq!(lwe.dim(), n, "LWE dimension must equal ring degree");
        let basis = self.ctx.level_basis(self.level).clone();
        let limbs = basis.len();
        let mut c0_flat = vec![0u64; limbs * n];
        let mut c1_flat = vec![0u64; limbs * n];
        // c0 = raise(b) * X^0.
        let b_raised = self.raise(lwe.b);
        for (l, &r) in b_raised.iter().enumerate() {
            c0_flat[l * n] = r;
        }
        // c1[0] = -raise(a_0); c1[N-j] = +raise(a_j) for j >= 1.
        for (j, &aj) in lwe.a.iter().enumerate() {
            let raised = self.raise(aj);
            for (l, &r) in raised.iter().enumerate() {
                if j == 0 {
                    c1_flat[l * n] = basis.modulus(l).neg(r);
                } else {
                    c1_flat[l * n + n - j] = r;
                }
            }
        }
        let mut c0 = RnsPoly::from_flat(basis.clone(), c0_flat, Representation::Coeff);
        let mut c1 = RnsPoly::from_flat(basis, c1_flat, Representation::Coeff);
        c0.to_eval();
        c1.to_eval();
        Ciphertext {
            c0,
            c1,
            level: self.level,
            scale: scale * self.ratio,
        }
    }

    /// PackLWEs (Algorithm 4): merges `2^k` embedded ciphertexts.
    ///
    /// # Panics
    ///
    /// Panics if `cts` is empty.
    pub fn pack_embedded(&self, mut cts: Vec<Ciphertext>) -> Ciphertext {
        assert!(!cts.is_empty());
        // Pad to a power of two with zero ciphertexts at matching scale.
        let target = cts.len().next_power_of_two();
        while cts.len() < target {
            let basis = self.ctx.level_basis(self.level).clone();
            cts.push(Ciphertext {
                c0: RnsPoly::zero(basis.clone(), Representation::Eval),
                c1: RnsPoly::zero(basis, Representation::Eval),
                level: self.level,
                scale: cts[0].scale,
            });
        }
        // The recursion of Algorithm 4 splits into even/odd index
        // subsequences; the equivalent bottom-up sweep must therefore
        // consume the inputs in bit-reversed order for message `j` to
        // land at coefficient `j * N/nslot`.
        fhe_math::util::bit_reverse_permute(&mut cts);
        let n = self.ctx.n() as i64;
        let mut size = 1usize;
        while cts.len() > 1 {
            size *= 2;
            let shift = n / size as i64; // X^{N/size}
            let g = size as u64 + 1;
            let gk = &self.keys[&g];
            let mut next = Vec::with_capacity(cts.len() / 2);
            for pair in cts.chunks(2) {
                let even = &pair[0];
                let odd_shifted = self.eval.mul_monomial(&pair[1], shift);
                let sum = self.eval.add(even, &odd_shifted);
                let diff = self.eval.sub(even, &odd_shifted);
                let rotated = self.eval.apply_galois(&diff, g, gk);
                let mut merged = self.eval.add(&sum, &rotated);
                merged.scale = even.scale * 2.0;
                next.push(merged);
            }
            cts = next;
        }
        cts.pop().expect("one ciphertext remains")
    }

    /// Field trace (Algorithm 5, lines 3–4): zeroes every coefficient
    /// whose index is not a multiple of `N / nslot`.
    ///
    /// # Panics
    ///
    /// Panics if `nslot` is not a power of two or exceeds `N`.
    pub fn field_trace(&self, ct: &Ciphertext, nslot: usize) -> Ciphertext {
        let n = self.ctx.n();
        assert!(nslot.is_power_of_two() && nslot <= n);
        let log_n = fhe_math::util::log2_exact(n);
        let log_ns = fhe_math::util::log2_exact(nslot);
        let mut cur = ct.clone();
        for k in 1..=(log_n - log_ns) {
            let g = (1u64 << (log_n - k + 1)) + 1;
            let rotated = self.eval.apply_galois(&cur, g, &self.keys[&g]);
            let mut sum = self.eval.add(&cur, &rotated);
            sum.scale = cur.scale * 2.0;
            cur = sum;
        }
        cur
    }

    /// Full conversion (Algorithm 5): embeds, packs and traces `nslot`
    /// LWE ciphertexts into one RLWE ciphertext carrying message `j` at
    /// coefficient `j * N/nslot`. The output scale absorbs the `x N`
    /// trace/pack gain and the `Q/q_0` raise.
    ///
    /// # Panics
    ///
    /// Panics if `lwes` is empty or not a power-of-two length.
    pub fn convert(&self, lwes: &[LweCiphertext], scale: f64) -> Ciphertext {
        assert!(!lwes.is_empty());
        assert!(
            lwes.len().is_power_of_two(),
            "pad the LWE batch to a power of two"
        );
        let nslot = lwes.len();
        let embedded: Vec<Ciphertext> =
            lwes.iter().map(|lwe| self.ring_embed(lwe, scale)).collect();
        let packed = self.pack_embedded(embedded);
        self.field_trace(&packed, nslot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fhe_ckks::{CkksParams, Decryptor};
    use fhe_tfhe::LweSecretKey;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    struct Fixture {
        ctx: Arc<CkksContext>,
        sk: SecretKey,
        lwe_key: LweSecretKey,
        packer: RlwePacker,
        rng: StdRng,
    }

    fn fixture(level: usize, seed: u64) -> Fixture {
        let ctx = fhe_ckks::CkksContext::new(CkksParams::tiny_params());
        let mut rng = StdRng::seed_from_u64(seed);
        let kg = KeyGenerator::new(ctx.clone());
        let sk = kg.secret_key(&mut rng);
        let lwe_key = LweSecretKey::from_coeffs(sk.coeffs().to_vec());
        let packer = RlwePacker::new(ctx.clone(), &sk, level, &mut rng);
        Fixture {
            ctx,
            sk,
            lwe_key,
            packer,
            rng,
        }
    }

    fn encrypt_lwe(f: &mut Fixture, value: i64, delta: u64) -> LweCiphertext {
        let q0 = *f.ctx.level_basis(0).modulus(0);
        let msg = if value >= 0 {
            q0.mul(q0.reduce(value as u64), q0.reduce(delta))
        } else {
            q0.neg(q0.mul(q0.reduce((-value) as u64), q0.reduce(delta)))
        };
        LweCiphertext::encrypt(&q0, &f.lwe_key, msg, 1e-8, &mut f.rng)
    }

    #[test]
    fn ring_embed_preserves_message_in_coeff_zero() {
        let mut f = fixture(1, 141);
        let q0 = f.ctx.level_basis(0).modulus(0).value();
        let delta = q0 / 64;
        let lwe = encrypt_lwe(&mut f, 5, delta);
        let ct = f.packer.ring_embed(&lwe, delta as f64);
        let dec = Decryptor::new(f.ctx.clone());
        let poly = dec.decrypt_poly(&ct, &f.sk);
        let vals = poly.to_centered_f64();
        let got = vals[0] / ct.scale;
        assert!((got - 5.0).abs() < 0.01, "coeff0 {got} vs 5");
    }

    #[test]
    fn pack_places_messages_at_strided_coefficients() {
        for nslot in [1usize, 2, 4, 8] {
            let mut f = fixture(2, 142 + nslot as u64);
            let q0 = f.ctx.level_basis(0).modulus(0).value();
            // Headroom: messages |m| <= 4 gain a factor N in the trace,
            // so encode at q0 / (64 * N).
            let delta = q0 / (64 * f.ctx.n() as u64);
            let msgs: Vec<i64> = (0..nslot)
                .map(|j| (j as i64) - (nslot as i64 / 2))
                .collect();
            let lwes: Vec<LweCiphertext> = msgs
                .iter()
                .map(|&m| encrypt_lwe(&mut f, m, delta))
                .collect();
            let packed = f.packer.convert(&lwes, delta as f64);
            let dec = Decryptor::new(f.ctx.clone());
            let poly = dec.decrypt_poly(&packed, &f.sk);
            let vals = poly.to_centered_f64();
            let n = f.ctx.n();
            let stride = n / nslot;
            for (j, &m) in msgs.iter().enumerate() {
                let got = vals[j * stride] / packed.scale;
                assert!(
                    (got - m as f64).abs() < 0.01,
                    "nslot {nslot} msg {j}: {got} vs {m}"
                );
            }
            // Junk coefficients are killed by the trace.
            for (i, &v) in vals.iter().enumerate() {
                if i % stride != 0 {
                    assert!(
                        (v / packed.scale).abs() < 0.01,
                        "coefficient {i} should be dead, got {v}"
                    );
                }
            }
        }
    }

    #[test]
    fn packed_scale_accounts_for_n_gain() {
        let mut f = fixture(1, 143);
        let q0 = f.ctx.level_basis(0).modulus(0).value();
        let delta = q0 / (64 * f.ctx.n() as u64);
        let lwes = vec![encrypt_lwe(&mut f, 1, delta), encrypt_lwe(&mut f, 1, delta)];
        let packed = f.packer.convert(&lwes, delta as f64);
        // scale = delta * (Q_1/q0) * N.
        let n = f.ctx.n() as f64;
        let expect = delta as f64 * f.packer.ratio * n;
        let rel = (packed.scale - expect).abs() / expect;
        assert!(rel < 1e-9, "scale {} vs {expect}", packed.scale);
    }

    #[test]
    fn extract_then_pack_roundtrip() {
        // CKKS -> LWE -> CKKS: Algorithm 3 followed by Algorithm 5.
        let mut f = fixture(1, 144);
        let q0m = *f.ctx.level_basis(0).modulus(0);
        let n = f.ctx.n();
        let delta = (q0m.value() / (128 * n as u64)) as i64;
        let nslot = 4usize;
        // CKKS ciphertext with coefficient-encoded messages 1,-2,3,-4.
        let msgs = [1i64, -2, 3, -4];
        let mut coeffs = vec![0i64; n];
        for (j, &m) in msgs.iter().enumerate() {
            coeffs[j] = m * delta;
        }
        let mut poly = RnsPoly::from_signed_coeffs(f.ctx.level_basis(0).clone(), &coeffs);
        poly.to_eval();
        let pt = fhe_ckks::Plaintext {
            poly,
            scale: delta as f64,
            level: 0,
        };
        let encryptor = fhe_ckks::Encryptor::new(f.ctx.clone());
        let ct = encryptor.encrypt_sk(&pt, &f.sk, &mut f.rng);
        let lwes = crate::extract::extract_lwes(&f.ctx, &ct, nslot);
        let packed = f.packer.convert(&lwes, delta as f64);
        let dec = Decryptor::new(f.ctx.clone());
        let out = dec.decrypt_poly(&packed, &f.sk);
        let vals = out.to_centered_f64();
        let stride = n / nslot;
        for (j, &m) in msgs.iter().enumerate() {
            let got = vals[j * stride] / packed.scale;
            assert!((got - m as f64).abs() < 0.02, "msg {j}: {got} vs {m}");
        }
    }
}
