//! # fhe-convert — scheme conversion between CKKS and TFHE
//!
//! The paper's Algorithms 3–5 (after Chen–Dai–Kim–Song \[10\]):
//!
//! * **CKKS → TFHE** ([`extract`]): `SampleExtract` turns one RLWE
//!   ciphertext into per-coefficient LWE ciphertexts; an LWE modulus
//!   switch moves them onto the TFHE prime.
//! * **TFHE → CKKS** ([`pack`]): ring embedding, the recursive
//!   `PackLWEs` merge (monomial `Rotate` + keyswitched `HRotate`), and
//!   the field trace — producing an RLWE ciphertext ready for CKKS
//!   arithmetic.
//!
//! Both directions share the CKKS secret key's coefficient vector as
//! the LWE key, matching the paper's single-accelerator premise: the
//! conversion reuses CKKS and TFHE kernels (`SampleExtract` on the
//! Rotator, `HRotate` on AutoU + NTTU + CU + EWE, §IV-G).
//!
//! # Lazy-domain invariants
//!
//! The keyed rotations inside `PackLWEs` and the field trace are
//! `fhe_ckks::Evaluator::apply_galois` calls, so they ride the lazy
//! Galois chain: the automorphism is hoisted into the keyswitch as an
//! evaluation-form slot permutation and the digit-NTT → `Auto` → `IP`
//! → iNTT pipeline stays in the `[0, 2p)` window, folding once per
//! limb at ModDown (strict oracle and bit-identity assertions live in
//! `tests/lazy_chains.rs`). This crate only ever sees canonical
//! ciphertexts at rest, and its results are independent of the
//! runtime-selected `fhe_math::kernel::KernelBackend` bit for bit.
//! See `README.md` for the kernel mapping.

#![warn(missing_docs)]

pub mod extract;
pub mod pack;

pub use extract::{extract_lwes, extracted_key, lwe_mod_switch, sample_extract};
pub use pack::RlwePacker;
