//! CKKS → TFHE direction: SampleExtract (paper Algorithm 3).
//!
//! Converts an RLWE (CKKS) ciphertext at level 0 into one LWE ciphertext
//! per requested coefficient, under the LWE key formed by the CKKS
//! secret's coefficients. "The procedure includes nslot SampleExtract
//! operations, where each operation extracts a specific coefficient
//! from the message polynomial" (§II-C).

use fhe_ckks::{Ciphertext, CkksContext, SecretKey};
use fhe_math::Modulus;
use fhe_tfhe::{LweCiphertext, LweSecretKey};

/// Extracts coefficient `idx` of a level-0 CKKS ciphertext as an LWE
/// ciphertext modulo `q_0` with phase convention `b - <a, s>`.
///
/// # Panics
///
/// Panics if the ciphertext is not at level 0 or `idx >= N`.
pub fn sample_extract(ctx: &CkksContext, ct: &Ciphertext, idx: usize) -> LweCiphertext {
    assert_eq!(ct.level, 0, "extraction requires a level-0 ciphertext");
    let n = ctx.n();
    assert!(idx < n);
    let q = ctx.level_basis(0).modulus(0);
    let mut c0 = ct.c0.clone();
    let mut c1 = ct.c1.clone();
    c0.to_coeff();
    c1.to_coeff();
    let c0_row = c0.limb(0);
    let c1_row = c1.limb(0);
    // Decryption is c0 + c1*s; LWE phase is b - <a, s>, so
    // a_j = -(coefficient of s_j in (c1*s)[idx]).
    let mut a = Vec::with_capacity(n);
    for j in 0..n {
        if j <= idx {
            a.push(q.neg(c1_row[idx - j]));
        } else {
            a.push(c1_row[n + idx - j]);
        }
    }
    LweCiphertext { a, b: c0_row[idx] }
}

/// Extracts the first `nslot` coefficients (the whole of Algorithm 3).
pub fn extract_lwes(ctx: &CkksContext, ct: &Ciphertext, nslot: usize) -> Vec<LweCiphertext> {
    (0..nslot).map(|i| sample_extract(ctx, ct, i)).collect()
}

/// The LWE key matching extracted ciphertexts: the CKKS secret's
/// coefficient vector.
pub fn extracted_key(sk: &SecretKey) -> LweSecretKey {
    LweSecretKey::from_coeffs(sk.coeffs().to_vec())
}

/// Switches an LWE ciphertext from modulus `from` to modulus `to` by
/// coefficient-wise rounding — used to move extracted ciphertexts from
/// the CKKS prime `q_0` to the TFHE prime (and back).
pub fn lwe_mod_switch(ct: &LweCiphertext, from: &Modulus, to: &Modulus) -> LweCiphertext {
    let switch = |x: u64| -> u64 {
        let prod = x as u128 * to.value() as u128;
        let rounded = (prod + from.value() as u128 / 2) / from.value() as u128;
        to.reduce(rounded as u64)
    };
    LweCiphertext {
        a: ct.a.iter().map(|&x| switch(x)).collect(),
        b: switch(ct.b),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fhe_ckks::{CkksParams, Encoder, Encryptor, KeyGenerator};
    use fhe_math::{Representation, RnsPoly};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Encrypts a polynomial with explicit small coefficients at level 0
    /// and checks each extracted LWE decrypts to that coefficient.
    #[test]
    fn extracted_lwes_decrypt_to_coefficients() {
        let ctx = fhe_ckks::CkksContext::new(CkksParams::tiny_params());
        let mut rng = StdRng::seed_from_u64(131);
        let kg = KeyGenerator::new(ctx.clone());
        let sk = kg.secret_key(&mut rng);
        let encryptor = Encryptor::new(ctx.clone());

        // Build a plaintext polynomial directly in coefficient space:
        // coefficients j * delta for j = 0..8.
        let n = ctx.n();
        let delta = 1i64 << 20;
        let mut coeffs = vec![0i64; n];
        for (j, c) in coeffs.iter_mut().enumerate().take(8) {
            *c = (j as i64 - 4) * delta;
        }
        let mut poly = RnsPoly::from_signed_coeffs(ctx.level_basis(0).clone(), &coeffs);
        poly.to_eval();
        let pt = fhe_ckks::Plaintext {
            poly,
            scale: delta as f64,
            level: 0,
        };
        let ct = encryptor.encrypt_sk(&pt, &sk, &mut rng);

        let lwes = extract_lwes(&ctx, &ct, 8);
        let lwe_key = extracted_key(&sk);
        let q = ctx.level_basis(0).modulus(0);
        for (j, lwe) in lwes.iter().enumerate() {
            let phase = lwe.phase(q, &lwe_key);
            let got = q.to_centered(phase);
            let want = (j as i64 - 4) * delta;
            assert!(
                (got - want).abs() < delta / 64,
                "coeff {j}: {got} vs {want}"
            );
        }
    }

    #[test]
    fn mod_switch_preserves_relative_phase() {
        let ctx = fhe_ckks::CkksContext::new(CkksParams::tiny_params());
        let mut rng = StdRng::seed_from_u64(132);
        let kg = KeyGenerator::new(ctx.clone());
        let sk = kg.secret_key(&mut rng);
        let lwe_key = extracted_key(&sk);
        let q_from = *ctx.level_basis(0).modulus(0);
        let q_to = Modulus::new(fhe_math::prime::prime_near(1 << 32, ctx.n())).unwrap();

        // Encrypt directly in LWE form at q_from.
        let msg = q_from.value() / 8;
        let ct = LweCiphertext::encrypt(&q_from, &lwe_key, msg, 1e-8, &mut rng);
        let switched = lwe_mod_switch(&ct, &q_from, &q_to);
        let phase = switched.phase(&q_to, &lwe_key);
        // Message should now sit at q_to/8.
        let want = q_to.value() / 8;
        let err = q_to.to_centered(q_to.sub(phase, want)).abs();
        // Rounding noise is ~n/2 in the worst case, far below q/64.
        assert!(err < (q_to.value() / 64) as i64, "err {err}");
    }

    #[test]
    fn full_ckks_to_tfhe_path() {
        // Encode in CKKS coefficients, extract, switch to the TFHE
        // modulus, and decode a 2-bit message — Algorithm 3 end to end.
        let ctx = fhe_ckks::CkksContext::new(CkksParams::tiny_params());
        let mut rng = StdRng::seed_from_u64(133);
        let kg = KeyGenerator::new(ctx.clone());
        let sk = kg.secret_key(&mut rng);
        let encryptor = Encryptor::new(ctx.clone());
        let q0 = *ctx.level_basis(0).modulus(0);
        let q_tfhe = Modulus::new(fhe_math::prime::prime_near(1 << 32, 1024)).unwrap();

        let n = ctx.n();
        // Messages m_j in [0,4) encoded at q0/8 * (2m+1) (half-torus).
        let msgs = [3u64, 1, 0, 2];
        let mut coeffs = vec![0i64; n];
        for (j, &m) in msgs.iter().enumerate() {
            coeffs[j] = ((2 * m + 1) * (q0.value() / 16)) as i64;
        }
        let mut poly = RnsPoly::from_signed_coeffs(ctx.level_basis(0).clone(), &coeffs);
        poly.to_eval();
        let pt = fhe_ckks::Plaintext {
            poly,
            scale: 1.0,
            level: 0,
        };
        let ct = encryptor.encrypt_sk(&pt, &sk, &mut rng);
        let lwes = extract_lwes(&ctx, &ct, msgs.len());
        let lwe_key = extracted_key(&sk);
        for (j, lwe) in lwes.iter().enumerate() {
            let switched = lwe_mod_switch(lwe, &q0, &q_tfhe);
            let phase = switched.phase(&q_tfhe, &lwe_key);
            let decoded = (phase as u128 * 8 / q_tfhe.value() as u128) as u64;
            assert_eq!(decoded, msgs[j], "slot {j}");
        }
    }

    // Silence unused-import lint for Encoder (used by sibling tests via
    // the public API surface check below).
    #[test]
    fn api_surface() {
        let ctx = fhe_ckks::CkksContext::new(CkksParams::tiny_params());
        let enc = Encoder::new(ctx);
        assert!(enc.slots() > 0);
        let _ = Representation::Coeff;
    }
}
