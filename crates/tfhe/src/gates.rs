//! Gate bootstrapping: homomorphic boolean gates.
//!
//! Each binary gate is one linear combination followed by one sign PBS —
//! the throughput unit of the paper's Table VII and the building block
//! of its NN-x benchmarks. Booleans are encoded as `±q/8`.

use crate::bootstrap::ServerKey;
use crate::lwe::LweCiphertext;

/// A binary homomorphic gate as *data* — the job payload a serving
/// layer queues on its Interactive lane (each application is one linear
/// combination plus one sign PBS, the latency unit of the paper's
/// Table VII), dispatched through [`ServerKey::apply_gate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GateOp {
    /// Homomorphic AND.
    And,
    /// Homomorphic OR.
    Or,
    /// Homomorphic NAND.
    Nand,
    /// Homomorphic NOR.
    Nor,
    /// Homomorphic XOR.
    Xor,
    /// Homomorphic XNOR.
    Xnor,
}

impl GateOp {
    /// All binary gates, for exhaustive tests and traffic generators.
    pub const ALL: [GateOp; 6] = [
        GateOp::And,
        GateOp::Or,
        GateOp::Nand,
        GateOp::Nor,
        GateOp::Xor,
        GateOp::Xnor,
    ];

    /// The plaintext truth table this gate computes.
    pub fn eval(self, a: bool, b: bool) -> bool {
        match self {
            GateOp::And => a && b,
            GateOp::Or => a || b,
            GateOp::Nand => !(a && b),
            GateOp::Nor => !(a || b),
            GateOp::Xor => a ^ b,
            GateOp::Xnor => !(a ^ b),
        }
    }
}

impl ServerKey {
    /// Applies a binary gate selected at runtime — the dispatch point
    /// for queued [`GateOp`] jobs.
    pub fn apply_gate(&self, op: GateOp, a: &LweCiphertext, b: &LweCiphertext) -> LweCiphertext {
        let (lin, negate) = self.gate_linear(op, a, b);
        let mut out = self.bootstrap_sign(&lin);
        if negate {
            out.neg_assign(self.ctx.q());
        }
        out
    }

    /// The linear combination feeding a gate's sign bootstrap, plus
    /// whether the bootstrapped output must be negated (the N-gates).
    /// Shared by [`Self::apply_gate`] and [`apply_gates_batched`] so the
    /// two paths are bit-identical by construction.
    fn gate_linear(
        &self,
        op: GateOp,
        a: &LweCiphertext,
        b: &LweCiphertext,
    ) -> (LweCiphertext, bool) {
        let q = self.ctx.q();
        let qv = q.value();
        // (bias, double inputs, negate output): AND/NAND share
        // `a + b - q/8`, OR/NOR share `a + b + q/8`, XOR/XNOR share the
        // doubling trick `2a + 2b + q/4`.
        let (bias, double, negate) = match op {
            GateOp::And => (q.neg(qv / 8), false, false),
            GateOp::Nand => (q.neg(qv / 8), false, true),
            GateOp::Or => (qv / 8, false, false),
            GateOp::Nor => (qv / 8, false, true),
            GateOp::Xor => (qv / 4, true, false),
            GateOp::Xnor => (qv / 4, true, true),
        };
        let mut lin = LweCiphertext::trivial(a.dim(), bias);
        if double {
            let mut two_a = a.clone();
            two_a.mul_small(q, 2);
            let mut two_b = b.clone();
            two_b.mul_small(q, 2);
            lin.add_assign(q, &two_a);
            lin.add_assign(q, &two_b);
        } else {
            lin.add_assign(q, a);
            lin.add_assign(q, b);
        }
        (lin, negate)
    }

    /// Homomorphic NOT — purely linear, no bootstrap.
    pub fn not(&self, a: &LweCiphertext) -> LweCiphertext {
        let mut out = a.clone();
        out.neg_assign(self.ctx.q());
        out
    }

    /// Homomorphic AND.
    pub fn and(&self, a: &LweCiphertext, b: &LweCiphertext) -> LweCiphertext {
        self.apply_gate(GateOp::And, a, b)
    }

    /// Homomorphic OR.
    pub fn or(&self, a: &LweCiphertext, b: &LweCiphertext) -> LweCiphertext {
        self.apply_gate(GateOp::Or, a, b)
    }

    /// Homomorphic NAND — the universal gate the TFHE literature
    /// benchmarks.
    pub fn nand(&self, a: &LweCiphertext, b: &LweCiphertext) -> LweCiphertext {
        self.apply_gate(GateOp::Nand, a, b)
    }

    /// Homomorphic NOR.
    pub fn nor(&self, a: &LweCiphertext, b: &LweCiphertext) -> LweCiphertext {
        self.apply_gate(GateOp::Nor, a, b)
    }

    /// Homomorphic XOR (single bootstrap via the doubling trick).
    pub fn xor(&self, a: &LweCiphertext, b: &LweCiphertext) -> LweCiphertext {
        self.apply_gate(GateOp::Xor, a, b)
    }

    /// Homomorphic XNOR.
    pub fn xnor(&self, a: &LweCiphertext, b: &LweCiphertext) -> LweCiphertext {
        self.apply_gate(GateOp::Xnor, a, b)
    }

    /// Homomorphic MUX: `sel ? a : b` (three bootstraps).
    pub fn mux(&self, sel: &LweCiphertext, a: &LweCiphertext, b: &LweCiphertext) -> LweCiphertext {
        let t1 = self.and(sel, a);
        let not_sel = self.not(sel);
        let t2 = self.and(&not_sel, b);
        self.or(&t1, &t2)
    }
}

/// One gate application of a batched dispatch: the tenant's server key,
/// the gate, and its two encrypted inputs.
pub type BatchedGateJob<'a> = (&'a ServerKey, GateOp, &'a LweCiphertext, &'a LweCiphertext);

/// Applies `k` independent binary gates as one batched dispatch — the
/// Interactive-lane analogue of the CKKS `apply_galois_coalesced`: per
/// job the usual linear combination, then the `k` sign bootstraps run
/// through the lockstep [`ServerKey::blind_rotate_batch`] so every CMUX
/// step issues one wide kernel batch call instead of `k` narrow ones
/// (the MATCHA batching shape).
///
/// Outputs are bit-identical to calling [`ServerKey::apply_gate`] per
/// job in order: the linear part is shared code, the batched rotation
/// is bit-identical by construction, and SampleExtract/keyswitch/negate
/// run per job. When the jobs cannot share a rotation — mixed parameter
/// sets or moduli, an FFT-backend key, or a singleton batch — the jobs
/// fall back to sequential `apply_gate` calls, which is the same
/// arithmetic.
pub fn apply_gates_batched(jobs: &[BatchedGateJob<'_>]) -> Vec<LweCiphertext> {
    use crate::ggsw::MulBackend;

    let Some(&(head, ..)) = jobs.first() else {
        return Vec::new();
    };
    let batchable = jobs.len() > 1
        && jobs.iter().all(|&(sk, ..)| {
            sk.backend == MulBackend::Ntt
                && sk.ctx.params == head.ctx.params
                && sk.ctx.ring.q() == head.ctx.ring.q()
        });
    if !batchable {
        return jobs
            .iter()
            .map(|&(sk, op, a, b)| sk.apply_gate(op, a, b))
            .collect();
    }

    // Equal (modulus, degree) means equal deterministic NTT tables, so
    // the head's ring can drive every job's rotation and extraction.
    let ring = &head.ctx.ring;
    let q = head.ctx.q();
    let two_n = 2 * head.ctx.params.n as u64;
    let lins: Vec<(LweCiphertext, bool)> = jobs
        .iter()
        .map(|&(sk, op, a, b)| sk.gate_linear(op, a, b))
        .collect();
    let switched: Vec<(Vec<u64>, u64)> = lins
        .iter()
        .map(|(lin, _)| lin.mod_switch(q, two_n))
        .collect();
    let rotate_jobs: Vec<(&ServerKey, &[u64], u64)> = jobs
        .iter()
        .zip(&switched)
        .map(|(&(sk, ..), (a, b))| (sk, a.as_slice(), *b))
        .collect();
    let tv = vec![q.value() / 8; head.ctx.params.n];
    let accs = ServerKey::blind_rotate_batch(&rotate_jobs, &tv);
    jobs.iter()
        .zip(accs)
        .zip(&lins)
        .map(|((&(sk, ..), acc), &(_, negate))| {
            let extracted = acc.sample_extract(ring, 0);
            let mut out = sk.ksk.switch(q, &extracted);
            if negate {
                out.neg_assign(q);
            }
            out
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bootstrap::{ClientKey, TfheContext};
    use crate::ggsw::MulBackend;
    use crate::params::TfheParams;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (ClientKey, ServerKey, StdRng) {
        let mut rng = StdRng::seed_from_u64(121);
        let ck = ClientKey::generate(TfheContext::new(TfheParams::set_i()), &mut rng);
        let sk = ServerKey::generate(&ck, MulBackend::Ntt, &mut rng);
        (ck, sk, rng)
    }

    #[test]
    fn truth_tables() {
        let (ck, sk, mut rng) = setup();
        for a in [false, true] {
            for b in [false, true] {
                let ca = ck.encrypt_bit(a, &mut rng);
                let cb = ck.encrypt_bit(b, &mut rng);
                assert_eq!(ck.decrypt_bit(&sk.and(&ca, &cb)), a && b, "AND({a},{b})");
                assert_eq!(ck.decrypt_bit(&sk.or(&ca, &cb)), a || b, "OR({a},{b})");
                assert_eq!(
                    ck.decrypt_bit(&sk.nand(&ca, &cb)),
                    !(a && b),
                    "NAND({a},{b})"
                );
                assert_eq!(ck.decrypt_bit(&sk.nor(&ca, &cb)), !(a || b), "NOR({a},{b})");
                assert_eq!(ck.decrypt_bit(&sk.xor(&ca, &cb)), a ^ b, "XOR({a},{b})");
                assert_eq!(
                    ck.decrypt_bit(&sk.xnor(&ca, &cb)),
                    !(a ^ b),
                    "XNOR({a},{b})"
                );
            }
        }
    }

    #[test]
    fn apply_gate_matches_plaintext_truth_tables() {
        let (ck, sk, mut rng) = setup();
        for op in GateOp::ALL {
            for a in [false, true] {
                for b in [false, true] {
                    let ca = ck.encrypt_bit(a, &mut rng);
                    let cb = ck.encrypt_bit(b, &mut rng);
                    assert_eq!(
                        ck.decrypt_bit(&sk.apply_gate(op, &ca, &cb)),
                        op.eval(a, b),
                        "{op:?}({a},{b})"
                    );
                }
            }
        }
    }

    #[test]
    fn batched_gates_are_bit_identical_to_sequential() {
        let (ck, sk, mut rng) = setup();
        // One job per gate so every (bias, double, negate) shape is
        // covered by a single batched dispatch.
        let inputs: Vec<(GateOp, LweCiphertext, LweCiphertext, bool, bool)> = GateOp::ALL
            .iter()
            .enumerate()
            .map(|(i, &op)| {
                let a = i % 2 == 0;
                let b = i % 3 == 0;
                (
                    op,
                    ck.encrypt_bit(a, &mut rng),
                    ck.encrypt_bit(b, &mut rng),
                    a,
                    b,
                )
            })
            .collect();
        let jobs: Vec<BatchedGateJob<'_>> = inputs
            .iter()
            .map(|(op, ca, cb, ..)| (&sk, *op, ca, cb))
            .collect();
        let batched = apply_gates_batched(&jobs);
        for ((op, ca, cb, a, b), got) in inputs.iter().zip(&batched) {
            let want = sk.apply_gate(*op, ca, cb);
            assert_eq!(got.a, want.a, "{op:?} mask");
            assert_eq!(got.b, want.b, "{op:?} body");
            assert_eq!(ck.decrypt_bit(got), op.eval(*a, *b), "{op:?}({a},{b})");
        }
        // Singleton batches take the sequential path and stay identical.
        let solo = apply_gates_batched(&jobs[..1]);
        let (op, ca, cb, ..) = &inputs[0];
        let want = sk.apply_gate(*op, ca, cb);
        assert_eq!(solo[0].a, want.a);
        assert_eq!(solo[0].b, want.b);
        assert!(apply_gates_batched(&[]).is_empty());
    }

    #[test]
    fn not_is_linear_and_exact() {
        let (ck, sk, mut rng) = setup();
        for a in [false, true] {
            let ca = ck.encrypt_bit(a, &mut rng);
            assert_eq!(ck.decrypt_bit(&sk.not(&ca)), !a);
        }
    }

    #[test]
    fn mux_selects() {
        let (ck, sk, mut rng) = setup();
        for sel in [false, true] {
            for a in [false, true] {
                for b in [false, true] {
                    let cs = ck.encrypt_bit(sel, &mut rng);
                    let ca = ck.encrypt_bit(a, &mut rng);
                    let cb = ck.encrypt_bit(b, &mut rng);
                    let out = sk.mux(&cs, &ca, &cb);
                    let expect = if sel { a } else { b };
                    assert_eq!(ck.decrypt_bit(&out), expect, "MUX({sel},{a},{b})");
                }
            }
        }
    }

    #[test]
    fn gate_chaining_survives_depth() {
        // A small circuit: full adder chained 4 times (ripple carry).
        let (ck, sk, mut rng) = setup();
        let x = 0b1011u8;
        let y = 0b0110u8;
        let mut carry = ck.encrypt_bit(false, &mut rng);
        let mut sum_bits = Vec::new();
        for i in 0..4 {
            let a = ck.encrypt_bit((x >> i) & 1 == 1, &mut rng);
            let b = ck.encrypt_bit((y >> i) & 1 == 1, &mut rng);
            let ab = sk.xor(&a, &b);
            let s = sk.xor(&ab, &carry);
            let c1 = sk.and(&a, &b);
            let c2 = sk.and(&ab, &carry);
            carry = sk.or(&c1, &c2);
            sum_bits.push(s);
        }
        let mut got = 0u8;
        for (i, s) in sum_bits.iter().enumerate() {
            if ck.decrypt_bit(s) {
                got |= 1 << i;
            }
        }
        if ck.decrypt_bit(&carry) {
            got |= 1 << 4;
        }
        assert_eq!(got, x + y, "homomorphic adder: {got} != {}", x + y);
    }
}
