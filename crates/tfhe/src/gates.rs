//! Gate bootstrapping: homomorphic boolean gates.
//!
//! Each binary gate is one linear combination followed by one sign PBS —
//! the throughput unit of the paper's Table VII and the building block
//! of its NN-x benchmarks. Booleans are encoded as `±q/8`.

use crate::bootstrap::ServerKey;
use crate::lwe::LweCiphertext;

/// A binary homomorphic gate as *data* — the job payload a serving
/// layer queues on its Interactive lane (each application is one linear
/// combination plus one sign PBS, the latency unit of the paper's
/// Table VII), dispatched through [`ServerKey::apply_gate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GateOp {
    /// Homomorphic AND.
    And,
    /// Homomorphic OR.
    Or,
    /// Homomorphic NAND.
    Nand,
    /// Homomorphic NOR.
    Nor,
    /// Homomorphic XOR.
    Xor,
    /// Homomorphic XNOR.
    Xnor,
}

impl GateOp {
    /// All binary gates, for exhaustive tests and traffic generators.
    pub const ALL: [GateOp; 6] = [
        GateOp::And,
        GateOp::Or,
        GateOp::Nand,
        GateOp::Nor,
        GateOp::Xor,
        GateOp::Xnor,
    ];

    /// The plaintext truth table this gate computes.
    pub fn eval(self, a: bool, b: bool) -> bool {
        match self {
            GateOp::And => a && b,
            GateOp::Or => a || b,
            GateOp::Nand => !(a && b),
            GateOp::Nor => !(a || b),
            GateOp::Xor => a ^ b,
            GateOp::Xnor => !(a ^ b),
        }
    }
}

impl ServerKey {
    /// Applies a binary gate selected at runtime — the dispatch point
    /// for queued [`GateOp`] jobs.
    pub fn apply_gate(&self, op: GateOp, a: &LweCiphertext, b: &LweCiphertext) -> LweCiphertext {
        match op {
            GateOp::And => self.and(a, b),
            GateOp::Or => self.or(a, b),
            GateOp::Nand => self.nand(a, b),
            GateOp::Nor => self.nor(a, b),
            GateOp::Xor => self.xor(a, b),
            GateOp::Xnor => self.xnor(a, b),
        }
    }
    /// Homomorphic NOT — purely linear, no bootstrap.
    pub fn not(&self, a: &LweCiphertext) -> LweCiphertext {
        let mut out = a.clone();
        out.neg_assign(self.ctx.q());
        out
    }

    /// Homomorphic AND.
    pub fn and(&self, a: &LweCiphertext, b: &LweCiphertext) -> LweCiphertext {
        let q = self.ctx.q();
        let qv = q.value();
        // phase = a + b - q/8
        let mut lin = LweCiphertext::trivial(a.dim(), q.neg(qv / 8));
        lin.add_assign(q, a);
        lin.add_assign(q, b);
        self.bootstrap_sign(&lin)
    }

    /// Homomorphic OR.
    pub fn or(&self, a: &LweCiphertext, b: &LweCiphertext) -> LweCiphertext {
        let q = self.ctx.q();
        let mut lin = LweCiphertext::trivial(a.dim(), q.value() / 8);
        lin.add_assign(q, a);
        lin.add_assign(q, b);
        self.bootstrap_sign(&lin)
    }

    /// Homomorphic NAND — the universal gate the TFHE literature
    /// benchmarks.
    pub fn nand(&self, a: &LweCiphertext, b: &LweCiphertext) -> LweCiphertext {
        let mut out = self.and(a, b);
        out.neg_assign(self.ctx.q());
        out
    }

    /// Homomorphic NOR.
    pub fn nor(&self, a: &LweCiphertext, b: &LweCiphertext) -> LweCiphertext {
        let mut out = self.or(a, b);
        out.neg_assign(self.ctx.q());
        out
    }

    /// Homomorphic XOR (single bootstrap via the doubling trick).
    pub fn xor(&self, a: &LweCiphertext, b: &LweCiphertext) -> LweCiphertext {
        let q = self.ctx.q();
        let mut lin = LweCiphertext::trivial(a.dim(), q.value() / 4);
        let mut two_a = a.clone();
        two_a.mul_small(q, 2);
        let mut two_b = b.clone();
        two_b.mul_small(q, 2);
        lin.add_assign(q, &two_a);
        lin.add_assign(q, &two_b);
        self.bootstrap_sign(&lin)
    }

    /// Homomorphic XNOR.
    pub fn xnor(&self, a: &LweCiphertext, b: &LweCiphertext) -> LweCiphertext {
        let mut out = self.xor(a, b);
        out.neg_assign(self.ctx.q());
        out
    }

    /// Homomorphic MUX: `sel ? a : b` (three bootstraps).
    pub fn mux(&self, sel: &LweCiphertext, a: &LweCiphertext, b: &LweCiphertext) -> LweCiphertext {
        let t1 = self.and(sel, a);
        let not_sel = self.not(sel);
        let t2 = self.and(&not_sel, b);
        self.or(&t1, &t2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bootstrap::{ClientKey, TfheContext};
    use crate::ggsw::MulBackend;
    use crate::params::TfheParams;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (ClientKey, ServerKey, StdRng) {
        let mut rng = StdRng::seed_from_u64(121);
        let ck = ClientKey::generate(TfheContext::new(TfheParams::set_i()), &mut rng);
        let sk = ServerKey::generate(&ck, MulBackend::Ntt, &mut rng);
        (ck, sk, rng)
    }

    #[test]
    fn truth_tables() {
        let (ck, sk, mut rng) = setup();
        for a in [false, true] {
            for b in [false, true] {
                let ca = ck.encrypt_bit(a, &mut rng);
                let cb = ck.encrypt_bit(b, &mut rng);
                assert_eq!(ck.decrypt_bit(&sk.and(&ca, &cb)), a && b, "AND({a},{b})");
                assert_eq!(ck.decrypt_bit(&sk.or(&ca, &cb)), a || b, "OR({a},{b})");
                assert_eq!(
                    ck.decrypt_bit(&sk.nand(&ca, &cb)),
                    !(a && b),
                    "NAND({a},{b})"
                );
                assert_eq!(ck.decrypt_bit(&sk.nor(&ca, &cb)), !(a || b), "NOR({a},{b})");
                assert_eq!(ck.decrypt_bit(&sk.xor(&ca, &cb)), a ^ b, "XOR({a},{b})");
                assert_eq!(
                    ck.decrypt_bit(&sk.xnor(&ca, &cb)),
                    !(a ^ b),
                    "XNOR({a},{b})"
                );
            }
        }
    }

    #[test]
    fn apply_gate_matches_plaintext_truth_tables() {
        let (ck, sk, mut rng) = setup();
        for op in GateOp::ALL {
            for a in [false, true] {
                for b in [false, true] {
                    let ca = ck.encrypt_bit(a, &mut rng);
                    let cb = ck.encrypt_bit(b, &mut rng);
                    assert_eq!(
                        ck.decrypt_bit(&sk.apply_gate(op, &ca, &cb)),
                        op.eval(a, b),
                        "{op:?}({a},{b})"
                    );
                }
            }
        }
    }

    #[test]
    fn not_is_linear_and_exact() {
        let (ck, sk, mut rng) = setup();
        for a in [false, true] {
            let ca = ck.encrypt_bit(a, &mut rng);
            assert_eq!(ck.decrypt_bit(&sk.not(&ca)), !a);
        }
    }

    #[test]
    fn mux_selects() {
        let (ck, sk, mut rng) = setup();
        for sel in [false, true] {
            for a in [false, true] {
                for b in [false, true] {
                    let cs = ck.encrypt_bit(sel, &mut rng);
                    let ca = ck.encrypt_bit(a, &mut rng);
                    let cb = ck.encrypt_bit(b, &mut rng);
                    let out = sk.mux(&cs, &ca, &cb);
                    let expect = if sel { a } else { b };
                    assert_eq!(ck.decrypt_bit(&out), expect, "MUX({sel},{a},{b})");
                }
            }
        }
    }

    #[test]
    fn gate_chaining_survives_depth() {
        // A small circuit: full adder chained 4 times (ripple carry).
        let (ck, sk, mut rng) = setup();
        let x = 0b1011u8;
        let y = 0b0110u8;
        let mut carry = ck.encrypt_bit(false, &mut rng);
        let mut sum_bits = Vec::new();
        for i in 0..4 {
            let a = ck.encrypt_bit((x >> i) & 1 == 1, &mut rng);
            let b = ck.encrypt_bit((y >> i) & 1 == 1, &mut rng);
            let ab = sk.xor(&a, &b);
            let s = sk.xor(&ab, &carry);
            let c1 = sk.and(&a, &b);
            let c2 = sk.and(&ab, &carry);
            carry = sk.or(&c1, &c2);
            sum_bits.push(s);
        }
        let mut got = 0u8;
        for (i, s) in sum_bits.iter().enumerate() {
            if ck.decrypt_bit(s) {
                got |= 1 << i;
            }
        }
        if ck.decrypt_bit(&carry) {
            got |= 1 << 4;
        }
        assert_eq!(got, x + y, "homomorphic adder: {got} != {}", x + y);
    }
}
